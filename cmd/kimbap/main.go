// Command kimbap runs one of the seven graph algorithms on a generated or
// loaded graph over a simulated cluster, printing a result summary.
//
// Examples:
//
//	kimbap -algo cc-sv -graph friendster -hosts 4
//	kimbap -algo lv -graph road-europe -hosts 8 -threads 8
//	kimbap -algo cc-lp -graph mygraph.el -hosts 2 -variant sgr-only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kimbap/internal/algorithms"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

func main() {
	var (
		algo    = flag.String("algo", "cc-sv", "algorithm: cc-sv, cc-lp, cc-sclp, mis, msf, lv, ld")
		graphIn = flag.String("graph", "friendster", "graph preset (road-europe, friendster, clueweb12, wdc12), small:<preset>, or an edge-list file")
		hosts   = flag.Int("hosts", 4, "simulated hosts")
		threads = flag.Int("threads", 4, "worker threads per host")
		policy  = flag.String("policy", "cvc", "partitioning policy: oec, iec, cvc")
		variant = flag.String("variant", "", "node-property map variant: sgr+cf+gar (default), sgr+cf, sgr-only, memcached, vite")
		useTCP  = flag.Bool("tcp", false, "use the TCP transport instead of in-memory channels")
		verify  = flag.Bool("verify", false, "check the result against a sequential reference")
	)
	flag.Parse()

	g, err := gen.Load(*graphIn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kimbap:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: %s\n", g.ComputeStats())

	ccfg := runtime.Config{
		NumHosts:       *hosts,
		ThreadsPerHost: *threads,
		Policy:         partition.Policy(*policy),
		UseTCP:         *useTCP,
	}
	acfg := algorithms.Config{Variant: npm.Variant(*variant)}
	if acfg.Variant == npm.MC {
		acfg.Store = kvstore.NewCluster(*hosts, *hosts)
	}

	start := time.Now()
	switch *algo {
	case "lv", "ld":
		var res algorithms.CDResult
		if *algo == "lv" {
			res, err = algorithms.Louvain(g, ccfg, acfg, algorithms.CDOptions{})
		} else {
			res, err = algorithms.Leiden(g, ccfg, acfg, algorithms.CDOptions{})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "kimbap:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: modularity=%.4f levels=%d rounds=%d compute=%v comm=%v wall=%v\n",
			strings.ToUpper(*algo), res.Modularity, res.Levels, res.Rounds,
			res.Compute.Round(time.Millisecond), res.Comm.Round(time.Millisecond),
			time.Since(start).Round(time.Millisecond))
	default:
		cluster, err := runtime.NewCluster(g, ccfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kimbap:", err)
			os.Exit(1)
		}
		defer cluster.Close()
		switch *algo {
		case "cc-sv", "cc-lp", "cc-sclp":
			fns := map[string]func(*runtime.Host, algorithms.Config, []graph.NodeID) algorithms.CCStats{
				"cc-sv": algorithms.CCSV, "cc-lp": algorithms.CCLP, "cc-sclp": algorithms.CCSCLP,
			}
			out := make([]graph.NodeID, g.NumNodes())
			stats := make([]algorithms.CCStats, *hosts)
			cluster.Run(func(h *runtime.Host) { stats[h.Rank] = fns[*algo](h, acfg, out) })
			fmt.Printf("%s: components=%d hook/prop rounds=%d shortcut rounds=%d wall=%v\n",
				strings.ToUpper(*algo), graph.NumComponents(out),
				stats[0].HookRounds, stats[0].ShortcutRounds,
				time.Since(start).Round(time.Millisecond))
			if *verify {
				want := graph.ReferenceComponents(g)
				for i := range want {
					if out[i] != want[i] {
						fmt.Fprintf(os.Stderr, "kimbap: VERIFY FAILED at node %d\n", i)
						os.Exit(1)
					}
				}
				fmt.Println("verify: OK (matches BFS reference)")
			}
		case "mis":
			out := make([]bool, g.NumNodes())
			stats := make([]algorithms.MISStats, *hosts)
			cluster.Run(func(h *runtime.Host) { stats[h.Rank] = algorithms.MIS(h, acfg, out) })
			fmt.Printf("MIS: size=%d rounds=%d wall=%v\n",
				stats[0].Size, stats[0].Rounds, time.Since(start).Round(time.Millisecond))
			if *verify {
				if !graph.IsValidMIS(g, out) {
					fmt.Fprintln(os.Stderr, "kimbap: VERIFY FAILED: not a maximal independent set")
					os.Exit(1)
				}
				fmt.Println("verify: OK (maximal independent set)")
			}
		case "msf":
			out := make([]graph.NodeID, g.NumNodes())
			stats := make([]algorithms.MSFStats, *hosts)
			cluster.Run(func(h *runtime.Host) { stats[h.Rank] = algorithms.MSF(h, acfg, out) })
			fmt.Printf("MSF: weight=%.2f edges=%d rounds=%d wall=%v\n",
				stats[0].TotalWeight, stats[0].ForestEdges, stats[0].Rounds,
				time.Since(start).Round(time.Millisecond))
			if *verify {
				want := graph.ReferenceMSFWeight(g)
				if diff := stats[0].TotalWeight - want; diff > 1e-6*want || diff < -1e-6*want {
					fmt.Fprintf(os.Stderr, "kimbap: VERIFY FAILED: weight %.4f, Kruskal %.4f\n",
						stats[0].TotalWeight, want)
					os.Exit(1)
				}
				fmt.Println("verify: OK (matches Kruskal weight)")
			}
		default:
			fmt.Fprintf(os.Stderr, "kimbap: unknown algorithm %q\n", *algo)
			os.Exit(2)
		}
		msgs, bytes := cluster.CommStats()
		fmt.Printf("communication: %d messages, %.2f MB\n", msgs, float64(bytes)/(1<<20))
	}
}
