// Command graphgen generates the synthetic evaluation graphs (or custom
// ones) and writes them as edge lists or in the compact binary format.
//
//	graphgen -preset friendster -out friendster.kmb
//	graphgen -type grid -rows 100 -cols 100 -weighted -out road.el -format text
//	graphgen -type rmat -scale 16 -edgefactor 16 -out web.kmb
package main

import (
	"flag"
	"fmt"
	"os"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

func main() {
	var (
		preset     = flag.String("preset", "", "paper preset: road-europe, friendster, clueweb12, wdc12")
		typ        = flag.String("type", "", "custom generator: grid, rmat, er, chain, communities")
		rows       = flag.Int("rows", 100, "grid rows")
		cols       = flag.Int("cols", 100, "grid cols")
		scale      = flag.Int("scale", 14, "rmat: log2 of node count")
		edgeFactor = flag.Int("edgefactor", 16, "rmat: edges per node")
		nodes      = flag.Int("nodes", 10000, "er/chain: node count")
		edges      = flag.Int("edges", 50000, "er: edge count")
		k          = flag.Int("k", 8, "communities: community count")
		size       = flag.Int("size", 100, "communities: community size")
		weighted   = flag.Bool("weighted", true, "attach edge weights")
		seed       = flag.Int64("seed", 42, "generator seed")
		out        = flag.String("out", "", "output path (stdout if empty)")
		format     = flag.String("format", "binary", "output format: binary or text")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *preset != "":
		g = gen.Build(gen.Preset(*preset))
	case *typ == "grid":
		g = gen.Grid(*rows, *cols, *weighted, *seed)
	case *typ == "rmat":
		g = gen.RMAT(*scale, *edgeFactor, *weighted, *seed)
	case *typ == "er":
		g = gen.ErdosRenyi(*nodes, *edges, *weighted, *seed)
	case *typ == "chain":
		g = gen.Chain(*nodes, *weighted, *seed)
	case *typ == "communities":
		g = gen.Communities(*k, *size, 6, 1, *weighted, *seed)
	default:
		fmt.Fprintln(os.Stderr, "graphgen: need -preset or -type")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generated: %s, diameter~%d\n", g.ComputeStats(), gen.ApproxDiameter(g))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *format == "text" {
		err = graph.WriteEdgeList(w, g)
	} else {
		err = graph.WriteBinary(w, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
