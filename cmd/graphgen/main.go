// Command graphgen generates the synthetic evaluation graphs (or custom
// ones) and converts between the three on-disk formats.
//
//	graphgen -preset friendster -out friendster.kmb
//	graphgen -type grid -rows 100 -cols 100 -weighted -out road.el -format text
//	graphgen -type rmat -scale 16 -edgefactor 16 -out web.kmb2 -format kmb2
//	graphgen convert -in web.el -out web.kmb2
//	graphgen convert -in web.kmb2 -out web.el -outformat text -workers 4
//	graphgen convert -in web.el -out web.kmb2 -reorder degree
//	graphgen reorder -in web.kmb2 -out web-deg.kmb2 -policy blocked-degree -blocks 8
//
// convert streams by default: the input is read block by block (text
// shards, KMB1 edge ranges, or KMB2 blocks) and never materialized as a
// whole edge list. Converting to KMB2 is a single sequential scan;
// converting to KMB1 or text runs the two-scan streaming CSR build.
// With -reorder (or the reorder subcommand) the output graph is permuted
// by a locality policy — degree or blocked-degree (DESIGN.md §14) — via
// the fused streaming reorder stage; -perm optionally records the
// original→current ID mapping.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "convert" {
		if err := runConvert(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen: convert:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "reorder" {
		if err := runReorder(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen: reorder:", err)
			os.Exit(1)
		}
		return
	}
	runGenerate()
}

// reorderPolicyHelp lists the valid -reorder/-policy values for -help.
func reorderPolicyHelp() string {
	return fmt.Sprintf("none, %s, %s", graph.ReorderDegree, graph.ReorderBlockedDegree)
}

// checkReorderPolicy validates a policy flag value, exiting 2 (usage
// error, like flag.ExitOnError) on an unknown policy.
func checkReorderPolicy(pol string) graph.ReorderPolicy {
	switch p := graph.ReorderPolicy(pol); p {
	case graph.ReorderNone, "", graph.ReorderDegree, graph.ReorderBlockedDegree:
		return p
	}
	fmt.Fprintf(os.Stderr, "graphgen: unknown reorder policy %q (valid: %s)\n",
		pol, reorderPolicyHelp())
	os.Exit(2)
	return ""
}

func runGenerate() {
	var (
		preset     = flag.String("preset", "", "paper preset: road-europe, friendster, clueweb12, wdc12")
		typ        = flag.String("type", "", "custom generator: grid, rmat, er, chain, communities")
		rows       = flag.Int("rows", 100, "grid rows")
		cols       = flag.Int("cols", 100, "grid cols")
		scale      = flag.Int("scale", 14, "rmat: log2 of node count")
		edgeFactor = flag.Int("edgefactor", 16, "rmat: edges per node")
		nodes      = flag.Int("nodes", 10000, "er/chain: node count")
		edges      = flag.Int("edges", 50000, "er: edge count")
		k          = flag.Int("k", 8, "communities: community count")
		size       = flag.Int("size", 100, "communities: community size")
		weighted   = flag.Bool("weighted", true, "attach edge weights")
		seed       = flag.Int64("seed", 42, "generator seed")
		out        = flag.String("out", "", "output path (stdout if empty)")
		format     = flag.String("format", "binary", "output format: binary (kmb1), text, or kmb2")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *preset != "":
		g = gen.Build(gen.Preset(*preset))
	case *typ == "grid":
		g = gen.Grid(*rows, *cols, *weighted, *seed)
	case *typ == "rmat":
		g = gen.RMAT(*scale, *edgeFactor, *weighted, *seed)
	case *typ == "er":
		g = gen.ErdosRenyi(*nodes, *edges, *weighted, *seed)
	case *typ == "chain":
		g = gen.Chain(*nodes, *weighted, *seed)
	case *typ == "communities":
		g = gen.Communities(*k, *size, 6, 1, *weighted, *seed)
	default:
		fmt.Fprintln(os.Stderr, "graphgen: need -preset or -type")
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generated: %s, diameter~%d\n", g.ComputeStats(), gen.ApproxDiameter(g))

	if *format == "kmb2" {
		// KMB2 writing patches the header in place, so it needs a real file.
		if *out == "" {
			fmt.Fprintln(os.Stderr, "graphgen: -format kmb2 requires -out")
			os.Exit(2)
		}
		if err := graph.SaveKMB2(*out, g, 0); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *format == "text" {
		err = graph.WriteEdgeList(w, g)
	} else {
		err = graph.WriteBinary(w, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		in         = fs.String("in", "", "input path (required)")
		out        = fs.String("out", "", "output path (required)")
		informat   = fs.String("informat", "auto", "input format: auto, text, kmb1, kmb2 (auto sniffs the magic)")
		outformat  = fs.String("outformat", "", "output format: text, kmb1, kmb2 (default from -out extension)")
		stream     = fs.Bool("stream", true, "stream block by block instead of materializing the edge list")
		nodes      = fs.Int("nodes", 0, "node count for text inputs without a nodes directive")
		workers    = fs.Int("workers", 0, "parallel workers for the streaming build (0 = all cores)")
		blockEdges = fs.Int("block-edges", 0, "kmb2 output block capacity (0 = default)")
		reorder    = fs.String("reorder", "none", "vertex reorder policy: "+reorderPolicyHelp())
		blocks     = fs.Int("blocks", 1, "block count for -reorder blocked-degree (usually the host count)")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("need -in and -out")
	}
	pol := checkReorderPolicy(*reorder)
	inf := *informat
	if inf == "auto" {
		var err error
		if inf, err = sniffFormat(*in); err != nil {
			return err
		}
	}
	outf := *outformat
	if outf == "" {
		outf = formatFromExt(*out)
	}
	if !*stream {
		return convertInMemory(*in, *out, inf, outf, *nodes, *workers, *blockEdges, pol, *blocks)
	}

	src, closeSrc, err := openSource(*in, inf, *nodes)
	if err != nil {
		return err
	}
	defer closeSrc()

	if outf == "kmb2" && (pol == "" || pol == graph.ReorderNone) {
		// Format conversion without a CSR build: one sequential scan,
		// blocks repacked to the output capacity. Reordering permutes the
		// edges, so it always takes the build path below.
		return copyToKMB2(src, *out, *blockEdges)
	}
	g, _, err := graph.NewStreamBuilder(src).SetWorkers(*workers).BuildReordered(pol, *blocks)
	if err != nil {
		return err
	}
	return writeGraph(*out, outf, g, *blockEdges)
}

// runReorder rewrites a graph file under a reorder policy: a streaming
// CSR build with the fused reorder stage, then the output writer. The
// permutation can be saved alongside the graph with -perm (one
// "orig current" pair per line).
func runReorder(args []string) error {
	fs := flag.NewFlagSet("reorder", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "input path (required)")
		out       = fs.String("out", "", "output path (required)")
		informat  = fs.String("informat", "auto", "input format: auto, text, kmb1, kmb2 (auto sniffs the magic)")
		outformat = fs.String("outformat", "", "output format: text, kmb1, kmb2 (default from -out extension)")
		policy    = fs.String("policy", string(graph.ReorderDegree), "reorder policy: "+reorderPolicyHelp())
		blocks    = fs.Int("blocks", 1, "block count for blocked-degree (usually the host count)")
		nodes     = fs.Int("nodes", 0, "node count for text inputs without a nodes directive")
		workers   = fs.Int("workers", 0, "parallel workers (0 = all cores)")
		permOut   = fs.String("perm", "", "also write the original->current permutation to this path")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("need -in and -out")
	}
	pol := checkReorderPolicy(*policy)
	inf := *informat
	if inf == "auto" {
		var err error
		if inf, err = sniffFormat(*in); err != nil {
			return err
		}
	}
	outf := *outformat
	if outf == "" {
		outf = formatFromExt(*out)
	}
	src, closeSrc, err := openSource(*in, inf, *nodes)
	if err != nil {
		return err
	}
	defer closeSrc()
	g, ro, err := graph.NewStreamBuilder(src).SetWorkers(*workers).BuildReordered(pol, *blocks)
	if err != nil {
		return err
	}
	if err := writeGraph(*out, outf, g, 0); err != nil {
		return err
	}
	if *permOut != "" {
		f, err := os.Create(*permOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		for orig := 0; orig < g.NumNodes(); orig++ {
			cur := orig
			if ro != nil {
				cur = int(ro.Perm[orig])
			}
			fmt.Fprintf(w, "%d %d\n", orig, cur)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Close()
	}
	return nil
}

// sniffFormat reads the 4-byte magic: KMB1, KMB2, or (anything else)
// text.
func sniffFormat(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var magic [4]byte
	n, _ := f.Read(magic[:])
	switch {
	case n == 4 && string(magic[:]) == "KMB1":
		return "kmb1", nil
	case n == 4 && string(magic[:]) == "KMB2":
		return "kmb2", nil
	}
	return "text", nil
}

func formatFromExt(path string) string {
	switch {
	case strings.HasSuffix(path, ".kmb2"):
		return "kmb2"
	case strings.HasSuffix(path, ".kmb"), strings.HasSuffix(path, ".kmb1"):
		return "kmb1"
	}
	return "text"
}

func openSource(path, format string, nodes int) (graph.BlockSource, func() error, error) {
	switch format {
	case "text":
		s, err := graph.OpenTextConfig(path, graph.TextConfig{NumNodes: nodes})
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	case "kmb1":
		s, err := graph.OpenKMB1(path)
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	case "kmb2":
		s, err := graph.OpenKMB2(path)
		if err != nil {
			return nil, nil, err
		}
		return s, s.Close, nil
	}
	return nil, nil, fmt.Errorf("unknown input format %q", format)
}

func copyToKMB2(src graph.BlockSource, out string, blockEdges int) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	kw, err := graph.NewKMB2Writer(f, src.NumNodes(), src.Weighted(), blockEdges)
	if err != nil {
		return err
	}
	blk := graph.GetBlock()
	defer graph.PutBlock(blk)
	for i := 0; i < src.NumBlocks(); i++ {
		if err := src.ReadBlock(i, blk); err != nil {
			return err
		}
		if err := kw.AppendBlock(blk); err != nil {
			return err
		}
	}
	if err := kw.Close(); err != nil {
		return err
	}
	return f.Close()
}

func convertInMemory(in, out, inf, outf string, nodes, workers, blockEdges int,
	pol graph.ReorderPolicy, blocks int) error {
	var g *graph.Graph
	var err error
	switch inf {
	case "text":
		f, ferr := os.Open(in)
		if ferr != nil {
			return ferr
		}
		g, err = graph.ReadEdgeList(f)
		f.Close()
	case "kmb1":
		g, err = graph.LoadBinary(in)
	case "kmb2":
		g, err = graph.LoadKMB2(in, workers)
	default:
		return fmt.Errorf("unknown input format %q", inf)
	}
	if err != nil {
		return err
	}
	_ = nodes // the in-memory text reader infers the node count itself
	if g, _, err = graph.Reorder(g, graph.ReorderOptions{Policy: pol, Blocks: blocks, Workers: workers}); err != nil {
		return err
	}
	return writeGraph(out, outf, g, blockEdges)
}

func writeGraph(out, format string, g *graph.Graph, blockEdges int) error {
	switch format {
	case "kmb2":
		return graph.SaveKMB2(out, g, blockEdges)
	case "kmb1":
		return graph.SaveBinary(out, g)
	case "text":
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graph.WriteEdgeList(f, g); err != nil {
			return err
		}
		return f.Close()
	}
	return fmt.Errorf("unknown output format %q", format)
}
