// Command kimbapvet runs Kimbap's custom static analyzers over the
// module:
//
//	go run ./cmd/kimbapvet ./...
//
// It checks the concurrency, communication, and operator invariants the
// Go compiler cannot see (see DESIGN.md "Checked invariants"):
// atomicmix, bufownership, cautiousop, conflictfree, deterministic,
// lockdiscipline, phaseorder, and wiretag. Patterns default to ./...;
// -only runs a comma-separated subset of analyzers; -json emits one JSON
// record per diagnostic for CI tooling. The exit status is 1 if any
// diagnostic is reported, 2 on usage or load errors.
//
// Diagnostics are suppressed by a //kimbapvet:ignore directive on the
// offending line or the line above; the directive must carry a reason
// after " -- " or it is itself reported.
//
// kimbapvet must run from inside the module (it resolves packages with
// `go list` and type-checks them from source, fully offline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kimbap/internal/analysis/atomicmix"
	"kimbap/internal/analysis/bufownership"
	"kimbap/internal/analysis/cautiousop"
	"kimbap/internal/analysis/checker"
	"kimbap/internal/analysis/conflictfree"
	"kimbap/internal/analysis/deterministic"
	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
	"kimbap/internal/analysis/lockdiscipline"
	"kimbap/internal/analysis/phaseorder"
	"kimbap/internal/analysis/wiretag"
)

var all = []*framework.Analyzer{
	atomicmix.Analyzer,
	bufownership.Analyzer,
	cautiousop.Analyzer,
	conflictfree.Analyzer,
	deterministic.Analyzer,
	lockdiscipline.Analyzer,
	phaseorder.Analyzer,
	wiretag.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON records ({analyzer,pos,message}, one per line)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kimbapvet [-only a,b] [-json] [-list] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "kimbapvet: unknown analyzer %q (run -list for names)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "kimbapvet: -only named no analyzers\n")
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.NewProgram()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kimbapvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := prog.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kimbapvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := checker.Run(prog, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kimbapvet: %v\n", err)
		os.Exit(2)
	}
	print := checker.Print
	if *jsonOut {
		print = checker.PrintJSON
	}
	if print(os.Stdout, prog.Fset, diags) {
		os.Exit(1)
	}
}
