// Command kimbapvet runs Kimbap's custom static analyzers over the
// module:
//
//	go run ./cmd/kimbapvet ./...
//
// It checks the concurrency and operator invariants the Go compiler
// cannot see (see DESIGN.md "Checked invariants"): atomicmix,
// lockdiscipline, cautiousop, and conflictfree. Patterns default to
// ./...; -only runs a comma-separated subset of analyzers. The exit
// status is 1 if any diagnostic is reported.
//
// kimbapvet must run from inside the module (it resolves packages with
// `go list` and type-checks them from source, fully offline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kimbap/internal/analysis/atomicmix"
	"kimbap/internal/analysis/cautiousop"
	"kimbap/internal/analysis/checker"
	"kimbap/internal/analysis/conflictfree"
	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
	"kimbap/internal/analysis/lockdiscipline"
)

var all = []*framework.Analyzer{
	atomicmix.Analyzer,
	cautiousop.Analyzer,
	conflictfree.Analyzer,
	lockdiscipline.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kimbapvet [-only a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "kimbapvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.NewProgram()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kimbapvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := prog.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kimbapvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := checker.Run(prog, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kimbapvet: %v\n", err)
		os.Exit(2)
	}
	if checker.Print(os.Stdout, prog.Fset, diags) {
		os.Exit(1)
	}
}
