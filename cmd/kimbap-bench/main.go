// Command kimbap-bench regenerates the paper's evaluation tables and
// figures (§6) on the simulated cluster.
//
//	kimbap-bench -exp all -scale small          # quick pass over everything
//	kimbap-bench -exp fig11 -scale full -reps 3 # the §6.4 ablation
//	kimbap-bench -exp perf -json BENCH_kimbap.json # perf trajectory
//
// Experiments: table1, table2, table3, fig9, fig10, fig11, fig12,
// readlocality, policies, memory, abstraction, perf — or "all". The perf
// experiment additionally writes machine-readable records to the -json
// path, carrying the replaced file's wall times forward as the "before"
// half of a before/after comparison (see `make bench`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kimbap/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment name or 'all'")
		scale    = flag.String("scale", "small", "workload scale: small or full")
		threads  = flag.Int("threads", 4, "worker threads per simulated host")
		reps     = flag.Int("reps", 1, "timing repetitions (fastest kept)")
		outPath  = flag.String("o", "", "write output to file instead of stdout")
		jsonPath = flag.String("json", "", "perf experiment: write machine-readable records here")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kimbap-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := bench.Config{
		Scale:    bench.Scale(*scale),
		Threads:  *threads,
		Reps:     *reps,
		JSONPath: *jsonPath,
	}
	names := []string{*exp}
	if *exp == "all" {
		names = bench.Experiments
	}
	for _, name := range names {
		start := time.Now()
		if err := bench.Run(w, name, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "kimbap-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
