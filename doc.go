// Package kimbap is a from-scratch Go reproduction of Kimbap (Lee,
// Dathathri, Pingali — ASPLOS '24): a node-property map system for
// distributed graph analytics that supports general vertex-centric
// programs, including trans-vertex operators that read and reduce
// properties of arbitrary nodes.
//
// The implementation lives under internal/:
//
//   - internal/npm — the paper's core contribution: the distributed,
//     concurrent node-property map with graph-partition-aware
//     representation, conflict-free thread-local reductions, and
//     scatter-gather-reduce synchronization, plus the ablation variants.
//   - internal/runtime, internal/comm, internal/partition — the simulated
//     multi-host cluster substrate.
//   - internal/compiler — the Kimbap compiler: CFG/dominance analysis,
//     operator splitting, request insertion, and the §5.2 optimizations.
//   - internal/algorithms — the seven evaluation algorithms.
//   - internal/baselines — Vite, Gluon, and Galois reimplementations.
//   - internal/bench — the harness regenerating every table and figure.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for measured-vs-paper results.
package kimbap
