package compiler

// Statement-level control-flow graph and dominance analysis (§2.3). Each
// CFG node is one IR statement (If and ForEdges contribute their
// header/condition as a node); synthetic entry and exit nodes bracket the
// operator. Dominators are computed with the standard iterative data-flow
// algorithm (Cooper, Harvey, Kennedy); post-dominators by running it on
// the reversed graph.

type cfgNode struct {
	id    int
	stmt  Stmt // nil for entry/exit
	succs []int
	preds []int

	// For If headers: the CFG node beginning the Then branch (or -1).
	thenEntry int
	// For ForEdges headers: the CFG node beginning the body (or -1).
	bodyEntry int
}

type cfg struct {
	nodes []*cfgNode
	entry int
	exit  int
	// backEdges marks ForEdges loop back edges (from -> to), which
	// forward-flow analyses (the cautious-operator check) skip.
	backEdges map[[2]int]bool
}

func (c *cfg) newNode(s Stmt) *cfgNode {
	n := &cfgNode{id: len(c.nodes), stmt: s, thenEntry: -1, bodyEntry: -1}
	c.nodes = append(c.nodes, n)
	return n
}

func (c *cfg) addEdge(from, to int) {
	c.nodes[from].succs = append(c.nodes[from].succs, to)
	c.nodes[to].preds = append(c.nodes[to].preds, from)
}

// buildCFG constructs the statement-level CFG of an operator body.
func buildCFG(body []Stmt) *cfg {
	c := &cfg{backEdges: map[[2]int]bool{}}
	entry := c.newNode(nil)
	c.entry = entry.id
	last := buildSeq(c, body, []int{entry.id})
	exit := c.newNode(nil)
	c.exit = exit.id
	for _, l := range last {
		c.addEdge(l, exit.id)
	}
	return c
}

// buildSeq threads a statement sequence after the given predecessor
// frontier and returns the new frontier.
func buildSeq(c *cfg, stmts []Stmt, frontier []int) []int {
	for _, s := range stmts {
		switch st := s.(type) {
		case If:
			head := c.newNode(st)
			for _, f := range frontier {
				c.addEdge(f, head.id)
			}
			// Then branch.
			thenFrontier := buildSeq(c, st.Then, []int{head.id})
			if len(st.Then) > 0 {
				head.thenEntry = head.id + 1
			}
			// Fall-through edge plus branch exits form the new frontier.
			frontier = append([]int{head.id}, thenFrontier...)
		case ForEdges:
			head := c.newNode(st)
			for _, f := range frontier {
				c.addEdge(f, head.id)
			}
			bodyFrontier := buildSeq(c, st.Body, []int{head.id})
			if len(st.Body) > 0 {
				head.bodyEntry = head.id + 1
			}
			for _, b := range bodyFrontier {
				c.addEdge(b, head.id)
				c.backEdges[[2]int{b, head.id}] = true
			}
			frontier = []int{head.id}
		default:
			n := c.newNode(s)
			for _, f := range frontier {
				c.addEdge(f, n.id)
			}
			frontier = []int{n.id}
		}
	}
	return frontier
}

// dominators returns idom[i] for every node reachable from root, using
// succ/pred direction selected by reverse. idom[root] = root.
func (c *cfg) dominators(reverse bool) []int {
	root := c.entry
	if reverse {
		root = c.exit
	}
	order := c.postorder(root, reverse)
	// rpo index per node; unreachable nodes keep -1.
	rpoIndex := make([]int, len(c.nodes))
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, n := range order {
		rpoIndex[n] = len(order) - 1 - i
	}
	idom := make([]int, len(c.nodes))
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	preds := func(n int) []int {
		if reverse {
			return c.nodes[n].succs
		}
		return c.nodes[n].preds
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		// Iterate in reverse postorder (order holds postorder).
		for i := len(order) - 1; i >= 0; i-- {
			n := order[i]
			if n == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(n) {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func (c *cfg) postorder(root int, reverse bool) []int {
	seen := make([]bool, len(c.nodes))
	var order []int
	var visit func(n int)
	visit = func(n int) {
		seen[n] = true
		next := c.nodes[n].succs
		if reverse {
			next = c.nodes[n].preds
		}
		for _, s := range next {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

// dominates reports whether a dominates b under the idom tree.
func dominates(idom []int, a, b int) bool {
	for {
		if a == b {
			return true
		}
		if b == idom[b] || idom[b] == -1 {
			return false
		}
		b = idom[b]
	}
}

// domPath returns the dominator-tree path from entry to n (inclusive).
func domPath(idom []int, entry, n int) []int {
	var rev []int
	for {
		rev = append(rev, n)
		if n == entry || idom[n] == -1 || idom[n] == n {
			break
		}
		n = idom[n]
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}
