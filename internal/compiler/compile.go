package compiler

import (
	"fmt"
	"sort"
)

// Options control compilation.
type Options struct {
	// Optimize enables the §5.2 optimizations (master-nodes RequestSync
	// elision and adjacent-neighbors elision with pinned mirrors).
	// Disabled it produces the paper's NO-OPT configuration: every read —
	// self, adjacent, or trans-vertex — is requested and synchronized
	// every round, and mirrors are never pinned (Figure 12).
	Optimize bool
}

// Plan is the compiled, executable form of a Program.
type Plan struct {
	Program   *Program
	Loops     []*LoopPlan
	Optimized bool
}

// LoopPlan is one compiled KimbapWhile loop: the BSP phase sequence
//
//	PinMirrors*  do {  ResetUpdated
//	                   (request op; RequestSync)*      — request phases
//	                   compute op                      — reduce-compute
//	                   ReduceSync*  BroadcastSync*     — reduce/broadcast
//	             } while IsUpdated  UnpinMirrors*
type LoopPlan struct {
	Quiesce       string
	MastersOnly   bool     // iterate master proxies only
	PinMaps       []string // maps pinned for the loop's duration
	RequestOps    []RequestOp
	Compute       []Stmt
	ReduceMaps    []string // maps reduced by the operator, in declaration order
	BroadcastMaps []string // pinned maps to broadcast after reducing
	// ReadMaps lists every map the operator reads, in declaration order.
	// Backends without the partition-aware representation cannot serve
	// even active-node reads locally, so the executor requests all local
	// proxies of these maps each round on such backends (a no-op on the
	// Full variant).
	ReadMaps []string
}

// RequestOp is a generated request phase: the dominating operations of one
// read, with the read replaced by a Request, followed by a RequestSync on
// Map.
type RequestOp struct {
	Body []Stmt
	Map  string
}

// Compile lowers a Program to an executable Plan, applying the paper's
// transformations and, if enabled, its optimizations.
func Compile(p *Program, opts Options) (*Plan, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	plan := &Plan{Program: p, Optimized: opts.Optimize}
	for li := range p.Loops {
		lp, err := compileLoop(p, &p.Loops[li], opts)
		if err != nil {
			return nil, fmt.Errorf("compiler: %s loop %d: %w", p.Name, li, err)
		}
		plan.Loops = append(plan.Loops, lp)
	}
	return plan, nil
}

// readClass classifies a property-map read by its key expression.
type readClass int

const (
	readSelf     readClass = iota // key is the active node
	readAdjacent                  // key is the current edge destination
	readTrans                     // key is dynamically computed (trans-vertex)
)

func classifyKey(k Expr) readClass {
	switch k.(type) {
	case Active:
		return readSelf
	case EdgeDst:
		return readAdjacent
	default:
		return readTrans
	}
}

func compileLoop(p *Program, loop *Loop, opts Options) (*LoopPlan, error) {
	c := buildCFG(loop.Body)
	idom := c.dominators(false)
	ipdom := c.dominators(true)
	// The post-dominator tree determines where syncs are inserted: the
	// paper places each sync before the immediate post-dominator of the
	// operator's ParFor, which for a single-operator loop is the loop
	// tail. The plan encodes that placement structurally; ipdom is
	// retained for validation.
	_ = ipdom

	// Gather reads (by CFG node, in dominance-consistent order), reduces,
	// and edge accesses.
	var readNodes []int
	reduceMaps := map[string]bool{}
	readMapsByClass := map[readClass]map[string]bool{
		readSelf: {}, readAdjacent: {}, readTrans: {},
	}
	accessesEdges := false
	for _, n := range c.nodes {
		switch st := n.stmt.(type) {
		case Read:
			if _, err := p.mapDecl(st.Map); err != nil {
				return nil, err
			}
			readNodes = append(readNodes, n.id)
			readMapsByClass[classifyKey(st.Key)][st.Map] = true
		case Reduce:
			if _, err := p.mapDecl(st.Map); err != nil {
				return nil, err
			}
			reduceMaps[st.Map] = true
		case ForEdges:
			accessesEdges = true
		}
	}
	// Order reads so dominators come first (the paper's iteration order).
	sort.SliceStable(readNodes, func(i, j int) bool {
		return dominates(idom, readNodes[i], readNodes[j])
	})

	lp := &LoopPlan{
		Quiesce: loop.Quiesce,
		Compute: loop.Body,
		// The programmer-specified iterator restriction (§3.2) applies
		// regardless of optimization level.
		MastersOnly: loop.MastersOnly,
	}
	for _, d := range p.Maps {
		if reduceMaps[d.Name] {
			lp.ReduceMaps = append(lp.ReduceMaps, d.Name)
		}
		for _, cl := range []readClass{readSelf, readAdjacent, readTrans} {
			if readMapsByClass[cl][d.Name] {
				lp.ReadMaps = append(lp.ReadMaps, d.Name)
				break
			}
		}
	}

	hasTrans := len(readMapsByClass[readTrans]) > 0
	if opts.Optimize {
		// Master-nodes elision: no edge access means mirrors would
		// recompute exactly what masters compute, so restrict the
		// iterator to masters (§5.2).
		lp.MastersOnly = lp.MastersOnly || !accessesEdges
		if !hasTrans {
			// Adjacent-neighbors elision: all reads are self/adjacent, so
			// pin mirrors and broadcast instead of requesting (§5.2).
			pin := map[string]bool{}
			for _, cl := range []readClass{readSelf, readAdjacent} {
				for m := range readMapsByClass[cl] {
					pin[m] = true
				}
			}
			for _, d := range p.Maps {
				if pin[d.Name] {
					lp.PinMaps = append(lp.PinMaps, d.Name)
					if reduceMaps[d.Name] {
						lp.BroadcastMaps = append(lp.BroadcastMaps, d.Name)
					}
				}
			}
			return lp, nil
		}
		// Mixed operator: pin the self/adjacent-read maps, request the
		// trans reads.
		pin := map[string]bool{}
		if accessesEdges {
			for _, cl := range []readClass{readSelf, readAdjacent} {
				for m := range readMapsByClass[cl] {
					pin[m] = true
				}
			}
		}
		for _, d := range p.Maps {
			if pin[d.Name] {
				lp.PinMaps = append(lp.PinMaps, d.Name)
				if reduceMaps[d.Name] {
					lp.BroadcastMaps = append(lp.BroadcastMaps, d.Name)
				}
			}
		}
	}

	// Request insertion (§5.1 split-operator transformation): for each
	// read needing a request — trans reads always, plus self/adjacent
	// reads without optimizations — copy its dominating operations,
	// replace the read with a Request, and follow with a RequestSync.
	for _, rn := range readNodes {
		rd := c.nodes[rn].stmt.(Read)
		cl := classifyKey(rd.Key)
		if opts.Optimize {
			if cl != readTrans {
				continue // served by GAR masters or pinned mirrors
			}
		}
		body, err := requestOpBody(c, idom, rn)
		if err != nil {
			return nil, err
		}
		op := RequestOp{Body: body, Map: rd.Map}
		if opts.Optimize && lp.MastersOnly && requestsOnlyMasters(op.Body) {
			// Master-nodes RequestSync elision: the request targets only
			// the active node, which is a master here — delete the
			// operator and its sync (§5.2).
			continue
		}
		lp.RequestOps = append(lp.RequestOps, op)
	}
	return lp, nil
}

// requestsOnlyMasters reports whether every Request in the body targets
// the active node (which, under a masters-only iterator, is a master).
func requestsOnlyMasters(body []Stmt) bool {
	only := true
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case Request:
				if _, ok := st.Key.(Active); !ok {
					only = false
				}
			case If:
				walk(st.Then)
			case ForEdges:
				walk(st.Body)
			}
		}
	}
	walk(body)
	return only
}

// requestOpBody reconstructs the nested statement sequence of the
// operations dominating read node rn, ending with the read replaced by a
// Request. Guarding Ifs and enclosing ForEdges loops are kept only when
// the read lies inside them (they gate or repeat the request); dominating
// reads and assignments are copied verbatim so key expressions evaluate
// identically.
func requestOpBody(c *cfg, idom []int, rn int) ([]Stmt, error) {
	path := domPath(idom, c.entry, rn)
	type frame struct {
		stmts []Stmt
		wrap  func(inner []Stmt) Stmt // wraps when the frame closes
	}
	stack := []frame{{}}
	top := func() *frame { return &stack[len(stack)-1] }

	for i, n := range path {
		node := c.nodes[n]
		if node.stmt == nil {
			continue // entry
		}
		last := i == len(path)-1
		switch st := node.stmt.(type) {
		case Read:
			if last {
				top().stmts = append(top().stmts, Request{Map: st.Map, Key: st.Key})
			} else {
				top().stmts = append(top().stmts, st)
			}
		case Assign:
			top().stmts = append(top().stmts, st)
		case If:
			inside := node.thenEntry != -1 && dominates(idom, node.thenEntry, rn) && n != rn
			if inside {
				cond := st.Cond
				stack = append(stack, frame{wrap: func(inner []Stmt) Stmt {
					return If{Cond: cond, Then: inner}
				}})
			}
		case ForEdges:
			inside := node.bodyEntry != -1 && dominates(idom, node.bodyEntry, rn) && n != rn
			if inside {
				stack = append(stack, frame{wrap: func(inner []Stmt) Stmt {
					return ForEdges{Body: inner}
				}})
			}
		case Reduce, Flag:
			// Side effects are never copied into request operators.
		default:
			return nil, fmt.Errorf("unexpected statement %T on dominator path", st)
		}
	}
	// Close frames innermost-out.
	for len(stack) > 1 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		wrapped := f.wrap(f.stmts)
		top().stmts = append(top().stmts, wrapped)
	}
	return stack[0].stmts, nil
}
