package compiler

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// --- CFG and dominance ---

func TestCFGStraightLine(t *testing.T) {
	body := []Stmt{
		Read{Dst: "a", Map: "m", Key: Active{}},
		Assign{Dst: "b", Val: Var{"a"}},
		Reduce{Map: "m", Key: Active{}, Val: Var{"b"}},
	}
	c := buildCFG(body)
	// entry + 3 stmts + exit
	if len(c.nodes) != 5 {
		t.Fatalf("node count = %d, want 5", len(c.nodes))
	}
	idom := c.dominators(false)
	// Each statement is dominated by its predecessor.
	for i := 1; i <= 3; i++ {
		if idom[i] != i-1 {
			t.Errorf("idom[%d] = %d, want %d", i, idom[i], i-1)
		}
	}
	ipdom := c.dominators(true)
	for i := 1; i <= 3; i++ {
		if ipdom[i] != i+1 {
			t.Errorf("ipdom[%d] = %d, want %d", i, ipdom[i], i+1)
		}
	}
}

func TestCFGIfBranch(t *testing.T) {
	body := []Stmt{
		Read{Dst: "a", Map: "m", Key: Active{}},
		If{Cond: Cond{Op: Lt, L: Var{"a"}, R: Const{5}}, Then: []Stmt{
			Reduce{Map: "m", Key: Active{}, Val: Const{0}},
		}},
		Assign{Dst: "b", Val: Var{"a"}},
	}
	c := buildCFG(body)
	idom := c.dominators(false)
	// Nodes: 0 entry, 1 read, 2 if, 3 reduce (then), 4 assign, 5 exit.
	if idom[3] != 2 {
		t.Errorf("then-branch idom = %d, want the if header 2", idom[3])
	}
	if idom[4] != 2 {
		t.Errorf("join idom = %d, want the if header 2", idom[4])
	}
	if !dominates(idom, 1, 4) {
		t.Error("read should dominate the join")
	}
	if dominates(idom, 3, 4) {
		t.Error("branch body must not dominate the join")
	}
	// Post-dominance: the join post-dominates the if header; the branch
	// body does not.
	ipdom := c.dominators(true)
	if !dominates(ipdom, 4, 2) {
		t.Error("join should post-dominate the if header")
	}
	if dominates(ipdom, 3, 2) {
		t.Error("branch body must not post-dominate the header")
	}
}

func TestCFGForEdgesLoop(t *testing.T) {
	body := []Stmt{
		ForEdges{Body: []Stmt{
			Read{Dst: "d", Map: "m", Key: EdgeDst{}},
		}},
		Assign{Dst: "x", Val: Const{1}},
	}
	c := buildCFG(body)
	idom := c.dominators(false)
	// Nodes: 0 entry, 1 foredges, 2 read, 3 assign, 4 exit.
	if idom[2] != 1 {
		t.Errorf("loop body idom = %d, want loop header", idom[2])
	}
	if idom[3] != 1 {
		t.Errorf("loop exit idom = %d, want loop header", idom[3])
	}
	// The back edge makes the header its own successor region; the body
	// must not dominate the statement after the loop.
	if dominates(idom, 2, 3) {
		t.Error("loop body must not dominate post-loop statement")
	}
}

func TestDomPath(t *testing.T) {
	body := []Stmt{
		Read{Dst: "a", Map: "m", Key: Active{}},
		Read{Dst: "b", Map: "m", Key: Var{"a"}},
	}
	c := buildCFG(body)
	idom := c.dominators(false)
	path := domPath(idom, c.entry, 2)
	want := []int{0, 1, 2}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// --- Compilation structure (Figure 4 -> Figure 8) ---

func TestCompileCCSVMatchesFigure8(t *testing.T) {
	plan, err := Compile(CCSVProgram(), Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(plan.Loops))
	}
	hook, shortcut := plan.Loops[0], plan.Loops[1]

	// Hook (Figure 8 lines 1-22): mirrors pinned, no requests, broadcast
	// after reduce, all proxies iterated.
	if len(hook.PinMaps) != 1 || hook.PinMaps[0] != "parent" {
		t.Errorf("hook PinMaps = %v, want [parent]", hook.PinMaps)
	}
	if len(hook.RequestOps) != 0 {
		t.Errorf("hook has %d request ops, want 0 (adjacent elision)", len(hook.RequestOps))
	}
	if hook.MastersOnly {
		t.Error("hook iterates all proxies (it accesses edges)")
	}
	if len(hook.BroadcastMaps) != 1 || hook.BroadcastMaps[0] != "parent" {
		t.Errorf("hook BroadcastMaps = %v, want [parent]", hook.BroadcastMaps)
	}

	// Shortcut (Figure 8 lines 24-41): masters only, exactly one request
	// op — read own parent, request the grandparent — and no pinning.
	if !shortcut.MastersOnly {
		t.Error("shortcut should iterate masters only (no edge access)")
	}
	if len(shortcut.PinMaps) != 0 {
		t.Errorf("shortcut PinMaps = %v, want none", shortcut.PinMaps)
	}
	if len(shortcut.RequestOps) != 1 {
		t.Fatalf("shortcut request ops = %d, want 1 (self-request elided)",
			len(shortcut.RequestOps))
	}
	op := shortcut.RequestOps[0]
	if len(op.Body) != 2 {
		t.Fatalf("request op body = %d stmts, want [Read p; Request parent[p]]", len(op.Body))
	}
	if rd, ok := op.Body[0].(Read); !ok || rd.Dst != "p" {
		t.Errorf("request op first stmt = %#v, want Read p", op.Body[0])
	}
	req, ok := op.Body[1].(Request)
	if !ok || req.Map != "parent" {
		t.Fatalf("request op second stmt = %#v, want Request(parent)", op.Body[1])
	}
	if v, ok := req.Key.(Var); !ok || v.Name != "p" {
		t.Errorf("request key = %#v, want Var p", req.Key)
	}
}

func TestCompileCCLPOptimized(t *testing.T) {
	plan, err := Compile(CCLPProgram(), Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Loops[0]
	if len(lp.RequestOps) != 0 {
		t.Errorf("CC-LP OPT request ops = %d, want 0", len(lp.RequestOps))
	}
	if len(lp.PinMaps) != 1 || lp.PinMaps[0] != "comp" {
		t.Errorf("CC-LP PinMaps = %v", lp.PinMaps)
	}
}

func TestCompileNoOptGeneratesRequests(t *testing.T) {
	plan, err := Compile(CCLPProgram(), Options{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Loops[0]
	if len(lp.PinMaps) != 0 {
		t.Errorf("NO-OPT must not pin mirrors, got %v", lp.PinMaps)
	}
	// Both reads (self and adjacent) must be requested.
	if len(lp.RequestOps) != 2 {
		t.Fatalf("NO-OPT request ops = %d, want 2", len(lp.RequestOps))
	}
	// The adjacent read's request op must be wrapped in the edge loop.
	second := lp.RequestOps[1]
	foundLoop := false
	for _, s := range second.Body {
		if fe, ok := s.(ForEdges); ok {
			foundLoop = true
			if len(fe.Body) == 0 {
				t.Error("edge-loop request op has empty body")
			}
		}
	}
	if !foundLoop {
		t.Errorf("adjacent request op missing ForEdges wrapper: %#v", second.Body)
	}
}

func TestCompileRejectsUndeclaredMap(t *testing.T) {
	p := &Program{
		Name: "bad",
		Maps: []MapDecl{{Name: "a", Kind: MinMap}},
		Loops: []Loop{{Quiesce: "a", Body: []Stmt{
			Read{Dst: "x", Map: "nope", Key: Active{}},
		}}},
	}
	if _, err := Compile(p, Options{Optimize: true}); err == nil {
		t.Fatal("expected error for undeclared map")
	}
}

// --- End-to-end execution ---

// runCompiled executes a compiled program and returns the global values of
// one map, assembled from each host's masters.
func runCompiled(t *testing.T, prog *Program, g *graph.Graph, hosts int,
	pol partition.Policy, optimize bool, variant npm.Variant, resultMap string) []graph.NodeID {
	t.Helper()
	plan, err := Compile(prog, Options{Optimize: optimize})
	if err != nil {
		t.Fatal(err)
	}
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: 3, Policy: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var store npm.MCStore
	if variant == npm.MC {
		store = kvstore.NewCluster(hosts, hosts)
	}
	out := make([]graph.NodeID, g.NumNodes())
	c.Run(func(h *runtime.Host) {
		e := NewExec(h, plan, ExecConfig{Variant: variant, Store: store})
		e.Run()
		m := e.Map(resultMap)
		lo, hi := h.HP.MasterRangeGlobal()
		for n := lo; n < hi; n++ {
			m.Request(n)
		}
		m.RequestSync()
		for n := lo; n < hi; n++ {
			out[n] = m.Read(n)
		}
	})
	return out
}

func TestCompiledCCMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(8, 8, false, 1),
		"rmat": gen.RMAT(7, 5, false, 2),
	}
	for gname, g := range graphs {
		want := graph.ReferenceComponents(g)
		for _, opt := range []bool{true, false} {
			for _, hosts := range []int{1, 3} {
				for name, prog := range map[string]*Program{
					"cc-sv": CCSVProgram(), "cc-lp": CCLPProgram(),
				} {
					got := runCompiled(t, prog, g, hosts, partition.OEC, opt, npm.Full,
						map[string]string{"cc-sv": "parent", "cc-lp": "comp"}[name])
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s/%s opt=%v hosts=%d: node %d = %d, want %d",
								gname, name, opt, hosts, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestCompiledCCSVOnCVC(t *testing.T) {
	// The trans-vertex program must also work under a vertex cut.
	g := gen.RMAT(7, 5, false, 3)
	want := graph.ReferenceComponents(g)
	got := runCompiled(t, CCSVProgram(), g, 4, partition.CVC, true, npm.Full, "parent")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCompiledMISValid(t *testing.T) {
	for _, opt := range []bool{true, false} {
		for _, hosts := range []int{1, 3} {
			g := gen.Grid(8, 8, false, 1)
			states := runCompiled(t, MISProgram(), g, hosts, partition.OEC, opt, npm.Full, "state")
			set := make([]bool, g.NumNodes())
			for i, s := range states {
				if s == MISUndecided {
					t.Fatalf("opt=%v hosts=%d: node %d undecided", opt, hosts, i)
				}
				set[i] = s == MISIn
			}
			if !graph.IsValidMIS(g, set) {
				t.Fatalf("opt=%v hosts=%d: invalid MIS", opt, hosts)
			}
		}
	}
}

func TestCompiledCCSVAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	want := graph.ReferenceComponents(g)
	for _, v := range npm.Variants {
		got := runCompiled(t, CCSVProgram(), g, 2, partition.OEC, true, v, "parent")
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("variant %s: node %d = %d, want %d", v, i, got[i], want[i])
			}
		}
	}
}

func TestNoOptSendsMoreTraffic(t *testing.T) {
	g := gen.Grid(8, 8, false, 1)
	volume := func(optimize bool) int64 {
		plan, err := Compile(CCLPProgram(), Options{Optimize: optimize})
		if err != nil {
			t.Fatal(err)
		}
		c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 3, Policy: partition.OEC})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Run(func(h *runtime.Host) {
			e := NewExec(h, plan, ExecConfig{})
			e.Run()
		})
		_, bytes := c.CommStats()
		return bytes
	}
	opt, noopt := volume(true), volume(false)
	if noopt <= opt {
		t.Fatalf("NO-OPT bytes (%d) should exceed OPT bytes (%d)", noopt, opt)
	}
}
