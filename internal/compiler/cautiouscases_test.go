// External test package: cautiouscases imports compiler, so the shared
// table must be consumed from outside the package to avoid a cycle.
package compiler_test

import (
	"testing"

	"kimbap/internal/analysis/cautiouscases"
	"kimbap/internal/compiler"
)

// TestValidateAgreesWithSharedTable runs the IR side of the shared
// cautious-operator table; the cautiousop analyzer test runs the Go side
// of the same table, so the two §3.2 checkers cannot drift apart.
func TestValidateAgreesWithSharedTable(t *testing.T) {
	for _, c := range cautiouscases.Cases() {
		if c.IR == nil {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			err := compiler.Validate(c.IR())
			if c.OK && err != nil {
				t.Errorf("valid operator rejected: %v", err)
			}
			if !c.OK && err == nil {
				t.Error("invalid operator accepted")
			}
		})
	}
}
