package compiler

import (
	"fmt"
	"strings"
)

// Pretty-printing of programs and compiled plans, in the style of the
// paper's Figures 4 and 8. Useful for debugging transformations and for
// inspecting what the optimizer did (`kimbap-bench -exp fig12` prints the
// measured effect; PlanString shows the structural one).

// ProgramString renders a program as KimbapWhile pseudo-code (Figure 4).
func ProgramString(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, d := range p.Maps {
		init := fmt.Sprintf("const %d", d.InitConst)
		if d.InitToID {
			init = "own ID"
		}
		if d.InitDegreePrio {
			init = "degree priority"
		}
		fmt.Fprintf(&b, "map %s: %s reduce, init %s\n", d.Name, d.Kind, init)
	}
	for i, l := range p.Loops {
		iter := "Nodes()"
		if l.MastersOnly {
			iter = "MasterNodes()"
		}
		fmt.Fprintf(&b, "KimbapWhile (%s) Updated  // loop %d\n", l.Quiesce, i)
		fmt.Fprintf(&b, "  ParFor (node : graph.%s) {\n", iter)
		writeStmts(&b, l.Body, "    ")
		b.WriteString("  }\n")
	}
	return b.String()
}

// PlanString renders a compiled plan as BSP pseudo-code (Figure 8).
func PlanString(plan *Plan) string {
	var b strings.Builder
	mode := "NO-OPT"
	if plan.Optimized {
		mode = "OPT"
	}
	fmt.Fprintf(&b, "plan %s [%s]\n", plan.Program.Name, mode)
	for i, lp := range plan.Loops {
		fmt.Fprintf(&b, "loop %d (quiesce on %s):\n", i, lp.Quiesce)
		for _, m := range lp.PinMaps {
			fmt.Fprintf(&b, "  %s.PinMirrors()\n", m)
		}
		b.WriteString("  do {\n")
		fmt.Fprintf(&b, "    %s.ResetUpdated()\n", lp.Quiesce)
		iter := "Nodes()"
		if lp.MastersOnly {
			iter = "MasterNodes()"
		}
		for _, op := range lp.RequestOps {
			fmt.Fprintf(&b, "    ParFor (node : graph.%s) {  // request phase\n", iter)
			writeStmts(&b, op.Body, "      ")
			b.WriteString("    }\n")
			fmt.Fprintf(&b, "    %s.RequestSync()\n", op.Map)
		}
		fmt.Fprintf(&b, "    ParFor (node : graph.%s) {  // reduce-compute\n", iter)
		writeStmts(&b, lp.Compute, "      ")
		b.WriteString("    }\n")
		for _, m := range lp.ReduceMaps {
			fmt.Fprintf(&b, "    %s.ReduceSync()\n", m)
		}
		for _, m := range lp.BroadcastMaps {
			fmt.Fprintf(&b, "    %s.BroadcastSync()\n", m)
		}
		fmt.Fprintf(&b, "  } while (%s.IsUpdated())\n", lp.Quiesce)
		for _, m := range lp.PinMaps {
			fmt.Fprintf(&b, "  %s.UnpinMirrors()\n", m)
		}
	}
	return b.String()
}

func writeStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case Read:
			fmt.Fprintf(b, "%s%s = %s.Read(%s)\n", indent, st.Dst, st.Map, st.Key.exprString())
		case Request:
			fmt.Fprintf(b, "%s%s.Request(%s)\n", indent, st.Map, st.Key.exprString())
		case Reduce:
			fmt.Fprintf(b, "%s%s.Reduce(%s, %s)\n", indent, st.Map,
				st.Key.exprString(), st.Val.exprString())
		case Assign:
			fmt.Fprintf(b, "%s%s = %s\n", indent, st.Dst, st.Val.exprString())
		case Flag:
			fmt.Fprintf(b, "%swork_done.Reduce(true)\n", indent)
		case If:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, st.Cond)
			writeStmts(b, st.Then, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case ForEdges:
			fmt.Fprintf(b, "%sfor (edge : graph.Edges(node)) { dst = edge.Destination\n", indent)
			writeStmts(b, st.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}
