package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
)

// Property: for randomly generated cautious vertex programs, the compiler
// produces plans whose execution is identical with and without the §5.2
// optimizations, across host counts and partition policies. This is the
// compiler's core soundness claim — elisions must never change semantics.

// randomProgram builds a cautious single-loop program over one min map:
// a read prefix (self, adjacent inside one edge loop, and chained trans
// reads), then guarded reduces using only previously read values.
func randomProgram(r *rand.Rand) *Program {
	body := []Stmt{
		Read{Dst: "v0", Map: "m", Key: Active{}},
	}
	vars := []string{"v0"}
	// Chained trans reads.
	for i := 0; i < r.Intn(3); i++ {
		src := vars[r.Intn(len(vars))]
		dst := "t" + string(rune('0'+i))
		body = append(body, Read{Dst: dst, Map: "m", Key: Var{src}})
		vars = append(vars, dst)
	}
	// One optional edge loop with an adjacent read and a guarded reduce
	// to an arbitrary previously read node.
	if r.Intn(2) == 0 {
		target := vars[r.Intn(len(vars))]
		body = append(body, ForEdges{Body: []Stmt{
			Read{Dst: "d", Map: "m", Key: EdgeDst{}},
			If{
				Cond: Cond{Op: Gt, L: Var{target}, R: Var{"d"}},
				Then: []Stmt{Reduce{Map: "m", Key: Var{target}, Val: Var{"d"}}},
			},
		}})
	} else {
		// Straight-line guarded reduce (shortcut-shaped).
		a := vars[r.Intn(len(vars))]
		b := vars[r.Intn(len(vars))]
		body = append(body, If{
			Cond: Cond{Op: Ne, L: Var{a}, R: Var{b}},
			Then: []Stmt{Reduce{Map: "m", Key: Active{}, Val: Var{b}}},
		})
	}
	return &Program{
		Name:  "random",
		Maps:  []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{Quiesce: "m", Body: body}},
	}
}

func runProgram(t *testing.T, prog *Program, g *graph.Graph, hosts int,
	pol partition.Policy, optimize bool) []graph.NodeID {
	t.Helper()
	return runCompiled(t, prog, g, hosts, pol, optimize, npm.Full, "m")
}

func TestQuickOptNoOptEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomProgram(r)
		if err := Validate(prog); err != nil {
			t.Logf("generator produced invalid program: %v", err)
			return false
		}
		g := gen.ErdosRenyi(30+r.Intn(30), 80, false, seed)
		ref := runProgram(t, prog, g, 1, partition.OEC, true)
		for _, opt := range []bool{true, false} {
			for _, hosts := range []int{2, 3} {
				got := runProgram(t, prog, g, hosts, partition.OEC, opt)
				for i := range ref {
					if got[i] != ref[i] {
						t.Logf("seed %d opt=%v hosts=%d: node %d = %d, want %d",
							seed, opt, hosts, i, got[i], ref[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompiledAcrossPolicies(t *testing.T) {
	// Programs without edge access are policy-independent; with edges,
	// results must agree across all partition policies too.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomProgram(r)
		g := gen.RMAT(6, 4, false, seed)
		ref := runProgram(t, prog, g, 1, partition.OEC, true)
		for _, pol := range partition.Policies {
			got := runProgram(t, prog, g, 3, pol, true)
			for i := range ref {
				if got[i] != ref[i] {
					t.Logf("seed %d policy %s: node %d = %d, want %d",
						seed, pol, i, got[i], ref[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
