package compiler

import (
	"fmt"

	"kimbap/internal/graph"
	"kimbap/internal/npm"
)

// Lowering: before execution, each operator's variable names are resolved
// to slot indices and its statements to a compact instruction tree, so the
// per-node interpreter loop allocates nothing and does no map lookups.
// (The paper's compiler emits C++; this is the interpreter's answer to the
// same concern — the abstraction experiment measures what remains.)

type exprKind uint8

const (
	exActive exprKind = iota
	exDst
	exVar
	exConst
)

type slotExpr struct {
	kind  exprKind
	slot  int          // for exVar
	value graph.NodeID // for exConst
}

type lStmt interface{ lowered() }

type lRead struct {
	dst int
	m   npm.Map[graph.NodeID]
	key slotExpr
}

type lRequest struct {
	m   npm.Map[graph.NodeID]
	key slotExpr
}

type lReduce struct {
	m        npm.Map[graph.NodeID]
	key, val slotExpr
}

type lAssign struct {
	dst int
	val slotExpr
}

type lFlag struct{}

type lIf struct {
	op   CmpOp
	l, r slotExpr
	then []lStmt
}

type lForEdges struct {
	body []lStmt
}

func (lRead) lowered()     {}
func (lRequest) lowered()  {}
func (lReduce) lowered()   {}
func (lAssign) lowered()   {}
func (lFlag) lowered()     {}
func (lIf) lowered()       {}
func (lForEdges) lowered() {}

// slotTable assigns a dense index to each variable name in an operator and
// tracks which have been defined, so hand-built plans that bypass Validate
// still fail loudly on use-before-assign.
type slotTable struct {
	index   map[string]int
	defined map[string]bool
}

func newSlotTable() *slotTable {
	return &slotTable{index: map[string]int{}, defined: map[string]bool{}}
}

// slotOf resolves a name to its slot, marking it defined (destinations).
func (s *slotTable) slotOf(name string) int {
	s.defined[name] = true
	return s.slotFor(name)
}

func (s *slotTable) slotFor(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.index)
	s.index[name] = i
	return i
}

func (s *slotTable) size() int { return len(s.index) }

// lowerOp lowers an operator body against the executor's map table.
func lowerOp(body []Stmt, maps map[string]npm.Map[graph.NodeID], st *slotTable) ([]lStmt, error) {
	out := make([]lStmt, 0, len(body))
	for _, s := range body {
		switch stmt := s.(type) {
		case Read:
			m, ok := maps[stmt.Map]
			if !ok {
				return nil, fmt.Errorf("compiler: unknown map %q", stmt.Map)
			}
			key, err := lowerExpr(stmt.Key, st)
			if err != nil {
				return nil, err
			}
			out = append(out, lRead{dst: st.slotOf(stmt.Dst), m: m, key: key})
		case Request:
			m, ok := maps[stmt.Map]
			if !ok {
				return nil, fmt.Errorf("compiler: unknown map %q", stmt.Map)
			}
			key, err := lowerExpr(stmt.Key, st)
			if err != nil {
				return nil, err
			}
			out = append(out, lRequest{m: m, key: key})
		case Reduce:
			m, ok := maps[stmt.Map]
			if !ok {
				return nil, fmt.Errorf("compiler: unknown map %q", stmt.Map)
			}
			key, err := lowerExpr(stmt.Key, st)
			if err != nil {
				return nil, err
			}
			val, err := lowerExpr(stmt.Val, st)
			if err != nil {
				return nil, err
			}
			out = append(out, lReduce{m: m, key: key, val: val})
		case Assign:
			val, err := lowerExpr(stmt.Val, st)
			if err != nil {
				return nil, err
			}
			out = append(out, lAssign{dst: st.slotOf(stmt.Dst), val: val})
		case Flag:
			out = append(out, lFlag{})
		case If:
			l, err := lowerExpr(stmt.Cond.L, st)
			if err != nil {
				return nil, err
			}
			r, err := lowerExpr(stmt.Cond.R, st)
			if err != nil {
				return nil, err
			}
			then, err := lowerOp(stmt.Then, maps, st)
			if err != nil {
				return nil, err
			}
			out = append(out, lIf{op: stmt.Cond.Op, l: l, r: r, then: then})
		case ForEdges:
			body, err := lowerOp(stmt.Body, maps, st)
			if err != nil {
				return nil, err
			}
			out = append(out, lForEdges{body: body})
		default:
			return nil, fmt.Errorf("compiler: cannot lower %T", s)
		}
	}
	return out, nil
}

func lowerExpr(e Expr, st *slotTable) (slotExpr, error) {
	switch v := e.(type) {
	case Active:
		return slotExpr{kind: exActive}, nil
	case EdgeDst:
		return slotExpr{kind: exDst}, nil
	case Const:
		return slotExpr{kind: exConst, value: graph.NodeID(v.V)}, nil
	case Var:
		if !st.defined[v.Name] {
			return slotExpr{}, fmt.Errorf("compiler: read of unassigned variable %q", v.Name)
		}
		return slotExpr{kind: exVar, slot: st.slotFor(v.Name)}, nil
	default:
		return slotExpr{}, fmt.Errorf("compiler: cannot lower expression %T", e)
	}
}
