package compiler

// The paper's example programs in the IR. CCSVProgram is the literal
// Figure 4 source: the compiler turns it into the Figure 8 phase
// structure, which the package tests verify.

// CCSVProgram is Shiloach-Vishkin connected components (Figure 4): a hook
// loop and a shortcut loop over a min-reduced parent map, repeated (via
// the Flag) until neither changes anything.
func CCSVProgram() *Program {
	return &Program{
		Name: "cc-sv",
		Maps: []MapDecl{{Name: "parent", Kind: MinMap, InitToID: true}},
		Loops: []Loop{
			{ // Hook.
				Quiesce: "parent",
				Body: []Stmt{
					Read{Dst: "src_parent", Map: "parent", Key: Active{}},
					ForEdges{Body: []Stmt{
						Read{Dst: "dst_parent", Map: "parent", Key: EdgeDst{}},
						If{
							Cond: Cond{Op: Gt, L: Var{"src_parent"}, R: Var{"dst_parent"}},
							Then: []Stmt{
								Flag{},
								Reduce{Map: "parent", Key: Var{"src_parent"}, Val: Var{"dst_parent"}},
							},
						},
					}},
				},
			},
			{ // Shortcut.
				Quiesce: "parent",
				Body: []Stmt{
					Read{Dst: "p", Map: "parent", Key: Active{}},
					Read{Dst: "gp", Map: "parent", Key: Var{"p"}},
					If{
						Cond: Cond{Op: Ne, L: Var{"p"}, R: Var{"gp"}},
						Then: []Stmt{
							Reduce{Map: "parent", Key: Active{}, Val: Var{"gp"}},
						},
					},
				},
			},
		},
	}
}

// CCLPProgram is label-propagation connected components: a single
// adjacent-vertex loop pushing min labels to neighbors.
func CCLPProgram() *Program {
	return &Program{
		Name: "cc-lp",
		Maps: []MapDecl{{Name: "comp", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "comp",
			Body: []Stmt{
				Read{Dst: "label", Map: "comp", Key: Active{}},
				ForEdges{Body: []Stmt{
					Read{Dst: "dlabel", Map: "comp", Key: EdgeDst{}},
					If{
						Cond: Cond{Op: Lt, L: Var{"label"}, R: Var{"dlabel"}},
						Then: []Stmt{
							Reduce{Map: "comp", Key: EdgeDst{}, Val: Var{"label"}},
						},
					},
				}},
			},
		}},
	}
}

// MIS state encoding used by MISProgram.
const (
	MISUndecided = 0
	MISOut       = 1
	MISIn        = 2
)

// MISProgram is priority-based maximal independent set: an adjacent-vertex
// program over a degree-derived priority map and a max-reduced state map.
// The iterator is restricted to masters (a §3.2 subset iterator), so it
// must run under an edge-cut partition where masters hold their full
// adjacency.
func MISProgram() *Program {
	return &Program{
		Name: "mis",
		Maps: []MapDecl{
			{Name: "prio", Kind: MinMap, InitDegreePrio: true},
			{Name: "state", Kind: MaxMap, InitConst: MISUndecided},
		},
		Loops: []Loop{{
			Quiesce:     "state",
			MastersOnly: true,
			Body: []Stmt{
				Read{Dst: "s", Map: "state", Key: Active{}},
				If{
					Cond: Cond{Op: Eq, L: Var{"s"}, R: Const{MISUndecided}},
					Then: []Stmt{
						Read{Dst: "myp", Map: "prio", Key: Active{}},
						Assign{Dst: "wins", Val: Const{1}},
						ForEdges{Body: []Stmt{
							If{
								Cond: Cond{Op: Ne, L: EdgeDst{}, R: Active{}},
								Then: []Stmt{
									Read{Dst: "ds", Map: "state", Key: EdgeDst{}},
									If{
										Cond: Cond{Op: Eq, L: Var{"ds"}, R: Const{MISIn}},
										Then: []Stmt{
											Assign{Dst: "wins", Val: Const{0}},
											Reduce{Map: "state", Key: Active{}, Val: Const{MISOut}},
										},
									},
									If{
										Cond: Cond{Op: Eq, L: Var{"ds"}, R: Const{MISUndecided}},
										Then: []Stmt{
											Read{Dst: "dp", Map: "prio", Key: EdgeDst{}},
											If{
												Cond: Cond{Op: Lt, L: Var{"dp"}, R: Var{"myp"}},
												Then: []Stmt{
													Assign{Dst: "wins", Val: Const{0}},
												},
											},
										},
									},
								},
							},
						}},
						If{
							Cond: Cond{Op: Eq, L: Var{"wins"}, R: Const{1}},
							Then: []Stmt{
								Reduce{Map: "state", Key: Active{}, Val: Const{MISIn}},
							},
						},
					},
				},
			},
		}},
	}
}
