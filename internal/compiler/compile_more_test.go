package compiler

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Additional compiler coverage: guarded trans reads, chained trans reads,
// MIS plan structure, and end-to-end runs of hand-built programs.

func TestRequestOpKeepsGuardingIf(t *testing.T) {
	// A trans read inside an If must produce a request op whose Request
	// is guarded by the same condition (requests are conditional).
	prog := &Program{
		Name: "guarded",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body: []Stmt{
				Read{Dst: "a", Map: "m", Key: Active{}},
				If{Cond: Cond{Op: Gt, L: Var{"a"}, R: Const{10}}, Then: []Stmt{
					Read{Dst: "b", Map: "m", Key: Var{"a"}}, // trans, guarded
					Reduce{Map: "m", Key: Active{}, Val: Var{"b"}},
				}},
			},
		}},
	}
	plan, err := Compile(prog, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Loops[0]
	if len(lp.RequestOps) != 1 {
		t.Fatalf("request ops = %d, want 1", len(lp.RequestOps))
	}
	body := lp.RequestOps[0].Body
	// Expect: Read a; If a>10 { Request m[a] }.
	if len(body) != 2 {
		t.Fatalf("request body = %#v, want [Read; If]", body)
	}
	ifStmt, ok := body[1].(If)
	if !ok {
		t.Fatalf("second stmt = %#v, want guarding If", body[1])
	}
	if len(ifStmt.Then) != 1 {
		t.Fatalf("guarded body = %#v", ifStmt.Then)
	}
	if _, ok := ifStmt.Then[0].(Request); !ok {
		t.Fatalf("guarded stmt = %#v, want Request", ifStmt.Then[0])
	}
}

func TestRequestOpChainedTransReads(t *testing.T) {
	// Two chained trans reads: the second's request op must include a
	// copy of the first READ (not its request), served by the first
	// op's RequestSync — the paper's dominance-ordering rule.
	prog := &Program{
		Name: "chain",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body: []Stmt{
				Read{Dst: "a", Map: "m", Key: Active{}},
				Read{Dst: "b", Map: "m", Key: Var{"a"}}, // trans 1
				Read{Dst: "c", Map: "m", Key: Var{"b"}}, // trans 2, depends on 1
				If{Cond: Cond{Op: Ne, L: Var{"c"}, R: Active{}}, Then: []Stmt{
					Reduce{Map: "m", Key: Active{}, Val: Var{"c"}},
				}},
			},
		}},
	}
	plan, err := Compile(prog, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Loops[0]
	if len(lp.RequestOps) != 2 {
		t.Fatalf("request ops = %d, want 2 (one per trans read)", len(lp.RequestOps))
	}
	// Second op must contain the Read of b before Request m[b].
	second := lp.RequestOps[1].Body
	sawReadB := false
	for _, s := range second {
		if rd, ok := s.(Read); ok && rd.Dst == "b" {
			sawReadB = true
		}
		if rq, ok := s.(Request); ok {
			if v, ok := rq.Key.(Var); !ok || v.Name != "b" {
				t.Fatalf("second request key = %#v, want Var b", rq.Key)
			}
			if !sawReadB {
				t.Fatal("Request m[b] emitted before the Read of b")
			}
		}
	}
	if !sawReadB {
		t.Fatalf("second request op lacks the dominating Read of b: %#v", second)
	}

	// End to end: the program must at least run to quiescence without
	// missing-request panics on a multi-host cluster (the chained reads
	// exercise two request phases per round).
	g := gen.Chain(40, false, 1)
	got := runCompiled(t, prog, g, 2, partition.OEC, true, npm.Full, "m")
	if len(got) != g.NumNodes() {
		t.Fatal("missing results")
	}
}

func TestCompileMISPlanStructure(t *testing.T) {
	plan, err := Compile(MISProgram(), Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	lp := plan.Loops[0]
	if !lp.MastersOnly {
		t.Error("MIS must honor the programmer's masters-only iterator")
	}
	if len(lp.RequestOps) != 0 {
		t.Errorf("MIS is adjacent-vertex: %d request ops, want 0", len(lp.RequestOps))
	}
	// Both maps are read via self/adjacent keys: both pinned.
	if len(lp.PinMaps) != 2 {
		t.Errorf("PinMaps = %v, want prio and state", lp.PinMaps)
	}
	// Only state is reduced, so only state broadcasts.
	if len(lp.BroadcastMaps) != 1 || lp.BroadcastMaps[0] != "state" {
		t.Errorf("BroadcastMaps = %v, want [state]", lp.BroadcastMaps)
	}
}

func TestCompileMISNoOptStillMastersOnly(t *testing.T) {
	plan, err := Compile(MISProgram(), Options{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Loops[0].MastersOnly {
		t.Error("NO-OPT must still honor the programmer-specified iterator")
	}
	if len(plan.Loops[0].PinMaps) != 0 {
		t.Error("NO-OPT must not pin mirrors")
	}
}

func TestCompileRejectsUnassignedVariable(t *testing.T) {
	prog := &Program{
		Name: "bad-var",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body: []Stmt{
				Reduce{Map: "m", Key: Active{}, Val: Var{"never_set"}},
			},
		}},
	}
	if _, err := Compile(prog, Options{Optimize: true}); err == nil {
		t.Fatal("expected validation error for unassigned variable")
	}
}

// The executor still guards against unassigned variables at run time for
// hand-built plans that bypass Compile.
func TestExecUnassignedVariablePanics(t *testing.T) {
	prog := &Program{
		Name:  "bad-var",
		Maps:  []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{Quiesce: "m"}},
	}
	plan := &Plan{
		Program: prog,
		Loops: []*LoopPlan{{
			Quiesce:    "m",
			Compute:    []Stmt{Reduce{Map: "m", Key: Active{}, Val: Var{"never_set"}}},
			ReduceMaps: []string{"m"},
		}},
	}
	g := gen.Grid(3, 3, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unassigned variable")
		}
	}()
	c.Run(func(h *runtime.Host) {
		NewExec(h, plan, ExecConfig{}).Run()
	})
}

func TestCompiledMISMatchesHandWritten(t *testing.T) {
	// The compiled MIS and the hand-written algorithm use the same
	// priority rule, so they should produce identical sets.
	g := gen.Grid(7, 7, false, 1)
	states := runCompiled(t, MISProgram(), g, 2, partition.OEC, true, npm.Full, "state")
	set := make([]bool, g.NumNodes())
	for i, s := range states {
		set[i] = s == MISIn
	}
	if !graph.IsValidMIS(g, set) {
		t.Fatal("compiled MIS invalid")
	}
}
