package compiler

import (
	"strings"
	"testing"
)

func TestProgramStringCCSV(t *testing.T) {
	out := ProgramString(CCSVProgram())
	for _, want := range []string{
		"program cc-sv",
		"map parent: min reduce, init own ID",
		"KimbapWhile (parent) Updated",
		"src_parent = parent.Read(node)",
		"for (edge : graph.Edges(node))",
		"if (src_parent > dst_parent)",
		"work_done.Reduce(true)",
		"parent.Reduce(src_parent, dst_parent)",
		"gp = parent.Read(p)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPlanStringMatchesFigure8Shape(t *testing.T) {
	plan, err := Compile(CCSVProgram(), Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	out := PlanString(plan)
	// Figure 8's hook: pin, no requests, reduce+broadcast.
	for _, want := range []string{
		"plan cc-sv [OPT]",
		"parent.PinMirrors()",
		"parent.ReduceSync()",
		"parent.BroadcastSync()",
		"parent.UnpinMirrors()",
		// Figure 8's shortcut: masters-only iterator with a request phase.
		"ParFor (node : graph.MasterNodes()) {  // request phase",
		"parent.Request(p)",
		"parent.RequestSync()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The hook loop must NOT contain a request phase.
	hookPart := out[:strings.Index(out, "loop 1")]
	if strings.Contains(hookPart, "request phase") {
		t.Errorf("hook loop has a request phase:\n%s", hookPart)
	}
}

func TestPlanStringNoOpt(t *testing.T) {
	plan, err := Compile(CCLPProgram(), Options{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	out := PlanString(plan)
	if !strings.Contains(out, "[NO-OPT]") {
		t.Error("missing NO-OPT marker")
	}
	if strings.Contains(out, "PinMirrors") {
		t.Error("NO-OPT plan should not pin mirrors")
	}
	if strings.Count(out, "RequestSync") != 2 {
		t.Errorf("NO-OPT CC-LP should have 2 request syncs:\n%s", out)
	}
}

func TestProgramStringMIS(t *testing.T) {
	out := ProgramString(MISProgram())
	if !strings.Contains(out, "MasterNodes()") {
		t.Error("MIS iterator restriction not printed")
	}
	if !strings.Contains(out, "map prio: min reduce, init degree priority") {
		t.Errorf("prio map decl not printed:\n%s", out)
	}
}
