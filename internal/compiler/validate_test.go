package compiler

import (
	"strings"
	"testing"
)

func TestValidateAcceptsPaperPrograms(t *testing.T) {
	for _, p := range []*Program{CCSVProgram(), CCLPProgram(), MISProgram()} {
		if err := Validate(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejectsNonCautious(t *testing.T) {
	p := &Program{
		Name: "bad",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body: []Stmt{
				Reduce{Map: "m", Key: Active{}, Val: Const{0}},
				Read{Dst: "x", Map: "m", Key: Active{}}, // read after write
			},
		}},
	}
	err := Validate(p)
	if err == nil || !strings.Contains(err.Error(), "cautious") {
		t.Fatalf("expected cautious violation, got %v", err)
	}
}

func TestValidateAllowsReduceThenNextIterationRead(t *testing.T) {
	// The Figure 4 hook: the Reduce inside the edge loop is followed by
	// the NEXT edge's Read only via the back edge — allowed.
	p := &Program{
		Name: "hook-like",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body: []Stmt{
				ForEdges{Body: []Stmt{
					Read{Dst: "d", Map: "m", Key: EdgeDst{}},
					Reduce{Map: "m", Key: Var{"d"}, Val: Const{0}},
				}},
			},
		}},
	}
	if err := Validate(p); err != nil {
		t.Fatalf("back-edge read wrongly rejected: %v", err)
	}
}

func TestValidateAllowsCrossMapReadAfterReduce(t *testing.T) {
	p := &Program{
		Name: "cross-map",
		Maps: []MapDecl{
			{Name: "a", Kind: MinMap, InitToID: true},
			{Name: "b", Kind: MinMap, InitToID: true},
		},
		Loops: []Loop{{
			Quiesce: "a",
			Body: []Stmt{
				Reduce{Map: "a", Key: Active{}, Val: Const{0}},
				Read{Dst: "x", Map: "b", Key: Active{}}, // different map: fine
			},
		}},
	}
	if err := Validate(p); err != nil {
		t.Fatalf("cross-map read wrongly rejected: %v", err)
	}
}

func TestValidateRejectsEdgeDstOutsideLoop(t *testing.T) {
	p := &Program{
		Name: "bad-dst",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body:    []Stmt{Read{Dst: "x", Map: "m", Key: EdgeDst{}}},
		}},
	}
	if err := Validate(p); err == nil {
		t.Fatal("EdgeDst outside ForEdges accepted")
	}
}

func TestValidateRejectsUseBeforeAssign(t *testing.T) {
	p := &Program{
		Name: "bad-var",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body:    []Stmt{Reduce{Map: "m", Key: Active{}, Val: Var{"ghost"}}},
		}},
	}
	if err := Validate(p); err == nil {
		t.Fatal("use-before-assign accepted")
	}
}

func TestValidateRejectsBranchLocalEscape(t *testing.T) {
	p := &Program{
		Name: "branch-escape",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body: []Stmt{
				Read{Dst: "a", Map: "m", Key: Active{}},
				If{Cond: Cond{Op: Lt, L: Var{"a"}, R: Const{3}}, Then: []Stmt{
					Assign{Dst: "only_here", Val: Const{1}},
				}},
				Reduce{Map: "m", Key: Active{}, Val: Var{"only_here"}},
			},
		}},
	}
	if err := Validate(p); err == nil {
		t.Fatal("branch-local variable escape accepted")
	}
}

func TestValidateRejectsNestedForEdges(t *testing.T) {
	p := &Program{
		Name: "nested",
		Maps: []MapDecl{{Name: "m", Kind: MinMap, InitToID: true}},
		Loops: []Loop{{
			Quiesce: "m",
			Body:    []Stmt{ForEdges{Body: []Stmt{ForEdges{Body: nil}}}},
		}},
	}
	if err := Validate(p); err == nil {
		t.Fatal("nested ForEdges accepted")
	}
}

func TestValidateRejectsUndeclaredMap(t *testing.T) {
	p := &Program{
		Name:  "undeclared",
		Maps:  []MapDecl{{Name: "m", Kind: MinMap}},
		Loops: []Loop{{Quiesce: "m", Body: []Stmt{Read{Dst: "x", Map: "zap", Key: Active{}}}}},
	}
	if err := Validate(p); err == nil {
		t.Fatal("undeclared map accepted")
	}
}
