package compiler

import (
	"fmt"

	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// ExecConfig selects the node-property map backend for compiled programs.
type ExecConfig struct {
	Variant npm.Variant
	Store   npm.MCStore
	// MaxRoundsPerLoop caps each KimbapWhile loop's BSP rounds (0 = run
	// to quiescence). Benchmarks use it to bound configurations the paper
	// reports as timing out (Figure 12's NO-OPT runs) and extrapolate
	// from the per-round cost.
	MaxRoundsPerLoop int
}

// Exec runs a compiled Plan on one host (SPMD): it instantiates the
// declared property maps, initializes them, lowers every operator to a
// slot-indexed instruction tree, and executes the plan's BSP phase
// sequence. Programs with a Flag statement repeat the whole loop sequence
// until no flag is raised (the Figure 4 outer do-while).
type Exec struct {
	h     *runtime.Host
	plan  *Plan
	maps  map[string]npm.Map[graph.NodeID]
	loops []execLoop
	work  runtime.BoolReducer
	// requestActive marks backends without GAR, which must request even
	// active-node properties (see LoopPlan.ReadMaps).
	requestActive bool
	maxRounds     int
	rounds        int64
	// scratch[tid] holds one operator application's variable slots.
	scratch [][]graph.NodeID
}

type execLoop struct {
	lp         *LoopPlan
	requestOps []loweredReq
	compute    []lStmt
}

type loweredReq struct {
	body []lStmt
	m    npm.Map[graph.NodeID]
}

// NewExec instantiates and initializes the program's maps on this host and
// lowers all operators. It panics on malformed hand-built plans (Compile
// validates programs before they get here).
func NewExec(h *runtime.Host, plan *Plan, cfg ExecConfig) *Exec {
	e := &Exec{
		h: h, plan: plan, maps: map[string]npm.Map[graph.NodeID]{},
		requestActive: cfg.Variant != npm.Full && cfg.Variant != "",
		maxRounds:     cfg.MaxRoundsPerLoop,
	}
	for _, d := range plan.Program.Maps {
		var op npm.ReduceOp[graph.NodeID]
		switch d.Kind {
		case MinMap:
			op = npm.MinNodeID()
		case MaxMap:
			op = npm.MaxNodeID()
		case OverwriteMap:
			op = npm.Overwrite[graph.NodeID]()
		default:
			panic(fmt.Sprintf("compiler: unknown map kind %q", d.Kind))
		}
		m := npm.New(npm.Options[graph.NodeID]{
			Host: h, Op: op, Codec: npm.NodeIDCodec{},
			Variant: cfg.Variant, Store: cfg.Store,
		})
		if d.InitDegreePrio {
			n := uint64(h.HP.NumGlobalNodes())
			local := h.HP.Local
			h.ParForMasters(func(_ int, l graph.NodeID) {
				prio := uint64(local.Degree(l))*(n+1) + uint64(h.HP.GlobalID(l))
				if prio > 1<<32-1 {
					panic("compiler: degree priority overflows 32 bits at this scale")
				}
				m.Set(h.HP.GlobalID(l), graph.NodeID(prio))
			})
		} else {
			h.ParForNodes(func(_ int, local graph.NodeID) {
				gid := h.HP.GlobalID(local)
				if d.InitToID {
					m.Set(gid, gid)
				} else {
					m.Set(gid, graph.NodeID(d.InitConst))
				}
			})
		}
		m.InitSync()
		e.maps[d.Name] = m
	}

	maxSlots := 0
	for _, lp := range plan.Loops {
		st := newSlotTable()
		el := execLoop{lp: lp}
		for _, op := range lp.RequestOps {
			body, err := lowerOp(op.Body, e.maps, st)
			if err != nil {
				panic(err)
			}
			el.requestOps = append(el.requestOps, loweredReq{body: body, m: e.maps[op.Map]})
		}
		body, err := lowerOp(lp.Compute, e.maps, st)
		if err != nil {
			panic(err)
		}
		el.compute = body
		e.loops = append(e.loops, el)
		if st.size() > maxSlots {
			maxSlots = st.size()
		}
	}
	e.scratch = make([][]graph.NodeID, h.Threads)
	for t := range e.scratch {
		e.scratch[t] = make([]graph.NodeID, maxSlots)
	}
	return e
}

// Map exposes a program map for result extraction.
func (e *Exec) Map(name string) npm.Map[graph.NodeID] { return e.maps[name] }

// Rounds returns the total BSP rounds executed across all loops.
func (e *Exec) Rounds() int64 { return e.rounds }

// Run executes the program to quiescence. Collective: every host calls it.
func (e *Exec) Run() {
	hasFlag := programHasFlag(e.plan.Program)
	for {
		e.work.Set(false)
		for i := range e.loops {
			e.runLoop(&e.loops[i])
		}
		if !hasFlag {
			return
		}
		e.work.Sync(e.h.EP)
		if !e.work.Read() {
			return
		}
	}
}

func programHasFlag(p *Program) bool {
	found := false
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case Flag:
				found = true
			case If:
				walk(st.Then)
			case ForEdges:
				walk(st.Body)
			}
		}
	}
	for _, l := range p.Loops {
		walk(l.Body)
	}
	return found
}

func (e *Exec) runLoop(el *execLoop) {
	lp := el.lp
	for _, m := range lp.PinMaps {
		e.maps[m].PinMirrors()
	}
	quiesce := e.maps[lp.Quiesce]
	for loopRounds := 0; ; loopRounds++ {
		if e.maxRounds > 0 && loopRounds >= e.maxRounds {
			break
		}
		e.rounds++
		quiesce.ResetUpdated()
		if e.requestActive {
			for _, name := range lp.ReadMaps {
				m := e.maps[name]
				e.h.ParForNodes(func(_ int, local graph.NodeID) {
					m.Request(e.h.HP.GlobalID(local))
				})
				m.RequestSync()
			}
		}
		for _, op := range el.requestOps {
			e.runOperator(op.body, lp.MastersOnly)
			op.m.RequestSync()
		}
		e.h.TimeCompute(func() {
			e.runOperator(el.compute, lp.MastersOnly)
		})
		for _, m := range lp.ReduceMaps {
			e.maps[m].ReduceSync()
		}
		for _, m := range lp.BroadcastMaps {
			e.maps[m].BroadcastSync()
		}
		if !quiesce.IsUpdated() {
			break
		}
	}
	for _, m := range lp.PinMaps {
		e.maps[m].UnpinMirrors()
	}
}

// frame is one operator application's state.
type frame struct {
	slots  []graph.NodeID
	active graph.NodeID // global ID of the active node
	dst    graph.NodeID // global ID of the current edge destination
	local  graph.NodeID // local ID of the active node
	tid    int
}

func (e *Exec) runOperator(body []lStmt, mastersOnly bool) {
	run := func(tid int, local graph.NodeID) {
		f := frame{
			slots:  e.scratch[tid],
			active: e.h.HP.GlobalID(local),
			local:  local,
			tid:    tid,
		}
		e.execStmts(body, &f)
	}
	if mastersOnly {
		e.h.ParForMasters(run)
	} else {
		e.h.ParForNodes(run)
	}
}

func (e *Exec) execStmts(stmts []lStmt, f *frame) {
	for _, s := range stmts {
		switch st := s.(type) {
		case lRead:
			f.slots[st.dst] = st.m.Read(f.eval(st.key))
		case lRequest:
			st.m.Request(f.eval(st.key))
		case lReduce:
			st.m.Reduce(f.tid, f.eval(st.key), f.eval(st.val))
		case lAssign:
			f.slots[st.dst] = f.eval(st.val)
		case lFlag:
			e.work.Reduce(true)
		case lIf:
			if f.compare(st.op, st.l, st.r) {
				e.execStmts(st.then, f)
			}
		case lForEdges:
			local := e.h.HP.Local
			lo, hi := local.EdgeRange(f.local)
			for edge := lo; edge < hi; edge++ {
				f.dst = e.h.HP.GlobalID(local.Dst(edge))
				e.execStmts(st.body, f)
			}
		default:
			panic(fmt.Sprintf("compiler: unknown lowered statement %T", s))
		}
	}
}

func (f *frame) eval(x slotExpr) graph.NodeID {
	switch x.kind {
	case exActive:
		return f.active
	case exDst:
		return f.dst
	case exConst:
		return x.value
	default:
		return f.slots[x.slot]
	}
}

func (f *frame) compare(op CmpOp, l, r slotExpr) bool {
	a, b := f.eval(l), f.eval(r)
	switch op {
	case Lt:
		return a < b
	case Gt:
		return a > b
	case Eq:
		return a == b
	case Ne:
		return a != b
	default:
		panic(fmt.Sprintf("compiler: unknown comparison %q", op))
	}
}
