package compiler

import "fmt"

// Validation of the §3.2 programming-model requirements. Kimbap requires
// operators to be *cautious* (Pingali et al.): writes must follow the
// reads they could affect. Kimbap's reductions are deferred to ReduceSync,
// so a read can never observe a same-round write; what must still hold is
// that no read of a map follows a reduce to that same map in one
// *application* of the operator — i.e., in forward control flow, ignoring
// the edge-loop back edges that separate applications.
//
// Validate also enforces the structural rules the executor relies on:
// EdgeDst only inside ForEdges, variables assigned before use,
// no nested edge loops, and declared map references.

// Validate checks a program against the programming-model rules and
// returns the first violation found, or nil.
func Validate(p *Program) error {
	for li := range p.Loops {
		if err := validateLoop(p, &p.Loops[li]); err != nil {
			return fmt.Errorf("compiler: %s loop %d: %w", p.Name, li, err)
		}
	}
	return nil
}

func validateLoop(p *Program, loop *Loop) error {
	c := buildCFG(loop.Body)

	// Cautious-operator check: no Read of map M forward-reachable from a
	// Reduce to M within one operator application.
	for _, n := range c.nodes {
		red, ok := n.stmt.(Reduce)
		if !ok {
			continue
		}
		reach := c.forwardReachableFrom(n.id)
		for _, m := range c.nodes {
			rd, ok := m.stmt.(Read)
			if ok && rd.Map == red.Map && m.id != n.id && reach[m.id] {
				return fmt.Errorf("operator is not cautious: Read of %q follows a "+
					"Reduce to it (reduce node %d, read node %d)", rd.Map, n.id, m.id)
			}
		}
	}

	// Structural checks over the AST.
	return walkStmts(loop.Body, false, map[string]bool{}, p)
}

// forwardReachableFrom returns the CFG nodes reachable from start without
// traversing loop back edges. A back edge separates loop *iterations*,
// not the loop's exit: control that reaches the end of an edge-loop body
// still flows to the statements after the loop, so the traversal resumes
// at the loop head's non-body successors (the exit continuation) while
// skipping the body re-entry. A Read after a ForEdges therefore does
// follow a Reduce inside it, exactly as in the Go-level cautiousop
// analyzer, while a Read at the top of the next iteration does not.
func (c *cfg) forwardReachableFrom(start int) []bool {
	seen := make([]bool, len(c.nodes))
	var visit func(n int)
	visit = func(n int) {
		for _, s := range c.nodes[n].succs {
			if c.backEdges[[2]int{n, s}] {
			exits:
				for _, out := range c.nodes[s].succs {
					if out == c.nodes[s].bodyEntry || seen[out] {
						continue exits
					}
					seen[out] = true
					visit(out)
				}
				continue
			}
			if !seen[s] {
				seen[s] = true
				visit(s)
			}
		}
	}
	visit(start)
	return seen
}

func walkStmts(stmts []Stmt, inEdges bool, defined map[string]bool, p *Program) error {
	checkExpr := func(e Expr) error {
		switch v := e.(type) {
		case EdgeDst:
			if !inEdges {
				return fmt.Errorf("EdgeDst used outside ForEdges")
			}
		case Var:
			if !defined[v.Name] {
				return fmt.Errorf("variable %q used before assignment", v.Name)
			}
		}
		return nil
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case Read:
			if _, err := p.mapDecl(st.Map); err != nil {
				return err
			}
			if err := checkExpr(st.Key); err != nil {
				return err
			}
			defined[st.Dst] = true
		case Reduce:
			if _, err := p.mapDecl(st.Map); err != nil {
				return err
			}
			if err := checkExpr(st.Key); err != nil {
				return err
			}
			if err := checkExpr(st.Val); err != nil {
				return err
			}
		case Assign:
			if err := checkExpr(st.Val); err != nil {
				return err
			}
			defined[st.Dst] = true
		case If:
			if err := checkExpr(st.Cond.L); err != nil {
				return err
			}
			if err := checkExpr(st.Cond.R); err != nil {
				return err
			}
			// Branch-local definitions do not escape: a variable assigned
			// only under a condition may be unassigned on other paths.
			branch := copyDefs(defined)
			if err := walkStmts(st.Then, inEdges, branch, p); err != nil {
				return err
			}
		case ForEdges:
			if inEdges {
				return fmt.Errorf("nested ForEdges is not supported")
			}
			body := copyDefs(defined)
			if err := walkStmts(st.Body, true, body, p); err != nil {
				return err
			}
		case Flag, Request:
			// no structural constraints
		}
	}
	return nil
}

func copyDefs(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
