package compiler

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the iterative dominator computation agrees with the definition
// — M dominates N iff every entry→N path passes through M, checked by
// brute force (N unreachable from entry once M is removed).

// randomBody builds a random nest of statements exercising every CFG
// construct.
func randomBody(r *rand.Rand, depth int) []Stmt {
	n := r.Intn(4) + 1
	body := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		switch k := r.Intn(5); {
		case k == 0 && depth < 3:
			body = append(body, If{
				Cond: Cond{Op: Lt, L: Active{}, R: Const{uint32(r.Intn(10))}},
				Then: randomBody(r, depth+1),
			})
		case k == 1 && depth == 0:
			body = append(body, ForEdges{Body: randomBody(r, depth+1)})
		case k == 2:
			body = append(body, Assign{Dst: "x", Val: Const{1}})
		case k == 3:
			body = append(body, Read{Dst: "y", Map: "m", Key: Active{}})
		default:
			body = append(body, Reduce{Map: "m", Key: Active{}, Val: Const{0}})
		}
	}
	return body
}

// bruteDominates reports whether a dominates b: b must be unreachable from
// entry when traversal is forbidden to pass through a (with a==b trivially
// dominating).
func bruteDominates(c *cfg, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(c.nodes))
	var visit func(n int)
	visit = func(n int) {
		if n == a || seen[n] {
			return
		}
		seen[n] = true
		for _, s := range c.nodes[n].succs {
			visit(s)
		}
	}
	visit(c.entry)
	return !seen[b]
}

func TestQuickDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := buildCFG(randomBody(r, 0))
		idom := c.dominators(false)
		for a := 0; a < len(c.nodes); a++ {
			for b := 0; b < len(c.nodes); b++ {
				want := bruteDominates(c, a, b)
				got := dominates(idom, a, b)
				if want != got {
					t.Logf("seed %d: dominates(%d,%d) = %v, brute force %v",
						seed, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPostDominatorsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := buildCFG(randomBody(r, 0))
		ipdom := c.dominators(true)
		// Post-dominance is dominance on the reversed graph from exit.
		rev := &cfg{nodes: make([]*cfgNode, len(c.nodes)), entry: c.exit, exit: c.entry}
		for i, n := range c.nodes {
			rev.nodes[i] = &cfgNode{id: i, succs: n.preds, preds: n.succs}
		}
		for a := 0; a < len(c.nodes); a++ {
			for b := 0; b < len(c.nodes); b++ {
				want := bruteDominates(rev, a, b)
				got := dominates(ipdom, a, b)
				if want != got {
					t.Logf("seed %d: postdom(%d,%d) = %v, brute force %v",
						seed, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
