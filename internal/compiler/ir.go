// Package compiler reimplements the Kimbap compiler (paper §5): it takes
// shared-memory vertex operators written in a small statement IR, builds a
// statement-level control-flow graph, computes dominator and
// post-dominator trees (§2.3), and applies the paper's transformations —
// DoWhile wrapping, operator splitting with Request insertion, and
// RequestSync/ReduceSync placement — plus the two §5.2 optimizations:
// master-nodes RequestSync elision and adjacent-neighbors RequestSync
// elision (pinned mirrors with broadcast).
//
// The compiled artifact is an executable Plan interpreted over the runtime
// and node-property maps, so compiled programs run on the same simulated
// cluster as the hand-written ones. Compiling with optimizations disabled
// reproduces the paper's NO-OPT configuration (Figure 12).
package compiler

import "fmt"

// The IR is deliberately small: enough to express the paper's example
// programs (Figures 4 and 8). Values are node IDs; expressions are pure;
// reads from property maps are statements so the control-flow graph is
// statement-level, as in the paper.

// Expr is a pure value expression.
type Expr interface{ exprString() string }

// Active is the active node's global ID.
type Active struct{}

func (Active) exprString() string { return "node" }

// EdgeDst is the current edge's destination (valid inside ForEdges).
type EdgeDst struct{}

func (EdgeDst) exprString() string { return "dst" }

// Var references a variable assigned earlier in the operator.
type Var struct{ Name string }

func (v Var) exprString() string { return v.Name }

// Const is a literal node-ID value.
type Const struct{ V uint32 }

func (c Const) exprString() string { return fmt.Sprint(c.V) }

// CmpOp is a comparison operator for conditions.
type CmpOp string

// Comparison operators.
const (
	Lt CmpOp = "<"
	Gt CmpOp = ">"
	Eq CmpOp = "=="
	Ne CmpOp = "!="
)

// Cond is a comparison between two expressions.
type Cond struct {
	Op   CmpOp
	L, R Expr
}

func (c Cond) String() string {
	return c.L.exprString() + " " + string(c.Op) + " " + c.R.exprString()
}

// Stmt is an IR statement.
type Stmt interface{ stmtKind() string }

// Read assigns Map[Key] to variable Dst.
type Read struct {
	Dst string
	Map string
	Key Expr
}

func (Read) stmtKind() string { return "read" }

// Reduce merges Val into Map[Key] with the map's reduction operator.
type Reduce struct {
	Map string
	Key Expr
	Val Expr
}

func (Reduce) stmtKind() string { return "reduce" }

// Assign sets a variable to an expression value.
type Assign struct {
	Dst string
	Val Expr
}

func (Assign) stmtKind() string { return "assign" }

// If executes Then when the condition holds (no else branch; nest Ifs for
// more complex control flow).
type If struct {
	Cond Cond
	Then []Stmt
}

func (If) stmtKind() string { return "if" }

// ForEdges iterates the active node's local edges, binding EdgeDst.
type ForEdges struct {
	Body []Stmt
}

func (ForEdges) stmtKind() string { return "foredges" }

// Flag raises the program's work-done reducer (the Figure 4 BoolReducer).
type Flag struct{}

func (Flag) stmtKind() string { return "flag" }

// Request marks Map[Key] for retrieval; inserted by the compiler, never
// written by users.
type Request struct {
	Map string
	Key Expr
}

func (Request) stmtKind() string { return "request" }

// MapKind is a property map's reduction operator kind.
type MapKind string

// Map reduction kinds available to IR programs.
const (
	MinMap       MapKind = "min"
	MaxMap       MapKind = "max"
	OverwriteMap MapKind = "overwrite"
)

// MapDecl declares a node-property map used by a program.
type MapDecl struct {
	Name string
	Kind MapKind
	// InitToID seeds every node's value with its own ID; InitDegreePrio
	// seeds masters with the distinct degree-based priority
	// degree*(N+1)+ID (requires an edge-cut partition so master degrees
	// are global). Otherwise the map is initialized with InitConst.
	InitToID       bool
	InitDegreePrio bool
	InitConst      uint32
}

// Loop is one KimbapWhile construct: an operator repeated until the
// quiescence map stops updating (Figure 3).
type Loop struct {
	// Quiesce names the map whose updates keep the loop running.
	Quiesce string
	// Body is the programmer's operator over the active node.
	Body []Stmt
	// MastersOnly restricts the node iterator to master proxies — the
	// §3.2 "iteration over a subset of nodes". Decision-style operators
	// (e.g. MIS) must run exactly once per node globally and use this
	// with an edge-cut partition that gives masters their full adjacency.
	MastersOnly bool
}

// Program is a vertex-centric IR program: map declarations plus a sequence
// of KimbapWhile loops executed in order.
type Program struct {
	Name  string
	Maps  []MapDecl
	Loops []Loop
}

// mapDecl looks up a declaration by name.
func (p *Program) mapDecl(name string) (MapDecl, error) {
	for _, d := range p.Maps {
		if d.Name == name {
			return d, nil
		}
	}
	return MapDecl{}, fmt.Errorf("compiler: undeclared map %q", name)
}
