// Package lockdiscipline verifies Kimbap's shard-mutex discipline:
//
//   - every Lock/TryLock acquisition (including the conflict-counting
//     acquire wrapper lockCounting, which acquires its receiver's mu
//     field) is paired with an Unlock on every forward control-flow path
//     out of the function, either directly or by an immediate defer;
//   - no mutex is held across a potentially blocking communication
//     operation — a channel send or receive, a select, or a call into
//     kimbap/internal/comm (Exchange, Barrier, Send, Recv, AllReduce*).
//     The BSP exchange protocol requires every host to keep draining its
//     peers; a host that parks on a channel while holding a shard lock
//     that a worker thread needs can deadlock the whole cluster.
//     Worker-pool dispatches (runtime.ParFor and its ParForNodes /
//     ParForMasters / ParForActive wrappers, and the ingestion pool's
//     par.Do / par.Static / par.Dynamic / par.PrefixSum) count as
//     blocking for the same reason: the caller parks until every worker
//     finishes, so a worker iteration that needs the caller's shard lock
//     deadlocks the host.
//
// The analysis is structured (per-function, branch-sensitive, loop bodies
// must preserve lock state) rather than CFG-complete: functions using goto
// or labeled branches are skipped, and acquiring through function values
// is invisible. Acquire wrappers — functions named lockCounting — are
// themselves exempt, since returning with the lock held is their purpose.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kimbap/internal/analysis/framework"
)

// Analyzer is the lockdiscipline check.
var Analyzer = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc:  "verify shard-mutex Lock/Unlock pairing and no blocking comm while locked",
	Run:  run,
}

// acquireWrapper names methods that intentionally return holding their
// receiver's mu field.
const acquireWrapper = "lockCounting"

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || decl.Name.Name == acquireWrapper {
				continue
			}
			analyzeFunc(pass, decl.Body)
		}
	}
	return nil
}

// lockState maps a normalized mutex expression ("sh.mu") to its Lock site.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockState) keys() []string {
	var out []string
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

type funcAnalysis struct {
	pass     *framework.Pass
	info     *types.Info
	held     lockState
	deferred map[string]bool // released by defer; satisfies the exit check
	bad      bool            // goto/label seen: give up on this function
}

func analyzeFunc(pass *framework.Pass, body *ast.BlockStmt) {
	fa := &funcAnalysis{
		pass:     pass,
		info:     pass.Pkg.Info,
		held:     lockState{},
		deferred: map[string]bool{},
	}
	terminated := fa.stmts(body.List, nil)
	if fa.bad {
		return
	}
	if !terminated {
		fa.checkRelease(body.Rbrace)
	}
}

// checkRelease reports locks still held (and not defer-released) at a
// function exit point.
func (fa *funcAnalysis) checkRelease(at token.Pos) {
	for _, k := range fa.held.keys() {
		if fa.deferred[k] {
			continue
		}
		fa.pass.Reportf(fa.held[k], "%s.Lock() is not released on all paths (missing Unlock before the exit at line %d)",
			k, fa.pass.Fset().Position(at).Line)
	}
}

// stmts walks a statement list. loopEntry, when non-nil, is the lock state
// at the enclosing loop's entry (break/continue must match it). It reports
// whether the list always terminates (return/panic) before falling through.
func (fa *funcAnalysis) stmts(list []ast.Stmt, loopEntry lockState) bool {
	for _, s := range list {
		if fa.bad {
			return false
		}
		if fa.stmt(s, loopEntry) {
			return true
		}
	}
	return false
}

// stmt processes one statement and reports whether it terminates control
// flow (return or unconditional panic).
func (fa *funcAnalysis) stmt(s ast.Stmt, loopEntry lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		fa.expr(s.X)
	case *ast.SendStmt:
		fa.blockingOp(s.Pos(), "channel send")
		fa.expr(s.Chan)
		fa.expr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fa.expr(e)
		}
		for _, e := range s.Lhs {
			fa.expr(e)
		}
	case *ast.IncDecStmt:
		fa.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						fa.expr(e)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer X.Unlock() satisfies the exit check but the lock stays
		// held for blocking-op purposes until the function returns.
		if key, ok := fa.unlockTarget(s.Call); ok {
			fa.deferred[key] = true
		}
		// Other deferred calls run after the analyzed region; skip.
	case *ast.GoStmt:
		// The goroutine body runs concurrently with fresh lock state.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			analyzeFunc(fa.pass, lit.Body)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fa.expr(e)
		}
		fa.checkRelease(s.Pos())
		return true
	case *ast.BranchStmt:
		if s.Label != nil || s.Tok == token.GOTO {
			fa.bad = true
			return false
		}
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE {
			if loopEntry != nil && !fa.held.equal(loopEntry) {
				fa.pass.Reportf(s.Pos(), "lock state at %s differs from loop entry (held: %s)",
					s.Tok, strings.Join(fa.held.keys(), ", "))
			}
			return true // terminates this statement list
		}
	case *ast.LabeledStmt:
		fa.bad = true
	case *ast.BlockStmt:
		return fa.stmts(s.List, loopEntry)
	case *ast.IfStmt:
		return fa.ifStmt(s, loopEntry)
	case *ast.ForStmt:
		if s.Init != nil {
			fa.stmt(s.Init, loopEntry)
		}
		if s.Cond != nil {
			fa.expr(s.Cond)
		}
		fa.loopBody(s.Body, s.Post, loopEntry)
	case *ast.RangeStmt:
		fa.expr(s.X)
		fa.loopBody(s.Body, nil, loopEntry)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		fa.switchStmt(s, loopEntry)
	case *ast.SelectStmt:
		fa.blockingOp(s.Pos(), "select")
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			saved := fa.held.clone()
			if cc.Comm != nil {
				fa.stmt(cc.Comm, loopEntry)
			}
			fa.stmts(cc.Body, loopEntry)
			fa.held = saved // conservative: ignore per-case lock changes
		}
	}
	return false
}

// ifStmt handles branch-sensitive lock state, including the
// `if mu.TryLock()` acquire idiom.
func (fa *funcAnalysis) ifStmt(s *ast.IfStmt, loopEntry lockState) bool {
	if s.Init != nil {
		fa.stmt(s.Init, loopEntry)
	}

	thenState := fa.held.clone()
	elseState := fa.held.clone()
	cond := ast.Unparen(s.Cond)
	negated := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = ast.Unparen(u.X)
		negated = true
	}
	if key, ok := fa.tryLockTarget(cond); ok {
		if negated {
			elseState[key] = cond.Pos()
		} else {
			thenState[key] = cond.Pos()
		}
	} else {
		fa.expr(s.Cond)
	}

	base := fa.held
	fa.held = thenState
	thenTerm := fa.stmts(s.Body.List, loopEntry)
	thenOut := fa.held

	var elseTerm bool
	fa.held = elseState
	if s.Else != nil {
		elseTerm = fa.stmt(s.Else, loopEntry)
	}
	elseOut := fa.held

	switch {
	case thenTerm && elseTerm:
		fa.held = base
		return true
	case thenTerm:
		fa.held = elseOut
	case elseTerm:
		fa.held = thenOut
	default:
		if !thenOut.equal(elseOut) {
			fa.pass.Reportf(s.Pos(), "lock state diverges across if/else branches (then holds [%s], else holds [%s])",
				strings.Join(thenOut.keys(), ", "), strings.Join(elseOut.keys(), ", "))
		}
		fa.held = thenOut
	}
	return false
}

func (fa *funcAnalysis) switchStmt(s ast.Stmt, loopEntry lockState) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			fa.stmt(s.Init, loopEntry)
		}
		if s.Tag != nil {
			fa.expr(s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	}
	entry := fa.held.clone()
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		for _, e := range cc.List {
			fa.expr(e)
		}
		fa.held = entry.clone()
		if !fa.stmts(cc.Body, loopEntry) && !fa.held.equal(entry) {
			fa.pass.Reportf(cc.Pos(), "lock state changes across switch case (held: %s)",
				strings.Join(fa.held.keys(), ", "))
		}
	}
	fa.held = entry
}

// loopBody requires the body to preserve lock state across iterations.
func (fa *funcAnalysis) loopBody(body *ast.BlockStmt, post ast.Stmt, _ lockState) {
	entry := fa.held.clone()
	term := fa.stmts(body.List, entry)
	if post != nil {
		fa.stmt(post, entry)
	}
	if !term && !fa.held.equal(entry) {
		fa.pass.Reportf(body.Pos(), "lock state changes across loop iteration (held at end: %s)",
			strings.Join(fa.held.keys(), ", "))
	}
	fa.held = entry
}

// expr scans an expression for acquire/release calls, channel receives,
// and blocking comm calls. Nested function literals get fresh analyses.
func (fa *funcAnalysis) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			analyzeFunc(fa.pass, n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fa.blockingOp(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			fa.call(n)
		}
		return true
	})
}

// call classifies one call expression.
func (fa *funcAnalysis) call(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch {
	case name == "Lock" || name == "RLock":
		if key, ok := mutexKey(fa.info, sel); ok {
			fa.held[key] = call.Pos()
		}
	case name == "TryLock" || name == "TryRLock":
		// Handled branch-sensitively in ifStmt; a statement-level TryLock
		// that discards its result acquires unconditionally... and loses
		// track of failure, which is itself worth flagging.
		if key, ok := mutexKey(fa.info, sel); ok {
			fa.pass.Reportf(call.Pos(), "result of %s.TryLock() ignored: acquisition state is unknown", key)
		}
	case name == "Unlock" || name == "RUnlock":
		if key, ok := mutexKey(fa.info, sel); ok {
			delete(fa.held, key)
		}
	case name == acquireWrapper:
		// sh.lockCounting() acquires sh.mu.
		if recv, ok := exprKey(sel.X); ok {
			fa.held[recv+".mu"] = call.Pos()
		}
	default:
		if fa.isCommCall(sel) {
			fa.blockingOp(call.Pos(), fmt.Sprintf("comm.%s call", name))
		} else if fa.isParForCall(sel) {
			fa.blockingOp(call.Pos(), fmt.Sprintf("runtime.%s call", name))
		} else if fa.isParDispatch(sel) {
			fa.blockingOp(call.Pos(), fmt.Sprintf("par.%s call", name))
		}
	}
}

// blockingOp reports any held locks at a potentially blocking operation.
func (fa *funcAnalysis) blockingOp(pos token.Pos, what string) {
	for _, k := range fa.held.keys() {
		fa.pass.Reportf(pos, "%s while holding %s: a blocked host keeps the shard locked and can deadlock the BSP exchange", what, k)
	}
}

// tryLockTarget recognizes a direct X.TryLock() call used as a condition.
func (fa *funcAnalysis) tryLockTarget(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "TryLock" && sel.Sel.Name != "TryRLock") {
		return "", false
	}
	return mutexKey(fa.info, sel)
}

// unlockTarget recognizes X.Unlock()/X.RUnlock() and returns the mutex key.
func (fa *funcAnalysis) unlockTarget(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return "", false
	}
	return mutexKey(fa.info, sel)
}

// isCommCall reports whether sel names a blocking transport operation
// from kimbap/internal/comm. The package's pure codec helpers
// (AppendUint32 and friends) never block and are not flagged.
func (fa *funcAnalysis) isCommCall(sel *ast.SelectorExpr) bool {
	fn, ok := fa.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/comm") {
		return false
	}
	switch fn.Name() {
	case "Exchange", "ExchangeInto", "ExchangeFunc", "Barrier",
		"Send", "SendBuffered", "FlushSends", "Recv":
		return true
	}
	return strings.HasPrefix(fn.Name(), "AllReduce")
}

// isParForCall reports whether sel names a worker-pool dispatch from
// kimbap/internal/runtime. The ParFor family parks the calling goroutine
// until every worker finishes its chunk, so it blocks exactly like a
// channel receive. The async drain entry points (AsyncDrain,
// AsyncDrainBits) block the same way — the caller joins every scheduler
// worker before the drain returns, and a drain can run for a whole
// compute phase. Frontier methods (Activate, Advance) are plain atomics
// and are not flagged.
func (fa *funcAnalysis) isParForCall(sel *ast.SelectorExpr) bool {
	fn, ok := fa.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/runtime") {
		return false
	}
	switch fn.Name() {
	case "ParFor", "ParForNodes", "ParForMasters", "ParForActive",
		"AsyncDrain", "AsyncDrainBits":
		return true
	}
	return false
}

// isParDispatch reports whether sel names a pool dispatch from
// kimbap/internal/par, the ingestion-side worker pool. Do, Static,
// Dynamic, and PrefixSum all park the caller until the last worker
// returns; Range and Resolve are pure arithmetic and are not flagged.
func (fa *funcAnalysis) isParDispatch(sel *ast.SelectorExpr) bool {
	fn, ok := fa.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/par") {
		return false
	}
	switch fn.Name() {
	case "Do", "Static", "Dynamic", "PrefixSum":
		return true
	}
	return false
}

// mutexKey renders the receiver of a Lock-family selector as a stable key,
// requiring the receiver to be a sync mutex type so unrelated Lock methods
// are not tracked.
func mutexKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	t := info.Types[sel.X].Type
	if t == nil || !isMutexType(t) {
		return "", false
	}
	return exprKey(sel.X)
}

func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	name := obj.Name()
	return obj.Pkg().Path() == "sync" && (name == "Mutex" || name == "RWMutex")
}

// exprKey renders a chain of identifiers, selections, and simple index
// expressions ("s.shards[i].mu") as a stable string key.
func exprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		idx, ok := exprKey(e.Index)
		if !ok {
			if lit, isLit := e.Index.(*ast.BasicLit); isLit {
				idx, ok = lit.Value, true
			}
		}
		if !ok {
			return "", false
		}
		return base + "[" + idx + "]", true
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	}
	return "", false
}
