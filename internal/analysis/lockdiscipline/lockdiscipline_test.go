package lockdiscipline_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "lockdiscipline")
}
