// Golden tests for the lockdiscipline analyzer: Lock/Unlock pairing on
// all forward paths and no blocking operation while a mutex is held.
package lockdiscipline

import (
	"sync"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/par"
	"kimbap/internal/runtime"
)

type shard struct {
	mu sync.Mutex
	m  map[int]int
}

func deferPair(sh *shard, k, v int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[k] = v
}

func explicitPair(sh *shard, k int) int {
	sh.mu.Lock()
	v := sh.m[k]
	sh.mu.Unlock()
	return v
}

func leakOnEarlyReturn(sh *shard, k int) int {
	sh.mu.Lock() // want `sh.mu.Lock\(\) is not released on all paths`
	if k < 0 {
		return 0
	}
	v := sh.m[k]
	sh.mu.Unlock()
	return v
}

func leakAtFunctionEnd(sh *shard, k, v int) {
	sh.mu.Lock() // want `sh.mu.Lock\(\) is not released on all paths`
	sh.m[k] = v
}

func divergingBranches(sh *shard, cond bool) {
	if cond { // want `lock state diverges across if/else branches`
		sh.mu.Lock()
	}
	sh.mu.Unlock()
}

func tryLockIdiom(sh *shard, k, v int) bool {
	if sh.mu.TryLock() {
		sh.m[k] = v
		sh.mu.Unlock()
		return true
	}
	return false
}

func negatedTryLockIdiom(sh *shard, k, v int) {
	if !sh.mu.TryLock() {
		return
	}
	sh.m[k] = v
	sh.mu.Unlock()
}

func tryLockResultIgnored(sh *shard) {
	sh.mu.TryLock() // want `result of sh.mu.TryLock\(\) ignored`
	sh.mu.Unlock()
}

func sendWhileLocked(sh *shard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `channel send while holding sh.mu`
	sh.mu.Unlock()
}

func recvWhileDeferLocked(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	<-ch // want `channel receive while holding sh.mu`
}

func barrierWhileLocked(sh *shard, ep comm.Endpoint) {
	sh.mu.Lock()
	comm.Barrier(ep) // want `comm.Barrier call while holding sh.mu`
	sh.mu.Unlock()
}

// The overlap-era entry points block like Exchange does: ExchangeFunc
// receives from every peer, and a buffered send can flush to a full socket.
func exchangeFuncWhileLocked(sh *shard, ep comm.Endpoint) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	comm.ExchangeFunc(ep, comm.TagApp, nil, nil) // want `comm.ExchangeFunc call while holding sh.mu`
}

func sendBufferedWhileLocked(sh *shard, bs comm.BufferedSender) {
	sh.mu.Lock()
	bs.SendBuffered(1, comm.TagApp, nil) // want `comm.SendBuffered call while holding sh.mu`
	bs.FlushSends() // want `comm.FlushSends call while holding sh.mu`
	sh.mu.Unlock()
}

// Codec helpers never block: no diagnostic.
func codecWhileLocked(sh *shard, buf []byte) []byte {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return comm.AppendUint32(buf, 7)
}

func barrierAfterUnlock(sh *shard, ep comm.Endpoint, k, v int) {
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
	comm.Barrier(ep)
}

// Per-iteration lock/unlock (the memory-accounting idiom) is fine.
func lockPerIteration(shards []shard) {
	for i := range shards {
		shards[i].mu.Lock()
		shards[i].mu.Unlock()
	}
}

func lockHeldAcrossIterations(shards []shard) {
	for i := range shards { // want `lock state changes across loop iteration`
		shards[i].mu.Lock()
	}
}

// Worker-pool dispatches park the caller until every worker finishes, so
// holding a shard lock across one deadlocks any worker that needs it.
func parForWhileLocked(sh *shard, h *runtime.Host) {
	sh.mu.Lock()
	h.ParFor(64, func(tid, i int) {}) // want `runtime.ParFor call while holding sh.mu`
	sh.mu.Unlock()
}

func parForActiveWhileDeferLocked(sh *shard, h *runtime.Host, fr *runtime.Frontier) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h.ParForActive(fr, func(tid int, node graph.NodeID) {}) // want `runtime.ParForActive call while holding sh.mu`
}

// The async drain entry points join every scheduler worker before
// returning — a whole compute phase can run inside one call — so they
// block exactly like the ParFor family.
func asyncDrainWhileLocked(sh *shard, h *runtime.Host, fr *runtime.Frontier) {
	sh.mu.Lock()
	h.AsyncDrain(fr, runtime.AsyncOpts{}, func(tid int, node graph.NodeID, cx *runtime.AsyncCtx) {}) // want `runtime.AsyncDrain call while holding sh.mu`
	sh.mu.Unlock()
}

func asyncDrainBitsWhileDeferLocked(sh *shard, h *runtime.Host, b *runtime.Bitset) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h.AsyncDrainBits(b, runtime.AsyncOpts{}, func(tid int, node graph.NodeID, cx *runtime.AsyncCtx) {}) // want `runtime.AsyncDrainBits call while holding sh.mu`
}

func asyncDrainAfterUnlock(sh *shard, h *runtime.Host, fr *runtime.Frontier, k, v int) {
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
	h.AsyncDrain(fr, runtime.AsyncOpts{}, func(tid int, node graph.NodeID, cx *runtime.AsyncCtx) {})
}

// In-drain re-enqueue is one dedup-bit set plus a deque push — lock-free
// by construction (the conflictfree analyzer proves it), so bodies may
// call it inside their own locked regions.
func enqueueWhileLocked(sh *shard, cx *runtime.AsyncCtx, node graph.NodeID, k, v int) {
	sh.mu.Lock()
	sh.m[k] = v
	cx.Enqueue(node)
	sh.mu.Unlock()
}

// Frontier activation is one atomic fetch-or: it never blocks, so marking
// a vertex active inside a locked region is fine.
func activateWhileLocked(sh *shard, fr *runtime.Frontier, k, v int) {
	sh.mu.Lock()
	sh.m[k] = v
	fr.Activate(k)
	sh.mu.Unlock()
}

func parForNodesAfterUnlock(sh *shard, h *runtime.Host, k, v int) {
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
	h.ParForNodes(func(tid int, node graph.NodeID) {})
}

// The conflict-counting acquire wrapper intentionally returns holding
// sh.mu; the analyzer exempts it and models its callers correctly.
func (sh *shard) lockCounting() {
	if sh.mu.TryLock() {
		return
	}
	sh.mu.Lock()
}

func useAcquireWrapper(sh *shard, k, v int) {
	sh.lockCounting()
	defer sh.mu.Unlock()
	sh.m[k] = v
}

func wrapperLeaks(sh *shard, k, v int) {
	sh.lockCounting() // want `sh.mu.Lock\(\) is not released on all paths`
	sh.m[k] = v
}

// The ingestion pool's dispatches park the caller exactly like ParFor.
func parDoWhileLocked(sh *shard) {
	sh.mu.Lock()
	par.Do(4, func(w int) {}) // want `par.Do call while holding sh.mu`
	sh.mu.Unlock()
}

func parStaticWhileDeferLocked(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	par.Static(4, 256, func(w, lo, hi int) {}) // want `par.Static call while holding sh.mu`
}

func parDynamicWhileLocked(sh *shard) {
	sh.mu.Lock()
	par.Dynamic(4, 256, 16, func(lo, hi int) {}) // want `par.Dynamic call while holding sh.mu`
	sh.mu.Unlock()
}

func prefixSumWhileLocked(sh *shard, a []int64) int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return par.PrefixSum(4, a) // want `par.PrefixSum call while holding sh.mu`
}

// Range and Resolve are pure arithmetic: no diagnostic.
func parRangeWhileLocked(sh *shard, k int) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lo, hi := par.Range(0, par.Resolve(4), k)
	return sh.m[lo] + sh.m[hi]
}

func parDoAfterUnlock(sh *shard, k, v int) {
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
	par.Do(4, func(w int) {})
}
