// Golden tests for the conflictfree analyzer: functions annotated
// //kimbap:conflictfree must not reach a lock acquisition through any
// statically resolvable call.
package conflictfree

import (
	"sync"

	"kimbap/internal/par"
	"kimbap/internal/runtime"
)

type store struct {
	mu   sync.Mutex
	vals []float64
}

func (s *store) lockCounting() {
	if s.mu.TryLock() {
		return
	}
	s.mu.Lock()
}

//kimbap:conflictfree
func (s *store) reduceClean(u int, x float64) {
	s.vals[u] += x
}

//kimbap:conflictfree
func (s *store) reduceCleanNested(u int, x float64) {
	s.reduceClean(u, x)
}

func (s *store) reduceLocked(u int, x float64) {
	s.mu.Lock()
	s.vals[u] += x
	s.mu.Unlock()
}

//kimbap:conflictfree
func (s *store) reduceDirectLock(u int, x float64) { // want `conflict-free path acquires a lock: store.reduceDirectLock -> Mutex.Lock`
	s.mu.Lock()
	s.vals[u] += x
	s.mu.Unlock()
}

//kimbap:conflictfree
func (s *store) reduceViaLocked(u int, x float64) { // want `conflict-free path acquires a lock: store.reduceViaLocked -> store.reduceLocked -> Mutex.Lock`
	s.reduceLocked(u, x)
}

//kimbap:conflictfree
func (s *store) reduceViaCounting(u int, x float64) { // want `store.reduceViaCounting -> store.lockCounting`
	s.lockCounting()
	defer s.mu.Unlock()
	s.vals[u] += x
}

// Unannotated functions may lock freely.
func (s *store) applySync(u int, x float64) {
	s.reduceLocked(u, x)
}

// Frontier activation from a reduce path: runtime.Frontier.Activate is one
// atomic fetch-or, and the analyzer proves it (chasing the real call chain
// through Bitset.Set into sync/atomic, which is assumed clean).
//
//kimbap:conflictfree
func reduceAndActivate(s *store, fr *runtime.Frontier, u int, x float64) {
	s.vals[u] += x
	fr.Activate(u)
}

// A mutex-guarded activation wrapper breaks the guarantee.
type lockedFrontier struct {
	mu sync.Mutex
	fr *runtime.Frontier
}

func (l *lockedFrontier) activate(i int) {
	l.mu.Lock()
	l.fr.Activate(i)
	l.mu.Unlock()
}

//kimbap:conflictfree
func reduceAndActivateLocked(s *store, l *lockedFrontier, u int, x float64) { // want `reduceAndActivateLocked -> lockedFrontier.activate -> Mutex.Lock`
	s.vals[u] += x
	l.activate(u)
}

// The async scheduler's hot paths are annotated in their home packages
// (AsyncCtx.Enqueue, asyncSched.enqueue/stealAny) and proven there; a
// drain body re-enqueuing through the real handle must stay provable
// from the caller side too — the chain runs through the dedup bitset's
// CAS loop and the Chase-Lev deque's atomics, all lock-free.
//
//kimbap:conflictfree
func reduceAndReenqueue(s *store, cx *runtime.AsyncCtx, u int, x float64) {
	s.vals[u] += x
	cx.Enqueue(0)
}

// Deque Push/Pop/Steal are plain atomics; an annotated owner loop over
// one is clean.
//
//kimbap:conflictfree
func drainOwnDeque(s *store, d *par.Deque) {
	for {
		v, ok := d.Pop()
		if !ok {
			return
		}
		s.vals[v]++
	}
}

// A mutex-guarded enqueue wrapper breaks the guarantee — exactly the
// design the CAS-based scheduler exists to avoid.
type lockedQueue struct {
	mu sync.Mutex
	q  []int32
}

func (l *lockedQueue) push(v int32) {
	l.mu.Lock()
	l.q = append(l.q, v)
	l.mu.Unlock()
}

//kimbap:conflictfree
func reduceAndEnqueueLocked(s *store, l *lockedQueue, u int, x float64) { // want `reduceAndEnqueueLocked -> lockedQueue.push -> Mutex.Lock`
	s.vals[u] += x
	l.push(int32(u))
}

// Statement-level annotations: placed on a par dispatch, the annotation
// asserts the worker closure is conflict-free (the counting-sort scatter
// idiom — every write lands in a slot reserved by the worker's cursor).
func scatterClean(s *store, n int) {
	//kimbap:conflictfree
	par.Do(2, func(w int) {
		lo, hi := par.Range(w, 2, n)
		for i := lo; i < hi; i++ {
			s.vals[i] = float64(i)
		}
	})
}

func scatterViaLocked(s *store, n int) {
	//kimbap:conflictfree
	par.Static(2, n, func(w, lo, hi int) { // want `conflict-free path acquires a lock: par.Static closure -> store.reduceLocked -> Mutex.Lock`
		for i := lo; i < hi; i++ {
			s.reduceLocked(i, 1)
		}
	})
}

func scatterDirectLock(s *store, n int) {
	//kimbap:conflictfree
	par.Do(2, func(w int) { // want `conflict-free path acquires a lock: par.Do closure -> Mutex.Lock`
		s.mu.Lock()
		s.vals[w]++
		s.mu.Unlock()
	})
}

// An unannotated dispatch may lock freely.
func gatherLocked(s *store, n int) {
	par.Dynamic(2, n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.reduceLocked(i, 1)
		}
	})
}

// The annotation must sit on a dispatch, not an arbitrary statement.
func misplacedAnnotation(s *store) {
	//kimbap:conflictfree
	s.reduceClean(0, 1) // want `//kimbap:conflictfree on a statement must annotate a par.Do/Static/Dynamic dispatch`
}
