// Reorder shapes: the §14 permutation scatters carry statement-level
// //kimbap:conflictfree annotations — inv is a permutation (each perm
// slot written once) and the CSR scatter writes into per-node reserved
// ranges. A lock anywhere on the scatter path voids the annotation.
package conflictfree

import (
	"sync"

	"kimbap/internal/par"
)

// permScatterClean is computeReordering's perm-from-inv scatter: every
// write lands in a distinct slot because inv is a bijection.
func permScatterClean(perm, inv []uint32) {
	//kimbap:conflictfree
	par.Static(2, len(inv), func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			perm[inv[j]] = uint32(j)
		}
	})
}

// csrScatterClean is applyReordering's edge scatter: node v's edges land
// in new node perm[v]'s reserved offset range, disjoint across workers.
func csrScatterClean(perm []uint32, offsets []int64, srcDsts, dsts []uint32) {
	//kimbap:conflictfree
	par.Dynamic(2, len(perm), 64, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			at := offsets[perm[v]]
			dsts[at] = perm[srcDsts[v]]
		}
	})
}

type lockedPerm struct {
	mu   sync.Mutex
	perm []uint32
}

func (l *lockedPerm) set(i, j int) {
	l.mu.Lock()
	l.perm[i] = uint32(j)
	l.mu.Unlock()
}

// permScatterLocked serializes the scatter through a mutex — safe but no
// longer conflict-free, exactly what the annotation must reject.
func permScatterLocked(l *lockedPerm, inv []uint32) {
	//kimbap:conflictfree
	par.Static(2, len(inv), func(_, lo, hi int) { // want `conflict-free path acquires a lock: par.Static closure -> lockedPerm.set -> Mutex.Lock`
		for j := lo; j < hi; j++ {
			l.set(int(inv[j]), j)
		}
	})
}
