// Package conflictfree turns the paper's "zero conflicts by construction"
// claim (§4, Figure 7) into a checked property: every function annotated
//
//	//kimbap:conflictfree
//
// in its doc comment must not acquire a lock — directly or through any
// statically resolvable call it can reach. The annotation belongs on the
// conflict-free reduce-compute paths (the Full map's Reduce and the
// key-range combine of ReduceSync, the SGR+CF thread-local reduce); the
// analyzer then proves no sync.Mutex/RWMutex Lock, TryLock, RLock, or
// shard lockCounting call is reachable from them. StarDist and the
// GraphLab engines get this guarantee from their DSL compilers; here the
// annotation plus the analyzer replace the compiler.
//
// The call graph is first-order: direct calls and method calls on
// concrete receivers are followed into any package loaded in the program
// (function literals inside a checked body are scanned as part of it);
// calls through interfaces or function values are not resolved and are
// assumed clean — the transport's Send, for example, may lock internally,
// but transport locks are not shard conflicts.
package conflictfree

import (
	"go/ast"
	"go/types"
	"strings"

	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// Analyzer is the conflictfree check.
var Analyzer = &framework.Analyzer{
	Name: "conflictfree",
	Doc:  "prove //kimbap:conflictfree functions reach no Lock/TryLock/lockCounting call",
	Run:  run,
}

// annotation marks a function whose call tree must be lock-free.
const annotation = "//kimbap:conflictfree"

func run(pass *framework.Pass) error {
	cf := &checker{
		prog:    pass.Prog,
		results: map[*types.Func][]string{},
		active:  map[*types.Func]bool{},
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !annotated(decl) {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if path := cf.check(fn.Origin(), decl, pass.Pkg); path != nil {
				pass.Reportf(decl.Name.Pos(),
					"conflict-free path acquires a lock: %s", strings.Join(path, " -> "))
			}
		}
	}
	return nil
}

func annotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), annotation) {
			return true
		}
	}
	return false
}

type checker struct {
	prog *load.Program
	// results memoizes the offending call chain from each function (nil =
	// proven clean).
	results map[*types.Func][]string
	active  map[*types.Func]bool // recursion guard
}

// check returns the call chain from fn to a lock acquisition, or nil.
func (c *checker) check(fn *types.Func, decl *ast.FuncDecl, pkg *load.Package) []string {
	if path, done := c.results[fn]; done {
		return path
	}
	if c.active[fn] {
		return nil // a cycle adds no new calls
	}
	c.active[fn] = true
	defer delete(c.active, fn)

	var path []string
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			return true
		}
		if isLockAcquire(callee) {
			path = []string{fnName(fn), fnName(callee)}
			return false
		}
		calleeDecl, calleePkg := c.prog.FuncDecl(callee)
		if calleeDecl == nil || calleeDecl.Body == nil {
			return true // no source: interface method or stdlib; assumed clean
		}
		if sub := c.check(callee.Origin(), calleeDecl, calleePkg); sub != nil {
			path = append([]string{fnName(fn)}, sub...)
			return false
		}
		return true
	})
	c.results[fn] = path
	return path
}

// isLockAcquire reports whether fn is a lock acquisition: a Lock-family
// method on sync.Mutex/RWMutex, or a conflict-counting shard acquire.
func isLockAcquire(fn *types.Func) bool {
	if fn.Name() == "lockCounting" {
		return true
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "TryLock", "RLock", "TryRLock":
		return true
	}
	return false
}

// calleeFunc resolves a call to its static *types.Func, if possible.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func fnName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
