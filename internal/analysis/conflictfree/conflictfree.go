// Package conflictfree turns the paper's "zero conflicts by construction"
// claim (§4, Figure 7) into a checked property: every function annotated
//
//	//kimbap:conflictfree
//
// in its doc comment must not acquire a lock — directly or through any
// statically resolvable call it can reach. The annotation belongs on the
// conflict-free reduce-compute paths (the Full map's Reduce and the
// key-range combine of ReduceSync, the SGR+CF thread-local reduce); the
// analyzer then proves no sync.Mutex/RWMutex Lock, TryLock, RLock, or
// shard lockCounting call is reachable from them. StarDist and the
// GraphLab engines get this guarantee from their DSL compilers; here the
// annotation plus the analyzer replace the compiler.
//
// The annotation is also accepted on a statement: written immediately
// above a par.Do / par.Static / par.Dynamic dispatch, it asserts that the
// worker closure passed to the dispatch is conflict-free (the ingestion
// pipeline's counting-sort scatters carry it). The analyzer proves the
// closure's call tree lock-free exactly as it does for an annotated
// function, and rejects the annotation on any other kind of statement so
// a mis-placed assertion cannot silently check nothing.
//
// The call graph is first-order: direct calls and method calls on
// concrete receivers are followed into any package loaded in the program
// (function literals inside a checked body are scanned as part of it);
// calls through interfaces or function values are not resolved and are
// assumed clean — the transport's Send, for example, may lock internally,
// but transport locks are not shard conflicts.
package conflictfree

import (
	"go/ast"
	"go/types"
	"strings"

	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// Analyzer is the conflictfree check.
var Analyzer = &framework.Analyzer{
	Name: "conflictfree",
	Doc:  "prove //kimbap:conflictfree functions reach no Lock/TryLock/lockCounting call",
	Run:  run,
}

// annotation marks a function whose call tree must be lock-free.
const annotation = "//kimbap:conflictfree"

func run(pass *framework.Pass) error {
	cf := &checker{
		prog:    pass.Prog,
		results: map[*types.Func][]string{},
		active:  map[*types.Func]bool{},
	}
	for _, f := range pass.Pkg.Files {
		cmap := ast.NewCommentMap(pass.Fset(), f, f.Comments)
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			if annotated(decl) {
				fn, _ := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if path := cf.check(fn.Origin(), decl, pass.Pkg); path != nil {
					pass.Reportf(decl.Name.Pos(),
						"conflict-free path acquires a lock: %s", strings.Join(path, " -> "))
				}
			}
			cf.checkAnnotatedDispatches(pass, decl, cmap)
		}
	}
	return nil
}

// checkAnnotatedDispatches handles statement-level annotations: a
// //kimbap:conflictfree comment attached to a par dispatch statement
// asserts the worker closure it dispatches is lock-free.
func (c *checker) checkAnnotatedDispatches(pass *framework.Pass, decl *ast.FuncDecl, cmap ast.CommentMap) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok || !annotatedStmt(cmap, stmt) {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		dispatch := ""
		if ok {
			dispatch = parDispatchName(pass.Pkg.Info, call)
		}
		if dispatch == "" {
			pass.Reportf(stmt.Pos(),
				"%s on a statement must annotate a par.Do/Static/Dynamic dispatch", annotation)
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			if path := c.scan(dispatch+" closure", lit.Body, pass.Pkg); path != nil {
				pass.Reportf(call.Pos(),
					"conflict-free path acquires a lock: %s", strings.Join(path, " -> "))
			}
		}
		return true
	})
}

// parDispatchName returns "par.Do" (etc.) if call is a worker dispatch
// from kimbap/internal/par, or "".
func parDispatchName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/par") {
		return ""
	}
	switch fn.Name() {
	case "Do", "Static", "Dynamic":
		return "par." + fn.Name()
	}
	return ""
}

func annotated(decl *ast.FuncDecl) bool {
	return groupAnnotated(decl.Doc)
}

// annotatedStmt reports whether a comment group attached to stmt carries
// the annotation.
func annotatedStmt(cmap ast.CommentMap, stmt ast.Stmt) bool {
	for _, g := range cmap[stmt] {
		if groupAnnotated(g) {
			return true
		}
	}
	return false
}

func groupAnnotated(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), annotation) {
			return true
		}
	}
	return false
}

type checker struct {
	prog *load.Program
	// results memoizes the offending call chain from each function (nil =
	// proven clean).
	results map[*types.Func][]string
	active  map[*types.Func]bool // recursion guard
}

// check returns the call chain from fn to a lock acquisition, or nil.
func (c *checker) check(fn *types.Func, decl *ast.FuncDecl, pkg *load.Package) []string {
	if path, done := c.results[fn]; done {
		return path
	}
	if c.active[fn] {
		return nil // a cycle adds no new calls
	}
	c.active[fn] = true
	defer delete(c.active, fn)

	path := c.scan(fnName(fn), decl.Body, pkg)
	c.results[fn] = path
	return path
}

// scan walks one body (a function's or a dispatched closure's) and returns
// the call chain from root to a lock acquisition, or nil.
func (c *checker) scan(root string, body ast.Node, pkg *load.Package) []string {
	var path []string
	ast.Inspect(body, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			return true
		}
		if isLockAcquire(callee) {
			path = []string{root, fnName(callee)}
			return false
		}
		calleeDecl, calleePkg := c.prog.FuncDecl(callee)
		if calleeDecl == nil || calleeDecl.Body == nil {
			return true // no source: interface method or stdlib; assumed clean
		}
		if sub := c.check(callee.Origin(), calleeDecl, calleePkg); sub != nil {
			path = append([]string{root}, sub...)
			return false
		}
		return true
	})
	return path
}

// isLockAcquire reports whether fn is a lock acquisition: a Lock-family
// method on sync.Mutex/RWMutex, or a conflict-counting shard acquire.
func isLockAcquire(fn *types.Func) bool {
	if fn.Name() == "lockCounting" {
		return true
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "TryLock", "RLock", "TryRLock":
		return true
	}
	return false
}

// calleeFunc resolves a call to its static *types.Func, if possible.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func fnName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
