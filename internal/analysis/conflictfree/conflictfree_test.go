package conflictfree_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/conflictfree"
)

func TestConflictFree(t *testing.T) {
	analysistest.Run(t, conflictfree.Analyzer, "conflictfree")
}
