package atomicmix_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "atomicmix")
}
