// Package atomicmix flags variables and struct fields that are accessed
// both through sync/atomic calls and through plain loads or stores in the
// same package. Mixing the two silently destroys the atomicity the atomic
// call was meant to provide: the plain access races with every atomic one
// (the classic pattern in sharded-map and property-map code, where a hot
// counter gains an atomic.AddInt64 on one path while a reset or read
// elsewhere stays plain).
//
// The target of an atomic call is recognized from its &x argument. If x is
// a field selection, every plain access to that field (on any instance of
// the struct) is flagged; if x is an element of a slice, map, or array,
// accesses are tracked per backing variable, which is deliberately coarse.
// Intentional exceptions — for example, single-threaded initialization —
// must be annotated with a //kimbapvet:ignore atomicmix directive rather
// than left bare.
//
// Kimbap-typed atomics (atomic.Int64 and friends) are immune by
// construction and are not tracked; go vet's copylocks handles their
// misuse.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"kimbap/internal/analysis/framework"
)

// Analyzer is the atomicmix check.
var Analyzer = &framework.Analyzer{
	Name: "atomicmix",
	Doc:  "flag objects accessed both via sync/atomic and via plain loads/stores",
	Run:  run,
}

func run(pass *framework.Pass) error {
	info := pass.Pkg.Info

	// Pass 1: record every object targeted by a sync/atomic call, and the
	// exact &x argument subtrees so pass 2 does not re-flag them.
	targets := map[types.Object]token.Pos{} // object -> first atomic access
	atomicArgs := map[ast.Expr]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if obj := addressedObject(info, u.X); obj != nil {
					if _, seen := targets[obj]; !seen {
						targets[obj] = u.Pos()
					}
					atomicArgs[u.X] = true
				}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return nil
	}

	// Struct-literal field keys define, not access, so they are exempt from
	// pass 2 (a composite literal is a fresh, unpublished value). Defining
	// identifiers count as stores only when the declaration assigns a value
	// (n := 0, var n = 0, range keys); bare declarations, parameters, and
	// field names in type declarations define without accessing.
	exemptIdents := map[*ast.Ident]bool{}
	defStores := map[*ast.Ident]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					if _, isField := info.Uses[id].(*types.Var); isField {
						exemptIdents[id] = true
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							defStores[id] = true
						}
					}
				}
			case *ast.RangeStmt:
				if n.Tok == token.DEFINE {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok {
							defStores[id] = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) > 0 {
					for _, id := range n.Names {
						defStores[id] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag plain accesses to the targeted objects.
	for _, f := range pass.Pkg.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && atomicArgs[e] {
				return false
			}
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if obj := fieldObject(info, e); obj != nil {
					if _, tracked := targets[obj]; tracked {
						pass.Reportf(e.Pos(),
							"%s is accessed with sync/atomic elsewhere in this package; this plain access is a data race",
							objName(obj))
						return false
					}
				}
			case *ast.Ident:
				if exemptIdents[e] {
					return false
				}
				obj := info.Uses[e]
				if obj == nil && defStores[e] {
					obj = info.Defs[e]
				}
				if obj != nil {
					obj = originOf(obj)
					if _, tracked := targets[obj]; tracked {
						pass.Reportf(e.Pos(),
							"%s is accessed with sync/atomic elsewhere in this package; this plain access is a data race",
							objName(obj))
					}
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// isAtomicFuncCall reports whether call invokes a function from package
// sync/atomic (AddInt64, CompareAndSwapUint32, ...).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// Only package-level functions: methods on atomic.Int64 etc. are safe.
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// addressedObject resolves the object whose address is taken in an atomic
// call argument: the field of a selection, the backing variable of an
// index expression, or a plain variable.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return fieldObject(info, e)
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v.Origin()
		}
	}
	return nil
}

// fieldObject returns the (origin) variable selected by e, if any.
func fieldObject(info *types.Info, e *ast.SelectorExpr) types.Object {
	if sel, ok := info.Selections[e]; ok {
		if v, ok := sel.Obj().(*types.Var); ok {
			return v.Origin()
		}
		return nil
	}
	// Qualified identifier (pkg.Var).
	if v, ok := info.Uses[e.Sel].(*types.Var); ok {
		return v.Origin()
	}
	return nil
}

func originOf(obj types.Object) types.Object {
	if v, ok := obj.(*types.Var); ok {
		return v.Origin()
	}
	return obj
}

func objName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	return obj.Name()
}
