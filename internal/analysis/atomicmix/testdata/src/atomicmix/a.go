// Golden tests for the atomicmix analyzer: fields and variables touched
// both by sync/atomic functions and by plain loads/stores.
package atomicmix

import "sync/atomic"

type counter struct {
	n    int64
	safe atomic.Int64
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere in this package; this plain access is a data race`
}

func (c *counter) reset() {
	c.n = 0 // want `field n is accessed with sync/atomic`
	c.safe.Store(0)
}

// Typed atomics are immune: no diagnostic anywhere for safe.
func (c *counter) readSafe() int64 {
	return c.safe.Load()
}

// A field only ever accessed plainly is not tracked.
func (c *counter) bumpHits() {
	c.hits++
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func resetGlobal() {
	global = 0 // want `global is accessed with sync/atomic`
}

// Composite-literal keys define a fresh value, not an access.
func newCounter() *counter {
	return &counter{n: 0}
}

// Single-threaded setup may opt out explicitly.
func setupValue(c *counter) {
	//kimbapvet:ignore atomicmix -- single-threaded construction, not yet published
	c.n = 42
}
