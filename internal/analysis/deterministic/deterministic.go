// Package deterministic machine-checks the replay contract (DESIGN.md
// §11): a function annotated
//
//	//kimbap:deterministic
//
// in its doc comment must produce identical results run to run — the
// property the deterministic generators and the ingestion pipeline sell
// (seeded graphs are the test oracle; a flaky generator poisons every
// tier above it). The analyzer proves the annotated function reaches,
// through any statically resolvable call, no source of run-to-run
// variation:
//
//   - ranging over a map (iteration order is randomized per run);
//   - select statements and channel receives (arrival order races);
//   - the time package;
//   - math/rand and math/rand/v2 (the deterministic code paths thread
//     counter-based PRNGs instead).
//
// Calls into internal/par and internal/runtime dispatch machinery are
// cut — the pool uses channels by construction, and its contract is that
// a conflict-free worker body yields deterministic results — but closure
// literals written at the call site are still part of the annotated body
// and are scanned. The call graph is first-order, as in conflictfree:
// interface and function-value calls are not resolved. Results are
// memoized as object facts, so shared helpers are proven once per
// checker run.
package deterministic

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// Analyzer is the deterministic check.
var Analyzer = &framework.Analyzer{
	Name: "deterministic",
	Doc:  "prove //kimbap:deterministic functions reach no map iteration, channel ordering, time, or math/rand (§11)",
	Run:  run,
}

const annotation = "//kimbap:deterministic"

// resultFact memoizes the verdict for one function across packages: an
// empty Path means proven deterministic.
type resultFact struct{ Path []string }

func (*resultFact) AFact() {}

func run(pass *framework.Pass) error {
	c := &checker{
		pass:    pass,
		results: map[*types.Func][]string{},
		active:  map[*types.Func]bool{},
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil || !annotated(decl.Doc) {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[decl.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if path := c.check(fn.Origin(), decl, pass.Pkg); path != nil {
				pass.Reportf(decl.Name.Pos(),
					"%s violated: %s", annotation, strings.Join(path, " -> "))
			}
		}
	}
	return nil
}

func annotated(g *ast.CommentGroup) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), annotation) {
			return true
		}
	}
	return false
}

type checker struct {
	pass *framework.Pass
	// results memoizes the offending chain from each function within this
	// Run; resultFact object facts memoize across packages.
	results map[*types.Func][]string
	active  map[*types.Func]bool // recursion guard
}

// check returns the chain from fn to a nondeterminism source, or nil.
func (c *checker) check(fn *types.Func, decl *ast.FuncDecl, pkg *load.Package) []string {
	if path, done := c.results[fn]; done {
		return path
	}
	var memo resultFact
	if c.pass.ImportObjectFact(fn, &memo) {
		c.results[fn] = nilIfEmpty(memo.Path)
		return c.results[fn]
	}
	if c.active[fn] {
		return nil // a cycle adds no new sources
	}
	c.active[fn] = true
	defer delete(c.active, fn)

	path := c.scan(fnName(fn), decl.Body, pkg)
	c.results[fn] = path
	c.pass.ExportObjectFact(fn, &resultFact{Path: path})
	return path
}

// scan walks one body and returns the chain from root to a source of
// nondeterminism, or nil. Function literals in the body are scanned as
// part of it.
func (c *checker) scan(root string, body ast.Node, pkg *load.Package) []string {
	var path []string
	ast.Inspect(body, func(n ast.Node) bool {
		if path != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			switch pkg.Info.TypeOf(n.X).Underlying().(type) {
			case *types.Map:
				path = []string{root, "ranges over a map (iteration order is randomized per run)"}
				return false
			case *types.Chan:
				path = []string{root, "ranges over a channel (arrival order races)"}
				return false
			}
		case *ast.SelectStmt:
			path = []string{root, "selects over channels (case choice races)"}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				path = []string{root, "receives from a channel (arrival order races)"}
				return false
			}
		case *ast.CallExpr:
			path = c.call(root, n, pkg)
			if path != nil {
				return false
			}
		}
		return true
	})
	return path
}

// call classifies one call: a banned package, a cut dispatch, or a
// callee to descend into.
func (c *checker) call(root string, call *ast.CallExpr, pkg *load.Package) []string {
	callee := calleeFunc(pkg.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	cp := callee.Pkg().Path()
	pkgLevel := callee.Type().(*types.Signature).Recv() == nil
	switch {
	// Methods are exempt: accessors on a time.Time value are pure, and a
	// seeded *rand.Rand replays; the variation enters through the
	// package-level clock and global stream.
	case cp == "time" && pkgLevel:
		return []string{root, "calls time." + callee.Name()}
	case (cp == "math/rand" || cp == "math/rand/v2") && pkgLevel:
		return []string{root, "calls rand." + callee.Name() + " (thread a counter-based PRNG instead)"}
	case strings.HasSuffix(cp, "internal/par") || strings.HasSuffix(cp, "internal/runtime"):
		return nil // dispatch machinery: cut; its closures are in this body
	}
	calleeDecl, calleePkg := c.pass.Prog.FuncDecl(callee)
	if calleeDecl == nil || calleeDecl.Body == nil {
		return nil // no source: interface method or stdlib; assumed clean
	}
	if sub := c.check(callee.Origin(), calleeDecl, calleePkg); sub != nil {
		return append([]string{root}, sub...)
	}
	return nil
}

func nilIfEmpty(p []string) []string {
	if len(p) == 0 {
		return nil
	}
	return p
}

// calleeFunc resolves a call to its static *types.Func, if possible.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func fnName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
