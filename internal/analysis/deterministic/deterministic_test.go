package deterministic_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/deterministic"
)

func TestDeterministic(t *testing.T) {
	analysistest.Run(t, deterministic.Analyzer, "deterministic")
}
