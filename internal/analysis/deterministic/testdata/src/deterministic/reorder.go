// Reorder shapes: the §14 vertex-reordering pass is annotated
// //kimbap:deterministic — distinct packed sort keys give one unique
// ascending order at every worker count, and the permutation scatter
// writes each slot exactly once. The tempting shortcuts (bucketing ties
// in a map, randomized tie-breaks) all break run-to-run identity.
package deterministic

import (
	"math/rand"

	"kimbap/internal/par"
)

// permScatterClean mirrors computeReordering's final stage: inv is a
// permutation, so perm[inv[j]] = j writes every slot exactly once, and a
// static range split makes the result worker-count invariant. Clean.
//
//kimbap:deterministic
func permScatterClean(perm, inv []uint32) {
	par.Static(2, len(inv), func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			perm[inv[j]] = uint32(j)
		}
	})
}

// degreeOrderByMapDirty buckets nodes by degree in a map and walks it to
// emit the permutation — map iteration order randomizes the emitted
// order run to run.
//
//kimbap:deterministic
func degreeOrderByMapDirty(degrees map[int]int) []int { // want `ranges over a map`
	var order []int
	for v := range degrees {
		order = append(order, v)
	}
	return order
}

// tieBreakByRandDirty breaks equal-degree ties with a random draw
// instead of the original ID.
//
//kimbap:deterministic
func tieBreakByRandDirty(a, b int) bool { // want `calls rand\.Intn`
	if a != b {
		return a < b
	}
	return rand.Intn(2) == 0
}
