// Package deterministic exercises the §11 replay-contract analyzer:
// direct and transitive map iteration (the PR 4 generator near-miss),
// time and math/rand, channel ordering, and the dispatch cut.
package deterministic

import (
	"math/rand"
	"sort"
	"time"

	"kimbap/internal/par"
)

// degreeHistogram is the generator near-miss: accumulating counts in a
// map and ranging over it makes the emitted edge order differ run to
// run.
//
//kimbap:deterministic
func degreeHistogram(deg map[int]int) []int { // want `ranges over a map`
	var out []int
	for d, n := range deg {
		for i := 0; i < n; i++ {
			out = append(out, d)
		}
	}
	return out
}

// sortedHistogram fixes it: extract keys, sort, then walk slices only.
//
//kimbap:deterministic
func sortedHistogram(deg []int) []int {
	out := append([]int(nil), deg...)
	sort.Ints(out)
	return out
}

// viaHelper reaches the map iteration two calls down.
//
//kimbap:deterministic
func viaHelper(deg map[int]int) int { // want `ranges over a map`
	return countAll(deg)
}

func countAll(deg map[int]int) int { return sumValues(deg) }

func sumValues(deg map[int]int) int {
	total := 0
	for _, n := range deg {
		total += n
	}
	return total
}

// stamped reaches for the wall clock.
//
//kimbap:deterministic
func stamped() int64 { // want `calls time\.Now`
	return time.Now().UnixNano()
}

// shuffled uses the global math/rand stream.
//
//kimbap:deterministic
func shuffled(a []int) { // want `calls rand\.Shuffle`
	rand.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
}

// raced lets channel arrival order pick the result.
//
//kimbap:deterministic
func raced(a, b chan int) int { // want `selects over channels`
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// drained receives from a channel outside any select.
//
//kimbap:deterministic
func drained(c chan int) int { // want `receives from a channel`
	return <-c
}

// fanOut is clean: the par machinery is cut (its channels are the
// pool's, not the algorithm's) and the worker body is pure.
//
//kimbap:deterministic
func fanOut(a []int) {
	par.Do(2, func(w int) {
		for i := w; i < len(a); i += 2 {
			a[i] *= 2
		}
	})
}

// fanOutDirty still has its closure scanned through the cut.
//
//kimbap:deterministic
func fanOutDirty(m map[int]int) { // want `ranges over a map`
	par.Do(2, func(w int) {
		for k := range m {
			_ = k
		}
	})
}
