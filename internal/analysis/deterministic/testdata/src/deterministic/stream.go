// Stream shapes: the §13 streaming-ingestion patterns the replay
// contract must hold for. The sanctioned build assigns blocks to workers
// by static ranges; the tempting alternatives — dynamic work queues, map
// merges, wall-clock retry policies — all break run-to-run identity.
package deterministic

import (
	"time"

	"kimbap/internal/par"
)

// streamBuild mirrors the two-scan streaming CSR build: static block
// ranges per worker, per-worker counters, closures scanned through the
// par cut. Clean.
//
//kimbap:deterministic
func streamBuild(blocks [][]int, cnt []int) {
	par.Do(2, func(w int) {
		for i := w; i < len(blocks); i += 2 {
			for _, s := range blocks[i] {
				cnt[s]++
			}
		}
	})
}

// blockQueueDirty pulls block indices off a shared channel: arrival
// order decides which worker scatters which block, so the insertion
// order the counting sort depends on differs run to run.
//
//kimbap:deterministic
func blockQueueDirty(q chan int, cnt []int) { // want `receives from a channel`
	for range cnt {
		i := <-q
		cnt[i]++
	}
}

// mergeByMapDirty accumulates per-block degree counts in a map and walks
// it to build the offsets — the emitted order is randomized per run.
//
//kimbap:deterministic
func mergeByMapDirty(perBlock map[int]int) []int { // want `ranges over a map`
	var offsets []int
	for b, n := range perBlock {
		offsets = append(offsets, b+n)
	}
	return offsets
}

// retryByClockDirty sizes a read retry window off the wall clock.
//
//kimbap:deterministic
func retryByClockDirty(deadline int64) bool { // want `calls time\.Now`
	return time.Now().UnixNano() < deadline
}
