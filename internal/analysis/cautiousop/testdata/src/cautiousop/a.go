// Golden tests for the cautiousop analyzer: operator closures passed to
// the runtime's parallel apply entry points must not Read a property map
// after Reducing to it (§3.2 cautious operators).
package cautiousop

type host struct{}

func (h *host) ParForNodes(n int, op func(u int)) {
	for u := 0; u < n; u++ {
		op(u)
	}
}

func (h *host) ParFor(lo, hi int, op func(i int)) {
	for i := lo; i < hi; i++ {
		op(i)
	}
}

type propMap struct{ v []float64 }

func (m *propMap) Read(u int) float64      { return m.v[u] }
func (m *propMap) Reduce(u int, x float64) { m.v[u] += x }

func nonCautious(h *host, rank, next *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		next.Reduce(u, rank.Read(u))
		_ = next.Read(u) // want `operator is not cautious: Read of "next" follows a Reduce to it at line \d+`
	})
}

// Reads before reduces — the cautious form — are fine.
func cautious(h *host, rank, next *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		x := rank.Read(u)
		next.Reduce(u, x)
	})
}

// Distinct maps do not interfere.
func distinctMaps(h *host, rank, next *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		next.Reduce(u, 1)
		_ = rank.Read(u)
	})
}

// Argument evaluation precedes the call: a Read nested in the Reduce's
// own arguments is cautious.
func sameStatement(h *host, m *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		m.Reduce(u, m.Read(u))
	})
}

// Sibling branches of an if/else do not see each other's reduces, but
// code after the branch sees both.
func branches(h *host, m *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		if u%2 == 0 {
			m.Reduce(u, 1)
		} else {
			_ = m.Read(u)
		}
		_ = m.Read(u) // want `Read of "m" follows a Reduce`
	})
}

// The loop back edge separates applications (as in the IR validator), so
// a top-of-body Read does not follow the previous iteration's Reduce —
// but code after the loop does.
func loopBackEdge(h *host, m *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		for i := 0; i < 3; i++ {
			_ = m.Read(u)
			m.Reduce(u, 1)
		}
		_ = m.Read(u) // want `Read of "m" follows a Reduce`
	})
}

func forwardInParFor(h *host, m *propMap, n int) {
	h.ParFor(0, n, func(i int) {
		m.Reduce(i, 1)
		_ = m.Read(i) // want `Read of "m" follows a Reduce`
	})
}

// Outside an operator the rule does not apply.
func notAnOperator(m *propMap) float64 {
	m.Reduce(0, 1)
	return m.Read(0)
}

// A nested literal is a separate (non-operator) function.
func nestedLiteral(h *host, m *propMap, n int) {
	h.ParForNodes(n, func(u int) {
		m.Reduce(u, 1)
		f := func() float64 { return m.Read(u) }
		_ = f
	})
}
