// Package cautiousop enforces the paper's §3.2 cautious-operator rule for
// Go-authored operators, mirroring what internal/compiler's Validate does
// for IR programs: within one application of an operator, no Read of a
// node-property map may follow a Reduce to that same map in forward
// control flow. Kimbap defers reductions to ReduceSync, so such a read
// either observes a stale value the author probably did not intend (Full,
// SGR variants) or a half-published one (the MC variant reduces through
// the external store immediately) — either way the operator's semantics
// silently depend on the runtime variant.
//
// Operators are the function literals passed to the runtime's parallel
// apply entry points (Host.ParFor, ParForNodes, ParForMasters). Within a
// literal the analysis is structured and forward-only: loop back edges are
// ignored, exactly as the IR validator ignores the edge-loop back edge
// that separates operator applications, and sibling branches of an
// if/else do not see each other's reduces. A map is identified by the
// receiver expression it is called on ("parent", "m.ctot"); any receiver
// whose method set offers both Read and Reduce is treated as a
// reducible map (npm.Map variants and the runtime's distributed
// reducers alike).
package cautiousop

import (
	"go/ast"
	"go/token"
	"go/types"

	"kimbap/internal/analysis/framework"
)

// Analyzer is the cautiousop check.
var Analyzer = &framework.Analyzer{
	Name: "cautiousop",
	Doc:  "flag operator closures that Read a property map after Reducing to it (non-cautious operators, §3.2)",
	Run:  run,
}

// entryPoints are the runtime methods whose closure argument is an
// operator applied once per node/index.
var entryPoints = map[string]bool{
	"ParFor":        true,
	"ParForNodes":   true,
	"ParForMasters": true,
}

func run(pass *framework.Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !entryPoints[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if _, isMethod := info.Selections[sel]; !isMethod {
				return true
			}
			lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			op := &opAnalysis{pass: pass, info: info}
			op.stmts(lit.Body.List, map[string]token.Pos{})
			return true
		})
	}
	return nil
}

type opAnalysis struct {
	pass *framework.Pass
	info *types.Info
}

// stmts walks a statement list with the set of maps reduced-to so far
// (map key -> first reduce position), returning the updated set. Reads in
// each statement are checked against the set as of the statement's start;
// reduces inside one statement become visible to the next statement only
// (argument evaluation precedes the call, so a Read nested in the same
// expression as a Reduce is safe).
func (op *opAnalysis) stmts(list []ast.Stmt, reduced map[string]token.Pos) map[string]token.Pos {
	for _, s := range list {
		reduced = op.stmt(s, reduced)
	}
	return reduced
}

func (op *opAnalysis) stmt(s ast.Stmt, reduced map[string]token.Pos) map[string]token.Pos {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return op.stmts(s.List, reduced)
	case *ast.IfStmt:
		if s.Init != nil {
			reduced = op.stmt(s.Init, reduced)
		}
		reduced = op.exprs(reduced, s.Cond)
		out := cloneSet(reduced)
		merge(out, op.stmts(s.Body.List, cloneSet(reduced)))
		if s.Else != nil {
			merge(out, op.stmt(s.Else, cloneSet(reduced)))
		}
		return out
	case *ast.ForStmt:
		if s.Init != nil {
			reduced = op.stmt(s.Init, reduced)
		}
		reduced = op.exprs(reduced, s.Cond)
		// The body sees only reduces from before the loop and earlier in
		// the same iteration: the back edge separates operator work items,
		// exactly as in the IR validator.
		body := op.stmts(s.Body.List, cloneSet(reduced))
		if s.Post != nil {
			op.stmt(s.Post, body)
		}
		merge(reduced, body)
		return reduced
	case *ast.RangeStmt:
		reduced = op.exprs(reduced, s.X)
		merge(reduced, op.stmts(s.Body.List, cloneSet(reduced)))
		return reduced
	case *ast.SwitchStmt:
		if s.Init != nil {
			reduced = op.stmt(s.Init, reduced)
		}
		reduced = op.exprs(reduced, s.Tag)
		out := cloneSet(reduced)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			in := cloneSet(reduced)
			in = op.exprs(in, cc.List...)
			merge(out, op.stmts(cc.Body, in))
		}
		return out
	case *ast.ExprStmt:
		return op.exprs(reduced, s.X)
	case *ast.AssignStmt:
		reduced = op.exprs(reduced, s.Rhs...)
		return op.exprs(reduced, s.Lhs...)
	case *ast.ReturnStmt:
		return op.exprs(reduced, s.Results...)
	case *ast.IncDecStmt:
		return op.exprs(reduced, s.X)
	case *ast.SendStmt:
		return op.exprs(reduced, s.Chan, s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					reduced = op.exprs(reduced, vs.Values...)
				}
			}
		}
		return reduced
	case *ast.DeferStmt:
		return op.exprs(reduced, s.Call)
	}
	return reduced
}

// exprs checks Reads in the given expressions against the incoming
// reduced set, then records any Reduces they perform.
func (op *opAnalysis) exprs(reduced map[string]token.Pos, list ...ast.Expr) map[string]token.Pos {
	var newReduces []struct {
		key string
		pos token.Pos
	}
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // nested literals are separate operators
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key, ok := op.mapReceiver(sel)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Read":
				if redPos, found := reduced[key]; found {
					op.pass.Reportf(call.Pos(),
						"operator is not cautious: Read of %q follows a Reduce to it at line %d; the read observes a stale pre-reduce value (§3.2)",
						key, op.pass.Fset().Position(redPos).Line)
				}
			case "Reduce":
				newReduces = append(newReduces, struct {
					key string
					pos token.Pos
				}{key, call.Pos()})
			}
			return true
		})
	}
	for _, r := range newReduces {
		if _, ok := reduced[r.key]; !ok {
			reduced[r.key] = r.pos
		}
	}
	return reduced
}

// mapReceiver renders the receiver of a Read/Reduce selector if its type's
// method set offers both Read and Reduce (a node-property map or
// distributed reducer).
func (op *opAnalysis) mapReceiver(sel *ast.SelectorExpr) (string, bool) {
	if _, isMethod := op.info.Selections[sel]; !isMethod {
		return "", false
	}
	t := op.info.Types[sel.X].Type
	if t == nil || !hasMethod(t, "Read") || !hasMethod(t, "Reduce") {
		return "", false
	}
	return exprKey(sel.X)
}

func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

func cloneSet(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func merge(dst, src map[string]token.Pos) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

// exprKey renders a chain of identifiers/selections/simple indexes as a
// stable key for one map value.
func exprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		if id, ok := e.Index.(*ast.Ident); ok {
			return base + "[" + id.Name + "]", true
		}
		if lit, ok := e.Index.(*ast.BasicLit); ok {
			return base + "[" + lit.Value + "]", true
		}
		return "", false
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return exprKey(e.X)
		}
	case *ast.StarExpr:
		return exprKey(e.X)
	}
	return "", false
}
