package cautiousop_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/cautiousop"
)

func TestCautiousOp(t *testing.T) {
	analysistest.Run(t, cautiousop.Analyzer, "cautiousop")
}
