package cautiousop_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kimbap/internal/analysis/cautiouscases"
	"kimbap/internal/analysis/cautiousop"
	"kimbap/internal/analysis/checker"
	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// prelude gives each rendered case the same surface the analyzer sees in
// the real runtime: an apply entry point and a reducible map type.
const prelude = `package tablecase

type host struct{}

func (h *host) ParForNodes(n int, op func(u int)) {
	for u := 0; u < n; u++ {
		op(u)
	}
}

type propMap struct{ v []float64 }

func (m *propMap) Read(u int) float64      { return m.v[u] }
func (m *propMap) Reduce(u int, x float64) { m.v[u] += x }

func operator(h *host, a, b *propMap, n, deg int) {
	h.ParForNodes(n, func(u int) {
		_, _, _ = a, b, deg
%s
	})
}
`

// TestCautiousOpAgreesWithSharedTable runs the Go side of the shared
// cautious-operator table (internal/analysis/cautiouscases); the
// compiler's validator test runs the IR side of the same table.
func TestCautiousOpAgreesWithSharedTable(t *testing.T) {
	prog, err := load.NewProgram()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cautiouscases.Cases() {
		if c.GoSrc == "" {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			body := "\t\t" + strings.ReplaceAll(c.GoSrc, "\n", "\n\t\t")
			src := fmt.Sprintf(prelude, body)
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "case.go"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			pkg, err := prog.LoadDir("kimbapvet.table/"+c.Name, dir)
			if err != nil {
				t.Fatalf("load rendered case: %v\nsource:\n%s", err, src)
			}
			diags, err := checker.Run(prog, []*load.Package{pkg},
				[]*framework.Analyzer{cautiousop.Analyzer})
			if err != nil {
				t.Fatal(err)
			}
			if c.OK && len(diags) > 0 {
				t.Errorf("cautious operator flagged: %s", diags[0].Message)
			}
			if !c.OK && len(diags) == 0 {
				t.Errorf("non-cautious operator passed\nsource:\n%s", src)
			}
		})
	}
}
