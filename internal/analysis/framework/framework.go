// Package framework defines the analyzer interface for kimbapvet. It
// mirrors the shape of golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) so analyzers read like standard vet checks, but is built on
// the standard library alone: this module must build offline, so the real
// x/tools dependency is intentionally not used. A Pass additionally
// carries the whole loaded Program, because Kimbap's invariants
// (conflict-free reduce paths) cross package boundaries.
package framework

import (
	"fmt"
	"go/token"

	"kimbap/internal/analysis/load"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //kimbapvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
	// Finish, if non-nil, runs once per checker invocation after Run has
	// been applied to every loaded package, for whole-program reporting
	// over accumulated facts (e.g. "emitted but never handled"). The Pass
	// it receives has no Pkg.
	Finish func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one (package, analyzer) unit of work.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the whole loaded program; dependency packages retain their
	// syntax, so cross-package call paths can be followed.
	Prog *load.Program
	// Pkg is the package under analysis (nil during Finish).
	Pkg *load.Package

	diags *[]Diagnostic
	store *FactStore
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies a to pkg and returns its diagnostics. store may be
// nil for single-package runs that need no cross-package facts.
func RunAnalyzer(a *Analyzer, prog *load.Program, pkg *load.Package, store *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags, store: store}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	return diags, nil
}

// RunFinish invokes a's Finish hook (if any) and returns its diagnostics.
func RunFinish(a *Analyzer, prog *load.Program, store *FactStore) ([]Diagnostic, error) {
	if a.Finish == nil {
		return nil, nil
	}
	var diags []Diagnostic
	pass := &Pass{Analyzer: a, Prog: prog, diags: &diags, store: store}
	if err := a.Finish(pass); err != nil {
		return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
	}
	return diags, nil
}
