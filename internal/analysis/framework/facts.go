package framework

import (
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum an analyzer attaches to a types.Object or a
// *types.Package while analyzing the declaring package, for use when the
// same analyzer later processes a downstream package. It mirrors
// golang.org/x/tools/go/analysis.Fact, with one simplification: kimbapvet
// analyzes the whole program in one process, so facts live in memory for
// the duration of a checker run and are never serialized. Implementations
// must be pointer types (Import copies into the caller's pointee).
type Fact interface{ AFact() }

type objFactKey struct {
	analyzer string
	obj      types.Object
	typ      reflect.Type
}

type pkgFactKey struct {
	analyzer string
	pkg      *types.Package
	typ      reflect.Type
}

// FactStore accumulates facts across packages for one checker run. Facts
// are keyed by (analyzer, object-or-package, fact type): analyzers see
// only their own facts, and one object may carry several facts of
// distinct types. The checker feeds packages to each analyzer in import
// order (dependencies first), so by the time a package is analyzed, facts
// about everything it imports are present.
type FactStore struct {
	objs map[objFactKey]Fact
	pkgs map[pkgFactKey]Fact
	// objsByAnalyzer remembers export order is irrelevant: AllObjectFacts
	// sorts by declaration position for deterministic Finish reporting.
	objList map[string][]types.Object
}

// NewFactStore returns an empty store for one checker run.
func NewFactStore() *FactStore {
	return &FactStore{
		objs:    map[objFactKey]Fact{},
		pkgs:    map[pkgFactKey]Fact{},
		objList: map[string][]types.Object{},
	}
}

// ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Obj  types.Object
	Fact Fact
}

// ExportObjectFact attaches fact to obj for this analyzer, replacing any
// existing fact of the same type on obj.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || p.store == nil {
		return
	}
	key := objFactKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}
	if _, exists := p.store.objs[key]; !exists {
		p.store.objList[p.Analyzer.Name] = append(p.store.objList[p.Analyzer.Name], obj)
	}
	p.store.objs[key] = fact
}

// ImportObjectFact copies the fact of *fact's type attached to obj into
// fact and reports whether one was found. fact must be a pointer to a
// struct implementing Fact.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || p.store == nil {
		return false
	}
	got, ok := p.store.objs[objFactKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ExportPackageFact attaches fact to the package under analysis,
// replacing any existing fact of the same type.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.Pkg == nil || p.store == nil {
		return
	}
	p.store.pkgs[pkgFactKey{p.Analyzer.Name, p.Pkg.Types, reflect.TypeOf(fact)}] = fact
}

// ImportPackageFact copies the fact of *fact's type attached to pkg into
// fact and reports whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil || p.store == nil {
		return false
	}
	got, ok := p.store.pkgs[pkgFactKey{p.Analyzer.Name, pkg, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// AllObjectFacts returns every object fact of this analyzer whose type
// matches example's, sorted by the object's declaration position so Finish
// passes report deterministically.
func (p *Pass) AllObjectFacts(example Fact) []ObjectFact {
	if p.store == nil {
		return nil
	}
	typ := reflect.TypeOf(example)
	var out []ObjectFact
	seen := map[types.Object]bool{}
	for _, obj := range p.store.objList[p.Analyzer.Name] {
		if seen[obj] {
			continue
		}
		seen[obj] = true
		if fact, ok := p.store.objs[objFactKey{p.Analyzer.Name, obj, typ}]; ok {
			out = append(out, ObjectFact{obj, fact})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj.Pos() < out[j].Obj.Pos() })
	return out
}
