// Package analysistest runs a kimbapvet analyzer over a golden testdata
// package and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which this module cannot
// depend on — it must build offline).
//
// Testdata layout follows the x/tools convention: the package for test
// name "x" lives in testdata/src/x/ relative to the analyzer's package
// directory. Expectations are written on the offending line:
//
//	sh.mu.Lock() // want `not released on all paths`
//
// The backquoted string is a regular expression that must match a
// diagnostic reported on that line; several expectations may share one
// comment. Double quotes are also accepted. Every diagnostic must be
// matched by an expectation and vice versa.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"kimbap/internal/analysis/checker"
	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// Run loads testdata/src/<name> and applies a to it, failing t on any
// mismatch between diagnostics and // want expectations.
func Run(t *testing.T, a *framework.Analyzer, name string) {
	t.Helper()
	prog, err := load.NewProgram()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := prog.LoadDir("kimbapvet.test/"+name, dir)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}
	diags, err := checker.Run(prog, []*load.Package{pkg}, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, prog.Fset, pkg)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want (.*)$")

func collectWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, want{pos.Filename, pos.Line, re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of quoted or backquoted strings.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		// Unquoted single pattern.
		out = append(out, fmt.Sprintf("%s", strings.TrimSpace(s)))
	}
	return out
}
