package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"kimbap/internal/analysis/cfg"
)

// solveAssigned runs a toy may-analysis — the set of variable names that
// may have been assigned on some path — and returns the state at the
// function exit. It exercises joins at merges and loop-carried state
// through back edges.
func solveAssigned(t *testing.T, body string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\nfunc f() {\n"+body+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, ok := cfg.Build(f.Decls[0].(*ast.FuncDecl).Body)
	if !ok {
		t.Fatal("cfg.Build failed")
	}
	sp := Spec[map[string]bool]{
		Init: map[string]bool{},
		Clone: func(s map[string]bool) map[string]bool {
			c := make(map[string]bool, len(s))
			for k := range s {
				c[k] = true
			}
			return c
		},
		Join: func(dst, src map[string]bool) (map[string]bool, bool) {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return dst, changed
		},
		Transfer: func(s map[string]bool, n ast.Node) map[string]bool {
			cfg.ShallowWalk(n, func(m ast.Node) bool {
				if as, ok := m.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							s[id.Name] = true
						}
					}
				}
				return true
			})
			return s
		},
	}
	states := Forward(g, sp)
	exit, ok := states[g.Exit]
	if !ok {
		t.Fatal("exit has no input state")
	}
	return exit
}

func TestBranchesJoin(t *testing.T) {
	exit := solveAssigned(t, "if cond() {\na := 1\n_ = a\n} else {\nb := 2\n_ = b\n}")
	if !exit["a"] || !exit["b"] {
		t.Errorf("exit state %v, want both a and b (may-union of branches)", exit)
	}
}

func TestLoopCarriedState(t *testing.T) {
	exit := solveAssigned(t, "for {\nif cond() {\nbreak\n}\nx := 1\n_ = x\n}")
	// x is assigned at the loop bottom; the break path out of the loop
	// only sees it after at least one full iteration, so the may-state at
	// exit must contain it (propagated around the back edge).
	if !exit["x"] {
		t.Errorf("exit state %v, want x via loop back edge", exit)
	}
}

func TestStateStopsAtReturn(t *testing.T) {
	exit := solveAssigned(t, "return\n")
	if len(exit) != 0 {
		t.Errorf("exit state %v, want empty", exit)
	}
}
