// Package dataflow is a small forward dataflow engine over cfg graphs for
// the kimbapvet analyzers. It computes a fixpoint of per-block input
// states under a caller-supplied join and transfer, in the usual
// round-robin worklist style. Analyzers use it in two phases: solve for
// the block input states, then replay the transfer over each block with
// reporting enabled — the replay sees every statement under its
// fixpoint-correct incoming state, so diagnostics carry precise
// positions.
package dataflow

import (
	"go/ast"

	"kimbap/internal/analysis/cfg"
)

// Spec defines one forward may/must analysis over states of type S.
// States are owned by the engine once passed in: Transfer and Join may
// mutate their first argument and must return it (or a replacement).
type Spec[S any] struct {
	// Init is the state on entry to the function.
	Init S
	// Clone deep-copies a state.
	Clone func(S) S
	// Join merges src into dst and reports whether dst changed. src must
	// not be retained.
	Join func(dst, src S) (S, bool)
	// Transfer applies one block node to the state. Control-statement
	// head nodes must be walked with cfg.ShallowWalk.
	Transfer func(s S, n ast.Node) S
}

// Forward solves the analysis over g and returns each reachable block's
// input state. Blocks unreachable from the entry have no map entry.
func Forward[S any](g *cfg.Graph, sp Spec[S]) map[*cfg.Block]S {
	in := map[*cfg.Block]S{g.Entry: sp.Clone(sp.Init)}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			s, ok := in[b]
			if !ok {
				continue
			}
			out := sp.Clone(s)
			for _, n := range b.Nodes {
				out = sp.Transfer(out, n)
			}
			for _, succ := range b.Succs {
				if cur, ok := in[succ]; ok {
					merged, ch := sp.Join(cur, sp.Clone(out))
					in[succ] = merged
					changed = changed || ch
				} else {
					in[succ] = sp.Clone(out)
					changed = true
				}
			}
		}
	}
	return in
}
