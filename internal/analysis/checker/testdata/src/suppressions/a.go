// Package suppressions exercises the checker's suppression-lint: a
// //kimbapvet:ignore directive must carry a `-- reason` to be considered
// documented; a bare one still suppresses but is itself reported.
package suppressions

//kimbapvet:ignore dummy -- documented: this finding is a false positive here
func BadDocumented() {}

//kimbapvet:ignore dummy
func BadBare() {}

//kimbapvet:ignore dummy --
func BadEmptyReason() {}

func BadOpen() {}

func Fine() {}
