package checker

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// dummy flags every function whose name starts with "Bad", giving the
// suppression machinery something to suppress.
var dummy = &framework.Analyzer{
	Name: "dummy",
	Doc:  "flag functions named Bad*",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Reportf(fd.Name.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppressionLint(t *testing.T) {
	prog, err := load.NewProgram()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "suppressions"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.LoadDir("kimbapvet.test/suppressions", dir)
	if err != nil {
		t.Fatalf("load testdata: %v", err)
	}
	diags, err := Run(prog, []*load.Package{pkg}, []*framework.Analyzer{dummy})
	if err != nil {
		t.Fatalf("checker.Run: %v", err)
	}

	var suppressionDiags, dummyDiags []string
	for _, d := range diags {
		switch d.Analyzer {
		case SuppressionsName:
			suppressionDiags = append(suppressionDiags, d.Message)
		case "dummy":
			dummyDiags = append(dummyDiags, d.Message)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d.Message)
		}
	}
	// BadBare and BadEmptyReason carry undocumented directives: two
	// suppression diagnostics.
	if len(suppressionDiags) != 2 {
		t.Errorf("got %d suppression diagnostics, want 2: %v", len(suppressionDiags), suppressionDiags)
	}
	// Every Bad* function is suppressed except BadOpen.
	if len(dummyDiags) != 1 || !strings.Contains(dummyDiags[0], "BadOpen") {
		t.Errorf("got dummy diagnostics %v, want exactly one naming BadOpen", dummyDiags)
	}
}
