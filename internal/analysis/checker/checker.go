// Package checker drives kimbapvet analyzers over loaded packages,
// applies //kimbapvet:ignore suppressions, and formats diagnostics. It is
// shared by cmd/kimbapvet and by analysistest so the two agree on
// suppression and ordering semantics.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position.
//
// A diagnostic is suppressed by a comment of the form
//
//	//kimbapvet:ignore name1,name2 -- reason
//
// placed on the diagnostic's line or on the line directly above it. The
// analyzer list may be "all".
func Run(prog *load.Program, pkgs []*load.Package, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	var diags []framework.Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(prog.Fset, pkg)
		for _, a := range analyzers {
			ds, err := framework.RunAnalyzer(a, prog, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				if !ig.matches(prog.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Print writes diagnostics in the usual file:line:col format and reports
// whether any were written.
func Print(w io.Writer, fset *token.FileSet, diags []framework.Diagnostic) bool {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	return len(diags) > 0
}

// ignoreSet maps file -> line -> analyzer names suppressed there.
type ignoreSet map[string]map[int][]string

func collectIgnores(fset *token.FileSet, pkg *load.Package) ignoreSet {
	ig := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//kimbapvet:ignore")
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				names := strings.Split(rest, ",")
				for i := range names {
					names[i] = strings.TrimSpace(names[i])
				}
				pos := fset.Position(c.Pos())
				if ig[pos.Filename] == nil {
					ig[pos.Filename] = map[int][]string{}
				}
				ig[pos.Filename][pos.Line] = append(ig[pos.Filename][pos.Line], names...)
			}
		}
	}
	return ig
}

func (ig ignoreSet) matches(fset *token.FileSet, d framework.Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := ig[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// FileOf returns the syntax file of pkg containing pos, or nil.
func FileOf(fset *token.FileSet, pkg *load.Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
