// Package checker drives kimbapvet analyzers over loaded packages,
// applies //kimbapvet:ignore suppressions, and formats diagnostics. It is
// shared by cmd/kimbapvet and by analysistest so the two agree on
// suppression and ordering semantics.
package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"kimbap/internal/analysis/framework"
	"kimbap/internal/analysis/load"
)

// SuppressionsName is the pseudo-analyzer under which the checker itself
// reports undocumented //kimbapvet:ignore directives. It is always on and
// cannot be suppressed.
const SuppressionsName = "suppressions"

// Run applies every analyzer to every loaded module package — dependencies
// first, so facts exported by upstream packages are available downstream —
// and returns the diagnostics that fall inside pkgs (the target set),
// sorted by position. Analyzers with a Finish hook get it invoked once,
// after all packages, for whole-program reporting over accumulated facts.
//
// A diagnostic is suppressed by a comment of the form
//
//	//kimbapvet:ignore name1,name2 -- reason
//
// placed on the diagnostic's line or on the line directly above it. The
// analyzer list may be "all". A directive whose reason is missing or empty
// is itself reported, under the name "suppressions": DESIGN.md §7 requires
// every suppression to document why it is sound.
func Run(prog *load.Program, pkgs []*load.Package, analyzers []*framework.Analyzer) ([]framework.Diagnostic, error) {
	store := framework.NewFactStore()
	targets := map[*load.Package]bool{}
	for _, pkg := range pkgs {
		targets[pkg] = true
	}
	order := topoOrder(prog)

	var diags []framework.Diagnostic
	ignores := map[*load.Package]ignoreSet{}
	for _, pkg := range pkgs {
		ig, bare := collectIgnores(prog.Fset, pkg)
		ignores[pkg] = ig
		for _, pos := range bare {
			diags = append(diags, framework.Diagnostic{
				Pos:      pos,
				Analyzer: SuppressionsName,
				Message:  "//kimbapvet:ignore without `-- reason`: document why the suppression is sound",
			})
		}
	}

	for _, a := range analyzers {
		for _, pkg := range order {
			ds, err := framework.RunAnalyzer(a, prog, pkg, store)
			if err != nil {
				return nil, err
			}
			if !targets[pkg] {
				continue // dependency analyzed for its facts only
			}
			for _, d := range ds {
				if !ignores[pkg].matches(prog.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
		ds, err := framework.RunFinish(a, prog, store)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			// Finish diagnostics carry positions anywhere in the program;
			// keep only those landing in a target package.
			for _, pkg := range pkgs {
				if FileOf(prog.Fset, pkg, d.Pos) != nil {
					if !ignores[pkg].matches(prog.Fset, d) {
						diags = append(diags, d)
					}
					break
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// topoOrder returns every loaded package, dependencies before dependents,
// ties broken by import path for determinism.
func topoOrder(prog *load.Program) []*load.Package {
	all := prog.Packages() // sorted by path
	byTypes := map[string]*load.Package{}
	for _, pkg := range all {
		byTypes[pkg.Types.Path()] = pkg
	}
	var order []*load.Package
	visited := map[*load.Package]bool{}
	var visit func(*load.Package)
	visit = func(pkg *load.Package) {
		if visited[pkg] {
			return
		}
		visited[pkg] = true
		for _, imp := range pkg.Types.Imports() {
			if dep := byTypes[imp.Path()]; dep != nil {
				visit(dep)
			}
		}
		order = append(order, pkg)
	}
	for _, pkg := range all {
		visit(pkg)
	}
	return order
}

// Print writes diagnostics in the usual file:line:col format and reports
// whether any were written.
func Print(w io.Writer, fset *token.FileSet, diags []framework.Diagnostic) bool {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	return len(diags) > 0
}

// PrintJSON writes diagnostics as newline-delimited JSON records of the
// form {"analyzer":...,"pos":"file:line:col","message":...} — one object
// per line so CI can annotate PR diffs — and reports whether any were
// written.
func PrintJSON(w io.Writer, fset *token.FileSet, diags []framework.Diagnostic) bool {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		rec := struct {
			Analyzer string `json:"analyzer"`
			Pos      string `json:"pos"`
			Message  string `json:"message"`
		}{d.Analyzer, fset.Position(d.Pos).String(), d.Message}
		enc.Encode(rec)
	}
	return len(diags) > 0
}

// ignoreSet maps file -> line -> analyzer names suppressed there.
type ignoreSet map[string]map[int][]string

// collectIgnores gathers the package's suppression directives. The second
// result lists the positions of directives with no `-- reason` (or an
// empty one), which the checker reports as diagnostics of their own.
func collectIgnores(fset *token.FileSet, pkg *load.Package) (ignoreSet, []token.Pos) {
	ig := ignoreSet{}
	var bare []token.Pos
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//kimbapvet:ignore")
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				reason := ""
				if i := strings.Index(rest, "--"); i >= 0 {
					reason = strings.TrimSpace(rest[i+2:])
					rest = strings.TrimSpace(rest[:i])
				}
				if reason == "" {
					bare = append(bare, c.Pos())
				}
				names := strings.Split(rest, ",")
				for i := range names {
					names[i] = strings.TrimSpace(names[i])
				}
				pos := fset.Position(c.Pos())
				if ig[pos.Filename] == nil {
					ig[pos.Filename] = map[int][]string{}
				}
				ig[pos.Filename][pos.Line] = append(ig[pos.Filename][pos.Line], names...)
			}
		}
	}
	return ig, bare
}

func (ig ignoreSet) matches(fset *token.FileSet, d framework.Diagnostic) bool {
	if d.Analyzer == SuppressionsName {
		return false // the suppression lint cannot be suppressed
	}
	pos := fset.Position(d.Pos)
	lines := ig[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// FileOf returns the syntax file of pkg containing pos, or nil.
func FileOf(fset *token.FileSet, pkg *load.Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
