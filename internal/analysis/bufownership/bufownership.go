// Package bufownership machine-checks the comm buffer-ownership contract
// (DESIGN.md §8): the in-memory transport delivers Send payloads by
// reference, so a slice handed to comm Send/SendBuffered/Exchange/
// ExchangeInto must not be written through or retained by the sender
// until the documented round-boundary swap — a receiver may still be
// reading it. PRs 2-5 enforced this by review plus alloc-count tests;
// this analyzer proves it statically with a forward dataflow over each
// function's CFG.
//
// Within one function (function literals are analyzed separately, each
// from an empty state), after a payload expression is handed to a comm
// send:
//
//   - writing through the sent slice (element assignment, append, copy
//     into it) is reported;
//   - storing the sent slice into a field is reported (retention: the
//     round-local ownership argument no longer bounds its lifetime);
//   - aliasing it to a local extends tracking to the alias;
//   - reassigning the slice variable itself ends tracking (the usual
//     double-buffer generation flip), as does reassigning any variable
//     used in the tracked expression's index (m.sendGen ^= 1, the loop
//     induction variable).
//
// For Exchange/ExchangeInto the out slice's *elements* have been sent:
// replacing a slot (out[i] = ...) is harmless — the receiver keeps its
// own reference — but writing bytes through a slot (out[i][j] = ...,
// append(out[i], ...)) is reported. The analysis is first-order and
// syntactic about aliases (tracked expressions are normalized source
// paths), which is exactly the shape of the npm sync phases it guards.
//
// The same machinery checks the block-pool recycling contract of the
// streaming ingestion path (DESIGN.md §13): a block handed to
// graph.PutBlock may be reissued to another worker immediately, so
// writing through it, growing its columns, or retaining it in a field
// after the Put is reported with pool wording. A *deferred* PutBlock is
// the sanctioned scan-loop shape — it runs at function exit, after every
// use in the body — and transfers nothing mid-function.
package bufownership

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kimbap/internal/analysis/cfg"
	"kimbap/internal/analysis/dataflow"
	"kimbap/internal/analysis/framework"
)

// Analyzer is the bufownership check.
var Analyzer = &framework.Analyzer{
	Name: "bufownership",
	Doc:  "forbid writes to or retention of buffers handed to comm sends (§8 ownership contract)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			analyzeBody(pass, decl.Body)
			// Function literals run at call time with their own frames;
			// analyze each from an empty state.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyzeBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// sent records one tracked buffer: where it was sent, and whether the key
// names the buffer itself (exact) or a container whose elements were sent
// (base, from Exchange's out slice or the payload's enclosing slice).
// pool marks a block returned to the graph block pool rather than a comm
// payload — same dataflow, different wording and new-owner story.
type sent struct {
	pos  token.Pos
	base bool
	pool bool
}

// handedTo names the transfer for diagnostics.
func (i sent) handedTo() string {
	if i.pool {
		return "returned to the block pool"
	}
	return "handed to a comm send"
}

type state map[string]sent

type checker struct {
	pass      *framework.Pass
	info      *types.Info
	reporting bool
	reported  map[token.Pos]bool
}

func analyzeBody(pass *framework.Pass, body *ast.BlockStmt) {
	g, ok := cfg.Build(body)
	if !ok {
		return // goto/labels: out of scope, as in lockdiscipline
	}
	c := &checker{pass: pass, info: pass.Pkg.Info, reported: map[token.Pos]bool{}}
	sp := dataflow.Spec[state]{
		Init:  state{},
		Clone: cloneState,
		Join:  joinState,
		Transfer: func(s state, n ast.Node) state {
			c.transfer(s, n)
			return s
		},
	}
	states := dataflow.Forward(g, sp)
	// Replay with reporting: every node is visited once, under its
	// fixpoint-correct incoming state.
	c.reporting = true
	for _, b := range g.Blocks {
		s, ok := states[b]
		if !ok {
			continue
		}
		s = cloneState(s)
		for _, n := range b.Nodes {
			c.transfer(s, n)
		}
	}
}

func cloneState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinState(dst, src state) (state, bool) {
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return dst, changed
}

func (c *checker) transfer(s state, n ast.Node) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		c.assign(s, st)
	case *ast.IncDecStmt:
		if k, ok := key(st.X); ok {
			kill(s, k)
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{st.Key, st.Value} {
			if e == nil {
				continue
			}
			if k, ok := key(e); ok {
				kill(s, k)
			}
		}
	}
	_, deferred := n.(*ast.DeferStmt)
	cfg.ShallowWalk(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			c.call(s, call, deferred)
		}
		return true
	})
}

// assign processes writes, kills, aliases, and retention.
func (c *checker) assign(s state, st *ast.AssignStmt) {
	// RHS first: retention and aliasing look at the state before the LHS
	// kills apply.
	for i, rhs := range st.Rhs {
		var lhs ast.Expr
		if len(st.Lhs) == len(st.Rhs) {
			lhs = st.Lhs[i]
		} else if len(st.Lhs) > 0 {
			lhs = st.Lhs[0]
		}
		c.flow(s, lhs, rhs, st.Pos())
	}
	for _, lhs := range st.Lhs {
		l, ok := key(lhs)
		if !ok {
			continue
		}
		// Writing through a tracked buffer?
		c.checkWrite(s, l, st.Pos())
		// Reassigning the tracked expression (or an index variable it
		// depends on) ends tracking: this is the round-boundary swap.
		kill(s, l)
	}
	// Re-add aliases established by this statement (x = sentBuf).
	if len(st.Lhs) == len(st.Rhs) {
		for i, rhs := range st.Rhs {
			rk, ok := key(rhs)
			if !ok {
				continue
			}
			info, tracked := s[rk]
			if !tracked || info.base {
				continue
			}
			if l, ok := key(st.Lhs[i]); ok && !strings.Contains(l, ".") {
				s[l] = info
			}
		}
	}
}

// flow checks one rhs flowing into lhs for retention of a sent buffer.
func (c *checker) flow(s state, lhs, rhs ast.Expr, pos token.Pos) {
	rk, ok := key(rhs)
	if ok {
		if info, tracked := s[rk]; tracked && !info.base {
			if l, lok := key(lhs); lok && strings.Contains(l, ".") {
				c.reportRetained(pos, rk, l, info)
			}
		}
		return
	}
	// m.field = append(m.field, sentBuf): retention through append.
	if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall && isBuiltin(call, "append") {
		for _, a := range call.Args[1:] {
			ak, aok := key(a)
			if !aok {
				continue
			}
			if info, tracked := s[ak]; tracked && !info.base {
				if l, lok := key(lhs); lok && strings.Contains(l, ".") {
					c.reportRetained(pos, ak, l, info)
				}
			}
		}
	}
}

// reportRetained words a retention diagnostic for the buffer's new owner.
func (c *checker) reportRetained(pos token.Pos, k, l string, info sent) {
	if info.pool {
		c.reportf(pos, "pooled block %s is retained in %s (returned to the pool at %s); the pool may reissue it to another worker",
			k, l, c.pass.Fset().Position(info.pos))
		return
	}
	c.reportf(pos, "sent buffer %s is retained in %s (sent at %s); a receiver may still be reading it",
		k, l, c.pass.Fset().Position(info.pos))
}

// checkWrite reports if assigning through l mutates bytes of a tracked
// buffer: any extension of an exact buffer, a >= 2 level extension of a
// base container (out[i] = ... merely replaces the slot header).
func (c *checker) checkWrite(s state, l string, pos token.Pos) {
	for _, e := range sortedEntries(s) {
		k, info := e.k, e.v
		lv := extensionLevels(l, k)
		if lv < 0 {
			continue
		}
		min := 1
		if info.base {
			min = 2
		}
		if lv >= min {
			remedy := "double-buffer or defer the write past the round boundary"
			if info.pool {
				remedy = "keep the block until the last use, then Put it"
			}
			c.reportf(pos, "write to %s after %s was %s (at %s); %s",
				l, k, info.handedTo(), c.pass.Fset().Position(info.pos), remedy)
			return
		}
	}
}

// call marks buffers handed to comm sends or to the graph block pool and
// checks append/copy against tracked buffers. deferred is true inside a
// defer statement, where a PutBlock runs at function exit and so hands
// nothing over mid-body.
func (c *checker) call(s state, call *ast.CallExpr, deferred bool) {
	if isBuiltin(call, "append") || isBuiltin(call, "copy") {
		if len(call.Args) == 0 {
			return
		}
		dst, ok := key(call.Args[0])
		if !ok {
			return
		}
		verb := "append to"
		if isBuiltin(call, "copy") {
			verb = "copy into"
		}
		for _, e := range sortedEntries(s) {
			k, info := e.k, e.v
			if (dst == k && !info.base) || extensionLevels(dst, k) >= 1 {
				owner := "sent bytes are receiver-owned until the round-boundary swap"
				if info.pool {
					owner = "pooled slices are reissued to later GetBlock callers"
				}
				c.reportf(call.Pos(), "%s %s after %s was %s (at %s); %s",
					verb, dst, k, info.handedTo(), c.pass.Fset().Position(info.pos), owner)
				return
			}
		}
		return
	}

	fn := calleeFunc(c.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if strings.HasSuffix(fn.Pkg().Path(), "internal/graph") && fn.Name() == "PutBlock" {
		if deferred || len(call.Args) != 1 {
			return
		}
		if k, ok := key(call.Args[0]); ok && k != "nil" {
			s[k] = sent{pos: call.Pos(), pool: true}
		}
		return
	}
	if !strings.HasSuffix(fn.Pkg().Path(), "internal/comm") {
		return
	}
	switch fn.Name() {
	case "Send", "SendBuffered":
		if len(call.Args) != 3 {
			return
		}
		c.markSent(s, call.Args[2], call.Pos())
	case "Exchange", "ExchangeInto":
		// func Exchange(ep, tag, out) / ExchangeInto(ep, tag, out, in):
		// out's elements go on the wire.
		if len(call.Args) < 3 {
			return
		}
		if k, ok := key(call.Args[2]); ok && k != "nil" {
			s[k] = sent{pos: call.Pos(), base: true}
		}
	}
}

// markSent tracks one payload handed to Send/SendBuffered. A payload
// indexed by a plain identifier (out[i], the loop-over-peers shape)
// additionally marks the container: the induction variable moves on and
// kills the per-element key, but elements of out stay on the wire. A
// payload indexed by a field path (m.bufs[m.gen]) marks only the exact
// expression — the generation flip m.gen ^= 1 must end tracking, because
// the flipped expression addresses the *other* buffer of the pair.
func (c *checker) markSent(s state, payload ast.Expr, pos token.Pos) {
	k, ok := key(payload)
	if !ok || k == "nil" {
		return
	}
	s[k] = sent{pos: pos}
	if idx, isIdx := ast.Unparen(payload).(*ast.IndexExpr); isIdx {
		if _, plain := ast.Unparen(idx.Index).(*ast.Ident); !plain {
			return
		}
		if base, bok := key(idx.X); bok {
			if cur, exists := s[base]; !exists || cur.base {
				s[base] = sent{pos: pos, base: true}
			}
		}
	}
}

// kill drops tracking for k and for every key using k as an index
// variable (reassigning the index re-addresses the expression: the
// generation flip m.sendGen ^= 1, the loop induction variable).
func kill(s state, k string) {
	delete(s, k)
	for tracked := range s {
		if strings.Contains(tracked, "["+k+"]") || strings.Contains(tracked, "["+k+"[") {
			delete(s, tracked)
		}
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if !c.reporting || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

type entry struct {
	k string
	v sent
}

// sortedEntries iterates the state deterministically so replay reporting
// is stable run to run.
func sortedEntries(s state) []entry {
	out := make([]entry, 0, len(s))
	for k, v := range s {
		out = append(out, entry{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// extensionLevels returns how many segments l adds beyond k (l ==
// "out[i][j]", k == "out" -> 2), or -1 if l does not extend k.
func extensionLevels(l, k string) int {
	if len(l) <= len(k) || !strings.HasPrefix(l, k) {
		return -1
	}
	rest := l[len(k):]
	if rest[0] != '[' && rest[0] != '.' {
		return -1
	}
	levels, depth := 0, 0
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '[':
			if depth == 0 {
				levels++
			}
			depth++
		case ']':
			depth--
		case '.':
			if depth == 0 {
				levels++
			}
		}
	}
	return levels
}

// key renders an expression as a normalized source path, the state key.
func key(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.BasicLit:
		return e.Value, true
	case *ast.SelectorExpr:
		x, ok := key(e.X)
		if !ok {
			return "", false
		}
		return x + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		x, ok := key(e.X)
		if !ok {
			return "", false
		}
		i, ok := key(e.Index)
		if !ok {
			return "", false
		}
		return x + "[" + i + "]", true
	case *ast.SliceExpr:
		// buf[:n] shares buf's backing array; track the base.
		return key(e.X)
	case *ast.StarExpr:
		x, ok := key(e.X)
		if !ok {
			return "", false
		}
		return "*" + x, true
	}
	return "", false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == name
}

// calleeFunc resolves a call to its static *types.Func, if possible.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
