package bufownership_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/bufownership"
)

func TestBufOwnership(t *testing.T) {
	analysistest.Run(t, bufownership.Analyzer, "bufownership")
}
