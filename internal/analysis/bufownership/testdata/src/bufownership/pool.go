// Pool cases: the block-recycling half of the ownership contract
// (DESIGN.md §13). A block handed to graph.PutBlock may be reissued to
// another worker immediately; the deferred Put in a scan loop is the
// sanctioned shape.
package bufownership

import "kimbap/internal/graph"

type scanner struct {
	spare *graph.EdgeBlock
	srcs  []graph.NodeID
}

// writeAfterPut scribbles on a column after the block went back to the
// pool — another worker may already be filling it.
func writeAfterPut(blk *graph.EdgeBlock) {
	graph.PutBlock(blk)
	blk.Srcs[0] = 1 // want `write to blk\.Srcs\[0\] after blk was returned to the block pool`
}

// growAfterPut resizes a pooled column through append.
func growAfterPut(blk *graph.EdgeBlock) []graph.NodeID {
	graph.PutBlock(blk)
	return append(blk.Srcs, 0) // want `append to blk\.Srcs after blk was returned to the block pool`
}

// swapColumnAfterPut replaces a column header on a block the pool owns.
func swapColumnAfterPut(blk *graph.EdgeBlock, col []graph.NodeID) {
	graph.PutBlock(blk)
	blk.Dsts = col // want `write to blk\.Dsts after blk was returned to the block pool`
}

// retainAfterPut stashes the block for later: the pool may reissue it
// while the stash still points at it.
func (sc *scanner) retainAfterPut(blk *graph.EdgeBlock) {
	graph.PutBlock(blk)
	sc.spare = blk // want `pooled block blk is retained in sc\.spare`
}

// retainColumnAfterPut keeps a column slice, which the pool reissues with
// the block.
func (sc *scanner) retainColumnAfterPut(blk *graph.EdgeBlock) {
	col := blk.Srcs
	graph.PutBlock(blk)
	sc.srcs = col // ok: the alias predates the Put and is not tracked (first-order analysis)
}

// aliasWriteAfterPut is tracked through the alias.
func aliasWriteAfterPut(blk *graph.EdgeBlock) {
	graph.PutBlock(blk)
	p := blk
	p.Srcs[0] = 1 // want `write to p\.Srcs\[0\] after p was returned to the block pool`
}

// deferredPutScan is the sanctioned streaming shape: the deferred Put
// runs at function exit, after every use in the loop body.
func deferredPutScan(src graph.BlockSource) error {
	blk := graph.GetBlock()
	defer graph.PutBlock(blk)
	for i := 0; i < src.NumBlocks(); i++ {
		if err := src.ReadBlock(i, blk); err != nil {
			return err
		}
		blk.Srcs[0] = 0
	}
	return nil
}

// reissueEndsTracking: a fresh GetBlock is fresh ownership.
func reissueEndsTracking(blk *graph.EdgeBlock) {
	graph.PutBlock(blk)
	blk = graph.GetBlock()
	blk.Srcs = blk.Srcs[:0]
}

// useThenPut is the normal order: every touch precedes the Put.
func useThenPut() {
	blk := graph.GetBlock()
	blk.Reset(4, false)
	blk.Srcs[0] = 2
	graph.PutBlock(blk)
}
