// Package bufownership exercises the §8 buffer-ownership analyzer
// against the real comm API. The violating cases are distilled from PR
// 2-5 near-misses: a send buffer written before the round boundary, a
// payload retained in a field, and an append through a sent slice.
package bufownership

import "kimbap/internal/comm"

type host struct {
	bufs  [2][]byte
	gen   int
	stash []byte
	log   [][]byte
}

// writeAfterSend is the basic violation: the receiver may still be
// reading buf when the sender scribbles on it.
func writeAfterSend(ep comm.Endpoint, buf []byte) {
	ep.Send(1, comm.TagApp, buf)
	buf[0] = 1 // want `write to buf\[0\] after buf was handed to a comm send`
}

// retainAfterSend stores the sent payload in a field, escaping the
// round-local ownership argument (the PR 3 near-miss).
func (h *host) retainAfterSend(ep comm.Endpoint, buf []byte) {
	ep.Send(1, comm.TagApp, buf)
	h.stash = buf // want `sent buffer buf is retained in h\.stash`
}

// retainViaAppend hides the retention inside an append.
func (h *host) retainViaAppend(ep comm.Endpoint, buf []byte) {
	ep.Send(1, comm.TagApp, buf)
	h.log = append(h.log, buf) // want `sent buffer buf is retained in h\.log`
}

// appendAfterSend may write the shared backing array in place.
func appendAfterSend(ep comm.Endpoint, buf []byte) []byte {
	ep.Send(1, comm.TagApp, buf)
	return append(buf, 0) // want `append to buf after buf was handed to a comm send`
}

// copyAfterSend overwrites sent bytes directly.
func copyAfterSend(ep comm.Endpoint, buf, next []byte) {
	ep.Send(1, comm.TagApp, buf)
	copy(buf, next) // want `copy into buf after buf was handed to a comm send`
}

// aliasWrite evades nothing: the alias is tracked too.
func aliasWrite(ep comm.Endpoint, buf []byte) {
	ep.Send(1, comm.TagApp, buf)
	p := buf
	p[0] = 1 // want `write to p\[0\] after p was handed to a comm send`
}

// writeOnSomePath is caught by the may-analysis: one path through the if
// has sent buf by the time of the write.
func writeOnSomePath(ep comm.Endpoint, buf []byte, cond bool) {
	if cond {
		ep.Send(1, comm.TagApp, buf)
	}
	buf[0] = 1 // want `write to buf\[0\] after buf was handed to a comm send`
}

// exchangeElementWrite: after Exchange, replacing a slot header is fine
// (the receiver keeps its own reference) but writing bytes through a
// slot mutates what was sent.
func exchangeElementWrite(ep comm.Endpoint, out [][]byte) {
	in := comm.Exchange(ep, comm.TagApp, out)
	out[0] = in[1]  // slot replacement: ok
	out[1][0] = 9   // want `write to out\[1\]\[0\] after out was handed to a comm send`
}

// loopSendThenWrite: the per-element key dies with the induction
// variable, but the container mark survives the loop.
func loopSendThenWrite(ep comm.Endpoint, out [][]byte) {
	for i := 0; i < ep.NumHosts(); i++ {
		if i == ep.Rank() {
			continue
		}
		ep.Send(i, comm.TagApp, out[i])
	}
	out[0][0] = 1 // want `write to out\[0\]\[0\] after out was handed to a comm send`
}

// doubleBuffered is the sanctioned pattern: the generation flip ends
// tracking, and the next round's writes go to the other buffer.
func (h *host) doubleBuffered(ep comm.Endpoint) {
	ep.Send(1, comm.TagApp, h.bufs[h.gen])
	h.gen ^= 1
	h.bufs[h.gen] = h.bufs[h.gen][:0]
	h.bufs[h.gen] = append(h.bufs[h.gen], 42)
}

// reassignEndsTracking: a fresh buffer is a fresh round.
func reassignEndsTracking(ep comm.Endpoint, buf []byte) {
	ep.Send(1, comm.TagApp, buf)
	buf = make([]byte, 8)
	buf[0] = 1
}

// buildThenSend is the normal order: all writes happen before the send.
func buildThenSend(ep comm.Endpoint) {
	buf := make([]byte, 0, 8)
	buf = append(buf, 1, 2, 3)
	ep.Send(1, comm.TagApp, buf)
}

// nilPayloadIsFine: barriers send nil payloads.
func nilPayloadIsFine(ep comm.Endpoint) {
	ep.Send(1, comm.TagBarrier, nil)
	ep.Recv(1, comm.TagBarrier)
}
