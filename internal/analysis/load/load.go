// Package load parses and type-checks the module's packages for the
// kimbapvet analyzers. It is a minimal, offline replacement for
// golang.org/x/tools/go/packages built entirely on the standard library:
// module packages ("kimbap/...") are parsed and type-checked from source
// with their ASTs retained (the analyzers need function bodies across
// package boundaries), while standard-library imports are delegated to the
// stdlib source importer. Loading must happen with the process working
// directory inside the module, because pattern expansion and stdlib
// resolution shell out to `go list`.
package load

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package with its syntax retained.
type Package struct {
	// Path is the import path ("kimbap/internal/npm").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's findings for Files.
	Info *types.Info
}

// Program is a set of loaded packages sharing one FileSet and importer
// state.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
	std     types.ImporterFrom  // stdlib (and anything non-module) from source

	funcDecls map[*types.Func]funcDecl // built lazily by FuncDecl
}

// errNoGoFiles marks a directory with no non-test Go sources.
var errNoGoFiles = errors.New("no Go source files")

type funcDecl struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// NewProgram locates the enclosing module (walking up from the working
// directory to a go.mod) and returns an empty Program rooted there.
func NewProgram() (*Program, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	modDir := dir
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("load: no go.mod found above %s", dir)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("load: no module directive in %s/go.mod", modDir)
	}
	fset := token.NewFileSet()
	p := &Program{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	p.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return p, nil
}

// LoadPatterns expands go-list patterns (e.g. "./...") into module packages
// and loads each. Non-module packages matched by a pattern are ignored.
func (p *Program) LoadPatterns(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = p.ModuleDir
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("load: go list %v: %w%s", patterns, err, detail)
	}
	var pkgs []*Package
	for _, path := range strings.Fields(string(out)) {
		if path != p.ModulePath && !strings.HasPrefix(path, p.ModulePath+"/") {
			continue
		}
		pkg, err := p.Load(path)
		if err != nil {
			if errors.Is(err, errNoGoFiles) {
				continue // test-only package
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Load parses and type-checks the module package with the given import
// path (loading its module dependencies recursively). Results are cached.
func (p *Program) Load(path string) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, p.ModulePath), "/")
	dir := filepath.Join(p.ModuleDir, filepath.FromSlash(rel))
	return p.loadDir(path, dir)
}

// LoadDir parses and type-checks the package in dir under a synthetic
// import path. It is used by analysistest to load testdata packages that
// live outside the module's import space.
func (p *Program) LoadDir(path, dir string) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	return p.loadDir(path, dir)
}

func (p *Program) loadDir(path, dir string) (*Package, error) {
	p.loading[path] = true
	defer delete(p.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", path, err)
		}
		if !shouldBuild(name, src) {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: %s: %w in %s", path, errNoGoFiles, dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return p.Fset.File(files[i].Pos()).Name() < p.Fset.File(files[j].Pos()).Name()
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: (*progImporter)(p)}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.pkgs[path] = pkg
	return pkg, nil
}

// Package returns the already-loaded package with the given path, or nil.
func (p *Program) Package(path string) *Package { return p.pkgs[path] }

// Packages returns all loaded packages (dependencies included), sorted by
// import path.
func (p *Program) Packages() []*Package {
	var out []*Package
	for _, pkg := range p.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// FuncDecl returns the syntax of fn's declaration and the package holding
// it, if fn belongs to a loaded package. Generic instantiations are
// resolved to their origin declaration.
func (p *Program) FuncDecl(fn *types.Func) (*ast.FuncDecl, *Package) {
	if fn == nil {
		return nil, nil
	}
	fn = fn.Origin()
	if p.funcDecls == nil {
		p.funcDecls = map[*types.Func]funcDecl{}
	}
	if fd, ok := p.funcDecls[fn]; ok {
		return fd.decl, fd.pkg
	}
	// Index the declaring package on first miss.
	if fn.Pkg() == nil {
		return nil, nil
	}
	pkg := p.pkgs[fn.Pkg().Path()]
	if pkg == nil {
		return nil, nil
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
				p.funcDecls[obj.Origin()] = funcDecl{decl, pkg}
			}
		}
	}
	fd := p.funcDecls[fn]
	return fd.decl, fd.pkg
}

// progImporter resolves imports during type checking: module packages come
// from the Program itself (keeping their ASTs), everything else from the
// stdlib source importer.
type progImporter Program

func (pi *progImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

func (pi *progImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	p := (*Program)(pi)
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		pkg, err := p.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if srcDir == "" {
		srcDir = p.ModuleDir
	}
	return p.std.ImportFrom(path, srcDir, mode)
}
