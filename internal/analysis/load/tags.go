package load

import (
	"bytes"
	"go/build/constraint"
	"runtime"
	"strings"
)

// Build-constraint handling: the loader must skip files excluded on this
// platform, or a build-tagged pair (graph's mmap_linux.go/mmap_other.go)
// type-checks as a redeclaration. Two rules apply, matching cmd/go:
// //go:build expressions in the file header, and implicit _GOOS/_GOARCH
// filename suffixes. Only the tags kimbapvet can actually run under need
// to evaluate: GOOS, GOARCH, unix, gc, and go1.N version gates (all
// treated as satisfied — the module's go directive governs what compiles).

var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

func matchTag(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixOS[runtime.GOOS]
	case tag == "gc":
		return true
	case strings.HasPrefix(tag, "go1"):
		return true
	}
	return false
}

// shouldBuild reports whether the file named name with contents src is
// included in the package on this platform.
func shouldBuild(name string, src []byte) bool {
	if !matchFileName(name) {
		return false
	}
	expr := buildExpr(src)
	if expr == nil {
		return true
	}
	return expr.Eval(matchTag)
}

// matchFileName applies cmd/go's implicit filename constraints:
// name_GOOS.go, name_GOARCH.go, name_GOOS_GOARCH.go.
func matchFileName(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	parts := strings.Split(name, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	prev := ""
	if len(parts) >= 3 {
		prev = parts[len(parts)-2]
	}
	switch {
	case knownArch[last]:
		if last != runtime.GOARCH {
			return false
		}
		return prev == "" || !knownOS[prev] || prev == runtime.GOOS
	case knownOS[last]:
		return last == runtime.GOOS
	}
	return true
}

// buildExpr extracts the //go:build expression from the file header, or
// nil if there is none (legacy // +build lines are ignored: the module
// sets go >= 1.17, where //go:build is authoritative and gofmt keeps the
// two in sync).
func buildExpr(src []byte) constraint.Expr {
	for _, line := range bytes.Split(src, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 || bytes.HasPrefix(line, []byte("//")) {
			if constraint.IsGoBuild(string(line)) {
				expr, err := constraint.Parse(string(line))
				if err != nil {
					return nil
				}
				return expr
			}
			continue
		}
		// First non-blank, non-comment line ends the header. (A /* block
		// comment also ends constraint scanning per spec; none of the
		// module's headers use one before the package clause.)
		break
	}
	return nil
}
