package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as a file and returns the body of its first
// function declaration.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\nfunc f() {\n"+body+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the set of blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g, ok := Build(parseBody(t, "x := 1\nx++\n_ = x"))
	if !ok {
		t.Fatal("Build failed on straight-line code")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestIfElseMerges(t *testing.T) {
	g, ok := Build(parseBody(t, "x := 1\nif x > 0 {\nx = 2\n} else {\nx = 3\n}\n_ = x"))
	if !ok {
		t.Fatal("Build failed")
	}
	// Entry holds the init assignment and the if head with two branch
	// successors; both branches must rejoin before the final statement.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(g.Entry.Succs))
	}
	m0, m1 := g.Entry.Succs[0].Succs, g.Entry.Succs[1].Succs
	if len(m0) != 1 || len(m1) != 1 || m0[0] != m1[0] {
		t.Errorf("branches do not merge: %v vs %v", m0, m1)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g, ok := Build(parseBody(t, "for i := 0; i < 3; i++ {\n_ = i\n}"))
	if !ok {
		t.Fatal("Build failed")
	}
	// Find the loop head (the block holding the ForStmt) and check a
	// cycle exists back to it.
	var head *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, isFor := n.(*ast.ForStmt); isFor {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("no loop head block")
	}
	onCycle := false
	for b := range reachable(g) {
		if b == head {
			continue
		}
		for _, s := range b.Succs {
			if s == head && len(b.Nodes) > 0 {
				onCycle = true
			}
		}
	}
	if !onCycle {
		t.Error("no back edge to the loop head")
	}
}

func TestReturnLeadsToExit(t *testing.T) {
	g, ok := Build(parseBody(t, "if true {\nreturn\n}\n_ = 1"))
	if !ok {
		t.Fatal("Build failed")
	}
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, isRet := n.(*ast.ReturnStmt); isRet {
				for _, s := range b.Succs {
					if s == g.Exit {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("return block has no edge to exit")
	}
}

func TestSwitchNoDefaultSkips(t *testing.T) {
	g, ok := Build(parseBody(t, "x := 1\nswitch x {\ncase 1:\nx = 2\ncase 2:\nx = 3\n}\n_ = x"))
	if !ok {
		t.Fatal("Build failed")
	}
	// The head must have three successors: two cases plus the skip edge.
	if len(g.Entry.Succs) != 3 {
		t.Errorf("switch head has %d successors, want 3 (2 cases + no-default skip)", len(g.Entry.Succs))
	}
}

func TestBailsOnGotoAndLabels(t *testing.T) {
	if _, ok := Build(parseBody(t, "goto done\ndone:\n_ = 1")); ok {
		t.Error("Build accepted goto")
	}
	if _, ok := Build(parseBody(t, "outer:\nfor {\nbreak outer\n}")); ok {
		t.Error("Build accepted a labeled statement")
	}
}

func TestShallowWalkSkipsBodies(t *testing.T) {
	body := parseBody(t, "if f := func() { panic(1) }; f != nil {\n_ = f\n}")
	g, ok := Build(body)
	if !ok {
		t.Fatal("Build failed")
	}
	// Walk every node of every block shallowly: the panic call inside the
	// function literal must never surface, the literal itself must.
	sawLit, sawPanic := false, false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ShallowWalk(n, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					sawLit = true
				}
				if c, isCall := m.(*ast.CallExpr); isCall {
					if id, isID := c.Fun.(*ast.Ident); isID && id.Name == "panic" {
						sawPanic = true
					}
				}
				return true
			})
		}
	}
	if !sawLit {
		t.Error("ShallowWalk never visited the function literal node")
	}
	if sawPanic {
		t.Error("ShallowWalk descended into a function literal body")
	}
}
