// Package cfg builds basic-block control-flow graphs from Go function
// bodies for the kimbapvet dataflow analyzers. It is a deliberately small
// subset of golang.org/x/tools/go/cfg (which this module cannot depend
// on): structured control flow only. Build reports ok=false on goto and
// labeled statements — the analyzers that consume these graphs skip such
// functions, exactly as lockdiscipline bails on them — and none of the
// checked packages use either.
//
// Blocks hold ast.Nodes rather than statements: a control statement (if,
// for, range, switch, select) appears as the head node of its condition
// block, and each case/comm clause marker opens its clause's block.
// Consumers must therefore walk block nodes with ShallowWalk, which
// visits only the parts of a head node evaluated at that program point
// (an if's condition, a range's operand, a case clause's label
// expressions) and never descends into nested statement bodies — those
// live in their own blocks.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is a maximal straight-line sequence of nodes with a single entry.
type Block struct {
	// Index is the construction-order identifier, roughly source order;
	// analyzers iterate blocks by Index for deterministic reporting.
	Index int
	// Nodes are the statements (and control-statement heads / clause
	// markers) executed in order within the block.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	// Exit is a synthetic empty block: every return statement and the
	// fall-off-the-end path lead to it.
	Exit *Block
	// Blocks lists every block in construction order, including blocks
	// made unreachable by return/panic.
	Blocks []*Block
}

// Build constructs the CFG of body. ok is false if body contains a goto
// or labeled statement (including labeled break/continue), in which case
// the graph must not be used.
func Build(body *ast.BlockStmt) (*Graph, bool) {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g, !b.failed
}

type builder struct {
	g      *Graph
	cur    *Block
	breaks []*Block // innermost-last break targets (loops and switches)
	conts  []*Block // innermost-last continue targets (loops only)
	// ftTarget is the next case's block while building a switch case, the
	// target of a fallthrough statement.
	ftTarget *Block
	failed   bool
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// deadEnd parks the builder on a fresh unreachable block after a
// terminating statement (return, break, panic), so trailing statements
// attach somewhere without reaching the rest of the graph.
func (b *builder) deadEnd() {
	b.cur = b.newBlock()
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	if b.failed {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.cur
		head.Nodes = append(head.Nodes, s)
		merge := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		b.edge(b.cur, merge)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, merge)
		} else {
			b.edge(head, merge)
		}
		b.cur = merge

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		// The latch runs the post statement; continue jumps to it so the
		// post still executes.
		latch := head
		if s.Post != nil {
			latch = b.newBlock()
			latch.Nodes = append(latch.Nodes, s.Post)
			b.edge(latch, head)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, latch)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, latch)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s, s.Body)

	case *ast.SelectStmt:
		head := b.cur
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.breaks = append(b.breaks, after)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clB := b.newBlock()
			b.edge(head, clB)
			clB.Nodes = append(clB.Nodes, comm)
			b.cur = clB
			b.stmts(comm.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(s.Body.List) == 0 {
			b.edge(head, after) // select{} never proceeds, but keep the graph connected
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.deadEnd()

	case *ast.BranchStmt:
		if s.Label != nil {
			b.failed = true
			return
		}
		switch s.Tok {
		case token.BREAK:
			if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
			b.deadEnd()
		case token.CONTINUE:
			if n := len(b.conts); n > 0 {
				b.edge(b.cur, b.conts[n-1])
			}
			b.deadEnd()
		case token.FALLTHROUGH:
			if b.ftTarget != nil {
				b.edge(b.cur, b.ftTarget)
			}
			b.deadEnd()
		case token.GOTO:
			b.failed = true
		}

	case *ast.LabeledStmt:
		b.failed = true

	default:
		// Simple statements: expression, assignment, declaration, send,
		// inc/dec, defer, go, empty.
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicStmt(s) {
			b.edge(b.cur, b.g.Exit)
			b.deadEnd()
		}
	}
}

// switchStmt builds an expression or type switch: head -> every case
// block -> after, with head -> after when no default case exists.
func (b *builder) switchStmt(init ast.Stmt, head ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	headB := b.cur
	headB.Nodes = append(headB.Nodes, head)
	after := b.newBlock()
	// Create case blocks first so fallthrough can target the next one.
	caseBlocks := make([]*Block, len(body.List))
	hasDefault := false
	for i, cl := range body.List {
		caseBlocks[i] = b.newBlock()
		b.edge(headB, caseBlocks[i])
		if len(cl.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(headB, after)
	}
	b.breaks = append(b.breaks, after)
	savedFT := b.ftTarget
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		b.ftTarget = nil
		if i+1 < len(caseBlocks) {
			b.ftTarget = caseBlocks[i+1]
		}
		caseBlocks[i].Nodes = append(caseBlocks[i].Nodes, cc)
		b.cur = caseBlocks[i]
		b.stmts(cc.Body)
		b.edge(b.cur, after)
	}
	b.ftTarget = savedFT
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// isPanicStmt reports whether s is a direct call to the panic builtin.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// ShallowWalk visits the parts of a block node evaluated at its program
// point: for control-statement heads only the condition/operand (never
// nested bodies, which occupy their own blocks), for everything else the
// whole node. fn follows ast.Inspect semantics — returning false skips
// the node's children — except that function literals are visited as
// nodes but never entered: a literal's body executes when called, not
// where written, so dataflow transfer functions must handle literals
// explicitly if they care.
func ShallowWalk(n ast.Node, fn func(ast.Node) bool) {
	switch s := n.(type) {
	case *ast.IfStmt:
		walkNoFuncLit(s.Cond, fn)
	case *ast.ForStmt:
		if s.Cond != nil {
			walkNoFuncLit(s.Cond, fn)
		}
	case *ast.RangeStmt:
		if s.Key != nil {
			walkNoFuncLit(s.Key, fn)
		}
		if s.Value != nil {
			walkNoFuncLit(s.Value, fn)
		}
		walkNoFuncLit(s.X, fn)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			walkNoFuncLit(s.Tag, fn)
		}
	case *ast.TypeSwitchStmt:
		walkNoFuncLit(s.Assign, fn)
	case *ast.SelectStmt:
		// Nothing evaluated at the head; comm clauses are block markers.
	case *ast.CaseClause:
		for _, e := range s.List {
			walkNoFuncLit(e, fn)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			walkNoFuncLit(s.Comm, fn)
		}
	default:
		walkNoFuncLit(n, fn)
	}
}

func walkNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !fn(m) {
			return false
		}
		_, isLit := m.(*ast.FuncLit)
		return !isLit
	})
}
