// Package cautiouscases is the shared table of cautious-operator
// positive/negative cases that the IR validator (internal/compiler
// Validate) and the Go-level cautiousop analyzer must agree on. Each
// case carries the same operator in both forms where expressible: an IR
// program and a Go operator body. The compiler's external test package
// checks the IR side; the cautiousop test renders the Go side into a
// synthetic package and checks the analyzer. Keeping one table keeps the
// two §3.2 enforcement points from drifting apart.
package cautiouscases

import "kimbap/internal/compiler"

// Case is one cautious-operator scenario with its expected verdict.
type Case struct {
	Name string
	// OK reports whether the operator is valid (cautious and
	// structurally sound).
	OK bool
	// IR builds the IR form, or nil when the case is only expressible
	// at Go level (e.g. if/else siblings — the IR has no else).
	IR func() *compiler.Program
	// GoSrc is the body of the operator closure in Go, or "" when only
	// expressible in IR (e.g. EdgeDst placement, use-before-assign).
	// It may use: u (the active node, int), a and b (*propMap with
	// Read/Reduce), and deg (an int loop bound).
	GoSrc string
}

// irProgram wraps one operator body in a single-loop program over maps
// "a" and "b".
func irProgram(name string, body ...compiler.Stmt) func() *compiler.Program {
	return func() *compiler.Program {
		return &compiler.Program{
			Name: name,
			Maps: []compiler.MapDecl{
				{Name: "a", Kind: compiler.MinMap, InitToID: true},
				{Name: "b", Kind: compiler.MinMap, InitToID: true},
			},
			Loops: []compiler.Loop{{Quiesce: "a", Body: body}},
		}
	}
}

// Cases returns the shared table.
func Cases() []Case {
	lt10 := compiler.Cond{Op: compiler.Lt, L: compiler.Active{}, R: compiler.Const{V: 10}}
	lt5 := compiler.Cond{Op: compiler.Lt, L: compiler.Active{}, R: compiler.Const{V: 5}}
	return []Case{
		{
			Name: "read_then_reduce",
			OK:   true,
			IR: irProgram("read-then-reduce",
				compiler.Read{Dst: "x", Map: "a", Key: compiler.Active{}},
				compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Var{Name: "x"}},
			),
			GoSrc: `x := a.Read(u)
a.Reduce(u, x)`,
		},
		{
			Name: "reduce_then_read",
			OK:   false,
			IR: irProgram("reduce-then-read",
				compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Const{V: 0}},
				compiler.Read{Dst: "x", Map: "a", Key: compiler.Active{}},
			),
			GoSrc: `a.Reduce(u, 1)
_ = a.Read(u)`,
		},
		{
			Name: "reduce_then_read_in_nested_block",
			OK:   false,
			IR: irProgram("reduce-then-read-nested",
				compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Const{V: 0}},
				compiler.If{Cond: lt10, Then: []compiler.Stmt{
					compiler.If{Cond: lt5, Then: []compiler.Stmt{
						compiler.Read{Dst: "x", Map: "a", Key: compiler.Active{}},
					}},
				}},
			),
			GoSrc: `a.Reduce(u, 1)
if u < 10 {
	if u < 5 {
		_ = a.Read(u)
	}
}`,
		},
		{
			Name: "reduce_in_nested_block_read_after",
			OK:   false,
			IR: irProgram("reduce-nested-read-after",
				compiler.If{Cond: lt10, Then: []compiler.Stmt{
					compiler.If{Cond: lt5, Then: []compiler.Stmt{
						compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Const{V: 0}},
					}},
				}},
				compiler.Read{Dst: "x", Map: "a", Key: compiler.Active{}},
			),
			GoSrc: `if u < 10 {
	if u < 5 {
		a.Reduce(u, 1)
	}
}
_ = a.Read(u)`,
		},
		{
			Name: "cross_map_read_after_reduce",
			OK:   true,
			IR: irProgram("cross-map",
				compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Const{V: 0}},
				compiler.Read{Dst: "x", Map: "b", Key: compiler.Active{}},
			),
			GoSrc: `a.Reduce(u, 1)
_ = b.Read(u)`,
		},
		{
			Name: "edge_loop_hook",
			OK:   true,
			// The Figure 4 hook: within one edge iteration the Read comes
			// first; the next iteration's Read follows only via the back
			// edge, which separates iterations.
			IR: irProgram("edge-loop-hook",
				compiler.ForEdges{Body: []compiler.Stmt{
					compiler.Read{Dst: "d", Map: "a", Key: compiler.EdgeDst{}},
					compiler.Reduce{Map: "a", Key: compiler.Var{Name: "d"}, Val: compiler.Const{V: 0}},
				}},
			),
			GoSrc: `for i := 0; i < deg; i++ {
	x := a.Read(u)
	a.Reduce(u, x)
}`,
		},
		{
			Name: "read_after_reduce_loop",
			OK:   false,
			// The loop's exit is forward control flow: a Read after the
			// edge loop does follow the Reduce inside it.
			IR: irProgram("read-after-reduce-loop",
				compiler.ForEdges{Body: []compiler.Stmt{
					compiler.Reduce{Map: "a", Key: compiler.EdgeDst{}, Val: compiler.Const{V: 0}},
				}},
				compiler.Read{Dst: "x", Map: "a", Key: compiler.Active{}},
			),
			GoSrc: `for i := 0; i < deg; i++ {
	a.Reduce(u, 1)
}
_ = a.Read(u)`,
		},
		{
			Name: "sibling_else_branches",
			OK:   true,
			// Go-only: the IR has no else branch, and its two consecutive
			// If statements are sequential (the read would be reachable).
			GoSrc: `if u < 10 {
	a.Reduce(u, 1)
} else {
	_ = a.Read(u)
}`,
		},
		{
			Name: "edge_dst_outside_foredges",
			OK:   false,
			// IR-only structural rule: EdgeDst is bound by ForEdges.
			IR: irProgram("edge-dst-outside",
				compiler.Read{Dst: "x", Map: "a", Key: compiler.EdgeDst{}},
			),
		},
		{
			Name: "use_before_assign",
			OK:   false,
			// IR-only structural rule: Go's compiler already rejects this.
			IR: irProgram("use-before-assign",
				compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Var{Name: "ghost"}},
			),
		},
		{
			Name: "branch_local_use_after_if",
			OK:   false,
			// IR-only: a variable assigned only under a condition may be
			// unassigned on other paths.
			IR: irProgram("branch-local-escape",
				compiler.If{Cond: lt10, Then: []compiler.Stmt{
					compiler.Assign{Dst: "only_here", Val: compiler.Const{V: 1}},
				}},
				compiler.Reduce{Map: "a", Key: compiler.Active{}, Val: compiler.Var{Name: "only_here"}},
			),
		},
	}
}
