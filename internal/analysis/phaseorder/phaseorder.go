// Package phaseorder machine-checks the BSP phase discipline (DESIGN.md
// §9): a superstep's npm Reduce calls buffer thread-local deltas that
// only become visible — and only stop referencing frontier state — after
// ReduceSync, so Frontier.Advance with an un-synced Reduce pending
// reorders the round. Likewise comm SendBuffered stages bytes that are
// not on the wire until FlushSends, so a Recv (or a function return)
// with staged sends pending deadlocks or drops the tail of the round.
// A pull round (npm.PullHandle.BeginPullRound) reads pinned mirrors in
// place of remote requests, so it is only sound while the mirrors still
// reflect the masters: a ReduceSync, InitSync, or earlier pull round
// since the last BroadcastSync/PinMirrors leaves them stale, and the
// runtime panics at BeginPullRound. The analyzer finds the misordering
// statically for handles it can resolve (the `ph, ok := npm.Pull(m)`
// idiom), on maps the function pins — an unpinned masters-only scratch
// map never materializes mirrors, so freshness is moot there, exactly as
// at run time. Finally, per-node Frontier.Activate is only meaningful
// from a dispatched operator closure — handed to a ParFor* dispatch or
// an AsyncDrain/AsyncDrainBits entry point, or taking a
// *runtime.AsyncCtx (only the drain scheduler constructs one, so such a
// body is dispatched compute no matter how it reaches the drain) — or
// from a decode path that owns the frontier (a FrontierSink); activation
// from sequential driver code is almost always a missed ParForActive.
//
// The ordering rules run as a forward may-dataflow over each function's
// CFG. Closures handed to the runtime's Time* sections are inlined (they
// run synchronously, exactly once); closures handed to dispatch
// primitives (ParFor*, par.Do/Static/Dynamic/PrefixSum) are scanned for
// the effects they contribute (Reduce, SendBuffered) without applying
// their clears, since the dispatch order is not sequential. The Activate
// rule is a separate syntactic check per declaration.
//
// The internal/comm and internal/runtime packages themselves are exempt:
// they implement the primitives the discipline is about.
package phaseorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kimbap/internal/analysis/cfg"
	"kimbap/internal/analysis/dataflow"
	"kimbap/internal/analysis/framework"
)

// Analyzer is the phaseorder check.
var Analyzer = &framework.Analyzer{
	Name: "phaseorder",
	Doc:  "enforce BSP phase order: ReduceSync before Advance, FlushSends before Recv or return, BroadcastSync before a pull round on a pinned map, Activate only from operators or decoders (§9, §15)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	p := pass.Pkg.Path
	if strings.HasSuffix(p, "internal/comm") || strings.HasSuffix(p, "internal/runtime") {
		return nil // the layers implementing the primitives are exempt
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			c := &checker{
				pass:     pass,
				info:     pass.Pkg.Info,
				lits:     namedLits(decl.Body),
				pulls:    namedPulls(decl.Body, pass.Pkg.Info),
				pinned:   pinnedMaps(decl.Body, pass.Pkg.Info),
				reported: map[string]bool{},
			}
			c.analyzeBody(decl.Body, true)
			// Function literals also get a standalone pass from an empty
			// state, so Advance/Recv misorderings inside a closure are
			// caught even when its call site is out of view. The exit
			// check does not apply: an operator closure legitimately
			// stages sends for its caller to flush after the dispatch.
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.analyzeBody(lit.Body, false)
				}
				return true
			})
			c.checkActivate(decl)
		}
	}
	return nil
}

// state is the per-program-point may-set of pending phase obligations.
type state struct {
	// reduces maps a Map receiver's source path to its first un-synced
	// Reduce position.
	reduces map[string]token.Pos
	// staged maps a sender receiver's source path to its first unflushed
	// SendBuffered position.
	staged map[string]token.Pos
	// stale maps a Map receiver's source path to the position of the call
	// that last made its mirrors stale (ReduceSync, InitSync, or a pull
	// round) with no BroadcastSync/PinMirrors since.
	stale map[string]token.Pos
}

func newState() state {
	return state{
		reduces: map[string]token.Pos{},
		staged:  map[string]token.Pos{},
		stale:   map[string]token.Pos{},
	}
}

func cloneState(s state) state {
	out := newState()
	for k, v := range s.reduces {
		out.reduces[k] = v
	}
	for k, v := range s.staged {
		out.staged[k] = v
	}
	for k, v := range s.stale {
		out.stale[k] = v
	}
	return out
}

func joinState(dst, src state) (state, bool) {
	changed := false
	for k, v := range src.reduces {
		if _, ok := dst.reduces[k]; !ok {
			dst.reduces[k] = v
			changed = true
		}
	}
	for k, v := range src.staged {
		if _, ok := dst.staged[k]; !ok {
			dst.staged[k] = v
			changed = true
		}
	}
	for k, v := range src.stale {
		if _, ok := dst.stale[k]; !ok {
			dst.stale[k] = v
			changed = true
		}
	}
	return dst, changed
}

type checker struct {
	pass *framework.Pass
	info *types.Info
	// lits resolves closure-valued locals (body := func(...){...}) so a
	// dispatch by name — h.ParForActive(fr, body) — scans the right body.
	lits map[string]*ast.FuncLit
	// pulls resolves pull-handle locals (ph, ok := npm.Pull(m)) to the
	// source path of the map they pull from.
	pulls map[string]string
	// pinned holds the map source paths this function calls PinMirrors on.
	// The stale-mirror rule only fires for them: an unpinned masters-only
	// scratch map has no mirrors to be stale (the runtime check is gated
	// the same way).
	pinned    map[string]bool
	reporting bool
	reported  map[string]bool
}

func (c *checker) analyzeBody(body *ast.BlockStmt, exitCheck bool) {
	g, ok := cfg.Build(body)
	if !ok {
		return // goto/labels: out of scope, as in the other CFG analyzers
	}
	sp := dataflow.Spec[state]{
		Init:  newState(),
		Clone: cloneState,
		Join:  joinState,
		Transfer: func(s state, n ast.Node) state {
			c.transfer(s, n)
			return s
		},
	}
	states := dataflow.Forward(g, sp)
	c.reporting = true
	for _, b := range g.Blocks {
		s, ok := states[b]
		if !ok {
			continue
		}
		s = cloneState(s)
		for _, n := range b.Nodes {
			c.transfer(s, n)
		}
		// At function exit, staged sends must have been flushed on every
		// path: the bytes are sitting in a local buffer nobody owns.
		if !exitCheck {
			continue
		}
		exits := false
		for _, succ := range b.Succs {
			if succ == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		pos := body.Rbrace
		if n := len(b.Nodes); n > 0 {
			if ret, isRet := b.Nodes[n-1].(*ast.ReturnStmt); isRet {
				pos = ret.Pos()
			}
		}
		for _, e := range sortedPend(s.staged) {
			c.reportf("exit", e.pos, pos,
				"staged sends on %s are never flushed on this path (SendBuffered at %s); call FlushSends before returning — staged bytes are not on the wire",
				e.k, c.pass.Fset().Position(e.pos))
		}
	}
	c.reporting = false
}

func (c *checker) transfer(s state, n ast.Node) {
	cfg.ShallowWalk(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			c.applyCall(s, call, true)
		}
		return true
	})
}

// applyCall classifies one call and applies its phase effects. ordered
// reports diagnostics and applies clearing effects (ReduceSync,
// FlushSends); it is false while scanning a dispatched closure, whose
// concurrent iterations only contribute obligations.
func (c *checker) applyCall(s state, call *ast.CallExpr, ordered bool) {
	fn := calleeFunc(c.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case strings.HasSuffix(pkg, "internal/npm"):
		switch name {
		case "Reduce":
			if k, ok := recvKey(call); ok {
				if _, pending := s.reduces[k]; !pending {
					s.reduces[k] = call.Pos()
				}
			}
		case "ReduceSync":
			if !ordered {
				return
			}
			if k, ok := recvKey(call); ok {
				delete(s.reduces, k)
				// The reduce rewrites masters without refreshing mirrors.
				if _, pending := s.stale[k]; !pending {
					s.stale[k] = call.Pos()
				}
			}
		case "InitSync":
			if !ordered {
				return
			}
			if k, ok := recvKey(call); ok {
				if _, pending := s.stale[k]; !pending {
					s.stale[k] = call.Pos()
				}
			}
		case "BroadcastSync", "PinMirrors":
			if !ordered {
				return
			}
			if k, ok := recvKey(call); ok {
				delete(s.stale, k)
			}
		case "BeginPullRound":
			if !ordered {
				return
			}
			k, ok := recvKey(call)
			if !ok {
				return
			}
			mk, known := c.pulls[k]
			if !known {
				return // handle from a field or parameter: out of view
			}
			if pos, isStale := s.stale[mk]; isStale && c.pinned[mk] {
				c.reportf("pull", pos, call.Pos(),
					"pull round on %s with stale mirrors (made stale at %s, no BroadcastSync since); broadcast before pulling — the pull reads pinned mirrors in place of remote requests",
					mk, c.pass.Fset().Position(pos))
			}
			// The round itself moves masters ahead of the mirrors.
			if _, pending := s.stale[mk]; !pending {
				s.stale[mk] = call.Pos()
			}
		}
	case strings.HasSuffix(pkg, "internal/runtime"):
		switch {
		case name == "Advance":
			if !ordered {
				return
			}
			for _, e := range sortedPend(s.reduces) {
				c.reportf("advance", e.pos, call.Pos(),
					"Frontier.Advance with an un-synced Reduce on %s (at %s); call ReduceSync before advancing the frontier",
					e.k, c.pass.Fset().Position(e.pos))
			}
		case isDispatchName(name):
			c.scanLitArgs(s, call, false)
		case strings.HasPrefix(name, "Time"):
			// Time* sections run their closure synchronously, once:
			// inline its effects, clears and checks included.
			c.scanLitArgs(s, call, ordered)
		}
	case strings.HasSuffix(pkg, "internal/comm"):
		switch name {
		case "SendBuffered":
			if k, ok := recvKey(call); ok {
				if _, pending := s.staged[k]; !pending {
					s.staged[k] = call.Pos()
				}
			}
		case "FlushSends", "flush", "Exchange", "ExchangeInto", "ExchangeFunc":
			// The exchange helpers flush internally; a flush on any
			// endpoint view clears staged sends path-insensitively (the
			// sender is often re-derived via a type assertion).
			if !ordered {
				return
			}
			for k := range s.staged {
				delete(s.staged, k)
			}
		case "Recv":
			if !ordered {
				return
			}
			for _, e := range sortedPend(s.staged) {
				c.reportf("recv", e.pos, call.Pos(),
					"Recv while sends staged on %s are unflushed (SendBuffered at %s); call FlushSends first or the round deadlocks",
					e.k, c.pass.Fset().Position(e.pos))
			}
		}
	case strings.HasSuffix(pkg, "internal/par") && isParDispatchName(name):
		c.scanLitArgs(s, call, false)
	}
}

// scanLitArgs applies the effects of every closure argument of call —
// written literally or named — to s. ordered is forwarded: true only for
// the synchronously-inlined Time* sections.
func (c *checker) scanLitArgs(s state, call *ast.CallExpr, ordered bool) {
	for _, a := range call.Args {
		var lit *ast.FuncLit
		switch arg := ast.Unparen(a).(type) {
		case *ast.FuncLit:
			lit = arg
		case *ast.Ident:
			lit = c.lits[arg.Name]
		}
		if lit == nil {
			continue
		}
		c.scanBody(s, lit.Body, ordered)
	}
}

// scanBody walks a closure body in source order applying call effects.
// Nested function literals are not entered — except through a recognized
// dispatch or Time* call, which applyCall handles itself.
func (c *checker) scanBody(s state, body *ast.BlockStmt, ordered bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			c.applyCall(s, call, ordered)
		}
		return true
	})
}

// checkActivate enforces the per-node activation contexts: a dispatched
// operator closure, a method of a type that owns a frontier (it has a
// SetFrontier method — the FrontierSink decode side), or the runtime
// package itself (excluded at the package level in run).
func (c *checker) checkActivate(decl *ast.FuncDecl) {
	if c.ownsFrontier(decl) {
		return
	}
	// A function taking *runtime.AsyncCtx is an async operator body: only
	// the drain scheduler constructs an AsyncCtx, so the whole body is
	// dispatched compute even when it is built by a factory and returned
	// rather than passed to AsyncDrain inline.
	if obj, ok := c.info.Defs[decl.Name].(*types.Func); ok &&
		hasAsyncCtxParam(obj.Type().(*types.Signature)) {
		return
	}
	// Collect the closure literals that reach a dispatch primitive.
	dispatched := map[*ast.FuncLit]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(c.info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		isDispatch := (strings.HasSuffix(pkg, "internal/runtime") && isDispatchName(name)) ||
			(strings.HasSuffix(pkg, "internal/par") && isParDispatchName(name))
		if !isDispatch {
			return true
		}
		for _, a := range call.Args {
			switch arg := ast.Unparen(a).(type) {
			case *ast.FuncLit:
				dispatched[arg] = true
			case *ast.Ident:
				if lit := c.lits[arg.Name]; lit != nil {
					dispatched[lit] = true
				}
			}
		}
		return true
	})
	var lits []*ast.FuncLit
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(c.info, call)
		if fn == nil || fn.Pkg() == nil || fn.Name() != "Activate" ||
			!strings.HasSuffix(fn.Pkg().Path(), "internal/runtime") {
			return true
		}
		// Legitimate if any enclosing closure was handed to a dispatch, or
		// is an async operator body (takes *runtime.AsyncCtx — only the
		// drain scheduler can invoke it, so it runs as dispatched compute
		// no matter how it reaches the drain).
		for _, lit := range lits {
			if call.Pos() < lit.Body.Pos() || call.Pos() >= lit.Body.End() {
				continue
			}
			if dispatched[lit] {
				return true
			}
			if sig, ok := c.info.Types[lit].Type.(*types.Signature); ok && hasAsyncCtxParam(sig) {
				return true
			}
		}
		c.pass.Reportf(call.Pos(),
			"Frontier.Activate outside an operator closure or frontier-owning decoder; per-node activation belongs in dispatched compute (use ActivateSet/ActivateAll for seeding)")
		return true
	})
}

// hasAsyncCtxParam reports whether sig takes a *runtime.AsyncCtx
// parameter, marking it as an async drain operator body.
func hasAsyncCtxParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p, ok := params.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := p.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "AsyncCtx" && obj.Pkg() != nil &&
			strings.HasSuffix(obj.Pkg().Path(), "internal/runtime") {
			return true
		}
	}
	return false
}

// ownsFrontier reports whether decl is a method on a type that has a
// SetFrontier method — the FrontierSink decode side, which activates
// nodes as remote deltas arrive.
func (c *checker) ownsFrontier(decl *ast.FuncDecl) bool {
	if decl.Recv == nil {
		return false
	}
	obj, ok := c.info.Defs[decl.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	found, _, _ := types.LookupFieldOrMethod(recv.Type(), true, c.pass.Pkg.Types, "SetFrontier")
	_, isFn := found.(*types.Func)
	return isFn
}

func isDispatchName(name string) bool {
	switch name {
	case "ParFor", "ParForNodes", "ParForMasters", "ParForActive",
		"AsyncDrain", "AsyncDrainBits":
		return true
	}
	return false
}

func isParDispatchName(name string) bool {
	switch name {
	case "Do", "Static", "Dynamic", "PrefixSum":
		return true
	}
	return false
}

// reportf reports once per (rule, obligation position): the same pending
// Reduce may reach several Advance replays, and the same staged send may
// reach several exits.
func (c *checker) reportf(rule string, obligation, pos token.Pos, format string, args ...any) {
	if !c.reporting {
		return
	}
	k := rule + ":" + c.pass.Fset().Position(obligation).String() + ":" + c.pass.Fset().Position(pos).String()
	if rule == "exit" {
		// One report per leaked send, not one per exit path.
		k = rule + ":" + c.pass.Fset().Position(obligation).String()
	}
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	c.pass.Reportf(pos, format, args...)
}

type pend struct {
	k   string
	pos token.Pos
}

func sortedPend(m map[string]token.Pos) []pend {
	out := make([]pend, 0, len(m))
	for k, v := range m {
		out = append(out, pend{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// namedLits maps closure-valued locals assigned at most once (the
// operator-body idiom: body := func(tid, src) {...}) to their literals.
func namedLits(body *ast.BlockStmt) map[string]*ast.FuncLit {
	lits := map[string]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, isLit := ast.Unparen(rhs).(*ast.FuncLit)
			if !isLit {
				continue
			}
			if id, isID := as.Lhs[i].(*ast.Ident); isID {
				lits[id.Name] = lit
			}
		}
		return true
	})
	return lits
}

// namedPulls maps pull-handle locals to the source path of their map:
// `ph, ok := npm.Pull(m)` yields {"ph": "m"}. Handles arriving through
// fields or parameters stay unresolved, and their BeginPullRound calls
// unchecked — the rule is best-effort by construction.
func namedPulls(body *ast.BlockStmt, info *types.Info) map[string]string {
	pulls := map[string]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Name() != "Pull" ||
			!strings.HasSuffix(fn.Pkg().Path(), "internal/npm") {
			return true
		}
		id, isID := as.Lhs[0].(*ast.Ident)
		if !isID {
			return true
		}
		if mk, ok := exprKey(call.Args[0]); ok {
			pulls[id.Name] = mk
		}
		return true
	})
	return pulls
}

// pinnedMaps collects the receivers of npm PinMirrors calls anywhere in
// the function: the maps whose mirror freshness is worth enforcing.
func pinnedMaps(body *ast.BlockStmt, info *types.Info) map[string]bool {
	pinned := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Name() != "PinMirrors" ||
			!strings.HasSuffix(fn.Pkg().Path(), "internal/npm") {
			return true
		}
		if k, ok := recvKey(call); ok {
			pinned[k] = true
		}
		return true
	})
	return pinned
}

// recvKey renders the receiver of a method call as a source path.
func recvKey(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return exprKey(sel.X)
}

// exprKey renders an expression as a normalized source path.
func exprKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		x, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return x + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		x, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		i, ok := exprKey(e.Index)
		if !ok {
			return "", false
		}
		return x + "[" + i + "]", true
	case *ast.StarExpr:
		x, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return "*" + x, true
	}
	return "", false
}

// calleeFunc resolves a call to its static *types.Func, if possible.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
