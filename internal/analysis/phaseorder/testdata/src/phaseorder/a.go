// Package phaseorder exercises the §9 phase-discipline analyzer against
// the real npm/runtime/comm APIs: un-synced Reduce at Advance, staged
// sends at Recv or function exit, and per-node Activate from driver
// code.
package phaseorder

import (
	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// advanceWithoutSync is the basic misordering: the thread-local deltas
// are still buffered when the frontier flips.
func advanceWithoutSync(m npm.Map[uint32], fr *runtime.Frontier, n graph.NodeID) {
	m.Reduce(0, n, 1)
	fr.Advance() // want `Frontier\.Advance with an un-synced Reduce on m`
}

// advanceAfterDispatchedReduce hides the Reduce inside a dispatched
// operator body named by a local, the usual algorithm shape.
func advanceAfterDispatchedReduce(h *runtime.Host, m npm.Map[uint32], fr *runtime.Frontier) {
	body := func(tid int, src graph.NodeID) {
		m.Reduce(tid, src, 1)
	}
	h.TimeCompute(func() {
		h.ParForActive(fr, body)
	})
	fr.Advance() // want `Frontier\.Advance with an un-synced Reduce on m`
}

// fullRound is the sanctioned superstep: compute, sync, broadcast,
// advance.
func fullRound(h *runtime.Host, m npm.Map[uint32], fr *runtime.Frontier) {
	h.TimeCompute(func() {
		h.ParForActive(fr, func(tid int, src graph.NodeID) {
			m.Reduce(tid, src, 1)
		})
	})
	m.ReduceSync()
	m.BroadcastSync()
	fr.Advance()
}

// seedRound: bulk activation before round zero has nothing to sync.
func seedRound(fr *runtime.Frontier) {
	fr.ActivateAll()
	fr.Advance()
}

// recvWithStagedSends: the staged bytes are not on the wire, so waiting
// for the peer's reply deadlocks the exchange.
func recvWithStagedSends(bs comm.BufferedSender, ep comm.Endpoint) []byte {
	bs.SendBuffered(1, comm.TagApp, []byte{1})
	in := ep.Recv(1, comm.TagApp) // want `Recv while sends staged on bs are unflushed`
	bs.FlushSends()
	return in
}

// flushedRecv is the correct order.
func flushedRecv(bs comm.BufferedSender, ep comm.Endpoint) []byte {
	bs.SendBuffered(1, comm.TagApp, []byte{1})
	bs.FlushSends()
	return ep.Recv(1, comm.TagApp)
}

// leakOnOnePath flushes on only one branch; the may-analysis catches the
// fall-through path at the function exit.
func leakOnOnePath(bs comm.BufferedSender, eager bool) {
	bs.SendBuffered(1, comm.TagApp, []byte{1})
	if eager {
		bs.FlushSends()
	}
} // want `staged sends on bs are never flushed on this path`

// exchangeFlushes: the exchange helpers flush internally.
func exchangeFlushes(bs comm.BufferedSender, ep comm.Endpoint, out [][]byte) {
	bs.SendBuffered(0, comm.TagApp, []byte{1})
	comm.ExchangeInto(ep, comm.TagApp, out, out)
}

// activateFromDriver: sequential per-node activation is a missed
// ParForActive.
func activateFromDriver(fr *runtime.Frontier, n graph.NodeID) {
	fr.Activate(int(n)) // want `Frontier\.Activate outside an operator closure`
}

// activateFromOperator is the sanctioned context, named or literal.
func activateFromOperator(h *runtime.Host, fr *runtime.Frontier) {
	body := func(tid int, src graph.NodeID) {
		fr.Activate(int(src))
	}
	h.ParForActive(fr, body)
	h.ParForNodes(func(tid int, src graph.NodeID) {
		fr.Activate(int(src))
	})
}

// Async drain bodies are dispatched compute: inline literals handed to
// AsyncDrain/AsyncDrainBits, and — because only the drain scheduler can
// construct an *AsyncCtx — any closure or function taking one, however
// it reaches the drain (the operator-body-factory idiom).
func activateFromDrainBody(h *runtime.Host, fr *runtime.Frontier, b *runtime.Bitset) {
	h.AsyncDrain(fr, runtime.AsyncOpts{}, func(tid int, src graph.NodeID, cx *runtime.AsyncCtx) {
		fr.Activate(int(src))
	})
	h.AsyncDrainBits(b, runtime.AsyncOpts{}, func(tid int, src graph.NodeID, cx *runtime.AsyncCtx) {
		fr.Activate(int(src))
	})
}

func drainBodyFactory(fr *runtime.Frontier) func(tid int, src graph.NodeID, cx *runtime.AsyncCtx) {
	return func(tid int, src graph.NodeID, cx *runtime.AsyncCtx) {
		fr.Activate(int(src))
	}
}

func namedDrainBody(fr *runtime.Frontier, tid int, src graph.NodeID, cx *runtime.AsyncCtx) {
	fr.Activate(int(src))
}

// A driver-side loop is still flagged even when a drain runs nearby: the
// activation is outside the operator body.
func activateBesideDrain(h *runtime.Host, fr *runtime.Frontier, ids []int) {
	h.AsyncDrain(fr, runtime.AsyncOpts{}, func(tid int, src graph.NodeID, cx *runtime.AsyncCtx) {})
	for _, i := range ids {
		fr.Activate(i) // want `Frontier\.Activate outside an operator closure`
	}
}

// pullAfterReduceSync is the stale-mirror misordering: the reduce moved
// the masters, the mirrors still hold the pre-round values, and the pull
// reads them in place of remote requests.
func pullAfterReduceSync(m npm.Map[uint32], n graph.NodeID) {
	m.PinMirrors()
	m.Reduce(0, n, 1)
	m.ReduceSync()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	ph.BeginPullRound() // want `pull round on m with stale mirrors`
	ph.EndPullRound()
}

// pullAfterBroadcast is the sanctioned order: the broadcast refreshed the
// mirrors after the reduce, so the round may pull.
func pullAfterBroadcast(m npm.Map[uint32], n graph.NodeID) {
	m.PinMirrors()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	m.Reduce(0, n, 1)
	m.ReduceSync()
	m.BroadcastSync()
	ph.BeginPullRound()
	ph.EndPullRound()
	m.BroadcastSync()
}

// doublePullRound: the first pull round itself moves masters ahead of the
// mirrors, so a second round needs a broadcast in between.
func doublePullRound(m npm.Map[uint32]) {
	m.PinMirrors()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	ph.BeginPullRound()
	ph.EndPullRound()
	ph.BeginPullRound() // want `pull round on m with stale mirrors`
	ph.EndPullRound()
	m.BroadcastSync()
}

// pullAfterInitSync: initialization publishes masters without refreshing
// pinned mirrors, so it stales them like a reduce does.
func pullAfterInitSync(m npm.Map[uint32], n graph.NodeID) {
	m.PinMirrors()
	m.Set(n, 1)
	m.InitSync()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	ph.BeginPullRound() // want `pull round on m with stale mirrors`
	ph.EndPullRound()
}

// pullUnpinnedScratch: a masters-only scratch map (the MIS minNbr idiom)
// is never pinned, so there are no mirrors to be stale and the rule stays
// quiet — matching the runtime, which only panics on pinned maps.
func pullUnpinnedScratch(m npm.Map[uint32], n graph.NodeID) {
	m.Set(n, 1)
	m.InitSync()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	ph.BeginPullRound()
	ph.EndPullRound()
}

// adaptiveDirectionLoop is the real mixed-direction round shape: whichever
// branch runs, the round ends with a broadcast, so every BeginPullRound —
// including across the loop back-edge — sees fresh mirrors.
func adaptiveDirectionLoop(h *runtime.Host, m npm.Map[uint32], fr *runtime.Frontier, pull bool) {
	m.PinMirrors()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	for i := 0; i < 4; i++ {
		if pull {
			ph.BeginPullRound()
			ph.EndPullRound()
		} else {
			h.ParForActive(fr, func(tid int, src graph.NodeID) {
				m.Reduce(tid, src, 1)
			})
			m.ReduceSync()
		}
		m.BroadcastSync()
		fr.Advance()
	}
}

// pullSkippedBroadcastInLoop leaves the broadcast on only one branch: the
// may-analysis carries the pull branch's staleness around the back-edge
// to the next iteration's BeginPullRound.
func pullSkippedBroadcastInLoop(h *runtime.Host, m npm.Map[uint32], fr *runtime.Frontier, pull bool) {
	m.PinMirrors()
	ph, ok := npm.Pull(m)
	if !ok {
		return
	}
	for i := 0; i < 4; i++ {
		if pull {
			ph.BeginPullRound() // want `pull round on m with stale mirrors`
			ph.EndPullRound()
		} else {
			h.ParForActive(fr, func(tid int, src graph.NodeID) {
				m.Reduce(tid, src, 1)
			})
			m.ReduceSync()
			m.BroadcastSync()
		}
		fr.Advance()
	}
}

// decoder owns a frontier (it has SetFrontier): the decode side may
// activate nodes as remote deltas arrive.
type decoder struct{ fr *runtime.Frontier }

func (d *decoder) SetFrontier(f *runtime.Frontier) { d.fr = f }

func (d *decoder) decode(ids []int) {
	for _, i := range ids {
		d.fr.Activate(i)
	}
}
