package phaseorder_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/phaseorder"
)

func TestPhaseOrder(t *testing.T) {
	analysistest.Run(t, phaseorder.Analyzer, "phaseorder")
}
