// Package wiretag exercises the §10 tag-discipline analyzer: switch
// exhaustiveness over annotated groups (the PR 3 missing-v2s near-miss),
// the default-does-not-count rule, cross-package groups, and the
// emitted-but-unhandled Finish check.
package wiretag

import "kimbap/internal/comm"

// The npm section-tag shape: three formats, one forgotten decoder arm.
//
//kimbap:wiregroup wire
const (
	wireV1  byte = 1
	wireV2  byte = 2
	wireV2S byte = 3
)

// decodeSection reproduces the near-miss: the v2s arm is missing and the
// default hides it behind a panic.
func decodeSection(tag byte) int {
	switch tag { // want `switch over wire group wire does not handle wireV2S`
	case wireV1:
		return 1
	case wireV2:
		return 2
	default:
		panic("bad tag")
	}
}

// decodeAll handles the whole group.
func decodeAll(tag byte) int {
	switch tag {
	case wireV1:
		return 1
	case wireV2:
		return 2
	case wireV2S:
		return 3
	}
	return 0
}

// encodeSection emits tags; all three appear in decodeAll's arms, so the
// Finish check stays quiet.
func encodeSection(buf []byte, sparse bool) []byte {
	if sparse {
		return append(buf, wireV2S)
	}
	return append(buf, wireV2)
}

// A sentinel named num* is a count, not a tag.
//
//kimbap:wiregroup frame
const (
	frameData byte = iota
	frameAck
	numFrames
)

// frameCounts may use the sentinel freely; the switch need not (and
// cannot meaningfully) handle it.
func frameCounts(f byte) int {
	counts := make([]int, numFrames)
	switch f {
	case frameData:
		counts[frameData]++
	case frameAck:
		counts[frameAck]++
	}
	return len(counts)
}

// The emit-side near-miss: opDel goes on the wire but no switch arm
// anywhere decodes it.
//
//kimbap:wiregroup op
const (
	opGet byte = 10
	opPut byte = 11
	opDel byte = 12
)

func emitOps(buf []byte) []byte {
	buf = append(buf, opGet)
	buf = append(buf, opDel) // want `wire tag opDel is emitted but no switch over group op handles it`
	return buf
}

func dispatchOps(b byte) int {
	switch b { // want `switch over wire group op does not handle opDel`
	case opGet:
		return 1
	case opPut:
		return 2
	}
	return 0
}

// isGet compares rather than emits: no Finish finding for opPut.
func isPut(b byte) bool { return b == opPut }

// pickFormat switches over an upstream group: membership travels as
// facts from the comm package.
func pickFormat(f comm.WireFormat) int {
	switch f { // want `switch over wire group WireFormat does not handle WireAuto`
	case comm.WireV1:
		return 1
	case comm.WireV2:
		return 2
	}
	return 0
}
