// Package wiretag machine-checks the wire-format tag discipline
// (DESIGN.md §10): a const block annotated
//
//	//kimbap:wiregroup <name>
//
// declares a closed set of wire tags (the npm section tags v1/v2/v2s,
// the comm message tags, the encoding selector). Every switch whose case
// labels name a member of a group must then handle the whole group — a
// default arm does not count, because "panic on the tag we forgot to
// decode" is exactly the near-miss this analyzer exists for (PR 3
// shipped a decoder briefly missing the v2s arm). Blank members and
// names beginning with "num" (the count sentinel idiom, e.g. numTags)
// are not members.
//
// Group membership travels as object facts, so a switch in a downstream
// package over an upstream group (npm switching over comm.WireFormat) is
// checked with the full member list. A Finish pass then reports tags
// that are emitted — used as values outside case labels and equality
// comparisons — but handled by no switch anywhere in the program; groups
// that no package switches over are exempt, since a pure emit-side
// selector has no decode switch to be exhaustive.
package wiretag

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"kimbap/internal/analysis/framework"
)

// Analyzer is the wiretag check.
var Analyzer = &framework.Analyzer{
	Name:   "wiretag",
	Doc:    "require switches over //kimbap:wiregroup tag sets to be exhaustive and emitted tags to be handled (§10)",
	Run:    run,
	Finish: finish,
}

const directive = "//kimbap:wiregroup"

// memberFact marks a const as belonging to a wire group. Group is
// qualified as "<pkg path>:<name>".
type memberFact struct{ Group string }

func (*memberFact) AFact() {}

// emittedFact records the first position where a member is used as a
// value (outside case labels, comparisons, and its declaring block).
type emittedFact struct {
	Pos   token.Pos
	Group string
}

func (*emittedFact) AFact() {}

// handledFact marks a member that appears in some switch's case labels.
type handledFact struct{}

func (*handledFact) AFact() {}

// switchedFact marks every member of a group that at least one switch
// ranges over.
type switchedFact struct{}

func (*switchedFact) AFact() {}

func run(pass *framework.Pass) error {
	declBlocks := collectGroups(pass)

	// Full member lists, own package included: dependencies were analyzed
	// first, so their facts are already in the store.
	members := map[string][]types.Object{}
	for _, of := range pass.AllObjectFacts(&memberFact{}) {
		g := of.Fact.(*memberFact).Group
		members[g] = append(members[g], of.Obj)
	}

	for _, f := range pass.Pkg.Files {
		checkSwitches(pass, f, members)
		recordEmissions(pass, f, declBlocks)
	}
	return nil
}

// collectGroups finds this package's annotated const blocks, exports a
// memberFact per member, and returns the annotated GenDecls (their
// idents are not emissions).
func collectGroups(pass *framework.Pass) map[*ast.GenDecl]bool {
	blocks := map[*ast.GenDecl]bool{}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			name, found := directiveName(gd.Doc)
			if !found {
				continue
			}
			if name == "" {
				pass.Reportf(gd.Pos(), "%s needs a group name", directive)
				continue
			}
			blocks[gd] = true
			group := pass.Pkg.Path + ":" + name
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == "_" || strings.HasPrefix(id.Name, "num") {
						continue // the count sentinel is not a tag
					}
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						pass.ExportObjectFact(obj, &memberFact{Group: group})
					}
				}
			}
		}
	}
	return blocks
}

// directiveName scans a comment group for the wiregroup directive and
// returns the group name following it.
func directiveName(g *ast.CommentGroup) (string, bool) {
	if g == nil {
		return "", false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, directive) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, directive))
		if len(fields) == 0 {
			return "", true
		}
		return fields[0], true
	}
	return "", false
}

// checkSwitches associates each value switch with a group through its
// case labels, checks exhaustiveness, and records handled members.
func checkSwitches(pass *framework.Pass, f *ast.File, members map[string][]types.Object) {
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		var caseObjs []types.Object
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				if obj := resolveObj(pass.Pkg.Info, e); obj != nil {
					caseObjs = append(caseObjs, obj)
				}
			}
		}
		group := ""
		for _, obj := range caseObjs {
			var mf memberFact
			if pass.ImportObjectFact(obj, &mf) {
				group = mf.Group
				break
			}
		}
		if group == "" {
			return true
		}
		covered := map[types.Object]bool{}
		for _, obj := range caseObjs {
			var mf memberFact
			if pass.ImportObjectFact(obj, &mf) && mf.Group == group {
				covered[obj] = true
				pass.ExportObjectFact(obj, &handledFact{})
			}
		}
		var missing []string
		for _, m := range members[group] {
			pass.ExportObjectFact(m, &switchedFact{})
			if !covered[m] {
				missing = append(missing, m.Name())
			}
		}
		if len(missing) > 0 {
			pass.Reportf(sw.Pos(),
				"switch over wire group %s does not handle %s; every tag needs an arm (a default does not count)",
				shortGroup(group), strings.Join(missing, ", "))
		}
		return true
	})
}

// recordEmissions exports an emittedFact for each member used as a value
// outside case labels, ==/!= comparisons, and annotated const blocks.
func recordEmissions(pass *framework.Pass, f *ast.File, declBlocks map[*ast.GenDecl]bool) {
	skip := map[*ast.Ident]bool{}
	markIdents := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				skip[id] = true
			}
			return true
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if declBlocks[n] {
				markIdents(n)
				return false
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				markIdents(e)
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				markIdents(n)
				return false
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		var mf memberFact
		if !pass.ImportObjectFact(obj, &mf) {
			return true
		}
		var ef emittedFact
		if !pass.ImportObjectFact(obj, &ef) {
			pass.ExportObjectFact(obj, &emittedFact{Pos: id.Pos(), Group: mf.Group})
		}
		return true
	})
}

// finish reports tags emitted somewhere in the program but handled by no
// switch, for groups that have at least one switch.
func finish(pass *framework.Pass) error {
	for _, of := range pass.AllObjectFacts(&emittedFact{}) {
		ef := of.Fact.(*emittedFact)
		var sw switchedFact
		if !pass.ImportObjectFact(of.Obj, &sw) {
			continue // emit-only group: no decode switch to appear in
		}
		var h handledFact
		if pass.ImportObjectFact(of.Obj, &h) {
			continue
		}
		pass.Reportf(ef.Pos,
			"wire tag %s is emitted but no switch over group %s handles it; bytes of this form would reach an unprepared decoder",
			of.Obj.Name(), shortGroup(ef.Group))
	}
	return nil
}

func shortGroup(g string) string {
	if i := strings.LastIndex(g, ":"); i >= 0 {
		return g[i+1:]
	}
	return g
}

// resolveObj resolves a case-label expression to the object it names.
func resolveObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
