package wiretag_test

import (
	"testing"

	"kimbap/internal/analysis/analysistest"
	"kimbap/internal/analysis/wiretag"
)

func TestWireTag(t *testing.T) {
	analysistest.Run(t, wiretag.Analyzer, "wiretag")
}
