package npm

import "kimbap/internal/graph"

// bucketedMap is the thread-private reduce map of the CF compute phase
// (Figure 7), internally partitioned into one localMap per combine thread's
// key range. Bucketing at Reduce time makes ReduceSync's combine pass
// work-linear: combine thread t drains exactly bucket t of every thread's
// map, instead of scanning all T maps and filtering by key range (which
// costs O(T x entries) total). Buckets cover disjoint key ranges, so the
// combine pass stays conflict free by construction.
type bucketedMap[V any] struct {
	buckets []*localMap[V]
	n       uint64 // global key-space size
}

func newBucketedMap[V any](buckets, numGlobal int) *bucketedMap[V] {
	m := &bucketedMap[V]{buckets: make([]*localMap[V], buckets), n: uint64(numGlobal)}
	for i := range m.buckets {
		m.buckets[i] = newLocalMap[V]()
	}
	return m
}

// rangeBucket returns which of `buckets` contiguous ranges over [0, n)
// holds key k. It is the exact inverse of the range split
// lo(t) = t*n/buckets used by the combine and gather passes: the unique t
// with lo(t) <= k < lo(t+1) is ((k+1)*buckets - 1) / n.
func rangeBucket(k graph.NodeID, buckets, n uint64) int {
	return int(((uint64(k)+1)*buckets - 1) / n)
}

// sectionLo returns where range bucket t starts over [0, n):
// lo(t) = t*n/buckets, the split rangeBucket inverts. The v2 wire format
// encodes each section's keys as varint deltas from this base.
func sectionLo(t int, buckets, n uint64) uint64 {
	return uint64(t) * n / buckets
}

// Reduce merges v into k's entry in k's range bucket.
//
//kimbap:conflictfree
func (m *bucketedMap[V]) Reduce(k graph.NodeID, v V, op func(a, b V) V) {
	m.buckets[rangeBucket(k, uint64(len(m.buckets)), m.n)].Reduce(k, v, op)
}

// Len returns the total number of entries across buckets.
func (m *bucketedMap[V]) Len() int {
	total := 0
	for _, b := range m.buckets {
		total += b.Len()
	}
	return total
}

// Reset removes all entries, keeping each bucket's capacity.
func (m *bucketedMap[V]) Reset() {
	for _, b := range m.buckets {
		b.Reset()
	}
}

func (m *bucketedMap[V]) footprint(valSize int) int64 {
	var total int64
	for _, b := range m.buckets {
		total += b.footprint(valSize)
	}
	return total
}
