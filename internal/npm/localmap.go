package npm

import "kimbap/internal/graph"

// localMap is the open-addressing hash map used for thread-local
// conflict-free reductions (Figure 7) and for the hash-distributed
// variants' storage. It maps graph.NodeID keys to V values with linear
// probing; graph.InvalidNode marks empty slots. It is NOT safe for
// concurrent use — that is the point: each thread owns one.
//
// Occupied slots are tracked in insertion order so iteration and reset
// cost O(entries), not O(capacity) — BSP rounds late in a computation
// often carry a handful of updates in a map that grew large early on.
type localMap[V any] struct {
	keys []graph.NodeID
	vals []V
	used []uint32 // occupied slots, insertion order
	mask uint32
}

const localMapMinCap = 16

// newLocalMap creates an empty map with a small initial capacity.
func newLocalMap[V any]() *localMap[V] {
	m := &localMap[V]{}
	m.init(localMapMinCap)
	return m
}

func (m *localMap[V]) init(capacity int) {
	m.keys = make([]graph.NodeID, capacity)
	m.vals = make([]V, capacity)
	for i := range m.keys {
		m.keys[i] = graph.InvalidNode
	}
	m.used = m.used[:0]
	m.mask = uint32(capacity - 1)
}

// hash is a 32-bit Fibonacci hash; node IDs are often sequential, so
// multiplicative spreading matters for probe lengths.
func (m *localMap[V]) slot(key graph.NodeID) uint32 {
	return (uint32(key) * 2654435769) & m.mask
}

// Len returns the number of entries.
func (m *localMap[V]) Len() int { return len(m.used) }

// Get returns the value stored for key.
func (m *localMap[V]) Get(key graph.NodeID) (V, bool) {
	i := m.slot(key)
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		if k == graph.InvalidNode {
			var zero V
			return zero, false
		}
		i = (i + 1) & m.mask
	}
}

// Reduce merges v into the entry for key with op, inserting v if absent.
func (m *localMap[V]) Reduce(key graph.NodeID, v V, op func(a, b V) V) {
	i := m.slot(key)
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = op(m.vals[i], v)
			return
		}
		if k == graph.InvalidNode {
			m.keys[i] = key
			m.vals[i] = v
			m.used = append(m.used, i)
			if len(m.used)*10 >= len(m.keys)*7 {
				m.grow()
			}
			return
		}
		i = (i + 1) & m.mask
	}
}

// Set stores v for key, overwriting any existing value.
func (m *localMap[V]) Set(key graph.NodeID, v V) {
	m.Reduce(key, v, func(_, b V) V { return b })
}

func (m *localMap[V]) grow() {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	// init truncates m.used in place, keeping its capacity, so the rehash
	// appends never reallocate the insertion-order slice. oldUsed aliases
	// the same backing array, but insertFresh appends exactly one slot per
	// old entry: the write to index j lands only after iteration j has
	// already read oldUsed[j].
	m.init(len(oldKeys) * 2)
	for _, s := range oldUsed {
		m.insertFresh(oldKeys[s], oldVals[s])
	}
}

func (m *localMap[V]) insertFresh(key graph.NodeID, v V) {
	i := m.slot(key)
	for m.keys[i] != graph.InvalidNode {
		i = (i + 1) & m.mask
	}
	m.keys[i] = key
	m.vals[i] = v
	m.used = append(m.used, i)
}

// ForEach calls fn for every entry in insertion order.
func (m *localMap[V]) ForEach(fn func(key graph.NodeID, v V)) {
	for _, s := range m.used {
		fn(m.keys[s], m.vals[s])
	}
}

// Reset removes all entries but keeps the allocated capacity, the common
// case between BSP rounds. Cost is proportional to the entry count.
func (m *localMap[V]) Reset() {
	var zero V
	for _, s := range m.used {
		m.keys[s] = graph.InvalidNode
		m.vals[s] = zero
	}
	m.used = m.used[:0]
}
