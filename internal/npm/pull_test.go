package npm

import (
	"fmt"
	"strings"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// One min-over-in-neighbors round executed both ways: push scatters every
// local out-edge through Reduce/ReduceSync, pull scans each master's
// in-edges through the handle. The resulting property vectors must be
// bit-identical everywhere — including on a chain, where a pull body that
// read live masters instead of the round-start snapshot would collapse
// the whole chain in one round (Gauss-Seidel) while push advances one
// hop (Jacobi).
func TestPullRoundMatchesPush(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":  gen.Grid(8, 7, false, 1),
		"chain": gen.Chain(40, false, 1),
	}
	for name, g := range graphs {
		for _, hosts := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/hosts=%d", name, hosts), func(t *testing.T) {
				c, err := runtime.NewCluster(g, runtime.Config{
					NumHosts: hosts, ThreadsPerHost: 4, Policy: partition.IEC,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				c.Run(func(h *runtime.Host) {
					if !h.HP.PullEdgesComplete() {
						t.Errorf("host %d: IEC partition not pull-complete", h.Rank)
						return
					}
					h.HP.EnsureLocalInCSR(h.Threads)

					push := newMapForHost(h, Full, nil)
					pull := newMapForHost(h, Full, nil)
					initIdentity(h, push)
					initIdentity(h, pull)
					push.PinMirrors()
					pull.PinMirrors()

					// Push round: every local proxy scatters its value along
					// its local out-edges.
					lg := h.HP.Local
					h.ParForNodes(func(tid int, u graph.NodeID) {
						v := push.Read(h.HP.GlobalID(u))
						lo, hi := lg.EdgeRange(u)
						for e := lo; e < hi; e++ {
							push.Reduce(tid, h.HP.GlobalID(lg.Dst(e)), v)
						}
					})
					push.ReduceSync()
					push.BroadcastSync()

					// Pull round: every master folds its in-neighbors' values
					// into its own slot; no reduce collective at all.
					ph, ok := Pull(pull)
					if !ok {
						t.Errorf("host %d: Pull refused the full map", h.Rank)
						return
					}
					ph.BeginPullRound()
					h.ParForPull(func(_ int, master graph.NodeID) {
						lo, hi := lg.InEdgeRange(master)
						for e := lo; e < hi; e++ {
							ph.Apply(master, ph.Value(lg.InSrc(e)))
						}
					})
					ph.EndPullRound()
					pull.BroadcastSync()

					for l := 0; l < h.HP.NumLocal(); l++ {
						gid := h.HP.GlobalID(graph.NodeID(l))
						if p, q := push.Read(gid), pull.Read(gid); p != q {
							t.Errorf("host %d: node %d push=%d pull=%d", h.Rank, gid, p, q)
						}
					}
				})
			})
		}
	}
}

// A pull round whose pinned mirrors have been invalidated by a ReduceSync
// (no broadcast in between) must panic rather than read stale values.
func TestPullStaleMirrorsPanics(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "stale mirrors") {
			t.Fatalf("expected stale-mirrors panic, got %v", r)
		}
	}()
	runVariant(t, g, 1, Full, func(h *runtime.Host, m Map[graph.NodeID]) {
		initIdentity(h, m)
		m.PinMirrors()
		m.Reduce(0, 3, 0)
		m.ReduceSync()
		ph, _ := Pull(m)
		ph.BeginPullRound()
	})
}

// The freshness bit follows the collective sequence: set by broadcasts,
// cleared by ReduceSync, InitSync, and by the pull round itself.
func TestPullFreshnessTransitions(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	runVariant(t, g, 1, Full, func(h *runtime.Host, m Map[graph.NodeID]) {
		initIdentity(h, m)
		m.PinMirrors()
		ph, _ := Pull(m)
		if !ph.MirrorsFresh() {
			t.Error("PinMirrors broadcast did not mark mirrors fresh")
		}
		ph.BeginPullRound()
		ph.EndPullRound()
		if ph.MirrorsFresh() {
			t.Error("pull round left mirrors marked fresh")
		}
		m.BroadcastSync()
		if !ph.MirrorsFresh() {
			t.Error("BroadcastSync did not restore freshness")
		}
		m.InitSync()
		if ph.MirrorsFresh() {
			t.Error("InitSync left mirrors marked fresh")
		}
	})
}

// Pull is a fullMap capability; the baseline variants refuse and callers
// fall back to push.
func TestPullRefusesBaselineVariants(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	for _, v := range Variants {
		if v == Full {
			continue
		}
		runVariant(t, g, 1, v, func(h *runtime.Host, m Map[graph.NodeID]) {
			if _, ok := Pull(m); ok {
				t.Errorf("variant %s: Pull unexpectedly supported", v)
			}
		})
	}
}

// The in-edge CSR and the pull snapshot are real memory the pull path
// added; the footprint report must include both.
func TestPullMemoryAccounted(t *testing.T) {
	g := gen.Grid(8, 8, false, 1)
	runVariant(t, g, 2, Full, func(h *runtime.Host, m Map[graph.NodeID]) {
		initIdentity(h, m)
		m.PinMirrors()
		base := FootprintOf(m)

		h.HP.EnsureLocalInCSR(h.Threads)
		incsr := h.HP.InCSRFootprint()
		if incsr <= 0 {
			t.Errorf("host %d: InCSRFootprint = %d after EnsureLocalInCSR", h.Rank, incsr)
		}
		ph, _ := Pull(m)
		ph.BeginPullRound()
		ph.EndPullRound()

		snap := int64(h.HP.NumMasters) * 4 // NodeID codec width
		want := base + incsr + snap
		if got := FootprintOf(m); got != want {
			t.Errorf("host %d: footprint after pull setup = %d, want %d (base %d + incsr %d + snap %d)",
				h.Rank, got, want, base, incsr, snap)
		}
	})
}
