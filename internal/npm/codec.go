package npm

import (
	"kimbap/internal/comm"
	"kimbap/internal/graph"
)

// Codec serializes fixed-size property values for synchronization
// messages. Fixed sizes keep payload layout positional so broadcast
// messages need no per-entry keys (the paper's metadata minimization).
type Codec[V any] interface {
	// Append serializes v onto b and returns the extended slice.
	Append(b []byte, v V) []byte
	// Read deserializes one value and returns the remaining bytes.
	Read(b []byte) (V, []byte)
	// Size returns the fixed encoded size in bytes.
	Size() int
}

// NodeIDCodec encodes graph.NodeID values (the most common property type:
// parents, labels, cluster representatives).
type NodeIDCodec struct{}

// Append implements Codec.
func (NodeIDCodec) Append(b []byte, v graph.NodeID) []byte {
	return comm.AppendUint32(b, uint32(v))
}

// Read implements Codec.
func (NodeIDCodec) Read(b []byte) (graph.NodeID, []byte) {
	u, rest := comm.ReadUint32(b)
	return graph.NodeID(u), rest
}

// Size implements Codec.
func (NodeIDCodec) Size() int { return 4 }

// Uint64Codec encodes uint64 values.
type Uint64Codec struct{}

// Append implements Codec.
func (Uint64Codec) Append(b []byte, v uint64) []byte { return comm.AppendUint64(b, v) }

// Read implements Codec.
func (Uint64Codec) Read(b []byte) (uint64, []byte) { return comm.ReadUint64(b) }

// Size implements Codec.
func (Uint64Codec) Size() int { return 8 }

// Float64Codec encodes float64 values.
type Float64Codec struct{}

// Append implements Codec.
func (Float64Codec) Append(b []byte, v float64) []byte { return comm.AppendFloat64(b, v) }

// Read implements Codec.
func (Float64Codec) Read(b []byte) (float64, []byte) { return comm.ReadFloat64(b) }

// Size implements Codec.
func (Float64Codec) Size() int { return 8 }
