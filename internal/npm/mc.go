package npm

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// MCStore is the external key-value cluster backing the MC variant. It is
// satisfied by *kvstore.Cluster.
type MCStore interface {
	Get(host int, key string) kvstore.Value
	MGet(host int, keys []string) []kvstore.Value
	Set(host int, key string, value []byte)
	Reduce(host int, key string, value []byte,
		op func(current, incoming []byte) []byte) bool
}

// mcMap is the Memcached-backed ablation variant (§6.4): no SGR, no CF, no
// GAR. Values live in the external store under string keys; reductions are
// immediate get/combine/CAS retry loops against the store (ReduceSync is a
// no-op barrier, as in the paper); reads are served from an mget-filled
// cache with a direct Get fallback.
type mcMap[V comparable] struct {
	h      *runtime.Host
	hp     *partition.HostPartition
	op     ReduceOp[V]
	codec  Codec[V]
	store  MCStore
	prefix string

	reqBits *runtime.Bitset
	cache   *localMap[V]

	pinned    bool
	pinnedIDs []graph.NodeID

	updated       atomic.Bool
	updatedGlobal bool

	trackReads bool
	readMaster atomic.Int64
	readRemote atomic.Int64
}

func newMCMap[V comparable](opts Options[V]) *mcMap[V] {
	if opts.Store == nil {
		panic("npm: MC variant requires Options.Store")
	}
	h := opts.Host
	return &mcMap[V]{
		h:          h,
		hp:         h.HP,
		op:         opts.Op,
		codec:      opts.Codec,
		store:      opts.Store,
		prefix:     "m" + strconv.FormatInt(h.NextMapID(), 10) + ":",
		reqBits:    runtime.NewBitset(h.HP.NumGlobalNodes()),
		cache:      newLocalMap[V](),
		trackReads: opts.TrackReads,
	}
}

// keyFor builds the store key. String keys (vs Kimbap's integer node IDs)
// are one of the Memcached overheads the paper calls out.
func (m *mcMap[V]) keyFor(n graph.NodeID) string {
	return m.prefix + strconv.FormatUint(uint64(n), 10)
}

func (m *mcMap[V]) decode(data []byte) V {
	v, _ := m.codec.Read(data)
	return v
}

// Read implements Map: cache hit, else a synchronous store Get.
func (m *mcMap[V]) Read(n graph.NodeID) V {
	if m.trackReads {
		lo, hi := m.hp.MasterRangeGlobal()
		if n >= lo && n < hi {
			m.readMaster.Add(1)
		} else {
			m.readRemote.Add(1)
		}
	}
	if v, ok := m.cache.Get(n); ok {
		return v
	}
	got := m.store.Get(m.h.Rank, m.keyFor(n))
	if !got.OK {
		panic(fmt.Sprintf("npm: host %d read of uninitialized node %d", m.h.Rank, n))
	}
	return m.decode(got.Data)
}

// Reduce implements Map: an immediate distributed CAS loop, the paper's
// Memcached reduction. tid is unused — there is nothing thread-local.
func (m *mcMap[V]) Reduce(_ int, n graph.NodeID, v V) {
	enc := m.codec.Append(nil, v)
	changed := m.store.Reduce(m.h.Rank, m.keyFor(n), enc,
		func(current, incoming []byte) []byte {
			a := m.decode(current)
			b := m.decode(incoming)
			return m.codec.Append(nil, m.op.Combine(a, b))
		})
	if changed {
		m.updated.Store(true)
	}
}

// Set implements Map: write-through. Concurrent Sets of the same node pick
// an arbitrary winner, which the API contract allows.
func (m *mcMap[V]) Set(n graph.NodeID, v V) {
	m.store.Set(m.h.Rank, m.keyFor(n), m.codec.Append(nil, v))
}

// InitSync implements Map: Sets are write-through, so only a barrier is
// needed to make them globally visible before the first round.
func (m *mcMap[V]) InitSync() {
	m.h.TimeComm(func() { comm.Barrier(m.h.EP) })
}

// Request implements Map.
func (m *mcMap[V]) Request(n graph.NodeID) {
	if m.pinned {
		if _, ok := m.cache.Get(n); ok {
			return
		}
	}
	m.reqBits.Set(int(n))
}

// RequestSync implements Map: one mget for all requested keys.
func (m *mcMap[V]) RequestSync() {
	m.h.TimeRequest(func() {
		var ids []graph.NodeID
		m.reqBits.ForEachSet(func(i int) { ids = append(ids, graph.NodeID(i)) })
		m.reqBits.Clear()
		// Requests within a round accumulate; the cache is invalidated at
		// ReduceSync, the point where cached values become stale.
		m.mget(ids)
		comm.Barrier(m.h.EP) // keep BSP phases aligned across hosts
	})
}

func (m *mcMap[V]) mget(ids []graph.NodeID) {
	if len(ids) == 0 {
		return
	}
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = m.keyFor(id)
	}
	vals := m.store.MGet(m.h.Rank, keys)
	for i, v := range vals {
		if !v.OK {
			panic(fmt.Sprintf("npm: host %d mget of uninitialized node %d", m.h.Rank, ids[i]))
		}
		m.cache.Set(ids[i], m.decode(v.Data))
	}
}

// ReduceSync implements Map: reductions already happened against the
// store, so this is just a barrier plus cache invalidation.
func (m *mcMap[V]) ReduceSync() {
	m.h.TimeComm(func() {
		comm.Barrier(m.h.EP)
		// All cached values are stale; PM programs re-fetch the pinned
		// set in the BroadcastSync that follows.
		m.cache.Reset()
	})
}

// PinMirrors implements Map: mget all of this partition's mirrors.
func (m *mcMap[V]) PinMirrors() {
	if m.pinned {
		return
	}
	n := m.hp.NumLocal()
	m.pinnedIDs = make([]graph.NodeID, 0, n-m.hp.NumMasters)
	for l := m.hp.NumMasters; l < n; l++ {
		m.pinnedIDs = append(m.pinnedIDs, m.hp.GlobalID(graph.NodeID(l)))
	}
	sort.Slice(m.pinnedIDs, func(i, j int) bool { return m.pinnedIDs[i] < m.pinnedIDs[j] })
	m.h.TimeBroadcast(func() {
		m.mget(m.pinnedIDs)
		comm.Barrier(m.h.EP)
	})
	m.pinned = true
}

// BroadcastSync implements Map: refresh pinned values with another mget.
func (m *mcMap[V]) BroadcastSync() {
	if !m.pinned {
		panic("npm: BroadcastSync without PinMirrors")
	}
	m.h.TimeBroadcast(func() {
		m.mget(m.pinnedIDs)
		comm.Barrier(m.h.EP)
	})
}

// UnpinMirrors implements Map.
func (m *mcMap[V]) UnpinMirrors() {
	m.pinned = false
	m.pinnedIDs = nil
	m.cache.Reset()
}

// ResetUpdated implements Map.
func (m *mcMap[V]) ResetUpdated() { m.updated.Store(false) }

// IsUpdated implements Map.
func (m *mcMap[V]) IsUpdated() bool {
	m.h.TimeComm(func() {
		m.updatedGlobal = comm.AllReduceBool(m.h.EP, m.updated.Load())
	})
	return m.updatedGlobal
}

// ReadStats implements Map.
func (m *mcMap[V]) ReadStats() (master, remote int64) {
	return m.readMaster.Load(), m.readRemote.Load()
}
