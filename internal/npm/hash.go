package npm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// hashMap implements the SGR+CF and SGR-only ablation variants (§6.4).
// Unlike the Full map, it has no graph-partition-aware representation:
// canonical values are distributed across hosts by modulo-hashing the node
// ID and stored in a generic sharded hash map, so even a node's "own"
// property usually lives on another host and must travel the request path.
//
// With shared=false (SGR+CF) reductions use the conflict-free thread-local
// maps; with shared=true (SGR-only) every thread reduces into one shared
// locked map, exposing the thread conflicts CF eliminates.
type hashMap[V comparable] struct {
	h      *runtime.Host
	hp     *partition.HostPartition
	op     ReduceOp[V]
	codec  Codec[V]
	wire   comm.WireFormat // payload encoding (see wire.go)
	shared bool

	owned *shardedMap[V] // canonical values for hash-owned nodes

	reqBits *runtime.Bitset
	cache   *localMap[V] // written only in collectives, read-only in compute

	pinned    bool
	pinnedIDs []graph.NodeID // partition-mirror global IDs, sorted

	tl            []*bucketedMap[V] // SGR+CF reduce maps, bucketed by combine range
	combined      []*localMap[V]
	sharedPartial *shardedMap[V] // SGR-only reduce map

	// Persistent sync-phase buffers, reused across BSP rounds (see the
	// comm package's buffer-ownership contract). Reduce payloads are
	// framed as `threads` uint32 section byte-lengths followed by the
	// sections in global key-range order, so each receiving gather thread
	// decodes exactly one section per payload.
	cells       [][][]byte // CF: [tid][dest] section bytes (section = tid's range)
	sharedCells [][][]byte // SGR-only: [dest][range] section bytes
	sendBufs    [2][][]byte
	sendGen     int
	reqBufs     [2][][]byte // fetch request payloads
	respBufs    [2][][]byte // fetch response payloads
	fetchGen    int
	recvIn      [][]byte         // receive slice for the exchanges
	byOwner     [][]graph.NodeID // fetch scratch: requested IDs per owner
	// secBase[rt] = sectionLo(rt, threads, numGlobal), the v2 key base of
	// global range bucket rt. Precomputed because the encode passes need it
	// per surviving entry and sectionLo costs a 64-bit divide.
	secBase []uint64

	// Encode state for the overlapped scatter (comm.ExchangeFunc), bound
	// once at construction so hot rounds allocate nothing; the *Out fields
	// select the current double-buffer generation.
	encodeReduce   func(to int) []byte
	encodeFetchReq func(to int) []byte
	reduceOut      [][]byte
	fetchReqOut    [][]byte

	pendingMu   sync.Mutex
	pendingSets []setEntry[V]

	updated       atomic.Bool
	updatedGlobal bool

	trackReads bool
	readMaster atomic.Int64
	readRemote atomic.Int64
}

type setEntry[V any] struct {
	id graph.NodeID
	v  V
}

func newHashMapVariant[V comparable](opts Options[V], shared bool, partialShards int) *hashMap[V] {
	h := opts.Host
	m := &hashMap[V]{
		h:       h,
		hp:      h.HP,
		op:      opts.Op,
		codec:   opts.Codec,
		shared:  shared,
		owned:   newShardedMap[V](),
		reqBits: runtime.NewBitset(h.HP.NumGlobalNodes()),
		cache:   newLocalMap[V](),
	}
	m.wire = resolveWire(opts.Wire, h.Wire)
	m.encodeReduce = m.reducePayload
	m.encodeFetchReq = m.fetchReqPayload
	m.trackReads = opts.TrackReads
	numHosts := h.HP.NumHosts()
	numGlobal := h.HP.NumGlobalNodes()
	m.secBase = make([]uint64, h.Threads)
	for rt := range m.secBase {
		m.secBase[rt] = sectionLo(rt, uint64(h.Threads), uint64(numGlobal))
	}
	if shared {
		m.sharedPartial = newShardedMapN[V](partialShards)
		m.sharedCells = make([][][]byte, numHosts)
		for o := range m.sharedCells {
			m.sharedCells[o] = make([][]byte, h.Threads)
		}
	} else {
		m.tl = make([]*bucketedMap[V], h.Threads)
		m.combined = make([]*localMap[V], h.Threads)
		for t := range m.tl {
			m.tl[t] = newBucketedMap[V](h.Threads, numGlobal)
			m.combined[t] = newLocalMap[V]()
		}
		m.cells = make([][][]byte, h.Threads)
		for t := range m.cells {
			m.cells[t] = make([][]byte, numHosts)
		}
	}
	for g := range m.sendBufs {
		m.sendBufs[g] = make([][]byte, numHosts)
		m.reqBufs[g] = make([][]byte, numHosts)
		m.respBufs[g] = make([][]byte, numHosts)
	}
	m.recvIn = make([][]byte, numHosts)
	m.byOwner = make([][]graph.NodeID, numHosts)
	return m
}

// hashOwner distributes node IDs across hosts with no partition awareness.
func (m *hashMap[V]) hashOwner(n graph.NodeID) int {
	return int(n) % m.hp.NumHosts()
}

func (m *hashMap[V]) isPartitionMaster(n graph.NodeID) bool {
	lo, hi := m.hp.MasterRangeGlobal()
	return n >= lo && n < hi
}

// Read implements Map. Served from the hash-owned map (if owned here) or
// the request-filled cache.
func (m *hashMap[V]) Read(n graph.NodeID) V {
	if m.trackReads {
		if m.isPartitionMaster(n) {
			m.readMaster.Add(1)
		} else {
			m.readRemote.Add(1)
		}
	}
	if m.hashOwner(n) == m.h.Rank {
		if v, ok := m.owned.Get(n); ok {
			return v
		}
		panic(fmt.Sprintf("npm: host %d read of uninitialized owned node %d", m.h.Rank, n))
	}
	if v, ok := m.cache.Get(n); ok {
		return v
	}
	panic(fmt.Sprintf("npm: host %d read of uncached node %d (missing Request?)", m.h.Rank, n))
}

// Reduce implements Map.
func (m *hashMap[V]) Reduce(tid int, n graph.NodeID, v V) {
	if m.shared {
		// SGR-only: every thread contends on the shared map's locks —
		// the conflict cost the CF optimization removes.
		m.sharedPartial.Reduce(n, v, m.op.Combine)
		return
	}
	m.reduceCF(tid, n, v)
}

// reduceCF is the SGR+CF compute-phase reduce into the calling thread's
// private map (§4.2).
//
//kimbap:conflictfree
func (m *hashMap[V]) reduceCF(tid int, n graph.NodeID, v V) {
	m.tl[tid].Reduce(n, v, m.op.Combine)
}

// Set implements Map. Values for nodes hash-owned elsewhere are buffered
// and flushed by InitSync.
func (m *hashMap[V]) Set(n graph.NodeID, v V) {
	if m.hashOwner(n) == m.h.Rank {
		m.owned.Set(n, v)
		return
	}
	m.pendingMu.Lock()
	m.pendingSets = append(m.pendingSets, setEntry[V]{n, v})
	m.pendingMu.Unlock()
}

// InitSync implements Map: flush buffered Sets to their hash owners.
func (m *hashMap[V]) InitSync() {
	m.h.TimeComm(func() {
		numHosts := m.hp.NumHosts()
		self := m.h.Rank
		out := make([][]byte, numHosts)
		m.pendingMu.Lock()
		for _, e := range m.pendingSets {
			o := m.hashOwner(e.id)
			out[o] = comm.AppendUint32(out[o], uint32(e.id))
			out[o] = m.codec.Append(out[o], e.v)
		}
		m.pendingSets = nil
		m.pendingMu.Unlock()
		in := comm.Exchange(m.h.EP, comm.TagReduce, out)
		entrySize := 4 + m.codec.Size()
		for o, payload := range in {
			if o == self {
				continue
			}
			for len(payload) >= entrySize {
				var id uint32
				id, payload = comm.ReadUint32(payload)
				var v V
				v, payload = m.codec.Read(payload)
				m.owned.Set(graph.NodeID(id), v)
			}
		}
	})
}

// Request implements Map: needed for anything not hash-owned locally,
// including this partition's own master nodes (no GAR).
func (m *hashMap[V]) Request(n graph.NodeID) {
	if m.hashOwner(n) == m.h.Rank {
		return
	}
	if m.pinned {
		if _, ok := m.cache.Get(n); ok {
			return // pinned entries are refreshed by BroadcastSync
		}
	}
	m.reqBits.Set(int(n))
}

// RequestSync implements Map.
func (m *hashMap[V]) RequestSync() {
	m.h.TimeRequest(func() {
		var ids []graph.NodeID
		m.reqBits.ForEachSet(func(i int) { ids = append(ids, graph.NodeID(i)) })
		m.reqBits.Clear()
		m.fetch(ids)
	})
}

// fetch retrieves the given global IDs from their hash owners and stores
// them in the cache. Collective. Request and response buffers are
// persistent and double-buffered, so the repeated fetches PM programs
// issue (BroadcastSync re-fetches the pinned set every round) allocate
// nothing in steady state.
func (m *hashMap[V]) fetch(ids []graph.NodeID) {
	numHosts := m.hp.NumHosts()
	self := m.h.Rank
	byOwner := m.byOwner
	for o := range byOwner {
		byOwner[o] = byOwner[o][:0]
	}
	for _, id := range ids {
		byOwner[m.hashOwner(id)] = append(byOwner[m.hashOwner(id)], id)
	}
	gen := m.fetchGen
	m.fetchGen ^= 1
	// Overlapped request scatter: destination o's (delta-varint under v2)
	// ID list goes on the wire while o+1's is still being encoded.
	m.fetchReqOut = m.reqBufs[gen]
	in := comm.ExchangeFunc(m.h.EP, comm.TagRequest, m.encodeFetchReq, m.recvIn)

	resp := m.respBufs[gen]
	for o := 0; o < numHosts; o++ {
		if o == self {
			continue
		}
		buf := resp[o][:0]
		dec := decodeIDList(in[o])
		for id, ok := dec.next(); ok; id, ok = dec.next() {
			v, ok := m.owned.Get(id)
			if !ok {
				panic(fmt.Sprintf("npm: host %d asked for uninitialized node %d", self, id))
			}
			buf = m.codec.Append(buf, v)
		}
		resp[o] = buf
	}
	// The request payloads in `in` are fully consumed above, so reusing
	// the receive slice for the response exchange is safe.
	got := comm.ExchangeInto(m.h.EP, comm.TagResponse, resp, m.recvIn)

	// Requests within a round accumulate; the cache is invalidated at
	// ReduceSync, the point where cached values become stale.
	for o := 0; o < numHosts; o++ {
		if o == self {
			continue
		}
		payload := got[o]
		for _, id := range byOwner[o] {
			var v V
			v, payload = m.codec.Read(payload)
			m.cache.Set(id, v)
		}
	}
	// Self-owned requests are resolved from the owned map on Read.
}

// ReduceSync implements Map. Payload sections are keyed by global
// key-range bucket, so receivers fan the decode out across gather threads
// with each byte decoded exactly once (the same framing Full uses).
func (m *hashMap[V]) ReduceSync() {
	m.h.TimeComm(func() {
		numHosts := m.hp.NumHosts()
		self := m.h.Rank
		threads := m.h.Threads
		numGlobal := uint64(m.hp.NumGlobalNodes())

		if m.shared {
			// SGR-only: drain the shared partial map single-threaded (its
			// combining happened, with contention, during compute),
			// sectioning remote entries by global key-range bucket.
			for o := range m.sharedCells {
				for rt := range m.sharedCells[o] {
					m.sharedCells[o][rt] = m.sharedCells[o][rt][:0]
				}
			}
			wireV2 := m.wire == comm.WireV2
			secBase := m.secBase
			m.sharedPartial.ForEach(func(k graph.NodeID, v V) {
				o := m.hashOwner(k)
				if o == self {
					m.applyToOwned(k, v)
					return
				}
				rt := rangeBucket(k, uint64(threads), numGlobal)
				var buf []byte
				if wireV2 {
					buf = comm.AppendUvarint(m.sharedCells[o][rt],
						uint64(k)-secBase[rt])
				} else {
					buf = comm.AppendUint32(m.sharedCells[o][rt], uint32(k))
				}
				m.sharedCells[o][rt] = m.codec.Append(buf, v)
			})
			m.sharedPartial.Reset()
		} else {
			// SGR+CF: work-linear combine, exactly as in Full — combine
			// thread t drains bucket t of every thread-local map, so its
			// surviving entries are precisely global key-range bucket t and
			// form section t of every outgoing payload.
			m.h.ParFor(threads, func(_, t int) {
				cm := m.combined[t]
				cm.Reset()
				for _, src := range m.tl {
					src.buckets[t].ForEach(func(k graph.NodeID, v V) {
						cm.Reduce(k, v, m.op.Combine)
					})
				}
				cells := m.cells[t]
				for o := range cells {
					cells[o] = cells[o][:0]
				}
				wireV2 := m.wire == comm.WireV2
				base := m.secBase[t]
				cm.ForEach(func(k graph.NodeID, v V) {
					o := m.hashOwner(k)
					if o == self {
						m.applyToOwned(k, v)
						return
					}
					var buf []byte
					if wireV2 {
						// Thread t's surviving entries are exactly global
						// range bucket t: section t of every payload.
						buf = comm.AppendUvarint(cells[o], uint64(k)-base)
					} else {
						buf = comm.AppendUint32(cells[o], uint32(k))
					}
					cells[o] = m.codec.Append(buf, v)
				})
			})
			for _, t := range m.tl {
				t.Reset()
			}
		}

		// Scatter with compute/comm overlap: ExchangeFunc assembles and
		// sends each destination's payload (tag, section lengths, sections
		// in key-range order — see reducePayload) before the next
		// destination's encode starts. Double-buffered.
		m.reduceOut = m.sendBufs[m.sendGen]
		m.sendGen ^= 1
		in := comm.ExchangeFunc(m.h.EP, comm.TagReduce, m.encodeReduce, m.recvIn)

		// Gather: thread t decodes section t of every payload — disjoint
		// key ranges, each byte decoded once; the payload's format tag says
		// how its keys decode. The owned map's shard locks make the
		// concurrent applies safe.
		m.h.ParFor(threads, func(_, t int) {
			base := graph.NodeID(sectionLo(t, uint64(threads), numGlobal))
			for o := 0; o < numHosts; o++ {
				if o == self || len(in[o]) == 0 {
					continue
				}
				sec, kind := reduceSection(in[o], t, threads)
				if kind == secV2 {
					for len(sec) > 0 {
						var d uint64
						d, sec = comm.ReadUvarint(sec)
						var v V
						v, sec = m.codec.Read(sec)
						m.applyToOwned(base+graph.NodeID(d), v)
					}
				} else {
					for len(sec) > 0 {
						var id uint32
						id, sec = comm.ReadUint32(sec)
						var v V
						v, sec = m.codec.Read(sec)
						m.applyToOwned(graph.NodeID(id), v)
					}
				}
			}
		})

		// All cached values (requested and pinned alike) are stale now;
		// the BroadcastSync that PM programs issue next re-fetches the
		// pinned set.
		m.cache.Reset()
	})
}

// section returns the encoded bytes destined for host o's range bucket rt.
func (m *hashMap[V]) section(o, rt int) []byte {
	if m.shared {
		return m.sharedCells[o][rt]
	}
	return m.cells[rt][o]
}

// reducePayload assembles the reduce payload for destination o: a 1-byte
// wire tag, `threads` section byte-lengths (uint32 in v1, uvarint in v2),
// then the sections in global key-range order. Empty rounds return an
// empty payload with tag and header elided. Called by ExchangeFunc once
// per destination, immediately before that destination's Send.
func (m *hashMap[V]) reducePayload(o int) []byte {
	threads := m.h.Threads
	out := m.reduceOut
	buf := out[o][:0]
	total := 0
	for rt := 0; rt < threads; rt++ {
		total += len(m.section(o, rt))
	}
	if total == 0 {
		out[o] = buf
		return buf
	}
	if m.wire == comm.WireV2 {
		buf = append(buf, wireV2)
		for rt := 0; rt < threads; rt++ {
			buf = comm.AppendUvarint(buf, uint64(len(m.section(o, rt))))
		}
	} else {
		buf = append(buf, wireV1)
		for rt := 0; rt < threads; rt++ {
			buf = comm.AppendUint32(buf, uint32(len(m.section(o, rt))))
		}
	}
	for rt := 0; rt < threads; rt++ {
		buf = append(buf, m.section(o, rt)...)
	}
	out[o] = buf
	return buf
}

// fetchReqPayload encodes the fetch request for host o: its byOwner ID
// list behind a format tag (delta-varint under v2; the lists are sorted).
// Called by ExchangeFunc once per destination.
func (m *hashMap[V]) fetchReqPayload(o int) []byte {
	out := m.fetchReqOut
	out[o] = appendIDList(out[o][:0], m.wire, m.byOwner[o])
	return out[o]
}

func (m *hashMap[V]) applyToOwned(k graph.NodeID, v V) {
	if m.owned.ReduceChanged(k, v, m.op.Combine) {
		m.updated.Store(true)
	}
}

// PinMirrors implements Map: with hash distribution there is no broadcast
// structure to exploit, so pinning fetches this partition's mirror values
// through the request path and BroadcastSync re-fetches them — the two-way
// traffic the Full variant's one-way broadcast avoids.
func (m *hashMap[V]) PinMirrors() {
	if m.pinned {
		return
	}
	n := m.hp.NumLocal()
	m.pinnedIDs = make([]graph.NodeID, 0, n-m.hp.NumMasters)
	for l := m.hp.NumMasters; l < n; l++ {
		m.pinnedIDs = append(m.pinnedIDs, m.hp.GlobalID(graph.NodeID(l)))
	}
	sort.Slice(m.pinnedIDs, func(i, j int) bool { return m.pinnedIDs[i] < m.pinnedIDs[j] })
	m.h.TimeBroadcast(func() { m.fetch(m.pinnedIDs) })
	m.pinned = true
}

// BroadcastSync implements Map (emulated by re-fetching pinned values).
func (m *hashMap[V]) BroadcastSync() {
	if !m.pinned {
		panic("npm: BroadcastSync without PinMirrors")
	}
	m.h.TimeBroadcast(func() { m.fetch(m.pinnedIDs) })
}

// UnpinMirrors implements Map.
func (m *hashMap[V]) UnpinMirrors() {
	m.pinned = false
	m.pinnedIDs = nil
	m.cache.Reset()
}

// ResetUpdated implements Map.
func (m *hashMap[V]) ResetUpdated() { m.updated.Store(false) }

// IsUpdated implements Map.
func (m *hashMap[V]) IsUpdated() bool {
	m.h.TimeComm(func() {
		m.updatedGlobal = comm.AllReduceBool(m.h.EP, m.updated.Load())
	})
	return m.updatedGlobal
}

// ReadStats implements Map.
func (m *hashMap[V]) ReadStats() (master, remote int64) {
	return m.readMaster.Load(), m.readRemote.Load()
}

// shardedMap is a locked, sharded hash map standing in for the paper's
// phmap flat_hash_map: correct under concurrency but paying lock conflicts
// for hot keys, which is precisely what the CF ablation measures. With a
// single shard it models Vite's one shared map guarded as a whole.
type shardedMap[V comparable] struct {
	shards []mapShard[V]
	mask   uint32
}

type mapShard[V comparable] struct {
	mu sync.Mutex
	m  *localMap[V]
}

// newShardedMap creates a map with 16 shards.
func newShardedMap[V comparable]() *shardedMap[V] { return newShardedMapN[V](16) }

// newShardedMapN creates a map with n shards; n must be a power of two.
func newShardedMapN[V comparable](n int) *shardedMap[V] {
	if n&(n-1) != 0 || n == 0 {
		panic("npm: shard count must be a power of two")
	}
	s := &shardedMap[V]{shards: make([]mapShard[V], n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].m = newLocalMap[V]()
	}
	return s
}

func (s *shardedMap[V]) shardFor(k graph.NodeID) int {
	return int(((uint32(k) * 2654435769) >> 16) & s.mask)
}

// Get returns the value for k. Reads take the shard lock plainly: a
// conflict is a *reduction* that finds the lock held (conflicts.go), so
// contended reads and sync-phase traffic must not bump the counter — the
// conflict-free variants report zero by construction, and Get serves
// their request path.
func (s *shardedMap[V]) Get(k graph.NodeID) (V, bool) {
	sh := &s.shards[s.shardFor(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Get(k)
}

// Set stores v for k. Not a reduction: plain lock, no conflict counting.
func (s *shardedMap[V]) Set(k graph.NodeID, v V) {
	sh := &s.shards[s.shardFor(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m.Set(k, v)
}

// Reduce merges v into k's entry under the shard lock.
func (s *shardedMap[V]) Reduce(k graph.NodeID, v V, op func(a, b V) V) {
	sh := &s.shards[s.shardFor(k)]
	sh.lockCounting()
	defer sh.mu.Unlock()
	sh.m.Reduce(k, v, op)
}

// ReduceChanged merges v into k's entry and reports whether the stored
// value changed. V must be comparable at the call site. It is only
// called while applying combined partials during ReduceSync, after
// reduce-compute is over, so contention here is sync-phase cost, not a
// thread conflict: plain lock.
func (s *shardedMap[V]) ReduceChanged(k graph.NodeID, v V, op func(a, b V) V) bool {
	sh := &s.shards[s.shardFor(k)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.m.Get(k)
	if !ok {
		sh.m.Set(k, v)
		return true
	}
	nv := op(old, v)
	changed := nv != old
	if changed {
		sh.m.Set(k, nv)
	}
	return changed
}

// ForEach visits all entries; not safe concurrently with writers.
func (s *shardedMap[V]) ForEach(fn func(k graph.NodeID, v V)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m.ForEach(fn)
		sh.mu.Unlock()
	}
}

// Reset clears all shards.
func (s *shardedMap[V]) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m.Reset()
		sh.mu.Unlock()
	}
}
