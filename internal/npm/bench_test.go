package npm

import (
	"math/rand"
	"sync"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

// Micro-benchmarks for the node-property map's design choices (DESIGN.md
// §4): thread-local vs shared-map reductions, GAR reads, and the combine
// pass.

func BenchmarkLocalMapReduce(b *testing.B) {
	m := newLocalMap[graph.NodeID]()
	min := func(a, v graph.NodeID) graph.NodeID {
		if v < a {
			return v
		}
		return a
	}
	keys := make([]graph.NodeID, 1024)
	r := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = graph.NodeID(r.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reduce(keys[i%len(keys)], graph.NodeID(i), min)
	}
}

// BenchmarkReduceHotKeyCF vs BenchmarkReduceHotKeyShared expose the
// conflict-free design's advantage: every thread hammering one hub key.
func BenchmarkReduceHotKeyCF(b *testing.B) {
	const threads = 8
	min := func(a, v graph.NodeID) graph.NodeID {
		if v < a {
			return v
		}
		return a
	}
	tl := make([]*localMap[graph.NodeID], threads)
	for i := range tl {
		tl[i] = newLocalMap[graph.NodeID]()
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/threads + 1
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tl[tid].Reduce(7, graph.NodeID(i), min) // conflict-free
			}
		}(t)
	}
	wg.Wait()
}

func BenchmarkReduceHotKeyShared(b *testing.B) {
	const threads = 8
	min := func(a, v graph.NodeID) graph.NodeID {
		if v < a {
			return v
		}
		return a
	}
	s := newShardedMap[graph.NodeID]()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/threads + 1
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Reduce(7, graph.NodeID(i), min) // one lock for everyone
			}
		}()
	}
	wg.Wait()
}

// BenchmarkGARMasterRead measures the dense-vector read path vs
// BenchmarkGARRemoteRead's binary-search path (Figure 6).
func BenchmarkGARMasterRead(b *testing.B) {
	m, _, cleanup := benchFullMap(b)
	defer cleanup()
	lo, hi := m.masterLo, m.masterHi
	span := int(hi - lo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(lo + graph.NodeID(i%span))
	}
}

func BenchmarkGARRemoteRead(b *testing.B) {
	m, remote, cleanup := benchFullMap(b)
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(remote[i%len(remote)])
	}
}

// benchFullMap builds a 1-host-of-2 cluster where host 0's map has both a
// master range and a populated remote cache. The second host is driven by
// a goroutine so collectives complete.
func benchFullMap(b *testing.B) (m *fullMap[graph.NodeID], remote []graph.NodeID, cleanup func()) {
	b.Helper()
	g := gen.Grid(40, 40, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, ThreadsPerHost: 2})
	if err != nil {
		b.Fatal(err)
	}
	ready := make(chan *fullMap[graph.NodeID], 1)
	release := make(chan struct{})
	go c.Run(func(h *runtime.Host) {
		mp := newFullMap(Options[graph.NodeID]{
			Host: h, Op: MinNodeID(), Codec: NodeIDCodec{},
		})
		h.ParForNodes(func(_ int, l graph.NodeID) {
			gid := h.HP.GlobalID(l)
			mp.Set(gid, gid)
		})
		mp.InitSync()
		for n := 0; n < h.HP.NumGlobalNodes(); n++ {
			mp.Request(graph.NodeID(n))
		}
		mp.RequestSync()
		if h.Rank == 0 {
			ready <- mp
		}
		<-release
	})
	m = <-ready
	lo, hi := m.masterLo, m.masterHi
	for n := 0; n < m.hp.NumGlobalNodes(); n++ {
		if graph.NodeID(n) < lo || graph.NodeID(n) >= hi {
			remote = append(remote, graph.NodeID(n))
		}
	}
	return m, remote, func() { close(release); c.Close() }
}

// BenchmarkReduceSyncFull measures a whole reduce round (combine + SGR +
// apply) on the Full variant.
func BenchmarkReduceSyncFull(b *testing.B) {
	benchReduceSync(b, 2, 4)
}

// BenchmarkReduceSync8x4 is the headline sync-path microbenchmark: a full
// reduce round on the Full variant at 8 simulated hosts x 4 threads, the
// configuration where the combine and gather passes' per-thread redundancy
// is most expensive.
func BenchmarkReduceSync8x4(b *testing.B) {
	benchReduceSync(b, 8, 4)
}

func benchReduceSync(b *testing.B, hosts, threads int) {
	b.Helper()
	g := gen.RMAT(11, 8, false, 3)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: threads})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	c.Run(func(h *runtime.Host) {
		m := New(Options[graph.NodeID]{Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}})
		h.ParForNodes(func(_ int, l graph.NodeID) {
			gid := h.HP.GlobalID(l)
			m.Set(gid, gid)
		})
		m.InitSync()
		n := h.HP.NumGlobalNodes()
		for i := 0; i < b.N; i++ {
			h.ParFor(1024, func(tid, j int) {
				m.Reduce(tid, graph.NodeID((j*31+i)%n), graph.NodeID(j%n))
			})
			m.ReduceSync()
		}
	})
}

// BenchmarkBroadcastSyncFull measures a dirty-bitmask broadcast round with
// pinned mirrors at 8 hosts x 4 threads.
func BenchmarkBroadcastSyncFull(b *testing.B) {
	g := gen.RMAT(11, 8, false, 3)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 8, ThreadsPerHost: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	c.Run(func(h *runtime.Host) {
		m := New(Options[graph.NodeID]{Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}})
		h.ParForNodes(func(_ int, l graph.NodeID) {
			gid := h.HP.GlobalID(l)
			m.Set(gid, gid)
		})
		m.InitSync()
		m.PinMirrors()
		lo, hi := h.HP.MasterRangeGlobal()
		for i := 0; i < b.N; i++ {
			span := int(hi - lo)
			h.ParFor(span/4+1, func(tid, j int) {
				k := lo + graph.NodeID((j*4+i)%span)
				m.Reduce(tid, k, graph.NodeID(i%int(k+1)))
			})
			m.ReduceSync()
			m.BroadcastSync()
		}
	})
}
