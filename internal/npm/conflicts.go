package npm

import "sync/atomic"

// Conflict accounting. The paper measures thread conflicts through their
// wall-clock cost on 48-core hosts; on smaller machines that cost
// compresses, so the harness additionally counts the conflicts
// themselves: a conflict is a reduction that found its shared-map shard
// lock held by another thread. The conflict-free variants (Full, SGR+CF)
// never take locks during reduce-compute and report zero by construction.
//
// The counter is process-global instrumentation; experiments reset it
// around each measured run. Because it is process-global, two interleaved
// measurements would silently steal each other's counts — measured runs
// therefore claim the counter through BeginConflictWindow, which makes
// the interleaving a panic instead of a corrupted number. MC-variant
// conflicts are counted separately as CAS retries by the kvstore.
var (
	conflictCount atomic.Int64
	windowOpen    atomic.Bool
)

// ConflictWindow is an exclusive claim on the conflict counter for one
// measured run, created by BeginConflictWindow and released by End.
type ConflictWindow struct {
	ended atomic.Bool
}

// BeginConflictWindow zeroes the conflict counter and claims it until
// End. It panics if another window is still open: overlapping windows
// mean two harness measurements are interleaving and both counts would
// be garbage.
func BeginConflictWindow() *ConflictWindow {
	if !windowOpen.CompareAndSwap(false, true) {
		panic("npm: conflict window already open (interleaved measurements?)")
	}
	conflictCount.Store(0)
	return &ConflictWindow{}
}

// End closes the window and returns the conflicts counted within it. It
// panics if called twice.
func (w *ConflictWindow) End() int64 {
	if !w.ended.CompareAndSwap(false, true) {
		panic("npm: conflict window ended twice")
	}
	n := conflictCount.Load()
	windowOpen.Store(false)
	return n
}

// ResetConflicts zeroes the shared-map conflict counter. It panics while
// a ConflictWindow is open — resetting mid-window would corrupt the
// owning measurement.
func ResetConflicts() {
	if windowOpen.Load() {
		panic("npm: ResetConflicts inside an open conflict window")
	}
	conflictCount.Store(0)
}

// ConflictCount returns shared-map lock conflicts since the last reset
// or window start.
func ConflictCount() int64 { return conflictCount.Load() }

// lockCounting acquires the shard lock, counting a conflict if it was
// contended.
func (sh *mapShard[V]) lockCounting() {
	if sh.mu.TryLock() {
		return
	}
	conflictCount.Add(1)
	sh.mu.Lock()
}
