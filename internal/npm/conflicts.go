package npm

import "sync/atomic"

// Conflict accounting. The paper measures thread conflicts through their
// wall-clock cost on 48-core hosts; on smaller machines that cost
// compresses, so the harness additionally counts the conflicts
// themselves: a conflict is a reduction that found its shared-map shard
// lock held by another thread. The conflict-free variants (Full, SGR+CF)
// never take locks during reduce-compute and report zero by construction.
//
// The counter is process-global instrumentation; experiments reset it
// around each measured run. MC-variant conflicts are counted separately
// as CAS retries by the kvstore.
var conflictCount atomic.Int64

// ResetConflicts zeroes the shared-map conflict counter.
func ResetConflicts() { conflictCount.Store(0) }

// ConflictCount returns shared-map lock conflicts since the last reset.
func ConflictCount() int64 { return conflictCount.Load() }

// lockCounting acquires the shard lock, counting a conflict if it was
// contended.
func (sh *mapShard[V]) lockCounting() {
	if sh.mu.TryLock() {
		return
	}
	conflictCount.Add(1)
	sh.mu.Lock()
}
