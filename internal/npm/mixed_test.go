package npm

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/runtime"
)

// Mixed-flow scenarios: pinned mirrors interleaved with explicit requests,
// multiple reduce/broadcast rounds, and multiple maps per program — the
// access patterns the real algorithms combine.

func TestPinnedAndRequestedCoexist(t *testing.T) {
	g := gen.RMAT(7, 4, false, 9)
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runVariant(t, g, 3, v, func(h *runtime.Host, m Map[graph.NodeID]) {
				initIdentity(h, m)
				m.PinMirrors()
				// Request an arbitrary non-proxy node alongside pinned
				// mirrors, then read both kinds in the same phase.
				n := h.HP.NumGlobalNodes()
				for i := 0; i < n; i++ {
					m.Request(graph.NodeID(i))
				}
				m.RequestSync()
				for i := 0; i < n; i++ {
					if got := m.Read(graph.NodeID(i)); got != graph.NodeID(i) {
						t.Errorf("host %d: Read(%d) = %d", h.Rank, i, got)
					}
				}
				m.UnpinMirrors()
			})
		})
	}
}

func TestMultiRoundReduceBroadcast(t *testing.T) {
	// Chain min-propagation purely through the map API: after k rounds,
	// node i's value is min over the window [i-k, i].
	g := gen.Chain(32, false, 1)
	runVariant(t, g, 2, Full, func(h *runtime.Host, m Map[graph.NodeID]) {
		initIdentity(h, m)
		m.PinMirrors()
		local := h.HP.Local
		const rounds = 5
		for r := 0; r < rounds; r++ {
			m.ResetUpdated()
			h.ParForNodes(func(tid int, n graph.NodeID) {
				gid := h.HP.GlobalID(n)
				v := m.Read(gid)
				lo, hi := local.EdgeRange(n)
				for e := lo; e < hi; e++ {
					dgid := h.HP.GlobalID(local.Dst(e))
					if v < m.Read(dgid) {
						m.Reduce(tid, dgid, v)
					}
				}
			})
			m.ReduceSync()
			m.BroadcastSync()
		}
		m.UnpinMirrors()
		lo, hi := h.HP.MasterRangeGlobal()
		for gid := lo; gid < hi; gid++ {
			m.Request(gid)
		}
		m.RequestSync()
		for gid := lo; gid < hi; gid++ {
			want := graph.NodeID(0)
			if int(gid) > rounds {
				want = gid - rounds
			}
			if got := m.Read(gid); got != want {
				t.Errorf("host %d: after %d rounds node %d = %d, want %d",
					h.Rank, rounds, gid, got, want)
			}
		}
	})
}

func TestTwoMapsIndependentSync(t *testing.T) {
	// Two maps on the same host must not interfere: alternating collective
	// calls on each with different reduce ops.
	g := gen.Grid(5, 5, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, ThreadsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *runtime.Host) {
		minMap := New(Options[graph.NodeID]{Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}})
		maxMap := New(Options[graph.NodeID]{Host: h, Op: MaxNodeID(), Codec: NodeIDCodec{}})
		initIdentity(h, minMap)
		initIdentity(h, maxMap)
		minMap.Reduce(0, 5, 1)
		maxMap.Reduce(0, 5, 20)
		minMap.ReduceSync()
		maxMap.ReduceSync()
		minMap.Request(5)
		maxMap.Request(5)
		minMap.RequestSync()
		maxMap.RequestSync()
		if got := minMap.Read(5); got != 1 {
			t.Errorf("host %d: min map = %d, want 1", h.Rank, got)
		}
		if got := maxMap.Read(5); got != 20 {
			t.Errorf("host %d: max map = %d, want 20", h.Rank, got)
		}
	})
}

func TestMCMapsShareOneStore(t *testing.T) {
	// Multiple MC maps namespace their keys in a shared store; values must
	// not collide.
	g := gen.Grid(4, 4, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := kvstore.NewCluster(2, 2)
	c.Run(func(h *runtime.Host) {
		a := New(Options[graph.NodeID]{
			Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: MC, Store: store,
		})
		b := New(Options[graph.NodeID]{
			Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: MC, Store: store,
		})
		if h.Rank == 0 {
			a.Set(3, 111)
			b.Set(3, 222)
		}
		a.InitSync()
		b.InitSync()
		if got := a.Read(3); got != 111 {
			t.Errorf("host %d: map a node 3 = %d", h.Rank, got)
		}
		if got := b.Read(3); got != 222 {
			t.Errorf("host %d: map b node 3 = %d", h.Rank, got)
		}
	})
}
