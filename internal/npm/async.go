package npm

import (
	"sync/atomic"

	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

// The asynchronous apply path. During a runtime.AsyncDrain, operator
// bodies bypass the round-buffered thread-local reduce for targets whose
// value lives on this host (masters and pinned mirrors): they combine via
// an atomic CAS loop directly on the dense value arrays, and the drain
// re-enqueues the changed vertex immediately. Targets that are not local
// proxies still take the buffered Reduce path and surface at the next
// reduce-sync, which is what keeps cross-host synchronization BSP.
//
// Soundness: in-place mirror values are flushed at ReduceSync as
// whole-value partials, so the owner may fold in a contribution that
// already contains its own broadcast master value — double-counting
// unless Combine is idempotent. AsyncNode therefore refuses operators
// without ReduceOp.Idempotent.
//
// The handle is deliberately non-generic (NodeID-valued Full maps only):
// Go cannot CAS an arbitrary comparable V, but *graph.NodeID converts
// legally to *uint32 (identical underlying types), giving a lock-free
// 32-bit CAS with no unsafe. NodeID maps cover the algorithms that want
// asynchrony (CC label propagation, CC hook/shortcut, MIS state).

// AsyncNodeHandle is an in-place atomic view over a Full-variant NodeID
// map for use inside asynchronous drains. Obtain one with AsyncNode.
//
// Protocol: between a drain's start and the next ReduceSync, every access
// to the map's local values must go through the handle (Load/ReduceAsync)
// — mixing in plain Read/Set during a drain is a data race. Outside
// drains the map behaves as usual; the BSP sync phases provide the
// happens-before edges.
type AsyncNodeHandle struct {
	m *fullMap[graph.NodeID]
}

// AsyncNode returns the async apply handle for m, or false when m does not
// support in-place asynchronous application (not the Full variant, or a
// non-idempotent operator).
func AsyncNode(m Map[graph.NodeID]) (*AsyncNodeHandle, bool) {
	fm, ok := m.(*fullMap[graph.NodeID])
	if !ok || !fm.op.Idempotent {
		return nil, false
	}
	if fm.mirrorDirty == nil {
		fm.mirrorDirty = runtime.NewBitset(fm.hp.NumMirrors())
	}
	return &AsyncNodeHandle{m: fm}, true
}

// nodeSlot returns n's value slot as an atomically accessible *uint32:
// masters and pinned mirrors only.
func (a *AsyncNodeHandle) nodeSlot(n graph.NodeID) (p *uint32, local graph.NodeID, mirror bool, ok bool) {
	m := a.m
	if n >= m.masterLo && n < m.masterHi {
		i := n - m.masterLo
		return (*uint32)(&m.masters[i]), i, false, true
	}
	if m.pinned {
		if l, isLocal := m.hp.LocalID(n); isLocal && !m.hp.IsMaster(l) {
			return (*uint32)(&m.mirrors[int(l)-m.hp.NumMasters]), l, true, true
		}
	}
	return nil, 0, false, false
}

// Load atomically reads n's value. ok is false when n is not materialized
// on this host (no master, no pinned mirror, no cached request response) —
// the drain-safe analogue of Read's panic.
//
//kimbap:conflictfree
func (a *AsyncNodeHandle) Load(n graph.NodeID) (v graph.NodeID, ok bool) {
	if p, _, _, isLocal := a.nodeSlot(n); isLocal {
		return graph.NodeID(atomic.LoadUint32(p)), true
	}
	// The request cache is written only during RequestSync (a BSP phase);
	// during a drain it is read-only, so the plain slot-table index is
	// safe — the same O(1) lookup Read uses (DESIGN.md §14), replacing
	// the binary search this path used to pay per miss.
	m := a.m
	if m.cacheSlot != nil {
		if s := m.cacheSlot[n]; s != 0 {
			return m.cacheVals[s-1], true
		}
	}
	return 0, false
}

// ReduceAsync merges v into n's value. When n is a local proxy the merge
// is an in-place CAS loop (applied reports this) and changed reports
// whether the stored value moved — the caller's signal to re-enqueue n's
// local ID. Otherwise the merge falls back to the buffered thread-local
// reduce (applied=false) and surfaces at the next ReduceSync.
//
//kimbap:conflictfree
func (a *AsyncNodeHandle) ReduceAsync(tid int, n, v graph.NodeID) (local graph.NodeID, applied, changed bool) {
	m := a.m
	p, local, mirror, isLocal := a.nodeSlot(n)
	if !isLocal {
		m.tl[tid].Reduce(n, v, m.op.Combine)
		return 0, false, false
	}
	for {
		old := atomic.LoadUint32(p)
		nv := uint32(m.op.Combine(graph.NodeID(old), v))
		if nv == old {
			return local, true, false
		}
		if atomic.CompareAndSwapUint32(p, old, nv) {
			break
		}
		m.casRetries.Add(1)
	}
	m.casApplied.Add(1)
	if mirror {
		m.mirrorDirty.Set(int(local) - m.hp.NumMasters)
	} else {
		m.updated.Store(true)
		m.masterDirty.Set(int(local))
	}
	return local, true, true
}

// CASStats returns cumulative in-place applies and CAS retries — the
// contention telemetry the adaptive policy engine feeds on.
func (a *AsyncNodeHandle) CASStats() (applied, retries int64) {
	return a.m.casApplied.Load(), a.m.casRetries.Load()
}

// NumMasters returns the host's master count (local IDs below it are
// masters), so drain bodies can classify the local IDs ReduceAsync hands
// back without reaching into the partition.
func (a *AsyncNodeHandle) NumMasters() int { return a.m.hp.NumMasters }
