package npm

import (
	"sync"
	"testing"
	"time"

	"kimbap/internal/graph"
)

// The conflict counter must measure exactly one thing: reductions that
// found a shared-map shard lock held during reduce-compute. Contended
// reads (the request path) and the sync-phase ReduceChanged applies are
// ordinary lock costs, not thread conflicts — counting them would make
// the conflict-free variants report nonzero counts whenever the request
// path races the apply loop.

// contend holds s's only shard lock while op runs in another goroutine,
// guaranteeing op's acquisition is contended.
func contend(t *testing.T, s *shardedMap[float64], op func()) {
	t.Helper()
	sh := &s.shards[0]
	sh.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		op()
	}()
	// Give op time to block on (or TryLock-fail against) the held lock.
	time.Sleep(20 * time.Millisecond)
	sh.mu.Unlock()
	<-done
}

func TestShardedGetDoesNotCountConflicts(t *testing.T) {
	s := newShardedMapN[float64](1)
	s.Set(1, 2.5)
	ResetConflicts()
	contend(t, s, func() {
		if v, ok := s.Get(1); !ok || v != 2.5 {
			t.Errorf("Get(1) = %v, %v; want 2.5, true", v, ok)
		}
	})
	if got := ConflictCount(); got != 0 {
		t.Errorf("contended Get counted %d conflicts; reads are not reductions", got)
	}
}

func TestShardedSetDoesNotCountConflicts(t *testing.T) {
	s := newShardedMapN[float64](1)
	ResetConflicts()
	contend(t, s, func() { s.Set(7, 1) })
	if got := ConflictCount(); got != 0 {
		t.Errorf("contended Set counted %d conflicts; sets are not reductions", got)
	}
}

func TestReduceChangedDoesNotCountConflicts(t *testing.T) {
	s := newShardedMapN[float64](1)
	s.Set(3, 1)
	ResetConflicts()
	contend(t, s, func() {
		s.ReduceChanged(3, 2, func(a, b float64) float64 { return a + b })
	})
	if got := ConflictCount(); got != 0 {
		t.Errorf("contended sync-phase ReduceChanged counted %d conflicts", got)
	}
	if v, _ := s.Get(3); v != 3 {
		t.Errorf("ReduceChanged result = %v; want 3", v)
	}
}

func TestSharedReduceCountsConflicts(t *testing.T) {
	s := newShardedMapN[float64](1)
	ResetConflicts()
	contend(t, s, func() {
		s.Reduce(5, 1, func(a, b float64) float64 { return a + b })
	})
	if got := ConflictCount(); got < 1 {
		t.Errorf("contended compute-phase Reduce counted %d conflicts; want >= 1", got)
	}
}

func TestUncontendedReduceCountsNothing(t *testing.T) {
	s := newShardedMap[float64]()
	ResetConflicts()
	for k := graph.NodeID(0); k < 100; k++ {
		s.Reduce(k, 1, func(a, b float64) float64 { return a + b })
	}
	if got := ConflictCount(); got != 0 {
		t.Errorf("uncontended reduces counted %d conflicts", got)
	}
}

func TestConflictWindowExclusive(t *testing.T) {
	w := BeginConflictWindow()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested BeginConflictWindow did not panic")
			}
		}()
		BeginConflictWindow()
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("ResetConflicts inside an open window did not panic")
			}
		}()
		ResetConflicts()
	}()

	conflictCount.Add(4)
	if got := w.End(); got != 4 {
		t.Errorf("window counted %d conflicts; want 4", got)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("double End did not panic")
			}
		}()
		w.End()
	}()

	// The counter is free again after End.
	w2 := BeginConflictWindow()
	if got := w2.End(); got != 0 {
		t.Errorf("fresh window counted %d conflicts; want 0", got)
	}
}

func TestConflictWindowsFromRacingHarnesses(t *testing.T) {
	// Two harness measurements racing to open a window: exactly one wins,
	// the loser panics instead of silently corrupting the winner's count.
	const racers = 8
	var wins, panics int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					mu.Lock()
					panics++
					mu.Unlock()
				}
			}()
			w := BeginConflictWindow()
			time.Sleep(time.Millisecond)
			w.End()
			mu.Lock()
			wins++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if wins < 1 {
		t.Error("no racer ever held the conflict window")
	}
	if wins+panics != racers {
		t.Errorf("wins(%d) + panics(%d) != racers(%d)", wins, panics, racers)
	}
}
