package npm

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// fullMap is the Kimbap node-property map with all three runtime
// optimizations from §4.2:
//
//   - GAR: master properties live in a dense vector indexed by
//     (global - masterLo); requested remote properties live in parallel
//     sorted arrays read by binary search (Figure 6).
//   - CF: Reduce goes to per-thread maps; ReduceSync combines them with a
//     disjoint key-range pass per thread, so no locks or CAS are ever
//     needed (Figure 7).
//   - SGR: one partial-aggregate message per host pair per round; partial
//     values are gathered and reduced onto master values by key-range
//     parallel loops.
//
// Pinned mirrors (PM) additionally materialize mirror proxies and replace
// request/response traffic with one-way positional broadcasts carrying a
// dirty bitmask and only the changed values (Gluon's metadata
// minimization, exploiting the partition's temporal invariance).
type fullMap[V comparable] struct {
	h     *runtime.Host
	hp    *partition.HostPartition
	op    ReduceOp[V]
	codec Codec[V]
	wire  comm.WireFormat // payload encoding (see wire.go)

	masterLo graph.NodeID
	masterHi graph.NodeID
	masters  []V
	// masterDirty tracks masters changed since the last broadcast, indexed
	// by master-local ID.
	masterDirty *runtime.Bitset

	pinned  bool
	mirrors []V // indexed by (local - NumMasters) when pinned

	// Pull-round state (see pull.go). mirrorsFresh tracks whether pinned
	// mirrors reflect the current master values — true right after a
	// broadcast, false once ReduceSync (or a pull round itself) changes
	// masters behind them. It is read and written only at phase
	// boundaries on the program goroutine, never from operator threads.
	// pullSnap is the reusable round-start snapshot of the master vector
	// that gives pull rounds Jacobi semantics regardless of scan order.
	mirrorsFresh bool
	pullSnap     []V

	// Async apply-path state (see async.go), allocated when an
	// AsyncNodeHandle attaches. mirrorDirty marks pinned mirrors whose
	// value a drain changed in place; ReduceSync flushes them to their
	// owners as whole-value partials (sound only for idempotent ops,
	// which the handle enforces). The counters are the policy engine's
	// contention telemetry.
	mirrorDirty *runtime.Bitset
	casApplied  atomic.Int64
	casRetries  atomic.Int64

	reqBits   *runtime.Bitset // global IDs requested this round
	cacheKeys []graph.NodeID  // sorted requested remote IDs
	cacheVals []V
	// cacheSlot is the dense global→cache translation table (DESIGN.md
	// §14): cacheSlot[g] = index into cacheVals + 1, 0 for uncached. It
	// replaces the per-Read binary search over cacheKeys with one array
	// index. Allocated lazily on the first non-empty cache (request-free
	// algorithms never pay for it) and retained across rounds — the
	// ReduceSync cache drop zeroes only the previously cached keys'
	// slots, O(cache) not O(n).
	cacheSlot []int32

	tl       []*bucketedMap[V] // per-thread reduce maps, bucketed by combine range
	combined []*localMap[V]    // per-thread combine outputs (reused)

	// Persistent sync-phase buffers, reused across BSP rounds so warm
	// ReduceSync/BroadcastSync rounds allocate nothing (see the comm
	// package's buffer-ownership contract).
	cells     [][][][]byte // [tid][dest][receiver gather thread] encoded entries
	cellN     [][][]int    // [tid][dest][rt] entry counts, for the v2s form choice
	sendBufs  [2][][]byte  // per-dest reduce payloads, double-buffered
	sendGen   int
	bcastBufs [2][][]byte // per-dest broadcast payloads, double-buffered
	bcastGen  int
	recvIn    [][]byte // receive slice for the exchanges (one round at a time)

	// Scratch for assembling one v2s dense-form section at a time
	// (reducePayload runs destinations sequentially): a bitmap over the
	// section's key range and value slots indexed by base-relative key.
	denseMask []byte
	denseVals []byte

	// frontier, when attached via SetFrontier, receives next-round
	// activations for every local proxy whose value changes during a sync
	// phase: masters from applyToMaster, pinned mirrors from broadcast
	// decode. Activation is one atomic bit set (conflict free).
	frontier *runtime.Frontier

	// Encode state for the overlapped scatter (comm.ExchangeFunc): the
	// closures are bound once at construction so hot rounds allocate
	// nothing; the *Out fields point them at the current round's
	// double-buffer generation.
	encodeReduce func(to int) []byte
	encodeBcast  func(to int) []byte
	reduceOut    [][]byte
	bcastOut     [][]byte
	bcastFull    bool

	destLo []graph.NodeID // per-host global master-range start
	destN  []uint64       // per-host master count
	// secBase[o][rt] = sectionLo(rt, threads, destN[o]), the v2 key base of
	// host o's gather-thread-rt section. Precomputed because the combine
	// pass needs it per surviving entry and sectionLo costs a 64-bit
	// divide.
	secBase [][]uint64

	updated       atomic.Bool
	updatedGlobal bool

	trackReads bool
	readMaster atomic.Int64
	readRemote atomic.Int64
}

func newFullMap[V comparable](opts Options[V]) *fullMap[V] {
	h := opts.Host
	lo, hi := h.HP.MasterRangeGlobal()
	m := &fullMap[V]{
		h:           h,
		hp:          h.HP,
		op:          opts.Op,
		codec:       opts.Codec,
		masterLo:    lo,
		masterHi:    hi,
		masters:     make([]V, hi-lo),
		masterDirty: runtime.NewBitset(int(hi - lo)),
		reqBits:     runtime.NewBitset(h.HP.NumGlobalNodes()),
		tl:          make([]*bucketedMap[V], h.Threads),
		combined:    make([]*localMap[V], h.Threads),
	}
	m.wire = resolveWire(opts.Wire, h.Wire)
	m.encodeReduce = m.reducePayload
	m.encodeBcast = m.bcastPayload
	m.trackReads = opts.TrackReads
	numGlobal := h.HP.NumGlobalNodes()
	for t := range m.tl {
		m.tl[t] = newBucketedMap[V](h.Threads, numGlobal)
		m.combined[t] = newLocalMap[V]()
	}
	numHosts := h.HP.NumHosts()
	m.cells = make([][][][]byte, h.Threads)
	m.cellN = make([][][]int, h.Threads)
	for t := range m.cells {
		m.cells[t] = make([][][]byte, numHosts)
		m.cellN[t] = make([][]int, numHosts)
		for o := range m.cells[t] {
			m.cells[t][o] = make([][]byte, h.Threads)
			m.cellN[t][o] = make([]int, h.Threads)
		}
	}
	for g := range m.sendBufs {
		m.sendBufs[g] = make([][]byte, numHosts)
		m.bcastBufs[g] = make([][]byte, numHosts)
	}
	m.recvIn = make([][]byte, numHosts)
	m.destLo = make([]graph.NodeID, numHosts)
	m.destN = make([]uint64, numHosts)
	m.secBase = make([][]uint64, numHosts)
	maxRange := uint64(0)
	for o := 0; o < numHosts; o++ {
		olo, ohi := h.HP.MasterRangeOf(o)
		m.destLo[o] = olo
		m.destN[o] = uint64(ohi - olo)
		m.secBase[o] = make([]uint64, h.Threads)
		for rt := range m.secBase[o] {
			m.secBase[o][rt] = sectionLo(rt, uint64(h.Threads), m.destN[o])
		}
		for rt := 0; rt < h.Threads; rt++ {
			end := m.destN[o]
			if rt+1 < h.Threads {
				end = m.secBase[o][rt+1]
			}
			if r := end - m.secBase[o][rt]; r > maxRange {
				maxRange = r
			}
		}
	}
	m.denseMask = make([]byte, (maxRange+7)/8)
	m.denseVals = make([]byte, maxRange*uint64(m.codec.Size()))
	return m
}

// SetFrontier attaches a frontier whose *next* set receives an activation
// for every local proxy whose value changes during ReduceSync (masters) or
// a broadcast (pinned mirrors). Activations index the host-local ID space:
// masters at [0, NumMasters), mirrors above. Pass nil to detach.
func (m *fullMap[V]) SetFrontier(f *runtime.Frontier) { m.frontier = f }

// Read implements Map.
func (m *fullMap[V]) Read(n graph.NodeID) V {
	if n >= m.masterLo && n < m.masterHi {
		if m.trackReads {
			m.readMaster.Add(1)
		}
		return m.masters[n-m.masterLo]
	}
	if m.pinned {
		if local, ok := m.hp.LocalID(n); ok && !m.hp.IsMaster(local) {
			if m.trackReads {
				m.readRemote.Add(1)
			}
			return m.mirrors[int(local)-m.hp.NumMasters]
		}
	}
	if m.cacheSlot != nil {
		if s := m.cacheSlot[n]; s != 0 {
			if m.trackReads {
				m.readRemote.Add(1)
			}
			return m.cacheVals[s-1]
		}
	}
	panic(fmt.Sprintf("npm: host %d read of unmaterialized node %d (missing Request?)",
		m.h.Rank, n))
}

// Reduce implements Map: the CF compute-phase reduce into the calling
// thread's private map (Figure 7 left side).
//
//kimbap:conflictfree
func (m *fullMap[V]) Reduce(tid int, n graph.NodeID, v V) {
	m.tl[tid].Reduce(n, v, m.op.Combine)
}

// Set implements Map.
func (m *fullMap[V]) Set(n graph.NodeID, v V) {
	if n >= m.masterLo && n < m.masterHi {
		m.masters[n-m.masterLo] = v
		return
	}
	if m.pinned {
		if local, ok := m.hp.LocalID(n); ok && !m.hp.IsMaster(local) {
			m.mirrors[int(local)-m.hp.NumMasters] = v
		}
	}
}

// InitSync implements Map. GAR sets master values in place, so there is
// nothing to publish — but masters may now differ from any pinned mirrors,
// so a pull round needs a broadcast first.
func (m *fullMap[V]) InitSync() { m.mirrorsFresh = false }

// Request implements Map.
func (m *fullMap[V]) Request(n graph.NodeID) {
	if n >= m.masterLo && n < m.masterHi {
		return // master: always materialized
	}
	if m.pinned {
		if local, ok := m.hp.LocalID(n); ok && !m.hp.IsMaster(local) {
			return // pinned mirror: kept fresh by broadcasts
		}
	}
	m.reqBits.Set(int(n))
}

// RequestSync implements Map (§4.1 request-sync phase).
func (m *fullMap[V]) RequestSync() {
	m.h.TimeRequest(func() {
		numHosts := m.hp.NumHosts()
		self := m.h.Rank

		// Drain the request bitset into per-owner ID lists. ForEachSet
		// ascends and owner ranges ascend, so each list is sorted and the
		// host-order concatenation of all lists is globally sorted.
		reqIDs := make([][]graph.NodeID, numHosts)
		m.reqBits.ForEachSet(func(i int) {
			o := m.hp.Owner(graph.NodeID(i))
			reqIDs[o] = append(reqIDs[o], graph.NodeID(i))
		})
		m.reqBits.Clear()

		// One request message per peer: the ID list, tagged and (under v2)
		// delta-varint encoded — the lists are sorted, so deltas are small.
		out := make([][]byte, numHosts)
		for o, ids := range reqIDs {
			if o == self || len(ids) == 0 {
				continue
			}
			out[o] = appendIDList(make([]byte, 0, 1+4*len(ids)), m.wire, ids)
		}
		in := comm.Exchange(m.h.EP, comm.TagRequest, out)

		// Serve incoming requests positionally: the response carries only
		// values, in the requester's ID order.
		resp := make([][]byte, numHosts)
		for o := 0; o < numHosts; o++ {
			if o == self {
				continue
			}
			buf := make([]byte, 0, len(in[o])/4*m.codec.Size())
			dec := decodeIDList(in[o])
			for id, ok := dec.next(); ok; id, ok = dec.next() {
				buf = m.codec.Append(buf, m.masters[id-m.masterLo])
			}
			resp[o] = buf
		}
		got := comm.Exchange(m.h.EP, comm.TagResponse, resp)

		// Materialize the remote cache: keys are our concatenated request
		// lists (sorted by construction), values decode positionally.
		total := 0
		for o, ids := range reqIDs {
			if o != self {
				total += len(ids)
			}
		}
		newKeys := make([]graph.NodeID, 0, total)
		newVals := make([]V, 0, total)
		for o := 0; o < numHosts; o++ {
			if o == self {
				continue
			}
			payload := got[o]
			for _, id := range reqIDs[o] {
				var v V
				v, payload = m.codec.Read(payload)
				newKeys = append(newKeys, id)
				newVals = append(newVals, v)
			}
		}
		// Successive RequestSyncs within one round accumulate: merge the
		// fresh entries with any already-cached ones (both sorted). Fresh
		// values win on overlap. The cache is dropped at ReduceSync.
		m.mergeCache(newKeys, newVals)
	})
}

// mergeCache merges sorted (keys, vals) into the sorted remote cache,
// preferring the new values on duplicate keys, then refreshes the dense
// slot table. The merged key set is a superset of the old one, so
// rewriting every merged key's slot also overwrites all stale slots.
func (m *fullMap[V]) mergeCache(keys []graph.NodeID, vals []V) {
	defer m.rebuildCacheSlots()
	if len(m.cacheKeys) == 0 {
		m.cacheKeys, m.cacheVals = keys, vals
		return
	}
	if len(keys) == 0 {
		return
	}
	mk := make([]graph.NodeID, 0, len(m.cacheKeys)+len(keys))
	mv := make([]V, 0, len(m.cacheVals)+len(vals))
	i, j := 0, 0
	for i < len(m.cacheKeys) && j < len(keys) {
		switch {
		case m.cacheKeys[i] < keys[j]:
			mk = append(mk, m.cacheKeys[i])
			mv = append(mv, m.cacheVals[i])
			i++
		case m.cacheKeys[i] > keys[j]:
			mk = append(mk, keys[j])
			mv = append(mv, vals[j])
			j++
		default:
			mk = append(mk, keys[j])
			mv = append(mv, vals[j])
			i++
			j++
		}
	}
	mk = append(mk, m.cacheKeys[i:]...)
	mv = append(mv, m.cacheVals[i:]...)
	mk = append(mk, keys[j:]...)
	mv = append(mv, vals[j:]...)
	m.cacheKeys, m.cacheVals = mk, mv
}

// rebuildCacheSlots points the dense slot table at the current cache
// arrays. Runs once per RequestSync, after which every Read and async
// Load is a single index — the sort.Search this table replaced was on
// the per-access hot path.
func (m *fullMap[V]) rebuildCacheSlots() {
	if len(m.cacheKeys) == 0 {
		return
	}
	if m.cacheSlot == nil {
		m.cacheSlot = make([]int32, m.hp.NumGlobalNodes())
	}
	for i, k := range m.cacheKeys {
		m.cacheSlot[k] = int32(i) + 1
	}
}

// ReduceSync implements Map (§4.1 reduce-sync phase with the Figure 7
// conflict-free combine): disjoint key ranges make the combine, apply,
// and gather-reduce passes lock free end to end, and range bucketing makes
// them work-linear — no pass visits an entry or payload byte more than
// once.
//
//kimbap:conflictfree
func (m *fullMap[V]) ReduceSync() {
	m.h.TimeComm(func() {
		numHosts := m.hp.NumHosts()
		self := m.h.Rank
		threads := m.h.Threads

		// Combine pass: thread t owns global key range [t*N/T, (t+1)*N/T),
		// which is exactly bucket t of every thread-local map — it drains
		// those buckets without scanning or filtering the rest. Ranges are
		// disjoint, so no two threads touch the same key: conflict free by
		// construction. Entries owned by this host are applied to the
		// master vector directly (also conflict free, since a master key
		// lives in exactly one range). Surviving entries are encoded once,
		// into the cell addressed by (owner host, owner's gather-thread
		// range), so receivers can hand each section to exactly one gather
		// thread.
		m.h.ParFor(threads, func(_, t int) {
			out := m.combined[t]
			out.Reset()
			for _, src := range m.tl {
				src.buckets[t].ForEach(func(k graph.NodeID, v V) {
					out.Reduce(k, v, m.op.Combine)
				})
			}
			cells := m.cells[t]
			counts := m.cellN[t]
			for o := range cells {
				for rt := range cells[o] {
					cells[o][rt] = cells[o][rt][:0]
					counts[o][rt] = 0
				}
			}
			// Async drains CAS pinned mirrors in place instead of
			// buffering reduces; flush those values to their owners here,
			// folded into this thread's combine output so they ride the
			// normal cells path. Each dirty mirror belongs to exactly one
			// thread's key range, so the pass stays conflict free.
			if m.mirrorDirty != nil {
				numGlobal := uint64(m.hp.NumGlobalNodes())
				m.mirrorDirty.ForEachSet(func(slot int) {
					k := m.hp.GlobalID(graph.NodeID(slot + m.hp.NumMasters))
					if rangeBucket(k, uint64(threads), numGlobal) != t {
						return
					}
					out.Reduce(k, m.mirrors[slot], m.op.Combine)
				})
			}
			wireV2 := m.wire == comm.WireV2
			destLo, destN, secBase := m.destLo, m.destN, m.secBase
			out.ForEach(func(k graph.NodeID, v V) {
				o := m.hp.Owner(k)
				if o == self {
					m.applyToMaster(k, v)
					return
				}
				rel := uint64(k - destLo[o])
				rt := rangeBucket(graph.NodeID(rel), uint64(threads), destN[o])
				var buf []byte
				if wireV2 {
					// v2: key relative to the section's range base — one
					// byte for typical per-host master ranges.
					buf = comm.AppendUvarint(cells[o][rt], rel-secBase[o][rt])
				} else {
					buf = comm.AppendUint32(cells[o][rt], uint32(k))
				}
				cells[o][rt] = m.codec.Append(buf, v)
				counts[o][rt]++
			})
		})
		for _, t := range m.tl {
			t.Reset()
		}
		if m.mirrorDirty != nil {
			m.mirrorDirty.Clear()
		}

		// Scatter: one message per host pair, with compute/comm overlap —
		// ExchangeFunc assembles destination o's payload and hands it to
		// Send before destination o+1's encode starts, so each frame is in
		// flight while the next is still being built. The payload framing
		// (tag, section lengths, sections in the receiver's gather-thread
		// order) lives in reducePayload; send buffers are double-buffered
		// per the comm buffer-ownership contract.
		m.reduceOut = m.sendBufs[m.sendGen]
		m.sendGen ^= 1
		in := comm.ExchangeFunc(m.h.EP, comm.TagReduce, m.encodeReduce, m.recvIn)

		// Gather-reduce: gather thread t decodes exactly the sections the
		// senders addressed to its master range — each received byte is
		// decoded once, by one thread, with no range filtering. The format
		// tag on each payload says how its keys decode, so v1 and v2
		// senders can coexist in one cluster.
		m.h.ParFor(threads, func(_, t int) {
			base := m.masterLo + graph.NodeID(
				sectionLo(t, uint64(threads), uint64(m.masterHi-m.masterLo)))
			for o := 0; o < numHosts; o++ {
				if o == self || len(in[o]) == 0 {
					continue
				}
				sec, kind := reduceSection(in[o], t, threads)
				switch kind {
				case secV2S:
					m.decodeSectionV2S(sec, base)
				case secV2:
					for len(sec) > 0 {
						var d uint64
						d, sec = comm.ReadUvarint(sec)
						var v V
						v, sec = m.codec.Read(sec)
						m.applyToMaster(base+graph.NodeID(d), v)
					}
				case secV1:
					for len(sec) > 0 {
						var id uint32
						id, sec = comm.ReadUint32(sec)
						var v V
						v, sec = m.codec.Read(sec)
						m.applyToMaster(graph.NodeID(id), v)
					}
				}
			}
		})

		// Cached remote properties are now stale (§4.1): drop them. The
		// slot table is cleared key by key — O(cache entries), and the
		// allocation survives for the next round's rebuild.
		if m.cacheSlot != nil {
			for _, k := range m.cacheKeys {
				m.cacheSlot[k] = 0
			}
		}
		m.cacheKeys = nil
		m.cacheVals = nil

		// Masters just moved; pinned mirrors no longer reflect them until
		// the next broadcast, so pull rounds are off the table (pull.go).
		m.mirrorsFresh = false
	})
}

// reducePayload assembles the reduce payload for destination o from the
// combine threads' cells. v1 frames a 1-byte tag, `threads` uint32 section
// lengths, then the sections in the receiver's gather-thread order (each
// section concatenates the combine threads' cells for that gather thread).
// v2-configured maps emit the v2s frame instead (see wire.go): a present
// bitmap skips empty sections, and each present section picks the smaller
// of the sparse and dense body forms. A round with nothing for o returns an
// empty payload, eliding tag and header. Called by ExchangeFunc once per
// destination, immediately before that destination's Send.
func (m *fullMap[V]) reducePayload(o int) []byte {
	threads := m.h.Threads
	out := m.reduceOut
	buf := out[o][:0]
	total := 0
	for rt := 0; rt < threads; rt++ {
		for t := 0; t < threads; t++ {
			total += len(m.cells[t][o][rt])
		}
	}
	if total == 0 {
		out[o] = buf
		return buf
	}
	if m.wire != comm.WireV2 {
		buf = append(buf, wireV1)
		for rt := 0; rt < threads; rt++ {
			sec := 0
			for t := 0; t < threads; t++ {
				sec += len(m.cells[t][o][rt])
			}
			buf = comm.AppendUint32(buf, uint32(sec))
		}
		for rt := 0; rt < threads; rt++ {
			for t := 0; t < threads; t++ {
				buf = append(buf, m.cells[t][o][rt]...)
			}
		}
		out[o] = buf
		return buf
	}

	// v2s. Header first: the present bitmap, then one uvarint body length
	// per present section in ascending rt order. Both the length and the
	// sparse/dense choice are recomputed identically in the body loop; both
	// are deterministic functions of the (order-independent) per-section
	// entry count and byte size, so payload sizes are stable across runs.
	vs := m.codec.Size()
	buf = append(buf, wireV2S)
	pm := len(buf)
	for i := 0; i < (threads+7)/8; i++ {
		buf = append(buf, 0)
	}
	for rt := 0; rt < threads; rt++ {
		n, secBytes := 0, 0
		for t := 0; t < threads; t++ {
			n += m.cellN[t][o][rt]
			secBytes += len(m.cells[t][o][rt])
		}
		if n == 0 {
			continue
		}
		buf[pm+rt/8] |= 1 << (uint(rt) % 8)
		sparseLen, denseLen, _ := m.sectionForms(o, rt, n, secBytes, vs)
		body := sparseLen
		if denseLen < sparseLen {
			body = denseLen
		}
		buf = comm.AppendUvarint(buf, uint64(1+body))
	}
	for rt := 0; rt < threads; rt++ {
		n, secBytes := 0, 0
		for t := 0; t < threads; t++ {
			n += m.cellN[t][o][rt]
			secBytes += len(m.cells[t][o][rt])
		}
		if n == 0 {
			continue
		}
		sparseLen, denseLen, mb := m.sectionForms(o, rt, n, secBytes, vs)
		if sparseLen <= denseLen {
			buf = append(buf, sectionSparse)
			buf = comm.AppendUvarint(buf, uint64(n))
			for t := 0; t < threads; t++ {
				buf = append(buf, m.cells[t][o][rt]...)
			}
			continue
		}
		// Dense: scatter the unsorted cells into value slots indexed by
		// base-relative key, then emit the bitmap and the occupied slots in
		// ascending key order.
		buf = append(buf, sectionDense)
		buf = comm.AppendUvarint(buf, uint64(mb))
		mask := m.denseMask[:mb]
		for i := range mask {
			mask[i] = 0
		}
		for t := 0; t < threads; t++ {
			sec := m.cells[t][o][rt]
			for len(sec) > 0 {
				var d uint64
				d, sec = comm.ReadUvarint(sec)
				copy(m.denseVals[int(d)*vs:], sec[:vs])
				sec = sec[vs:]
				mask[d/8] |= 1 << (uint(d) % 8)
			}
		}
		buf = append(buf, mask...)
		for bi, mbyte := range mask {
			for mbyte != 0 {
				d := bi*8 + bits.TrailingZeros8(mbyte)
				mbyte &= mbyte - 1
				buf = append(buf, m.denseVals[d*vs:(d+1)*vs]...)
			}
		}
	}
	out[o] = buf
	return buf
}

// sectionForms returns the encoded body sizes (excluding the form byte) of
// the sparse and dense forms for section (o, rt), plus the dense bitmap
// length. n is the entry count, secBytes the total cell bytes (uvarint keys
// + values), vs the value width.
func (m *fullMap[V]) sectionForms(o, rt, n, secBytes, vs int) (sparseLen, denseLen, mb int) {
	end := m.destN[o]
	if rt+1 < m.h.Threads {
		end = m.secBase[o][rt+1]
	}
	mb = int(end-m.secBase[o][rt]+7) / 8
	sparseLen = uvLen(uint64(n)) + secBytes
	denseLen = uvLen(uint64(mb)) + mb + n*vs
	return sparseLen, denseLen, mb
}

// decodeSectionV2S decodes one v2s section addressed to this gather thread
// and applies its entries to the master range starting at base.
func (m *fullMap[V]) decodeSectionV2S(sec []byte, base graph.NodeID) {
	if len(sec) == 0 {
		return
	}
	form := sec[0]
	sec = sec[1:]
	if form == sectionSparse {
		var n uint64
		n, sec = comm.ReadUvarint(sec)
		for i := uint64(0); i < n; i++ {
			var d uint64
			d, sec = comm.ReadUvarint(sec)
			var v V
			v, sec = m.codec.Read(sec)
			m.applyToMaster(base+graph.NodeID(d), v)
		}
		return
	}
	var mb uint64
	mb, sec = comm.ReadUvarint(sec)
	mask := sec[:mb]
	sec = sec[mb:]
	for bi, mbyte := range mask {
		for mbyte != 0 {
			d := bi*8 + bits.TrailingZeros8(mbyte)
			mbyte &= mbyte - 1
			var v V
			v, sec = m.codec.Read(sec)
			m.applyToMaster(base+graph.NodeID(d), v)
		}
	}
}

// applyToMaster merges v into the canonical master value, tracking change
// for IsUpdated and the broadcast dirty set. Only ever called from the
// thread owning k's key range, so the read-modify-write is race free.
//
//kimbap:conflictfree
func (m *fullMap[V]) applyToMaster(k graph.NodeID, v V) {
	i := k - m.masterLo
	old := m.masters[i]
	nv := m.op.Combine(old, v)
	if nv != old {
		m.masters[i] = nv
		m.updated.Store(true)
		m.masterDirty.Set(int(i))
		if m.frontier != nil {
			// Master local IDs coincide with master-range offsets, so i is
			// the frontier index. Only effective reduces activate: an input
			// that cannot change the value cannot seed further change.
			m.frontier.Activate(int(i))
		}
	}
}

// BroadcastSync implements Map: positional dirty-bitmask broadcast of
// changed master values to pinned mirrors.
func (m *fullMap[V]) BroadcastSync() {
	if !m.pinned {
		panic("npm: BroadcastSync without PinMirrors")
	}
	m.broadcast(false)
}

func (m *fullMap[V]) broadcast(full bool) {
	m.h.TimeBroadcast(func() {
		numHosts := m.hp.NumHosts()
		self := m.h.Rank

		// Overlapped scatter, like ReduceSync: destination o's payload goes
		// on the wire while o+1's is still being assembled. Every
		// destination's encode consults the dirty set, so it is cleared
		// only after the exchange. Buffers are double-buffered per the comm
		// buffer-ownership contract.
		m.bcastOut = m.bcastBufs[m.bcastGen]
		m.bcastGen ^= 1
		m.bcastFull = full
		in := comm.ExchangeFunc(m.h.EP, comm.TagBroadcast, m.encodeBcast, m.recvIn)
		m.masterDirty.Clear()

		for o := 0; o < numHosts; o++ {
			if o == self || len(in[o]) == 0 {
				continue
			}
			list := m.hp.MirrorsByOwner[o]
			payload := in[o]
			form := payload[0]
			payload = payload[1:]
			if form == sectionSparse {
				var n uint64
				n, payload = comm.ReadUvarint(payload)
				idx := uint64(0)
				for j := uint64(0); j < n; j++ {
					var d uint64
					d, payload = comm.ReadUvarint(payload)
					idx += d
					var v V
					v, payload = m.codec.Read(payload)
					m.setMirror(list[idx], v)
				}
				continue
			}
			maskLen := (len(list) + 7) / 8
			mask := payload[:maskLen]
			payload = payload[maskLen:]
			for i, local := range list {
				if mask[i/8]&(1<<(uint(i)%8)) != 0 {
					var v V
					v, payload = m.codec.Read(payload)
					m.setMirror(local, v)
				}
			}
		}

		// Every host just pushed its dirty masters to all mirror holders:
		// mirrors now reflect masters, the precondition pull rounds check.
		m.mirrorsFresh = true
	})
}

// setMirror stores a broadcast value into a pinned mirror slot, activating
// the mirror's frontier bit when the value actually changed. Mirrors by
// construction belong to disjoint owner lists, so decode loops never race.
func (m *fullMap[V]) setMirror(local graph.NodeID, v V) {
	slot := &m.mirrors[int(local)-m.hp.NumMasters]
	if *slot != v {
		*slot = v
		if m.frontier != nil {
			m.frontier.Activate(int(local))
		}
	}
}

// bcastPayload assembles the broadcast payload for destination o: a form
// byte, then either the dense positional form (a dirty bitmask over
// MasterSendTo[o] followed by the changed values in list order) or, when it
// encodes smaller, the sparse form (uvarint count, then delta-varint list
// indices each followed by its value). A round with nothing dirty for o
// returns an empty payload. The form choice is positional metadata only —
// the same in v1 and v2 — and each payload is self-describing, so mixed
// rounds interoperate. Called by ExchangeFunc once per destination.
func (m *fullMap[V]) bcastPayload(o int) []byte {
	list := m.hp.MasterSendTo[o]
	maskLen := (len(list) + 7) / 8
	out := m.bcastOut
	buf := out[o][:0]
	// First pass: count dirty entries and size the sparse index stream.
	n, idxBytes, prev := 0, 0, 0
	if m.bcastFull {
		n = len(list)
	} else {
		for i, local := range list {
			if m.masterDirty.Test(int(local)) {
				idxBytes += uvLen(uint64(i - prev))
				prev = i
				n++
			}
		}
	}
	if n == 0 {
		out[o] = buf
		return buf
	}
	if !m.bcastFull && uvLen(uint64(n))+idxBytes < maskLen {
		buf = append(buf, sectionSparse)
		buf = comm.AppendUvarint(buf, uint64(n))
		prev = 0
		for i, local := range list {
			if m.masterDirty.Test(int(local)) {
				buf = comm.AppendUvarint(buf, uint64(i-prev))
				prev = i
				buf = m.codec.Append(buf, m.masters[local])
			}
		}
		out[o] = buf
		return buf
	}
	buf = append(buf, sectionDense)
	for i := 0; i < maskLen; i++ {
		buf = append(buf, 0)
	}
	for i, local := range list {
		if m.bcastFull || m.masterDirty.Test(int(local)) {
			buf[1+i/8] |= 1 << (uint(i) % 8)
			buf = m.codec.Append(buf, m.masters[local])
		}
	}
	out[o] = buf
	return buf
}

// PinMirrors implements Map: materialize mirrors and fill them with a full
// broadcast. The mirror array is kept across unpin/pin cycles: besides
// saving the allocation, the stale values are exactly the mirrors' state at
// the last unpin, so the refresh broadcast's change detection (setMirror)
// activates the frontier only for mirrors whose master actually changed in
// between — the signal phase-seeded frontiers (ccHook) rely on.
func (m *fullMap[V]) PinMirrors() {
	if m.pinned {
		return
	}
	if m.mirrors == nil {
		m.mirrors = make([]V, m.hp.NumMirrors())
	}
	m.masterDirty.Clear()
	m.pinned = true
	m.broadcast(true)
}

// UnpinMirrors implements Map. Reads of non-masters while unpinned go
// through the request cache (m.pinned guards every mirror access), so the
// retained array can never serve stale values.
func (m *fullMap[V]) UnpinMirrors() {
	m.pinned = false
}

// ResetUpdated implements Map.
func (m *fullMap[V]) ResetUpdated() { m.updated.Store(false) }

// IsUpdated implements Map (collective OR across hosts).
func (m *fullMap[V]) IsUpdated() bool {
	m.h.TimeComm(func() {
		m.updatedGlobal = comm.AllReduceBool(m.h.EP, m.updated.Load())
	})
	return m.updatedGlobal
}

// ReadStats implements Map.
func (m *fullMap[V]) ReadStats() (master, remote int64) {
	return m.readMaster.Load(), m.readRemote.Load()
}
