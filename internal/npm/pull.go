package npm

import (
	"fmt"

	"kimbap/internal/graph"
)

// Pull-round access: the direction-optimized dense path (Beamer-style
// bottom-up) reads in-neighbors' values and combines into the reading
// vertex's OWN master slot. Ownership makes the writes conflict free —
// no atomics, no thread-local reduce maps — and because no host ever
// produces a value for a remote master, the round needs no ReduceSync at
// all: masters are updated in place and the round ends with a broadcast
// only.
//
// That is legal only under two preconditions, both checked here:
//
//  1. Every in-edge of every master is stored at that master's owner
//     (partition.HostPartition.PullEdgesComplete, a structural property
//     of the partition — IEC, or vacuously any single-host run). The
//     caller checks this before choosing pull; Pull itself only gates on
//     the map variant.
//  2. Pinned mirrors reflect the current master values ("mirror
//     freshness"): the values a pull body reads through mirrors must be
//     the ones the last collective published. The map tracks this with
//     mirrorsFresh (set by broadcasts, cleared by ReduceSync/InitSync);
//     BeginPullRound panics on violation, and the phaseorder analyzer
//     reports the same mistake statically.
//
// Reads during the round go through a round-start snapshot of the master
// vector, giving Jacobi semantics: the result is independent of vertex
// scan order and thread count, which is what makes pull rounds
// bit-identical to their push equivalents.

// PullHandle is the pull-round view of a fullMap. Obtain one with Pull;
// use it as: BeginPullRound, then Value/Apply from operator threads
// (via runtime.Host.ParForPull), then EndPullRound, then BroadcastSync
// on the underlying map.
type PullHandle[V comparable] struct {
	m *fullMap[V]
}

// Pull returns a pull-round handle for m, or false when the map variant
// does not support pull rounds (only the full map does — the baseline
// variants lack the dense master vector and pinned mirrors the path
// needs). Callers fall back to push on false, which is always legal.
func Pull[V comparable](m Map[V]) (*PullHandle[V], bool) {
	fm, ok := m.(*fullMap[V])
	if !ok {
		return nil, false
	}
	return &PullHandle[V]{m: fm}, true
}

// BeginPullRound starts a pull round: it verifies mirror freshness and
// snapshots the master vector. Call from the program goroutine at the
// round boundary, before dispatching the pull body.
func (p *PullHandle[V]) BeginPullRound() { p.m.beginPullRound() }

// EndPullRound closes the round. The map's masters now lead its mirrors;
// publish them with BroadcastSync before the next pull round.
func (p *PullHandle[V]) EndPullRound() { p.m.endPullRound() }

// Value returns the round-start value of the local proxy with host-local
// ID local: masters read the BeginPullRound snapshot, mirrors read the
// pinned mirror array (unchanged during the round — only a broadcast
// writes it). Panics for an unmaterialized proxy, which under a
// pull-complete partition cannot be an in-neighbor of a master.
//
//kimbap:conflictfree
func (p *PullHandle[V]) Value(local graph.NodeID) V { return p.m.pullValue(local) }

// Apply combines v into the master with master-local ID master (== its
// host-local ID), reporting whether the value changed. Conflict free by
// ownership: the pull body for a master is the only writer of its slot.
// Effective applies feed IsUpdated, the broadcast dirty set, and the
// attached frontier, exactly like a push-side reduce landing on a master.
//
//kimbap:conflictfree
func (p *PullHandle[V]) Apply(master graph.NodeID, v V) bool { return p.m.pullApply(master, v) }

// MirrorsFresh reports whether the map's pinned mirrors reflect its
// current master values (telemetry/testing; BeginPullRound enforces it).
func (p *PullHandle[V]) MirrorsFresh() bool { return p.m.mirrorsFresh }

func (m *fullMap[V]) beginPullRound() {
	if m.pinned && !m.mirrorsFresh {
		panic(fmt.Sprintf("npm: host %d pull round with stale mirrors "+
			"(ReduceSync or InitSync since the last BroadcastSync; broadcast before pulling)",
			m.h.Rank))
	}
	n := len(m.masters)
	if cap(m.pullSnap) < n {
		m.pullSnap = make([]V, n)
	}
	m.pullSnap = m.pullSnap[:n]
	copy(m.pullSnap, m.masters)
	// The round is about to move masters ahead of the mirrors.
	m.mirrorsFresh = false
}

func (m *fullMap[V]) endPullRound() {}

//kimbap:conflictfree
func (m *fullMap[V]) pullValue(local graph.NodeID) V {
	if int(local) < m.hp.NumMasters {
		return m.pullSnap[local]
	}
	if m.pinned {
		return m.mirrors[int(local)-m.hp.NumMasters]
	}
	panic(fmt.Sprintf("npm: host %d pull read of unmaterialized local proxy %d (unpinned mirrors?)",
		m.h.Rank, local))
}

//kimbap:conflictfree
func (m *fullMap[V]) pullApply(master graph.NodeID, v V) bool {
	old := m.masters[master]
	nv := m.op.Combine(old, v)
	if nv == old {
		return false
	}
	m.masters[master] = nv
	m.updated.Store(true)
	m.masterDirty.Set(int(master))
	if m.frontier != nil {
		m.frontier.Activate(int(master))
	}
	return true
}
