//go:build !race

package npm

const raceEnabled = false
