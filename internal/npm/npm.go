// Package npm implements Kimbap's core contribution: the distributed,
// concurrent node-property map (paper §3.1, §4). A Map stores one property
// value per graph node, distributed so that each host owns the canonical
// ("master") values for its partition's master nodes and caches remote
// values it has requested.
//
// The user-level API mirrors the paper's Figure 2 (Read, Reduce, Set); the
// low-level API used by compiler-generated code mirrors Figure 5
// (Request, RequestSync, ReduceSync, BroadcastSync, PinMirrors,
// UnpinMirrors, ResetUpdated, IsUpdated).
//
// Four runtime variants reproduce the §6.4 ablation:
//
//   - Full (SGR+CF+GAR): the Kimbap design. Graph-partition-aware
//     representation stores master properties in a dense vector and
//     requested remote properties in sorted parallel arrays read by binary
//     search (Figure 6); reductions go to per-thread maps that are combined
//     conflict-free by key-range passes (Figure 7); synchronization is one
//     scatter-gather-reduce message per host pair per round.
//   - SGRCF (SGR+CF): like Full but without GAR — properties are
//     distributed by modulo hash, and both owned and cached values live in
//     a generic hash map instead of the partition-aware layout.
//   - SGROnly: like SGRCF but all threads reduce into a single shared
//     sharded map under locks, exposing the thread conflicts CF avoids.
//   - MC: a Memcached-style client — values live in an external key-value
//     store with string keys; reductions are get/combine/CAS retry loops
//     and reads are served by mget-filled caches.
//
// All variants implement the same Map interface and run the same
// compiler-generated programs, exactly as in the paper's evaluation.
package npm

import (
	"fmt"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

// Variant selects the node-property map implementation (§6.4 ablation).
type Variant string

// Runtime variants evaluated in Figure 11.
const (
	Full    Variant = "sgr+cf+gar" // the Kimbap design
	SGRCF   Variant = "sgr+cf"     // no partition-aware representation
	SGROnly Variant = "sgr-only"   // shared concurrent map, thread conflicts
	MC      Variant = "memcached"  // external key-value store with CAS
	// Vite models the hand-optimized Louvain system's reduction strategy:
	// SGR with one host-wide shared map built behind a single lock (the
	// paper attributes Vite's gap to its single-threaded map construction
	// and shared-map atomics).
	Vite Variant = "vite"
)

// Variants lists the ablation variants in Figure 11 order (Vite is charted
// alongside them but is a baseline, not a Kimbap runtime variant).
var Variants = []Variant{MC, SGROnly, SGRCF, Full}

// Map is the node-property map API. Type parameter V is the property type;
// it must be comparable so the runtime can detect whether a reduction
// changed a value (the quiescence condition of KimbapWhile loops).
//
// Methods marked "collective" must be called by every host in the same
// order; they synchronize internally.
type Map[V comparable] interface {
	// Read returns the property value of the given global node. The value
	// must be locally materialized: a master value, a pinned mirror value,
	// or a remote value requested in the preceding request phase. Reading
	// an unmaterialized node panics, which surfaces missing Request bugs.
	Read(n graph.NodeID) V

	// Reduce merges v into node n's property using the map's reduction
	// operator. tid is the calling worker thread's index from ParFor; the
	// Full and SGRCF variants use it to select the conflict-free
	// thread-local map. The merged value becomes visible only after
	// ReduceSync (except in the MC variant, which reduces through the
	// external store immediately).
	Reduce(tid int, n graph.NodeID, v V)

	// Set assigns an initial value. It is meant for initialization only
	// and writes whatever proxies of n are materialized on this host.
	Set(n graph.NodeID, v V)

	// InitSync publishes Set values to their owning hosts. The Full
	// variant needs no publication (masters are set in place, per the
	// graph-partition-aware layout) and treats this as a no-op; the
	// hash-distributed variants buffer Sets for nodes whose hash owner is
	// elsewhere and flush them here. Collective. Call once after the
	// initialization loop, before the first read or reduce.
	InitSync()

	// Request marks node n's property for retrieval in the next
	// RequestSync. Requests are de-duplicated with a concurrent bitset.
	// Requesting a master or pinned mirror is a no-op.
	Request(n graph.NodeID)

	// RequestSync exchanges requests and responses with all hosts and
	// materializes the requested remote values for reading. Collective.
	RequestSync()

	// ReduceSync combines thread-local reductions, scatters partial values
	// to owner hosts, gathers and applies them to master values, and drops
	// the (now stale) remote cache. Collective.
	ReduceSync()

	// BroadcastSync pushes updated master values to pinned mirrors on
	// other hosts. Collective; only meaningful after PinMirrors.
	BroadcastSync()

	// PinMirrors materializes this host's mirror proxies in the map and
	// fills them with current master values (a full broadcast).
	// Collective.
	PinMirrors()

	// UnpinMirrors drops mirror values from the map.
	UnpinMirrors()

	// ResetUpdated clears the update flag at the start of a BSP round.
	ResetUpdated()

	// IsUpdated reports whether any reduction changed any master value
	// since the last ResetUpdated, across all hosts. Collective.
	IsUpdated() bool

	// ReadStats returns how many reads were served by master values vs
	// remote (mirror or requested) values, for the §4.2 locality study.
	ReadStats() (master, remote int64)
}

// FrontierSink is implemented by map variants that can drive frontier
// activation from their sync phases: after attaching a frontier, every
// local proxy (master or pinned mirror) whose value changes during
// ReduceSync or a broadcast is activated in the frontier's next set.
// Frontier-driven algorithms type-assert for it and fall back to dense
// rounds when the variant does not implement it.
type FrontierSink interface {
	SetFrontier(f *runtime.Frontier)
}

// Options configure map construction.
type Options[V comparable] struct {
	// Host is the constructing host's runtime context.
	Host *runtime.Host
	// Op is the reduction operator (associative and commutative).
	Op ReduceOp[V]
	// Codec serializes values for the wire.
	Codec Codec[V]
	// Variant selects the implementation; zero value means Full.
	Variant Variant
	// Wire selects the sync-payload encoding (see wire.go): WireV1 is the
	// raw fixed-width format, WireV2 the compact delta-varint one. The zero
	// value (WireAuto) defers to the host's cluster-wide setting, then to
	// WireV2. Receivers decode by per-payload format tag, so maps with
	// different Wire settings interoperate.
	Wire comm.WireFormat
	// Store supplies the external key-value cluster; required for MC.
	Store MCStore
	// TrackReads enables the §4.2 read-locality counters. Off by default:
	// two atomic increments per property read are measurable on the hot
	// path.
	TrackReads bool
}

// New constructs a node-property map of the configured variant.
func New[V comparable](opts Options[V]) Map[V] {
	if opts.Host == nil {
		panic("npm: Options.Host is required")
	}
	if opts.Op.Combine == nil {
		panic("npm: Options.Op is required")
	}
	if opts.Codec == nil {
		panic("npm: Options.Codec is required")
	}
	switch opts.Variant {
	case Full, "":
		return newFullMap(opts)
	case SGRCF:
		return newHashMapVariant(opts, false, 16)
	case SGROnly:
		return newHashMapVariant(opts, true, 16)
	case Vite:
		return newHashMapVariant(opts, true, 1)
	case MC:
		return newMCMap(opts)
	default:
		panic(fmt.Sprintf("npm: unknown variant %q", opts.Variant))
	}
}

// ReduceOp is an associative, commutative reduction operator with an
// optional identity element (used by partitioning-invariant optimizations
// that reset mirrors instead of broadcasting).
type ReduceOp[V comparable] struct {
	Name        string
	Combine     func(a, b V) V
	Identity    V
	HasIdentity bool
	// Idempotent marks operators where Combine(a, a) == a (min, max but
	// not sum). The asynchronous CAS apply path requires it: an in-place
	// mirror update is later flushed as a whole-value partial, so the
	// owner may combine a contribution that already includes its own
	// master value — harmless exactly when the operator is idempotent.
	Idempotent bool
}

// MinNodeID is the min operator over node IDs (CC algorithms).
func MinNodeID() ReduceOp[graph.NodeID] {
	return ReduceOp[graph.NodeID]{
		Name:        "min",
		Combine:     func(a, b graph.NodeID) graph.NodeID { return min(a, b) },
		Identity:    graph.InvalidNode,
		HasIdentity: true,
		Idempotent:  true,
	}
}

// MaxNodeID is the max operator over node IDs.
func MaxNodeID() ReduceOp[graph.NodeID] {
	return ReduceOp[graph.NodeID]{
		Name:        "max",
		Combine:     func(a, b graph.NodeID) graph.NodeID { return max(a, b) },
		Identity:    0,
		HasIdentity: true,
		Idempotent:  true,
	}
}

// SumFloat64 is the + operator over float64 (modularity accumulation).
func SumFloat64() ReduceOp[float64] {
	return ReduceOp[float64]{
		Name:        "sum",
		Combine:     func(a, b float64) float64 { return a + b },
		Identity:    0,
		HasIdentity: true,
	}
}

// MinFloat64 is the min operator over float64.
func MinFloat64() ReduceOp[float64] {
	return ReduceOp[float64]{
		Name:       "min",
		Combine:    func(a, b float64) float64 { return min(a, b) },
		Idempotent: true,
	}
}

// Overwrite keeps the most recently reduced value. It is associative and
// commutative only when all concurrent writers agree, which holds for the
// algorithm phases that use it (e.g. publishing per-node decisions).
func Overwrite[V comparable]() ReduceOp[V] {
	return ReduceOp[V]{
		Name:    "overwrite",
		Combine: func(_, b V) V { return b },
	}
}
