package npm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kimbap/internal/graph"
)

func TestLocalMapBasics(t *testing.T) {
	m := newLocalMap[uint64]()
	if m.Len() != 0 {
		t.Fatal("new map not empty")
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("empty map returned a value")
	}
	m.Set(5, 50)
	m.Set(7, 70)
	if v, ok := m.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	m.Set(5, 55)
	if v, _ := m.Get(5); v != 55 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestLocalMapReduce(t *testing.T) {
	m := newLocalMap[uint64]()
	sum := func(a, b uint64) uint64 { return a + b }
	m.Reduce(3, 10, sum)
	m.Reduce(3, 5, sum)
	if v, _ := m.Get(3); v != 15 {
		t.Fatalf("reduce sum = %d, want 15", v)
	}
}

func TestLocalMapGrowth(t *testing.T) {
	m := newLocalMap[int]()
	const n = 10000
	for i := 0; i < n; i++ {
		m.Set(graph.NodeID(i*7), i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(graph.NodeID(i * 7)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v after growth", i*7, v, ok)
		}
	}
}

// TestLocalMapGrowKeepsUsedCapacity pins the growth path's buffer reuse:
// grow must rehash into the existing insertion-order slice (truncated in
// place), not discard it and re-allocate append by append.
func TestLocalMapGrowKeepsUsedCapacity(t *testing.T) {
	m := newLocalMap[int]()
	// Fill to just below the 70% load threshold of the initial capacity.
	n := localMapMinCap * 7 / 10
	for i := 0; i < n; i++ {
		m.Set(graph.NodeID(i), i)
	}
	if len(m.keys) != localMapMinCap {
		t.Fatalf("map grew early: capacity %d after %d inserts", len(m.keys), n)
	}
	before := &m.used[0]
	m.Set(graph.NodeID(n), n) // crosses the threshold: triggers grow
	if len(m.keys) != 2*localMapMinCap {
		t.Fatalf("expected growth to %d slots, got %d", 2*localMapMinCap, len(m.keys))
	}
	if &m.used[0] != before {
		t.Error("grow re-allocated the insertion-order slice instead of reusing it")
	}
	// Growth must preserve contents and insertion order.
	var order []graph.NodeID
	m.ForEach(func(k graph.NodeID, v int) {
		order = append(order, k)
		if int(k) != v {
			t.Errorf("entry %d holds %d after growth", k, v)
		}
	})
	if len(order) != n+1 {
		t.Fatalf("ForEach visited %d entries, want %d", len(order), n+1)
	}
	for i, k := range order {
		if k != graph.NodeID(i) {
			t.Fatalf("insertion order broken at %d: got key %d", i, k)
		}
	}
}

func TestLocalMapReset(t *testing.T) {
	m := newLocalMap[int]()
	for i := 0; i < 100; i++ {
		m.Set(graph.NodeID(i), i)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	if _, ok := m.Get(50); ok {
		t.Fatal("Reset left a readable value")
	}
	m.Set(1, 2)
	if v, _ := m.Get(1); v != 2 {
		t.Fatal("map unusable after Reset")
	}
}

func TestLocalMapForEach(t *testing.T) {
	m := newLocalMap[int]()
	want := map[graph.NodeID]int{1: 10, 100: 20, 65535: 30}
	for k, v := range want {
		m.Set(k, v)
	}
	got := map[graph.NodeID]int{}
	m.ForEach(func(k graph.NodeID, v int) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// Property: localMap agrees with the built-in map under a random workload.
func TestQuickLocalMapVsBuiltin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newLocalMap[uint64]()
		ref := map[graph.NodeID]uint64{}
		sum := func(a, b uint64) uint64 { return a + b }
		for i := 0; i < 500; i++ {
			k := graph.NodeID(r.Intn(200))
			switch r.Intn(3) {
			case 0:
				v := uint64(r.Intn(100))
				m.Set(k, v)
				ref[k] = v
			case 1:
				v := uint64(r.Intn(100))
				m.Reduce(k, v, sum)
				ref[k] += v
			case 2:
				got, ok := m.Get(k)
				want, wok := ref[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		count := 0
		bad := false
		m.ForEach(func(k graph.NodeID, v uint64) {
			count++
			if ref[k] != v {
				bad = true
			}
		})
		return !bad && count == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedMapBasics(t *testing.T) {
	s := newShardedMap[uint64]()
	s.Set(1, 10)
	s.Reduce(1, 5, func(a, b uint64) uint64 { return a + b })
	if v, ok := s.Get(1); !ok || v != 15 {
		t.Fatalf("sharded reduce = %d,%v", v, ok)
	}
	if !s.ReduceChanged(1, 5, func(a, b uint64) uint64 { return a + b }) {
		t.Fatal("changing reduce reported unchanged")
	}
	if s.ReduceChanged(1, 0, func(a, b uint64) uint64 { return a + b }) {
		t.Fatal("no-op reduce reported changed")
	}
	if !s.ReduceChanged(99, 7, func(a, b uint64) uint64 { return a + b }) {
		t.Fatal("insert reduce reported unchanged")
	}
	total := 0
	s.ForEach(func(_ graph.NodeID, _ uint64) { total++ })
	if total != 2 {
		t.Fatalf("ForEach count = %d", total)
	}
	s.Reset()
	if _, ok := s.Get(1); ok {
		t.Fatal("Reset left entries")
	}
}
