package npm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/runtime"
)

// newMapForHost constructs a map of the given variant on a host, wiring in
// a store when MC needs one.
func newMapForHost(h *runtime.Host, v Variant, store MCStore) Map[graph.NodeID] {
	return New(Options[graph.NodeID]{
		Host:    h,
		Op:      MinNodeID(),
		Codec:   NodeIDCodec{},
		Variant: v,
		Store:   store,
	})
}

// runVariant builds a cluster over g and runs prog with a fresh map of the
// given variant on each host.
func runVariant(t *testing.T, g *graph.Graph, hosts int, v Variant,
	prog func(h *runtime.Host, m Map[graph.NodeID])) {
	t.Helper()
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := kvstore.NewCluster(hosts, hosts)
	c.Run(func(h *runtime.Host) {
		prog(h, newMapForHost(h, v, store))
	})
}

// initIdentity sets every local proxy's property to its own global ID and
// publishes (the Figure 4 initialization loop).
func initIdentity(h *runtime.Host, m Map[graph.NodeID]) {
	h.ParForNodes(func(tid int, local graph.NodeID) {
		gid := h.HP.GlobalID(local)
		m.Set(gid, gid)
	})
	m.InitSync()
}

func TestVariantsList(t *testing.T) {
	if len(Variants) != 4 {
		t.Fatalf("expected 4 variants, got %d", len(Variants))
	}
}

func TestSetThenReadAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runVariant(t, g, 3, v, func(h *runtime.Host, m Map[graph.NodeID]) {
				initIdentity(h, m)
				// Every host reads its own masters. Non-GAR variants hash
				// properties elsewhere, so the reads must be requested;
				// on Full these requests are no-ops (master locality).
				lo, hi := h.HP.MasterRangeGlobal()
				for n := lo; n < hi; n++ {
					m.Request(n)
				}
				m.RequestSync()
				for n := lo; n < hi; n++ {
					if got := m.Read(n); got != n {
						t.Errorf("host %d: Read(%d) = %d", h.Rank, n, got)
					}
				}
			})
		})
	}
}

func TestRequestReadRemoteAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runVariant(t, g, 3, v, func(h *runtime.Host, m Map[graph.NodeID]) {
				initIdentity(h, m)
				// Every host requests every global node, then reads all.
				for n := 0; n < h.HP.NumGlobalNodes(); n++ {
					m.Request(graph.NodeID(n))
				}
				m.RequestSync()
				for n := 0; n < h.HP.NumGlobalNodes(); n++ {
					if got := m.Read(graph.NodeID(n)); got != graph.NodeID(n) {
						t.Errorf("host %d: remote Read(%d) = %d", h.Rank, n, got)
					}
				}
			})
		})
	}
}

func TestReduceVisibleNextRoundAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runVariant(t, g, 4, v, func(h *runtime.Host, m Map[graph.NodeID]) {
				initIdentity(h, m)
				m.ResetUpdated()
				// All hosts min-reduce distinct values onto node 0; the
				// minimum (0 stays 0)... use target node 10 with values
				// rank+1 so min is 1.
				h.ParFor(h.Threads, func(tid, _ int) {
					m.Reduce(tid, 10, graph.NodeID(h.Rank+1))
				})
				m.ReduceSync()
				if !m.IsUpdated() {
					t.Errorf("host %d: reduce to smaller value not flagged", h.Rank)
				}
				m.Request(10)
				m.RequestSync()
				if got := m.Read(10); got != 1 {
					t.Errorf("host %d: Read(10) = %d, want 1", h.Rank, got)
				}
			})
		})
	}
}

func TestNoOpReduceNotUpdatedAllVariants(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runVariant(t, g, 2, v, func(h *runtime.Host, m Map[graph.NodeID]) {
				initIdentity(h, m)
				m.ResetUpdated()
				// min-reduce a LARGER value: must not count as update.
				m.Reduce(0, 3, graph.NodeID(h.HP.NumGlobalNodes()-1))
				m.ReduceSync()
				if m.IsUpdated() {
					t.Errorf("host %d: no-op reduce flagged as update", h.Rank)
				}
			})
		})
	}
}

func TestPinMirrorsBroadcastAllVariants(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runVariant(t, g, 3, v, func(h *runtime.Host, m Map[graph.NodeID]) {
				initIdentity(h, m)
				m.PinMirrors()
				// Mirror reads see initial values.
				for l := h.HP.NumMasters; l < h.HP.NumLocal(); l++ {
					gid := h.HP.GlobalID(graph.NodeID(l))
					if got := m.Read(gid); got != gid {
						t.Errorf("host %d: pinned mirror Read(%d) = %d", h.Rank, gid, got)
					}
				}
				// Reduce node 1 to 0 everywhere, sync + broadcast.
				m.ResetUpdated()
				m.Reduce(0, 1, 0)
				m.ReduceSync()
				m.BroadcastSync()
				// Any host having node 1 as master or mirror must see 0.
				// Non-GAR variants need the read requested even for the
				// host's own partition masters; no-op elsewhere.
				m.Request(1)
				m.RequestSync()
				if _, ok := h.HP.LocalID(1); ok {
					if got := m.Read(1); got != 0 {
						t.Errorf("host %d: after broadcast Read(1) = %d, want 0", h.Rank, got)
					}
				}
				m.UnpinMirrors()
			})
		})
	}
}

func TestReadStatsCountMastersAndRemotes(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *runtime.Host) {
		m := New(Options[graph.NodeID]{
			Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}, TrackReads: true,
		})
		readStatsScenario(t, h, m)
	})
}

func TestReadStatsOffByDefault(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	runVariant(t, g, 2, Full, func(h *runtime.Host, m Map[graph.NodeID]) {
		initIdentity(h, m)
		lo, _ := h.HP.MasterRangeGlobal()
		m.Read(lo)
		if master, remote := m.ReadStats(); master != 0 || remote != 0 {
			t.Errorf("host %d: counters active without TrackReads: %d/%d",
				h.Rank, master, remote)
		}
	})
}

func readStatsScenario(t *testing.T, h *runtime.Host, m Map[graph.NodeID]) {
	t.Helper()
	initIdentity(h, m)
	lo, _ := h.HP.MasterRangeGlobal()
	m.Read(lo) // master read
	master, remote := m.ReadStats()
	if master != 1 || remote != 0 {
		t.Errorf("host %d: stats after master read = %d,%d", h.Rank, master, remote)
	}
	other := graph.NodeID(0)
	if lo == 0 {
		other = graph.NodeID(h.HP.NumGlobalNodes() - 1)
	}
	m.Request(other)
	m.RequestSync()
	m.Read(other)
	_, remote = m.ReadStats()
	if remote != 1 {
		t.Errorf("host %d: remote reads = %d, want 1", h.Rank, remote)
	}
}

func TestFullReadUnmaterializedPanics(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "unmaterialized") {
			t.Fatalf("expected unmaterialized panic, got %v", r)
		}
	}()
	runVariant(t, g, 2, Full, func(h *runtime.Host, m Map[graph.NodeID]) {
		initIdentity(h, m)
		if h.Rank == 0 {
			// Read a node owned by host 1 without requesting it.
			m.Read(graph.NodeID(h.HP.NumGlobalNodes() - 1))
		}
	})
}

func TestNewRequiresOptions(t *testing.T) {
	cases := []Options[graph.NodeID]{
		{},
		{Op: MinNodeID()},
		{Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: Variant("bogus")},
	}
	g := gen.Grid(3, 3, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, o := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			if i >= 2 {
				o.Host = c.Hosts()[0]
			}
			New(o)
		}()
	}
	// MC without a store must panic too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MC without store did not panic")
			}
		}()
		New(Options[graph.NodeID]{
			Host: c.Hosts()[0], Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: MC,
		})
	}()
}

// crossVariantScenario runs a random reduce workload and returns the final
// global property vector, which must be identical for every variant and
// host count.
func crossVariantScenario(t *testing.T, seed int64, v Variant, hosts int) []graph.NodeID {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g := gen.ErdosRenyi(40, 120, false, seed)
	n := g.NumNodes()
	// Pre-generate the reduce operations: (round, target, value).
	type redOp struct {
		target graph.NodeID
		value  graph.NodeID
	}
	rounds := make([][]redOp, 3)
	for i := range rounds {
		for j := 0; j < 30; j++ {
			rounds[i] = append(rounds[i], redOp{
				target: graph.NodeID(r.Intn(n)),
				value:  graph.NodeID(r.Intn(n)),
			})
		}
	}
	final := make([]graph.NodeID, n)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := kvstore.NewCluster(hosts, hosts)
	var results [][]graph.NodeID
	resultCh := make(chan []graph.NodeID, hosts)
	c.Run(func(h *runtime.Host) {
		m := newMapForHost(h, v, store)
		initIdentity(h, m)
		for _, ops := range rounds {
			m.ResetUpdated()
			// Every host applies all ops (deterministic, symmetric).
			h.ParFor(len(ops), func(tid, i int) {
				m.Reduce(tid, ops[i].target, ops[i].value)
			})
			m.ReduceSync()
			m.IsUpdated()
		}
		for i := 0; i < n; i++ {
			m.Request(graph.NodeID(i))
		}
		m.RequestSync()
		out := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			out[i] = m.Read(graph.NodeID(i))
		}
		resultCh <- out
	})
	close(resultCh)
	for r := range resultCh {
		results = append(results, r)
	}
	for _, r := range results[1:] {
		for i := range r {
			if r[i] != results[0][i] {
				t.Fatalf("hosts disagree at node %d: %d vs %d", i, r[i], results[0][i])
			}
		}
	}
	copy(final, results[0])
	return final
}

// Property: all variants and host counts compute identical reductions.
func TestQuickCrossVariantEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		want := crossVariantScenario(t, seed, Full, 1)
		for _, v := range Variants {
			for _, hosts := range []int{2, 4} {
				got := crossVariantScenario(t, seed, v, hosts)
				for i := range want {
					if got[i] != want[i] {
						t.Logf("variant %s hosts %d node %d: %d want %d",
							v, hosts, i, got[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
