package npm

import (
	"bytes"
	"math/rand"
	"testing"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
)

// buildReducePayload assembles a tagged reduce payload from explicit
// sections, the same framing reducePayload produces, for codec-level tests.
func buildReducePayload(wire comm.WireFormat, sections [][]byte) []byte {
	var buf []byte
	if wire == comm.WireV2 {
		buf = append(buf, wireV2)
		for _, sec := range sections {
			buf = comm.AppendUvarint(buf, uint64(len(sec)))
		}
	} else {
		buf = append(buf, wireV1)
		for _, sec := range sections {
			buf = comm.AppendUint32(buf, uint32(len(sec)))
		}
	}
	for _, sec := range sections {
		buf = append(buf, sec...)
	}
	return buf
}

func TestReduceSectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
		for _, threads := range []int{1, 2, 4, 7} {
			sections := make([][]byte, threads)
			for i := range sections {
				sec := make([]byte, rng.Intn(40))
				rng.Read(sec)
				if rng.Intn(4) == 0 {
					sec = nil // empty sections must survive the framing
				}
				sections[i] = sec
			}
			payload := buildReducePayload(wire, sections)
			for ti := 0; ti < threads; ti++ {
				sec, v2 := reduceSection(payload, ti, threads)
				if v2 != (wire == comm.WireV2) {
					t.Fatalf("wire %d: v2 flag = %v", wire, v2)
				}
				if !bytes.Equal(sec, sections[ti]) {
					t.Fatalf("wire %d threads %d: section %d mismatch", wire, threads, ti)
				}
				csec, cv2, ok := reduceSectionChecked(payload, ti, threads)
				if !ok || cv2 != v2 || !bytes.Equal(csec, sec) {
					t.Fatalf("wire %d: checked decoder disagrees (ok=%v)", wire, ok)
				}
			}
		}
	}
}

func TestReduceSectionCheckedRejectsMalformed(t *testing.T) {
	good := buildReducePayload(comm.WireV2, [][]byte{{1, 2, 3}, {4, 5}})
	cases := map[string]struct {
		payload []byte
		t       int
	}{
		"empty":        {[]byte{}, 0},
		"unknown tag":  {append([]byte{0x7f}, good[1:]...), 0},
		"truncated":    {good[:len(good)-1], 1}, // section 1 now ends past the payload
		"header only":  {good[:2], 0},
		"length past":  {[]byte{wireV2, 0x10, 0x00, 1, 2}, 0},
		"v1 short hdr": {[]byte{wireV1, 0x01, 0x00}, 0},
		"bad t":        {good, 2},
	}
	for name, c := range cases {
		if _, _, ok := reduceSectionChecked(c.payload, c.t, 2); ok {
			t.Errorf("%s: checked decoder accepted malformed payload", name)
		}
	}
	// And the original stays decodable.
	if _, _, ok := reduceSectionChecked(good, 1, 2); !ok {
		t.Fatal("checked decoder rejected a well-formed payload")
	}
}

func TestIDListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(50)
			ids := make([]graph.NodeID, 0, n)
			next := graph.NodeID(rng.Intn(10))
			for i := 0; i < n; i++ {
				ids = append(ids, next)
				next += graph.NodeID(1 + rng.Intn(1000)) // sorted, gappy
			}
			payload := appendIDList(nil, wire, ids)
			if n == 0 && payload != nil {
				t.Fatalf("wire %d: empty list encoded to %d bytes", wire, len(payload))
			}
			var got []graph.NodeID
			dec := decodeIDList(payload)
			for id, ok := dec.next(); ok; id, ok = dec.next() {
				got = append(got, id)
			}
			if len(got) != len(ids) {
				t.Fatalf("wire %d: decoded %d ids, want %d", wire, len(got), len(ids))
			}
			for i := range ids {
				if got[i] != ids[i] {
					t.Fatalf("wire %d: id %d = %d, want %d", wire, i, got[i], ids[i])
				}
			}
		}
	}
}

// Dense consecutive ID lists — the common request pattern — must get the
// promised compression: one byte per ID after the first.
func TestIDListV2Compression(t *testing.T) {
	ids := make([]graph.NodeID, 128)
	for i := range ids {
		ids[i] = graph.NodeID(100000 + i)
	}
	v1 := appendIDList(nil, comm.WireV1, ids)
	v2 := appendIDList(nil, comm.WireV2, ids)
	if len(v1) != 1+4*len(ids) {
		t.Fatalf("v1 size = %d", len(v1))
	}
	// tag + 3-byte first delta + 1 byte per subsequent ID
	if want := 1 + 3 + (len(ids) - 1); len(v2) != want {
		t.Fatalf("v2 size = %d, want %d", len(v2), want)
	}
}

// FuzzDecodeSection drives the checked v1/v2 payload decoder with
// arbitrary bytes: it must never panic or read out of bounds, and whenever
// it accepts a payload the trusted (panicking) decoder must agree with it
// byte for byte.
func FuzzDecodeSection(f *testing.F) {
	f.Add(buildReducePayload(comm.WireV2, [][]byte{{5, 0xaa, 0xbb}, {}}), uint8(2), uint8(0), uint8(2))
	f.Add(buildReducePayload(comm.WireV1, [][]byte{{1, 0, 0, 0, 9, 9, 9, 9}, {2, 0, 0, 0, 8, 8, 8, 8}}), uint8(2), uint8(1), uint8(4))
	f.Add(buildReducePayload(comm.WireV2, [][]byte{nil, nil, nil, nil}), uint8(4), uint8(3), uint8(8))
	f.Add([]byte{wireV2, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(1), uint8(0), uint8(4))
	f.Add([]byte{}, uint8(1), uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, payload []byte, threads, tid, valSize uint8) {
		th := int(threads)%8 + 1
		ti := int(tid) % th
		vs := int(valSize) % 17
		sec, v2, ok := reduceSectionChecked(payload, ti, th)
		if !ok {
			return
		}
		tsec, tv2 := reduceSection(payload, ti, th)
		if tv2 != v2 || !bytes.Equal(tsec, sec) {
			t.Fatalf("trusted and checked decoders disagree: %v/%v", v2, tv2)
		}
		// Entry validation over the section must terminate without panics
		// whatever it decides.
		validSectionEntries(sec, v2, vs)
	})
}
