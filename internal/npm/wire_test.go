package npm

import (
	"bytes"
	"math/rand"
	"testing"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
)

// buildReducePayload assembles a tagged reduce payload from explicit
// sections, the same framing reducePayload produces, for codec-level tests.
func buildReducePayload(wire comm.WireFormat, sections [][]byte) []byte {
	var buf []byte
	if wire == comm.WireV2 {
		buf = append(buf, wireV2)
		for _, sec := range sections {
			buf = comm.AppendUvarint(buf, uint64(len(sec)))
		}
	} else {
		buf = append(buf, wireV1)
		for _, sec := range sections {
			buf = comm.AppendUint32(buf, uint32(len(sec)))
		}
	}
	for _, sec := range sections {
		buf = append(buf, sec...)
	}
	return buf
}

// buildReducePayloadV2S frames section bodies (form byte included, empty
// slice = absent) the way reducePayload's v2s path does.
func buildReducePayloadV2S(sections [][]byte) []byte {
	buf := []byte{wireV2S}
	maskLen := (len(sections) + 7) / 8
	pm := len(buf)
	for i := 0; i < maskLen; i++ {
		buf = append(buf, 0)
	}
	for i, sec := range sections {
		if len(sec) == 0 {
			continue
		}
		buf[pm+i/8] |= 1 << (uint(i) % 8)
		buf = comm.AppendUvarint(buf, uint64(len(sec)))
	}
	for _, sec := range sections {
		buf = append(buf, sec...)
	}
	return buf
}

func TestReduceSectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
		for _, threads := range []int{1, 2, 4, 7} {
			sections := make([][]byte, threads)
			for i := range sections {
				sec := make([]byte, rng.Intn(40))
				rng.Read(sec)
				if rng.Intn(4) == 0 {
					sec = nil // empty sections must survive the framing
				}
				sections[i] = sec
			}
			payload := buildReducePayload(wire, sections)
			wantKind := secV1
			if wire == comm.WireV2 {
				wantKind = secV2
			}
			for ti := 0; ti < threads; ti++ {
				sec, kind := reduceSection(payload, ti, threads)
				if kind != wantKind {
					t.Fatalf("wire %d: kind = %v, want %v", wire, kind, wantKind)
				}
				if !bytes.Equal(sec, sections[ti]) {
					t.Fatalf("wire %d threads %d: section %d mismatch", wire, threads, ti)
				}
				csec, ckind, ok := reduceSectionChecked(payload, ti, threads)
				if !ok || ckind != kind || !bytes.Equal(csec, sec) {
					t.Fatalf("wire %d: checked decoder disagrees (ok=%v)", wire, ok)
				}
			}
		}
	}
}

func TestReduceSectionV2SRoundTrip(t *testing.T) {
	// Section bodies as reducePayload emits them: a form byte then a
	// self-delimiting sparse or dense body; absent sections decode empty.
	sparse := append([]byte{sectionSparse, 2}, 0x03, 0xaa, 0xbb, 0x05, 0xcc, 0xdd)
	dense := append([]byte{sectionDense, 1, 0b101}, 0x10, 0x11, 0x20, 0x21)
	for _, threads := range []int{1, 2, 4, 7, 9} {
		sections := make([][]byte, threads)
		for i := range sections {
			switch i % 3 {
			case 0:
				sections[i] = sparse
			case 1:
				sections[i] = nil // skipped section
			default:
				sections[i] = dense
			}
		}
		payload := buildReducePayloadV2S(sections)
		for ti := 0; ti < threads; ti++ {
			sec, kind := reduceSection(payload, ti, threads)
			if kind != secV2S {
				t.Fatalf("threads %d: kind = %v, want secV2S", threads, kind)
			}
			if !bytes.Equal(sec, sections[ti]) {
				t.Fatalf("threads %d: section %d mismatch: %x vs %x", threads, ti, sec, sections[ti])
			}
			csec, ckind, ok := reduceSectionChecked(payload, ti, threads)
			if !ok || ckind != secV2S || !bytes.Equal(csec, sec) {
				t.Fatalf("threads %d: checked decoder disagrees (ok=%v)", threads, ok)
			}
			if !validSectionEntries(sec, secV2S, 2) {
				t.Fatalf("threads %d: section %d rejected by entry validation", threads, ti)
			}
		}
	}
}

func TestValidSectionV2S(t *testing.T) {
	cases := map[string]struct {
		sec     []byte
		valSize int
		want    bool
	}{
		"absent":             {nil, 4, true},
		"sparse ok":          {[]byte{sectionSparse, 1, 0x07, 9, 9}, 2, true},
		"sparse short value": {[]byte{sectionSparse, 1, 0x07, 9}, 2, false},
		"sparse trailing":    {[]byte{sectionSparse, 1, 0x07, 9, 9, 0}, 2, false},
		"sparse bad count":   {[]byte{sectionSparse, 9, 0x07, 9, 9}, 2, false},
		"dense ok":           {[]byte{sectionDense, 1, 0b11, 1, 2, 3, 4}, 2, true},
		"dense pop mismatch": {[]byte{sectionDense, 1, 0b11, 1, 2, 3}, 2, false},
		"dense mask past":    {[]byte{sectionDense, 9, 0b11}, 2, false},
		"unknown form":       {[]byte{7, 0}, 2, false},
	}
	for name, c := range cases {
		if got := validSectionEntries(c.sec, secV2S, c.valSize); got != c.want {
			t.Errorf("%s: valid = %v, want %v", name, got, c.want)
		}
	}
}

func TestReduceSectionCheckedRejectsMalformed(t *testing.T) {
	good := buildReducePayload(comm.WireV2, [][]byte{{1, 2, 3}, {4, 5}})
	cases := map[string]struct {
		payload []byte
		t       int
	}{
		"empty":        {[]byte{}, 0},
		"unknown tag":  {append([]byte{0x7f}, good[1:]...), 0},
		"truncated":    {good[:len(good)-1], 1}, // section 1 now ends past the payload
		"header only":  {good[:2], 0},
		"length past":  {[]byte{wireV2, 0x10, 0x00, 1, 2}, 0},
		"v1 short hdr": {[]byte{wireV1, 0x01, 0x00}, 0},
		"bad t":        {good, 2},
	}
	for name, c := range cases {
		if _, _, ok := reduceSectionChecked(c.payload, c.t, 2); ok {
			t.Errorf("%s: checked decoder accepted malformed payload", name)
		}
	}
	// And the original stays decodable.
	if _, _, ok := reduceSectionChecked(good, 1, 2); !ok {
		t.Fatal("checked decoder rejected a well-formed payload")
	}
}

func TestIDListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(50)
			ids := make([]graph.NodeID, 0, n)
			next := graph.NodeID(rng.Intn(10))
			for i := 0; i < n; i++ {
				ids = append(ids, next)
				next += graph.NodeID(1 + rng.Intn(1000)) // sorted, gappy
			}
			payload := appendIDList(nil, wire, ids)
			if n == 0 && payload != nil {
				t.Fatalf("wire %d: empty list encoded to %d bytes", wire, len(payload))
			}
			var got []graph.NodeID
			dec := decodeIDList(payload)
			for id, ok := dec.next(); ok; id, ok = dec.next() {
				got = append(got, id)
			}
			if len(got) != len(ids) {
				t.Fatalf("wire %d: decoded %d ids, want %d", wire, len(got), len(ids))
			}
			for i := range ids {
				if got[i] != ids[i] {
					t.Fatalf("wire %d: id %d = %d, want %d", wire, i, got[i], ids[i])
				}
			}
		}
	}
}

// Dense consecutive ID lists — the common request pattern — must get the
// promised compression: one byte per ID after the first.
func TestIDListV2Compression(t *testing.T) {
	ids := make([]graph.NodeID, 128)
	for i := range ids {
		ids[i] = graph.NodeID(100000 + i)
	}
	v1 := appendIDList(nil, comm.WireV1, ids)
	v2 := appendIDList(nil, comm.WireV2, ids)
	if len(v1) != 1+4*len(ids) {
		t.Fatalf("v1 size = %d", len(v1))
	}
	// tag + 3-byte first delta + 1 byte per subsequent ID
	if want := 1 + 3 + (len(ids) - 1); len(v2) != want {
		t.Fatalf("v2 size = %d, want %d", len(v2), want)
	}
}

// FuzzDecodeSection drives the checked v1/v2/v2s payload decoder with
// arbitrary bytes: it must never panic or read out of bounds, and whenever
// it accepts a payload the trusted (panicking) decoder must agree with it
// byte for byte.
func FuzzDecodeSection(f *testing.F) {
	f.Add(buildReducePayload(comm.WireV2, [][]byte{{5, 0xaa, 0xbb}, {}}), uint8(2), uint8(0), uint8(2))
	f.Add(buildReducePayload(comm.WireV1, [][]byte{{1, 0, 0, 0, 9, 9, 9, 9}, {2, 0, 0, 0, 8, 8, 8, 8}}), uint8(2), uint8(1), uint8(4))
	f.Add(buildReducePayload(comm.WireV2, [][]byte{nil, nil, nil, nil}), uint8(4), uint8(3), uint8(8))
	f.Add([]byte{wireV2, 0xff, 0xff, 0xff, 0xff, 0xff}, uint8(1), uint8(0), uint8(4))
	f.Add([]byte{}, uint8(1), uint8(0), uint8(4))
	// v2s seeds: sparse + absent sections, dense bitmap form, and a payload
	// whose present bitmap promises a section the length header omits.
	f.Add(buildReducePayloadV2S([][]byte{
		{sectionSparse, 2, 0x01, 0xaa, 0xbb, 0x04, 0xcc, 0xdd}, nil,
	}), uint8(2), uint8(0), uint8(2))
	f.Add(buildReducePayloadV2S([][]byte{
		nil, {sectionDense, 1, 0b1001, 1, 2, 3, 4}, nil, nil,
	}), uint8(4), uint8(1), uint8(2))
	f.Add([]byte{wireV2S, 0b11, 0x05, 0x01}, uint8(2), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, payload []byte, threads, tid, valSize uint8) {
		th := int(threads)%8 + 1
		ti := int(tid) % th
		vs := int(valSize) % 17
		sec, kind, ok := reduceSectionChecked(payload, ti, th)
		if !ok {
			return
		}
		tsec, tkind := reduceSection(payload, ti, th)
		if tkind != kind || !bytes.Equal(tsec, sec) {
			t.Fatalf("trusted and checked decoders disagree: %v/%v", kind, tkind)
		}
		// Entry validation over the section must terminate without panics
		// whatever it decides.
		validSectionEntries(sec, kind, vs)
	})
}
