package npm

import (
	"math"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/runtime"
)

// Float-valued property maps back the community-detection and MIS
// algorithms; exercise them across all variants.

func runFloatVariant(t *testing.T, hosts int, v Variant,
	prog func(h *runtime.Host, m Map[float64])) {
	t.Helper()
	g := gen.Grid(6, 6, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := kvstore.NewCluster(hosts, hosts)
	c.Run(func(h *runtime.Host) {
		m := New(Options[float64]{
			Host: h, Op: SumFloat64(), Codec: Float64Codec{}, Variant: v, Store: store,
		})
		prog(h, m)
	})
}

func TestFloatSumReduceAllVariants(t *testing.T) {
	for _, v := range Variants {
		t.Run(string(v), func(t *testing.T) {
			runFloatVariant(t, 3, v, func(h *runtime.Host, m Map[float64]) {
				h.ParForNodes(func(_ int, l graph.NodeID) {
					m.Set(h.HP.GlobalID(l), 0)
				})
				m.InitSync()
				// Every host adds 1.5 to node 7 from each of 4 threads.
				h.ParFor(4, func(tid, _ int) { m.Reduce(tid, 7, 1.5) })
				m.ReduceSync()
				m.Request(7)
				m.RequestSync()
				want := 1.5 * 4 * 3 // threads x hosts
				if got := m.Read(7); math.Abs(got-want) > 1e-9 {
					t.Errorf("host %d: sum = %v, want %v", h.Rank, got, want)
				}
			})
		})
	}
}

func TestOverwriteSemantics(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *runtime.Host) {
		m := New(Options[graph.NodeID]{
			Host: h, Op: Overwrite[graph.NodeID](), Codec: NodeIDCodec{},
		})
		h.ParForNodes(func(_ int, l graph.NodeID) {
			gid := h.HP.GlobalID(l)
			m.Set(gid, gid)
		})
		m.InitSync()
		// Each node's owner overwrites its own value; single writer.
		lo, hi := h.HP.MasterRangeGlobal()
		m.ResetUpdated()
		for n := lo; n < hi; n++ {
			m.Reduce(0, n, n+100)
		}
		m.ReduceSync()
		if !m.IsUpdated() {
			t.Errorf("host %d: overwrite not flagged as update", h.Rank)
		}
		for n := lo; n < hi; n++ {
			if got := m.Read(n); got != n+100 {
				t.Errorf("host %d: Read(%d) = %d, want %d", h.Rank, n, got, n+100)
			}
		}
	})
}

func TestMinFloatReduce(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *runtime.Host) {
		m := New(Options[float64]{
			Host: h, Op: MinFloat64(), Codec: Float64Codec{},
		})
		h.ParForNodes(func(_ int, l graph.NodeID) {
			m.Set(h.HP.GlobalID(l), math.Inf(1))
		})
		m.InitSync()
		m.Reduce(0, 3, float64(h.Rank)+0.25)
		m.ReduceSync()
		m.Request(3)
		m.RequestSync()
		if got := m.Read(3); got != 0.25 {
			t.Errorf("host %d: min = %v, want 0.25", h.Rank, got)
		}
	})
}

func TestConflictCounterCFIsZero(t *testing.T) {
	// The conflict-free variants must never contend during reductions;
	// the shared-map variants may (and on multicore hardware will).
	g := gen.RMAT(8, 8, false, 3)
	for _, v := range []Variant{Full} {
		ResetConflicts()
		c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, ThreadsPerHost: 4})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(func(h *runtime.Host) {
			m := New(Options[graph.NodeID]{
				Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: v,
			})
			h.ParForNodes(func(_ int, l graph.NodeID) {
				gid := h.HP.GlobalID(l)
				m.Set(gid, gid)
			})
			m.InitSync()
			h.ParFor(5000, func(tid, i int) {
				m.Reduce(tid, graph.NodeID(i%g.NumNodes()), 0)
			})
			m.ReduceSync()
		})
		c.Close()
		if got := ConflictCount(); got != 0 {
			t.Errorf("variant %s: %d conflicts, want 0 by construction", v, got)
		}
	}
}

func TestMaxNodeIDOp(t *testing.T) {
	op := MaxNodeID()
	if op.Combine(3, 7) != 7 || op.Combine(7, 3) != 7 {
		t.Fatal("max op broken")
	}
	if !op.HasIdentity || op.Identity != 0 {
		t.Fatal("max identity should be 0")
	}
}

func TestUint64Codec(t *testing.T) {
	c := Uint64Codec{}
	buf := c.Append(nil, 0xdeadbeefcafe)
	if len(buf) != c.Size() {
		t.Fatalf("size %d != %d", len(buf), c.Size())
	}
	v, rest := c.Read(buf)
	if v != 0xdeadbeefcafe || len(rest) != 0 {
		t.Fatalf("round trip: %x", v)
	}
}

func TestMemoryFootprintReported(t *testing.T) {
	g := gen.Grid(8, 8, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, ThreadsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	store := kvstore.NewCluster(2, 2)
	c.Run(func(h *runtime.Host) {
		sizes := map[Variant]int64{}
		for _, v := range Variants {
			m := New(Options[graph.NodeID]{
				Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: v, Store: store,
			})
			h.ParForNodes(func(_ int, l graph.NodeID) {
				gid := h.HP.GlobalID(l)
				m.Set(gid, gid)
			})
			m.InitSync()
			m.PinMirrors()
			fp := FootprintOf(m)
			if fp <= 0 {
				t.Errorf("variant %s reported footprint %d", v, fp)
			}
			sizes[v] = fp
			m.UnpinMirrors()
		}
		// The Full variant materializes masters densely; it must report at
		// least the master vector.
		lo, hi := h.HP.MasterRangeGlobal()
		if sizes[Full] < int64(hi-lo)*4 {
			t.Errorf("Full footprint %d below master vector size", sizes[Full])
		}
	})
}

func TestFootprintOfNonReporter(t *testing.T) {
	if FootprintOf(42) != 0 {
		t.Fatal("non-reporter should yield 0")
	}
}

// The §14 dense translation structures must show up in the accounting: the
// partition's global→local table (and the permutation arrays on a
// reordered cluster), and the cache slot table once remote requests have
// materialized a cache.
func TestMemoryFootprintIncludesTranslationTables(t *testing.T) {
	g := gen.Grid(8, 8, false, 1)
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: 2, ThreadsPerHost: 2, Reorder: graph.ReorderDegree,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *runtime.Host) {
		m := New(Options[graph.NodeID]{
			Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}, Variant: Full,
		})
		h.ParForNodes(func(_ int, l graph.NodeID) {
			gid := h.HP.GlobalID(l)
			m.Set(gid, gid)
		})
		m.InitSync()
		tf := h.HP.TranslationFootprint()
		if tf < int64(h.HP.NumGlobalNodes())*4 {
			t.Errorf("host %d: translation footprint %d below the dense local table", h.Rank, tf)
		}
		before := FootprintOf(m)
		lo, hi := h.HP.MasterRangeGlobal()
		if before < int64(hi-lo)*4+tf {
			t.Errorf("host %d: footprint %d misses translation tables (%d)", h.Rank, before, tf)
		}
		// Request a value mastered on the other host: the response cache
		// brings the dense cache slot table with it.
		var remote graph.NodeID
		if lo > 0 {
			remote = 0
		} else {
			remote = hi
		}
		m.Request(remote)
		m.RequestSync()
		after := FootprintOf(m)
		if after < before+int64(h.HP.NumGlobalNodes())*4 {
			t.Errorf("host %d: footprint %d..%d does not account the cache slot table", h.Rank, before, after)
		}
	})
}
