package npm

import "kimbap/internal/graph"

// Memory-footprint estimation. The paper compares max RSS across systems:
// Kimbap's thread-local maps cost ~10% extra memory vs Vite for LV, and
// about the same as Gluon for CC (§6.2). Each variant reports the bytes
// its data structures occupy so experiments can reproduce that comparison
// without OS-level RSS sampling (which would measure the whole simulated
// cluster at once).

// MemoryReporter is implemented by all map variants.
type MemoryReporter interface {
	// MemoryFootprint returns the approximate bytes held by the map's
	// value storage, caches, thread-local maps, and request state.
	MemoryFootprint() int64
}

// FootprintOf returns m's memory footprint, or 0 if it does not report.
func FootprintOf(m any) int64 {
	if r, ok := m.(MemoryReporter); ok {
		return r.MemoryFootprint()
	}
	return 0
}

func (m *localMap[V]) footprint(valSize int) int64 {
	// keys + vals arrays at capacity, plus the used list.
	return int64(len(m.keys))*int64(4+valSize) + int64(cap(m.used))*4
}

func (s *shardedMap[V]) footprint(valSize int) int64 {
	var total int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.m.footprint(valSize)
		sh.mu.Unlock()
	}
	return total
}

// MemoryFootprint implements MemoryReporter.
func (m *fullMap[V]) MemoryFootprint() int64 {
	vs := m.codec.Size()
	total := int64(len(m.masters)) * int64(vs)     // master vector
	total += int64(len(m.mirrors)) * int64(vs)     // pinned mirrors
	total += int64(len(m.cacheKeys)) * int64(4+vs) // remote cache
	total += int64(len(m.cacheSlot)) * 4           // dense cache slot table (§14)
	total += int64(m.hp.NumGlobalNodes()+7) / 8    // request bitset
	total += int64(len(m.masters)+7) / 8           // dirty bitset
	total += int64(cap(m.pullSnap)) * int64(vs)    // pull-round master snapshot
	// The transpose CSR exists only for pull rounds, so its bytes are the
	// pull path's to account for, not the graph loader's.
	total += m.hp.InCSRFootprint()
	// Partition-side ID translation: the host's dense global→local table
	// plus (on host 0) the shared reorder permutation arrays. Charged to
	// the Full variant, which is the one whose hot paths index them.
	total += m.hp.TranslationFootprint()
	for _, t := range m.tl {
		total += t.footprint(vs)
	}
	for _, t := range m.combined {
		total += t.footprint(vs)
	}
	// Persistent sync-phase buffers (reused across rounds).
	for _, perTid := range m.cells {
		for _, perDest := range perTid {
			for _, b := range perDest {
				total += int64(cap(b))
			}
		}
	}
	for g := range m.sendBufs {
		for _, b := range m.sendBufs[g] {
			total += int64(cap(b))
		}
		for _, b := range m.bcastBufs[g] {
			total += int64(cap(b))
		}
	}
	// Frontier bitsets and the v2s sparse/dense section scratch.
	if m.frontier != nil {
		total += m.frontier.MemoryFootprint()
	}
	total += int64(cap(m.denseMask)) + int64(cap(m.denseVals))
	for _, perTid := range m.cellN {
		for _, perDest := range perTid {
			total += int64(len(perDest)) * 8
		}
	}
	return total
}

// MemoryFootprint implements MemoryReporter.
func (m *hashMap[V]) MemoryFootprint() int64 {
	vs := m.codec.Size()
	total := m.owned.footprint(vs)
	total += m.cache.footprint(vs)
	total += int64(m.hp.NumGlobalNodes()+7) / 8
	total += int64(len(m.pinnedIDs)) * 4
	for _, t := range m.tl {
		total += t.footprint(vs)
	}
	for _, t := range m.combined {
		total += t.footprint(vs)
	}
	if m.sharedPartial != nil {
		total += m.sharedPartial.footprint(vs)
	}
	// Persistent sync-phase buffers (reused across rounds).
	for _, perDest := range m.cells {
		for _, b := range perDest {
			total += int64(cap(b))
		}
	}
	for _, perDest := range m.sharedCells {
		for _, b := range perDest {
			total += int64(cap(b))
		}
	}
	for g := range m.sendBufs {
		for _, b := range m.sendBufs[g] {
			total += int64(cap(b))
		}
		for _, b := range m.reqBufs[g] {
			total += int64(cap(b))
		}
		for _, b := range m.respBufs[g] {
			total += int64(cap(b))
		}
	}
	return total
}

// MemoryFootprint implements MemoryReporter. The external store's memory
// is not attributed to the map (the paper treats Memcached's store size as
// a fixed server budget); only client-side state counts.
func (m *mcMap[V]) MemoryFootprint() int64 {
	vs := m.codec.Size()
	total := m.cache.footprint(vs)
	total += int64(m.hp.NumGlobalNodes()+7) / 8
	total += int64(len(m.pinnedIDs)) * 4
	return total
}

var (
	_ MemoryReporter = (*fullMap[graph.NodeID])(nil)
	_ MemoryReporter = (*hashMap[graph.NodeID])(nil)
	_ MemoryReporter = (*mcMap[graph.NodeID])(nil)
)
