package npm

import (
	"fmt"
	"math/bits"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
)

// Wire formats for the sync-phase payloads. Every non-empty reduce payload
// and request-ID list starts with a one-byte format tag, so the two sides
// negotiate per payload: a receiver decodes whatever format the sender
// chose, and mixed-format clusters interoperate. Empty payloads stay
// zero-length (no tag) — "nothing to send" is format independent.
//
// v1 is the original raw encoding: fixed uint32 keys and section lengths.
// v2 exploits what the sectioned framing already guarantees: every key in
// a section falls in one gather thread's key range, so keys are encoded as
// uvarint deltas from the section's range base. Keys are *not*
// delta-chained against the previous key — sections concatenate the
// combine threads' cells in insertion order, so consecutive keys are
// unsorted and a chain would need per-cell restart markers. Base-relative
// deltas are order independent, which also keeps the encoded size (and
// hence the comm_bytes the bench gate pins) deterministic across runs.
// Values stay fixed width in both formats.
// v2s is the frontier-era extension of v2 for reduce payloads: empty
// sections are skipped entirely (a present-bitmap replaces the fixed
// lengths header) and every section carries a 1-byte form marker choosing,
// by encoded size, between a sparse body (uvarint entry count, then
// base-relative uvarint keys with values, order independent like v2) and a
// dense body (a bitmap over the section's key range with values in
// ascending key order). Late sparse rounds send a few sparse sections and
// nothing else; early dense rounds collapse per-key varints into one bit
// each. Negotiation stays per payload: receivers switch on the tag, so
// v1/v2/v2s senders coexist in one cluster.
//
//kimbap:wiregroup npmWire
const (
	wireV1  byte = 1
	wireV2  byte = 2
	wireV2S byte = 3
)

// Section body forms inside a v2s payload.
//
//kimbap:wiregroup sectionForm
const (
	sectionSparse byte = 0 // [uvarint count][count x (uvarint key-rel, value)]
	sectionDense  byte = 1 // [uvarint maskBytes][mask][values, ascending key]
)

// sectionKind tells a gather thread how to decode its extracted section.
type sectionKind byte

//kimbap:wiregroup sectionKind
const (
	secV1 sectionKind = iota
	secV2
	secV2S
)

// resolveWire maps a map-level wire option to a concrete format: an unset
// option defers to the cluster-wide default, and an unset default means v2.
func resolveWire(opt, clusterDefault comm.WireFormat) comm.WireFormat {
	if opt == comm.WireAuto {
		opt = clusterDefault
	}
	if opt == comm.WireAuto {
		opt = comm.WireV2
	}
	return opt
}

// reduceSection extracts gather thread t's section from a non-empty tagged
// reduce payload. v1 frames `[tag][threads uint32 lengths][sections]`, v2
// `[tag][threads uvarint lengths][sections]`, and v2s
// `[tag][present bitmap][uvarint lengths, present sections only][sections]`
// where absent sections decode as empty. The returned kind decides how the
// section's bytes decode (v2s sections start with their form byte).
// Payloads come from peer hosts in the same process, so malformed input
// panics; the fuzz target exercises reduceSectionChecked instead.
func reduceSection(payload []byte, t, threads int) (sec []byte, kind sectionKind) {
	switch payload[0] {
	case wireV1:
		b := payload[1:]
		off := 4 * threads
		for rt := 0; rt < t; rt++ {
			u, _ := comm.ReadUint32(b[4*rt:])
			off += int(u)
		}
		n, _ := comm.ReadUint32(b[4*t:])
		return b[off : off+int(n)], secV1
	case wireV2:
		b := payload[1:]
		var before, secLen uint64
		for rt := 0; rt < threads; rt++ {
			var ln uint64
			ln, b = comm.ReadUvarint(b)
			if rt < t {
				before += ln
			} else if rt == t {
				secLen = ln
			}
		}
		return b[before : before+secLen], secV2
	case wireV2S:
		maskLen := (threads + 7) / 8
		present := payload[1 : 1+maskLen]
		if present[t/8]&(1<<(uint(t)%8)) == 0 {
			return nil, secV2S
		}
		b := payload[1+maskLen:]
		var before, secLen uint64
		for rt := 0; rt < threads; rt++ {
			if present[rt/8]&(1<<(uint(rt)%8)) == 0 {
				continue
			}
			var ln uint64
			ln, b = comm.ReadUvarint(b)
			if rt < t {
				before += ln
			} else if rt == t {
				secLen = ln
			}
		}
		return b[before : before+secLen], secV2S
	default:
		panic(fmt.Sprintf("npm: unknown wire format tag %d", payload[0]))
	}
}

// reduceSectionChecked is reduceSection over untrusted bytes: it reports
// malformed input (unknown tag, truncated header, lengths past the end)
// instead of panicking. The decoder fuzz target uses it to prove the
// trusted decoder's bounds arithmetic never reads out of range.
func reduceSectionChecked(payload []byte, t, threads int) (sec []byte, kind sectionKind, ok bool) {
	if t < 0 || t >= threads || len(payload) == 0 {
		return nil, 0, false
	}
	switch payload[0] {
	case wireV1:
		b := payload[1:]
		if len(b) < 4*threads {
			return nil, 0, false
		}
		off := uint64(4 * threads)
		var secLen uint64
		total := uint64(len(b))
		for rt := 0; rt < threads; rt++ {
			u, _ := comm.ReadUint32(b[4*rt:])
			if rt < t {
				off += uint64(u)
			} else if rt == t {
				secLen = uint64(u)
			}
			if off > total || off+secLen > total {
				return nil, 0, false
			}
		}
		return b[off : off+secLen], secV1, true
	case wireV2:
		b := payload[1:]
		var before, secLen uint64
		for rt := 0; rt < threads; rt++ {
			ln, rest, lok := comm.ReadUvarintChecked(b)
			if !lok {
				return nil, 0, false
			}
			b = rest
			if rt < t {
				before += ln
			} else if rt == t {
				secLen = ln
			}
		}
		if before > uint64(len(b)) || before+secLen > uint64(len(b)) {
			return nil, 0, false
		}
		return b[before : before+secLen], secV2, true
	case wireV2S:
		maskLen := (threads + 7) / 8
		if len(payload) < 1+maskLen {
			return nil, 0, false
		}
		present := payload[1 : 1+maskLen]
		b := payload[1+maskLen:]
		if present[t/8]&(1<<(uint(t)%8)) == 0 {
			// Absent section: still walk the lengths so a payload with
			// lengths past the end is rejected, not silently accepted.
			t = -1
		}
		var before, secLen uint64
		for rt := 0; rt < threads; rt++ {
			if present[rt/8]&(1<<(uint(rt)%8)) == 0 {
				continue
			}
			ln, rest, lok := comm.ReadUvarintChecked(b)
			if !lok {
				return nil, 0, false
			}
			b = rest
			if rt < t {
				before += ln
			} else if rt == t {
				secLen = ln
			}
		}
		if before > uint64(len(b)) || before+secLen > uint64(len(b)) {
			return nil, 0, false
		}
		return b[before : before+secLen], secV2S, true
	default:
		return nil, 0, false
	}
}

// validSectionEntries reports whether sec parses as a whole number of
// (key, value) entries for the given format and value width. For v2s it
// additionally validates the form byte and, for the dense form, that the
// value bytes match the mask's population count exactly.
func validSectionEntries(sec []byte, kind sectionKind, valSize int) bool {
	if kind == secV2S {
		return validSectionV2S(sec, valSize)
	}
	for len(sec) > 0 {
		if kind == secV2 {
			_, rest, ok := comm.ReadUvarintChecked(sec)
			if !ok {
				return false
			}
			sec = rest
		} else {
			if len(sec) < 4 {
				return false
			}
			sec = sec[4:]
		}
		if len(sec) < valSize {
			return false
		}
		sec = sec[valSize:]
	}
	return true
}

// validSectionV2S reports whether sec parses as a complete v2s section
// body: nothing at all (absent section), or a form byte followed by a
// self-delimiting sparse or dense body with no trailing bytes.
func validSectionV2S(sec []byte, valSize int) bool {
	if len(sec) == 0 {
		return true
	}
	switch sec[0] {
	case sectionSparse:
		count, rest, ok := comm.ReadUvarintChecked(sec[1:])
		if !ok {
			return false
		}
		sec = rest
		for n := uint64(0); n < count; n++ {
			_, rest, ok := comm.ReadUvarintChecked(sec)
			if !ok {
				return false
			}
			sec = rest
			if len(sec) < valSize {
				return false
			}
			sec = sec[valSize:]
		}
		return len(sec) == 0
	case sectionDense:
		maskBytes, rest, ok := comm.ReadUvarintChecked(sec[1:])
		if !ok || maskBytes > uint64(len(rest)) {
			return false
		}
		mask := rest[:maskBytes]
		vals := rest[maskBytes:]
		pop := 0
		for _, m := range mask {
			pop += bits.OnesCount8(m)
		}
		return len(vals) == pop*valSize
	default:
		return false
	}
}

// uvLen returns the encoded length of x as a uvarint, letting encoders size
// headers without a scratch append.
func uvLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// appendIDList encodes a request-ID list (sorted ascending — the request
// paths build them from ascending bitset walks or pre-sorted pin sets)
// behind a format tag. v1 is raw uint32 IDs; v2 is true delta-varint: the
// first ID, then successive differences, which are small for the clustered
// request sets graph traversals produce. An empty list encodes as an empty
// payload.
func appendIDList(buf []byte, wire comm.WireFormat, ids []graph.NodeID) []byte {
	if len(ids) == 0 {
		return buf
	}
	if wire == comm.WireV1 {
		buf = append(buf, wireV1)
		for _, id := range ids {
			buf = comm.AppendUint32(buf, uint32(id))
		}
		return buf
	}
	buf = append(buf, wireV2)
	prev := graph.NodeID(0)
	for _, id := range ids {
		buf = comm.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// idListDecoder walks a tagged ID list in order. It is a by-value iterator
// so the serve loops in the request paths decode with zero allocations.
type idListDecoder struct {
	b  []byte
	v2 bool
	id uint64 // running delta accumulator (v2)
}

// decodeIDList starts decoding a payload produced by appendIDList.
func decodeIDList(payload []byte) idListDecoder {
	if len(payload) == 0 {
		return idListDecoder{}
	}
	// ID lists are only ever encoded v1 or v2: v2s is a reduce-payload
	// format (section skipping and body forms have no meaning for a flat
	// ID list), so appendIDList never emits it here.
	//
	//kimbapvet:ignore wiretag -- appendIDList emits only v1/v2; v2s is a reduce-payload format
	switch payload[0] {
	case wireV1:
		return idListDecoder{b: payload[1:]}
	case wireV2:
		return idListDecoder{b: payload[1:], v2: true}
	default:
		panic(fmt.Sprintf("npm: unknown wire format tag %d", payload[0]))
	}
}

// next returns the next ID, or ok=false at the end of the list.
func (d *idListDecoder) next() (graph.NodeID, bool) {
	if len(d.b) == 0 {
		return 0, false
	}
	if d.v2 {
		var delta uint64
		delta, d.b = comm.ReadUvarint(d.b)
		d.id += delta
		return graph.NodeID(d.id), true
	}
	var u uint32
	u, d.b = comm.ReadUint32(d.b)
	return graph.NodeID(u), true
}
