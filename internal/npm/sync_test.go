package npm

import (
	"sync/atomic"
	"testing"

	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

// countingCodec wraps the NodeID wire format and counts decodes, so tests
// can assert how many times sync phases read payload entries.
type countingCodec struct{ reads *atomic.Int64 }

func (c countingCodec) Append(b []byte, v graph.NodeID) []byte {
	return comm.AppendUint32(b, uint32(v))
}

func (c countingCodec) Read(b []byte) (graph.NodeID, []byte) {
	c.reads.Add(1)
	u, rest := comm.ReadUint32(b)
	return graph.NodeID(u), rest
}

func (c countingCodec) Size() int { return 4 }

// TestReduceSyncDecodesEachEntryOnce pins the work-linear gather: payload
// sections are addressed to the receiver's gather threads, so each received
// entry is decoded exactly once — not once per gather thread. Every host
// reduces every global key, so after per-host combining each host sends one
// entry per key it does not own: (hosts-1) x numGlobal entries cross the
// wire cluster-wide, and the decode count must equal it exactly.
func TestReduceSyncDecodesEachEntryOnce(t *testing.T) {
	const hosts, threads = 4, 3
	for _, variant := range []Variant{Full, SGRCF} {
		t.Run(string(variant), func(t *testing.T) {
			g := gen.Grid(12, 12, false, 1)
			c, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: threads})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var reads atomic.Int64
			c.Run(func(h *runtime.Host) {
				m := New(Options[graph.NodeID]{
					Host:    h,
					Op:      MinNodeID(),
					Codec:   countingCodec{&reads},
					Variant: variant,
				})
				initIdentity(h, m)
				// InitSync may decode (hash variants flush buffered Sets);
				// only gather decodes are under test, so zero the counter
				// once every host is past initialization.
				h.Barrier()
				if h.Rank == 0 {
					reads.Store(0)
				}
				h.Barrier()
				n := h.HP.NumGlobalNodes()
				h.ParFor(n, func(tid, i int) {
					m.Reduce(tid, graph.NodeID(i), graph.NodeID(i))
				})
				m.ReduceSync()
			})
			want := int64((hosts - 1) * g.NumNodes())
			if got := reads.Load(); got != want {
				t.Errorf("%s: gather decoded %d entries, want exactly %d (each byte once)",
					variant, got, want)
			}
		})
	}
}

// syncAllocRound measures cluster-wide allocations per warm sync round:
// host 0 runs testing.AllocsPerRun while the peers execute the identical
// round in lockstep (AllocsPerRun counts the whole process's mallocs, so
// the budget covers every host's round).
func syncAllocRounds(t *testing.T, hosts int, pin bool) float64 {
	t.Helper()
	const warmup, runs = 3, 10
	g := gen.RMAT(9, 8, false, 3)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got float64
	c.Run(func(h *runtime.Host) {
		m := New(Options[graph.NodeID]{Host: h, Op: MinNodeID(), Codec: NodeIDCodec{}})
		initIdentity(h, m)
		if pin {
			m.PinMirrors()
		}
		n := h.HP.NumGlobalNodes()
		reduce := func(tid, j int) {
			m.Reduce(tid, graph.NodeID((j*31)%n), graph.NodeID(j%n))
		}
		round := func() {
			h.ParFor(512, reduce)
			m.ReduceSync()
			if pin {
				m.BroadcastSync()
			}
		}
		for i := 0; i < warmup; i++ {
			round()
		}
		if h.Rank == 0 {
			got = testing.AllocsPerRun(runs, round)
		} else {
			// AllocsPerRun executes its argument 1+runs times; the other
			// hosts must match it round for round or the collectives hang.
			for i := 0; i < runs+1; i++ {
				round()
			}
		}
	})
	return got
}

// TestReduceSyncSteadyStateAllocs bounds cluster-wide allocations of a warm
// ReduceSync round. The only remaining per-round allocations are the timer
// and parallel-loop closures (a handful per host); payload buffers, receive
// slices, and thread-local maps are all reused.
func TestReduceSyncSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budget only holds unraced")
	}
	const budget = 16 // measured ~4 (timer/loop closures); 4x headroom
	if got := syncAllocRounds(t, 2, false); got > budget {
		t.Errorf("warm ReduceSync round allocates %.1f objects cluster-wide, budget %d",
			got, budget)
	}
}

// TestBroadcastSyncSteadyStateAllocs bounds a warm ReduceSync +
// BroadcastSync round with pinned mirrors.
func TestBroadcastSyncSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budget only holds unraced")
	}
	const budget = 24 // measured ~4; 6x headroom
	if got := syncAllocRounds(t, 2, true); got > budget {
		t.Errorf("warm ReduceSync+BroadcastSync round allocates %.1f objects cluster-wide, budget %d",
			got, budget)
	}
}
