package par

import "testing"

// White-box bitset tests live here with the implementation; the runtime
// package's frontier tests cover the alias-facing behavior.

func TestBitsetTrailingWordMasked(t *testing.T) {
	// A words buffer with stale high bits (as if reused at smaller size)
	// must never surface phantom indices or over-count.
	b := NewBitset(70)
	for i := 0; i < 70; i++ {
		b.Set(i)
	}
	b.words[1].Store(^uint64(0)) // stale bits above position 69
	if got := b.Count(); got != 70 {
		t.Fatalf("Count with stale tail bits = %d, want 70", got)
	}
	seen := 0
	b.ForEachSet(func(i int) {
		if i >= 70 {
			t.Fatalf("ForEachSet surfaced phantom index %d", i)
		}
		seen++
	})
	if seen != 70 {
		t.Fatalf("ForEachSet visited %d bits, want 70", seen)
	}
	if got := b.MaskedWord(1); got != (uint64(1)<<6)-1 {
		t.Fatalf("MaskedWord(1) = %#x, want low 6 bits", got)
	}
}

func TestBitsetMaskedWordRoundTrip(t *testing.T) {
	b := NewBitset(130)
	set := []int{0, 63, 64, 127, 128, 129}
	for _, i := range set {
		b.Set(i)
	}
	total := 0
	for w := 0; w < b.Words(); w++ {
		word := b.MaskedWord(w)
		for word != 0 {
			total++
			word &= word - 1
		}
	}
	if total != len(set) {
		t.Fatalf("MaskedWord scan found %d bits, want %d", total, len(set))
	}
}
