// Package par provides the bounded parallel primitives behind Kimbap's
// ingestion pipeline: a persistent worker pool shared by the graph builder,
// the partitioner, and the synthetic-graph generators, plus the parallel
// prefix sum that stitches per-worker counting-sort results together.
//
// The package sits below internal/runtime in the import graph (runtime
// imports graph and partition, which import this package), so ingestion
// cannot reuse runtime's per-host ParFor pool without a cycle. The pool
// here follows the same design: parked workers woken per round, an atomic
// busy flag instead of a mutex, and a serial inline fallback when the pool
// is already claimed — a nested Do (the partitioner building per-host CSRs
// inside a per-host Do) degrades to serial execution, which is always
// correct because every caller is required to produce scheduling-
// independent output.
//
// Determinism contract: Do(workers, fn) invokes fn(w) exactly once for
// each w in [0, workers), with no guarantee about interleaving or which
// goroutine runs which w. Callers make results deterministic by keying all
// intermediate state by w and merging in w order — the counting-sort
// pattern — never by sharing cursors across workers.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes 0:
// the process's GOMAXPROCS. Ingestion phases are memory-bandwidth-bound,
// so oversubscription buys nothing.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Resolve maps a caller-supplied worker count to an effective one: 0 means
// DefaultWorkers, anything else is used as given (tests force 2/4/8 to
// exercise the parallel paths regardless of machine size).
func Resolve(workers int) int {
	if workers == 0 {
		return DefaultWorkers()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// sharedPool is the process-wide parked-worker pool, created on first use.
var (
	poolOnce   sync.Once
	sharedPool *pool
)

func getPool() *pool {
	poolOnce.Do(func() { sharedPool = newPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// pool is a set of parked goroutines that execute one round of tasks per
// wake. Task indices are claimed from a shared atomic cursor, so skewed
// task costs balance across the parked workers and the round owner, which
// participates too (on a single-core machine the owner typically runs the
// whole round inline without a context switch).
type pool struct {
	parked int
	wake   []chan struct{}
	wg     sync.WaitGroup
	busy   atomic.Bool

	// Per-round state: written by the round owner before the wake sends,
	// read by workers after the wake receives (the channel orders them),
	// cleared only after wg.Wait returns.
	fn       func(w int)
	n        int64
	next     atomic.Int64
	panicked atomic.Pointer[poolPanic]
}

// poolPanic boxes a worker's recovered panic for re-raising on the owner.
type poolPanic struct{ v any }

func newPool(parked int) *pool {
	p := &pool{parked: parked, wake: make([]chan struct{}, parked)}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(i)
	}
	return p
}

func (p *pool) worker(i int) {
	for range p.wake[i] {
		p.runTasks()
		p.wg.Done()
	}
}

func (p *pool) runTasks() {
	defer func() {
		if r := recover(); r != nil {
			p.panicked.Store(&poolPanic{r})
			// Park the cursor past the end so peers stop claiming tasks
			// and the round drains.
			p.next.Store(1 << 62)
		}
	}()
	for {
		w := p.next.Add(1) - 1
		if w >= p.n {
			return
		}
		p.fn(int(w))
	}
}

// run executes one round of n tasks. The caller must hold the busy flag.
func (p *pool) run(n int, fn func(w int)) {
	p.fn = fn
	p.n = int64(n)
	p.next.Store(0)
	p.panicked.Store(nil)
	p.wg.Add(p.parked)
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.runTasks() // the owner participates
	p.wg.Wait()
	p.fn = nil
	if pp := p.panicked.Load(); pp != nil {
		panic(pp.v)
	}
}

// Do invokes fn(w) for every w in [0, workers) and waits for all of them.
// Rounds on the shared pool never allocate per task; a nested or concurrent
// Do falls back to running every task inline on the caller's goroutine.
func Do(workers int, fn func(w int)) {
	workers = Resolve(workers)
	if workers == 1 {
		fn(0)
		return
	}
	p := getPool()
	if !p.busy.CompareAndSwap(false, true) {
		for w := 0; w < workers; w++ {
			fn(w)
		}
		return
	}
	defer p.busy.Store(false)
	p.run(workers, fn)
}

// DoErr invokes fn(w) for every w in [0, workers) and returns the first
// error in worker order — not arrival order — so a multi-worker failure
// reports deterministically. The streaming ingestion scans use it: file
// reads fail with errors, not panics, and every worker still runs to
// completion (a short-circuit would leave peers reading a file the caller
// is about to close).
func DoErr(workers int, fn func(w int) error) error {
	workers = Resolve(workers)
	if workers == 1 {
		return fn(0)
	}
	errs := make([]error, workers)
	Do(workers, func(w int) { errs[w] = fn(w) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Range returns worker w's half-open slice [lo, hi) of a static balanced
// split of [0, n) into `workers` contiguous ranges. Ranges depend only on
// (w, workers, n), never on scheduling — the basis of every deterministic
// per-worker counter in the ingestion pipeline.
func Range(w, workers, n int) (lo, hi int) {
	q, r := n/workers, n%workers
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// Static runs fn(w, lo, hi) for each worker's static Range of [0, n).
// Workers whose range is empty are still invoked (lo == hi) so per-worker
// outputs stay index-aligned.
func Static(workers, n int, fn func(w, lo, hi int)) {
	workers = Resolve(workers)
	if workers > n && n > 0 {
		// More workers than items only adds empty ranges; shrink so the
		// merge loops stay short. Forced worker counts above n are
		// harmless to drop: Range(w) would be empty for w >= n.
		workers = n
	}
	Do(workers, func(w int) {
		lo, hi := Range(w, workers, n)
		fn(w, lo, hi)
	})
}

// Dynamic runs fn(lo, hi) over [0, n) in chunks of at most grain items,
// claimed by an atomic cursor: the load-balanced variant for tasks with
// skewed per-item cost (per-node adjacency sorts on power-law graphs).
// Output must not depend on which worker processes which chunk.
func Dynamic(workers, n, grain int, fn func(lo, hi int)) {
	workers = Resolve(workers)
	if grain < 1 {
		grain = 1
	}
	if workers == 1 || n <= grain {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var next atomic.Int64
	Do(workers, func(int) {
		for {
			hi := next.Add(int64(grain))
			lo := hi - int64(grain)
			if lo >= int64(n) {
				return
			}
			if hi > int64(n) {
				hi = int64(n)
			}
			fn(int(lo), int(hi))
		}
	})
}

// PrefixSum replaces a[i] with the sum of a[0..i] (inclusive scan) using a
// two-pass chunked scan, and returns the total. The counting-sort merge
// calls it on the CSR offset array, whose length is numNodes+1.
func PrefixSum(workers int, a []int64) int64 {
	workers = Resolve(workers)
	n := len(a)
	if n == 0 {
		return 0
	}
	if workers == 1 || n < 4096 {
		var sum int64
		for i := range a {
			sum += a[i]
			a[i] = sum
		}
		return sum
	}
	if workers > n {
		workers = n
	}
	sums := make([]int64, workers)
	Static(workers, n, func(w, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[w] = s
	})
	var total int64
	for w := range sums {
		s := sums[w]
		sums[w] = total
		total += s
	}
	Static(workers, n, func(w, lo, hi int) {
		s := sums[w]
		for i := lo; i < hi; i++ {
			s += a[i]
			a[i] = s
		}
	})
	return total
}
