package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryWorkerOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		hits := make([]atomic.Int32, workers)
		Do(workers, func(w int) { hits[w].Add(1) })
		for w := range hits {
			if got := hits[w].Load(); got != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times", workers, w, got)
			}
		}
	}
}

func TestDoNestedFallsBackInline(t *testing.T) {
	var total atomic.Int64
	Do(4, func(w int) {
		Do(4, func(inner int) { total.Add(1) })
	})
	if total.Load() != 16 {
		t.Fatalf("nested Do ran %d inner tasks, want 16", total.Load())
	}
}

func TestDoPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The pool must be reusable after a panicked round.
		var n atomic.Int32
		Do(4, func(int) { n.Add(1) })
		if n.Load() != 4 {
			t.Fatalf("pool broken after panic: %d/4 tasks ran", n.Load())
		}
	}()
	Do(4, func(w int) {
		if w == 2 {
			panic("boom")
		}
	})
}

func TestRangeCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000, 1001} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Range(w, workers, n)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: Range(%d) starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d: Range(%d) = [%d,%d)", n, workers, w, lo, hi)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: ranges end at %d", n, workers, prevHi)
			}
		}
	}
}

func TestStaticAndDynamicCover(t *testing.T) {
	const n = 10000
	for _, workers := range []int{1, 2, 4, 8} {
		seen := make([]atomic.Int32, n)
		Static(workers, n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("Static workers=%d: index %d seen %d times", workers, i, seen[i].Load())
			}
		}
		seen = make([]atomic.Int32, n)
		Dynamic(workers, n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("Dynamic workers=%d: index %d seen %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestPrefixSumMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 4096, 100003} {
		a := make([]int64, n)
		want := make([]int64, n)
		var sum int64
		for i := range a {
			a[i] = int64(r.Intn(1000))
			sum += a[i]
			want[i] = sum
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b := make([]int64, n)
			copy(b, a)
			if got := PrefixSum(workers, b); got != sum {
				t.Fatalf("n=%d workers=%d: total %d, want %d", n, workers, got, sum)
			}
			for i := range b {
				if b[i] != want[i] {
					t.Fatalf("n=%d workers=%d: b[%d]=%d, want %d", n, workers, i, b[i], want[i])
				}
			}
		}
	}
}
