package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeSerialLIFOAndFIFO(t *testing.T) {
	d := NewDeque(5)
	if d.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8 (rounded up)", d.Cap())
	}
	for i := int32(0); i < 8; i++ {
		if !d.Push(i) {
			t.Fatalf("Push(%d) refused below capacity", i)
		}
	}
	if d.Push(99) {
		t.Fatal("Push succeeded on a full deque")
	}
	// Owner pops LIFO.
	for want := int32(7); want >= 4; want-- {
		v, ok := d.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	// Thief steals FIFO from the other end.
	for want := int32(0); want < 4; want++ {
		v, ok := d.Steal()
		if !ok || v != want {
			t.Fatalf("Steal = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque returned an item")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque returned an item")
	}
	if !d.Empty() {
		t.Fatal("Empty = false on drained deque")
	}
	// Cursors keep working after wraparound.
	for i := int32(100); i < 108; i++ {
		if !d.Push(i) {
			t.Fatalf("Push(%d) refused after drain", i)
		}
	}
	if v, ok := d.Pop(); !ok || v != 107 {
		t.Fatalf("post-wrap Pop = (%d, %v), want (107, true)", v, ok)
	}
}

// TestDequeConcurrentStealExactlyOnce runs one owner (push/pop) against
// several thieves and checks every item is consumed exactly once.
func TestDequeConcurrentStealExactlyOnce(t *testing.T) {
	const (
		items   = 1 << 14
		thieves = 4
	)
	d := NewDeque(items)
	seen := make([]atomic.Int32, items)
	consume := func(v int32) {
		if n := seen[v].Add(1); n != 1 {
			t.Errorf("item %d consumed %d times", v, n)
		}
	}
	var consumed atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					consume(v)
					consumed.Add(1)
				} else {
					select {
					case <-done:
						return
					default:
					}
				}
			}
		}()
	}
	// Owner: push all items, popping a few along the way to exercise the
	// last-item race.
	for i := int32(0); i < items; i++ {
		for !d.Push(i) {
		}
		if i%7 == 0 {
			if v, ok := d.Pop(); ok {
				consume(v)
				consumed.Add(1)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			if consumed.Load() == items {
				break
			}
			continue
		}
		consume(v)
		consumed.Add(1)
	}
	close(done)
	wg.Wait()
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("item %d consumed %d times, want exactly 1", i, seen[i].Load())
		}
	}
}

func TestBitsetUnset(t *testing.T) {
	b := NewBitset(130)
	if b.Unset(5) {
		t.Fatal("Unset on clear bit reported it was set")
	}
	b.Set(5)
	b.Set(129)
	if !b.Unset(5) {
		t.Fatal("Unset on set bit reported it was clear")
	}
	if b.Test(5) {
		t.Fatal("bit 5 still set after Unset")
	}
	if !b.Test(129) {
		t.Fatal("Unset(5) disturbed bit 129")
	}
	// Claim-table contract: exactly one of N concurrent Unsets wins.
	b.Set(64)
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Unset(64) {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Fatalf("%d concurrent Unset winners, want 1", wins.Load())
	}
}
