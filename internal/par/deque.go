package par

import "sync/atomic"

// Deque is a fixed-capacity Chase-Lev work-stealing deque over int32 items,
// the per-worker queue of the runtime's asynchronous drain scheduler. One
// owner goroutine pushes and pops at the bottom (LIFO, cache-warm); any
// number of thieves steal from the top (FIFO, oldest work first). All
// coordination is a pair of atomic cursors plus atomic slot access — no
// locks, so the enqueue/steal path stays safe to call from conflict-free
// operator bodies.
//
// The capacity is fixed (rounded up to a power of two): Push reports false
// instead of growing, and the caller parks the item elsewhere (the
// scheduler's spill bitset). A bounded buffer keeps the no-overwrite
// argument simple: a slot at index i (mod capacity) can only be rewritten
// once bottom has advanced a full capacity past i, which Push's fullness
// check forbids while any thief still holds top <= i.
type Deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	mask   int64
	buf    []atomic.Int32
}

// NewDeque creates a deque holding at most `capacity` items (rounded up to
// a power of two, minimum 8).
func NewDeque(capacity int) *Deque {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return &Deque{mask: int64(c - 1), buf: make([]atomic.Int32, c)}
}

// Cap returns the fixed capacity.
func (d *Deque) Cap() int { return len(d.buf) }

// Push appends v at the bottom. Owner-only. Reports false when full.
//
//kimbap:conflictfree
func (d *Deque) Push(v int32) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		return false
	}
	d.buf[b&d.mask].Store(v)
	d.bottom.Store(b + 1)
	return true
}

// Pop removes and returns the most recently pushed item. Owner-only.
//
//kimbap:conflictfree
func (d *Deque) Pop() (int32, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(t)
		return 0, false
	}
	v := d.buf[b&d.mask].Load()
	if t == b {
		// Last item: race thieves for it via the top cursor.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return 0, false
		}
	}
	return v, true
}

// Steal removes and returns the oldest item. Safe for any goroutine.
// Reports false when the deque looks empty or the steal lost a race
// (callers treat both as "try elsewhere").
//
//kimbap:conflictfree
func (d *Deque) Steal() (int32, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	// Read the slot before publishing the claim: once the CAS lands, the
	// owner may reuse the slot (after a full capacity of pushes, which the
	// fullness check delays until top has moved past it).
	v := d.buf[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false
	}
	return v, true
}

// Empty reports whether the deque appears empty. Advisory under
// concurrency; exact when the owner is quiescent.
func (d *Deque) Empty() bool {
	return d.top.Load() >= d.bottom.Load()
}
