package par

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-size concurrent bitset. The paper's request phase uses
// one to de-duplicate node-property requests (§4.1), the runtime's frontier
// subsystem uses a pair as its current/next active sets (both via the
// runtime.Bitset alias), and the parallel partitioner uses per-worker
// instances for mirror discovery, merged with OrInto. Set is a single
// atomic fetch-or, so concurrent setters never lock.
type Bitset struct {
	words []atomic.Uint64
	size  int
}

// NewBitset creates a bitset of the given size with all bits clear.
func NewBitset(size int) *Bitset {
	return &Bitset{words: make([]atomic.Uint64, (size+63)/64), size: size}
}

// Size returns the bitset capacity in bits.
func (b *Bitset) Size() int { return b.size }

// tailMask is the valid-bit mask for the final word: bits at positions
// >= size are storage padding, never payload. Every whole-word reader
// masks the last word with it, so a words buffer reused at a smaller size
// (stale high bits set) can never over-count or surface phantom indices.
func (b *Bitset) tailMask() uint64 {
	if r := uint(b.size) % 64; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// Set atomically sets bit i and reports whether it was previously clear.
//
// Implemented as an explicit load/CAS loop rather than the value-returning
// atomic Or: go1.24.0's amd64 lowering of the Or intrinsic can clobber the
// register holding a live pointer in the inlined caller (the saved receiver
// is overwritten by the CAS-loop scratch), which segfaulted the drain
// scheduler's enqueue path. The CAS form compiles correctly and gets an
// early exit for already-set bits for free.
func (b *Bitset) Set(i int) bool {
	w := &b.words[i/64]
	mask := uint64(1) << (uint(i) % 64)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// Unset atomically clears bit i and reports whether it was previously set.
// The set-returns-prior/unset-returns-prior pair lets concurrent workers
// use a bitset as a claim table: whoever observes the transition owns the
// item (the async scheduler's dedup and spill sets). Load/CAS loop for the
// same reason as Set.
func (b *Bitset) Unset(i int) bool {
	w := &b.words[i/64]
	mask := uint64(1) << (uint(i) % 64)
	for {
		old := w.Load()
		if old&mask == 0 {
			return false
		}
		if w.CompareAndSwap(old, old&^mask) {
			return true
		}
	}
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i/64].Load()&(uint64(1)<<(uint(i)%64)) != 0
}

// Clear resets all bits.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i].Store(0)
	}
}

// SetRange atomically sets every bit in [lo, hi).
func (b *Bitset) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)%64)
	if loW == hiW {
		b.words[loW].Or(loMask & hiMask)
		return
	}
	b.words[loW].Or(loMask)
	for w := loW + 1; w < hiW; w++ {
		b.words[w].Or(^uint64(0))
	}
	b.words[hiW].Or(hiMask)
}

// Words returns the number of 64-bit words backing the bitset.
func (b *Bitset) Words() int { return len(b.words) }

// MaskedWord returns word i with tail-padding bits cleared: callers can
// scan whole words (the dense-frontier regime, the mirror-collection scan)
// without re-deriving the valid-bit mask.
func (b *Bitset) MaskedWord(i int) uint64 {
	w := b.words[i].Load()
	if i == len(b.words)-1 {
		w &= b.tailMask()
	}
	return w
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	if len(b.words) == 0 {
		return 0
	}
	n := 0
	last := len(b.words) - 1
	for i := 0; i < last; i++ {
		n += bits.OnesCount64(b.words[i].Load())
	}
	return n + bits.OnesCount64(b.words[last].Load()&b.tailMask())
}

// CountRange returns the number of set bits in [lo, hi).
func (b *Bitset) CountRange(lo, hi int) int {
	if hi > b.size {
		hi = b.size
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return 0
	}
	loW, hiW := lo/64, (hi-1)/64
	loMask := ^uint64(0) << (uint(lo) % 64)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)%64)
	if loW == hiW {
		return bits.OnesCount64(b.words[loW].Load() & loMask & hiMask)
	}
	n := bits.OnesCount64(b.words[loW].Load() & loMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(b.words[w].Load())
	}
	return n + bits.OnesCount64(b.words[hiW].Load()&hiMask)
}

// OrInto ors this bitset's words into dst, word at a time. The two bitsets
// must be the same size.
func (b *Bitset) OrInto(dst *Bitset) {
	if dst.size != b.size {
		panic("runtime: OrInto size mismatch")
	}
	for i := range b.words {
		if w := b.words[i].Load(); w != 0 {
			dst.words[i].Or(w)
		}
	}
}

// ForEachSet calls fn for every set bit in ascending order.
func (b *Bitset) ForEachSet(fn func(i int)) {
	b.ForEachSetFrom(0, fn)
}

// ForEachSetFrom calls fn for every set bit at position >= start, in
// ascending order.
func (b *Bitset) ForEachSetFrom(start int, fn func(i int)) {
	if start >= b.size {
		return
	}
	if start < 0 {
		start = 0
	}
	last := len(b.words) - 1
	for w := start / 64; w <= last; w++ {
		word := b.words[w].Load()
		if w == start/64 {
			word &= ^uint64(0) << (uint(start) % 64)
		}
		if w == last {
			word &= b.tailMask()
		}
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}
