package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
)

// The ingest suite times the three load-path phases separately — generate,
// build (symmetrize + dedup + CSR), partition — per preset, with the
// partition phase swept over host counts. Build and partition each carry a
// `_serial` twin measuring the retained single-threaded reference
// implementation (graph.BuildSerial et al., partition.PartitionSerial) on
// the same input, so the JSON records the parallel pipeline's speedup
// against a baseline measured on the same machine in the same run.
// Generation has no serial twin: the counter-based generators are one
// implementation whose worker count only changes scheduling, never work.

// ingestHosts is the host-count sweep for the partition phase.
func (c Config) ingestHosts() []int {
	if c.Scale == Full {
		return []int{2, 8}
	}
	return []int{2}
}

// ingestPerf returns the ingest_* records for the perf trajectory.
func (c Config) ingestPerf() []PerfRecord {
	var recs []PerfRecord
	for _, p := range gen.Presets {
		recs = append(recs, c.ingestGenPerf(p))
		recs = append(recs,
			c.ingestBuildPerf(p, false),
			c.ingestBuildPerf(p, true))
		for _, hosts := range c.ingestHosts() {
			recs = append(recs,
				c.ingestPartitionPerf(p, hosts, false),
				c.ingestPartitionPerf(p, hosts, true))
		}
	}
	return recs
}

// timeOp runs op Reps times and fills rec with the fastest run's wall time
// and its malloc count. setup runs outside the timed window.
func (c Config) timeOp(rec PerfRecord, setup func(), op func()) PerfRecord {
	best := time.Duration(-1)
	var ms0, ms1 gort.MemStats
	for rep := 0; rep < c.Reps; rep++ {
		setup()
		gort.ReadMemStats(&ms0)
		start := time.Now()
		op()
		wall := time.Since(start)
		gort.ReadMemStats(&ms1)
		if best < 0 || wall < best {
			best = wall
			rec.WallNsPerOp = float64(wall.Nanoseconds())
			rec.AllocsPerOp = float64(ms1.Mallocs - ms0.Mallocs)
			rec.PeakAllocBytes = int64(ms1.TotalAlloc - ms0.TotalAlloc)
		}
	}
	return rec
}

// ingestGenPerf times one preset generation end to end (candidate
// generation, symmetrize, dedup, CSR build) at the configured worker count.
func (c Config) ingestGenPerf(p gen.Preset) PerfRecord {
	prev := gen.SetWorkers(c.Threads)
	defer gen.SetWorkers(prev)
	return c.timeOp(
		PerfRecord{Name: "ingest_generate/" + string(p), Hosts: 1, Threads: c.Threads},
		func() {},
		func() {
			if c.Scale == Full {
				gen.Build(p)
			} else {
				gen.BuildSmall(p)
			}
		})
}

// ingestColumns extracts a graph's edge list as builder columns, the raw
// material both build twins consume. The measured op symmetrizes first, so
// starting from an already-symmetric CSR means Dedup sees every edge twice
// — real duplicate-elimination work, like a raw generator stream.
func ingestColumns(g *graph.Graph) (srcs, dsts []graph.NodeID, ws []float64) {
	m := int(g.NumEdges())
	srcs = make([]graph.NodeID, 0, m)
	dsts = make([]graph.NodeID, 0, m)
	if g.Weighted() {
		ws = make([]float64, 0, m)
	}
	for n := 0; n < g.NumNodes(); n++ {
		v := graph.NodeID(n)
		lo, hi := g.EdgeRange(v)
		for e := lo; e < hi; e++ {
			srcs = append(srcs, v)
			dsts = append(dsts, g.Dst(e))
			if ws != nil {
				ws = append(ws, g.Weight(e))
			}
		}
	}
	return srcs, dsts, ws
}

// ingestBuildPerf times the column pipeline (symmetrize, dedup, CSR build)
// on the preset's edge list: the parallel path at c.Threads workers, or the
// retained serial reference.
func (c Config) ingestBuildPerf(p gen.Preset, serial bool) PerfRecord {
	g := c.graphFor(p)
	srcs, dsts, ws := ingestColumns(g)
	name, workers := "ingest_build/"+string(p), c.Threads
	if serial {
		name, workers = "ingest_build_serial/"+string(p), 1
	}
	var b *graph.Builder
	return c.timeOp(
		PerfRecord{Name: name, Hosts: 1, Threads: workers},
		func() {
			// The pipeline mutates its columns; each rep gets fresh copies.
			s2 := append([]graph.NodeID(nil), srcs...)
			d2 := append([]graph.NodeID(nil), dsts...)
			var w2 []float64
			if ws != nil {
				w2 = append([]float64(nil), ws...)
			}
			b = graph.NewBuilderFromArrays(g.NumNodes(), s2, d2, w2).SetWorkers(workers)
		},
		func() {
			if serial {
				b.SymmetrizeSerial()
				b.DedupSerial()
				b.BuildSerial()
			} else {
				b.Symmetrize()
				b.Dedup()
				b.Build()
			}
		})
}

// ingestPartitionPerf times partitioning the preset across hosts under the
// CVC policy (the sweep default elsewhere in the suite).
func (c Config) ingestPartitionPerf(p gen.Preset, hosts int, serial bool) PerfRecord {
	g := c.graphFor(p)
	name, workers := fmt.Sprintf("ingest_partition/%s", p), c.Threads
	if serial {
		name, workers = fmt.Sprintf("ingest_partition_serial/%s", p), 1
	}
	return c.timeOp(
		PerfRecord{Name: name, Hosts: hosts, Threads: workers},
		func() {},
		func() {
			if serial {
				partition.PartitionSerial(g, hosts, partition.CVC)
			} else {
				partition.PartitionWorkers(g, hosts, partition.CVC, workers)
			}
		})
}
