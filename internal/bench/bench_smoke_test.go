package bench

import (
	"bytes"
	"testing"
)

func TestSmokeAllExperiments(t *testing.T) {
	for _, e := range Experiments {
		var buf bytes.Buffer
		if err := Run(&buf, e, Config{Scale: Small, Threads: 2}); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", e)
		}
	}
}
