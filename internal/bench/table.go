// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) on the simulated cluster, printing
// aligned text tables with the same rows and series the paper reports.
// Absolute times differ from the paper's Stampede2 numbers — the substrate
// here is a simulated cluster — but the shapes (who wins, by what factor,
// where crossovers fall) are the reproduction target; EXPERIMENTS.md
// records both.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and prints them aligned.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, r := range t.rows {
		printRow(r)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
