package bench

import (
	"sync"
	"time"

	"kimbap/internal/algorithms"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Scale selects workload sizes: Small keeps experiments in CI-test
// territory; Full runs the paper-shaped configurations (minutes).
type Scale string

// Workload scales.
const (
	Small Scale = "small"
	Full  Scale = "full"
)

// Config tunes the harness.
type Config struct {
	Scale    Scale
	Threads  int    // worker threads per simulated host
	Reps     int    // timing repetitions; the minimum is reported
	JSONPath string // perf experiment: machine-readable output (BENCH_kimbap.json)
}

func (c Config) withDefaults() Config {
	if c.Scale == "" {
		c.Scale = Small
	}
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	return c
}

// graphCache memoizes generated graphs across experiments in one process.
var graphCache sync.Map // key string -> *graph.Graph

func (c Config) graphFor(p gen.Preset) *graph.Graph {
	key := string(p) + "/" + string(c.Scale)
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	var g *graph.Graph
	if c.Scale == Full {
		g = gen.Build(p)
	} else {
		g = gen.BuildSmall(p)
	}
	graphCache.Store(key, g)
	return g
}

// mediumHosts is the host sweep for medium graphs (paper: 1-16).
func (c Config) mediumHosts() []int {
	if c.Scale == Full {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2}
}

// largeHosts is the host sweep for large graphs (paper: 32-256, scaled).
func (c Config) largeHosts() []int {
	if c.Scale == Full {
		return []int{4, 8, 16}
	}
	return []int{2, 4}
}

// Result is one measured run.
type Result struct {
	Wall    time.Duration
	Compute time.Duration // max across hosts
	Comm    time.Duration // max across hosts
	// Request/Reduce/Broadcast split Comm by sync phase (§6.4 attributes
	// GAR's gains to request and reduce time separately).
	Request, Reduce, Broadcast time.Duration
	// Conflicts counts reduction conflicts: shared-map lock contention
	// for the SGR-only/Vite variants, CAS retries for MC, zero by
	// construction for the conflict-free variants. See npm.ConflictCount.
	Conflicts int64
}

// Ms returns wall milliseconds, the unit tables report.
func (r Result) Ms() float64 { return float64(r.Wall.Microseconds()) / 1000 }

// measure runs fn Reps times and keeps the fastest run (standard practice
// to suppress scheduling noise).
func (c Config) measure(fn func() Result) Result {
	best := fn()
	for i := 1; i < c.Reps; i++ {
		if r := fn(); r.Wall < best.Wall {
			best = r
		}
	}
	return best
}

// runSPMD builds a cluster, runs prog on it, and collects wall time plus
// the maximum per-host compute/comm timers.
func (c Config) runSPMD(g *graph.Graph, hosts int, pol partition.Policy,
	prog func(h *runtime.Host)) Result {

	cluster, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: c.Threads, Policy: pol,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	start := time.Now()
	cluster.Run(prog)
	res := Result{Wall: time.Since(start)}
	for _, h := range cluster.Hosts() {
		if h.Timers.Compute > res.Compute {
			res.Compute = h.Timers.Compute
		}
		if h.Timers.Comm() > res.Comm {
			res.Comm = h.Timers.Comm()
			res.Request = h.Timers.Request
			res.Reduce = h.Timers.Reduce
			res.Broadcast = h.Timers.Broadcast
		}
	}
	return res
}

// ccAlgo names a connected-components implementation for the sweeps.
type ccAlgo struct {
	name string
	pol  partition.Policy
	run  func(h *runtime.Host, cfg algorithms.Config, out []graph.NodeID) algorithms.CCStats
}

func ccAlgos() []ccAlgo {
	return []ccAlgo{
		{"Kimbap-LP", partition.CVC, algorithms.CCLP},
		{"Kimbap-SCLP", partition.CVC, algorithms.CCSCLP},
		{"Kimbap-SV", partition.CVC, algorithms.CCSV},
	}
}

// RunCC measures one CC algorithm.
func (c Config) RunCC(g *graph.Graph, hosts int, pol partition.Policy,
	acfg algorithms.Config,
	algo func(h *runtime.Host, cfg algorithms.Config, out []graph.NodeID) algorithms.CCStats) Result {

	return c.measure(func() Result {
		out := make([]graph.NodeID, g.NumNodes())
		var store *kvstore.Cluster
		if acfg.Variant == npm.MC && acfg.Store == nil {
			store = kvstore.NewCluster(hosts, hosts)
			acfg.Store = store
		}
		w := npm.BeginConflictWindow()
		r := c.runSPMD(g, hosts, pol, func(h *runtime.Host) {
			algo(h, acfg, out)
		})
		r.Conflicts = w.End() + casRetries(store, hosts)
		return r
	})
}

// casRetries sums MC CAS retries across client hosts.
func casRetries(store *kvstore.Cluster, hosts int) int64 {
	if store == nil {
		return 0
	}
	var total int64
	for h := 0; h < hosts; h++ {
		total += store.Stats(h).CASRetries.Load()
	}
	return total
}

// RunMIS measures the MIS implementation.
func (c Config) RunMIS(g *graph.Graph, hosts int) Result {
	return c.measure(func() Result {
		out := make([]bool, g.NumNodes())
		return c.runSPMD(g, hosts, partition.CVC, func(h *runtime.Host) {
			algorithms.MIS(h, algorithms.Config{}, out)
		})
	})
}

// RunMSF measures the Boruvka implementation.
func (c Config) RunMSF(g *graph.Graph, hosts int) Result {
	return c.measure(func() Result {
		out := make([]graph.NodeID, g.NumNodes())
		return c.runSPMD(g, hosts, partition.CVC, func(h *runtime.Host) {
			algorithms.MSF(h, algorithms.Config{}, out)
		})
	})
}

// RunLV measures Louvain with the given map variant (npm.Vite reproduces
// the Vite baseline when earlyTerm is also set).
func (c Config) RunLV(g *graph.Graph, hosts int, variant npm.Variant, earlyTerm bool) Result {
	return c.measure(func() Result {
		acfg := algorithms.Config{Variant: variant}
		var store *kvstore.Cluster
		if variant == npm.MC {
			store = kvstore.NewCluster(hosts, hosts)
			acfg.Store = store
		}
		w := npm.BeginConflictWindow()
		start := time.Now()
		res, err := algorithms.Louvain(g, runtime.Config{
			NumHosts: hosts, ThreadsPerHost: c.Threads,
		}, acfg, algorithms.CDOptions{EarlyTermination: earlyTerm})
		if err != nil {
			panic(err)
		}
		return Result{
			Wall: time.Since(start), Compute: res.Compute, Comm: res.Comm,
			Request: res.Request, Reduce: res.Reduce, Broadcast: res.Broadcast,
			Conflicts: w.End() + casRetries(store, hosts),
		}
	})
}

// RunLD measures Leiden.
func (c Config) RunLD(g *graph.Graph, hosts int) Result {
	return c.measure(func() Result {
		start := time.Now()
		res, err := algorithms.Leiden(g, runtime.Config{
			NumHosts: hosts, ThreadsPerHost: c.Threads,
		}, algorithms.Config{}, algorithms.CDOptions{})
		if err != nil {
			panic(err)
		}
		return Result{Wall: time.Since(start), Compute: res.Compute, Comm: res.Comm}
	})
}

// RunCCVariant measures CC-SV with a specific map variant (Figure 11).
func (c Config) RunCCVariant(g *graph.Graph, hosts int, variant npm.Variant) Result {
	return c.RunCC(g, hosts, partition.CVC, algorithms.Config{Variant: variant}, algorithms.CCSV)
}
