package bench

import (
	"testing"

	"kimbap/internal/algorithms"
	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// The v1 reduce_sync_full/8h/4t comm volume on the fixed perf workload,
// measured before the delta-varint codec landed. The v2 codec must keep at
// least a 30% reduction against it.
const v1ReduceSyncBytes = 58240

// TestReduceSyncCommBytesNoRegression gates the wire codec's win. With
// Reps=1 the measured window covers a fixed iteration range, and the v2
// base-relative key encoding makes payload sizes independent of cell
// insertion order, so this run's comm_bytes is fully deterministic. The
// committed BENCH_kimbap.json value comes from `make bench` (Reps=3, best
// wall rep kept, and rep windows cover different iteration ranges), so the
// comparison against it allows 0.5% cross-window drift — far below any
// real codec regression.
func TestReduceSyncCommBytesNoRegression(t *testing.T) {
	committed := int64(-1)
	if f, err := readPerfFile("../../BENCH_kimbap.json"); err == nil {
		for _, r := range f.Records {
			if r.Name == "reduce_sync_full" && r.Hosts == 8 && r.Threads == 4 {
				committed = r.CommBytes
			}
		}
	}
	cfg := Config{Scale: Full, Threads: 4, Reps: 1}
	rec := cfg.syncPerf("reduce_sync_full", npm.Full, 8, false)
	if limit := int64(v1ReduceSyncBytes * 7 / 10); rec.CommBytes > limit {
		t.Errorf("comm_bytes = %d/op, above the 30%%-under-v1 ceiling %d (v1 = %d)",
			rec.CommBytes, limit, int64(v1ReduceSyncBytes))
	}
	if committed < 0 {
		t.Log("no committed BENCH_kimbap.json record; only the v1 ceiling was checked")
	} else if slack := committed + committed/200; rec.CommBytes > slack {
		t.Errorf("comm_bytes = %d/op, regressed past the committed %d (+0.5%% = %d)",
			rec.CommBytes, committed, slack)
	}
}

// TestFrontierReduceSyncBytesGate gates the frontier's wire win: at 8 hosts
// a frontier-driven CC-SV run must move at most 60% of the dense run's
// reduce-sync bytes. The graph needs enough hook rounds for the dense
// loop's re-sent ineffective hooks to accumulate — a sparse random graph
// gives four-plus hook rounds per phase — and both runs are deterministic
// (fixed seed, hashed partition, order-independent v2s section sizes), so
// the comparison is exact, not statistical.
func TestFrontierReduceSyncBytesGate(t *testing.T) {
	g := gen.ErdosRenyi(2048, 6144, false, 3)
	run := func(dense bool) int64 {
		cluster, err := runtime.NewCluster(g, runtime.Config{NumHosts: 8, ThreadsPerHost: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		out := make([]graph.NodeID, g.NumNodes())
		cluster.Run(func(h *runtime.Host) {
			algorithms.CCSV(h, algorithms.Config{Dense: dense}, out)
		})
		_, tb := cluster.CommStatsByTag()
		return tb[comm.TagReduce]
	}
	dense := run(true)
	sparse := run(false)
	if dense == 0 {
		t.Fatal("dense CC run sent no reduce bytes; gate workload is broken")
	}
	if limit := dense * 60 / 100; sparse > limit {
		t.Errorf("frontier reduce-sync bytes = %d, above the 60%%-of-dense gate %d (dense = %d)",
			sparse, limit, dense)
	}
}
