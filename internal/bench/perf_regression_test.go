package bench

import (
	gort "runtime"
	"testing"
	"time"

	"kimbap/internal/algorithms"
	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// TestReduceSyncCommBytesNoRegression gates the wire codec's win: the v2
// default must move at most 70% of the bytes a v1-wire cluster sends on the
// identical workload, measured live in the same process (the perf R-MAT
// instance changed when the generators moved to counter-based PRNG streams,
// so a recorded v1 constant would pin a graph that no longer exists). With
// Reps=1 each measured window covers a fixed iteration range and both
// encodings are order-independent, so the comparison is deterministic. The
// committed BENCH_kimbap.json value comes from `make bench` (Reps=3, best
// wall rep kept, and rep windows cover different iteration ranges), so the
// comparison against it allows 0.5% cross-window drift — far below any
// real codec regression.
func TestReduceSyncCommBytesNoRegression(t *testing.T) {
	committed := int64(-1)
	if f, err := readPerfFile("../../BENCH_kimbap.json"); err == nil {
		for _, r := range f.Records {
			if r.Name == "reduce_sync_full" && r.Hosts == 8 && r.Threads == 4 {
				committed = r.CommBytes
			}
		}
	}
	cfg := Config{Scale: Full, Threads: 4, Reps: 1}
	v1 := cfg.syncPerfWire("reduce_sync_full", npm.Full, 8, false, comm.WireV1)
	rec := cfg.syncPerf("reduce_sync_full", npm.Full, 8, false)
	if v1.CommBytes == 0 {
		t.Fatal("v1 wire run sent no bytes; gate workload is broken")
	}
	if limit := v1.CommBytes * 7 / 10; rec.CommBytes > limit {
		t.Errorf("comm_bytes = %d/op, above the 30%%-under-v1 ceiling %d (v1 = %d)",
			rec.CommBytes, limit, v1.CommBytes)
	}
	if committed < 0 {
		t.Log("no committed BENCH_kimbap.json record; only the v1 ceiling was checked")
	} else if slack := committed + committed/200; rec.CommBytes > slack {
		t.Errorf("comm_bytes = %d/op, regressed past the committed %d (+0.5%% = %d)",
			rec.CommBytes, committed, slack)
	}
}

// TestIngestBuildPartitionGate holds the parallel ingestion pipeline to at
// most 60% of the retained serial references' wall time on the full-scale
// friendster preset: build (symmetrize + dedup + CSR) plus an 8-host CVC
// partition. Both sides are measured live in this process — wall-time
// baselines recorded on another machine would gate nothing — with two reps
// each, fastest kept. The margin is wide (the pipeline measures ~40% of
// serial on one core, and parallelism only widens it), so scheduler noise
// cannot trip the gate.
func TestIngestBuildPartitionGate(t *testing.T) {
	cfg := Config{Scale: Full, Threads: 4, Reps: 2}
	const p = gen.Friendster
	serial := cfg.ingestBuildPerf(p, true).WallNsPerOp +
		cfg.ingestPartitionPerf(p, 8, true).WallNsPerOp
	par := cfg.ingestBuildPerf(p, false).WallNsPerOp +
		cfg.ingestPartitionPerf(p, 8, false).WallNsPerOp
	if serial == 0 {
		t.Fatal("serial ingest measured zero wall time; gate workload is broken")
	}
	if limit := serial * 0.6; par > limit {
		t.Errorf("parallel build+partition = %.1fms, above 60%% of serial %.1fms (limit %.1fms)",
			par/1e6, serial/1e6, limit/1e6)
	}
}

// TestAdaptiveModeGate holds the adaptive policy engine to at most 110% of
// the best static execution mode on the single-host chain workload, all
// three measured live in this process. The workload is the async drain's
// best case (deep pointer-jumping), so static async beats static BSP by a
// wide margin; the adaptive controller probes async on its first round
// (every target is local at one host) and must essentially track it — the
// 10% margin absorbs the probe round and scheduler noise, with Reps
// best-of damping the rest.
func TestAdaptiveModeGate(t *testing.T) {
	cfg := Config{Scale: Full, Threads: 4, Reps: 3}
	bsp := cfg.ccModePerf("cc_sv_bsp", 1, algorithms.ExecBSP).WallNsPerOp
	async := cfg.ccModePerf("cc_sv_async", 1, algorithms.ExecAsync).WallNsPerOp
	adaptive := cfg.ccModePerf("cc_sv_adaptive", 1, algorithms.ExecAdaptive).WallNsPerOp
	if bsp == 0 || async == 0 {
		t.Fatal("static mode measured zero wall time; gate workload is broken")
	}
	bestStatic := bsp
	if async < bestStatic {
		bestStatic = async
	}
	t.Logf("chain CC-SV 1h: bsp=%.2fms async=%.2fms adaptive=%.2fms",
		bsp/1e6, async/1e6, adaptive/1e6)
	if limit := bestStatic * 1.10; adaptive > limit {
		t.Errorf("adaptive = %.2fms, above 110%% of best static %.2fms (limit %.2fms)",
			adaptive/1e6, bestStatic/1e6, limit/1e6)
	}
}

// TestDirectionGate holds the §15 direction optimization to a real win,
// all three directions measured live in this process on the full-scale
// perf R-MAT (dense rounds, 4 hosts x 4 threads, pull-complete IEC
// partition). Three claims: a static pull run must finish within 90% of
// the static push wall — the dense hook rounds drop the reduce collective
// and its thread-local delta maps entirely, which measures well under
// that on this workload; the globally-reduced adaptive rule must track
// the best static direction within 5% (on an all-dense workload it should
// simply lock onto pull after the first telemetry reduce); and every pull
// round's reduce-byte count must be exactly zero — the broadcast-only
// round end is a structural claim, not a statistical one.
func TestDirectionGate(t *testing.T) {
	cfg := Config{Scale: Full, Threads: 4, Reps: 3}
	push := cfg.ccDirPerf("cc_sv_push", 4, algorithms.DirPush)
	pull := cfg.ccDirPerf("cc_sv_pull", 4, algorithms.DirPull)
	adaptive := cfg.ccDirPerf("cc_sv_direction_adaptive", 4, algorithms.DirAdaptive)
	if push.WallNsPerOp == 0 || pull.WallNsPerOp == 0 {
		t.Fatal("static direction measured zero wall time; gate workload is broken")
	}
	pullRounds := 0
	for i, d := range pull.RoundDir {
		if d != "pull" {
			continue
		}
		pullRounds++
		if b := pull.RoundReduceBytes[i]; b != 0 {
			t.Errorf("pull round %d sent %d reduce bytes; pull rounds are broadcast-only", i, b)
		}
	}
	if pullRounds == 0 {
		t.Fatalf("static pull run recorded no pull rounds (dirs %v); gate workload is broken",
			pull.RoundDir)
	}
	t.Logf("dense CC-SV 4h/4t IEC: push=%.2fms pull=%.2fms adaptive=%.2fms (%d pull rounds)",
		push.WallNsPerOp/1e6, pull.WallNsPerOp/1e6, adaptive.WallNsPerOp/1e6, pullRounds)
	if limit := push.WallNsPerOp * 0.9; pull.WallNsPerOp > limit {
		t.Errorf("pull = %.2fms, above 90%% of the push wall %.2fms (limit %.2fms)",
			pull.WallNsPerOp/1e6, push.WallNsPerOp/1e6, limit/1e6)
	}
	bestStatic := push.WallNsPerOp
	if pull.WallNsPerOp < bestStatic {
		bestStatic = pull.WallNsPerOp
	}
	if limit := bestStatic * 1.05; adaptive.WallNsPerOp > limit {
		t.Errorf("adaptive = %.2fms, above 105%% of best static %.2fms (limit %.2fms)",
			adaptive.WallNsPerOp/1e6, bestStatic/1e6, limit/1e6)
	}
}

// TestStreamIngestGate holds the out-of-core build to its memory and wall
// contracts on the full-scale friendster analogue, both sides measured
// live in this process. Memory: the streaming two-scan build's allocation
// (TotalAlloc delta, an upper bound on peak heap growth) must stay within
// 125% of the final CSR footprint — the pooled cursor matrix and the
// per-worker block buffers are the only working set on top of the output
// arrays. Wall: streaming the KMB2 file must finish within 120% of the
// materialize-then-build twin on the same file; both pay the same block
// decode and the same final adjacency sort, and the twin's extra
// full-edge-list materialization pays for the streaming path's second
// scan. A warmup pair outside the timed window fills the buffer pools and
// a forced GC clears neighboring tests' allocation debt; reps are
// interleaved (stream, twin, stream, ...) with best-of-4 kept per side so
// a transient stall cannot land on one side alone — on a busy one-core
// host, sequential per-side windows let exactly that happen.
func TestStreamIngestGate(t *testing.T) {
	cfg := Config{Scale: Full, Threads: 4, Reps: 1}
	fx, cleanup := cfg.ioFixtureFor(gen.Friendster)
	defer cleanup()
	fx.streamKMB2(cfg.Threads) // warm the block and count pools
	fx.loadKMB2(cfg.Threads)
	gort.GC()

	var stream, inmem PerfRecord
	for rep := 0; rep < 4; rep++ {
		s := cfg.timeOp(PerfRecord{Name: "gate_stream"}, func() {},
			func() { fx.streamKMB2(cfg.Threads) })
		if rep == 0 || s.WallNsPerOp < stream.WallNsPerOp {
			stream = s
		}
		m := cfg.timeOp(PerfRecord{Name: "gate_inmem"}, func() {},
			func() { fx.loadKMB2(cfg.Threads) })
		if rep == 0 || m.WallNsPerOp < inmem.WallNsPerOp {
			inmem = m
		}
	}
	csr := csrBytes(fx.g)
	if stream.PeakAllocBytes == 0 || inmem.WallNsPerOp == 0 {
		t.Fatal("streaming gate measured nothing; gate workload is broken")
	}
	t.Logf("csr=%dKB stream alloc=%dKB (%.2fx) | stream=%.1fms inmem=%.1fms",
		csr/1024, stream.PeakAllocBytes/1024, float64(stream.PeakAllocBytes)/float64(csr),
		stream.WallNsPerOp/1e6, inmem.WallNsPerOp/1e6)
	if limit := csr + csr/4; stream.PeakAllocBytes > limit {
		t.Errorf("streaming build allocated %d bytes, above 125%% of the %d-byte CSR (limit %d)",
			stream.PeakAllocBytes, csr, limit)
	}
	if limit := inmem.WallNsPerOp * 1.2; stream.WallNsPerOp > limit {
		t.Errorf("streaming build = %.1fms, above 120%% of the in-memory build %.1fms (limit %.1fms)",
			stream.WallNsPerOp/1e6, inmem.WallNsPerOp/1e6, limit/1e6)
	}
}

// TestReorderLocalityGate holds the §14 blocked-degree reordering to a real
// win: dense CC-SV on the locality workload (a 2^17-node R-MAT whose
// property and adjacency arrays spill the last-level cache) must finish
// within 95% of the unreordered run at 4 hosts x 4 threads, both sides
// measured live in this process. An untimed warmup pair plus a forced GC
// clears allocation debt left by neighboring tests, reps are interleaved
// (base, reordered, base, ...) so clock drift lands on both sides equally,
// and best-of-5 damps scheduler noise; the measured ratio sits near 88-92%
// on one core, leaving several points of margin. The suite's standard
// R-MAT (2^11 nodes) fits in cache outright and shows no spread, which is
// why this gate carries its own instance — the same move the
// frontier-bytes gate makes. Reorder + partition run inside NewCluster,
// outside the timed window, so the gate isolates the steady-state locality
// effect; the reorder pass's own cost is bounded by
// TestReorderBuildCostGate below.
func TestReorderLocalityGate(t *testing.T) {
	cfg := Config{Scale: Full, Threads: 4}
	g := cfg.localityGraph()
	once := func(pol graph.ReorderPolicy) time.Duration {
		cluster, err := runtime.NewCluster(g, runtime.Config{
			NumHosts: 4, ThreadsPerHost: cfg.Threads, Reorder: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		out := make([]graph.NodeID, g.NumNodes())
		start := time.Now()
		cluster.Run(func(h *runtime.Host) {
			algorithms.CCSV(h, algorithms.Config{Variant: npm.Full, Dense: true}, out)
		})
		return time.Since(start)
	}
	once("")
	once(graph.ReorderBlockedDegree)
	gort.GC()
	base, reord := time.Duration(-1), time.Duration(-1)
	for rep := 0; rep < 5; rep++ {
		if b := once(""); base < 0 || b < base {
			base = b
		}
		if r := once(graph.ReorderBlockedDegree); reord < 0 || r < reord {
			reord = r
		}
	}
	if base <= 0 {
		t.Fatal("unreordered CC run measured zero wall time; gate workload is broken")
	}
	t.Logf("dense CC-SV 4h/4t on 2^17 R-MAT: reordered=%.1fms base=%.1fms (%.1f%%)",
		float64(reord)/1e6, float64(base)/1e6, 100*float64(reord)/float64(base))
	if limit := base * 95 / 100; reord > limit {
		t.Errorf("reordered CC = %.1fms, above 95%% of the unreordered %.1fms (limit %.1fms)",
			float64(reord)/1e6, float64(base)/1e6, float64(limit)/1e6)
	}
}

// TestReorderBuildCostGate bounds the reorder pass itself: the fused
// BuildReordered over the scattered friendster-analogue KMB2 file must
// finish within 115% of the plain two-scan Build on the same bytes — the
// degree-keyed sort and the permuted CSR scatter together may cost at most
// 15% of build time. The fused pass reuses the first scan's degree counts
// for the permutation and scatters the second scan straight into the
// permuted CSR, which is what keeps the delta that small (a standalone
// post-build Reorder re-walks the whole CSR and costs a large fraction of
// a build). The scattered fixture matters: a KMB2 dumped from a sorted CSR
// hands the plain build a nearly-sorted adjacency, billing the reordered
// side for a full adjacency sort the baseline never pays — raw ingest
// order makes both sides sort from scratch. Both sides live with an
// untimed warmup pair and a forced GC first, reps interleaved and
// best-of-5 kept per side so a transient stall cannot land on one side
// alone.
func TestReorderBuildCostGate(t *testing.T) {
	cfg := Config{Scale: Full, Threads: 4}
	fx, cleanup := cfg.ioFixtureScattered(gen.Friendster)
	defer cleanup()
	fx.streamKMB2(cfg.Threads) // warm the block and count pools
	fx.streamKMB2Reordered(cfg.Threads, graph.ReorderBlockedDegree, 4)
	gort.GC()

	timed := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	plain, fused := time.Duration(-1), time.Duration(-1)
	for rep := 0; rep < 5; rep++ {
		if p := timed(func() { fx.streamKMB2(cfg.Threads) }); plain < 0 || p < plain {
			plain = p
		}
		f := timed(func() { fx.streamKMB2Reordered(cfg.Threads, graph.ReorderBlockedDegree, 4) })
		if fused < 0 || f < fused {
			fused = f
		}
	}
	if plain <= 0 {
		t.Fatal("plain stream build measured zero wall time; gate workload is broken")
	}
	t.Logf("stream build: plain=%.1fms fused reorder=%.1fms (%.1f%%)",
		float64(plain)/1e6, float64(fused)/1e6, 100*float64(fused)/float64(plain))
	if limit := plain + plain*15/100; fused > limit {
		t.Errorf("fused build+reorder = %.1fms, above 115%% of the plain build %.1fms (limit %.1fms)",
			float64(fused)/1e6, float64(plain)/1e6, float64(limit)/1e6)
	}
}

// TestFrontierReduceSyncBytesGate gates the frontier's wire win: at 8 hosts
// a frontier-driven CC-SV run must move at most 60% of the dense run's
// reduce-sync bytes. The graph needs enough hook rounds for the dense
// loop's re-sent ineffective hooks to accumulate — a sparse random graph
// gives four-plus hook rounds per phase — and both runs are deterministic
// (fixed seed, hashed partition, order-independent v2s section sizes), so
// the comparison is exact, not statistical.
func TestFrontierReduceSyncBytesGate(t *testing.T) {
	g := gen.ErdosRenyi(2048, 6144, false, 3)
	run := func(dense bool) int64 {
		cluster, err := runtime.NewCluster(g, runtime.Config{NumHosts: 8, ThreadsPerHost: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer cluster.Close()
		out := make([]graph.NodeID, g.NumNodes())
		cluster.Run(func(h *runtime.Host) {
			algorithms.CCSV(h, algorithms.Config{Dense: dense}, out)
		})
		_, tb := cluster.CommStatsByTag()
		return tb[comm.TagReduce]
	}
	dense := run(true)
	sparse := run(false)
	if dense == 0 {
		t.Fatal("dense CC run sent no reduce bytes; gate workload is broken")
	}
	if limit := dense * 60 / 100; sparse > limit {
		t.Errorf("frontier reduce-sync bytes = %d, above the 60%%-of-dense gate %d (dense = %d)",
			sparse, limit, dense)
	}
}
