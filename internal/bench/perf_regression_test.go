package bench

import (
	"testing"

	"kimbap/internal/npm"
)

// The v1 reduce_sync_full/8h/4t comm volume on the fixed perf workload,
// measured before the delta-varint codec landed. The v2 codec must keep at
// least a 30% reduction against it.
const v1ReduceSyncBytes = 58240

// TestReduceSyncCommBytesNoRegression gates the wire codec's win. With
// Reps=1 the measured window covers a fixed iteration range, and the v2
// base-relative key encoding makes payload sizes independent of cell
// insertion order, so this run's comm_bytes is fully deterministic. The
// committed BENCH_kimbap.json value comes from `make bench` (Reps=3, best
// wall rep kept, and rep windows cover different iteration ranges), so the
// comparison against it allows 0.5% cross-window drift — far below any
// real codec regression.
func TestReduceSyncCommBytesNoRegression(t *testing.T) {
	committed := int64(-1)
	if f, err := readPerfFile("../../BENCH_kimbap.json"); err == nil {
		for _, r := range f.Records {
			if r.Name == "reduce_sync_full" && r.Hosts == 8 && r.Threads == 4 {
				committed = r.CommBytes
			}
		}
	}
	cfg := Config{Scale: Full, Threads: 4, Reps: 1}
	rec := cfg.syncPerf("reduce_sync_full", npm.Full, 8, false)
	if limit := int64(v1ReduceSyncBytes * 7 / 10); rec.CommBytes > limit {
		t.Errorf("comm_bytes = %d/op, above the 30%%-under-v1 ceiling %d (v1 = %d)",
			rec.CommBytes, limit, int64(v1ReduceSyncBytes))
	}
	if committed < 0 {
		t.Log("no committed BENCH_kimbap.json record; only the v1 ceiling was checked")
	} else if slack := committed + committed/200; rec.CommBytes > slack {
		t.Errorf("comm_bytes = %d/op, regressed past the committed %d (+0.5%% = %d)",
			rec.CommBytes, committed, slack)
	}
}
