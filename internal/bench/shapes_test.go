package bench

import (
	"testing"

	"kimbap/internal/algorithms"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Shape tests: the paper's qualitative evaluation claims, asserted through
// deterministic counters (rounds, messages, bytes, store operations)
// rather than wall-clock time, so they hold on any hardware.

// §6.2 / Figure 9c: pointer-jumping algorithms need far fewer rounds than
// label propagation on a high-diameter graph.
func TestShapePointerJumpingBeatsLPOnHighDiameter(t *testing.T) {
	g := gen.Grid(24, 24, false, 1) // diameter ~46
	rounds := func(algo func(h *runtime.Host, cfg algorithms.Config, out []graph.NodeID) algorithms.CCStats) algorithms.CCStats {
		c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, Policy: partition.CVC})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		out := make([]graph.NodeID, g.NumNodes())
		var stats algorithms.CCStats
		c.Run(func(h *runtime.Host) {
			s := algo(h, algorithms.Config{}, out)
			if h.Rank == 0 {
				stats = s
			}
		})
		return stats
	}
	lp := rounds(algorithms.CCLP)
	sv := rounds(algorithms.CCSV)
	sclp := rounds(algorithms.CCSCLP)
	if sv.HookRounds+sv.ShortcutRounds >= lp.HookRounds {
		t.Errorf("SV rounds (%d) should be far below LP rounds (%d)",
			sv.HookRounds+sv.ShortcutRounds, lp.HookRounds)
	}
	if sclp.HookRounds+sclp.ShortcutRounds >= lp.HookRounds {
		t.Errorf("SCLP rounds (%d) should be far below LP rounds (%d)",
			sclp.HookRounds+sclp.ShortcutRounds, lp.HookRounds)
	}
}

// §6.4 / Figure 11: the MC variant performs vastly more store operations
// than the SGR design sends messages — the per-key CAS traffic SGR batches
// away.
func TestShapeMCStoreTrafficExceedsSGRMessages(t *testing.T) {
	g := gen.BuildSmall(gen.Friendster)
	const hosts = 2

	// Full variant message count.
	cFull, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, Policy: partition.CVC})
	if err != nil {
		t.Fatal(err)
	}
	defer cFull.Close()
	out := make([]graph.NodeID, g.NumNodes())
	cFull.Run(func(h *runtime.Host) { algorithms.CCSV(h, algorithms.Config{}, out) })
	fullMsgs, _ := cFull.CommStats()

	// MC variant store operations.
	store := kvstore.NewCluster(hosts, hosts)
	cMC, err := runtime.NewCluster(g, runtime.Config{NumHosts: hosts, Policy: partition.CVC})
	if err != nil {
		t.Fatal(err)
	}
	defer cMC.Close()
	cMC.Run(func(h *runtime.Host) {
		algorithms.CCSV(h, algorithms.Config{Variant: npm.MC, Store: store}, out)
	})
	var mcOps int64
	for h := 0; h < hosts; h++ {
		s := store.Stats(h)
		mcOps += s.Gets.Load() + s.Sets.Load() + s.CASAttempt.Load()
	}
	if mcOps < 10*fullMsgs {
		t.Errorf("MC store ops (%d) should dwarf SGR messages (%d)", mcOps, fullMsgs)
	}
}

// §4.2 GAR: the partition-aware variant communicates less than the
// hash-distributed one, which must fetch even its own partition's
// properties.
func TestShapeGARCutsCommunication(t *testing.T) {
	g := gen.BuildSmall(gen.RoadEurope)
	bytesFor := func(v npm.Variant) int64 {
		c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 2, Policy: partition.CVC})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		out := make([]graph.NodeID, g.NumNodes())
		c.Run(func(h *runtime.Host) {
			algorithms.CCSV(h, algorithms.Config{Variant: v}, out)
		})
		_, bytes := c.CommStats()
		return bytes
	}
	full, sgrcf := bytesFor(npm.Full), bytesFor(npm.SGRCF)
	if full >= sgrcf {
		t.Errorf("GAR bytes (%d) should be below hash-distributed bytes (%d)", full, sgrcf)
	}
}

// §6.1 read locality: on a handful of hosts, at least half of all property
// reads hit master values (the paper reports 65% at 4 hosts).
func TestShapeMasterReadLocality(t *testing.T) {
	g := gen.BuildSmall(gen.Friendster)
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 4, Policy: partition.CVC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs := make([]statsRecorder, 4)
	out := make([]graph.NodeID, g.NumNodes())
	c.Run(func(h *runtime.Host) {
		algorithms.CCSV(h, algorithms.Config{StatsSink: &recs[h.Rank]}, out)
	})
	var master, remote int64
	for i := range recs {
		master += recs[i].master.Load()
		remote += recs[i].remote.Load()
	}
	if master+remote == 0 {
		t.Fatal("no reads recorded")
	}
	pct := 100 * float64(master) / float64(master+remote)
	if pct < 40 {
		t.Errorf("master read fraction %.1f%%, expected the paper's strong locality (>40%%)", pct)
	}
}

// Figure 9a companion: Vite's early-termination heuristic trades quality —
// Kimbap's Louvain modularity must be at least as good.
func TestShapeKimbapLVQualityAtLeastVite(t *testing.T) {
	g := gen.Communities(6, 40, 5, 1, true, 77)
	kim, err := algorithms.Louvain(g, runtime.Config{NumHosts: 2},
		algorithms.Config{}, algorithms.CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vit, err := algorithms.Louvain(g, runtime.Config{NumHosts: 2},
		algorithms.Config{Variant: npm.Vite},
		algorithms.CDOptions{EarlyTermination: true})
	if err != nil {
		t.Fatal(err)
	}
	if kim.Modularity < vit.Modularity-0.02 {
		t.Errorf("Kimbap Q=%.4f below Vite Q=%.4f", kim.Modularity, vit.Modularity)
	}
}

// The pinned-mirror broadcast sends only changed values: total broadcast
// bytes must shrink as CC-LP converges (late rounds change few labels).
// Asserted indirectly: Kimbap-LP on a path graph sends far fewer bytes
// than a full-state broadcast every round would.
func TestShapeDirtyOnlyBroadcast(t *testing.T) {
	g := gen.Grid(32, 32, false, 1) // diameter ~62, many mirrors under CVC
	c, err := runtime.NewCluster(g, runtime.Config{NumHosts: 4, Policy: partition.CVC})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	var stats algorithms.CCStats
	c.Run(func(h *runtime.Host) {
		s := algorithms.CCLP(h, algorithms.Config{}, out)
		if h.Rank == 0 {
			stats = s
		}
	})
	_, bytes := c.CommStats()
	// A full broadcast of all mirrors every round costs at least
	// rounds * mirrors * 4 bytes; the dirty-only protocol must be far
	// below that on a chain (only the frontier changes each round).
	mirrors := 0
	for _, hp := range c.Part.Hosts {
		mirrors += hp.NumMirrors()
	}
	fullCost := int64(stats.HookRounds) * int64(mirrors) * 4
	if fullCost > 0 && bytes > fullCost {
		t.Errorf("comm bytes %d exceed even a naive full broadcast (%d)", bytes, fullCost)
	}
}
