package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	gort "runtime"
	"time"

	"kimbap/internal/algorithms"
	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// The perf experiment tracks the repo's own performance trajectory: a
// fixed suite of sync-path microbenchmarks plus one end-to-end run, each
// reported as wall time, communication volume, conflicts, and allocations
// per operation. Unlike the paper-reproduction experiments, its subject is
// this implementation across commits, not the paper's systems — the JSON
// it emits (BENCH_kimbap.json via `make bench`) carries the previous
// file's wall times forward so every regeneration shows before/after.

// PerfRecord is one measured configuration in BENCH_kimbap.json.
type PerfRecord struct {
	Name         string  `json:"name"`
	Hosts        int     `json:"hosts"`
	Threads      int     `json:"threads"`
	WallNsPerOp  float64 `json:"wall_ns_per_op"`
	CommMessages int64   `json:"comm_messages"` // per op, cluster-wide
	CommBytes    int64   `json:"comm_bytes"`    // per op, cluster-wide
	Conflicts    int64   `json:"conflicts"`     // over the whole measured window
	AllocsPerOp  float64 `json:"allocs_per_op"` // cluster-wide (process mallocs)
	// PeakAllocBytes is the bytes allocated during the fastest measured
	// window (TotalAlloc delta) — a cumulative upper bound on the op's
	// peak heap growth, the column the streaming-ingestion records exist
	// to shrink. Filled by the timeOp-measured ingestion records.
	PeakAllocBytes int64 `json:"peak_alloc_bytes,omitempty"`
	// Per-tag breakdown of the comm columns (same units), keyed by
	// comm.Tag name. Tags with no traffic are omitted.
	CommTagMessages map[string]int64 `json:"comm_tag_messages,omitempty"`
	CommTagBytes    map[string]int64 `json:"comm_tag_bytes,omitempty"`
	// PrevNsPerOp is the wall time recorded in the JSON file this run
	// replaced, if that file had a matching record — the before half of
	// the before/after comparison.
	PrevNsPerOp float64 `json:"prev_ns_per_op,omitempty"`
	// Per-BSP-round activity for the round-logged experiments, one entry
	// per round in execution order, summed across hosts: local vertices
	// visited, reduce-sync bytes sent, and whether the round was a
	// hook/propagate round (as opposed to a pointer-jumping shortcut).
	RoundActive      []int64 `json:"round_active,omitempty"`
	RoundReduceBytes []int64 `json:"round_reduce_bytes,omitempty"`
	RoundHook        []bool  `json:"round_hook,omitempty"`
	// RoundMode is the execution mode per round: "bsp" or "async" when
	// every host agreed, "mixed" when the adaptive controllers diverged
	// (mode is a host-local decision; the collectives meet either way).
	RoundMode []string `json:"round_mode,omitempty"`
	// RoundDir is the traversal direction per round: "push" or "pull".
	// Direction is a globally-coordinated decision (a pull round elides the
	// reduce collective, so the hosts must agree on the sequence); "mixed"
	// would indicate a coordination bug and is folded defensively.
	RoundDir []string `json:"round_dir,omitempty"`
}

// perfFile is the on-disk shape of BENCH_kimbap.json.
type perfFile struct {
	Schema  string       `json:"schema"`
	Records []PerfRecord `json:"records"`
}

const perfSchema = "kimbap-bench/v1"

// perfKey identifies a record across file generations.
func perfKey(r PerfRecord) string {
	return fmt.Sprintf("%s/%dh/%dt", r.Name, r.Hosts, r.Threads)
}

// PerfTo runs the suite, prints a table to w, and — when jsonPath is
// non-empty — rewrites that file, carrying any matching wall times from
// its previous contents into PrevNsPerOp.
func (c Config) PerfTo(w io.Writer, jsonPath string) error {
	records := []PerfRecord{
		c.syncPerf("reduce_sync_full", npm.Full, 2, false),
		c.syncPerf("reduce_sync_full", npm.Full, 8, false),
		c.syncPerf("reduce_sync_sgrcf", npm.SGRCF, 8, false),
		c.syncPerf("reduce_sync_sgronly", npm.SGROnly, 8, false),
		c.syncPerf("reduce_broadcast_full", npm.Full, 8, true),
		c.ccPerf("cc_sv_full", npm.Full, 4, false),
		c.ccPerf("cc_sv_full", npm.Full, 8, false),
		c.ccPerf("cc_sv_full_dense", npm.Full, 8, true),
		c.ccPerf("cc_sv_full_sparse", npm.Full, 8, false),
		// The §14 reorder ablation pair: dense CC-SV on the cache-spilling
		// locality workload, unreordered vs blocked-degree, same 4-host
		// split. The live gate (perf_regression_test.go) holds the reordered
		// run to 95% of the baseline.
		c.ccReorderPerf("cc_sv_locality", 4, ""),
		c.ccReorderPerf("cc_sv_full_reordered", 4, graph.ReorderBlockedDegree),
		// Execution-mode trio on the skewed-convergence workload (a long
		// chain: maximal pointer-jumping depth, the async drain's best
		// case) — the static BSP baseline, the static async drain, and the
		// telemetry-driven adaptive controller, plus adaptive at 4 hosts
		// where mirrors dilute the async win and the policy must hold back.
		c.ccModePerf("cc_sv_bsp", 1, algorithms.ExecBSP),
		c.ccModePerf("cc_sv_async", 1, algorithms.ExecAsync),
		c.ccModePerf("cc_sv_adaptive", 1, algorithms.ExecAdaptive),
		c.ccModePerf("cc_sv_adaptive", 4, algorithms.ExecAdaptive),
		// Direction trio (§15) on the standard R-MAT under the pull-complete
		// IEC partition, dense rounds: the push baseline, static pull (every
		// hook round bottom-up over the in-edge CSR, broadcast-only round
		// ends — its round_reduce_bytes column is all zeros), and the
		// globally-reduced adaptive rule. The live gate
		// (perf_regression_test.go TestDirectionGate) holds pull under the
		// push wall and adaptive near the best static direction.
		c.ccDirPerf("cc_sv_push", 4, algorithms.DirPush),
		c.ccDirPerf("cc_sv_pull", 4, algorithms.DirPull),
		c.ccDirPerf("cc_sv_direction_adaptive", 4, algorithms.DirAdaptive),
		c.misPerf("mis_full", 1, algorithms.ExecBSP),
		c.misPerf("mis_async", 1, algorithms.ExecAsync),
	}
	records = append(records, c.ingestPerf()...)
	records = append(records, c.ingestIOPerf()...)

	if jsonPath != "" {
		prev := map[string]float64{}
		if old, err := readPerfFile(jsonPath); err == nil {
			for _, r := range old.Records {
				prev[perfKey(r)] = r.WallNsPerOp
			}
		}
		for i := range records {
			records[i].PrevNsPerOp = prev[perfKey(records[i])]
		}
		if err := writePerfFile(jsonPath, records); err != nil {
			return err
		}
	}

	t := NewTable(fmt.Sprintf("Perf trajectory (scale %s, %d threads/host)", c.Scale, c.Threads),
		"name", "hosts", "ns/op", "msgs/op", "bytes/op", "conflicts", "allocs/op", "peak bytes", "prev ns/op", "vs prev")
	for _, r := range records {
		delta := ""
		if r.PrevNsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(r.WallNsPerOp-r.PrevNsPerOp)/r.PrevNsPerOp)
		}
		t.Row(r.Name, r.Hosts, r.WallNsPerOp, r.CommMessages, r.CommBytes,
			r.Conflicts, r.AllocsPerOp, r.PeakAllocBytes, r.PrevNsPerOp, delta)
	}
	t.Fprint(w)

	bt := NewTable("Comm breakdown by tag (per op, cluster-wide)",
		"name", "hosts", "tag", "msgs", "bytes")
	for _, r := range records {
		for _, tag := range tagNames(r.CommTagMessages) {
			bt.Row(r.Name, r.Hosts, tag, r.CommTagMessages[tag], r.CommTagBytes[tag])
		}
	}
	bt.Fprint(w)

	rt := NewTable("Per-round activity (cluster-wide)",
		"name", "hosts", "round", "kind", "mode", "dir", "active", "reduce bytes")
	for _, r := range records {
		for i := range r.RoundActive {
			kind := "shortcut"
			if r.RoundHook[i] {
				kind = "hook"
			}
			mode := "bsp"
			if i < len(r.RoundMode) {
				mode = r.RoundMode[i]
			}
			dir := "push"
			if i < len(r.RoundDir) {
				dir = r.RoundDir[i]
			}
			rt.Row(r.Name, r.Hosts, i, kind, mode, dir, r.RoundActive[i], r.RoundReduceBytes[i])
		}
	}
	rt.Fprint(w)
	return nil
}

// tagNames returns the breakdown keys in comm.Tag order.
func tagNames(m map[string]int64) []string {
	var out []string
	for t := 0; t < comm.NumTags; t++ {
		if name := comm.Tag(t).String(); m[name] != 0 {
			out = append(out, name)
		}
	}
	return out
}

// tagBreakdown converts per-tag counter deltas into name-keyed per-op
// maps, omitting tags with no traffic.
func tagBreakdown(m0, m1, b0, b1 []int64, iters int64) (msgs, bytes map[string]int64) {
	for t := range m1 {
		dm := (m1[t] - m0[t]) / iters
		db := (b1[t] - b0[t]) / iters
		if dm == 0 && db == 0 {
			continue
		}
		if msgs == nil {
			msgs = map[string]int64{}
			bytes = map[string]int64{}
		}
		msgs[comm.Tag(t).String()] = dm
		bytes[comm.Tag(t).String()] = db
	}
	return msgs, bytes
}

func readPerfFile(path string) (perfFile, error) {
	var f perfFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(data, &f)
}

func writePerfFile(path string, records []PerfRecord) error {
	data, err := json.MarshalIndent(perfFile{Schema: perfSchema, Records: records}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// perfGraph returns the suite's fixed input: the same R-MAT the npm
// package's go-test benchmarks use at full scale, a quarter-size one at
// small scale so the smoke path stays fast.
func (c Config) perfGraph() (*graph.Graph, int) {
	if c.Scale == Full {
		return gen.RMAT(11, 8, false, 3), 40
	}
	return gen.RMAT(9, 8, false, 3), 5
}

// syncPerf measures a reduce (optionally + broadcast) round: warm the
// cluster, then time iters rounds while sampling comm stats, process
// mallocs, and the conflict counter around the measured window. Reps
// windows are run and the fastest kept.
func (c Config) syncPerf(name string, variant npm.Variant, hosts int, pin bool) PerfRecord {
	return c.syncPerfWire(name, variant, hosts, pin, comm.WireAuto)
}

// syncPerfWire is syncPerf with an explicit wire format, letting the
// regression gate measure the v1 baseline live on the current workload
// instead of trusting a recorded constant.
func (c Config) syncPerfWire(name string, variant npm.Variant, hosts int, pin bool,
	wire comm.WireFormat) PerfRecord {

	g, iters := c.perfGraph()
	cluster, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: c.Threads, Wire: wire,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	const warmup = 3
	maps := make([]npm.Map[graph.NodeID], hosts)
	rounds := func(h *runtime.Host, base, n int) {
		m := maps[h.Rank]
		total := h.HP.NumGlobalNodes()
		for i := base; i < base+n; i++ {
			h.ParFor(1024, func(tid, j int) {
				m.Reduce(tid, graph.NodeID((j*31+i)%total), graph.NodeID(j%total))
			})
			m.ReduceSync()
			if pin {
				m.BroadcastSync()
			}
		}
	}
	cluster.Run(func(h *runtime.Host) {
		m := npm.New(npm.Options[graph.NodeID]{
			Host: h, Op: npm.MinNodeID(), Codec: npm.NodeIDCodec{}, Variant: variant,
		})
		maps[h.Rank] = m
		h.ParForNodes(func(_ int, l graph.NodeID) {
			gid := h.HP.GlobalID(l)
			m.Set(gid, gid)
		})
		m.InitSync()
		if pin {
			m.PinMirrors()
		}
		rounds(h, 0, warmup)
	})

	rec := PerfRecord{Name: name, Hosts: hosts, Threads: c.Threads}
	best := time.Duration(-1)
	for rep := 0; rep < c.Reps; rep++ {
		base := warmup + rep*iters
		cw := npm.BeginConflictWindow()
		msgs0, bytes0 := cluster.CommStats()
		tm0, tb0 := cluster.CommStatsByTag()
		var ms0, ms1 gort.MemStats
		gort.ReadMemStats(&ms0)
		start := time.Now()
		cluster.Run(func(h *runtime.Host) { rounds(h, base, iters) })
		wall := time.Since(start)
		gort.ReadMemStats(&ms1)
		msgs1, bytes1 := cluster.CommStats()
		tm1, tb1 := cluster.CommStatsByTag()
		conflicts := cw.End()
		if best < 0 || wall < best {
			best = wall
			rec.WallNsPerOp = float64(wall.Nanoseconds()) / float64(iters)
			rec.CommMessages = (msgs1 - msgs0) / int64(iters)
			rec.CommBytes = (bytes1 - bytes0) / int64(iters)
			rec.CommTagMessages, rec.CommTagBytes = tagBreakdown(tm0, tm1, tb0, tb1, int64(iters))
			rec.Conflicts = conflicts
			rec.AllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
		}
	}
	return rec
}

// ccPerf measures one end-to-end CC-SV run (op = the whole computation),
// dense or frontier-driven, and records the per-round activity log.
func (c Config) ccPerf(name string, variant npm.Variant, hosts int, dense bool) PerfRecord {
	g, _ := c.perfGraph()
	return c.ccPerfOn(name, g, variant, hosts, dense, algorithms.ExecBSP, "", "", "")
}

// localityGraph is the reorder ablation's input: big enough that the
// property and adjacency arrays spill the last-level cache, which the
// suite's standard R-MAT (2^11 nodes) never does — below that size a
// permutation pass moves nothing that wasn't already cache-resident.
func (c Config) localityGraph() *graph.Graph {
	if c.Scale == Full {
		return gen.RMAT(17, 8, false, 3)
	}
	return gen.RMAT(10, 8, false, 3)
}

// ccReorderPerf measures dense CC-SV on the locality workload under one §14
// reorder policy ("" = the unreordered baseline the ablation compares to).
// Reorder and partition happen inside NewCluster, outside the timed window:
// the record isolates the steady-state locality effect, while the reorder
// pass's own cost is gated separately against the stream build.
func (c Config) ccReorderPerf(name string, hosts int, pol graph.ReorderPolicy) PerfRecord {
	return c.ccPerfOn(name, c.localityGraph(), npm.Full, hosts, true, algorithms.ExecBSP, pol, "", "")
}

// chainGraph is the skewed-convergence workload for the execution-mode
// records: a long path maximizes pointer-jumping depth, so BSP pays a
// whole collective round per jump level while an asynchronous drain
// collapses each host's local chains in one pass.
func (c Config) chainGraph() *graph.Graph {
	if c.Scale == Full {
		return gen.Chain(1<<17, false, 3)
	}
	return gen.Chain(1<<13, false, 3)
}

// ccModePerf measures CC-SV on the chain workload under one execution mode.
func (c Config) ccModePerf(name string, hosts int, mode algorithms.Mode) PerfRecord {
	return c.ccPerfOn(name, c.chainGraph(), npm.Full, hosts, false, mode, "", "", "")
}

// ccDirPerf measures dense CC-SV on the standard R-MAT under one traversal
// direction. The partition is IEC — the pull-complete policy — so pull is
// actually exercised rather than silently falling back to push.
func (c Config) ccDirPerf(name string, hosts int, dir algorithms.Direction) PerfRecord {
	g, _ := c.perfGraph()
	return c.ccPerfOn(name, g, npm.Full, hosts, true, algorithms.ExecBSP, "", dir, partition.IEC)
}

func (c Config) ccPerfOn(name string, g *graph.Graph, variant npm.Variant, hosts int,
	dense bool, mode algorithms.Mode, reorder graph.ReorderPolicy,
	dir algorithms.Direction, pol partition.Policy) PerfRecord {

	rec := PerfRecord{Name: name, Hosts: hosts, Threads: c.Threads}
	best := time.Duration(-1)
	for rep := 0; rep < c.Reps; rep++ {
		cluster, err := runtime.NewCluster(g, runtime.Config{
			NumHosts: hosts, ThreadsPerHost: c.Threads, Reorder: reorder, Policy: pol,
		})
		if err != nil {
			panic(err)
		}
		out := make([]graph.NodeID, g.NumNodes())
		perHost := make([]algorithms.CCStats, hosts)
		cw := npm.BeginConflictWindow()
		var ms0, ms1 gort.MemStats
		gort.ReadMemStats(&ms0)
		start := time.Now()
		cluster.Run(func(h *runtime.Host) {
			perHost[h.Rank] = algorithms.CCSV(h, algorithms.Config{
				Variant: variant, Dense: dense, LogRounds: true, Mode: mode, Direction: dir,
			}, out)
		})
		wall := time.Since(start)
		gort.ReadMemStats(&ms1)
		msgs, bytes := cluster.CommStats()
		tm, tb := cluster.CommStatsByTag()
		conflicts := cw.End()
		cluster.Close()
		if best < 0 || wall < best {
			best = wall
			rec.WallNsPerOp = float64(wall.Nanoseconds())
			rec.CommMessages = msgs
			rec.CommBytes = bytes
			rec.CommTagMessages, rec.CommTagBytes = tagBreakdown(
				make([]int64, len(tm)), tm, make([]int64, len(tb)), tb, 1)
			rec.Conflicts = conflicts
			rec.AllocsPerOp = float64(ms1.Mallocs - ms0.Mallocs)
			logs := make([]algorithms.RoundStats, hosts)
			for i, st := range perHost {
				logs[i] = st.PerRound
			}
			rec.RoundActive, rec.RoundReduceBytes, rec.RoundHook, rec.RoundMode, rec.RoundDir = sumRounds(logs)
		}
	}
	return rec
}

// misPerf measures one end-to-end MIS run under one execution mode (the
// standard R-MAT input; MIS keeps no round log, so only the scalar
// columns are filled).
func (c Config) misPerf(name string, hosts int, mode algorithms.Mode) PerfRecord {
	g, _ := c.perfGraph()
	rec := PerfRecord{Name: name, Hosts: hosts, Threads: c.Threads}
	best := time.Duration(-1)
	for rep := 0; rep < c.Reps; rep++ {
		cluster, err := runtime.NewCluster(g, runtime.Config{
			NumHosts: hosts, ThreadsPerHost: c.Threads,
		})
		if err != nil {
			panic(err)
		}
		out := make([]bool, g.NumNodes())
		cw := npm.BeginConflictWindow()
		var ms0, ms1 gort.MemStats
		gort.ReadMemStats(&ms0)
		start := time.Now()
		cluster.Run(func(h *runtime.Host) {
			algorithms.MIS(h, algorithms.Config{Mode: mode}, out)
		})
		wall := time.Since(start)
		gort.ReadMemStats(&ms1)
		msgs, bytes := cluster.CommStats()
		tm, tb := cluster.CommStatsByTag()
		conflicts := cw.End()
		cluster.Close()
		if best < 0 || wall < best {
			best = wall
			rec.WallNsPerOp = float64(wall.Nanoseconds())
			rec.CommMessages = msgs
			rec.CommBytes = bytes
			rec.CommTagMessages, rec.CommTagBytes = tagBreakdown(
				make([]int64, len(tm)), tm, make([]int64, len(tb)), tb, 1)
			rec.Conflicts = conflicts
			rec.AllocsPerOp = float64(ms1.Mallocs - ms0.Mallocs)
		}
	}
	return rec
}

// sumRounds folds the per-host round logs into cluster-wide totals.
// Rounds are collective, so every host logs the same sequence length; the
// execution mode is host-local, so a round reports "mixed" when adaptive
// controllers diverged across hosts. Direction is globally coordinated —
// "mixed" there would be a coordination bug — but it is folded the same
// defensive way rather than trusting host 0.
func sumRounds(perHost []algorithms.RoundStats) (active, bytes []int64, hook []bool, mode, dir []string) {
	rounds := len(perHost[0].Active)
	active = make([]int64, rounds)
	bytes = make([]int64, rounds)
	for _, st := range perHost {
		for r := 0; r < rounds; r++ {
			active[r] += st.Active[r]
			bytes[r] += st.ReduceBytes[r]
		}
	}
	fold := func(col func(algorithms.RoundStats) []string) []string {
		out := make([]string, 0, rounds)
		for r := 0; r < rounds; r++ {
			v := col(perHost[0])[r]
			for _, st := range perHost[1:] {
				if col(st)[r] != v {
					v = "mixed"
					break
				}
			}
			out = append(out, v)
		}
		return out
	}
	mode = fold(func(st algorithms.RoundStats) []string { return st.Mode })
	dir = fold(func(st algorithms.RoundStats) []string { return st.Dir })
	return active, bytes, perHost[0].Hook, mode, dir
}
