package bench

import (
	"os"
	"path/filepath"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

// The ingest_io records measure the out-of-core ingestion path against the
// materialize-then-build twin on the same on-disk bytes. Three families:
// ingest_io_text streams a sharded text edge list through the two-scan
// build, ingest_io_kmb2 is the in-memory twin (decode every KMB2 block
// into edge columns, then Builder.Build), and ingest_io_stream_build runs
// StreamBuilder over the same KMB2 file at a worker sweep. The
// peak_alloc_bytes column is the point: streaming stays at O(CSR) plus the
// fixed block working set while the twin pays O(edges) + O(CSR).

// ioPreset is the fixed input for the IO records: the power-law social
// analogue, the ingestion suite's usual subject.
const ioPreset = gen.Friendster

// ioStreamWorkers is the worker sweep for the stream-build record.
var ioStreamWorkers = []int{1, 4, 8}

// ioFixture is the preset graph written out in both streamable formats.
type ioFixture struct {
	g          *graph.Graph
	text, kmb2 string
}

// ioFixtureFor materializes the fixture under a temp dir; the cleanup
// removes it. Failures panic like the rest of the harness — a broken
// fixture means the suite itself is broken, not the measured code.
func (c Config) ioFixtureFor(p gen.Preset) (ioFixture, func()) {
	g := c.graphFor(p)
	dir, err := os.MkdirTemp("", "kimbap-ingest-io-")
	if err != nil {
		panic(err)
	}
	fx := ioFixture{
		g:    g,
		text: filepath.Join(dir, "graph.el"),
		kmb2: filepath.Join(dir, "graph.kmb2"),
	}
	f, err := os.Create(fx.text)
	if err != nil {
		panic(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	if err := graph.SaveKMB2(fx.kmb2, g, 0); err != nil {
		panic(err)
	}
	return fx, func() { os.RemoveAll(dir) }
}

// csrBytes is the final CSR footprint: offsets, dsts, and (when weighted)
// weights — the denominator of the streaming peak-allocation gate.
func csrBytes(g *graph.Graph) int64 {
	b := int64(g.NumNodes()+1)*8 + g.NumEdges()*4
	if g.Weighted() {
		b += g.NumEdges() * 8
	}
	return b
}

// streamText runs the chunked text parse + two-scan build at w workers.
func (fx ioFixture) streamText(w int) {
	src, err := graph.OpenText(fx.text)
	if err != nil {
		panic(err)
	}
	defer src.Close()
	if _, err := graph.NewStreamBuilder(src).SetWorkers(w).Build(); err != nil {
		panic(err)
	}
}

// streamKMB2 runs the two-scan build over the KMB2 block file at w workers.
func (fx ioFixture) streamKMB2(w int) {
	src, err := graph.OpenKMB2(fx.kmb2)
	if err != nil {
		panic(err)
	}
	defer src.Close()
	if _, err := graph.NewStreamBuilder(src).SetWorkers(w).Build(); err != nil {
		panic(err)
	}
}

// loadKMB2 is the materialize-then-build twin on the same file.
func (fx ioFixture) loadKMB2(w int) {
	if _, err := graph.LoadKMB2(fx.kmb2, w); err != nil {
		panic(err)
	}
}

// ingestIOPerf returns the ingest_io_* records for the perf trajectory.
func (c Config) ingestIOPerf() []PerfRecord {
	fx, cleanup := c.ioFixtureFor(ioPreset)
	defer cleanup()
	name := func(fam string) string { return fam + "/" + string(ioPreset) }
	recs := []PerfRecord{
		c.timeOp(PerfRecord{Name: name("ingest_io_text"), Hosts: 1, Threads: c.Threads},
			func() {}, func() { fx.streamText(c.Threads) }),
		c.timeOp(PerfRecord{Name: name("ingest_io_kmb2"), Hosts: 1, Threads: c.Threads},
			func() {}, func() { fx.loadKMB2(c.Threads) }),
	}
	for _, w := range ioStreamWorkers {
		recs = append(recs,
			c.timeOp(PerfRecord{Name: name("ingest_io_stream_build"), Hosts: 1, Threads: w},
				func() {}, func() { fx.streamKMB2(w) }))
	}
	return recs
}
