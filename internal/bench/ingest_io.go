package bench

import (
	"os"
	"path/filepath"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

// The ingest_io records measure the out-of-core ingestion path against the
// materialize-then-build twin on the same on-disk bytes. Three families:
// ingest_io_text streams a sharded text edge list through the two-scan
// build, ingest_io_kmb2 is the in-memory twin (decode every KMB2 block
// into edge columns, then Builder.Build), and ingest_io_stream_build runs
// StreamBuilder over the same KMB2 file at a worker sweep. The
// peak_alloc_bytes column is the point: streaming stays at O(CSR) plus the
// fixed block working set while the twin pays O(edges) + O(CSR).

// ioPreset is the fixed input for the IO records: the power-law social
// analogue, the ingestion suite's usual subject.
const ioPreset = gen.Friendster

// ioStreamWorkers is the worker sweep for the stream-build record.
var ioStreamWorkers = []int{1, 4, 8}

// ioFixture is the preset graph written out in both streamable formats.
type ioFixture struct {
	g          *graph.Graph
	text, kmb2 string
}

// ioFixtureFor materializes the fixture under a temp dir; the cleanup
// removes it. Failures panic like the rest of the harness — a broken
// fixture means the suite itself is broken, not the measured code.
func (c Config) ioFixtureFor(p gen.Preset) (ioFixture, func()) {
	g := c.graphFor(p)
	dir, err := os.MkdirTemp("", "kimbap-ingest-io-")
	if err != nil {
		panic(err)
	}
	fx := ioFixture{
		g:    g,
		text: filepath.Join(dir, "graph.el"),
		kmb2: filepath.Join(dir, "graph.kmb2"),
	}
	f, err := os.Create(fx.text)
	if err != nil {
		panic(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	if err := graph.SaveKMB2(fx.kmb2, g, 0); err != nil {
		panic(err)
	}
	return fx, func() { os.RemoveAll(dir) }
}

// ioFixtureScattered writes the preset's edges into a KMB2 file in a
// deterministic stride-scattered order, modelling a raw ingest whose edges
// arrive in no useful order. The standard fixture's KMB2 comes from
// SaveKMB2 walking an already-sorted CSR, so a plain rebuild gets its
// adjacency sort nearly for free — comparing the fused build+reorder
// against that would bill the reorder path for a full adjacency sort the
// baseline never pays. The reorder_build record and its cost gate compare
// on this fixture, where both sides sort from scratch.
func (c Config) ioFixtureScattered(p gen.Preset) (ioFixture, func()) {
	g := c.graphFor(p)
	dir, err := os.MkdirTemp("", "kimbap-ingest-io-")
	if err != nil {
		panic(err)
	}
	fx := ioFixture{g: g, kmb2: filepath.Join(dir, "graph-scattered.kmb2")}
	f, err := os.Create(fx.kmb2)
	if err != nil {
		panic(err)
	}
	kw, err := graph.NewKMB2Writer(f, g.NumNodes(), g.Weighted(), 0)
	if err != nil {
		panic(err)
	}
	edges := g.Edges()
	m := int64(len(edges))
	if m > 0 {
		// Golden-ratio stride, nudged coprime to m: visiting k*stride mod m
		// walks every edge exactly once in a fixed maximally-scattered order.
		stride := m*61803/100000 + 1
		for gcd(stride, m) != 1 {
			stride++
		}
		for k := int64(0); k < m; k++ {
			e := edges[(k*stride)%m]
			if err := kw.AppendEdge(e.Src, e.Dst, e.Weight); err != nil {
				panic(err)
			}
		}
	}
	if err := kw.Close(); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	return fx, func() { os.RemoveAll(dir) }
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// csrBytes is the final CSR footprint: offsets, dsts, and (when weighted)
// weights — the denominator of the streaming peak-allocation gate.
func csrBytes(g *graph.Graph) int64 {
	b := int64(g.NumNodes()+1)*8 + g.NumEdges()*4
	if g.Weighted() {
		b += g.NumEdges() * 8
	}
	return b
}

// streamText runs the chunked text parse + two-scan build at w workers.
func (fx ioFixture) streamText(w int) {
	src, err := graph.OpenText(fx.text)
	if err != nil {
		panic(err)
	}
	defer src.Close()
	if _, err := graph.NewStreamBuilder(src).SetWorkers(w).Build(); err != nil {
		panic(err)
	}
}

// streamKMB2 runs the two-scan build over the KMB2 block file at w workers.
func (fx ioFixture) streamKMB2(w int) {
	src, err := graph.OpenKMB2(fx.kmb2)
	if err != nil {
		panic(err)
	}
	defer src.Close()
	if _, err := graph.NewStreamBuilder(src).SetWorkers(w).Build(); err != nil {
		panic(err)
	}
}

// streamKMB2Reordered runs the fused two-scan build + §14 reorder over the
// KMB2 block file: the first scan's degree counts feed the permutation, so
// the second scan scatters edges straight into the permuted CSR.
func (fx ioFixture) streamKMB2Reordered(w int, pol graph.ReorderPolicy, blocks int) {
	src, err := graph.OpenKMB2(fx.kmb2)
	if err != nil {
		panic(err)
	}
	defer src.Close()
	if _, _, err := graph.NewStreamBuilder(src).SetWorkers(w).BuildReordered(pol, blocks); err != nil {
		panic(err)
	}
}

// loadKMB2 is the materialize-then-build twin on the same file.
func (fx ioFixture) loadKMB2(w int) {
	if _, err := graph.LoadKMB2(fx.kmb2, w); err != nil {
		panic(err)
	}
}

// ingestIOPerf returns the ingest_io_* records for the perf trajectory.
func (c Config) ingestIOPerf() []PerfRecord {
	fx, cleanup := c.ioFixtureFor(ioPreset)
	defer cleanup()
	name := func(fam string) string { return fam + "/" + string(ioPreset) }
	recs := []PerfRecord{
		c.timeOp(PerfRecord{Name: name("ingest_io_text"), Hosts: 1, Threads: c.Threads},
			func() {}, func() { fx.streamText(c.Threads) }),
		c.timeOp(PerfRecord{Name: name("ingest_io_kmb2"), Hosts: 1, Threads: c.Threads},
			func() {}, func() { fx.loadKMB2(c.Threads) }),
	}
	for _, w := range ioStreamWorkers {
		recs = append(recs,
			c.timeOp(PerfRecord{Name: name("ingest_io_stream_build"), Hosts: 1, Threads: w},
				func() {}, func() { fx.streamKMB2(w) }))
	}
	// The reorder pair rides the scattered fixture (raw ingest order — see
	// ioFixtureScattered): ingest_io_scattered is the plain two-scan build
	// on it, reorder_build the fused build+reorder on the same bytes. Their
	// delta is the whole cost of the blocked-degree permutation, gated at
	// 15% of build time by TestReorderBuildCostGate.
	sfx, scleanup := c.ioFixtureScattered(ioPreset)
	defer scleanup()
	recs = append(recs,
		c.timeOp(PerfRecord{Name: name("ingest_io_scattered"), Hosts: 1, Threads: c.Threads},
			func() {}, func() { sfx.streamKMB2(c.Threads) }),
		c.timeOp(PerfRecord{Name: name("reorder_build"), Hosts: 1, Threads: c.Threads},
			func() {},
			func() { sfx.streamKMB2Reordered(c.Threads, graph.ReorderBlockedDegree, 4) }))
	return recs
}
