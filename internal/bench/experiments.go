package bench

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"kimbap/internal/algorithms"
	"kimbap/internal/baselines/galois"
	"kimbap/internal/baselines/gluon"
	"kimbap/internal/compiler"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Experiment names accepted by Run.
var Experiments = []string{
	"table1", "table2", "table3",
	"fig9", "fig10", "fig11", "fig12",
	"readlocality", "policies", "memory", "abstraction",
	"perf",
}

// Run executes one named experiment and writes its tables to w.
func Run(w io.Writer, name string, cfg Config) error {
	cfg = cfg.withDefaults()
	switch name {
	case "table1":
		cfg.Table1(w)
	case "table2":
		cfg.Table2(w)
	case "table3":
		cfg.Table3(w)
	case "fig9":
		cfg.Fig9(w)
	case "fig10":
		cfg.Fig10(w)
	case "fig11":
		cfg.Fig11(w)
	case "fig12":
		cfg.Fig12(w)
	case "readlocality":
		cfg.ReadLocality(w)
	case "policies":
		cfg.Policies(w)
	case "memory":
		cfg.Memory(w)
	case "abstraction":
		cfg.Abstraction(w)
	case "perf":
		return cfg.PerfTo(w, cfg.JSONPath)
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments)
	}
	return nil
}

// Table1 prints the input graphs and their statistics, alongside the
// paper's originals for reference.
func (c Config) Table1(w io.Writer) {
	paper := map[gen.Preset][4]string{
		gen.RoadEurope: {"173M", "365M", "2", "16"},
		gen.Friendster: {"41M", "2B", "58", "3M"},
		gen.Clueweb12:  {"978M", "85B", "87", "7K"},
		gen.WDC12:      {"3B", "256B", "72", "95B"},
	}
	t := NewTable("Table 1: input graphs and statistics (generated analogues)",
		"graph", "|V|", "|E|", "|E|/|V|", "maxdeg", "diam~",
		"paper |V|", "paper |E|", "paper |E|/|V|", "paper maxdeg")
	for _, p := range gen.Presets {
		g := c.graphFor(p)
		s := g.ComputeStats()
		pp := paper[p]
		t.Row(string(p), s.Nodes, s.Edges, s.AvgDegree, s.MaxDegree,
			gen.ApproxDiameter(g), pp[0], pp[1], pp[2], pp[3])
	}
	t.Fprint(w)
}

// Table2 prints the operator classes used by each application.
func (c Config) Table2(w io.Writer) {
	t := NewTable("Table 2: operator types used in each application",
		"application", "adjacent-vertex", "trans-vertex")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, a := range algorithms.Table2 {
		t.Row(a.Name, mark(a.AdjacentVertex), mark(a.TransVertex))
	}
	t.Fprint(w)
}

// Table3 compares Galois (shared memory, 1 host) against Kimbap on 1 host
// and on the sweep's largest host count, for six applications on the two
// medium graphs.
func (c Config) Table3(w io.Writer) {
	maxHosts := c.mediumHosts()[len(c.mediumHosts())-1]
	t := NewTable(fmt.Sprintf("Table 3: Galois vs Kimbap (times in ms; %d threads)", c.Threads),
		"application", "input", "galois 1host", "kimbap 1host",
		fmt.Sprintf("kimbap %dhosts", maxHosts))
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)

		gl := c.measure(func() Result {
			start := time.Now()
			galois.Louvain(g, c.Threads)
			return Result{Wall: time.Since(start)}
		})
		t.Row("LV", string(p), gl.Ms(),
			c.RunLV(g, 1, npm.Full, false).Ms(), c.RunLV(g, maxHosts, npm.Full, false).Ms())

		gl = c.measure(func() Result {
			start := time.Now()
			galois.Leiden(g, c.Threads)
			return Result{Wall: time.Since(start)}
		})
		t.Row("LD", string(p), gl.Ms(),
			c.RunLD(g, 1).Ms(), c.RunLD(g, maxHosts).Ms())

		gl = c.measure(func() Result {
			start := time.Now()
			galois.MSF(g, c.Threads)
			return Result{Wall: time.Since(start)}
		})
		t.Row("MSF", string(p), gl.Ms(),
			c.RunMSF(g, 1).Ms(), c.RunMSF(g, maxHosts).Ms())

		gl = c.measure(func() Result {
			start := time.Now()
			galois.CCLP(g, c.Threads)
			return Result{Wall: time.Since(start)}
		})
		t.Row("CC-LP", string(p), gl.Ms(),
			c.RunCC(g, 1, partition.CVC, algorithms.Config{}, algorithms.CCLP).Ms(),
			c.RunCC(g, maxHosts, partition.CVC, algorithms.Config{}, algorithms.CCLP).Ms())

		gl = c.measure(func() Result {
			start := time.Now()
			galois.CCSV(g, c.Threads)
			return Result{Wall: time.Since(start)}
		})
		t.Row("CC-SV", string(p), gl.Ms(),
			c.RunCC(g, 1, partition.CVC, algorithms.Config{}, algorithms.CCSV).Ms(),
			c.RunCC(g, maxHosts, partition.CVC, algorithms.Config{}, algorithms.CCSV).Ms())

		gl = c.measure(func() Result {
			start := time.Now()
			galois.MIS(g, c.Threads)
			return Result{Wall: time.Since(start)}
		})
		t.Row("MIS", string(p), gl.Ms(),
			c.RunMIS(g, 1).Ms(), c.RunMIS(g, maxHosts).Ms())
	}
	t.Fprint(w)
}

// Fig9 prints strong scaling on the medium graphs: (a) LV vs Vite, (b) LD,
// (c) the CC family vs Gluon, (d) MSF, (e) MIS.
func (c Config) Fig9(w io.Writer) {
	c.scalingFigure(w, "Figure 9", []gen.Preset{gen.RoadEurope, gen.Friendster},
		c.mediumHosts())
}

// Fig10 prints strong scaling on the large graphs (host counts scaled down
// from the paper's 32-256). As in the paper, Figure 10b (Leiden) covers
// only clueweb12 — LD ran out of memory on wdc12 there, and is likewise
// out of reach at this substrate's largest preset.
func (c Config) Fig10(w io.Writer) {
	c.scalingFigureLD(w, "Figure 10", []gen.Preset{gen.Clueweb12, gen.WDC12},
		[]gen.Preset{gen.Clueweb12}, c.largeHosts())
}

func (c Config) scalingFigure(w io.Writer, title string, presets []gen.Preset, hosts []int) {
	c.scalingFigureLD(w, title, presets, presets, hosts)
}

// scalingFigureLD is scalingFigure with a separate preset list for the
// Leiden panel.
func (c Config) scalingFigureLD(w io.Writer, title string,
	presets, ldPresets []gen.Preset, hosts []int) {
	header := []string{"series", "graph"}
	for _, h := range hosts {
		header = append(header, fmt.Sprintf("%dh (ms)", h))
	}

	sub := func(letter, what string) *Table {
		return NewTable(fmt.Sprintf("%s%s: strong scaling, %s", title, letter, what), header...)
	}

	ta := sub("a", "Louvain (LV)")
	tb := sub("b", "Leiden (LD)")
	tc := sub("c", "connected components (CC)")
	td := sub("d", "minimum spanning forest (MSF)")
	te := sub("e", "maximal independent sets (MIS)")

	for _, p := range presets {
		g := c.graphFor(p)
		row := func(t *Table, series string, f func(h int) Result) {
			cells := []any{series, string(p)}
			for _, h := range hosts {
				cells = append(cells, f(h).Ms())
			}
			t.Row(cells...)
		}
		row(ta, "Vite", func(h int) Result { return c.RunLV(g, h, npm.Vite, true) })
		row(ta, "Kimbap", func(h int) Result { return c.RunLV(g, h, npm.Full, false) })
		for _, lp := range ldPresets {
			if lp == p {
				row(tb, "Kimbap", func(h int) Result { return c.RunLD(g, h) })
			}
		}
		row(tc, "Gluon-LP", func(h int) Result {
			return c.measure(func() Result {
				start := time.Now()
				_, _, err := gluon.CCLP(g, runtime.Config{
					NumHosts: h, ThreadsPerHost: c.Threads, Policy: partition.CVC,
				})
				if err != nil {
					panic(err)
				}
				return Result{Wall: time.Since(start)}
			})
		})
		for _, a := range ccAlgos() {
			a := a
			row(tc, a.name, func(h int) Result {
				return c.RunCC(g, h, a.pol, algorithms.Config{}, a.run)
			})
		}
		row(td, "Kimbap", func(h int) Result { return c.RunMSF(g, h) })
		row(te, "Kimbap", func(h int) Result { return c.RunMIS(g, h) })
	}
	for _, t := range []*Table{ta, tb, tc, td, te} {
		t.Fprint(w)
	}
}

// Fig11 prints the runtime-variant ablation: Vite, MC, SGR-only, SGR+CF,
// and SGR+CF+GAR for LV and CC-SV on the medium graphs, with the
// computation/communication split.
func (c Config) Fig11(w io.Writer) {
	hosts := c.mediumHosts()
	variants := []struct {
		name    string
		variant npm.Variant
		early   bool
	}{
		{"Vite", npm.Vite, true},
		{"MC", npm.MC, false},
		{"SGR-only", npm.SGROnly, false},
		{"SGR+CF", npm.SGRCF, false},
		{"SGR+CF+GAR", npm.Full, false},
	}
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)
		header := []string{"variant", "hosts", "total (ms)", "compute (ms)",
			"comm (ms)", "req (ms)", "reduce (ms)", "bcast (ms)", "conflicts"}
		tlv := NewTable(fmt.Sprintf("Figure 11 (LV on %s): runtime variants", p), header...)
		tsv := NewTable(fmt.Sprintf("Figure 11 (CC-SV on %s): runtime variants", p), header...)
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		for _, v := range variants {
			for _, h := range hosts {
				r := c.RunLV(g, h, v.variant, v.early)
				tlv.Row(v.name, h, r.Ms(), ms(r.Compute), ms(r.Comm),
					ms(r.Request), ms(r.Reduce), ms(r.Broadcast), r.Conflicts)
				r = c.RunCCVariant(g, h, v.variant)
				tsv.Row(v.name, h, r.Ms(), ms(r.Compute), ms(r.Comm),
					ms(r.Request), ms(r.Reduce), ms(r.Broadcast), r.Conflicts)
			}
		}
		tlv.Fprint(w)
		tsv.Fprint(w)
	}
}

// Fig12 prints compiled CC-LP and MIS with and without the compiler
// optimizations (§5.2), with the computation/communication split.
func (c Config) Fig12(w io.Writer) {
	hosts := c.mediumHosts()
	programs := []struct {
		name string
		prog *compiler.Program
	}{
		{"CC-LP", compiler.CCLPProgram()},
		{"MIS", compiler.MISProgram()},
	}
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)
		for _, pr := range programs {
			t := NewTable(fmt.Sprintf("Figure 12 (%s on %s): compiler optimizations "+
				"(* = extrapolated from capped rounds)", pr.name, p),
				"config", "hosts", "total (ms)", "compute (ms)", "comm (ms)", "msgs", "MB sent")
			// OPT runs to quiescence; its round count bounds the NO-OPT
			// run, whose per-round cost is extrapolated when capped —
			// the paper's NO-OPT road configurations timed out at 9000s.
			var optRounds int64
			for _, mode := range []struct {
				label string
				opt   bool
			}{{"OPT", true}, {"NO-OPT", false}} {
				plan, err := compiler.Compile(pr.prog, compiler.Options{Optimize: mode.opt})
				if err != nil {
					panic(err)
				}
				for _, h := range hosts {
					var msgs, bytes, rounds int64
					cap := 0
					if !mode.opt && optRounds > 12 {
						cap = 12
					}
					r := c.measure(func() Result {
						cluster, err := runtime.NewCluster(g, runtime.Config{
							NumHosts: h, ThreadsPerHost: c.Threads, Policy: partition.OEC,
						})
						if err != nil {
							panic(err)
						}
						defer cluster.Close()
						start := time.Now()
						roundsByHost := make([]int64, h)
						cluster.Run(func(host *runtime.Host) {
							e := compiler.NewExec(host, plan, compiler.ExecConfig{
								MaxRoundsPerLoop: cap,
							})
							e.Run()
							roundsByHost[host.Rank] = e.Rounds()
						})
						res := Result{Wall: time.Since(start)}
						for _, hh := range cluster.Hosts() {
							if hh.Timers.Compute > res.Compute {
								res.Compute = hh.Timers.Compute
							}
							if hh.Timers.Comm() > res.Comm {
								res.Comm = hh.Timers.Comm()
							}
						}
						msgs, bytes = cluster.CommStats()
						rounds = roundsByHost[0]
						return res
					})
					label := mode.label
					if mode.opt && h == hosts[0] {
						optRounds = rounds
					}
					scale := 1.0
					if cap > 0 && rounds > 0 && optRounds > rounds {
						scale = float64(optRounds) / float64(rounds)
						label += "*" // extrapolated from capped rounds
					}
					t.Row(label, h, r.Ms()*scale,
						float64(r.Compute.Microseconds())/1000*scale,
						float64(r.Comm.Microseconds())/1000*scale,
						int64(float64(msgs)*scale), float64(bytes)/(1<<20)*scale)
				}
			}
			t.Fprint(w)
		}
	}
}

// ReadLocality reproduces the §4.2 measurement: the fraction of property
// reads served by master node properties, per algorithm, at two cluster
// sizes. The paper reports ~65% at 4 hosts and ~50% at 32 (scaled here).
func (c Config) ReadLocality(w io.Writer) {
	hostCounts := []int{4, 8}
	if c.Scale == Small {
		hostCounts = []int{2, 4}
	}
	t := NewTable("§4.2: fraction of reads served by master properties",
		"algorithm", "graph", "hosts", "master reads %")
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)
		for _, hosts := range hostCounts {
			type mr struct{ master, remote int64 }
			collect := func(name string, run func(h *runtime.Host) (int64, int64)) {
				totals := make([]mr, hosts)
				cluster, err := runtime.NewCluster(g, runtime.Config{
					NumHosts: hosts, ThreadsPerHost: c.Threads, Policy: partition.CVC,
				})
				if err != nil {
					panic(err)
				}
				defer cluster.Close()
				cluster.Run(func(h *runtime.Host) {
					m, r := run(h)
					totals[h.Rank] = mr{m, r}
				})
				var m, r int64
				for _, x := range totals {
					m += x.master
					r += x.remote
				}
				pct := 0.0
				if m+r > 0 {
					pct = 100 * float64(m) / float64(m+r)
				}
				t.Row(name, string(p), hosts, pct)
			}
			collect("CC-SV", func(h *runtime.Host) (int64, int64) {
				out := make([]graph.NodeID, g.NumNodes())
				return withReadStats(h, out, algorithms.CCSV)
			})
			collect("CC-LP", func(h *runtime.Host) (int64, int64) {
				out := make([]graph.NodeID, g.NumNodes())
				return withReadStats(h, out, algorithms.CCLP)
			})
			collect("CC-SCLP", func(h *runtime.Host) (int64, int64) {
				out := make([]graph.NodeID, g.NumNodes())
				return withReadStats(h, out, algorithms.CCSCLP)
			})
			collect("MIS", func(h *runtime.Host) (int64, int64) {
				rec := &statsRecorder{}
				out := make([]bool, g.NumNodes())
				algorithms.MIS(h, algorithms.Config{StatsSink: rec}, out)
				return rec.master.Load(), rec.remote.Load()
			})
			collect("MSF", func(h *runtime.Host) (int64, int64) {
				rec := &statsRecorder{}
				out := make([]graph.NodeID, g.NumNodes())
				algorithms.MSF(h, algorithms.Config{StatsSink: rec}, out)
				return rec.master.Load(), rec.remote.Load()
			})
		}
		// LV manages its own clusters per level; aggregate across them.
		for _, hosts := range hostCounts {
			rec := lvReadStats(g, hosts, c.Threads)
			m, r := rec.master.Load(), rec.remote.Load()
			pct := 0.0
			if m+r > 0 {
				pct = 100 * float64(m) / float64(m+r)
			}
			t.Row("LV", string(p), hosts, pct)
		}
	}
	t.Fprint(w)
}

// lvReadStats runs Louvain with one shared (atomic) recorder across all
// hosts and levels, aggregating the whole multi-level run.
func lvReadStats(g *graph.Graph, hosts, threads int) *statsRecorder {
	rec := &statsRecorder{}
	_, err := algorithms.Louvain(g, runtime.Config{
		NumHosts: hosts, ThreadsPerHost: threads,
	}, algorithms.Config{StatsSink: rec}, algorithms.CDOptions{})
	if err != nil {
		panic(err)
	}
	return rec
}

// Policies compares the partitioning policies (§2.2, §6.1): replication
// factor, structural invariants, and CC-SV cost under each. An ablation
// for the pinned-mirror design decision — the invariant flags drive which
// broadcast elisions are legal.
func (c Config) Policies(w io.Writer) {
	hosts := c.mediumHosts()[len(c.mediumHosts())-1]
	t := NewTable(fmt.Sprintf("Partitioning policies at %d hosts", hosts),
		"graph", "policy", "replication", "no-out-mirrors", "no-in-mirrors",
		"cc-sv (ms)", "msgs", "MB sent")
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)
		for _, pol := range partition.Policies {
			part := partition.Partition(g, hosts, pol)
			noOut, noIn := true, true
			for _, hp := range part.Hosts {
				noOut = noOut && hp.MirrorsHaveNoOutEdges
				noIn = noIn && hp.MirrorsHaveNoInEdges
			}
			var msgs, bytes int64
			r := c.measure(func() Result {
				cluster, err := runtime.NewCluster(g, runtime.Config{
					NumHosts: hosts, ThreadsPerHost: c.Threads, Policy: pol,
				})
				if err != nil {
					panic(err)
				}
				defer cluster.Close()
				out := make([]graph.NodeID, g.NumNodes())
				start := time.Now()
				cluster.Run(func(h *runtime.Host) {
					algorithms.CCSV(h, algorithms.Config{}, out)
				})
				msgs, bytes = cluster.CommStats()
				return Result{Wall: time.Since(start)}
			})
			t.Row(string(p), string(pol), part.ReplicationFactor(),
				noOut, noIn, r.Ms(), msgs, float64(bytes)/(1<<20))
		}
	}
	t.Fprint(w)
}

// Memory reproduces the paper's max-RSS comparison (§6.2): per-variant
// property-map memory after a representative hook round with pinned
// mirrors. The paper reports Kimbap's RSS ~10% above Vite's (the
// thread-local maps) and comparable to Gluon's.
func (c Config) Memory(w io.Writer) {
	hosts := 4
	if c.Scale == Small {
		hosts = 2
	}
	t := NewTable(fmt.Sprintf("Property-map memory per variant (%d hosts, %d threads)",
		hosts, c.Threads),
		"graph", "variant", "map KB (cluster total)")
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)
		for _, v := range []npm.Variant{npm.Vite, npm.MC, npm.SGROnly, npm.SGRCF, npm.Full} {
			cluster, err := runtime.NewCluster(g, runtime.Config{
				NumHosts: hosts, ThreadsPerHost: c.Threads, Policy: partition.OEC,
			})
			if err != nil {
				panic(err)
			}
			store := kvstore.NewCluster(hosts, hosts)
			totals := make([]int64, hosts)
			cluster.Run(func(h *runtime.Host) {
				m := npm.New(npm.Options[graph.NodeID]{
					Host: h, Op: npm.MinNodeID(), Codec: npm.NodeIDCodec{},
					Variant: v, Store: store,
				})
				h.ParForNodes(func(_ int, l graph.NodeID) {
					gid := h.HP.GlobalID(l)
					m.Set(gid, gid)
				})
				m.InitSync()
				m.PinMirrors()
				// One hook-shaped round to populate thread-local maps.
				local := h.HP.Local
				h.ParForNodes(func(tid int, n graph.NodeID) {
					gid := h.HP.GlobalID(n)
					lo, hi := local.EdgeRange(n)
					for e := lo; e < hi; e++ {
						dgid := h.HP.GlobalID(local.Dst(e))
						if dgid < gid {
							m.Reduce(tid, gid, dgid)
						}
					}
				})
				totals[h.Rank] = npm.FootprintOf(m) // peak: before combine
				m.ReduceSync()
				m.BroadcastSync()
			})
			cluster.Close()
			var sum int64
			for _, x := range totals {
				sum += x
			}
			t.Row(string(p), string(v), float64(sum)/1024)
		}
	}
	t.Fprint(w)
}

// Abstraction quantifies the cost of the high-level programming model:
// the same algorithms written against the low-level API by hand versus
// compiled from the Figure 4 IR and interpreted. The paper's overall
// claim — "Kimbap's abstraction does not come at the cost of
// performance" — is made against hand-optimized systems; this table
// additionally isolates the compiler/interpreter layer itself.
func (c Config) Abstraction(w io.Writer) {
	hosts := c.mediumHosts()
	t := NewTable("Abstraction cost: hand-written vs compiled (OPT) programs",
		"program", "graph", "mode", "hosts", "total (ms)")
	type handFn func(h *runtime.Host, cfg algorithms.Config, out []graph.NodeID) algorithms.CCStats
	progs := []struct {
		name string
		prog *compiler.Program
		hand handFn
	}{
		{"CC-LP", compiler.CCLPProgram(), algorithms.CCLP},
		{"CC-SV", compiler.CCSVProgram(), algorithms.CCSV},
	}
	for _, p := range []gen.Preset{gen.RoadEurope, gen.Friendster} {
		g := c.graphFor(p)
		for _, pr := range progs {
			plan, err := compiler.Compile(pr.prog, compiler.Options{Optimize: true})
			if err != nil {
				panic(err)
			}
			for _, h := range hosts {
				r := c.RunCC(g, h, partition.OEC, algorithms.Config{}, pr.hand)
				t.Row(pr.name, string(p), "hand-written", h, r.Ms())
				r = c.measure(func() Result {
					return c.runSPMD(g, h, partition.OEC, func(host *runtime.Host) {
						compiler.NewExec(host, plan, compiler.ExecConfig{}).Run()
					})
				})
				t.Row(pr.name, string(p), "compiled", h, r.Ms())
			}
		}
	}
	t.Fprint(w)
}

// withReadStats runs a CC algorithm and returns the host's read-locality
// counters. The algorithms create their maps internally, so the counters
// are exposed through a shim map recorded by the stats registry below.
func withReadStats(h *runtime.Host, out []graph.NodeID,
	algo func(h *runtime.Host, cfg algorithms.Config, out []graph.NodeID) algorithms.CCStats) (int64, int64) {
	rec := &statsRecorder{}
	algo(h, algorithms.Config{StatsSink: rec}, out)
	return rec.master.Load(), rec.remote.Load()
}

// statsRecorder implements algorithms.ReadStatsSink. Sinks may be shared
// by all hosts of a cluster, so the counters are atomic.
type statsRecorder struct{ master, remote atomic.Int64 }

// Record implements algorithms.ReadStatsSink.
func (s *statsRecorder) Record(master, remote int64) {
	s.master.Add(master)
	s.remote.Add(remote)
}
