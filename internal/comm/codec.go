package comm

import (
	"encoding/binary"
	"math"
)

// Little-endian append/read helpers used to serialize property-map sync
// messages without reflection. All payloads in Kimbap are built from
// uint32 node IDs, uint64/float64 values, and raw byte runs.

// AppendUint32 appends v in little-endian order.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendUint64 appends v in little-endian order.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendFloat64 appends the IEEE-754 bits of v.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// ReadUint32 reads a uint32 and returns the remaining bytes.
func ReadUint32(b []byte) (uint32, []byte) {
	return binary.LittleEndian.Uint32(b), b[4:]
}

// ReadUint64 reads a uint64 and returns the remaining bytes.
func ReadUint64(b []byte) (uint64, []byte) {
	return binary.LittleEndian.Uint64(b), b[8:]
}

// ReadFloat64 reads a float64 and returns the remaining bytes.
func ReadFloat64(b []byte) (float64, []byte) {
	u, rest := ReadUint64(b)
	return math.Float64frombits(u), rest
}
