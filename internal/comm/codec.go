package comm

import (
	"encoding/binary"
	"math"
)

// Little-endian append/read helpers used to serialize property-map sync
// messages without reflection. All payloads in Kimbap are built from
// uint32 node IDs, uint64/float64 values, and raw byte runs.

// AppendUint32 appends v in little-endian order.
func AppendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendUint64 appends v in little-endian order.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendFloat64 appends the IEEE-754 bits of v.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// ReadUint32 reads a uint32 and returns the remaining bytes.
func ReadUint32(b []byte) (uint32, []byte) {
	return binary.LittleEndian.Uint32(b), b[4:]
}

// ReadUint64 reads a uint64 and returns the remaining bytes.
func ReadUint64(b []byte) (uint64, []byte) {
	return binary.LittleEndian.Uint64(b), b[8:]
}

// ReadFloat64 reads a float64 and returns the remaining bytes.
func ReadFloat64(b []byte) (float64, []byte) {
	u, rest := ReadUint64(b)
	return math.Float64frombits(u), rest
}

// AppendUvarint appends v in LEB128 variable-length encoding (the v2 wire
// format's key representation: section-relative key deltas are small, so
// most keys take one byte instead of four). The single-byte case is inlined
// — it dominates every delta stream the npm sync phases produce.
func AppendUvarint(b []byte, v uint64) []byte {
	if v < 0x80 {
		return append(b, byte(v))
	}
	return binary.AppendUvarint(b, v)
}

// ReadUvarint reads a LEB128 varint and returns the remaining bytes. Like
// the fixed-width readers it assumes well-formed input (internal traffic);
// a truncated or overlong varint panics. Untrusted bytes go through
// ReadUvarintChecked.
func ReadUvarint(b []byte) (uint64, []byte) {
	if len(b) > 0 && b[0] < 0x80 {
		return uint64(b[0]), b[1:]
	}
	v, n := binary.Uvarint(b)
	if n <= 0 {
		panic("comm: malformed uvarint")
	}
	return v, b[n:]
}

// ReadUvarintChecked reads a LEB128 varint, reporting malformed input
// instead of panicking — the decoder fuzz targets and payload validators
// use it to walk arbitrary bytes safely.
func ReadUvarintChecked(b []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

// UvarintLen returns the encoded size of v in bytes.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
