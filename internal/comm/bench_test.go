package comm

import (
	"sync"
	"testing"
)

// Throughput of the two transports under the all-to-all exchange pattern
// every BSP round performs.

func benchExchange(b *testing.B, eps []Endpoint, payload int) {
	b.Helper()
	n := len(eps)
	buf := make([]byte, payload)
	b.SetBytes(int64(payload * (n - 1)))
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			out := make([][]byte, n)
			for i := range out {
				out[i] = buf
			}
			for i := 0; i < b.N; i++ {
				Exchange(ep, TagApp, out)
			}
		}(ep)
	}
	wg.Wait()
}

func BenchmarkExchangeLocal4x1KB(b *testing.B) {
	local := NewLocalCluster(4)
	eps := make([]Endpoint, len(local))
	for i, e := range local {
		eps[i] = e
	}
	benchExchange(b, eps, 1024)
}

func BenchmarkExchangeLocal4x64KB(b *testing.B) {
	local := NewLocalCluster(4)
	eps := make([]Endpoint, len(local))
	for i, e := range local {
		eps[i] = e
	}
	benchExchange(b, eps, 64*1024)
}

func BenchmarkExchangeTCP4x1KB(b *testing.B) {
	tcp, err := NewTCPCluster(4)
	if err != nil {
		b.Fatal(err)
	}
	eps := make([]Endpoint, len(tcp))
	for i, e := range tcp {
		eps[i] = e
	}
	defer func() {
		for _, e := range eps {
			e.Close()
		}
	}()
	benchExchange(b, eps, 1024)
}

func BenchmarkBarrier8(b *testing.B) {
	local := NewLocalCluster(8)
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, ep := range local {
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				Barrier(ep)
			}
		}(ep)
	}
	wg.Wait()
}
