// Package comm provides the communication substrate for the simulated
// cluster: a per-host Endpoint abstraction with tagged message delivery,
// bulk all-to-all exchange, and log-depth collectives.
//
// Two transports are provided: an in-memory channel transport (the default
// for experiments, standing in for the paper's Omni-Path fabric) and a TCP
// transport over real sockets with length-prefixed binary framing. Both
// preserve per-sender FIFO order per tag, which the BSP engine relies on to
// keep consecutive collective operations from interleaving.
//
// Endpoints account for messages and bytes sent so experiments can report
// communication volume, broken down per tag (see StatsByTag). The TCP
// transport includes its frame header in the byte counts; the in-memory
// transport has no framing and counts payload bytes only.
//
// # Buffer ownership
//
// Send takes the payload by reference on the in-memory transport (the TCP
// transport copies it into the socket), so a sender that recycles payload
// buffers across BSP rounds must not overwrite a buffer that a receiver may
// still be reading. The contract the npm sync phases follow:
//
//   - Receivers finish reading a round's payloads before issuing the sends
//     of their next collective (recycle-after-round).
//   - Senders double-buffer: a send buffer is reused no sooner than two
//     rounds later. By then the receiver has completed the intervening
//     collective, which it could only do after every peer sent it — and
//     SPMD programs issue collectives in the same order on every host, so
//     those sends happen after the peers finished reading the earlier
//     round. Hence no receiver can still hold a reference.
//
// Payloads returned by Recv are owned by the receiver until its next Send
// on the in-memory transport may recycle them (i.e. treat them as valid
// only for the current round).
package comm

import (
	"fmt"
	"sync/atomic"
)

// Tag labels the kind of a message so different collective operations can
// share one endpoint without interference.
type Tag uint8

// Message tags used by the runtime. Distinct collectives running back to
// back may reuse a tag; per-sender FIFO ordering keeps them separate.
//
//kimbap:wiregroup Tag
const (
	TagBarrier   Tag = iota // empty-payload synchronization
	TagRequest              // node-property request bitsets
	TagResponse             // node-property request responses
	TagReduce               // scatter of partial reduction values
	TagBroadcast            // master-to-mirror value broadcast
	TagApp                  // application-level payloads (reducers etc.)
	numTags
)

// NumTags is the number of distinct message tags (the length of the slices
// StatsByTag returns).
const NumTags = int(numTags)

// String names the tag for stats tables.
func (t Tag) String() string {
	switch t {
	case TagBarrier:
		return "barrier"
	case TagRequest:
		return "request"
	case TagResponse:
		return "response"
	case TagReduce:
		return "reduce"
	case TagBroadcast:
		return "broadcast"
	case TagApp:
		return "app"
	}
	return fmt.Sprintf("tag%d", uint8(t))
}

// WireFormat selects the payload encoding the npm sync phases put on the
// wire. It lives here, next to the transports, so the runtime can plumb a
// cluster-wide choice without importing the property-map package.
type WireFormat uint8

//kimbap:wiregroup WireFormat
const (
	// WireAuto picks the package default (currently WireV2).
	WireAuto WireFormat = iota
	// WireV1 is the original raw encoding: fixed-width uint32 keys and
	// section lengths. Kept as a fallback and differential-testing target.
	WireV1
	// WireV2 is the compact encoding: delta-varint keys (relative to the
	// section's key-range base) and varint section lengths, negotiated
	// per-payload by a one-byte format tag.
	WireV2
)

// Endpoint is one host's connection to the cluster fabric.
type Endpoint interface {
	// Rank returns this host's index in [0, NumHosts).
	Rank() int
	// NumHosts returns the number of hosts in the cluster.
	NumHosts() int
	// Send delivers payload to host `to` with the given tag. It must not
	// block indefinitely and may be called concurrently with Recv (but not
	// with other Sends to the same destination).
	Send(to int, tag Tag, payload []byte)
	// Recv blocks until a message with the given tag arrives from host
	// `from` and returns its payload. Messages from one sender with one
	// tag are delivered in send order.
	Recv(from int, tag Tag) []byte
	// Stats returns cumulative messages and bytes sent by this endpoint,
	// including any transport framing overhead.
	Stats() (messages, bytes int64)
	// StatsByTag returns cumulative messages and bytes sent, broken down
	// by message tag. Both slices have NumTags entries indexed by Tag.
	StatsByTag() (messages, bytes []int64)
	// Close releases transport resources.
	Close() error
}

// BufferedSender is optionally implemented by transports that can stage
// writes (the TCP transport's per-peer bufio.Writer). SendBuffered has
// Send's semantics except delivery may be deferred until FlushSends; a
// caller must flush before blocking on a Recv that the staged sends
// unblock, or the exchange deadlocks. ExchangeInto uses it to batch each
// round's frames into one syscall per peer, flushing at the round boundary.
type BufferedSender interface {
	SendBuffered(to int, tag Tag, payload []byte)
	FlushSends()
}

// counters is embedded by transports to implement Stats/StatsByTag.
type counters struct {
	messages [numTags]atomic.Int64
	bytes    [numTags]atomic.Int64
}

// account records one sent message of n on-wire bytes (payload plus any
// transport framing).
func (c *counters) account(tag Tag, n int) {
	c.messages[tag].Add(1)
	c.bytes[tag].Add(int64(n))
}

// Stats returns cumulative messages and bytes sent.
func (c *counters) Stats() (int64, int64) {
	var messages, bytes int64
	for t := range c.messages {
		messages += c.messages[t].Load()
		bytes += c.bytes[t].Load()
	}
	return messages, bytes
}

// StatsByTag returns cumulative messages and bytes sent per tag.
func (c *counters) StatsByTag() (messages, bytes []int64) {
	messages = make([]int64, numTags)
	bytes = make([]int64, numTags)
	for t := range c.messages {
		messages[t] = c.messages[t].Load()
		bytes[t] = c.bytes[t].Load()
	}
	return messages, bytes
}

// Exchange performs a bulk all-to-all: out[i] is sent to host i (out[self]
// is ignored and returned unchanged in the result), and the returned slice
// holds the payload received from each host. All hosts must call Exchange
// with the same tag. Sends are issued before receives, so the exchange
// cannot deadlock on any transport with buffered or asynchronous delivery.
func Exchange(ep Endpoint, tag Tag, out [][]byte) [][]byte {
	return ExchangeInto(ep, tag, out, nil)
}

// ExchangeInto is Exchange with a caller-owned receive slice, so BSP loops
// can avoid allocating one per round. If in has NumHosts entries it is
// filled and returned; otherwise a fresh slice is allocated. Payload
// buffers referenced by out are subject to the package's buffer-ownership
// contract (see the package comment): callers reusing them across rounds
// must double-buffer.
//
// On transports implementing BufferedSender the sends are staged and
// flushed once, at the send/receive boundary — one syscall per peer per
// round instead of one per frame.
func ExchangeInto(ep Endpoint, tag Tag, out, in [][]byte) [][]byte {
	n := ep.NumHosts()
	self := ep.Rank()
	if len(out) != n {
		panic(fmt.Sprintf("comm: Exchange out has %d entries for %d hosts", len(out), n))
	}
	if bs, buffered := ep.(BufferedSender); buffered {
		for i := 0; i < n; i++ {
			if i == self {
				continue
			}
			bs.SendBuffered(i, tag, out[i])
		}
		bs.FlushSends()
	} else {
		for i := 0; i < n; i++ {
			if i == self {
				continue
			}
			ep.Send(i, tag, out[i])
		}
	}
	if len(in) != n {
		in = make([][]byte, n)
	}
	in[self] = out[self]
	for i := 0; i < n; i++ {
		if i == self {
			continue
		}
		in[i] = ep.Recv(i, tag)
	}
	return in
}

// ExchangeFunc is the compute/communication-overlap variant of
// ExchangeInto: instead of taking pre-assembled payloads, it calls
// encode(to) once per peer and sends each payload the moment it is
// produced, so peer `to`'s bytes are in flight while `to+1`'s are still
// being encoded. encode is never called for self; in[self] is set to nil.
//
// Destinations are walked in rank-rotated order (self+1, self+2, …
// wrapping) so the cluster's first sends fan out across distinct receivers
// instead of all landing on host 0; receives walk the opposite rotation,
// which matches the order peers complete their sends to us. Payloads
// returned by encode follow the same buffer-ownership contract as
// ExchangeInto.
func ExchangeFunc(ep Endpoint, tag Tag, encode func(to int) []byte, in [][]byte) [][]byte {
	n := ep.NumHosts()
	self := ep.Rank()
	for i := 1; i < n; i++ {
		to := (self + i) % n
		ep.Send(to, tag, encode(to))
	}
	if len(in) != n {
		in = make([][]byte, n)
	}
	in[self] = nil
	for i := 1; i < n; i++ {
		from := (self - i + n) % n
		in[from] = ep.Recv(from, tag)
	}
	return in
}
