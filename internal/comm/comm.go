// Package comm provides the communication substrate for the simulated
// cluster: a per-host Endpoint abstraction with tagged message delivery,
// bulk all-to-all exchange, and barriers.
//
// Two transports are provided: an in-memory channel transport (the default
// for experiments, standing in for the paper's Omni-Path fabric) and a TCP
// transport over real sockets with length-prefixed binary framing. Both
// preserve per-sender FIFO order per tag, which the BSP engine relies on to
// keep consecutive collective operations from interleaving.
//
// Endpoints account for messages and bytes sent so experiments can report
// communication volume.
//
// # Buffer ownership
//
// Send takes the payload by reference on the in-memory transport (the TCP
// transport copies it into the socket), so a sender that recycles payload
// buffers across BSP rounds must not overwrite a buffer that a receiver may
// still be reading. The contract the npm sync phases follow:
//
//   - Receivers finish reading a round's payloads before issuing the sends
//     of their next collective (recycle-after-round).
//   - Senders double-buffer: a send buffer is reused no sooner than two
//     rounds later. By then the receiver has completed the intervening
//     collective, which it could only do after every peer sent it — and
//     SPMD programs issue collectives in the same order on every host, so
//     those sends happen after the peers finished reading the earlier
//     round. Hence no receiver can still hold a reference.
//
// Payloads returned by Recv are owned by the receiver until its next Send
// on the in-memory transport may recycle them (i.e. treat them as valid
// only for the current round).
package comm

import (
	"fmt"
	"sync/atomic"
)

// Tag labels the kind of a message so different collective operations can
// share one endpoint without interference.
type Tag uint8

// Message tags used by the runtime. Distinct collectives running back to
// back may reuse a tag; per-sender FIFO ordering keeps them separate.
const (
	TagBarrier   Tag = iota // empty-payload synchronization
	TagRequest              // node-property request bitsets
	TagResponse             // node-property request responses
	TagReduce               // scatter of partial reduction values
	TagBroadcast            // master-to-mirror value broadcast
	TagApp                  // application-level payloads (reducers etc.)
	numTags
)

// Endpoint is one host's connection to the cluster fabric.
type Endpoint interface {
	// Rank returns this host's index in [0, NumHosts).
	Rank() int
	// NumHosts returns the number of hosts in the cluster.
	NumHosts() int
	// Send delivers payload to host `to` with the given tag. It must not
	// block indefinitely and may be called concurrently with Recv (but not
	// with other Sends to the same destination).
	Send(to int, tag Tag, payload []byte)
	// Recv blocks until a message with the given tag arrives from host
	// `from` and returns its payload. Messages from one sender with one
	// tag are delivered in send order.
	Recv(from int, tag Tag) []byte
	// Stats returns cumulative messages and bytes sent by this endpoint.
	Stats() (messages, bytes int64)
	// Close releases transport resources.
	Close() error
}

// counters is embedded by transports to implement Stats.
type counters struct {
	messages atomic.Int64
	bytes    atomic.Int64
}

func (c *counters) account(payload []byte) {
	c.messages.Add(1)
	c.bytes.Add(int64(len(payload)))
}

// Stats returns cumulative messages and bytes sent.
func (c *counters) Stats() (int64, int64) {
	return c.messages.Load(), c.bytes.Load()
}

// Exchange performs a bulk all-to-all: out[i] is sent to host i (out[self]
// is ignored and returned unchanged in the result), and the returned slice
// holds the payload received from each host. All hosts must call Exchange
// with the same tag. Sends are issued before receives, so the exchange
// cannot deadlock on any transport with buffered or asynchronous delivery.
func Exchange(ep Endpoint, tag Tag, out [][]byte) [][]byte {
	return ExchangeInto(ep, tag, out, nil)
}

// ExchangeInto is Exchange with a caller-owned receive slice, so BSP loops
// can avoid allocating one per round. If in has NumHosts entries it is
// filled and returned; otherwise a fresh slice is allocated. Payload
// buffers referenced by out are subject to the package's buffer-ownership
// contract (see the package comment): callers reusing them across rounds
// must double-buffer.
func ExchangeInto(ep Endpoint, tag Tag, out, in [][]byte) [][]byte {
	n := ep.NumHosts()
	self := ep.Rank()
	if len(out) != n {
		panic(fmt.Sprintf("comm: Exchange out has %d entries for %d hosts", len(out), n))
	}
	for i := 0; i < n; i++ {
		if i == self {
			continue
		}
		ep.Send(i, tag, out[i])
	}
	if len(in) != n {
		in = make([][]byte, n)
	}
	in[self] = out[self]
	for i := 0; i < n; i++ {
		if i == self {
			continue
		}
		in[i] = ep.Recv(i, tag)
	}
	return in
}

// Barrier blocks until every host has entered the barrier. It is an
// all-to-all exchange of empty messages.
func Barrier(ep Endpoint) {
	out := make([][]byte, ep.NumHosts())
	Exchange(ep, TagBarrier, out)
}

// AllReduceBool ORs a boolean across all hosts.
func AllReduceBool(ep Endpoint, v bool) bool {
	payload := []byte{0}
	if v {
		payload[0] = 1
	}
	out := make([][]byte, ep.NumHosts())
	for i := range out {
		out[i] = payload
	}
	in := Exchange(ep, TagApp, out)
	for _, p := range in {
		if len(p) > 0 && p[0] == 1 {
			return true
		}
	}
	return false
}

// AllReduceInt64 sums an int64 across all hosts.
func AllReduceInt64(ep Endpoint, v int64) int64 {
	payload := AppendUint64(nil, uint64(v))
	out := make([][]byte, ep.NumHosts())
	for i := range out {
		out[i] = payload
	}
	in := Exchange(ep, TagApp, out)
	var sum int64
	for i, p := range in {
		if i == ep.Rank() {
			sum += v
			continue
		}
		u, _ := ReadUint64(p)
		sum += int64(u)
	}
	return sum
}

// AllReduceFloat64 sums a float64 across all hosts.
func AllReduceFloat64(ep Endpoint, v float64) float64 {
	payload := AppendFloat64(nil, v)
	out := make([][]byte, ep.NumHosts())
	for i := range out {
		out[i] = payload
	}
	in := Exchange(ep, TagApp, out)
	sum := 0.0
	for i, p := range in {
		if i == ep.Rank() {
			sum += v
			continue
		}
		f, _ := ReadFloat64(p)
		sum += f
	}
	return sum
}

// AllReduceMinFloat64 computes the minimum of a float64 across all hosts.
func AllReduceMinFloat64(ep Endpoint, v float64) float64 {
	payload := AppendFloat64(nil, v)
	out := make([][]byte, ep.NumHosts())
	for i := range out {
		out[i] = payload
	}
	in := Exchange(ep, TagApp, out)
	min := v
	for i, p := range in {
		if i == ep.Rank() {
			continue
		}
		if f, _ := ReadFloat64(p); f < min {
			min = f
		}
	}
	return min
}
