package comm

import (
	"bytes"
	"fmt"
	"math"
	"math/bits"
	goruntime "runtime"
	"sync"
	"testing"
	"time"
)

// Correctness of the log-depth collectives across host counts, including
// the non-power-of-two cases that exercise the recursive-doubling fold
// step (3, 5, 6) and the degenerate single-host cluster.
func TestCollectivesAcrossHostCounts(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 8} {
		t.Run(fmt.Sprintf("%dhosts", n), func(t *testing.T) {
			eps := NewLocalCluster(n)
			epsI := make([]Endpoint, n)
			for i, e := range eps {
				epsI[i] = e
			}
			wantSum := int64(n * (n + 1) / 2)
			var mu sync.Mutex
			var fbits []uint64
			runAll(t, epsI, func(ep Endpoint) {
				Barrier(ep)
				if got := AllReduceInt64(ep, int64(ep.Rank()+1)); got != wantSum {
					t.Errorf("host %d: sum = %d, want %d", ep.Rank(), got, wantSum)
				}
				if got := AllReduceBool(ep, ep.Rank() == n-1); !got {
					t.Errorf("host %d: OR lost the true", ep.Rank())
				}
				if got := AllReduceMinFloat64(ep, float64(ep.Rank())+0.5); got != 0.5 {
					t.Errorf("host %d: min = %v, want 0.5", ep.Rank(), got)
				}
				// Irrational addends make the float sum depend on its
				// combination tree; collect the bits for the identity check.
				f := AllReduceFloat64(ep, math.Sqrt(float64(ep.Rank()+2)))
				Barrier(ep)
				mu.Lock()
				fbits = append(fbits, math.Float64bits(f))
				mu.Unlock()
			})
			// Recursive doubling gives every host the identical combination
			// tree, so the float results must agree bit for bit — the
			// property SPMD quiescence checks rely on.
			for i := 1; i < len(fbits); i++ {
				if fbits[i] != fbits[0] {
					t.Fatalf("float allreduce differs across hosts: %x vs %x",
						fbits[i], fbits[0])
				}
			}
		})
	}
}

// The point of the overhaul: collectives cost O(H·log H) messages, not
// H·(H−1). At 8 hosts a barrier is 24 messages (was 56).
func TestCollectiveMessageCounts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 8} {
		logUp := bits.Len(uint(n - 1)) // ⌈log₂ n⌉
		t.Run(fmt.Sprintf("%dhosts", n), func(t *testing.T) {
			eps := NewLocalCluster(n)
			epsI := make([]Endpoint, n)
			for i, e := range eps {
				epsI[i] = e
			}
			runAll(t, epsI, func(ep Endpoint) { Barrier(ep) })
			total := func() (m int64) {
				for _, ep := range eps {
					msgs, _ := ep.Stats()
					m += msgs
				}
				return
			}
			barrierMsgs := total()
			if want := int64(n * logUp); barrierMsgs != want {
				t.Errorf("barrier used %d messages at %d hosts, want %d",
					barrierMsgs, n, want)
			}
			runAll(t, epsI, func(ep Endpoint) { AllReduceInt64(ep, 1) })
			// Recursive doubling: log₂pow exchange rounds on the power-of-two
			// core plus two fold messages per leftover rank.
			pow := 1 << (bits.Len(uint(n)) - 1)
			wantAR := int64(pow*bits.Len(uint(pow-1)) + 2*(n-pow))
			if got := total() - barrierMsgs; got != wantAR {
				t.Errorf("allreduce used %d messages at %d hosts, want %d",
					got, n, wantAR)
			}
			if old := int64(n * (n - 1)); n > 3 && total()-barrierMsgs >= old {
				t.Errorf("allreduce no better than all-to-all (%d msgs)", old)
			}
		})
	}
}

// Steady-state collectives must not allocate: the payloads live in the
// per-endpoint scratch ring. Host 0 measures while the peers run the
// identical rounds in lockstep (AllocsPerRun counts process-wide mallocs,
// so the whole cluster must be in steady state).
func TestCollectiveAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets only hold without -race")
	}
	const n = 4
	const runs = 50
	eps := NewLocalCluster(n)
	epsI := make([]Endpoint, n)
	for i, e := range eps {
		epsI[i] = e
	}
	round := func(ep Endpoint) {
		AllReduceInt64(ep, int64(ep.Rank()))
		AllReduceFloat64(ep, float64(ep.Rank()))
		AllReduceBool(ep, ep.Rank() == 0)
		Barrier(ep)
	}
	var got float64
	runAll(t, epsI, func(ep Endpoint) {
		// Warm both scratch generations before measuring.
		round(ep)
		round(ep)
		if ep.Rank() == 0 {
			got = testing.AllocsPerRun(runs, func() { round(eps[0]) })
		} else {
			// AllocsPerRun executes its argument 1+runs times; stay in
			// lockstep with the measuring host.
			for i := 0; i < runs+1; i++ {
				round(ep)
			}
		}
	})
	if got > 0 {
		t.Fatalf("steady-state collective round allocated %.1f times, want 0", got)
	}
}

// ExchangeFunc must deliver encode(to)'s payload to host `to` on both
// transports, with in[self] nil.
func TestExchangeFunc(t *testing.T) {
	const n = 4
	for name, eps := range newClusters(t, n) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			var mu sync.Mutex
			got := map[string]string{}
			runAll(t, eps, func(ep Endpoint) {
				encode := func(to int) []byte {
					return []byte(fmt.Sprintf("%d->%d", ep.Rank(), to))
				}
				in := ExchangeFunc(ep, TagApp, encode, nil)
				if in[ep.Rank()] != nil {
					t.Errorf("host %d: in[self] = %q, want nil", ep.Rank(), in[ep.Rank()])
				}
				mu.Lock()
				for from, payload := range in {
					if from != ep.Rank() {
						got[fmt.Sprintf("%d@%d", from, ep.Rank())] = string(payload)
					}
				}
				mu.Unlock()
			})
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if from == to {
						continue
					}
					want := fmt.Sprintf("%d->%d", from, to)
					if got[fmt.Sprintf("%d@%d", from, to)] != want {
						t.Errorf("host %d got %q from %d, want %q",
							to, got[fmt.Sprintf("%d@%d", from, to)], from, want)
					}
				}
			}
		})
	}
}

// Frames staged with SendBuffered must arrive, in order, once FlushSends
// runs.
func TestSendBufferedFlushDelivery(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	for i := 0; i < 3; i++ {
		eps[0].SendBuffered(1, TagApp, []byte{byte(i)})
	}
	eps[0].FlushSends()
	for i := 0; i < 3; i++ {
		if got := eps[1].Recv(0, TagApp); !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("frame %d = %v", i, got)
		}
	}
}

// TCP byte counts must reflect actual wire bytes: payload plus the 5-byte
// frame header, attributed to the right tag.
func TestTCPStatsCountFrameHeader(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	eps[0].Send(1, TagReduce, []byte("12345"))
	if got := eps[1].Recv(0, TagReduce); string(got) != "12345" {
		t.Fatalf("payload = %q", got)
	}
	msgs, byteCount := eps[0].Stats()
	want := int64(5 + frameHeader)
	if msgs != 1 || byteCount != want {
		t.Fatalf("stats = %d msgs %d bytes, want 1/%d", msgs, byteCount, want)
	}
	mt, bt := eps[0].StatsByTag()
	if len(mt) != NumTags || len(bt) != NumTags {
		t.Fatalf("per-tag slices have %d/%d entries, want %d", len(mt), len(bt), NumTags)
	}
	if mt[TagReduce] != 1 || bt[TagReduce] != want {
		t.Fatalf("reduce tag = %d msgs %d bytes, want 1/%d",
			mt[TagReduce], bt[TagReduce], want)
	}
	if mt[TagApp] != 0 || bt[TagApp] != 0 {
		t.Fatalf("app tag charged %d msgs %d bytes for reduce traffic",
			mt[TagApp], bt[TagApp])
	}
}

// Large payloads take the writev path (staging buffer bypass); they must
// still arrive intact and in order relative to small staged frames.
func TestTCPWritevPathOrdering(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	big := make([]byte, writevCutoff+100)
	for i := range big {
		big[i] = byte(i)
	}
	eps[0].SendBuffered(1, TagApp, []byte("before"))
	eps[0].SendBuffered(1, TagApp, big) // flushes "before", writevs itself
	eps[0].SendBuffered(1, TagApp, []byte("after"))
	eps[0].FlushSends()
	if got := eps[1].Recv(0, TagApp); string(got) != "before" {
		t.Fatalf("first frame = %q", got)
	}
	if got := eps[1].Recv(0, TagApp); !bytes.Equal(got, big) {
		t.Fatalf("big frame corrupted (%d bytes)", len(got))
	}
	if got := eps[1].Recv(0, TagApp); string(got) != "after" {
		t.Fatalf("third frame = %q", got)
	}
}

// Closing a cluster must terminate its reader goroutines — the same
// teardown NewTCPCluster relies on when partial setup fails.
func TestTCPClusterCloseReleasesGoroutines(t *testing.T) {
	before := goruntime.NumGoroutine()
	eps, err := NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	epsI := make([]Endpoint, len(eps))
	for i, e := range eps {
		epsI[i] = e
	}
	runAll(t, epsI, func(ep Endpoint) { Barrier(ep) })
	for _, ep := range eps {
		ep.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after Close: %d before cluster, %d after",
		before, goruntime.NumGoroutine())
}
