package comm

import "math/bits"

// Log-depth collectives. The original Barrier/AllReduce* were all-to-all
// exchanges: every host sent to every other, H·(H−1) messages per
// collective. At 8 hosts that is 56 messages to agree on one byte. Both
// are now O(H·log H):
//
//   - Barrier is a dissemination barrier: ⌈log₂H⌉ rounds, in round k each
//     host sends an empty message to (rank+2^k) mod H and waits for one
//     from (rank−2^k) mod H. After the last round every host transitively
//     heard from every other, so no host can leave before all arrived.
//   - AllReduce* is recursive doubling over the largest power-of-two
//     subset: ⌈log₂H⌉ pairwise exchange rounds, with a fold step attaching
//     the leftover ranks (value in, result out) when H is not a power of
//     two. Every host ends with the same combination tree, and all the
//     operators used here (OR, +, min) are commutative, so results are
//     bit-identical across hosts — the property SPMD quiescence checks
//     rely on.
//
// Collectives allocate nothing in steady state: the tiny payloads live in
// a per-endpoint scratch ring (see collScratch) rather than per-call
// buffers. Both properties are pinned by tests (message counts in
// collective_test.go, allocations in allocs_test.go).

// collScratch holds the per-endpoint send buffers the collectives cycle
// through. Collectives are issued by the host's SPMD program goroutine, so
// access is single-threaded by construction (documented on Endpoint: no
// concurrent Sends to one destination implies no concurrent collectives).
//
// Buffers are addressed by (generation, round) and generations alternate
// per collective call; slot 0 of each generation is the allreduce working
// accumulator, which is never sent. Reusing bufs[g][k] two collectives
// later is safe
// under the package's ownership contract: the round-k partner P is the
// same in every call (it depends only on rank and H), and our call-c+2
// send to P happens after our call-c+1 round-k receive from P, which P
// sent after its own call-c round-k receive — the point where P finished
// reading the call-c buffer.
type collScratch struct {
	gen  int
	bufs [2][][]byte
}

// scratcher is implemented by both built-in transports (via embedding).
// Foreign Endpoint implementations fall back to per-call allocation.
type scratcher interface {
	collectiveScratch() *collScratch
}

func (s *collScratch) collectiveScratch() *collScratch { return s }

// next flips the generation and returns the buffer set for this call.
func (s *collScratch) next() *[][]byte {
	s.gen ^= 1
	return &s.bufs[s.gen]
}

// buf returns the round-th buffer of the active generation, sized to n.
func bufFor(bufs *[][]byte, round, n int) []byte {
	for len(*bufs) <= round {
		*bufs = append(*bufs, nil)
	}
	b := (*bufs)[round]
	if cap(b) < n {
		b = make([]byte, n)
		(*bufs)[round] = b
	}
	return b[:n]
}

// Barrier blocks until every host has entered the barrier: a dissemination
// barrier of ⌈log₂H⌉ empty-message rounds.
func Barrier(ep Endpoint) {
	n := ep.NumHosts()
	if n == 1 {
		return
	}
	self := ep.Rank()
	for dist := 1; dist < n; dist <<= 1 {
		ep.Send((self+dist)%n, TagBarrier, nil)
		ep.Recv((self-dist+n)%n, TagBarrier)
	}
}

// sendScratch sends a copy of b staged in the round-th scratch buffer, so
// b itself stays free to mutate while the partner still holds the payload.
func sendScratch(ep Endpoint, bufs *[][]byte, round, to int, b []byte) {
	buf := bufFor(bufs, round, len(b))
	copy(buf, b)
	ep.Send(to, TagApp, buf)
}

// allReduce runs a recursive-doubling allreduce over fixed-width values.
// val holds this host's contribution and is updated in place to the global
// result; combine folds src into dst and must be commutative (so the
// symmetric pairwise exchanges produce bit-identical results everywhere).
//
// The working accumulator lives in scratch slot 0 — only it is passed to
// the combine callback, so escape analysis keeps the callers' stack value
// arrays on the stack and steady-state calls allocate nothing. Slots 1+
// hold the per-round send copies.
func allReduce(ep Endpoint, val []byte, combine func(dst, src []byte)) {
	n := ep.NumHosts()
	if n == 1 {
		return
	}
	var bufs *[][]byte
	if sc, ok := ep.(scratcher); ok {
		bufs = sc.collectiveScratch().next()
	} else {
		bufs = new([][]byte)
	}
	self := ep.Rank()
	pow := 1 << (bits.Len(uint(n)) - 1) // largest power of two ≤ n
	extra := n - pow
	acc := bufFor(bufs, 0, len(val))
	copy(acc, val)
	round := 1
	if self >= pow {
		// Leftover rank: fold our value into the partner below, then wait
		// for it to hand back the finished result.
		sendScratch(ep, bufs, round, self-pow, acc)
		copy(val, ep.Recv(self-pow, TagApp))
		return
	}
	if self < extra {
		combine(acc, ep.Recv(self+pow, TagApp))
	}
	for mask := 1; mask < pow; mask <<= 1 {
		partner := self ^ mask
		sendScratch(ep, bufs, round, partner, acc)
		round++
		combine(acc, ep.Recv(partner, TagApp))
	}
	if self < extra {
		sendScratch(ep, bufs, round, self+pow, acc)
	}
	copy(val, acc)
}

// AllReduceBool ORs a boolean across all hosts.
func AllReduceBool(ep Endpoint, v bool) bool {
	var val [1]byte
	if v {
		val[0] = 1
	}
	allReduce(ep, val[:], func(dst, src []byte) { dst[0] |= src[0] })
	return val[0] != 0
}

// AllReduceInt64 sums an int64 across all hosts.
func AllReduceInt64(ep Endpoint, v int64) int64 {
	var val [8]byte
	AppendUint64(val[:0], uint64(v))
	allReduce(ep, val[:], func(dst, src []byte) {
		d, _ := ReadUint64(dst)
		s, _ := ReadUint64(src)
		AppendUint64(dst[:0], d+s)
	})
	u, _ := ReadUint64(val[:])
	return int64(u)
}

// AllReduceFloat64 sums a float64 across all hosts. The summation tree is
// the recursive-doubling tree, identical on every host, so all hosts see
// the same bits (float addition is commutative; only associativity is
// lost, which changes the result vs a sequential sum by round-off only).
func AllReduceFloat64(ep Endpoint, v float64) float64 {
	var val [8]byte
	AppendFloat64(val[:0], v)
	allReduce(ep, val[:], func(dst, src []byte) {
		d, _ := ReadFloat64(dst)
		s, _ := ReadFloat64(src)
		AppendFloat64(dst[:0], d+s)
	})
	f, _ := ReadFloat64(val[:])
	return f
}

// AllReduceMinFloat64 computes the minimum of a float64 across all hosts.
func AllReduceMinFloat64(ep Endpoint, v float64) float64 {
	var val [8]byte
	AppendFloat64(val[:0], v)
	allReduce(ep, val[:], func(dst, src []byte) {
		d, _ := ReadFloat64(dst)
		s, _ := ReadFloat64(src)
		if s < d {
			copy(dst, src)
		}
	})
	f, _ := ReadFloat64(val[:])
	return f
}
