package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP transport: each host listens on a socket and dials every higher-rank
// peer, producing a full mesh. Frames are length-prefixed:
//
//	[tag uint8][len uint32 LE][payload]
//
// The sender is implicit in the connection; a reader goroutine per peer
// demultiplexes frames into per-(peer, tag) channels, preserving the
// per-sender FIFO order Endpoint requires.
//
// This transport exists to demonstrate that the runtime runs over real
// sockets; experiments default to the in-memory transport.

// TCPEndpoint is an Endpoint connected over real TCP sockets.
type TCPEndpoint struct {
	counters
	rank     int
	numHosts int
	conns    []net.Conn
	inboxes  [][]chan []byte // inboxes[from][tag]
	sendMu   []sync.Mutex
	closed   sync.Once
	closeErr error
}

// NewTCPCluster creates a full-mesh TCP cluster on the loopback interface
// and returns one endpoint per host. It handles listener setup, rank
// handshakes, and connection plumbing internally.
func NewTCPCluster(numHosts int) ([]*TCPEndpoint, error) {
	if numHosts < 1 {
		return nil, fmt.Errorf("comm: cluster needs at least one host")
	}
	listeners := make([]net.Listener, numHosts)
	addrs := make([]string, numHosts)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("comm: listen host %d: %w", i, err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	eps := make([]*TCPEndpoint, numHosts)
	for i := range eps {
		eps[i] = newTCPEndpoint(i, numHosts)
	}

	var wg sync.WaitGroup
	errs := make([]error, numHosts)
	for i := 0; i < numHosts; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = eps[rank].connectMesh(listeners[rank], addrs)
		}(i)
	}
	wg.Wait()
	for i, l := range listeners {
		l.Close()
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return eps, nil
}

func newTCPEndpoint(rank, numHosts int) *TCPEndpoint {
	ep := &TCPEndpoint{
		rank:     rank,
		numHosts: numHosts,
		conns:    make([]net.Conn, numHosts),
		inboxes:  make([][]chan []byte, numHosts),
		sendMu:   make([]sync.Mutex, numHosts),
	}
	for from := range ep.inboxes {
		ep.inboxes[from] = make([]chan []byte, numTags)
		for t := range ep.inboxes[from] {
			ep.inboxes[from][t] = make(chan []byte, localChanCap)
		}
	}
	return ep
}

// connectMesh dials all higher ranks and accepts from all lower ranks.
// Each dialed connection starts with a 4-byte rank handshake.
func (e *TCPEndpoint) connectMesh(l net.Listener, addrs []string) error {
	type dialResult struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialResult, e.numHosts)
	dials := 0
	for peer := e.rank + 1; peer < e.numHosts; peer++ {
		dials++
		go func(peer int) {
			conn, err := net.Dial("tcp", addrs[peer])
			if err == nil {
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(e.rank))
				_, err = conn.Write(hello[:])
			}
			results <- dialResult{peer, conn, err}
		}(peer)
	}
	accepts := e.rank // lower ranks dial us
	for i := 0; i < accepts; i++ {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("comm: host %d accept: %w", e.rank, err)
		}
		var hello [4]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return fmt.Errorf("comm: host %d handshake: %w", e.rank, err)
		}
		peer := int(binary.LittleEndian.Uint32(hello[:]))
		if peer < 0 || peer >= e.numHosts || peer == e.rank {
			return fmt.Errorf("comm: host %d got bad handshake rank %d", e.rank, peer)
		}
		e.conns[peer] = conn
	}
	for i := 0; i < dials; i++ {
		r := <-results
		if r.err != nil {
			return fmt.Errorf("comm: host %d dial %d: %w", e.rank, r.peer, r.err)
		}
		e.conns[r.peer] = r.conn
	}
	for peer, conn := range e.conns {
		if conn != nil {
			go e.readLoop(peer, conn)
		}
	}
	return nil
}

func (e *TCPEndpoint) readLoop(peer int, conn net.Conn) {
	var hdr [5]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // connection closed
		}
		tag := Tag(hdr[0])
		size := binary.LittleEndian.Uint32(hdr[1:])
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		e.inboxes[peer][tag] <- payload
	}
}

// Rank implements Endpoint.
func (e *TCPEndpoint) Rank() int { return e.rank }

// NumHosts implements Endpoint.
func (e *TCPEndpoint) NumHosts() int { return e.numHosts }

// Send implements Endpoint.
func (e *TCPEndpoint) Send(to int, tag Tag, payload []byte) {
	if to == e.rank {
		panic("comm: tcp endpoint sending to itself")
	}
	e.account(payload)
	var hdr [5]byte
	hdr[0] = byte(tag)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	e.sendMu[to].Lock()
	defer e.sendMu[to].Unlock()
	if _, err := e.conns[to].Write(hdr[:]); err != nil {
		panic(fmt.Sprintf("comm: host %d send header to %d: %v", e.rank, to, err))
	}
	if len(payload) > 0 {
		if _, err := e.conns[to].Write(payload); err != nil {
			panic(fmt.Sprintf("comm: host %d send payload to %d: %v", e.rank, to, err))
		}
	}
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(from int, tag Tag) []byte {
	return <-e.inboxes[from][tag]
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.closed.Do(func() {
		for _, c := range e.conns {
			if c != nil {
				if err := c.Close(); err != nil && e.closeErr == nil {
					e.closeErr = err
				}
			}
		}
	})
	return e.closeErr
}
