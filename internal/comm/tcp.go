package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP transport: each host listens on a socket and dials every higher-rank
// peer, producing a full mesh. Frames are length-prefixed:
//
//	[tag uint8][len uint32 LE][payload]
//
// The sender is implicit in the connection; a reader goroutine per peer
// demultiplexes frames into per-(peer, tag) channels, preserving the
// per-sender FIFO order Endpoint requires.
//
// The send path avoids one syscall and one allocation per frame: each peer
// has a bufio.Writer that coalesces header and payload (and, via
// SendBuffered/FlushSends, every frame of an exchange round) into one
// write, while payloads at or above writevCutoff bypass the copy and go
// out as a [header, payload] writev via net.Buffers. The receive path
// carves payloads out of a per-connection slab arena instead of allocating
// per frame; slabs are not recycled — the transport has no signal for when
// a round's payloads die, so reclaim is left to the GC — but allocation
// count drops from one per frame to one per slab.
//
// This transport exists to demonstrate that the runtime runs over real
// sockets; experiments default to the in-memory transport.

const (
	// frameHeader is the per-frame framing overhead: [tag][len uint32].
	// Stats() includes it, so TCP byte counts reflect actual wire bytes.
	frameHeader = 5
	// sendBufSize is the per-peer staging buffer.
	sendBufSize = 64 << 10
	// writevCutoff: payloads at least this large skip the staging copy and
	// are written with writev instead.
	writevCutoff = 4 << 10
	// recvSlabSize is the receive arena slab; frames bigger than a quarter
	// slab get a dedicated allocation so one jumbo frame cannot strand the
	// rest of a slab.
	recvSlabSize = 64 << 10
)

// TCPEndpoint is an Endpoint connected over real TCP sockets.
type TCPEndpoint struct {
	counters
	collScratch
	rank     int
	numHosts int
	peers    []tcpPeer
	inboxes  [][]chan []byte // inboxes[from][tag]
	closed   sync.Once
	closeErr error
}

// tcpPeer is one outgoing connection and its staging state. mu serializes
// writers; hdr and iov are under mu, so Send allocates nothing.
type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	hdr  [frameHeader]byte
	iov  net.Buffers
}

// NewTCPCluster creates a full-mesh TCP cluster on the loopback interface
// and returns one endpoint per host. It handles listener setup, rank
// handshakes, and connection plumbing internally. On failure every
// connection and endpoint established so far is closed before the error is
// returned — no orphaned sockets or reader goroutines.
func NewTCPCluster(numHosts int) ([]*TCPEndpoint, error) {
	if numHosts < 1 {
		return nil, fmt.Errorf("comm: cluster needs at least one host")
	}
	listeners := make([]net.Listener, numHosts)
	addrs := make([]string, numHosts)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range listeners[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("comm: listen host %d: %w", i, err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	eps := make([]*TCPEndpoint, numHosts)
	for i := range eps {
		eps[i] = newTCPEndpoint(i, numHosts)
	}

	var wg sync.WaitGroup
	var failed sync.Once
	errs := make([]error, numHosts)
	for i := 0; i < numHosts; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = eps[rank].connectMesh(listeners[rank], addrs)
			if errs[rank] != nil {
				// Unblock peers parked in Accept waiting for a dial that
				// will never come, so the whole setup fails instead of
				// hanging.
				failed.Do(func() {
					for _, l := range listeners {
						l.Close()
					}
				})
			}
		}(i)
	}
	wg.Wait()
	var firstErr error
	for i, l := range listeners {
		l.Close()
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	if firstErr != nil {
		for _, ep := range eps {
			ep.Close() // tears down the successful hosts' conns and readers
		}
		return nil, firstErr
	}
	return eps, nil
}

func newTCPEndpoint(rank, numHosts int) *TCPEndpoint {
	ep := &TCPEndpoint{
		rank:     rank,
		numHosts: numHosts,
		peers:    make([]tcpPeer, numHosts),
		inboxes:  make([][]chan []byte, numHosts),
	}
	for from := range ep.inboxes {
		ep.inboxes[from] = make([]chan []byte, numTags)
		for t := range ep.inboxes[from] {
			ep.inboxes[from][t] = make(chan []byte, localChanCap)
		}
	}
	return ep
}

// connectMesh dials all higher ranks and accepts from all lower ranks.
// Each dialed connection starts with a 4-byte rank handshake. On error,
// every connection this host has established — accepted, dialed, and
// still-in-flight dials — is closed before returning.
func (e *TCPEndpoint) connectMesh(l net.Listener, addrs []string) (err error) {
	type dialResult struct {
		peer int
		conn net.Conn
		err  error
	}
	results := make(chan dialResult, e.numHosts)
	pending := 0
	for peer := e.rank + 1; peer < e.numHosts; peer++ {
		pending++
		go func(peer int) {
			conn, err := net.Dial("tcp", addrs[peer])
			if err == nil {
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(e.rank))
				if _, werr := conn.Write(hello[:]); werr != nil {
					err = werr
				}
			}
			results <- dialResult{peer, conn, err}
		}(peer)
	}
	defer func() {
		if err == nil {
			return
		}
		for ; pending > 0; pending-- {
			if r := <-results; r.conn != nil {
				r.conn.Close()
			}
		}
		for i := range e.peers {
			if c := e.peers[i].conn; c != nil {
				c.Close()
				e.peers[i].conn = nil
			}
		}
	}()
	for i := 0; i < e.rank; i++ { // lower ranks dial us
		conn, aerr := l.Accept()
		if aerr != nil {
			return fmt.Errorf("comm: host %d accept: %w", e.rank, aerr)
		}
		var hello [4]byte
		if _, herr := io.ReadFull(conn, hello[:]); herr != nil {
			conn.Close()
			return fmt.Errorf("comm: host %d handshake: %w", e.rank, herr)
		}
		peer := int(binary.LittleEndian.Uint32(hello[:]))
		if peer < 0 || peer >= e.numHosts || peer == e.rank || e.peers[peer].conn != nil {
			conn.Close()
			return fmt.Errorf("comm: host %d got bad handshake rank %d", e.rank, peer)
		}
		e.peers[peer].conn = conn
	}
	for ; pending > 0; pending-- {
		r := <-results
		if r.err != nil {
			if r.conn != nil {
				r.conn.Close()
			}
			pending-- // this result is consumed; the deferred drain skips it
			return fmt.Errorf("comm: host %d dial %d: %w", e.rank, r.peer, r.err)
		}
		e.peers[r.peer].conn = r.conn
	}
	for peer := range e.peers {
		if conn := e.peers[peer].conn; conn != nil {
			e.peers[peer].bw = bufio.NewWriterSize(conn, sendBufSize)
			go e.readLoop(peer, conn)
		}
	}
	return nil
}

// readLoop demultiplexes one peer's frames. Payloads are carved from a
// slab arena: per the package's ownership contract they are only valid for
// the receiver's current round, but the transport cannot observe round
// boundaries, so spent slabs are reclaimed by the GC once the round's
// payloads are dropped rather than recycled in place.
func (e *TCPEndpoint) readLoop(peer int, conn net.Conn) {
	var hdr [frameHeader]byte
	var slab []byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return // connection closed
		}
		tag := Tag(hdr[0])
		size := int(binary.LittleEndian.Uint32(hdr[1:]))
		var payload []byte
		switch {
		case size == 0:
		case size >= recvSlabSize/4:
			payload = make([]byte, size)
		default:
			if len(slab) < size {
				slab = make([]byte, recvSlabSize)
			}
			payload = slab[:size:size]
			slab = slab[size:]
		}
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		e.inboxes[peer][tag] <- payload
	}
}

// Rank implements Endpoint.
func (e *TCPEndpoint) Rank() int { return e.rank }

// NumHosts implements Endpoint.
func (e *TCPEndpoint) NumHosts() int { return e.numHosts }

// Send implements Endpoint: stage the frame and flush it immediately, so
// the bytes are on the wire before Send returns (collectives and the
// overlap path in ExchangeFunc rely on that).
func (e *TCPEndpoint) Send(to int, tag Tag, payload []byte) {
	e.SendBuffered(to, tag, payload)
	e.flush(to)
}

// SendBuffered implements BufferedSender: the frame is coalesced into the
// peer's staging buffer and hits the wire at the next flush (or earlier if
// the buffer fills). Payloads ≥ writevCutoff skip staging: pending bytes
// are flushed and header+payload go out as one writev.
func (e *TCPEndpoint) SendBuffered(to int, tag Tag, payload []byte) {
	if to == e.rank {
		panic("comm: tcp endpoint sending to itself")
	}
	e.account(tag, len(payload)+frameHeader)
	p := &e.peers[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hdr[0] = byte(tag)
	binary.LittleEndian.PutUint32(p.hdr[1:], uint32(len(payload)))
	if len(payload) >= writevCutoff {
		if err := p.bw.Flush(); err != nil {
			panic(fmt.Sprintf("comm: host %d flush to %d: %v", e.rank, to, err))
		}
		p.iov = append(p.iov[:0], p.hdr[:], payload)
		if _, err := p.iov.WriteTo(p.conn); err != nil {
			panic(fmt.Sprintf("comm: host %d send payload to %d: %v", e.rank, to, err))
		}
		return
	}
	if _, err := p.bw.Write(p.hdr[:]); err != nil {
		panic(fmt.Sprintf("comm: host %d send header to %d: %v", e.rank, to, err))
	}
	if len(payload) > 0 {
		if _, err := p.bw.Write(payload); err != nil {
			panic(fmt.Sprintf("comm: host %d send payload to %d: %v", e.rank, to, err))
		}
	}
}

// FlushSends implements BufferedSender: push every peer's staged frames to
// the wire (the exchange round boundary).
func (e *TCPEndpoint) FlushSends() {
	for to := range e.peers {
		if e.peers[to].conn != nil {
			e.flush(to)
		}
	}
}

func (e *TCPEndpoint) flush(to int) {
	p := &e.peers[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bw.Buffered() == 0 {
		return
	}
	if err := p.bw.Flush(); err != nil {
		panic(fmt.Sprintf("comm: host %d flush to %d: %v", e.rank, to, err))
	}
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(from int, tag Tag) []byte {
	return <-e.inboxes[from][tag]
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.closed.Do(func() {
		for i := range e.peers {
			if c := e.peers[i].conn; c != nil {
				if err := c.Close(); err != nil && e.closeErr == nil {
					e.closeErr = err
				}
			}
		}
	})
	return e.closeErr
}
