package comm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runAll runs fn concurrently on every endpoint and waits for completion.
func runAll[E Endpoint](t *testing.T, eps []E, fn func(ep Endpoint)) {
	t.Helper()
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			fn(ep)
		}(ep)
	}
	wg.Wait()
}

func newClusters(t *testing.T, n int) map[string][]Endpoint {
	t.Helper()
	out := map[string][]Endpoint{}
	local := NewLocalCluster(n)
	eps := make([]Endpoint, n)
	for i, e := range local {
		eps[i] = e
	}
	out["local"] = eps
	tcp, err := NewTCPCluster(n)
	if err != nil {
		t.Fatalf("tcp cluster: %v", err)
	}
	teps := make([]Endpoint, n)
	for i, e := range tcp {
		teps[i] = e
	}
	out["tcp"] = teps
	return out
}

func TestExchangeAllTransports(t *testing.T) {
	const n = 4
	for name, eps := range newClusters(t, n) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			var mu sync.Mutex
			got := map[string]string{}
			runAll(t, eps, func(ep Endpoint) {
				out := make([][]byte, n)
				for to := range out {
					out[to] = []byte(fmt.Sprintf("%d->%d", ep.Rank(), to))
				}
				in := Exchange(ep, TagApp, out)
				for from, payload := range in {
					mu.Lock()
					got[fmt.Sprintf("%d@%d", from, ep.Rank())] = string(payload)
					mu.Unlock()
				}
			})
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					want := fmt.Sprintf("%d->%d", from, to)
					if got[fmt.Sprintf("%d@%d", from, to)] != want {
						t.Errorf("host %d got %q from %d, want %q",
							to, got[fmt.Sprintf("%d@%d", from, to)], from, want)
					}
				}
			}
		})
	}
}

func closeAll(eps []Endpoint) {
	for _, ep := range eps {
		ep.Close()
	}
}

func TestConsecutiveExchangesStaySeparate(t *testing.T) {
	// Two back-to-back exchanges with the same tag must not interleave:
	// per-sender FIFO guarantees round 1 payloads precede round 2.
	const n, rounds = 3, 20
	for name, eps := range newClusters(t, n) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			errs := make(chan error, n*rounds)
			runAll(t, eps, func(ep Endpoint) {
				for r := 0; r < rounds; r++ {
					out := make([][]byte, n)
					for to := range out {
						out[to] = []byte{byte(r)}
					}
					in := Exchange(ep, TagReduce, out)
					for from, p := range in {
						if from != ep.Rank() && p[0] != byte(r) {
							errs <- fmt.Errorf("host %d round %d got round %d from %d",
								ep.Rank(), r, p[0], from)
						}
					}
				}
			})
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

func TestDifferentTagsDoNotInterfere(t *testing.T) {
	eps := NewLocalCluster(2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		eps[0].Send(1, TagReduce, []byte("reduce"))
		eps[0].Send(1, TagRequest, []byte("request"))
	}()
	var gotReq, gotRed []byte
	go func() {
		defer wg.Done()
		gotReq = eps[1].Recv(0, TagRequest) // receive in opposite order
		gotRed = eps[1].Recv(0, TagReduce)
	}()
	wg.Wait()
	if string(gotReq) != "request" || string(gotRed) != "reduce" {
		t.Fatalf("tag demux broken: %q %q", gotReq, gotRed)
	}
}

func TestBarrier(t *testing.T) {
	const n = 5
	eps := NewLocalCluster(n)
	var phase [n]int
	var mu sync.Mutex
	epsI := make([]Endpoint, n)
	for i, e := range eps {
		epsI[i] = e
	}
	runAll(t, epsI, func(ep Endpoint) {
		mu.Lock()
		phase[ep.Rank()] = 1
		mu.Unlock()
		Barrier(ep)
		mu.Lock()
		for i, p := range phase {
			if p == 0 {
				t.Errorf("after barrier, host %d had not entered", i)
			}
		}
		mu.Unlock()
	})
}

func TestAllReduce(t *testing.T) {
	const n = 4
	eps := NewLocalCluster(n)
	epsI := make([]Endpoint, n)
	for i, e := range eps {
		epsI[i] = e
	}
	var mu sync.Mutex
	var boolRes []bool
	var sumRes []int64
	var minRes []float64
	var fsumRes []float64
	runAll(t, epsI, func(ep Endpoint) {
		b := AllReduceBool(ep, ep.Rank() == 2)
		s := AllReduceInt64(ep, int64(ep.Rank()+1))
		m := AllReduceMinFloat64(ep, float64(ep.Rank())+0.5)
		f := AllReduceFloat64(ep, float64(ep.Rank()))
		mu.Lock()
		boolRes = append(boolRes, b)
		sumRes = append(sumRes, s)
		minRes = append(minRes, m)
		fsumRes = append(fsumRes, f)
		mu.Unlock()
	})
	for i := range boolRes {
		if !boolRes[i] {
			t.Error("OR reduce lost the true")
		}
		if sumRes[i] != 10 {
			t.Errorf("sum reduce = %d, want 10", sumRes[i])
		}
		if minRes[i] != 0.5 {
			t.Errorf("min reduce = %v, want 0.5", minRes[i])
		}
		if fsumRes[i] != 6 {
			t.Errorf("float sum = %v, want 6", fsumRes[i])
		}
	}
}

func TestAllReduceBoolFalse(t *testing.T) {
	eps := NewLocalCluster(2)
	epsI := []Endpoint{eps[0], eps[1]}
	runAll(t, epsI, func(ep Endpoint) {
		if AllReduceBool(ep, false) {
			t.Error("all-false OR returned true")
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	eps := NewLocalCluster(2)
	eps[0].Send(1, TagApp, []byte("12345"))
	eps[1].Recv(0, TagApp)
	msgs, bytes := eps[0].Stats()
	if msgs != 1 || bytes != 5 {
		t.Fatalf("stats = %d msgs %d bytes, want 1/5", msgs, bytes)
	}
	msgs, _ = eps[1].Stats()
	if msgs != 0 {
		t.Fatalf("receiver accounted %d sends", msgs)
	}
}

func TestSelfSendPanics(t *testing.T) {
	eps := NewLocalCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	eps[0].Send(0, TagApp, nil)
}

func TestSingleHostClusterTrivial(t *testing.T) {
	eps := NewLocalCluster(1)
	Barrier(eps[0]) // must not block
	if v := AllReduceInt64(eps[0], 7); v != 7 {
		t.Fatalf("1-host sum = %d", v)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(a uint32, b uint64, c float64) bool {
		buf := AppendUint32(nil, a)
		buf = AppendUint64(buf, b)
		buf = AppendFloat64(buf, c)
		ga, rest := ReadUint32(buf)
		gb, rest := ReadUint64(rest)
		gc, rest := ReadFloat64(rest)
		return ga == a && gb == b && (gc == c || (c != c && gc != gc)) && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer eps[0].Close()
	defer eps[1].Close()
	payload := make([]byte, 1<<20)
	r := rand.New(rand.NewSource(1))
	r.Read(payload)
	done := make(chan []byte)
	go func() { done <- eps[1].Recv(0, TagApp) }()
	eps[0].Send(1, TagApp, payload)
	got := <-done
	if len(got) != len(payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload corrupted at byte %d", i)
		}
	}
}

func TestNewLocalClusterPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLocalCluster(0)
}

func TestNewTCPClusterRejectsZero(t *testing.T) {
	if _, err := NewTCPCluster(0); err == nil {
		t.Fatal("expected error")
	}
}

func TestTCPSendAfterCloseFailsLoudly(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	eps[0].Close()
	eps[1].Close()
	defer func() {
		if recover() == nil {
			t.Fatal("send on closed endpoint did not panic")
		}
	}()
	eps[0].Send(1, TagApp, []byte("x"))
}

func TestLocalEndpointCloseIdempotent(t *testing.T) {
	eps := NewLocalCluster(2)
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	eps, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmptyPayloadExchange(t *testing.T) {
	eps := NewLocalCluster(3)
	epsI := make([]Endpoint, 3)
	for i, e := range eps {
		epsI[i] = e
	}
	runAll(t, epsI, func(ep Endpoint) {
		out := make([][]byte, 3) // all nil payloads
		in := Exchange(ep, TagApp, out)
		for from, p := range in {
			if from != ep.Rank() && len(p) != 0 {
				t.Errorf("expected empty payload, got %d bytes", len(p))
			}
		}
	})
}

func TestExchangeWrongSizePanics(t *testing.T) {
	eps := NewLocalCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("mis-sized Exchange did not panic")
		}
	}()
	Exchange(eps[0], TagApp, make([][]byte, 5))
}
