package comm

import "fmt"

// localFabric is an in-memory transport: a cluster of endpoints connected
// by buffered channels. Channel capacity bounds how far ahead one host can
// run; BSP synchronization keeps the number of in-flight messages per
// (sender, receiver, tag) to a small constant, so the capacity below is
// never a throttle in practice.
type localFabric struct {
	// ch[from][to][tag] carries payloads from host `from` to host `to`.
	ch [][][]chan []byte
}

const localChanCap = 1024

// LocalEndpoint is an Endpoint of the in-memory transport.
type LocalEndpoint struct {
	counters
	collScratch
	fabric *localFabric
	rank   int
}

// NewLocalCluster creates numHosts interconnected in-memory endpoints.
func NewLocalCluster(numHosts int) []*LocalEndpoint {
	if numHosts < 1 {
		panic("comm: cluster needs at least one host")
	}
	f := &localFabric{ch: make([][][]chan []byte, numHosts)}
	for from := range f.ch {
		f.ch[from] = make([][]chan []byte, numHosts)
		for to := range f.ch[from] {
			f.ch[from][to] = make([]chan []byte, numTags)
			for t := range f.ch[from][to] {
				f.ch[from][to][t] = make(chan []byte, localChanCap)
			}
		}
	}
	eps := make([]*LocalEndpoint, numHosts)
	for i := range eps {
		eps[i] = &LocalEndpoint{fabric: f, rank: i}
	}
	return eps
}

// Rank implements Endpoint.
func (e *LocalEndpoint) Rank() int { return e.rank }

// NumHosts implements Endpoint.
func (e *LocalEndpoint) NumHosts() int { return len(e.fabric.ch) }

// Send implements Endpoint. The payload is delivered by reference, not
// copied: the sender must honor the package's buffer-ownership contract and
// not overwrite the buffer until the receiver's round is over (in BSP
// terms: double-buffer any recycled send buffers).
func (e *LocalEndpoint) Send(to int, tag Tag, payload []byte) {
	if to == e.rank {
		panic(fmt.Sprintf("comm: host %d sending to itself", to))
	}
	e.account(tag, len(payload))
	e.fabric.ch[e.rank][to][tag] <- payload
}

// Recv implements Endpoint.
func (e *LocalEndpoint) Recv(from int, tag Tag) []byte {
	return <-e.fabric.ch[from][e.rank][tag]
}

// Close implements Endpoint. In-memory endpoints hold no resources.
func (e *LocalEndpoint) Close() error { return nil }
