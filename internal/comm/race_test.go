//go:build race

package comm

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates and breaks alloc budgets.
const raceEnabled = true
