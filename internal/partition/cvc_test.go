package partition

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

// CVC-specific structure: edge (u,v) must land on the host at grid
// position (row(owner(u)), col(owner(v))) — the Boman et al. 2-D policy.
func TestCVCEdgePlacement(t *testing.T) {
	g := gen.RMAT(8, 6, false, 4)
	const hosts = 6 // 2x3 grid
	p := Partition(g, hosts, CVC)
	pr, pc := gridShape(hosts)
	if pr != 2 || pc != 3 {
		t.Fatalf("gridShape(6) = %dx%d", pr, pc)
	}
	// Recover each edge's host and check the formula.
	located := map[[2]graph.NodeID]int{}
	for _, hp := range p.Hosts {
		for n := 0; n < hp.Local.NumNodes(); n++ {
			src := hp.GlobalID(graph.NodeID(n))
			lo, hi := hp.Local.EdgeRange(graph.NodeID(n))
			for e := lo; e < hi; e++ {
				dst := hp.GlobalID(hp.Local.Dst(e))
				located[[2]graph.NodeID{src, dst}] = hp.Host
			}
		}
	}
	for n := 0; n < g.NumNodes(); n++ {
		for _, v := range g.Neighbors(graph.NodeID(n)) {
			want := (p.Owner(graph.NodeID(n))/pc)*pc + p.Owner(v)%pc
			got, ok := located[[2]graph.NodeID{graph.NodeID(n), v}]
			if !ok {
				t.Fatalf("edge %d->%d unplaced", n, v)
			}
			if got != want {
				t.Fatalf("edge %d->%d on host %d, want %d", n, v, got, want)
			}
		}
	}
}

// Under CVC, a node's proxies are confined to its owner's grid row and
// column: at most pr+pc-1 hosts.
func TestCVCProxySpreadBounded(t *testing.T) {
	g := gen.RMAT(9, 8, false, 5)
	const hosts = 4 // 2x2
	p := Partition(g, hosts, CVC)
	pr, pc := gridShape(hosts)
	copies := make([]int, g.NumNodes())
	for _, hp := range p.Hosts {
		for l := 0; l < hp.NumLocal(); l++ {
			copies[hp.GlobalID(graph.NodeID(l))]++
		}
	}
	for n, c := range copies {
		if c > pr+pc-1 {
			t.Fatalf("node %d has %d proxies, CVC bound is %d", n, c, pr+pc-1)
		}
	}
}

func TestMoreHostsThanNodes(t *testing.T) {
	g := gen.Star(3) // 3 nodes
	p := Partition(g, 5, OEC)
	total := 0
	for _, hp := range p.Hosts {
		total += hp.NumMasters
	}
	if total != 3 {
		t.Fatalf("masters total %d, want 3", total)
	}
	// Empty hosts must still be well-formed.
	for _, hp := range p.Hosts {
		if hp.NumLocal() < hp.NumMasters {
			t.Fatalf("host %d: locals %d < masters %d", hp.Host, hp.NumLocal(), hp.NumMasters)
		}
	}
}
