// Package partition splits a graph across simulated hosts the way Gluon and
// Kimbap do: edges are assigned to hosts by a partitioning policy, proxy
// nodes are created for edge endpoints, and for each graph node one proxy is
// designated the master (holding the canonical property value) while the
// rest are mirrors.
//
// Three policies from the paper are provided:
//
//   - OEC (outgoing edge-cut): edge u->v lives on owner(u). Structural
//     invariant: mirrors have no outgoing edges.
//   - IEC (incoming edge-cut): edge u->v lives on owner(v). Structural
//     invariant: mirrors have no incoming edges.
//   - CVC (Cartesian vertex-cut, Boman et al.): hosts form a pr x pc grid
//     and edge u->v lives on host (row(owner(u)), col(owner(v))).
//
// Node ownership is by contiguous node ranges balanced by degree, which
// keeps the owner function a binary search over at most numHosts+1
// boundaries (the paper's temporal invariant: the partition never changes
// during execution, so these tables are computed once).
package partition

import (
	"fmt"
	"sort"

	"kimbap/internal/graph"
)

// Policy selects a partitioning strategy.
type Policy string

// The partitioning policies used in the paper's evaluation (§6.1).
const (
	OEC Policy = "oec" // outgoing edge-cut
	IEC Policy = "iec" // incoming edge-cut
	CVC Policy = "cvc" // Cartesian (2-D) vertex-cut
)

// Policies lists all supported policies.
var Policies = []Policy{OEC, IEC, CVC}

// Partitioned is the result of partitioning a graph across hosts.
type Partitioned struct {
	NumHosts   int
	NumNodes   int // global node count
	Policy     Policy
	Hosts      []*HostPartition
	boundaries []graph.NodeID // len NumHosts+1; owner(v) = range containing v
	// ownerTab[v>>ownerBlockShift] = owner of that block's first node.
	// Owner starts there and walks at most the boundaries that fall inside
	// one block — O(1) for the per-entry lookups on the reduce-sync encode
	// path, where a binary search per key is measurable. Built only when
	// NumHosts fits uint8; Owner falls back to the search otherwise.
	ownerTab []uint8
}

// ownerBlockShift sets the owner-table block size (64 nodes/byte: 2 MB of
// table per 128M nodes, far below the CSR arrays for any such graph).
const ownerBlockShift = 6

// HostPartition is one host's local view: a local CSR over local node IDs,
// with masters occupying local IDs [0, NumMasters) and mirrors following.
// Both groups are sorted by global ID.
type HostPartition struct {
	Host       int
	Local      *graph.Graph
	GlobalIDs  []graph.NodeID // local -> global
	NumMasters int

	// MirrorsByOwner[o] lists (as local IDs) this host's mirror nodes whose
	// master lives on host o, sorted by global ID. Used to receive
	// broadcasts and to address reduce messages.
	MirrorsByOwner [][]graph.NodeID
	// MasterSendTo[o] lists (as local IDs) this host's master nodes that
	// have a mirror on host o, sorted by global ID. Used to send
	// broadcasts. MasterSendTo[self] is empty.
	MasterSendTo [][]graph.NodeID

	// Structural invariants exploited by pinned-mirror optimizations.
	MirrorsHaveNoOutEdges bool
	MirrorsHaveNoInEdges  bool

	mirrorGlobals []graph.NodeID // GlobalIDs[NumMasters:], kept for search
	part          *Partitioned
}

// PartitionSerial is the retained single-threaded reference for Partition.
// The equivalence tests compare its output — boundaries, GlobalIDs, local
// CSR, MirrorsByOwner, MasterSendTo — bit for bit against the parallel
// pipeline at every worker count.
func PartitionSerial(g *graph.Graph, numHosts int, policy Policy) *Partitioned {
	if numHosts < 1 {
		panic("partition: numHosts must be >= 1")
	}
	p := &Partitioned{
		NumHosts:   numHosts,
		NumNodes:   g.NumNodes(),
		Policy:     policy,
		boundaries: degreeBalancedBoundaries(g, numHosts),
	}
	p.buildOwnerTab()
	assign := p.edgeAssigner(policy, numHosts)

	// Pass 1: count edges per host and collect the set of non-master
	// endpoints (mirrors) appearing on each host.
	type hostEdges struct {
		edges   []graph.Edge
		mirrors map[graph.NodeID]struct{}
	}
	hosts := make([]hostEdges, numHosts)
	for h := range hosts {
		hosts[h].mirrors = make(map[graph.NodeID]struct{})
	}
	for n := 0; n < g.NumNodes(); n++ {
		src := graph.NodeID(n)
		lo, hi := g.EdgeRange(src)
		for e := lo; e < hi; e++ {
			dst := g.Dst(e)
			h := assign(src, dst)
			hosts[h].edges = append(hosts[h].edges,
				graph.Edge{Src: src, Dst: dst, Weight: g.Weight(e)})
			if p.Owner(src) != h {
				hosts[h].mirrors[src] = struct{}{}
			}
			if p.Owner(dst) != h {
				hosts[h].mirrors[dst] = struct{}{}
			}
		}
	}

	// Pass 2: build each host's local graph and proxy metadata.
	p.Hosts = make([]*HostPartition, numHosts)
	for h := 0; h < numHosts; h++ {
		p.Hosts[h] = buildHostPartition(p, g, h, hosts[h].edges, hosts[h].mirrors)
	}

	// Pass 3: exchange mirror lists (direct computation; in a real cluster
	// this is the partitioning-time metadata exchange).
	for h := 0; h < numHosts; h++ {
		p.Hosts[h].buildMirrorsByOwner()
	}
	for h := 0; h < numHosts; h++ {
		p.Hosts[h].buildMasterSendTo()
	}
	return p
}

// buildMirrorsByOwner buckets this host's mirrors (ascending local, hence
// ascending global, IDs) by the host owning their master.
func (hp *HostPartition) buildMirrorsByOwner() {
	p := hp.part
	hp.MirrorsByOwner = make([][]graph.NodeID, p.NumHosts)
	for _, local := range hp.mirrorLocalIDs() {
		o := p.Owner(hp.GlobalIDs[local])
		hp.MirrorsByOwner[o] = append(hp.MirrorsByOwner[o], local)
	}
}

// buildMasterSendTo derives this host's broadcast lists from every other
// host's MirrorsByOwner; all hosts' buildMirrorsByOwner must have completed
// first.
func (hp *HostPartition) buildMasterSendTo() {
	p := hp.part
	hp.MasterSendTo = make([][]graph.NodeID, p.NumHosts)
	for o := 0; o < p.NumHosts; o++ {
		if o == hp.Host {
			continue
		}
		op := p.Hosts[o]
		for _, mirrorLocal := range op.MirrorsByOwner[hp.Host] {
			global := op.GlobalIDs[mirrorLocal]
			masterLocal, ok := hp.LocalID(global)
			if !ok || !hp.IsMaster(masterLocal) {
				panic("partition: mirror without master proxy")
			}
			hp.MasterSendTo[o] = append(hp.MasterSendTo[o], masterLocal)
		}
	}
}

// Owner returns the host that holds the master proxy of global node v.
func (p *Partitioned) Owner(v graph.NodeID) int {
	// boundaries[h] <= v < boundaries[h+1]  =>  owner is h.
	if p.ownerTab != nil {
		h := int(p.ownerTab[v>>ownerBlockShift])
		for p.boundaries[h+1] <= v {
			h++
		}
		return h
	}
	return sort.Search(len(p.boundaries)-1, func(h int) bool {
		return p.boundaries[h+1] > v
	})
}

func (p *Partitioned) buildOwnerTab() {
	if p.NumHosts > 256 || p.NumNodes == 0 {
		return
	}
	nb := (p.NumNodes + (1 << ownerBlockShift) - 1) >> ownerBlockShift
	tab := make([]uint8, nb)
	h := 0
	for b := range tab {
		v := graph.NodeID(b << ownerBlockShift)
		for p.boundaries[h+1] <= v {
			h++
		}
		tab[b] = uint8(h)
	}
	p.ownerTab = tab
}

// MasterRange returns the global-ID range [lo, hi) of masters on host h.
func (p *Partitioned) MasterRange(h int) (lo, hi graph.NodeID) {
	return p.boundaries[h], p.boundaries[h+1]
}

func degreeBalancedBoundaries(g *graph.Graph, numHosts int) []graph.NodeID {
	n := g.NumNodes()
	total := g.NumEdges() + int64(n) // +1 per node so empty nodes also spread
	bounds := make([]graph.NodeID, numHosts+1)
	bounds[numHosts] = graph.NodeID(n)
	target := total / int64(numHosts)
	h := 1
	var acc int64
	for v := 0; v < n && h < numHosts; v++ {
		acc += int64(g.Degree(graph.NodeID(v))) + 1
		if acc >= target*int64(h) {
			bounds[h] = graph.NodeID(v + 1)
			h++
		}
	}
	for ; h < numHosts; h++ {
		bounds[h] = graph.NodeID(n)
	}
	return bounds
}

// edgeAssigner returns the function mapping an edge to its host.
func (p *Partitioned) edgeAssigner(policy Policy, numHosts int) func(src, dst graph.NodeID) int {
	switch policy {
	case OEC:
		return func(src, _ graph.NodeID) int { return p.Owner(src) }
	case IEC:
		return func(_, dst graph.NodeID) int { return p.Owner(dst) }
	case CVC:
		_, pc := gridShape(numHosts)
		return func(src, dst graph.NodeID) int {
			r := p.Owner(src) / pc
			c := p.Owner(dst) % pc
			return r*pc + c
		}
	default:
		panic(fmt.Sprintf("partition: unknown policy %q", policy))
	}
}

// gridShape factors numHosts into the most square pr x pc grid, with
// pr the largest factor <= sqrt(numHosts).
func gridShape(numHosts int) (pr, pc int) {
	pr = 1
	for f := 2; f*f <= numHosts; f++ {
		if numHosts%f == 0 {
			pr = f
		}
	}
	return pr, numHosts / pr
}

func buildHostPartition(p *Partitioned, g *graph.Graph, h int,
	edges []graph.Edge, mirrorSet map[graph.NodeID]struct{}) *HostPartition {

	lo, hi := p.MasterRange(h)
	numMasters := int(hi - lo)
	mirrors := make([]graph.NodeID, 0, len(mirrorSet))
	for v := range mirrorSet {
		mirrors = append(mirrors, v)
	}
	sort.Slice(mirrors, func(i, j int) bool { return mirrors[i] < mirrors[j] })

	hp := &HostPartition{
		Host:          h,
		NumMasters:    numMasters,
		GlobalIDs:     make([]graph.NodeID, 0, numMasters+len(mirrors)),
		mirrorGlobals: mirrors,
		part:          p,
	}
	for v := lo; v < hi; v++ {
		hp.GlobalIDs = append(hp.GlobalIDs, v)
	}
	hp.GlobalIDs = append(hp.GlobalIDs, mirrors...)

	b := graph.NewBuilder(len(hp.GlobalIDs))
	weighted := g.Weighted()
	for _, e := range edges {
		ls, ok1 := hp.LocalID(e.Src)
		ld, ok2 := hp.LocalID(e.Dst)
		if !ok1 || !ok2 {
			panic("partition: edge endpoint has no proxy")
		}
		if weighted {
			b.AddWeightedEdge(ls, ld, e.Weight)
		} else {
			b.AddEdge(ls, ld)
		}
	}
	hp.Local = b.Build()
	hp.detectInvariants()
	return hp
}

// detectInvariants scans the local CSR for the structural invariants
// exploited by pinned-mirror optimizations.
func (hp *HostPartition) detectInvariants() {
	numMasters := hp.NumMasters
	hp.MirrorsHaveNoOutEdges = true
	inDeg := make([]int, hp.Local.NumNodes())
	for n := 0; n < hp.Local.NumNodes(); n++ {
		for _, v := range hp.Local.Neighbors(graph.NodeID(n)) {
			inDeg[v]++
		}
		if n >= numMasters && hp.Local.Degree(graph.NodeID(n)) > 0 {
			hp.MirrorsHaveNoOutEdges = false
		}
	}
	hp.MirrorsHaveNoInEdges = true
	for n := numMasters; n < hp.Local.NumNodes(); n++ {
		if inDeg[n] > 0 {
			hp.MirrorsHaveNoInEdges = false
			break
		}
	}
}

// LocalID translates a global node ID to this host's local ID. Masters map
// by offset; mirrors by binary search over the sorted mirror list.
func (hp *HostPartition) LocalID(global graph.NodeID) (graph.NodeID, bool) {
	lo, hi := hp.part.MasterRange(hp.Host)
	if global >= lo && global < hi {
		return global - lo, true
	}
	i := sort.Search(len(hp.mirrorGlobals), func(i int) bool {
		return hp.mirrorGlobals[i] >= global
	})
	if i < len(hp.mirrorGlobals) && hp.mirrorGlobals[i] == global {
		return graph.NodeID(hp.NumMasters + i), true
	}
	return graph.InvalidNode, false
}

// GlobalID translates a local node ID back to the global ID.
func (hp *HostPartition) GlobalID(local graph.NodeID) graph.NodeID {
	return hp.GlobalIDs[local]
}

// IsMaster reports whether a local node is this host's master proxy.
func (hp *HostPartition) IsMaster(local graph.NodeID) bool {
	return int(local) < hp.NumMasters
}

// NumLocal returns the number of proxies (masters + mirrors) on this host.
func (hp *HostPartition) NumLocal() int { return len(hp.GlobalIDs) }

// NumMirrors returns the number of mirror proxies on this host.
func (hp *HostPartition) NumMirrors() int { return len(hp.mirrorGlobals) }

// Owner returns the master host of a global node (convenience passthrough).
func (hp *HostPartition) Owner(global graph.NodeID) int { return hp.part.Owner(global) }

// NumGlobalNodes returns the global node count of the partitioned graph.
func (hp *HostPartition) NumGlobalNodes() int { return hp.part.NumNodes }

// NumHosts returns the number of hosts in the partitioning.
func (hp *HostPartition) NumHosts() int { return hp.part.NumHosts }

// MasterRangeGlobal returns the global master range of this host.
func (hp *HostPartition) MasterRangeGlobal() (lo, hi graph.NodeID) {
	return hp.part.MasterRange(hp.Host)
}

// MasterRangeOf returns the global master range of host h. The partition is
// temporally invariant, so senders can compute a receiver's thread-range
// layout from it — the basis for addressing scatter payload sections at the
// receiver's gather threads.
func (hp *HostPartition) MasterRangeOf(h int) (lo, hi graph.NodeID) {
	return hp.part.MasterRange(h)
}

func (hp *HostPartition) mirrorLocalIDs() []graph.NodeID {
	out := make([]graph.NodeID, len(hp.mirrorGlobals))
	for i := range out {
		out[i] = graph.NodeID(hp.NumMasters + i)
	}
	return out
}

// ReplicationFactor returns total proxies divided by global nodes, a
// standard partition-quality metric.
func (p *Partitioned) ReplicationFactor() float64 {
	total := 0
	for _, hp := range p.Hosts {
		total += hp.NumLocal()
	}
	if p.NumNodes == 0 {
		return 0
	}
	return float64(total) / float64(p.NumNodes)
}
