// Package partition splits a graph across simulated hosts the way Gluon and
// Kimbap do: edges are assigned to hosts by a partitioning policy, proxy
// nodes are created for edge endpoints, and for each graph node one proxy is
// designated the master (holding the canonical property value) while the
// rest are mirrors.
//
// Three policies from the paper are provided:
//
//   - OEC (outgoing edge-cut): edge u->v lives on owner(u). Structural
//     invariant: mirrors have no outgoing edges.
//   - IEC (incoming edge-cut): edge u->v lives on owner(v). Structural
//     invariant: mirrors have no incoming edges.
//   - CVC (Cartesian vertex-cut, Boman et al.): hosts form a pr x pc grid
//     and edge u->v lives on host (row(owner(u)), col(owner(v))).
//
// Node ownership is by contiguous node ranges balanced by degree, which
// keeps the owner function a binary search over at most numHosts+1
// boundaries (the paper's temporal invariant: the partition never changes
// during execution, so these tables are computed once).
package partition

import (
	"fmt"
	"sort"

	"kimbap/internal/graph"
)

// Policy selects a partitioning strategy.
type Policy string

// The partitioning policies used in the paper's evaluation (§6.1).
const (
	OEC Policy = "oec" // outgoing edge-cut
	IEC Policy = "iec" // incoming edge-cut
	CVC Policy = "cvc" // Cartesian (2-D) vertex-cut
)

// Policies lists all supported policies.
var Policies = []Policy{OEC, IEC, CVC}

// Partitioned is the result of partitioning a graph across hosts.
type Partitioned struct {
	NumHosts int
	NumNodes int // global node count
	Policy   Policy
	Hosts    []*HostPartition
	// Reordering records the vertex permutation the graph was ingested
	// under (DESIGN.md §14), nil when partitioning an original-order
	// graph. All partition-level IDs — boundaries, GlobalIDs, edges — are
	// in the reordered ("current") space; OriginalID/CurrentID translate
	// at the algorithm boundaries.
	Reordering *graph.Reordering
	boundaries []graph.NodeID // len NumHosts+1; owner(v) = range containing v
	// ownerTab[v>>ownerBlockShift] = owner of that block's first node.
	// Owner starts there and walks at most the boundaries that fall inside
	// one block — O(1) for the per-entry lookups on the reduce-sync encode
	// path, where a binary search per key is measurable. Built only when
	// NumHosts fits uint8; Owner falls back to the search otherwise.
	ownerTab []uint8
}

// ownerBlockShift sets the owner-table block size (64 nodes/byte: 2 MB of
// table per 128M nodes, far below the CSR arrays for any such graph).
const ownerBlockShift = 6

// HostPartition is one host's local view: a local CSR over local node IDs,
// with masters occupying local IDs [0, NumMasters) and mirrors following.
// Both groups are sorted by global ID.
type HostPartition struct {
	Host       int
	Local      *graph.Graph
	GlobalIDs  []graph.NodeID // local -> global
	NumMasters int

	// MirrorsByOwner[o] lists (as local IDs) this host's mirror nodes whose
	// master lives on host o, sorted by global ID. Used to receive
	// broadcasts and to address reduce messages.
	MirrorsByOwner [][]graph.NodeID
	// MasterSendTo[o] lists (as local IDs) this host's master nodes that
	// have a mirror on host o, sorted by global ID. Used to send
	// broadcasts. MasterSendTo[self] is empty.
	MasterSendTo [][]graph.NodeID

	// Structural invariants exploited by pinned-mirror optimizations.
	MirrorsHaveNoOutEdges bool
	MirrorsHaveNoInEdges  bool

	mirrorGlobals []graph.NodeID // GlobalIDs[NumMasters:], kept for accounting
	// localTab is the dense global→local translation table: localTab[g] =
	// local+1, 0 for absent. It replaces the old per-lookup binary search
	// over mirrorGlobals with one array index — LocalID sits on the NPM
	// hot paths (async node-slot resolution, payload addressing), where a
	// search per access is measurable. One int32 per global node per host.
	localTab []int32
	part     *Partitioned
}

// PartitionSerial is the retained single-threaded reference for Partition.
// The equivalence tests compare its output — boundaries, GlobalIDs, local
// CSR, MirrorsByOwner, MasterSendTo — bit for bit against the parallel
// pipeline at every worker count.
func PartitionSerial(g *graph.Graph, numHosts int, policy Policy) *Partitioned {
	return partitionSerial(g, numHosts, policy, nil)
}

// PartitionReorderedSerial is PartitionSerial for a reordered graph: g
// must already be the permuted CSR, and ro its permutation. When ro
// carries blocked-degree boundaries for numHosts blocks they are adopted
// verbatim (preserving the original partition assignment); otherwise the
// boundaries are recomputed on the permuted graph.
func PartitionReorderedSerial(g *graph.Graph, numHosts int, policy Policy, ro *graph.Reordering) *Partitioned {
	return partitionSerial(g, numHosts, policy, ro)
}

func partitionSerial(g *graph.Graph, numHosts int, policy Policy, ro *graph.Reordering) *Partitioned {
	if numHosts < 1 {
		panic("partition: numHosts must be >= 1")
	}
	p := &Partitioned{
		NumHosts:   numHosts,
		NumNodes:   g.NumNodes(),
		Policy:     policy,
		Reordering: ro,
		boundaries: partitionBoundaries(g, numHosts, ro),
	}
	p.buildOwnerTab()
	assign := p.edgeAssigner(policy, numHosts)

	// Pass 1: count edges per host and collect the set of non-master
	// endpoints (mirrors) appearing on each host.
	type hostEdges struct {
		edges   []graph.Edge
		mirrors map[graph.NodeID]struct{}
	}
	hosts := make([]hostEdges, numHosts)
	for h := range hosts {
		hosts[h].mirrors = make(map[graph.NodeID]struct{})
	}
	for n := 0; n < g.NumNodes(); n++ {
		src := graph.NodeID(n)
		lo, hi := g.EdgeRange(src)
		for e := lo; e < hi; e++ {
			dst := g.Dst(e)
			h := assign(src, dst)
			hosts[h].edges = append(hosts[h].edges,
				graph.Edge{Src: src, Dst: dst, Weight: g.Weight(e)})
			if p.Owner(src) != h {
				hosts[h].mirrors[src] = struct{}{}
			}
			if p.Owner(dst) != h {
				hosts[h].mirrors[dst] = struct{}{}
			}
		}
	}

	// Pass 2: build each host's local graph and proxy metadata.
	p.Hosts = make([]*HostPartition, numHosts)
	for h := 0; h < numHosts; h++ {
		p.Hosts[h] = buildHostPartition(p, g, h, hosts[h].edges, hosts[h].mirrors)
	}

	// Pass 3: exchange mirror lists (direct computation; in a real cluster
	// this is the partitioning-time metadata exchange).
	for h := 0; h < numHosts; h++ {
		p.Hosts[h].buildMirrorsByOwner()
	}
	for h := 0; h < numHosts; h++ {
		p.Hosts[h].buildMasterSendTo()
	}
	return p
}

// buildMirrorsByOwner buckets this host's mirrors (ascending local, hence
// ascending global, IDs) by the host owning their master.
func (hp *HostPartition) buildMirrorsByOwner() {
	p := hp.part
	hp.MirrorsByOwner = make([][]graph.NodeID, p.NumHosts)
	for _, local := range hp.mirrorLocalIDs() {
		o := p.Owner(hp.GlobalIDs[local])
		hp.MirrorsByOwner[o] = append(hp.MirrorsByOwner[o], local)
	}
}

// buildMasterSendTo derives this host's broadcast lists from every other
// host's MirrorsByOwner; all hosts' buildMirrorsByOwner must have completed
// first.
func (hp *HostPartition) buildMasterSendTo() {
	p := hp.part
	hp.MasterSendTo = make([][]graph.NodeID, p.NumHosts)
	for o := 0; o < p.NumHosts; o++ {
		if o == hp.Host {
			continue
		}
		op := p.Hosts[o]
		for _, mirrorLocal := range op.MirrorsByOwner[hp.Host] {
			global := op.GlobalIDs[mirrorLocal]
			masterLocal, ok := hp.LocalID(global)
			if !ok || !hp.IsMaster(masterLocal) {
				panic("partition: mirror without master proxy")
			}
			hp.MasterSendTo[o] = append(hp.MasterSendTo[o], masterLocal)
		}
	}
}

// Owner returns the host that holds the master proxy of global node v.
func (p *Partitioned) Owner(v graph.NodeID) int {
	// boundaries[h] <= v < boundaries[h+1]  =>  owner is h.
	if p.ownerTab != nil {
		h := int(p.ownerTab[v>>ownerBlockShift])
		for p.boundaries[h+1] <= v {
			h++
		}
		return h
	}
	return sort.Search(len(p.boundaries)-1, func(h int) bool {
		return p.boundaries[h+1] > v
	})
}

func (p *Partitioned) buildOwnerTab() {
	if p.NumHosts > 256 || p.NumNodes == 0 {
		return
	}
	nb := (p.NumNodes + (1 << ownerBlockShift) - 1) >> ownerBlockShift
	tab := make([]uint8, nb)
	h := 0
	for b := range tab {
		v := graph.NodeID(b << ownerBlockShift)
		for p.boundaries[h+1] <= v {
			h++
		}
		tab[b] = uint8(h)
	}
	p.ownerTab = tab
}

// MasterRange returns the global-ID range [lo, hi) of masters on host h.
func (p *Partitioned) MasterRange(h int) (lo, hi graph.NodeID) {
	return p.boundaries[h], p.boundaries[h+1]
}

// degreeBalancedBoundaries delegates to graph.BlockBoundaries — the same
// walk the blocked-degree reorder uses for its blocks, which is what lets
// PartitionReordered adopt a reordering's boundaries verbatim.
func degreeBalancedBoundaries(g *graph.Graph, numHosts int) []graph.NodeID {
	return graph.BlockBoundaries(g, numHosts)
}

// partitionBoundaries picks the master-range boundaries: a blocked-degree
// reordering's block bounds when they match the host count (each block
// maps onto itself under the permutation, so the original assignment is
// preserved exactly), else freshly degree-balanced on g — for the
// whole-graph degree policy the hubs moved, so the balance point did too.
func partitionBoundaries(g *graph.Graph, numHosts int, ro *graph.Reordering) []graph.NodeID {
	if ro != nil && len(ro.Boundaries) == numHosts+1 {
		return ro.Boundaries
	}
	return degreeBalancedBoundaries(g, numHosts)
}

// edgeAssigner returns the function mapping an edge to its host.
func (p *Partitioned) edgeAssigner(policy Policy, numHosts int) func(src, dst graph.NodeID) int {
	switch policy {
	case OEC:
		return func(src, _ graph.NodeID) int { return p.Owner(src) }
	case IEC:
		return func(_, dst graph.NodeID) int { return p.Owner(dst) }
	case CVC:
		_, pc := gridShape(numHosts)
		return func(src, dst graph.NodeID) int {
			r := p.Owner(src) / pc
			c := p.Owner(dst) % pc
			return r*pc + c
		}
	default:
		panic(fmt.Sprintf("partition: unknown policy %q", policy))
	}
}

// gridShape factors numHosts into the most square pr x pc grid, with
// pr the largest factor <= sqrt(numHosts).
func gridShape(numHosts int) (pr, pc int) {
	pr = 1
	for f := 2; f*f <= numHosts; f++ {
		if numHosts%f == 0 {
			pr = f
		}
	}
	return pr, numHosts / pr
}

func buildHostPartition(p *Partitioned, g *graph.Graph, h int,
	edges []graph.Edge, mirrorSet map[graph.NodeID]struct{}) *HostPartition {

	lo, hi := p.MasterRange(h)
	numMasters := int(hi - lo)
	mirrors := make([]graph.NodeID, 0, len(mirrorSet))
	for v := range mirrorSet {
		mirrors = append(mirrors, v)
	}
	sort.Slice(mirrors, func(i, j int) bool { return mirrors[i] < mirrors[j] })

	hp := &HostPartition{
		Host:          h,
		NumMasters:    numMasters,
		GlobalIDs:     make([]graph.NodeID, 0, numMasters+len(mirrors)),
		mirrorGlobals: mirrors,
		part:          p,
	}
	for v := lo; v < hi; v++ {
		hp.GlobalIDs = append(hp.GlobalIDs, v)
	}
	hp.GlobalIDs = append(hp.GlobalIDs, mirrors...)
	hp.buildLocalTab()

	b := graph.NewBuilder(len(hp.GlobalIDs))
	weighted := g.Weighted()
	for _, e := range edges {
		ls, ok1 := hp.LocalID(e.Src)
		ld, ok2 := hp.LocalID(e.Dst)
		if !ok1 || !ok2 {
			panic("partition: edge endpoint has no proxy")
		}
		if weighted {
			b.AddWeightedEdge(ls, ld, e.Weight)
		} else {
			b.AddEdge(ls, ld)
		}
	}
	hp.Local = b.Build()
	hp.detectInvariants()
	return hp
}

// detectInvariants scans the local CSR for the structural invariants
// exploited by pinned-mirror optimizations.
func (hp *HostPartition) detectInvariants() {
	numMasters := hp.NumMasters
	hp.MirrorsHaveNoOutEdges = true
	inDeg := make([]int, hp.Local.NumNodes())
	for n := 0; n < hp.Local.NumNodes(); n++ {
		for _, v := range hp.Local.Neighbors(graph.NodeID(n)) {
			inDeg[v]++
		}
		if n >= numMasters && hp.Local.Degree(graph.NodeID(n)) > 0 {
			hp.MirrorsHaveNoOutEdges = false
		}
	}
	hp.MirrorsHaveNoInEdges = true
	for n := numMasters; n < hp.Local.NumNodes(); n++ {
		if inDeg[n] > 0 {
			hp.MirrorsHaveNoInEdges = false
			break
		}
	}
}

// PullEdgesComplete reports whether broadcast-only pull rounds are legal
// on this partitioning. A pull round updates each master from its local
// in-neighbors and never runs ReduceSync, so it is only correct when
// every in-edge of every master is stored on that master's owner — the
// IEC invariant held globally, not just on this host. (Under OEC a host
// with no mirrors is vacuously MirrorsHaveNoInEdges while its masters'
// in-edges live on other hosts, which is why the local flag alone is not
// sufficient.) The check reads only partition-time structure, so every
// host computes the same answer without a collective.
func (hp *HostPartition) PullEdgesComplete() bool {
	for _, h := range hp.part.Hosts {
		if !h.MirrorsHaveNoInEdges {
			return false
		}
	}
	return true
}

// EnsureLocalInCSR materializes the local CSR's transpose (in-edge) index
// for pull-mode in-neighbor scans. Idempotent; workers 0 = all cores.
// Under a pull-legal partitioning (PullEdgesComplete) a master's local
// in-edge list is its complete global in-edge list.
func (hp *HostPartition) EnsureLocalInCSR(workers int) {
	hp.Local.EnsureInCSR(workers)
}

// InCSRFootprint returns the bytes held by the local transpose CSR, 0
// when pull mode never materialized it. Folded into the NPM memory
// reporter alongside TranslationFootprint.
func (hp *HostPartition) InCSRFootprint() int64 {
	return hp.Local.InCSRFootprint()
}

// buildLocalTab fills the dense global→local table from GlobalIDs. Called
// once at partition time, right after GlobalIDs is assembled (the edge
// translation loops already go through LocalID).
func (hp *HostPartition) buildLocalTab() {
	tab := make([]int32, hp.part.NumNodes)
	for l, g := range hp.GlobalIDs {
		tab[g] = int32(l) + 1
	}
	hp.localTab = tab
}

// LocalID translates a global node ID to this host's local ID: one dense
// table index, O(1) for masters and mirrors alike (the old path binary-
// searched the sorted mirror list on every miss of the master range).
func (hp *HostPartition) LocalID(global graph.NodeID) (graph.NodeID, bool) {
	if int(global) < len(hp.localTab) {
		if s := hp.localTab[global]; s != 0 {
			return graph.NodeID(s - 1), true
		}
	}
	return graph.InvalidNode, false
}

// OriginalID maps a global (reordered-space) node ID back to the original
// ID space. Identity when the graph was not reordered.
func (hp *HostPartition) OriginalID(global graph.NodeID) graph.NodeID {
	return hp.part.Reordering.OriginalID(global)
}

// CurrentID maps an original node ID into the global (reordered) space —
// the translation for property *values* that are used as addresses.
// Identity when the graph was not reordered.
func (hp *HostPartition) CurrentID(orig graph.NodeID) graph.NodeID {
	return hp.part.Reordering.CurrentID(orig)
}

// TranslationFootprint returns the bytes this host holds for ID
// translation: the dense local table plus its share of the partition-wide
// permutation arrays (counted once, on host 0, since Perm/Inv are shared
// across hosts). The NPM memory reporter folds this into the per-host
// footprint so the §14 tables stay visible in the accounting.
func (hp *HostPartition) TranslationFootprint() int64 {
	b := int64(len(hp.localTab)) * 4
	if hp.Host == 0 && hp.part.Reordering != nil {
		ro := hp.part.Reordering
		b += int64(len(ro.Perm))*4 + int64(len(ro.Inv))*4 + int64(len(ro.Boundaries))*4
	}
	return b
}

// GlobalID translates a local node ID back to the global ID.
func (hp *HostPartition) GlobalID(local graph.NodeID) graph.NodeID {
	return hp.GlobalIDs[local]
}

// IsMaster reports whether a local node is this host's master proxy.
func (hp *HostPartition) IsMaster(local graph.NodeID) bool {
	return int(local) < hp.NumMasters
}

// NumLocal returns the number of proxies (masters + mirrors) on this host.
func (hp *HostPartition) NumLocal() int { return len(hp.GlobalIDs) }

// NumMirrors returns the number of mirror proxies on this host.
func (hp *HostPartition) NumMirrors() int { return len(hp.mirrorGlobals) }

// Owner returns the master host of a global node (convenience passthrough).
func (hp *HostPartition) Owner(global graph.NodeID) int { return hp.part.Owner(global) }

// NumGlobalNodes returns the global node count of the partitioned graph.
func (hp *HostPartition) NumGlobalNodes() int { return hp.part.NumNodes }

// NumHosts returns the number of hosts in the partitioning.
func (hp *HostPartition) NumHosts() int { return hp.part.NumHosts }

// MasterRangeGlobal returns the global master range of this host.
func (hp *HostPartition) MasterRangeGlobal() (lo, hi graph.NodeID) {
	return hp.part.MasterRange(hp.Host)
}

// MasterRangeOf returns the global master range of host h. The partition is
// temporally invariant, so senders can compute a receiver's thread-range
// layout from it — the basis for addressing scatter payload sections at the
// receiver's gather threads.
func (hp *HostPartition) MasterRangeOf(h int) (lo, hi graph.NodeID) {
	return hp.part.MasterRange(h)
}

func (hp *HostPartition) mirrorLocalIDs() []graph.NodeID {
	out := make([]graph.NodeID, len(hp.mirrorGlobals))
	for i := range out {
		out[i] = graph.NodeID(hp.NumMasters + i)
	}
	return out
}

// ReplicationFactor returns total proxies divided by global nodes, a
// standard partition-quality metric.
func (p *Partitioned) ReplicationFactor() float64 {
	total := 0
	for _, hp := range p.Hosts {
		total += hp.NumLocal()
	}
	if p.NumNodes == 0 {
		return 0
	}
	return float64(total) / float64(p.NumNodes)
}
