package partition

import (
	"fmt"
	"reflect"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

// The parallel partitioner (parallel.go) promises the same Partitioned —
// boundaries, GlobalIDs, local CSR, MirrorsByOwner, MasterSendTo, structural
// invariant flags — as the serial reference, bit for bit, at every worker
// count. The runtime layers (reduce-sync addressing, pinned mirrors) key off
// these tables, so "roughly equal" is not enough.

func requireSameGraph(t *testing.T, label string, want, got *graph.Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() ||
		want.Weighted() != got.Weighted() {
		t.Fatalf("%s: shape differs: %d/%d nodes, %d/%d edges",
			label, want.NumNodes(), got.NumNodes(), want.NumEdges(), got.NumEdges())
	}
	for n := 0; n < want.NumNodes(); n++ {
		v := graph.NodeID(n)
		if !reflect.DeepEqual(want.Neighbors(v), got.Neighbors(v)) {
			t.Fatalf("%s: node %d neighbors differ:\nwant %v\ngot  %v",
				label, n, want.Neighbors(v), got.Neighbors(v))
		}
		if !reflect.DeepEqual(want.EdgeWeights(v), got.EdgeWeights(v)) {
			t.Fatalf("%s: node %d weights differ", label, n)
		}
	}
}

func requireSamePartitioned(t *testing.T, want, got *Partitioned) {
	t.Helper()
	if !reflect.DeepEqual(want.boundaries, got.boundaries) {
		t.Fatalf("boundaries differ: want %v got %v", want.boundaries, got.boundaries)
	}
	if !reflect.DeepEqual(want.ownerTab, got.ownerTab) {
		t.Fatal("owner tables differ")
	}
	if len(want.Hosts) != len(got.Hosts) {
		t.Fatalf("host counts differ: %d vs %d", len(want.Hosts), len(got.Hosts))
	}
	for h := range want.Hosts {
		w, g := want.Hosts[h], got.Hosts[h]
		label := fmt.Sprintf("host %d", h)
		if w.NumMasters != g.NumMasters {
			t.Fatalf("%s: NumMasters %d vs %d", label, w.NumMasters, g.NumMasters)
		}
		if !reflect.DeepEqual(w.GlobalIDs, g.GlobalIDs) {
			t.Fatalf("%s: GlobalIDs differ:\nwant %v\ngot  %v", label, w.GlobalIDs, g.GlobalIDs)
		}
		if !reflect.DeepEqual(w.mirrorGlobals, g.mirrorGlobals) {
			t.Fatalf("%s: mirror lists differ", label)
		}
		requireSameGraph(t, label+" local CSR", w.Local, g.Local)
		if !mirrorTablesEqual(w.MirrorsByOwner, g.MirrorsByOwner) {
			t.Fatalf("%s: MirrorsByOwner differ:\nwant %v\ngot  %v",
				label, w.MirrorsByOwner, g.MirrorsByOwner)
		}
		if !mirrorTablesEqual(w.MasterSendTo, g.MasterSendTo) {
			t.Fatalf("%s: MasterSendTo differ:\nwant %v\ngot  %v",
				label, w.MasterSendTo, g.MasterSendTo)
		}
		if w.MirrorsHaveNoOutEdges != g.MirrorsHaveNoOutEdges ||
			w.MirrorsHaveNoInEdges != g.MirrorsHaveNoInEdges {
			t.Fatalf("%s: invariant flags differ", label)
		}
	}
}

// mirrorTablesEqual treats a nil bucket and an empty bucket as the same
// list: the serial path appends into nil slices, the parallel path may
// pre-size, and no consumer distinguishes the two.
func mirrorTablesEqual(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestParallelPartitionMatchesSerial(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":  gen.Grid(10, 10, true, 1),
		"rmat":  gen.RMAT(8, 8, true, 2),
		"star":  gen.Star(64),
		"chain": gen.Chain(50, false, 3),
	}
	for name, g := range graphs {
		for _, pol := range Policies {
			for _, hosts := range []int{1, 2, 3, 4, 8} {
				want := PartitionSerial(g, hosts, pol)
				for _, workers := range []int{1, 2, 4, 8} {
					t.Run(fmt.Sprintf("%s/%s/hosts=%d/workers=%d", name, pol, hosts, workers),
						func(t *testing.T) {
							requireSamePartitioned(t, want,
								PartitionWorkers(g, hosts, pol, workers))
						})
				}
			}
		}
	}
}

func TestParallelPartitionEmptyGraph(t *testing.T) {
	var g graph.Graph
	for _, workers := range []int{1, 4} {
		p := PartitionWorkers(&g, 3, OEC, workers)
		if len(p.Hosts) != 3 {
			t.Fatalf("workers=%d: %d hosts", workers, len(p.Hosts))
		}
		for _, hp := range p.Hosts {
			if hp.NumLocal() != 0 || hp.Local.NumEdges() != 0 {
				t.Fatalf("workers=%d: empty graph grew proxies", workers)
			}
		}
	}
}
