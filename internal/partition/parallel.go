package partition

import (
	"sort"

	"kimbap/internal/graph"
	"kimbap/internal/par"
)

// Parallel partitioning pipeline. The three passes of PartitionSerial are
// reshaped for bounded-worker execution without changing the output by a
// bit:
//
//  1. A chunked edge-assignment scan over static ranges of the global edge
//     index space. Each worker keeps a per-host edge counter and a per-host
//     mirror Bitset, so the pass is lock- and map-free; an exclusive scan
//     of the counters sizes every host's edge columns exactly, and the
//     mirror Bitsets are merged with OrInto (a set union — scheduling
//     cannot affect it).
//  2. A re-scan scatters each edge into its host's columns at a cursor
//     reserved by the scan, then one worker per host materializes the
//     mirror list from the merged Bitset (ForEachSet yields ascending
//     global IDs, the order the serial reference gets from sorting map
//     keys), translates the columns to local IDs in place, and builds the
//     local CSR through graph.FromArrays — no []graph.Edge is ever
//     materialized.
//  3. Mirror-list exchange runs one host per worker, with a barrier
//     between the MirrorsByOwner and MasterSendTo halves (the latter reads
//     every other host's former).

// Partition splits g across numHosts hosts using the given policy, using
// all cores. Output is bit-identical to PartitionSerial.
//kimbap:deterministic
func Partition(g *graph.Graph, numHosts int, policy Policy) *Partitioned {
	return partitionWorkers(g, numHosts, policy, 0, nil)
}

// PartitionWorkers is Partition with an explicit worker count (0 = all
// cores). Output is identical at every worker count.
//kimbap:deterministic
func PartitionWorkers(g *graph.Graph, numHosts int, policy Policy, workers int) *Partitioned {
	return partitionWorkers(g, numHosts, policy, workers, nil)
}

// PartitionReordered partitions a reordered graph: g must already be the
// permuted CSR and ro its permutation (see graph.Reorder). The partition
// carries ro so the NPM and algorithm layers can translate between ID
// spaces; blocked-degree boundaries matching the host count are adopted
// verbatim, preserving the original partition assignment.
//kimbap:deterministic
func PartitionReordered(g *graph.Graph, numHosts int, policy Policy, ro *graph.Reordering) *Partitioned {
	return partitionWorkers(g, numHosts, policy, 0, ro)
}

// PartitionReorderedWorkers is PartitionReordered with an explicit worker
// count (0 = all cores). Output is identical at every worker count.
//kimbap:deterministic
func PartitionReorderedWorkers(g *graph.Graph, numHosts int, policy Policy, workers int, ro *graph.Reordering) *Partitioned {
	return partitionWorkers(g, numHosts, policy, workers, ro)
}

func partitionWorkers(g *graph.Graph, numHosts int, policy Policy, workers int, ro *graph.Reordering) *Partitioned {
	if numHosts < 1 {
		panic("partition: numHosts must be >= 1")
	}
	numNodes := g.NumNodes()
	numEdges := int(g.NumEdges())
	workers = par.Resolve(workers)
	if workers > numEdges && numEdges > 0 {
		workers = numEdges
	}
	p := &Partitioned{
		NumHosts:   numHosts,
		NumNodes:   numNodes,
		Policy:     policy,
		Reordering: ro,
		boundaries: partitionBoundaries(g, numHosts, ro),
	}
	p.buildOwnerTab()
	assign := p.edgeAssigner(policy, numHosts)

	// Pass 1: per-worker per-host edge counts and mirror bitsets over
	// static edge ranges.
	counts := make([]int64, workers*numHosts)
	mirSets := make([]*par.Bitset, workers*numHosts)
	for i := range mirSets {
		mirSets[i] = par.NewBitset(numNodes)
	}
	par.Do(workers, func(w int) {
		cnt := counts[w*numHosts : (w+1)*numHosts]
		sets := mirSets[w*numHosts : (w+1)*numHosts]
		elo, ehi := par.Range(w, workers, numEdges)
		forEachEdgeIn(g, elo, ehi)(func(src, dst graph.NodeID, _ int64) {
			h := assign(src, dst)
			cnt[h]++
			if p.Owner(src) != h {
				sets[h].Set(int(src))
			}
			if p.Owner(dst) != h {
				sets[h].Set(int(dst))
			}
		})
	})

	// Merge: per host, union the workers' mirror sets (into worker 0's) and
	// turn the counts column into scatter cursors via an exclusive scan.
	mirrors := make([]*par.Bitset, numHosts)
	totals := make([]int64, numHosts)
	par.Dynamic(workers, numHosts, 1, func(lo, hi int) {
		for h := lo; h < hi; h++ {
			mb := mirSets[h]
			for w := 1; w < workers; w++ {
				mirSets[w*numHosts+h].OrInto(mb)
			}
			mirrors[h] = mb
			var pos int64
			for w := 0; w < workers; w++ {
				c := counts[w*numHosts+h]
				counts[w*numHosts+h] = pos
				pos += c
			}
			totals[h] = pos
		}
	})

	// Pass 2a: allocate exact-size per-host edge columns (global IDs for
	// now) and scatter with a conflict-free re-scan — worker w owns cursor
	// cell (w, h) and every write lands in a slot reserved by the scan.
	weighted := g.Weighted()
	srcCols := make([][]graph.NodeID, numHosts)
	dstCols := make([][]graph.NodeID, numHosts)
	var wCols [][]float64
	if weighted {
		wCols = make([][]float64, numHosts)
	}
	par.Dynamic(workers, numHosts, 1, func(lo, hi int) {
		for h := lo; h < hi; h++ {
			srcCols[h] = make([]graph.NodeID, totals[h])
			dstCols[h] = make([]graph.NodeID, totals[h])
			if weighted {
				wCols[h] = make([]float64, totals[h])
			}
		}
	})
	//kimbap:conflictfree
	par.Do(workers, func(w int) {
		cursor := counts[w*numHosts : (w+1)*numHosts]
		elo, ehi := par.Range(w, workers, numEdges)
		forEachEdgeIn(g, elo, ehi)(func(src, dst graph.NodeID, e int64) {
			h := assign(src, dst)
			at := cursor[h]
			cursor[h] = at + 1
			srcCols[h][at] = src
			dstCols[h][at] = dst
			if weighted {
				wCols[h][at] = g.Weight(e)
			}
		})
	})

	// Pass 2b: build each host's local view, one host per worker.
	p.Hosts = make([]*HostPartition, numHosts)
	par.Dynamic(workers, numHosts, 1, func(lo, hi int) {
		for h := lo; h < hi; h++ {
			var ws []float64
			if weighted {
				ws = wCols[h]
			}
			p.Hosts[h] = buildHostFromColumns(p, h, srcCols[h], dstCols[h], ws, mirrors[h])
		}
	})

	// Pass 3: mirror-list exchange, one host per worker per half.
	par.Dynamic(workers, numHosts, 1, func(lo, hi int) {
		for h := lo; h < hi; h++ {
			p.Hosts[h].buildMirrorsByOwner()
		}
	})
	par.Dynamic(workers, numHosts, 1, func(lo, hi int) {
		for h := lo; h < hi; h++ {
			p.Hosts[h].buildMasterSendTo()
		}
	})
	return p
}

// forEachEdgeIn iterates the CSR edges with global indices in [elo, ehi),
// resolving each edge's source node once per node rather than once per
// edge: the chunked scan's replacement for the serial per-node loop. The
// starting node is found by binary search over the offset array.
func forEachEdgeIn(g *graph.Graph, elo, ehi int) func(fn func(src, dst graph.NodeID, e int64)) {
	return func(fn func(src, dst graph.NodeID, e int64)) {
		if elo >= ehi {
			return
		}
		n := g.NumNodes()
		src := sort.Search(n, func(v int) bool {
			_, hi := g.EdgeRange(graph.NodeID(v))
			return hi > int64(elo)
		})
		for ; src < n; src++ {
			nlo, nhi := g.EdgeRange(graph.NodeID(src))
			lo, hi := max(nlo, int64(elo)), min(nhi, int64(ehi))
			for e := lo; e < hi; e++ {
				fn(graph.NodeID(src), g.Dst(e), e)
			}
			if nhi >= int64(ehi) {
				return
			}
		}
	}
}

// buildHostFromColumns is pass 2b for one host: mirror list out of the
// merged bitset, global->local translation of the edge columns in place,
// local CSR via the parallel builder (which degrades to inline serial here,
// since the per-host loop already holds the worker pool).
func buildHostFromColumns(p *Partitioned, h int,
	srcs, dsts []graph.NodeID, weights []float64, mirrorSet *par.Bitset) *HostPartition {

	lo, hi := p.MasterRange(h)
	numMasters := int(hi - lo)
	mirList := make([]graph.NodeID, 0, mirrorSet.Count())
	mirrorSet.ForEachSet(func(i int) {
		mirList = append(mirList, graph.NodeID(i))
	})

	hp := &HostPartition{
		Host:          h,
		NumMasters:    numMasters,
		GlobalIDs:     make([]graph.NodeID, 0, numMasters+len(mirList)),
		mirrorGlobals: mirList,
		part:          p,
	}
	for v := lo; v < hi; v++ {
		hp.GlobalIDs = append(hp.GlobalIDs, v)
	}
	hp.GlobalIDs = append(hp.GlobalIDs, mirList...)
	hp.buildLocalTab()

	for i := range srcs {
		ls, ok1 := hp.LocalID(srcs[i])
		ld, ok2 := hp.LocalID(dsts[i])
		if !ok1 || !ok2 {
			panic("partition: edge endpoint has no proxy")
		}
		srcs[i], dsts[i] = ls, ld
	}
	hp.Local = graph.FromArrays(len(hp.GlobalIDs), srcs, dsts, weights, 0)
	hp.detectInvariants()
	return hp
}
