package partition

import (
	"testing"

	"kimbap/internal/graph"
)

// Blocked-degree reordering must preserve the partition assignment
// exactly: the reorder's block boundaries come from the same
// degree-balanced walk the partitioner uses, every node stays inside its
// block, and PartitionReordered adopts the recorded boundaries — so each
// host's master set, expressed in original IDs, is identical to
// partitioning the unreordered graph.
func TestBlockedDegreeReorderPreservesMasters(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, hosts := range []int{2, 4, 8} {
			for _, pol := range Policies {
				base := Partition(g, hosts, pol)
				rg, ro, err := graph.Reorder(g, graph.ReorderOptions{
					Policy: graph.ReorderBlockedDegree, Blocks: hosts,
				})
				if err != nil {
					t.Fatal(err)
				}
				p := PartitionReordered(rg, hosts, pol, ro)
				checkInvariants(t, rg, p)
				if p.Reordering != ro {
					t.Fatalf("%s/%dh/%s: partition did not carry the reordering", gname, hosts, pol)
				}
				for h := 0; h < hosts; h++ {
					blo, bhi := base.MasterRange(h)
					want := map[graph.NodeID]bool{}
					for v := blo; v < bhi; v++ {
						want[v] = true
					}
					rlo, rhi := p.MasterRange(h)
					if int(rhi-rlo) != len(want) {
						t.Fatalf("%s/%dh/%s: host %d has %d masters, want %d",
							gname, hosts, pol, h, rhi-rlo, len(want))
					}
					for v := rlo; v < rhi; v++ {
						if !want[ro.OriginalID(v)] {
							t.Fatalf("%s/%dh/%s: host %d gained master %d (orig %d)",
								gname, hosts, pol, h, v, ro.OriginalID(v))
						}
					}
				}
			}
		}
	}
}

// The dense translation table must answer exactly like the membership it
// was built from, including out-of-range probes, and the ID translation
// helpers must be identities without a reordering.
func TestLocalIDTableAndTranslation(t *testing.T) {
	g := testGraphs(t)["rmat"]
	rg, ro, err := graph.Reorder(g, graph.ReorderOptions{Policy: graph.ReorderDegree})
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionReordered(rg, 4, CVC, ro)
	for _, hp := range p.Hosts {
		seen := map[graph.NodeID]graph.NodeID{}
		for l, gid := range hp.GlobalIDs {
			seen[gid] = graph.NodeID(l)
		}
		for v := 0; v < rg.NumNodes(); v++ {
			l, ok := hp.LocalID(graph.NodeID(v))
			wantL, wantOK := seen[graph.NodeID(v)]
			if ok != wantOK || (ok && l != wantL) {
				t.Fatalf("host %d: LocalID(%d) = (%d,%v), want (%d,%v)",
					hp.Host, v, l, ok, wantL, wantOK)
			}
			if hp.CurrentID(hp.OriginalID(graph.NodeID(v))) != graph.NodeID(v) {
				t.Fatalf("host %d: translation round-trip failed at %d", hp.Host, v)
			}
		}
		if _, ok := hp.LocalID(graph.NodeID(rg.NumNodes() + 3)); ok {
			t.Fatalf("host %d: out-of-range global reported local", hp.Host)
		}
		if hp.TranslationFootprint() <= 0 {
			t.Fatalf("host %d: translation footprint not accounted", hp.Host)
		}
	}
	// Without a reordering the helpers are identities.
	plain := Partition(g, 2, CVC)
	hp := plain.Hosts[0]
	if hp.OriginalID(5) != 5 || hp.CurrentID(9) != 9 {
		t.Fatal("identity translation broken on unreordered partition")
	}
}
