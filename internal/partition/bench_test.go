package partition

import (
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

func BenchmarkPartitionOEC(b *testing.B) { benchPolicy(b, OEC) }
func BenchmarkPartitionIEC(b *testing.B) { benchPolicy(b, IEC) }
func BenchmarkPartitionCVC(b *testing.B) { benchPolicy(b, CVC) }

func benchPolicy(b *testing.B, pol Policy) {
	g := gen.RMAT(12, 8, false, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Partition(g, 8, pol)
	}
}

func BenchmarkOwnerLookup(b *testing.B) {
	g := gen.RMAT(12, 8, false, 1)
	p := Partition(g, 16, OEC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Owner(graph.NodeID(i % g.NumNodes()))
	}
}

func BenchmarkLocalIDLookup(b *testing.B) {
	g := gen.RMAT(12, 8, false, 1)
	p := Partition(g, 8, CVC)
	hp := p.Hosts[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hp.LocalID(graph.NodeID(i % g.NumNodes()))
	}
}
