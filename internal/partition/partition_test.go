package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"grid": gen.Grid(10, 10, true, 1),
		"rmat": gen.RMAT(8, 8, true, 2),
		"star": gen.Star(64),
	}
}

// checkInvariants verifies the core structural guarantees every policy must
// provide: each edge assigned exactly once (with its weight), every node
// has exactly one master, and proxy metadata is mutually consistent.
func checkInvariants(t *testing.T, g *graph.Graph, p *Partitioned) {
	t.Helper()

	// Every global node has exactly one master across hosts.
	masterCount := make([]int, g.NumNodes())
	for _, hp := range p.Hosts {
		lo, hi := hp.MasterRangeGlobal()
		for v := lo; v < hi; v++ {
			masterCount[v]++
		}
		if int(hi-lo) != hp.NumMasters {
			t.Fatalf("host %d: master range %d..%d but NumMasters=%d",
				hp.Host, lo, hi, hp.NumMasters)
		}
	}
	for v, c := range masterCount {
		if c != 1 {
			t.Fatalf("node %d has %d masters", v, c)
		}
	}

	// Total local edges equals global edges; each global edge appears once.
	edgeCount := make(map[[2]graph.NodeID]int)
	var localTotal int64
	for _, hp := range p.Hosts {
		localTotal += hp.Local.NumEdges()
		for n := 0; n < hp.Local.NumNodes(); n++ {
			src := hp.GlobalID(graph.NodeID(n))
			lo, hi := hp.Local.EdgeRange(graph.NodeID(n))
			for e := lo; e < hi; e++ {
				dst := hp.GlobalID(hp.Local.Dst(e))
				edgeCount[[2]graph.NodeID{src, dst}]++
				if g.Weighted() && hp.Local.Weight(e) <= 0 {
					t.Fatalf("edge %d->%d lost weight", src, dst)
				}
			}
		}
	}
	if localTotal != g.NumEdges() {
		t.Fatalf("local edges total %d != global %d", localTotal, g.NumEdges())
	}
	for n := 0; n < g.NumNodes(); n++ {
		for _, v := range g.Neighbors(graph.NodeID(n)) {
			if edgeCount[[2]graph.NodeID{graph.NodeID(n), v}] < 1 {
				t.Fatalf("edge %d->%d missing from all partitions", n, v)
			}
		}
	}

	// LocalID/GlobalID are inverse; masters precede mirrors; owner agrees.
	for _, hp := range p.Hosts {
		for l := 0; l < hp.NumLocal(); l++ {
			gid := hp.GlobalID(graph.NodeID(l))
			back, ok := hp.LocalID(gid)
			if !ok || back != graph.NodeID(l) {
				t.Fatalf("host %d: LocalID(GlobalID(%d)) = %d,%v", hp.Host, l, back, ok)
			}
			if hp.IsMaster(graph.NodeID(l)) != (p.Owner(gid) == hp.Host) {
				t.Fatalf("host %d node %d: master flag disagrees with owner", hp.Host, l)
			}
		}
		if _, ok := hp.LocalID(graph.NodeID(g.NumNodes() + 5)); ok {
			t.Fatal("LocalID accepted unknown global node")
		}
	}

	// Mirror exchange lists are symmetric: host h's MirrorsByOwner[o]
	// matches host o's MasterSendTo[h] node for node.
	for h, hp := range p.Hosts {
		for o, mirrors := range hp.MirrorsByOwner {
			sends := p.Hosts[o].MasterSendTo[h]
			if len(mirrors) != len(sends) {
				t.Fatalf("hosts %d/%d: mirror list %d != send list %d",
					h, o, len(mirrors), len(sends))
			}
			for i := range mirrors {
				if hp.GlobalID(mirrors[i]) != p.Hosts[o].GlobalID(sends[i]) {
					t.Fatalf("hosts %d/%d: exchange lists disagree at %d", h, o, i)
				}
			}
		}
	}
}

func TestAllPoliciesAllGraphs(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, pol := range Policies {
			for _, hosts := range []int{1, 2, 3, 4, 8} {
				p := Partition(g, hosts, pol)
				t.Run(name+"/"+string(pol), func(t *testing.T) {
					checkInvariants(t, g, p)
				})
			}
		}
	}
}

func TestOECStructuralInvariant(t *testing.T) {
	g := gen.RMAT(8, 8, false, 3)
	p := Partition(g, 4, OEC)
	for _, hp := range p.Hosts {
		if !hp.MirrorsHaveNoOutEdges {
			t.Errorf("host %d: OEC mirrors should have no out edges", hp.Host)
		}
	}
}

func TestIECStructuralInvariant(t *testing.T) {
	g := gen.RMAT(8, 8, false, 3)
	p := Partition(g, 4, IEC)
	for _, hp := range p.Hosts {
		if !hp.MirrorsHaveNoInEdges {
			t.Errorf("host %d: IEC mirrors should have no in edges", hp.Host)
		}
	}
}

func TestSingleHostNoMirrors(t *testing.T) {
	g := gen.Grid(5, 5, false, 1)
	for _, pol := range Policies {
		p := Partition(g, 1, pol)
		if p.Hosts[0].NumMirrors() != 0 {
			t.Errorf("policy %s: 1 host has %d mirrors", pol, p.Hosts[0].NumMirrors())
		}
		if p.Hosts[0].NumMasters != g.NumNodes() {
			t.Errorf("policy %s: 1 host has %d masters", pol, p.Hosts[0].NumMasters)
		}
		if rf := p.ReplicationFactor(); rf != 1.0 {
			t.Errorf("policy %s: replication factor %v on 1 host", pol, rf)
		}
	}
}

func TestOwnerIsTotal(t *testing.T) {
	g := gen.RMAT(9, 4, false, 7)
	p := Partition(g, 5, OEC)
	counts := make([]int, 5)
	for v := 0; v < g.NumNodes(); v++ {
		o := p.Owner(graph.NodeID(v))
		if o < 0 || o >= 5 {
			t.Fatalf("Owner(%d) = %d out of range", v, o)
		}
		counts[o]++
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != g.NumNodes() {
		t.Fatalf("owners cover %d nodes, want %d", sum, g.NumNodes())
	}
}

func TestDegreeBalancedBoundaries(t *testing.T) {
	// A star graph: node 0 has huge degree; the first host should get few
	// nodes and later hosts most of them.
	g := gen.Star(1000)
	p := Partition(g, 4, OEC)
	lo0, hi0 := p.MasterRange(0)
	if hi0-lo0 > 600 {
		t.Errorf("host 0 got %d nodes of a star; balancing failed", hi0-lo0)
	}
}

func TestGridShape(t *testing.T) {
	cases := []struct{ n, pr, pc int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4}, {9, 3, 3},
		{12, 3, 4}, {16, 4, 4}, {7, 1, 7},
	}
	for _, c := range cases {
		pr, pc := gridShape(c.n)
		if pr != c.pr || pc != c.pc {
			t.Errorf("gridShape(%d) = %d,%d want %d,%d", c.n, pr, pc, c.pr, c.pc)
		}
	}
}

func TestCVCReplicationBounded(t *testing.T) {
	// CVC on a 2x2 grid: each node can appear on at most pr+pc-1 hosts as
	// an edge endpoint, so replication factor <= 3 for 4 hosts... plus
	// master-only proxies. Just check it is sane.
	g := gen.RMAT(9, 8, false, 5)
	p := Partition(g, 4, CVC)
	if rf := p.ReplicationFactor(); rf > 4 {
		t.Errorf("CVC replication factor %v > hosts", rf)
	}
}

func TestPartitionPanicsOnZeroHosts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 hosts")
		}
	}()
	Partition(gen.Star(4), 0, OEC)
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown policy")
		}
	}()
	Partition(gen.Star(4), 2, Policy("bogus"))
}

// Property: for random graphs and host counts, all invariants hold.
func TestQuickPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(60) + 2
		b := graph.NewBuilder(n)
		for i := 0; i < r.Intn(300); i++ {
			b.AddEdge(graph.NodeID(r.Intn(n)), graph.NodeID(r.Intn(n)))
		}
		g := b.Build()
		hosts := r.Intn(6) + 1
		pol := Policies[r.Intn(len(Policies))]
		p := Partition(g, hosts, pol)

		var local int64
		for _, hp := range p.Hosts {
			local += hp.Local.NumEdges()
			for l := 0; l < hp.NumLocal(); l++ {
				back, ok := hp.LocalID(hp.GlobalID(graph.NodeID(l)))
				if !ok || back != graph.NodeID(l) {
					return false
				}
			}
		}
		return local == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
