package runtime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kimbap/internal/gen"
)

// Property: distributed reducers agree with a sequential fold over the
// per-host contributions, for any host count and contribution values.
func TestQuickReducersMatchSequentialFold(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hosts := r.Intn(5) + 1
		contrib := make([]int64, hosts)
		var want int64
		for i := range contrib {
			contrib[i] = int64(r.Intn(2000) - 1000)
			want += contrib[i]
		}
		g := gen.Grid(4, 4, false, 1)
		c, err := NewCluster(g, Config{NumHosts: hosts})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ok := true
		c.Run(func(h *Host) {
			var cr CountReducer
			cr.Reduce(contrib[h.Rank])
			cr.Sync(h.EP)
			if cr.Read() != want {
				ok = false
			}
			var sr SumReducer
			sr.Reduce(float64(contrib[h.Rank]))
			sr.Sync(h.EP)
			if int64(sr.Read()) != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolReducerResync(t *testing.T) {
	// A reducer must be reusable across rounds: Set(false) clears both
	// local and global state.
	g := gen.Grid(3, 3, false, 1)
	c, err := NewCluster(g, Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *Host) {
		var br BoolReducer
		br.Set(false)
		br.Reduce(h.Rank == 0)
		br.Sync(h.EP)
		if !br.Read() {
			t.Errorf("host %d: round 1 lost the true", h.Rank)
		}
		br.Set(false)
		br.Sync(h.EP)
		if br.Read() {
			t.Errorf("host %d: round 2 kept stale true", h.Rank)
		}
	})
}
