package runtime

import (
	"sync/atomic"
	"testing"
)

func TestParForReusedAcrossRounds(t *testing.T) {
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	const n = 500
	var hits [n]atomic.Int32
	for round := 0; round < 50; round++ {
		h.ParFor(n, func(tid, i int) { hits[i].Add(1) })
	}
	for i := range hits {
		if hits[i].Load() != 50 {
			t.Fatalf("index %d visited %d times over 50 rounds", i, hits[i].Load())
		}
	}
}

func TestParForNestedRunsSerially(t *testing.T) {
	// A ParFor inside a ParFor body cannot re-enter the busy pool; the
	// inner loop must fall back to serial execution and still cover all
	// indices.
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	var outer, inner atomic.Int32
	h.ParFor(8, func(tid, i int) {
		outer.Add(1)
		h.ParFor(16, func(_, j int) { inner.Add(1) })
	})
	if outer.Load() != 8 || inner.Load() != 8*16 {
		t.Fatalf("nested ParFor covered %d outer / %d inner, want 8 / 128", outer.Load(), inner.Load())
	}
}

func TestParForPanicPropagatesAndPoolSurvives(t *testing.T) {
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected worker panic to propagate to the caller")
			}
		}()
		h.ParFor(1000, func(tid, i int) {
			if i == 137 {
				panic("kaboom")
			}
		})
	}()
	// The pool must be reusable after a panicking round.
	var hits atomic.Int32
	h.ParFor(100, func(tid, i int) { hits.Add(1) })
	if hits.Load() != 100 {
		t.Fatalf("pool broken after panic: covered %d of 100", hits.Load())
	}
}

func TestParForSteadyStateAllocs(t *testing.T) {
	// The persistent pool replaces per-call goroutines, the feeder, and
	// the work channel; a warm ParFor may allocate at most the closure.
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budget only holds unraced")
	}
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	var sink atomic.Int64
	fn := func(tid, i int) { sink.Add(1) }
	h.ParFor(4096, fn) // warm up
	if got := testing.AllocsPerRun(20, func() { h.ParFor(4096, fn) }); got > 2 {
		t.Errorf("warm ParFor allocates %.1f objects per call, want <= 2", got)
	}
}

func TestParForConcurrentCallsComplete(t *testing.T) {
	// Concurrent ParFors on one host (only one can hold the pool) must
	// all complete correctly, the losers serially.
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	const goroutines, n = 4, 2000
	var total atomic.Int64
	done := make(chan struct{}, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			h.ParFor(n, func(tid, i int) { total.Add(1) })
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if total.Load() != goroutines*n {
		t.Fatalf("concurrent ParFors covered %d of %d", total.Load(), goroutines*n)
	}
}
