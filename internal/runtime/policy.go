package runtime

// The adaptive policy engine: per round, each host chooses between the BSP
// compute path and an asynchronous drain, and retunes the frontier's
// dense/sparse representation threshold, from telemetry the runtime
// already produces (active fraction, re-activation rate, CAS-retry
// counts). Decisions are host-local and safe to diverge across hosts:
// algorithms issue the same collective sequence per round in either mode,
// so one host draining asynchronously while another runs BSP still meets
// at the same reduce-sync.

// ExecMode selects how one round's compute phase executes.
type ExecMode uint8

const (
	// ModeBSP is the classic path: iterate the frontier, buffer reduces
	// thread-locally, apply at the next reduce-sync.
	ModeBSP ExecMode = iota
	// ModeAsync drains the frontier with the priority scheduler: CAS
	// in-place applies and immediate re-enqueue of activated vertices.
	ModeAsync
)

func (m ExecMode) String() string {
	if m == ModeAsync {
		return "async"
	}
	return "bsp"
}

// Direction selects how a dense-capable round traverses edges.
type Direction uint8

const (
	// DirPush scatters along out-edges: active sources Reduce into
	// arbitrary targets, buffered thread-locally and applied at the next
	// ReduceSync.
	DirPush Direction = iota
	// DirPull iterates masters and scans in-neighbors serially per vertex,
	// combining into the vertex's own master slot with plain stores — no
	// atomics, no thread-local maps, and no ReduceSync for the round.
	DirPull
)

func (d Direction) String() string {
	if d == DirPull {
		return "pull"
	}
	return "push"
}

// RoundTelemetry is one completed round's signal, fed to Adaptive.Observe.
type RoundTelemetry struct {
	Active       int // frontier count entering the round
	FrontierSize int // vertex-space size of the frontier
	Mode         ExecMode
	Drain        DrainStats // zero-valued when the round ran BSP
	CASApplied   int64      // in-place applies during the round's drains
	CASRetries   int64      // CAS retry loops (contention signal)
}

const (
	// asyncScoreFloor is the score (local share + re-activation EMA) above
	// which a round runs async: high local share means cascades stay on
	// this host, high re-activation means cascades actually happen.
	asyncScoreFloor = 0.75
	// casRetryCeiling is the retries-per-apply EMA above which contention
	// makes buffered BSP reduces cheaper than CAS loops.
	casRetryCeiling = 0.5
	// policyEMAWeight is the weight of the newest observation.
	policyEMAWeight = 0.5
	// divisorFlapThreshold doubles the dense divisor after this many
	// net dense<->sparse representation flips.
	divisorFlapThreshold = 3
	maxDenseDivisor      = 64

	// dirEdgeDivisor switches a round to pull when the frontier's active
	// in-edge workload reaches 1/dirEdgeDivisor of all edges — the
	// Beamer-style bottom-up trigger: at that density the push side would
	// touch a comparable edge volume through contended hub reduces, while
	// pull scans it with plain stores and skips the reduce collective.
	dirEdgeDivisor = 20
	// dirDenseDivisor keeps an already-pull phase in pull while the active
	// master fraction stays above 1/dirDenseDivisor (hysteresis: the edge
	// trigger decays faster than the win does on a shrinking but still
	// broad frontier).
	dirDenseDivisor = 20
)

// Adaptive is a per-host, per-phase policy controller. Create one at phase
// start (NewAdaptive), ask NextMode before each round, and feed the
// round's telemetry to Observe after it.
type Adaptive struct {
	h          *Host
	localShare float64 // masters / local proxies: the fraction of targets CAS can reach
	reactEMA   float64 // re-enqueues per seeded vertex, observed
	retryEMA   float64 // CAS retries per apply, observed
	observed   bool    // at least one async round measured
	divisor    int     // current dense/sparse divisor this controller set
	prevDense  bool
	prevValid  bool
	flips      int
	dir        Direction // last direction NextDirection returned
}

// NewAdaptive creates a controller for one algorithm phase on h.
func NewAdaptive(h *Host) *Adaptive {
	nl := h.HP.NumLocal()
	if nl < 1 {
		nl = 1
	}
	div, _ := h.FrontierThresholds()
	return &Adaptive{
		h:          h,
		localShare: float64(h.HP.NumMasters) / float64(nl),
		divisor:    div,
	}
}

// NextMode decides the coming round's execution mode given the frontier
// count entering it.
func (a *Adaptive) NextMode(active int) ExecMode {
	if active == 0 {
		return ModeBSP
	}
	if a.observed && a.retryEMA > casRetryCeiling {
		return ModeBSP
	}
	if !a.observed {
		// No async round measured yet: probe once when enough targets are
		// local for cascades to plausibly pay off (always on one host).
		if a.localShare >= 0.5 {
			return ModeAsync
		}
		return ModeBSP
	}
	if a.localShare+a.reactEMA >= asyncScoreFloor {
		return ModeAsync
	}
	return ModeBSP
}

// Observe feeds one completed round's telemetry: updates the mode-choice
// EMAs and retunes the host's dense/sparse threshold when the
// representation is flapping at the boundary.
func (a *Adaptive) Observe(t RoundTelemetry) {
	if t.Mode == ModeAsync && t.Drain.Seeded > 0 {
		react := float64(t.Drain.Reenqueued) / float64(t.Drain.Seeded)
		if react > 1 {
			react = 1
		}
		a.reactEMA = a.reactEMA*(1-policyEMAWeight) + react*policyEMAWeight
		if t.CASApplied > 0 {
			retry := float64(t.CASRetries) / float64(t.CASApplied)
			a.retryEMA = a.retryEMA*(1-policyEMAWeight) + retry*policyEMAWeight
		}
		a.observed = true
	}
	if t.FrontierSize > 0 && t.Active > 0 {
		dense := t.Active*a.divisor >= t.FrontierSize
		if a.prevValid {
			if dense != a.prevDense {
				a.flips++
			} else if a.flips > 0 {
				a.flips--
			}
		}
		a.prevDense, a.prevValid = dense, true
		if a.flips >= divisorFlapThreshold && a.divisor < maxDenseDivisor {
			// A frontier hovering at the switch point pays compaction one
			// round and scan the next; lowering the boundary (bigger
			// divisor) parks it solidly in the dense regime.
			a.divisor *= 2
			a.h.SetFrontierThresholds(a.divisor, 0)
			a.flips = 0
			a.prevValid = false
		}
	}
}

// Divisor returns the dense/sparse divisor the controller currently has
// in effect (telemetry/testing).
func (a *Adaptive) Divisor() int { return a.divisor }

// NextDirection decides the coming dense-capable round's traversal
// direction from globally-reduced telemetry: the number of active
// masters, the total master count, the summed in-degree of the active
// masters, and the total edge count.
//
// Unlike NextMode, direction is NOT a host-local choice: a pull round
// issues a different collective sequence (no ReduceSync), so every host
// must decide identically. Callers allreduce the telemetry first (the
// algorithm engines use CountReducer.Sync); the rule itself is a pure
// deterministic function of those global inputs plus the controller's
// own previous decisions, which are in lockstep across hosts for the
// same reason.
func (a *Adaptive) NextDirection(activeMasters, totalMasters, activeInEdges, totalEdges int64) Direction {
	if activeMasters == 0 || totalMasters == 0 || totalEdges == 0 {
		a.dir = DirPush
		return a.dir
	}
	heavy := activeInEdges*dirEdgeDivisor >= totalEdges
	dense := activeMasters*dirDenseDivisor >= totalMasters
	if heavy || (a.dir == DirPull && dense) {
		a.dir = DirPull
	} else {
		a.dir = DirPush
	}
	return a.dir
}
