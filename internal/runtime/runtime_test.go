package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
)

func newTestCluster(t *testing.T, hosts int) *Cluster {
	t.Helper()
	g := gen.Grid(8, 8, false, 1)
	c, err := NewCluster(g, Config{NumHosts: hosts, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.NumHosts != 1 || cfg.ThreadsPerHost != 4 || cfg.Policy != partition.OEC {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}

func TestRunSPMD(t *testing.T) {
	c := newTestCluster(t, 4)
	var visited [4]atomic.Bool
	c.Run(func(h *Host) {
		visited[h.Rank].Store(true)
		h.Barrier()
	})
	for i := range visited {
		if !visited[i].Load() {
			t.Errorf("host %d did not run", i)
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	g := gen.Grid(4, 4, false, 1)
	c, err := NewCluster(g, Config{NumHosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	c.Run(func(h *Host) {
		if h.Rank == 1 {
			panic("boom")
		}
	})
}

func TestParForCoversAll(t *testing.T) {
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	const n = 10000
	var hits [n]atomic.Int32
	h.ParFor(n, func(tid, i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
}

func TestParForRunsConcurrently(t *testing.T) {
	// Two iterations rendezvous: this only completes if ParFor actually
	// runs them on different workers at the same time.
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	arrived := make(chan int, 2)
	proceed := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ParFor(16, func(tid, i int) {
			if i < 2 {
				arrived <- i
				<-proceed
			}
		})
	}()
	for want := 0; want < 2; want++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatal("ParFor did not run two iterations concurrently")
		}
	}
	close(proceed)
	<-done
}

func TestParForZeroAndSmall(t *testing.T) {
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	h.ParFor(0, func(tid, i int) { t.Error("called for n=0") })
	var ran atomic.Int32
	h.ParFor(1, func(tid, i int) { ran.Add(1) })
	if ran.Load() != 1 {
		t.Fatalf("n=1 ran %d times", ran.Load())
	}
}

func TestParForNodesAndMasters(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Run(func(h *Host) {
		var all, masters atomic.Int32
		h.ParForNodes(func(tid int, n graph.NodeID) { all.Add(1) })
		h.ParForMasters(func(tid int, n graph.NodeID) {
			masters.Add(1)
			if !h.HP.IsMaster(n) {
				t.Errorf("host %d: ParForMasters visited mirror %d", h.Rank, n)
			}
		})
		if int(all.Load()) != h.HP.NumLocal() {
			t.Errorf("host %d: ParForNodes visited %d of %d", h.Rank, all.Load(), h.HP.NumLocal())
		}
		if int(masters.Load()) != h.HP.NumMasters {
			t.Errorf("host %d: ParForMasters visited %d of %d", h.Rank, masters.Load(), h.HP.NumMasters)
		}
	})
}

func TestDistributedReducers(t *testing.T) {
	c := newTestCluster(t, 3)
	c.Run(func(h *Host) {
		var br BoolReducer
		br.Set(false)
		if h.Rank == 2 {
			br.Reduce(true)
		}
		br.Sync(h.EP)
		if !br.Read() {
			t.Errorf("host %d: bool reducer lost true", h.Rank)
		}

		var sr SumReducer
		sr.Set(0)
		sr.Reduce(float64(h.Rank + 1))
		sr.Sync(h.EP)
		if sr.Read() != 6 {
			t.Errorf("host %d: sum = %v, want 6", h.Rank, sr.Read())
		}

		var cr CountReducer
		cr.Set(0)
		cr.Reduce(int64(h.Rank))
		cr.Sync(h.EP)
		if cr.Read() != 3 {
			t.Errorf("host %d: count = %v, want 3", h.Rank, cr.Read())
		}
	})
}

func TestSumReducerConcurrent(t *testing.T) {
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	var sr SumReducer
	h.ParFor(1000, func(tid, i int) { sr.Reduce(1) })
	sr.Sync(h.EP)
	if sr.Read() != 1000 {
		t.Fatalf("concurrent sum = %v, want 1000", sr.Read())
	}
}

func TestTimers(t *testing.T) {
	c := newTestCluster(t, 1)
	h := c.Hosts()[0]
	h.TimeCompute(func() { busyWork(1000) })
	h.TimeComm(func() { busyWork(1000) })
	if h.Timers.Compute <= 0 || h.Timers.Comm() <= 0 {
		t.Fatalf("timers not accumulated: %+v", h.Timers)
	}
	h.ResetTimers()
	if h.Timers.Compute != 0 || h.Timers.Comm() != 0 {
		t.Fatal("ResetTimers did not zero")
	}
}

func busyWork(n int) {
	x := 0
	for i := 0; i < n; i++ {
		x += i * i
	}
	_ = x
}

func TestCommStats(t *testing.T) {
	c := newTestCluster(t, 2)
	c.Run(func(h *Host) { h.Barrier() })
	msgs, _ := c.CommStats()
	if msgs < 2 {
		t.Fatalf("barrier sent %d messages, want >= 2", msgs)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Size() != 130 {
		t.Fatalf("Size = %d", b.Size())
	}
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Fatal("first Set should report newly set")
	}
	if b.Set(64) {
		t.Fatal("second Set should report already set")
	}
	if !b.Test(0) || !b.Test(64) || !b.Test(129) || b.Test(1) {
		t.Fatal("Test results wrong")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("ForEachSet = %v", got)
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear did not clear")
	}
}

func TestBitsetConcurrentSet(t *testing.T) {
	b := NewBitset(4096)
	var newly atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < 8; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4096; i++ {
				if b.Set(i) {
					newly.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if newly.Load() != 4096 {
		// Each bit must be "newly set" exactly once across all threads.
		panic("concurrent Set double-counted")
	}
}

// Property: Count equals the number of distinct set indices.
func TestQuickBitsetCount(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		seen := map[uint16]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			seen[i] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPCluster(t *testing.T) {
	g := gen.Grid(6, 6, false, 1)
	c, err := NewCluster(g, Config{NumHosts: 3, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sum atomic.Int64
	c.Run(func(h *Host) {
		var cr CountReducer
		cr.Reduce(int64(h.Rank + 1))
		cr.Sync(h.EP)
		sum.Store(cr.Read())
	})
	if sum.Load() != 6 {
		t.Fatalf("TCP cluster reduce = %d, want 6", sum.Load())
	}
}
