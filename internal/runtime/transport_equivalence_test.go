package runtime_test

import (
	"fmt"
	"math"
	"testing"

	"kimbap/internal/algorithms"
	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Cross-transport, cross-wire-format equivalence: the transport moves
// bytes and the wire format encodes them, so neither may change what an
// algorithm computes. CC labels must be bit-identical to the sequential
// reference, and Louvain assignments bit-identical to the in-memory/v1
// run, for every {in-memory, TCP} × {v1, v2} combination at 2 and 4 hosts.
// This is the end-to-end guard on the delta-varint codec: a mis-based or
// mis-sectioned key decodes to the wrong node and shows up here as a
// diverging label.

func transportConfigs(hosts int) []runtime.Config {
	var out []runtime.Config
	for _, tcp := range []bool{false, true} {
		for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
			out = append(out, runtime.Config{
				NumHosts: hosts, ThreadsPerHost: 2, UseTCP: tcp, Wire: wire,
			})
		}
	}
	return out
}

func configName(cfg runtime.Config) string {
	transport := "local"
	if cfg.UseTCP {
		transport = "tcp"
	}
	return fmt.Sprintf("%s/v%d/%dh", transport, cfg.Wire, cfg.NumHosts)
}

func TestCCEquivalentAcrossTransportsAndWireFormats(t *testing.T) {
	g := gen.RMAT(8, 5, false, 6)
	want := graph.ReferenceComponents(g)
	for _, hosts := range []int{2, 4} {
		for _, cfg := range transportConfigs(hosts) {
			cfg.Policy = partition.CVC
			t.Run(configName(cfg), func(t *testing.T) {
				c, err := runtime.NewCluster(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				out := make([]graph.NodeID, g.NumNodes())
				c.Run(func(h *runtime.Host) {
					algorithms.CCSV(h, algorithms.Config{}, out)
				})
				for i := range want {
					if out[i] != want[i] {
						t.Fatalf("node %d = %d, want %d", i, out[i], want[i])
					}
				}
			})
		}
	}
}

func TestLouvainEquivalentAcrossTransportsAndWireFormats(t *testing.T) {
	g := gen.Communities(4, 25, 4, 1, true, 13)
	for _, hosts := range []int{2, 4} {
		var ref *algorithms.CDResult
		var refName string
		for _, cfg := range transportConfigs(hosts) {
			name := configName(cfg)
			t.Run(name, func(t *testing.T) {
				res, err := algorithms.Louvain(g, cfg,
					algorithms.Config{}, algorithms.CDOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref, refName = &res, name
					return
				}
				// Assignments are integers and must match exactly. The
				// modularity statistic is a float sum whose local addition
				// order varies with thread scheduling, so it only agrees
				// to round-off (the cross-host combination tree itself is
				// fixed by the recursive-doubling allreduce).
				if math.Abs(res.Modularity-ref.Modularity) > 1e-9 {
					t.Fatalf("modularity %v != %s's %v",
						res.Modularity, refName, ref.Modularity)
				}
				for i := range ref.Assignment {
					if res.Assignment[i] != ref.Assignment[i] {
						t.Fatalf("node %d assigned %d, %s assigned %d",
							i, res.Assignment[i], refName, ref.Assignment[i])
					}
				}
			})
		}
	}
}
