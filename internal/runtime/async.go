package runtime

import (
	"math/bits"
	stdrt "runtime"
	"sync"
	"sync/atomic"

	"kimbap/internal/graph"
	"kimbap/internal/par"
)

// Asynchronous intra-host execution. A drain replaces one BSP compute
// round's "iterate the frontier, buffer reduces, wait for Advance" with a
// priority-scheduled worker loop: each worker owns a small stack of
// Chase-Lev deques (one per priority level), pops locally, steals from
// peers when dry, and — because the operator bodies it runs apply updates
// via atomic CAS instead of round-buffered reduce — re-enqueues
// newly-activated vertices immediately. Work started this round is
// finished this round: a chain of N dependent updates collapses in one
// drain instead of N BSP rounds.
//
// Cross-host synchronization stays BSP. A drain runs strictly between
// collective sync phases, touches only host-local proxies, and joins all
// its workers before returning, so the comm layer, the wire formats, and
// the happens-before structure of the surrounding program are untouched.

// AsyncOpts configures one drain.
type AsyncOpts struct {
	// Levels is the number of priority levels (1..maxAsyncLevels); zero
	// means one. Lower levels run first.
	Levels int
	// Priority maps a vertex to its level in [0, Levels). Nil means all
	// vertices share level 0. Called at enqueue time, possibly from
	// several workers at once — it must be safe for concurrent use and
	// read shared state atomically.
	Priority func(node graph.NodeID) int
}

// maxAsyncLevels bounds the per-worker deque stack; priority schedules
// coarsely (OBIM-style binning), so a handful of levels is plenty.
const maxAsyncLevels = 4

// DrainStats is one drain's telemetry, the raw signal the adaptive policy
// engine consumes.
type DrainStats struct {
	Seeded     int64 // vertices in the seed set
	Processed  int64 // body invocations (>= Seeded when work cascades)
	Reenqueued int64 // immediate re-activations from operator bodies
	Steals     int64 // successful cross-worker steals
	Spills     int64 // enqueues that overflowed a deque into the spill set
}

// Accumulate adds o's counters into s (per-round totals across drains).
func (s *DrainStats) Accumulate(o DrainStats) {
	s.Seeded += o.Seeded
	s.Processed += o.Processed
	s.Reenqueued += o.Reenqueued
	s.Steals += o.Steals
	s.Spills += o.Spills
}

// AsyncCtx is the per-worker handle an operator body uses to re-enqueue
// vertices it just activated.
type AsyncCtx struct {
	s *asyncSched
	w int
}

// Enqueue schedules node for processing in this drain. Deduplicated: a
// vertex already queued is not queued again, but a vertex currently being
// processed is — bodies must therefore tolerate concurrent invocation for
// the same vertex, which CAS-applied monotone operators do by
// construction.
//
//kimbap:conflictfree
func (c *AsyncCtx) Enqueue(node graph.NodeID) {
	s := c.s
	if s.enqueue(c.w, int32(node), s.level(node)) {
		s.counters[c.w].reenqueued++
	}
}

// drainCounters is one worker's telemetry slot, padded to a cache line so
// hot-loop increments never false-share.
type drainCounters struct {
	processed  int64
	reenqueued int64
	steals     int64
	spills     int64
	_          [4]int64
}

// asyncSched is a host's persistent drain state, reused across drains so
// steady-state rounds allocate nothing.
type asyncSched struct {
	threads int
	levels  int
	deques  [][]*par.Deque // [worker][level]
	// queued marks vertices currently enqueued (dedup); cleared before the
	// body runs so an activation racing the body re-enqueues.
	queued *Bitset
	// spill parks enqueues that found their deque full; idle workers claim
	// from it. spillCount lets the common no-spill case skip the scan, and
	// spillHint rotates the scan's starting word so consecutive claims
	// don't re-walk the already-drained prefix (the scan wraps the whole
	// set, so a stale hint costs time, never correctness).
	spill      *Bitset
	spillCount atomic.Int64
	spillHint  atomic.Int64
	// pending counts enqueued-but-unprocessed vertices; zero is the
	// drain's termination condition.
	pending  atomic.Int64
	priority func(node graph.NodeID) int
	counters []drainCounters
}

func newAsyncSched(threads, size int) *asyncSched {
	if threads < 1 {
		threads = 1
	}
	// Each deque holds an even share of the vertex set, so a round-robin
	// seed — even a full frontier — never spills. The spill set only
	// absorbs skew: a body flooding activations onto one worker faster
	// than thieves relieve it. (Capping deques below the seed share sends
	// most of a dense frontier through the spill set's shared bitmap scan,
	// which profiles an order of magnitude slower than deque pops.)
	capPer := size/threads + 1
	s := &asyncSched{
		threads:  threads,
		levels:   maxAsyncLevels,
		deques:   make([][]*par.Deque, threads),
		queued:   NewBitset(size),
		spill:    NewBitset(size),
		counters: make([]drainCounters, threads),
	}
	for w := range s.deques {
		s.deques[w] = make([]*par.Deque, maxAsyncLevels)
		for l := range s.deques[w] {
			s.deques[w][l] = par.NewDeque(capPer)
		}
	}
	return s
}

func (s *asyncSched) level(node graph.NodeID) int {
	if s.priority == nil {
		return 0
	}
	l := s.priority(node)
	if l < 0 {
		return 0
	}
	if l >= s.levels {
		return s.levels - 1
	}
	return l
}

// enqueue adds vertex i to worker w's level-lvl deque (or the spill set),
// unless it is already queued. Reports whether it enqueued.
//
//kimbap:conflictfree
func (s *asyncSched) enqueue(w int, i int32, lvl int) bool {
	if !s.queued.Set(int(i)) {
		return false
	}
	s.pending.Add(1)
	if !s.deques[w][lvl].Push(i) {
		if s.spill.Set(int(i)) {
			s.spillCount.Add(1)
		}
		s.counters[w].spills++
	}
	return true
}

func (s *asyncSched) popOwn(w int) (int32, bool) {
	for l := 0; l < s.levels; l++ {
		if v, ok := s.deques[w][l].Pop(); ok {
			return v, true
		}
	}
	return 0, false
}

// stealAny sweeps peers once, highest priority level first.
//
//kimbap:conflictfree
func (s *asyncSched) stealAny(w int) (int32, bool) {
	for l := 0; l < s.levels; l++ {
		for k := 1; k < s.threads; k++ {
			if v, ok := s.deques[(w+k)%s.threads][l].Steal(); ok {
				return v, true
			}
		}
	}
	return 0, false
}

// claimSpill scans the spill set for a vertex to claim. Unset's
// previously-set return arbitrates concurrent claimers. The scan starts
// at the hint word and wraps the full set, so no set bit is ever missed;
// the hint just keeps consecutive claims from re-walking drained words.
func (s *asyncSched) claimSpill() (int32, bool) {
	if s.spillCount.Load() == 0 {
		return 0, false
	}
	words := s.spill.Words()
	start := int(s.spillHint.Load()) % words
	if start < 0 {
		start = 0
	}
	for k := 0; k < words; k++ {
		wi := start + k
		if wi >= words {
			wi -= words
		}
		word := s.spill.MaskedWord(wi)
		for word != 0 {
			i := wi*64 + bits.TrailingZeros64(word)
			if s.spill.Unset(i) {
				s.spillCount.Add(-1)
				s.spillHint.Store(int64(wi))
				return int32(i), true
			}
			word &= word - 1
		}
	}
	return 0, false
}

func (s *asyncSched) worker(w int, body func(tid int, node graph.NodeID, cx *AsyncCtx)) {
	cx := AsyncCtx{s: s, w: w}
	c := &s.counters[w]
	for {
		i, ok := s.popOwn(w)
		if !ok {
			if i, ok = s.stealAny(w); ok {
				c.steals++
			}
		}
		if !ok {
			i, ok = s.claimSpill()
		}
		if !ok {
			if s.pending.Load() == 0 {
				return
			}
			stdrt.Gosched()
			continue
		}
		// Clear the dedup bit before running the body: an activation
		// arriving mid-body must re-enqueue, or its work would be lost.
		s.queued.Unset(int(i))
		body(w, graph.NodeID(i), &cx)
		c.processed++
		s.pending.Add(-1)
	}
}

// AsyncDrain runs body over f's current set asynchronously and blocks
// until the drain quiesces (every queued vertex, including immediate
// re-enqueues, has been processed). The frontier's current set is read,
// never written; bodies activate follow-up work with cx.Enqueue (same
// round) and/or f.Activate (next BSP round), and apply value updates via
// atomic CAS (npm.AsyncNodeHandle) — round-buffered Reduce remains legal
// for remote targets. Like ParFor, this is a blocking parallel entry
// point: it joins all workers before returning, so the caller may touch
// shared state plainly afterwards.
func (h *Host) AsyncDrain(f *Frontier, opts AsyncOpts, body func(tid int, node graph.NodeID, cx *AsyncCtx)) DrainStats {
	return h.asyncDrain(f.cur, f.Count(), opts, body)
}

// AsyncDrainBits is AsyncDrain over an explicit seed bitset (phases that
// track their own pending sets, e.g. CC shortcut's unresolved-remote set).
func (h *Host) AsyncDrainBits(b *Bitset, opts AsyncOpts, body func(tid int, node graph.NodeID, cx *AsyncCtx)) DrainStats {
	return h.asyncDrain(b, b.Count(), opts, body)
}

func (h *Host) asyncDrain(seed *Bitset, count int, opts AsyncOpts, body func(tid int, node graph.NodeID, cx *AsyncCtx)) DrainStats {
	if count == 0 {
		return DrainStats{}
	}
	threads := h.Threads
	if threads < 1 {
		threads = 1
	}
	s := h.async
	if s == nil || s.threads != threads || s.queued.Size() != seed.Size() {
		s = newAsyncSched(threads, seed.Size())
		h.async = s
	}
	s.priority = opts.Priority
	if opts.Levels > 0 && opts.Levels < maxAsyncLevels {
		s.levels = opts.Levels
	} else {
		s.levels = maxAsyncLevels
	}
	// Seed round-robin across workers. Pre-launch, so pushing into every
	// worker's deque from this goroutine respects deque ownership via the
	// happens-before of goroutine start.
	w := 0
	seed.ForEachSet(func(i int) {
		s.enqueue(w, int32(i), s.level(graph.NodeID(i)))
		w = (w + 1) % threads
	})
	if threads == 1 {
		s.worker(0, body)
	} else {
		var wg sync.WaitGroup
		for t := 1; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				s.worker(t, body)
			}(t)
		}
		s.worker(0, body)
		wg.Wait()
	}
	stats := DrainStats{Seeded: int64(count)}
	for i := range s.counters {
		c := &s.counters[i]
		stats.Processed += c.processed
		stats.Reenqueued += c.reenqueued
		stats.Steals += c.steals
		stats.Spills += c.spills
		*c = drainCounters{}
	}
	s.priority = nil
	return stats
}
