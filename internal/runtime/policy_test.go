package runtime

import (
	"sync/atomic"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
)

func TestAdaptiveModeChoice(t *testing.T) {
	h := &Host{}
	// Empty frontier: nothing to drain, BSP (a no-op round) always.
	a := &Adaptive{h: h, localShare: 1, divisor: frontierDenseDivisor}
	if a.NextMode(0) != ModeBSP {
		t.Fatal("empty frontier must choose BSP")
	}
	// Unobserved controller probes async when enough targets are local.
	if a.NextMode(10) != ModeAsync {
		t.Fatal("localShare=1 unobserved: want async probe")
	}
	b := &Adaptive{h: h, localShare: 0.3, divisor: frontierDenseDivisor}
	if b.NextMode(10) != ModeBSP {
		t.Fatal("localShare=0.3 unobserved: want BSP (mirrors dominate)")
	}

	// A cascading async round (high re-activation) keeps async on even at
	// moderate local share.
	c := &Adaptive{h: h, localShare: 0.5, divisor: frontierDenseDivisor}
	c.Observe(RoundTelemetry{
		Active: 100, FrontierSize: 1 << 20, Mode: ModeAsync,
		Drain:      DrainStats{Seeded: 100, Processed: 300, Reenqueued: 200},
		CASApplied: 250,
	})
	if c.NextMode(10) != ModeAsync {
		t.Fatalf("reactEMA=%v localShare=0.5: want async", c.reactEMA)
	}

	// A dead async round (no re-activation, low local share) falls back.
	d := &Adaptive{h: h, localShare: 0.5, divisor: frontierDenseDivisor}
	d.Observe(RoundTelemetry{
		Active: 100, FrontierSize: 1 << 20, Mode: ModeAsync,
		Drain: DrainStats{Seeded: 100, Processed: 100}, CASApplied: 50,
	})
	if d.NextMode(10) != ModeBSP {
		t.Fatal("no cascades at localShare=0.5: want BSP")
	}

	// Heavy CAS contention forces BSP regardless of cascade rate.
	e := &Adaptive{h: h, localShare: 1, divisor: frontierDenseDivisor}
	e.Observe(RoundTelemetry{
		Active: 100, FrontierSize: 1 << 20, Mode: ModeAsync,
		Drain:      DrainStats{Seeded: 100, Processed: 400, Reenqueued: 300},
		CASApplied: 100, CASRetries: 300,
	})
	if e.NextMode(10) != ModeBSP {
		t.Fatalf("retryEMA=%v: contention must force BSP", e.retryEMA)
	}
}

// A frontier hovering at the dense/sparse boundary (alternating sides every
// round) must trigger the controller to double the host's dense divisor,
// parking the workload in one representation.
func TestAdaptiveDivisorRetune(t *testing.T) {
	h := &Host{}
	h.SetFrontierThresholds(frontierDenseDivisor, 0)
	a := newTestAdaptive(h, 1)
	const size = 16 * 1024
	boundary := size / frontierDenseDivisor
	for i := 0; i < 8; i++ {
		active := boundary + 1 // dense
		if i%2 == 1 {
			active = boundary - 1 // sparse
		}
		a.Observe(RoundTelemetry{Active: active, FrontierSize: size, Mode: ModeBSP})
	}
	if a.Divisor() <= frontierDenseDivisor {
		t.Fatalf("divisor %d not raised after sustained flapping", a.Divisor())
	}
	if div, _ := h.FrontierThresholds(); div != a.Divisor() {
		t.Fatalf("host divisor %d does not match controller %d", div, a.Divisor())
	}

	// A stable frontier (always dense) must leave the divisor alone.
	h2 := &Host{}
	b := newTestAdaptive(h2, 1)
	for i := 0; i < 8; i++ {
		b.Observe(RoundTelemetry{Active: boundary * 2, FrontierSize: size, Mode: ModeBSP})
	}
	if b.Divisor() != frontierDenseDivisor {
		t.Fatalf("stable frontier moved divisor to %d", b.Divisor())
	}
}

// newTestAdaptive builds a controller without a partitioned host.
func newTestAdaptive(h *Host, localShare float64) *Adaptive {
	div, _ := h.FrontierThresholds()
	return &Adaptive{h: h, localShare: localShare, divisor: div}
}

// Satellite: the dense/sparse divisor and serial cutoff are configurable
// via runtime.Config and plumbed to every host.
func TestFrontierThresholdsFromConfig(t *testing.T) {
	g := gen.Grid(8, 8, false, 1)
	c, err := NewCluster(g, Config{
		NumHosts: 2, ThreadsPerHost: 2,
		FrontierDenseDivisor: 5, FrontierSerialCutoff: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(h *Host) {
		if div, cut := h.FrontierThresholds(); div != 5 || cut != 7 {
			t.Errorf("host %d thresholds (%d,%d), want (5,7)", h.Rank, div, cut)
		}
	})

	// SetFrontierThresholds: positive sets, zero leaves, negative restores
	// the package default.
	h := &Host{}
	if div, cut := h.FrontierThresholds(); div != frontierDenseDivisor || cut != frontierSerialCutoff {
		t.Fatalf("bare host thresholds (%d,%d), want defaults", div, cut)
	}
	h.SetFrontierThresholds(32, 0)
	if div, cut := h.FrontierThresholds(); div != 32 || cut != frontierSerialCutoff {
		t.Fatalf("after (32,0): (%d,%d)", div, cut)
	}
	h.SetFrontierThresholds(0, 9)
	if div, cut := h.FrontierThresholds(); div != 32 || cut != 9 {
		t.Fatalf("after (0,9): (%d,%d)", div, cut)
	}
	h.SetFrontierThresholds(-1, -1)
	if div, cut := h.FrontierThresholds(); div != frontierDenseDivisor || cut != frontierSerialCutoff {
		t.Fatalf("after restore: (%d,%d)", div, cut)
	}
}

// Satellite: force each of ParForActive's three representations with
// extreme thresholds and check the observable signature of each — the
// sparse path materializes the compacted index, the serial path runs
// everything on the calling goroutine as tid 0, and all three visit the
// active set exactly once.
func TestParForActiveForcedRepresentations(t *testing.T) {
	const n, active = 4096, 64
	run := func(h *Host) (*Frontier, []int32) {
		f := NewFrontier(n)
		for i := 0; i < active; i++ {
			f.Activate(i * (n / active))
		}
		f.Advance()
		visits := make([]int32, n)
		h.ParForActive(f, func(tid int, node graph.NodeID) {
			atomic.AddInt32(&visits[node], int32(1+tid<<8))
		})
		return f, visits
	}
	check := func(t *testing.T, f *Frontier, visits []int32, wantTid0 bool) {
		t.Helper()
		for i, v := range visits {
			count := v & 0xff
			want := int32(0)
			if f.IsActive(i) {
				want = 1
			}
			if count != want {
				t.Fatalf("node %d visited %d times, want %d", i, count, want)
			}
			if wantTid0 && v>>8 != 0 {
				t.Fatalf("node %d ran on tid %d, want serial tid 0", i, v>>8)
			}
		}
	}

	t.Run("serial", func(t *testing.T) {
		h := testHost(4)
		defer h.pool.close()
		h.SetFrontierThresholds(0, n) // cutoff >= any count: always inline
		f, visits := run(h)
		check(t, f, visits, true)
		if f.idxValid {
			t.Fatal("serial path built the sparse index")
		}
	})
	t.Run("dense", func(t *testing.T) {
		h := testHost(4)
		defer h.pool.close()
		h.SetFrontierThresholds(n, 1) // count*divisor >= size even for tiny frontiers
		f, visits := run(h)
		check(t, f, visits, false)
		if f.idxValid {
			t.Fatal("dense path built the sparse index")
		}
	})
	t.Run("sparse", func(t *testing.T) {
		h := testHost(4)
		defer h.pool.close()
		h.SetFrontierThresholds(1, 1) // count*1 < size: compacted index list
		f, visits := run(h)
		check(t, f, visits, false)
		if !f.idxValid {
			t.Fatal("sparse path did not build the compacted index")
		}
	})
}
