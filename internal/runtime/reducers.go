package runtime

import (
	"math"
	"sync/atomic"

	"kimbap/internal/comm"
)

// Distributed reducers: each host accumulates locally with atomic
// operations; Sync (a collective that every host must call) combines the
// local values across the cluster and makes the global value readable
// everywhere. The paper's Figure 4 uses a BoolReducer to detect quiescence
// of the hook/shortcut outer loop.

// BoolReducer is a distributed logical-OR reducer.
type BoolReducer struct {
	local  atomic.Bool
	global bool
}

// Set overwrites the local value (initialization only).
func (r *BoolReducer) Set(v bool) {
	r.local.Store(v)
	r.global = v
}

// Reduce ORs v into the local value. Safe for concurrent use.
func (r *BoolReducer) Reduce(v bool) {
	if v {
		r.local.Store(true)
	}
}

// Sync combines local values across hosts. Collective: all hosts must call.
func (r *BoolReducer) Sync(ep comm.Endpoint) {
	r.global = comm.AllReduceBool(ep, r.local.Load())
}

// Read returns the global value as of the last Sync.
func (r *BoolReducer) Read() bool { return r.global }

// SumReducer is a distributed float64 sum reducer.
type SumReducer struct {
	local  atomicFloat64
	global float64
}

// Set overwrites the local value (initialization only).
func (r *SumReducer) Set(v float64) {
	r.local.Store(v)
	r.global = v
}

// Reduce adds v to the local value. Safe for concurrent use.
func (r *SumReducer) Reduce(v float64) { r.local.Add(v) }

// Sync combines local sums across hosts. Collective.
func (r *SumReducer) Sync(ep comm.Endpoint) {
	r.global = comm.AllReduceFloat64(ep, r.local.Load())
}

// Read returns the global sum as of the last Sync.
func (r *SumReducer) Read() float64 { return r.global }

// CountReducer is a distributed int64 sum reducer.
type CountReducer struct {
	local  atomic.Int64
	global int64
}

// Set overwrites the local value (initialization only).
func (r *CountReducer) Set(v int64) {
	r.local.Store(v)
	r.global = v
}

// Reduce adds v to the local count. Safe for concurrent use.
func (r *CountReducer) Reduce(v int64) { r.local.Add(v) }

// Sync combines local counts across hosts. Collective.
func (r *CountReducer) Sync(ep comm.Endpoint) {
	r.global = comm.AllReduceInt64(ep, r.local.Load())
}

// Read returns the global count as of the last Sync.
func (r *CountReducer) Read() int64 { return r.global }

// atomicFloat64 is a lock-free float64 accumulator built on a uint64 CAS
// loop (the standard library has no atomic float).
type atomicFloat64 struct {
	bits atomic.Uint64
}

func (a *atomicFloat64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

func (a *atomicFloat64) Add(v float64) {
	for {
		old := a.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, want) {
			return
		}
	}
}
