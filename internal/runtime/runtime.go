// Package runtime simulates the distributed cluster Kimbap runs on: a set
// of hosts, each with its own graph partition and pool of worker threads,
// connected by a comm.Transport. One OS process hosts the whole cluster;
// each simulated host runs the application program in its own goroutine and
// communicates with peers only through messages, mirroring the paper's
// 256-host x 48-thread Stampede2 deployments at laptop scale.
//
// The package also provides the BSP building blocks the generated code in
// the paper relies on: parallel-for over local nodes with per-thread
// contexts (for conflict-free thread-local maps), a concurrent bitset (for
// request de-duplication), distributed reducers, and per-phase time
// accounting that separates computation from communication.
package runtime

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"sync/atomic"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
)

// Config describes a simulated cluster.
type Config struct {
	NumHosts int
	// ThreadsPerHost is the worker pool size per host (the paper uses 48).
	// Defaults to 4 if zero.
	ThreadsPerHost int
	// Policy is the partitioning policy. Defaults to partition.OEC.
	Policy partition.Policy
	// UseTCP selects the real-socket transport instead of the in-memory
	// channel transport.
	UseTCP bool
	// Wire is the cluster-wide default for the property-map payload
	// encoding; maps can override it per instance. The zero value
	// (comm.WireAuto) means the npm package default (v2).
	Wire comm.WireFormat
	// FrontierDenseDivisor sets ParForActive's dense/sparse switch: the
	// frontier iterates densely (parallel masked word scan) when
	// |active| >= |V|/divisor, sparsely (compacted index list) below.
	// Defaults to frontierDenseDivisor (16). The adaptive policy engine
	// retunes it per host at runtime via SetFrontierThresholds.
	FrontierDenseDivisor int
	// FrontierSerialCutoff is the frontier size at or below which
	// ParForActive runs inline on the calling goroutine instead of waking
	// the worker pool. Defaults to frontierSerialCutoff (256).
	FrontierSerialCutoff int
	// Reorder selects a locality-aware vertex reordering applied at
	// cluster construction (DESIGN.md §14): the graph is permuted before
	// partitioning and the partition carries the permutation, so
	// algorithms translate at their ID-space boundaries and report
	// results in original IDs. The zero value (or graph.ReorderNone)
	// keeps the original order.
	Reorder graph.ReorderPolicy
}

func (c Config) withDefaults() Config {
	if c.NumHosts == 0 {
		c.NumHosts = 1
	}
	if c.ThreadsPerHost == 0 {
		c.ThreadsPerHost = 4
	}
	if c.Policy == "" {
		c.Policy = partition.OEC
	}
	if c.FrontierDenseDivisor == 0 {
		c.FrontierDenseDivisor = frontierDenseDivisor
	}
	if c.FrontierSerialCutoff == 0 {
		c.FrontierSerialCutoff = frontierSerialCutoff
	}
	return c
}

// Cluster is a partitioned graph plus the communication fabric connecting
// its hosts.
type Cluster struct {
	Config Config
	Part   *partition.Partitioned
	hosts  []*Host
}

// Host is one simulated machine: its partition, endpoint, worker pool and
// timers. Application code receives a *Host and runs identically on every
// host (SPMD).
type Host struct {
	Rank    int
	HP      *partition.HostPartition
	EP      comm.Endpoint
	Threads int
	Wire    comm.WireFormat
	Timers  Timers

	pool   *workerPool
	mapSeq atomic.Int64

	// Frontier representation thresholds (see Config); atomic because the
	// adaptive policy rewrites them between rounds while telemetry readers
	// may inspect them. Zero means "use the package default".
	denseDivisor atomic.Int64
	serialCutoff atomic.Int64
	// async is the host's persistent drain scheduler, created on first
	// AsyncDrain. Only the host's program goroutine starts drains, so no
	// lock guards it.
	async *asyncSched
}

// NextMapID returns this host's next property-map sequence number. SPMD
// programs create maps in the same order on every host, so the k-th map on
// each host shares the same ID — used to namespace keys in shared external
// stores.
func (h *Host) NextMapID() int64 { return h.mapSeq.Add(1) }

// NewCluster partitions g and connects the hosts. With Config.Reorder set,
// g is first permuted into locality order (blocked-degree reorders use the
// host count as the block count, preserving the partition assignment) and
// the permutation rides on the partition for the NPM and algorithm layers.
func NewCluster(g *graph.Graph, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	var part *partition.Partitioned
	if cfg.Reorder != "" && cfg.Reorder != graph.ReorderNone {
		rg, ro, err := graph.Reorder(g, graph.ReorderOptions{
			Policy: cfg.Reorder,
			Blocks: cfg.NumHosts,
		})
		if err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
		part = partition.PartitionReordered(rg, cfg.NumHosts, cfg.Policy, ro)
	} else {
		part = partition.Partition(g, cfg.NumHosts, cfg.Policy)
	}
	var eps []comm.Endpoint
	if cfg.UseTCP {
		tcp, err := comm.NewTCPCluster(cfg.NumHosts)
		if err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
		for _, e := range tcp {
			eps = append(eps, e)
		}
	} else {
		for _, e := range comm.NewLocalCluster(cfg.NumHosts) {
			eps = append(eps, e)
		}
	}
	c := &Cluster{Config: cfg, Part: part}
	for i := 0; i < cfg.NumHosts; i++ {
		h := &Host{
			Rank:    i,
			HP:      part.Hosts[i],
			EP:      eps[i],
			Threads: cfg.ThreadsPerHost,
			Wire:    cfg.Wire,
			pool:    newWorkerPool(cfg.ThreadsPerHost),
		}
		h.SetFrontierThresholds(cfg.FrontierDenseDivisor, cfg.FrontierSerialCutoff)
		c.hosts = append(c.hosts, h)
	}
	return c, nil
}

// Hosts returns the cluster's hosts.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Run executes prog concurrently on every host (SPMD) and blocks until all
// hosts return. A panic on any host is re-raised on the caller after all
// other hosts have been given a chance to finish or panic.
func (c *Cluster) Run(prog func(h *Host)) {
	var wg sync.WaitGroup
	panics := make([]any, len(c.hosts))
	for i, h := range c.hosts {
		wg.Add(1)
		go func(i int, h *Host) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			prog(h)
		}(i, h)
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("runtime: host %d panicked: %v", i, p))
		}
	}
}

// Close releases transport resources and parks each host's worker pool.
func (c *Cluster) Close() {
	for _, h := range c.hosts {
		h.EP.Close()
		if h.pool != nil {
			h.pool.close()
		}
	}
}

// CommStats sums messages and bytes sent by all hosts.
func (c *Cluster) CommStats() (messages, bytes int64) {
	for _, h := range c.hosts {
		m, b := h.EP.Stats()
		messages += m
		bytes += b
	}
	return messages, bytes
}

// CommStatsByTag sums messages and bytes sent by all hosts, broken down by
// message tag (both slices have comm.NumTags entries, indexed by comm.Tag).
func (c *Cluster) CommStatsByTag() (messages, bytes []int64) {
	messages = make([]int64, comm.NumTags)
	bytes = make([]int64, comm.NumTags)
	for _, h := range c.hosts {
		m, b := h.EP.StatsByTag()
		for t := range m {
			messages[t] += m[t]
			bytes[t] += b[t]
		}
	}
	return messages, bytes
}

// Timers accumulates wall-clock time per activity class on one host.
// The paper's Figures 11-12 break execution into computation and
// communication; §6.4 additionally attributes GAR's gains to request,
// reduce, and their synchronization separately, so the communication side
// is split by phase.
type Timers struct {
	Compute   time.Duration
	Request   time.Duration // request-sync phases
	Reduce    time.Duration // reduce-sync phases and quiescence reductions
	Broadcast time.Duration // master-to-mirror broadcasts
}

// Comm returns total communication time across all sync phases.
func (t Timers) Comm() time.Duration { return t.Request + t.Reduce + t.Broadcast }

// TimeCompute runs f and adds its duration to the computation timer.
func (h *Host) TimeCompute(f func()) {
	start := time.Now()
	f()
	h.Timers.Compute += time.Since(start)
}

// TimeComm runs f and adds its duration to the reduce-phase timer; prefer
// the phase-specific variants where the phase is known.
func (h *Host) TimeComm(f func()) { h.TimeReduce(f) }

// TimeRequest runs f and adds its duration to the request-phase timer.
func (h *Host) TimeRequest(f func()) {
	start := time.Now()
	f()
	h.Timers.Request += time.Since(start)
}

// TimeReduce runs f and adds its duration to the reduce-phase timer.
func (h *Host) TimeReduce(f func()) {
	start := time.Now()
	f()
	h.Timers.Reduce += time.Since(start)
}

// TimeBroadcast runs f and adds its duration to the broadcast timer.
func (h *Host) TimeBroadcast(f func()) {
	start := time.Now()
	f()
	h.Timers.Broadcast += time.Since(start)
}

// ResetTimers zeroes the host's timers.
func (h *Host) ResetTimers() { h.Timers = Timers{} }

// ParFor runs fn(tid, i) for every i in [0, n) on the host's persistent
// worker pool. Work is claimed in chunks off a shared atomic cursor so
// skewed iterations (power-law hubs) balance across threads; nothing is
// allocated per call, so BSP rounds that loop over ParFor stay
// steady-state allocation free. fn must be safe for concurrent invocation
// with distinct i. Nested or concurrent ParFor calls on one host run the
// inner loop serially (the pool serves one round at a time).
//
//kimbap:conflictfree
func (h *Host) ParFor(n int, fn func(tid, i int)) {
	if n == 0 {
		return
	}
	threads := h.Threads
	if threads > n {
		threads = n
	}
	if threads <= 1 || h.pool == nil || !h.pool.busy.CompareAndSwap(false, true) {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	defer h.pool.busy.Store(false)
	// Chunks are sized so each thread sees several, letting skewed
	// iterations rebalance, but capped to bound scheduling overhead.
	chunk := n / (threads * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}
	h.pool.parFor(n, chunk, fn)
}

// ParForNodes runs fn over all local proxies (masters and mirrors).
func (h *Host) ParForNodes(fn func(tid int, node graph.NodeID)) {
	h.ParFor(h.HP.NumLocal(), func(tid, i int) { fn(tid, graph.NodeID(i)) })
}

// ParForMasters runs fn over local master proxies only (the compiler's
// master-iterator optimization from §5.2).
func (h *Host) ParForMasters(fn func(tid int, node graph.NodeID)) {
	h.ParFor(h.HP.NumMasters, func(tid, i int) { fn(tid, graph.NodeID(i)) })
}

// pullChunkEdges is ParForPull's target in-edge volume per chunk: the
// scheduling grain is edges scanned, not vertices visited, so a chunk
// landing on a power-law hub splits finer and rebalances across threads.
const pullChunkEdges = 2048

// ParForPull is the dense pull-mode path: it runs fn over local master
// proxies, where fn scans the master's in-neighbors serially (via the
// local in-CSR) and combines into the master's own slot with plain
// stores — conflict-free by ownership, since no two invocations share a
// master. Chunk sizing accounts for in-degree skew when the local
// in-CSR is materialized; otherwise it falls back to ParFor's
// vertex-count grain.
//
//kimbap:conflictfree
func (h *Host) ParForPull(fn func(tid int, master graph.NodeID)) {
	n := h.HP.NumMasters
	if n == 0 {
		return
	}
	threads := h.Threads
	if threads > n {
		threads = n
	}
	if threads <= 1 || h.pool == nil || !h.pool.busy.CompareAndSwap(false, true) {
		for i := 0; i < n; i++ {
			fn(0, graph.NodeID(i))
		}
		return
	}
	defer h.pool.busy.Store(false)
	chunk := n / (threads * 8)
	if g := h.HP.Local; g.HasInCSR() {
		_, totalIn := g.InEdgeRange(graph.NodeID(n - 1))
		if avg := totalIn / int64(n); avg > 0 {
			if byEdges := int(pullChunkEdges / avg); byEdges < chunk {
				chunk = byEdges
			}
		}
	}
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}
	h.pool.parFor(n, chunk, func(tid, i int) { fn(tid, graph.NodeID(i)) })
}

// frontierDenseDivisor is the default density threshold of ParForActive's
// Ligra-style representation switch: at |active| >= |V|/16 the frontier is
// iterated as a parallel bitset scan (no compaction, word-level skips of
// inactive runs); below it the set bits are compacted into an index list
// so per-round work is O(|active|) plus one word scan.
const frontierDenseDivisor = 16

// frontierSerialCutoff is the default frontier size at or below which
// ParForActive runs inline on the calling goroutine: waking the worker
// pool costs more than visiting a few hundred vertices, and late rounds of
// frontier-driven algorithms hit this every round.
const frontierSerialCutoff = 256

// SetFrontierThresholds overrides the host's frontier representation
// thresholds (Config.FrontierDenseDivisor / FrontierSerialCutoff). Zero
// leaves the corresponding threshold unchanged; negative restores the
// package default. Safe to call between rounds; the adaptive policy engine
// uses it to retune the dense/sparse switch from observed telemetry.
func (h *Host) SetFrontierThresholds(denseDivisor, serialCutoff int) {
	switch {
	case denseDivisor > 0:
		h.denseDivisor.Store(int64(denseDivisor))
	case denseDivisor < 0:
		h.denseDivisor.Store(frontierDenseDivisor)
	}
	switch {
	case serialCutoff > 0:
		h.serialCutoff.Store(int64(serialCutoff))
	case serialCutoff < 0:
		h.serialCutoff.Store(frontierSerialCutoff)
	}
}

// FrontierThresholds returns the host's effective dense divisor and serial
// cutoff (package defaults when never configured — hosts built as bare
// literals in tests keep working).
func (h *Host) FrontierThresholds() (denseDivisor, serialCutoff int) {
	denseDivisor = int(h.denseDivisor.Load())
	if denseDivisor == 0 {
		denseDivisor = frontierDenseDivisor
	}
	serialCutoff = int(h.serialCutoff.Load())
	if serialCutoff == 0 {
		serialCutoff = frontierSerialCutoff
	}
	return denseDivisor, serialCutoff
}

// ParForActive runs fn over the vertices in f's current set, on the
// host's worker pool. The iteration form switches on frontier density
// (see frontierDenseDivisor); both forms invoke fn with distinct vertices
// only, so the same conflict-freedom argument as ParFor applies. fn may
// f.Activate concurrently — activations land in the next set and never
// affect the round in flight.
//
//kimbap:conflictfree
func (h *Host) ParForActive(f *Frontier, fn func(tid int, node graph.NodeID)) {
	n := f.Count()
	if n == 0 {
		return
	}
	divisor, cutoff := h.FrontierThresholds()
	// Small frontiers run inline on the calling goroutine (see
	// frontierSerialCutoff).
	if n <= cutoff {
		f.cur.ForEachSet(func(i int) { fn(0, graph.NodeID(i)) })
		return
	}
	if n*divisor >= f.Size() {
		cur := f.cur
		h.ParFor(cur.Words(), func(tid, w int) {
			word := cur.MaskedWord(w)
			for word != 0 {
				fn(tid, graph.NodeID(w*64+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		})
		return
	}
	idx := f.compact()
	h.ParFor(len(idx), func(tid, i int) { fn(tid, graph.NodeID(idx[i])) })
}

// Barrier synchronizes all hosts.
func (h *Host) Barrier() { comm.Barrier(h.EP) }
