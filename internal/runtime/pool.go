package runtime

import (
	"sync"
	"sync/atomic"
)

// workerPool is the persistent pool of parked worker goroutines behind
// Host.ParFor. The workers are created once per host and live for the
// cluster's lifetime; each ParFor round publishes its loop body and bounds,
// wakes the workers, and waits — no goroutine spawn, feeder goroutine, or
// channel allocation per call, so steady-state BSP rounds do not allocate
// on the parallel-for path.
//
// Work distribution is a shared atomic cursor: workers claim fixed-size
// chunks with next.Add until the index space is exhausted, which balances
// skewed iterations (power-law hubs) exactly like the previous
// channel-fed design.
//
// The pool intentionally uses no mutex: ParFor is on the conflict-free
// reduce path (fullMap.ReduceSync is annotated //kimbap:conflictfree and
// kimbapvet proves no lock acquisition is reachable from it), so round
// entry is guarded by an atomic busy flag instead. A failed claim — a
// nested or concurrent ParFor on the same host — falls back to serial
// execution, which is always correct.
type workerPool struct {
	threads int
	wake    []chan struct{}
	wg      sync.WaitGroup
	busy    atomic.Bool

	// Per-round state. Written by the round owner before the wake sends
	// and read by workers after the wake receives, so the channel
	// operations order them; cleared only after wg.Wait returns.
	fn       func(tid, i int)
	n        int64
	chunk    int64
	next     atomic.Int64
	panicked atomic.Pointer[poolPanic]
}

// poolPanic boxes a worker's recovered panic value for re-raising on the
// round owner's goroutine.
type poolPanic struct{ v any }

func newWorkerPool(threads int) *workerPool {
	p := &workerPool{threads: threads, wake: make([]chan struct{}, threads)}
	for t := range p.wake {
		p.wake[t] = make(chan struct{}, 1)
		go p.worker(t)
	}
	return p
}

func (p *workerPool) worker(tid int) {
	for range p.wake[tid] {
		p.runChunks(tid)
		p.wg.Done()
	}
}

func (p *workerPool) runChunks(tid int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked.Store(&poolPanic{r})
			// Park the cursor past the end so peers stop claiming work and
			// the round drains quickly (mirrors the old channel drain).
			p.next.Store(1 << 62)
		}
	}()
	for {
		hi := p.next.Add(p.chunk)
		lo := hi - p.chunk
		if lo >= p.n {
			return
		}
		if hi > p.n {
			hi = p.n
		}
		for i := lo; i < hi; i++ {
			p.fn(tid, int(i))
		}
	}
}

// parFor runs one round on the pool. The caller must have claimed the
// busy flag; chunk must be >= 1.
func (p *workerPool) parFor(n, chunk int, fn func(tid, i int)) {
	p.fn = fn
	p.n = int64(n)
	p.chunk = int64(chunk)
	p.next.Store(0)
	p.panicked.Store(nil)
	p.wg.Add(p.threads)
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
	if pp := p.panicked.Load(); pp != nil {
		// Re-raise on the calling goroutine so host-level recovery works.
		panic(pp.v)
	}
}

// close releases the parked workers. Must not be called during a round.
func (p *workerPool) close() {
	if !p.busy.CompareAndSwap(false, true) {
		return // round in flight or already closed; leave workers parked
	}
	for _, c := range p.wake {
		close(c)
	}
}
