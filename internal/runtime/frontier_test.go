package runtime

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"kimbap/internal/graph"
)

func TestBitsetForEachSetFrom(t *testing.T) {
	b := NewBitset(200)
	set := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range set {
		b.Set(i)
	}
	for _, start := range []int{-5, 0, 1, 2, 63, 64, 66, 128, 199, 200, 500} {
		var got []int
		b.ForEachSetFrom(start, func(i int) { got = append(got, i) })
		var want []int
		for _, i := range set {
			if i >= start {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("start %d: got %v, want %v", start, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("start %d: got %v, want %v", start, got, want)
			}
		}
	}
}

func TestQuickBitsetRangeOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(300)
		b := NewBitset(size)
		ref := make([]bool, size)
		for k := 0; k < 3; k++ {
			lo := rng.Intn(size + 1)
			hi := lo + rng.Intn(size+1-lo)
			b.SetRange(lo, hi)
			for i := lo; i < hi; i++ {
				ref[i] = true
			}
		}
		for k := 0; k < 5; k++ {
			lo := rng.Intn(size + 1)
			hi := lo + rng.Intn(size+1-lo)
			want := 0
			for i := lo; i < hi; i++ {
				if ref[i] {
					want++
				}
			}
			if got := b.CountRange(lo, hi); got != want {
				t.Fatalf("size %d CountRange(%d,%d) = %d, want %d", size, lo, hi, got, want)
			}
		}
		wantTotal := 0
		for _, v := range ref {
			if v {
				wantTotal++
			}
		}
		if got := b.Count(); got != wantTotal {
			t.Fatalf("size %d Count = %d, want %d", size, got, wantTotal)
		}
	}
}

func TestBitsetOrInto(t *testing.T) {
	a, b := NewBitset(130), NewBitset(130)
	a.Set(0)
	a.Set(64)
	a.Set(129)
	b.Set(1)
	b.Set(64)
	a.OrInto(b)
	for _, i := range []int{0, 1, 64, 129} {
		if !b.Test(i) {
			t.Fatalf("bit %d not set after OrInto", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count after OrInto = %d, want 4", b.Count())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("OrInto with mismatched sizes did not panic")
		}
	}()
	NewBitset(10).OrInto(NewBitset(11))
}

func TestFrontierDoubleBuffering(t *testing.T) {
	f := NewFrontier(100)
	if f.Count() != 0 {
		t.Fatal("new frontier not empty")
	}
	f.Activate(3)
	f.Activate(97)
	if f.Count() != 0 || f.IsActive(3) {
		t.Fatal("activation visible before Advance")
	}
	if n := f.Advance(); n != 2 {
		t.Fatalf("Advance = %d, want 2", n)
	}
	if !f.IsActive(3) || !f.IsActive(97) || f.IsActive(4) {
		t.Fatal("current set wrong after Advance")
	}
	// Activations during a round land in the next set only.
	f.Activate(50)
	if f.IsActive(50) {
		t.Fatal("next-set activation leaked into current set")
	}
	if n := f.Advance(); n != 1 || !f.IsActive(50) || f.IsActive(3) {
		t.Fatalf("second Advance: count %d, active(50)=%v active(3)=%v", n, f.IsActive(50), f.IsActive(3))
	}
	f.ActivateRange(10, 20)
	f.Advance()
	if f.Count() != 10 || f.CountRange(0, 15) != 5 {
		t.Fatalf("range activation: count %d, countRange %d", f.Count(), f.CountRange(0, 15))
	}
	f.Reset()
	if f.Count() != 0 {
		t.Fatal("Reset left active bits")
	}
	f.ActivateAll()
	if n := f.Advance(); n != 100 {
		t.Fatalf("ActivateAll count = %d, want 100", n)
	}
	if f.MemoryFootprint() <= 0 {
		t.Fatal("MemoryFootprint not positive")
	}
}

// ParForActive must visit exactly the current set once, in both the dense
// (bitset scan) and sparse (compacted index list) regimes, and concurrent
// Activate calls from the loop body must land in the next set.
func TestParForActiveDenseAndSparse(t *testing.T) {
	h := &Host{Threads: 4, pool: newWorkerPool(4)}
	defer h.pool.close()
	const n = 1000
	for _, active := range []int{0, 1, 5, 50, n} { // 5/1000 sparse, 1000/1000 dense
		f := NewFrontier(n)
		for i := 0; i < active; i++ {
			f.Activate(i * (n / max(active, 1)) % n)
		}
		f.Advance()
		var visits [n]atomic.Int32
		h.ParForActive(f, func(_ int, node graph.NodeID) {
			visits[node].Add(1)
			f.Activate(int(node)) // must land in next, not affect this round
		})
		got := 0
		for i := range visits {
			c := visits[i].Load()
			if c > 1 {
				t.Fatalf("active %d: node %d visited %d times", active, i, c)
			}
			if (c == 1) != f.IsActive(i) {
				t.Fatalf("active %d: node %d visited=%v active=%v", active, i, c == 1, f.IsActive(i))
			}
			got += int(c)
		}
		if got != f.Count() {
			t.Fatalf("active %d: visited %d, frontier count %d", active, got, f.Count())
		}
		if f.Advance() != got {
			t.Fatal("in-loop activations did not land in next set")
		}
	}
}
