package runtime_test

import (
	"math"
	"testing"

	"kimbap/internal/algorithms"
	"kimbap/internal/comm"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Dense-vs-frontier equivalence: frontier-driven execution changes which
// vertices a round visits and how reduce payloads are encoded (the v2s
// sparse sections), so CC, MIS, and MSF must produce bit-identical outputs
// with the frontier on and off, for every {v1, v2} × {local, TCP} ×
// {2, 4, 8} host combination. MSF's forest weight is a float sum whose
// per-thread addition order varies, so it only agrees to round-off; labels,
// set membership, and edge counts match exactly.

func frontierConfigs() []runtime.Config {
	var out []runtime.Config
	for _, hosts := range []int{2, 4, 8} {
		for _, tcp := range []bool{false, true} {
			for _, wire := range []comm.WireFormat{comm.WireV1, comm.WireV2} {
				out = append(out, runtime.Config{
					NumHosts: hosts, ThreadsPerHost: 2, UseTCP: tcp, Wire: wire,
					Policy: partition.CVC,
				})
			}
		}
	}
	return out
}

func TestFrontierEquivalence(t *testing.T) {
	g := gen.RMAT(7, 5, true, 7)
	n := g.NumNodes()
	type result struct {
		cc       []graph.NodeID
		mis      []bool
		misSize  int64
		msf      []graph.NodeID
		msfW     float64
		msfEdges int64
	}
	run := func(t *testing.T, cfg runtime.Config, dense bool) result {
		c, err := runtime.NewCluster(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res := result{
			cc:  make([]graph.NodeID, n),
			mis: make([]bool, n),
			msf: make([]graph.NodeID, n),
		}
		acfg := algorithms.Config{Dense: dense}
		c.Run(func(h *runtime.Host) {
			algorithms.CCSV(h, acfg, res.cc)
			ms := algorithms.MIS(h, acfg, res.mis)
			fs := algorithms.MSF(h, acfg, res.msf)
			if h.Rank == 0 {
				res.misSize = ms.Size
				res.msfW = fs.TotalWeight
				res.msfEdges = fs.ForestEdges
			}
		})
		return res
	}
	ccWant := graph.ReferenceComponents(g)
	for _, cfg := range frontierConfigs() {
		t.Run(configName(cfg), func(t *testing.T) {
			dense := run(t, cfg, true)
			sparse := run(t, cfg, false)
			for i := 0; i < n; i++ {
				if dense.cc[i] != ccWant[i] {
					t.Fatalf("dense CC label %d = %d, want reference %d", i, dense.cc[i], ccWant[i])
				}
				if sparse.cc[i] != dense.cc[i] {
					t.Fatalf("CC label %d: frontier %d != dense %d", i, sparse.cc[i], dense.cc[i])
				}
				if sparse.mis[i] != dense.mis[i] {
					t.Fatalf("MIS membership %d: frontier %v != dense %v", i, sparse.mis[i], dense.mis[i])
				}
				if sparse.msf[i] != dense.msf[i] {
					t.Fatalf("MSF label %d: frontier %d != dense %d", i, sparse.msf[i], dense.msf[i])
				}
			}
			if sparse.misSize != dense.misSize {
				t.Fatalf("MIS size: frontier %d != dense %d", sparse.misSize, dense.misSize)
			}
			if sparse.msfEdges != dense.msfEdges {
				t.Fatalf("MSF edges: frontier %d != dense %d", sparse.msfEdges, dense.msfEdges)
			}
			if math.Abs(sparse.msfW-dense.msfW) > 1e-9 {
				t.Fatalf("MSF weight: frontier %v != dense %v", sparse.msfW, dense.msfW)
			}
		})
	}
}

// Late-round traffic: CC-SV's hook reduce targets parent(parent(src)) — a
// node whose current value the sender cannot read locally — so the dense
// loop re-sends the same ineffective hook reduces round after round until
// the phase quiesces. The frontier run revisits only proxies whose parent
// changed, so its reduce-sync bytes in the late rounds of a hook phase must
// be strictly lower than the dense run's. This is the end-to-end guard on
// the whole sparse path: activation tracking, v2s sparse sections, and
// empty-section skipping together.
//
// Only the first hook phase is compared: shortcut reduces always target the
// sending host's own masters (zero wire bytes either way), and later outer
// rounds are quiescence checks with no traffic in either mode. CVC scatters
// edges across hosts so hook targets are remote. Everything is
// deterministic — fixed seed, hashed partition, and order-independent v2s
// section sizes — so exact byte comparisons are stable.
func TestFrontierLateRoundReduceBytesLower(t *testing.T) {
	g := gen.RMAT(10, 8, false, 5)
	const hosts = 4
	// Returns the summed per-round sent reduce bytes of the first hook
	// phase (the rounds before the first shortcut round).
	run := func(dense bool) []int64 {
		c, err := runtime.NewCluster(g, runtime.Config{
			NumHosts: hosts, ThreadsPerHost: 2, Policy: partition.CVC,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		perHost := make([]algorithms.CCStats, hosts)
		out := make([]graph.NodeID, g.NumNodes())
		c.Run(func(h *runtime.Host) {
			perHost[h.Rank] = algorithms.CCSV(h,
				algorithms.Config{Dense: dense, LogRounds: true}, out)
		})
		// Rounds are collective, so every host logs the same number; sum
		// each round's sent bytes across hosts.
		rounds := len(perHost[0].PerRound.ReduceBytes)
		total := make([]int64, rounds)
		for _, st := range perHost {
			if len(st.PerRound.ReduceBytes) != rounds {
				t.Fatalf("hosts disagree on round count: %d vs %d",
					len(st.PerRound.ReduceBytes), rounds)
			}
			for r, b := range st.PerRound.ReduceBytes {
				total[r] += b
			}
		}
		var phase1 []int64
		for r := 0; r < rounds && perHost[0].PerRound.Hook[r]; r++ {
			phase1 = append(phase1, total[r])
		}
		return phase1
	}
	dense := run(true)
	sparse := run(false)
	tail := func(b []int64) int64 {
		var s int64
		for _, v := range b[len(b)-max(1, len(b)/4):] {
			s += v
		}
		return s
	}
	if len(dense) < 3 {
		t.Fatalf("first hook phase ran only %d rounds; graph too small to observe sparsity", len(dense))
	}
	dTail, sTail := tail(dense), tail(sparse)
	if dTail == 0 {
		t.Fatal("dense late hook rounds sent no reduce bytes; test graph no longer exercises late traffic")
	}
	if sTail >= dTail {
		t.Fatalf("late-round reduce bytes not lower: frontier %d >= dense %d (phase rounds: dense %d, frontier %d)",
			sTail, dTail, len(dense), len(sparse))
	}
	t.Logf("late hook-round reduce bytes: dense %d, frontier %d (%.1fx lower)",
		dTail, sTail, float64(dTail)/float64(sTail))
}
