package runtime

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-size concurrent bitset. The paper's request phase uses
// one to de-duplicate node-property requests: many threads set bits, then
// one pass drains them (§4.1).
type Bitset struct {
	words []atomic.Uint64
	size  int
}

// NewBitset creates a bitset of the given size with all bits clear.
func NewBitset(size int) *Bitset {
	return &Bitset{words: make([]atomic.Uint64, (size+63)/64), size: size}
}

// Size returns the bitset capacity in bits.
func (b *Bitset) Size() int { return b.size }

// Set atomically sets bit i and reports whether it was previously clear.
func (b *Bitset) Set(i int) bool {
	mask := uint64(1) << (uint(i) % 64)
	old := b.words[i/64].Or(mask)
	return old&mask == 0
}

// Test reports whether bit i is set.
func (b *Bitset) Test(i int) bool {
	return b.words[i/64].Load()&(uint64(1)<<(uint(i)%64)) != 0
}

// Clear resets all bits.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i].Store(0)
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for i := range b.words {
		n += bits.OnesCount64(b.words[i].Load())
	}
	return n
}

// ForEachSet calls fn for every set bit in ascending order.
func (b *Bitset) ForEachSet(fn func(i int)) {
	for w := range b.words {
		word := b.words[w].Load()
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			if i < b.size {
				fn(i)
			}
			word &= word - 1
		}
	}
}
