package runtime

import "kimbap/internal/par"

// Bitset is a fixed-size concurrent bitset. The paper's request phase uses
// one to de-duplicate node-property requests: many threads set bits, then
// one pass drains them (§4.1). The frontier subsystem (frontier.go) uses a
// pair of them as its current/next active sets.
//
// The implementation lives in internal/par so the ingestion pipeline
// (graph, partition, gen — below this package in the import graph) can use
// the same bitsets for parallel mirror discovery; this alias keeps the
// runtime-facing name that the npm and algorithm layers were written
// against.
type Bitset = par.Bitset

// NewBitset creates a bitset of the given size with all bits clear.
func NewBitset(size int) *Bitset { return par.NewBitset(size) }
