package runtime_test

import (
	"testing"

	"kimbap/internal/algorithms"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Integration: a full trans-vertex algorithm over real TCP sockets — the
// whole stack (partitioning, NPM sync phases, framing) across the loopback
// network.
func TestCCSVOverTCP(t *testing.T) {
	g := gen.RMAT(8, 5, false, 6)
	c, err := runtime.NewCluster(g, runtime.Config{
		NumHosts: 3, ThreadsPerHost: 2, Policy: partition.CVC, UseTCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]graph.NodeID, g.NumNodes())
	c.Run(func(h *runtime.Host) {
		algorithms.CCSV(h, algorithms.Config{}, out)
	})
	want := graph.ReferenceComponents(g)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("node %d = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestLouvainOverTCP(t *testing.T) {
	g := gen.Communities(4, 25, 4, 1, true, 13)
	res, err := algorithms.Louvain(g, runtime.Config{
		NumHosts: 2, ThreadsPerHost: 2, UseTCP: true,
	}, algorithms.Config{}, algorithms.CDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity < 0.3 {
		t.Fatalf("modularity over TCP = %.3f", res.Modularity)
	}
}
