package runtime

// Frontier is a double-buffered active-vertex set for frontier-driven BSP
// rounds. Late CC/MIS/MSF rounds change fewer than 1% of vertices, yet a
// dense round still visits all of them; a Frontier makes round cost
// proportional to the active set instead (GraphLab's scheduling insight,
// Ligra's direction switch).
//
// Protocol per BSP round: the compute phase iterates the *current* set
// (Host.ParForActive) while reduce and broadcast callbacks Activate bits in
// the *next* set; Advance then swaps the buffers between rounds. Activate
// is a single atomic fetch-or on the underlying Bitset, so activation from
// conflict-free reduce paths needs no locks and no per-thread buffers —
// the //kimbap:conflictfree annotation is checked by kimbapvet.
type Frontier struct {
	cur, next *Bitset
	count     int // set bits in cur, computed by Advance
	// idx is the compacted list of cur's set bits, built lazily per round
	// for sparse iteration and reused across rounds.
	idx      []int32
	idxValid bool
}

// NewFrontier creates a frontier over [0, size) with both sets empty.
func NewFrontier(size int) *Frontier {
	return &Frontier{cur: NewBitset(size), next: NewBitset(size)}
}

// Size returns the vertex-space size.
func (f *Frontier) Size() int { return f.cur.Size() }

// Count returns the number of active vertices in the current set.
func (f *Frontier) Count() int { return f.count }

// CountRange returns the number of active vertices in [lo, hi) of the
// current set (e.g. the master-only prefix of a host's local ID space).
func (f *Frontier) CountRange(lo, hi int) int { return f.cur.CountRange(lo, hi) }

// IsActive reports whether vertex i is in the current set.
func (f *Frontier) IsActive(i int) bool { return f.cur.Test(i) }

// Activate adds vertex i to the next set. Safe for concurrent use from
// worker threads and from reduce/broadcast decode callbacks: the
// underlying Bitset.Set is one atomic Or, no locks.
//
//kimbap:conflictfree
func (f *Frontier) Activate(i int) { f.next.Set(i) }

// ActivateRange adds every vertex in [lo, hi) to the next set.
func (f *Frontier) ActivateRange(lo, hi int) { f.next.SetRange(lo, hi) }

// ActivateAll adds every vertex to the next set. Phases whose first round
// must be dense (e.g. after another phase changed values untracked) call
// ActivateAll followed by Advance.
func (f *Frontier) ActivateAll() { f.next.SetRange(0, f.next.Size()) }

// ActivateSet adds every vertex in b to the next set; used to seed a phase
// from an accumulated change set instead of a full activation.
func (f *Frontier) ActivateSet(b *Bitset) { b.OrInto(f.next) }

// OrCurrentInto ors the current set into dst (same size). A phase that
// narrows its frontier round by round calls this after each Advance to
// accumulate every round's changed set for the next phase's seed.
func (f *Frontier) OrCurrentInto(dst *Bitset) { f.cur.OrInto(dst) }

// Advance makes the next set current, clears the new next set, and returns
// the new current count. Call between BSP rounds, after all activations
// for the round have been synchronized (reduce + broadcast).
func (f *Frontier) Advance() int {
	f.cur, f.next = f.next, f.cur
	f.next.Clear()
	f.count = f.cur.Count()
	f.idxValid = false
	return f.count
}

// Reset empties both sets.
func (f *Frontier) Reset() {
	f.cur.Clear()
	f.next.Clear()
	f.count = 0
	f.idxValid = false
}

// MemoryFootprint returns the bytes held by the frontier's two bitsets and
// its compaction scratch, for the npm memory accounting.
func (f *Frontier) MemoryFootprint() int64 {
	return 2*int64(f.cur.Words())*8 + int64(cap(f.idx))*4
}

// compact returns the current set as an index list, rebuilding it only
// when the current set changed since the last call.
func (f *Frontier) compact() []int32 {
	if f.idxValid {
		return f.idx
	}
	f.idx = f.idx[:0]
	f.cur.ForEachSet(func(i int) { f.idx = append(f.idx, int32(i)) })
	f.idxValid = true
	return f.idx
}
