package runtime

import (
	"sync/atomic"
	"testing"

	"kimbap/internal/graph"
)

func testHost(threads int) *Host {
	return &Host{Threads: threads, pool: newWorkerPool(threads)}
}

// A drain with no in-body enqueues must process every seeded vertex exactly
// once, regardless of worker count.
func TestAsyncDrainVisitsSeedOnce(t *testing.T) {
	const n = 2000
	for _, threads := range []int{1, 2, 4, 8} {
		h := testHost(threads)
		f := NewFrontier(n)
		for i := 0; i < n; i += 3 {
			f.Activate(i)
		}
		f.Advance()
		var visits [n]atomic.Int32
		stats := h.AsyncDrain(f, AsyncOpts{}, func(_ int, node graph.NodeID, _ *AsyncCtx) {
			visits[node].Add(1)
		})
		for i := range visits {
			want := int32(0)
			if i%3 == 0 {
				want = 1
			}
			if got := visits[i].Load(); got != want {
				t.Fatalf("threads=%d: node %d visited %d times, want %d", threads, i, got, want)
			}
		}
		if stats.Seeded != int64(f.Count()) || stats.Processed != stats.Seeded {
			t.Fatalf("threads=%d: stats %+v, want Seeded=Processed=%d", threads, stats, f.Count())
		}
		h.pool.close()
	}
}

// A dependency chain seeded at one end must collapse in a single drain:
// each body enqueues its successor, and the drain only terminates once the
// whole chain has run. This is the async mode's reason to exist — the same
// chain costs N BSP rounds.
func TestAsyncDrainCascadeCollapsesChain(t *testing.T) {
	const n = 5000
	for _, threads := range []int{1, 4} {
		h := testHost(threads)
		f := NewFrontier(n)
		f.Activate(0)
		f.Advance()
		var reached [n]atomic.Int32
		stats := h.AsyncDrain(f, AsyncOpts{}, func(_ int, node graph.NodeID, cx *AsyncCtx) {
			reached[node].Add(1)
			if int(node)+1 < n {
				cx.Enqueue(node + 1)
			}
		})
		for i := range reached {
			if reached[i].Load() == 0 {
				t.Fatalf("threads=%d: chain vertex %d never processed", threads, i)
			}
		}
		if stats.Seeded != 1 || stats.Processed < n || stats.Reenqueued < n-1 {
			t.Fatalf("threads=%d: stats %+v, want Seeded=1 Processed>=%d Reenqueued>=%d",
				threads, stats, n, n-1)
		}
		h.pool.close()
	}
}

// Enqueue deduplicates: activations of a vertex that is already queued are
// dropped. One worker, with the target parked at the low-priority level so
// every activator runs before it: the first Enqueue queues it, the other
// n-2 hit the dedup bit, and the target processes exactly once.
func TestAsyncDrainEnqueueDedup(t *testing.T) {
	const n = 1000
	h := testHost(1)
	defer h.pool.close()
	f := NewFrontier(n)
	for i := 1; i < n; i++ {
		f.Activate(i)
	}
	f.Advance()
	var hits atomic.Int64
	stats := h.AsyncDrain(f, AsyncOpts{
		Levels:   2,
		Priority: func(node graph.NodeID) int { return 1 - int(min(node, 1)) },
	}, func(_ int, node graph.NodeID, cx *AsyncCtx) {
		if node == 0 {
			hits.Add(1)
			return
		}
		cx.Enqueue(0) // everyone piles onto vertex 0
	})
	if got := hits.Load(); got != 1 {
		t.Fatalf("vertex 0 processed %d times, want exactly 1", got)
	}
	if stats.Reenqueued != 1 {
		t.Fatalf("Reenqueued = %d, want 1 (dedup drops the rest)", stats.Reenqueued)
	}
}

// With a single worker, all level-0 vertices must run before any level-1
// vertex (one worker, no steals, levels scanned in order).
func TestAsyncDrainPriorityOrder(t *testing.T) {
	const n = 512
	h := testHost(1)
	defer h.pool.close()
	f := NewFrontier(n)
	for i := 0; i < n; i++ {
		f.Activate(i)
	}
	f.Advance()
	var order []graph.NodeID
	h.AsyncDrain(f, AsyncOpts{
		Levels:   2,
		Priority: func(node graph.NodeID) int { return int(node) % 2 },
	}, func(_ int, node graph.NodeID, _ *AsyncCtx) {
		order = append(order, node)
	})
	if len(order) != n {
		t.Fatalf("processed %d vertices, want %d", len(order), n)
	}
	seenHigh := false
	for _, node := range order {
		if node%2 == 1 {
			seenHigh = true
		} else if seenHigh {
			t.Fatalf("level-0 vertex %d ran after a level-1 vertex", node)
		}
	}
}

// A body that floods its own worker's deque must overflow into the spill
// set without losing work.
func TestAsyncDrainSpillOverflow(t *testing.T) {
	const n = 20000 // per-worker deque cap is n/threads+1, far below n
	h := testHost(4)
	defer h.pool.close()
	f := NewFrontier(n)
	f.Activate(0)
	f.Advance()
	var visits [n]atomic.Int32
	stats := h.AsyncDrain(f, AsyncOpts{}, func(_ int, node graph.NodeID, cx *AsyncCtx) {
		visits[node].Add(1)
		if node == 0 {
			for i := 1; i < n; i++ {
				cx.Enqueue(graph.NodeID(i))
			}
		}
	})
	for i := range visits {
		if visits[i].Load() == 0 {
			t.Fatalf("vertex %d lost (spilled but never claimed)", i)
		}
	}
	if stats.Spills == 0 {
		t.Fatalf("flooding one worker produced no spills: %+v", stats)
	}
}

// AsyncDrainBits drains an explicit bitset seed (the shortcut phase's
// pending set) with the same exactly-once guarantee.
func TestAsyncDrainBits(t *testing.T) {
	const n = 300
	h := testHost(3)
	defer h.pool.close()
	b := NewBitset(n)
	for _, i := range []int{0, 7, 63, 64, 299} {
		b.Set(i)
	}
	var visits [n]atomic.Int32
	stats := h.AsyncDrainBits(b, AsyncOpts{}, func(_ int, node graph.NodeID, _ *AsyncCtx) {
		visits[node].Add(1)
	})
	if stats.Seeded != 5 || stats.Processed != 5 {
		t.Fatalf("stats %+v, want 5 seeded and processed", stats)
	}
	for i := range visits {
		want := int32(0)
		if b.Test(i) {
			want = 1
		}
		if visits[i].Load() != want {
			t.Fatalf("vertex %d visited %d times, want %d", i, visits[i].Load(), want)
		}
	}
}

// The scheduler is reused across drains; counters and dedup state must
// reset so a second drain over the same frontier is identical.
func TestAsyncDrainReuse(t *testing.T) {
	const n = 400
	h := testHost(2)
	defer h.pool.close()
	f := NewFrontier(n)
	f.ActivateAll()
	f.Advance()
	for round := 0; round < 3; round++ {
		var count atomic.Int64
		stats := h.AsyncDrain(f, AsyncOpts{}, func(_ int, _ graph.NodeID, _ *AsyncCtx) {
			count.Add(1)
		})
		if count.Load() != n || stats.Processed != n || stats.Seeded != n {
			t.Fatalf("round %d: count=%d stats=%+v, want %d", round, count.Load(), stats, n)
		}
	}
}
