package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransposeDirected(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 3.5)
	g := b.Build()
	tp := Transpose(g)
	if !tp.HasEdge(1, 0) || !tp.HasEdge(2, 1) {
		t.Fatal("edges not reversed")
	}
	if tp.HasEdge(0, 1) {
		t.Fatal("original edge survived transposition")
	}
	if w := tp.EdgeWeights(1)[0]; w != 2.5 {
		t.Fatalf("weight lost: %v", w)
	}
}

// Property: transposing twice restores the graph; transposing a symmetric
// graph is an identity.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, r.Intn(40)+2, r.Intn(150), seed%2 == 0)
		if !graphsEqual(g, Transpose(Transpose(g))) {
			return false
		}
		b := NewBuilder(g.NumNodes())
		for _, e := range g.Edges() {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		}
		b.Symmetrize()
		b.Dedup()
		sym := b.Build()
		return graphsEqual(sym, Transpose(sym))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3; induce on {0,1,3}.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.Symmetrize()
	g := b.Build()
	sub, mapping := InducedSubgraph(g, []NodeID{0, 1, 3})
	if sub.NumNodes() != 3 {
		t.Fatalf("nodes = %d", sub.NumNodes())
	}
	// Only the 0-1 edge survives (both directions).
	if sub.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 0) {
		t.Fatal("0-1 edge missing")
	}
	if mapping[2] != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
}

func TestInducedSubgraphRejectsDuplicates(t *testing.T) {
	g := mkTriangle(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate nodes accepted")
		}
	}()
	InducedSubgraph(g, []NodeID{0, 0})
}

func TestDegreeHistogram(t *testing.T) {
	// Star with 5 leaves: hub degree 5, leaves degree 1.
	b := NewBuilder(6)
	for i := 1; i <= 5; i++ {
		b.AddEdge(0, NodeID(i))
	}
	b.Symmetrize()
	g := b.Build()
	hist := DegreeHistogram(g)
	if hist[5] != 1 || hist[1] != 5 {
		t.Fatalf("hist = %v", hist)
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != g.NumNodes() {
		t.Fatalf("histogram covers %d nodes", total)
	}
}
