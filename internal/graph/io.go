package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text edge-list format: one edge per line, "src dst" or "src dst weight";
// lines starting with '#' or '%' are comments. Node count is inferred as
// max ID + 1 unless a leading "nodes N" directive is present.
//
// Binary format ("KMB1"): magic, node count, edge count, weighted flag,
// CSR offsets, destinations, and (if weighted) weights, all little-endian.

// ReadEdgeList parses a text edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	weighted := false
	numNodes := 0
	maxID := NodeID(0)
	seen := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "nodes" && len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: bad nodes directive %q: %w", line, err)
			}
			numNodes = n
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad src in %q: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad dst in %q: %w", line, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight in %q: %w", line, err)
			}
			weighted = true
		}
		e := Edge{Src: NodeID(src), Dst: NodeID(dst), Weight: w}
		edges = append(edges, e)
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		seen = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numNodes == 0 && seen {
		numNodes = int(maxID) + 1
	}
	return FromEdges(numNodes, edges, weighted), nil
}

// WriteEdgeList writes g as a text edge list with a nodes directive,
// suitable for ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", n, g.Dst(e), g.Weight(e))
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", n, g.Dst(e))
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

var binMagic = [4]byte{'K', 'M', 'B', '1'}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{uint64(g.NumNodes()), uint64(g.NumEdges())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	wflag := uint8(0)
	if g.Weighted() {
		wflag = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, wflag); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.dsts); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic[:])
	}
	var nodes, edges uint64
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &edges); err != nil {
		return nil, err
	}
	var wflag uint8
	if err := binary.Read(br, binary.LittleEndian, &wflag); err != nil {
		return nil, err
	}
	g := &Graph{
		offsets: make([]int64, nodes+1),
		dsts:    make([]NodeID, edges),
	}
	if err := binary.Read(br, binary.LittleEndian, g.offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.dsts); err != nil {
		return nil, err
	}
	if wflag == 1 {
		g.weights = make([]float64, edges)
		if err := binary.Read(br, binary.LittleEndian, g.weights); err != nil {
			return nil, err
		}
	}
	if g.offsets[len(g.offsets)-1] != int64(edges) {
		return nil, fmt.Errorf("graph: corrupt offsets: last=%d want %d",
			g.offsets[len(g.offsets)-1], edges)
	}
	return g, nil
}

// SaveBinary writes g to the named file in binary format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteBinary(f, g); err != nil {
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from a binary file written by SaveBinary.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
