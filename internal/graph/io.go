package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strconv"
	"strings"
)

// Text edge-list format: one edge per line, "src dst" or "src dst weight";
// lines starting with '#' or '%' are comments. Node count is inferred as
// max ID + 1 unless a leading "nodes N" directive is present; with a
// directive, every endpoint must be < N (the CSR indexes by ID, so an
// out-of-range edge would corrupt every downstream pass).
//
// Binary format ("KMB1"): magic, node count, edge count, weighted flag,
// CSR offsets, destinations, and (if weighted) weights, all little-endian.
// The out-of-core block format ("KMB2") lives in blockfile.go.

// ReadEdgeList parses a text edge list from r.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	weighted := false
	numNodes := 0
	declared := false
	maxID := NodeID(0)
	seen := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "nodes" && len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || int64(n) > math.MaxUint32 {
				return nil, fmt.Errorf("graph: bad nodes directive %q", line)
			}
			numNodes = n
			declared = true
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: malformed edge line %q", line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad src in %q: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: bad dst in %q: %w", line, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight in %q: %w", line, err)
			}
			weighted = true
		}
		e := Edge{Src: NodeID(src), Dst: NodeID(dst), Weight: w}
		edges = append(edges, e)
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		seen = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared && seen && int64(maxID) >= int64(numNodes) {
		return nil, fmt.Errorf("graph: edge endpoint %d out of range for declared nodes %d",
			maxID, numNodes)
	}
	if numNodes == 0 && seen {
		numNodes = int(maxID) + 1
	}
	return FromEdges(numNodes, edges, weighted), nil
}

// WriteEdgeList writes g as a text edge list with a nodes directive,
// suitable for ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", n, g.Dst(e), g.Weight(e))
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", n, g.Dst(e))
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

var binMagic = [4]byte{'K', 'M', 'B', '1'}

// kmb1HdrLen is the KMB1 fixed header: magic, node count, edge count,
// weighted flag.
const kmb1HdrLen = 4 + 8 + 8 + 1

// ioChunk is the scratch size the binary codecs stream arrays through:
// big enough to amortize reads, small enough to be pool-friendly.
const ioChunk = 1 << 20

// Little-endian array codecs. Arrays are encoded element-wise with
// explicit byte-slice stores/loads — no reflection (binary.Read on a
// slice walks reflect.Value per element, an order of magnitude slower)
// and no unsafe. Shared by KMB1 (below) and KMB2 (blockfile.go).

func encodeNodeIDs(b []byte, src []NodeID) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
}

func encodeInt64s(b []byte, src []int64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
}

func encodeFloat64s(b []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
}

func decodeNodeIDs(dst []NodeID, b []byte) {
	for i := range dst {
		dst[i] = NodeID(binary.LittleEndian.Uint32(b[i*4:]))
	}
}

func decodeInt64s(dst []int64, b []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

func decodeFloat64s(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, ioChunk)
	var hdr [kmb1HdrLen]byte
	copy(hdr[0:4], binMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(g.NumEdges()))
	if g.Weighted() {
		hdr[20] = 1
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeArray(bw, g.offsets, 8, encodeInt64s); err != nil {
		return err
	}
	if err := writeArray(bw, g.dsts, 4, encodeNodeIDs); err != nil {
		return err
	}
	if g.Weighted() {
		if err := writeArray(bw, g.weights, 8, encodeFloat64s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeArray streams an array through a bounded scratch buffer with the
// chunked element-wise encoders above.
func writeArray[T any](bw *bufio.Writer, vals []T, width int,
	encode func([]byte, []T)) error {

	if len(vals) == 0 {
		return nil
	}
	scratch := make([]byte, min(ioChunk, len(vals)*width))
	for len(vals) > 0 {
		n := min(len(scratch)/width, len(vals))
		encode(scratch[:n*width], vals[:n])
		if _, err := bw.Write(scratch[:n*width]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// remainingSize reports how many unread bytes r holds, when knowable: a
// bytes/strings.Reader exposes Len, a regular file its Stat size minus
// the current offset. ReadBinary uses it to validate a header's claimed
// array sizes against reality *before* allocating — a corrupt 16-byte
// header must not drive a multi-gigabyte make.
func remainingSize(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len()), true
	case *os.File:
		st, err := v.Stat()
		if err != nil || !st.Mode().IsRegular() {
			return 0, false
		}
		pos, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, false
		}
		return st.Size() - pos, true
	}
	return 0, false
}

// ReadBinary reads a graph written by WriteBinary. The decoded structure
// is fully validated: header counts against the input size (when the
// reader's size is knowable) or against bytes actually read (when not),
// offsets for monotonicity, and destinations against the node count —
// corrupt input yields an error, never a panic or an over-allocation.
func ReadBinary(r io.Reader) (*Graph, error) {
	remaining, sized := remainingSize(r)
	br := bufio.NewReaderSize(r, ioChunk)
	var hdr [kmb1HdrLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[0:4])
	}
	nodes := binary.LittleEndian.Uint64(hdr[4:12])
	edges := binary.LittleEndian.Uint64(hdr[12:20])
	wflag := hdr[20]
	if wflag > 1 {
		return nil, fmt.Errorf("graph: bad weighted flag %d", wflag)
	}
	if nodes > math.MaxUint32 {
		return nil, fmt.Errorf("graph: node count %d exceeds 32-bit IDs", nodes)
	}
	if edges > math.MaxInt64/16 {
		return nil, fmt.Errorf("graph: implausible edge count %d", edges)
	}
	payload := (int64(nodes)+1)*8 + int64(edges)*4
	if wflag == 1 {
		payload += int64(edges) * 8
	}
	if sized {
		if want := int64(kmb1HdrLen) + payload; remaining != want {
			return nil, fmt.Errorf("graph: header claims %d nodes / %d edges (%d bytes), input has %d",
				nodes, edges, want, remaining+int64(kmb1HdrLen))
		}
	}
	g := &Graph{}
	var err error
	if g.offsets, err = readInt64Array(br, int64(nodes)+1, sized); err != nil {
		return nil, err
	}
	if g.dsts, err = readNodeIDArray(br, int64(edges), sized); err != nil {
		return nil, err
	}
	if wflag == 1 {
		if g.weights, err = readFloat64Array(br, int64(edges), sized); err != nil {
			return nil, err
		}
	}
	if g.offsets[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt offsets: first=%d want 0", g.offsets[0])
	}
	for i := 1; i < len(g.offsets); i++ {
		if g.offsets[i] < g.offsets[i-1] {
			return nil, fmt.Errorf("graph: corrupt offsets: offsets[%d]=%d < offsets[%d]=%d",
				i, g.offsets[i], i-1, g.offsets[i-1])
		}
	}
	if g.offsets[len(g.offsets)-1] != int64(edges) {
		return nil, fmt.Errorf("graph: corrupt offsets: last=%d want %d",
			g.offsets[len(g.offsets)-1], edges)
	}
	for _, d := range g.dsts {
		if uint64(d) >= nodes {
			return nil, fmt.Errorf("graph: corrupt dsts: destination %d out of range for %d nodes", d, nodes)
		}
	}
	return g, nil
}

// readArray streams count width-byte values through a bounded scratch
// buffer. With a size-verified input the destination is allocated
// up-front and filled by index; otherwise it grows chunk by chunk, so
// memory tracks bytes actually read instead of whatever the header
// claims.
func readArray[T any](br io.Reader, count int64, sized bool, width int,
	decode func([]T, []byte)) ([]T, error) {

	var out []T
	if sized {
		out = make([]T, 0, count)
	} else {
		// Non-nil even for count 0: a zero-edge weight column must stay
		// distinguishable from "unweighted" (Weighted checks for nil).
		out = []T{}
	}
	scratch := make([]byte, min(int64(ioChunk), count*int64(width)))
	for int64(len(out)) < count {
		n := int(min(int64(len(scratch)/width), count-int64(len(out))))
		b := scratch[:n*width]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		base := len(out)
		out = slices.Grow(out, n)[:base+n]
		decode(out[base:], b)
	}
	return out, nil
}

func readInt64Array(br io.Reader, count int64, sized bool) ([]int64, error) {
	return readArray(br, count, sized, 8, decodeInt64s)
}

func readNodeIDArray(br io.Reader, count int64, sized bool) ([]NodeID, error) {
	return readArray(br, count, sized, 4, decodeNodeIDs)
}

func readFloat64Array(br io.Reader, count int64, sized bool) ([]float64, error) {
	return readArray(br, count, sized, 8, decodeFloat64s)
}

// SaveBinary writes g to the named file in binary format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteBinary(f, g); err != nil {
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from a binary file written by SaveBinary.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
