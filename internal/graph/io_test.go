package graph

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// Unit coverage for the hardened decoders: ReadBinary validates header
// counts against the input size before allocating, and ReadEdgeList
// rejects endpoints outside a declared node count.

func TestBinaryRoundTrip(t *testing.T) {
	for _, ec := range []edgeCase{{}, {weighted: true, dups: true, selfLoops: true}} {
		b := NewBuilder(31)
		fillBuilder(b, ec, 31, 200, 17)
		want := b.Build()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, want); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsIdentical(t, want, got)
		// Unsized reader: same bytes through the chunked-growth path.
		got, err = ReadBinary(io.LimitReader(bytes.NewReader(buf.Bytes()), int64(buf.Len())))
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsIdentical(t, want, got)
	}
}

// TestReadBinaryRejectsLyingHeader pins the satellite fix: a tiny input
// whose header claims a huge graph must fail the size check up front —
// before the claimed counts drive any allocation.
func TestReadBinaryRejectsLyingHeader(t *testing.T) {
	hdr := make([]byte, kmb1HdrLen)
	copy(hdr, binMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], 1<<30)  // a billion nodes
	binary.LittleEndian.PutUint64(hdr[12:20], 1<<40) // a trillion edges
	data := append(hdr, 0, 0, 0, 0)

	if _, err := ReadBinary(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "header claims") {
		t.Fatalf("sized lying header: err = %v", err)
	}
	// Unsized path: no size to check against, but reading hits EOF after
	// the real bytes; allocation tracked those bytes, not the claim.
	if _, err := ReadBinary(io.LimitReader(bytes.NewReader(data), int64(len(data)))); err == nil {
		t.Fatal("unsized lying header: expected read error")
	}

	// Implausible counts are rejected even without a sized reader.
	binary.LittleEndian.PutUint64(hdr[4:12], 1<<40)
	if _, err := ReadBinary(bytes.NewReader(hdr)); err == nil ||
		!strings.Contains(err.Error(), "32-bit") {
		t.Fatalf("oversized node count: err = %v", err)
	}
}

func TestReadBinaryRejectsCorruptStructure(t *testing.T) {
	b := NewBuilder(6)
	fillBuilder(b, edgeCase{}, 6, 30, 23)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Break offsets monotonicity.
	mut := bytes.Clone(good)
	binary.LittleEndian.PutUint64(mut[kmb1HdrLen+8:], uint64(g.NumEdges()+1000))
	if _, err := ReadBinary(bytes.NewReader(mut)); err == nil ||
		!strings.Contains(err.Error(), "offsets") {
		t.Fatalf("corrupt offsets: err = %v", err)
	}

	// Break a destination (dsts live after the offsets array).
	mut = bytes.Clone(good)
	dstsOff := kmb1HdrLen + (g.NumNodes()+1)*8
	binary.LittleEndian.PutUint32(mut[dstsOff:], 999)
	if _, err := ReadBinary(bytes.NewReader(mut)); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("corrupt dst: err = %v", err)
	}

	// Truncation.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-4])); err == nil {
		t.Fatal("truncated input: expected error")
	}
}

// TestReadEdgeListDeclaredRange pins the satellite fix: with a nodes
// directive, out-of-range endpoints are an error instead of silently
// growing the graph.
func TestReadEdgeListDeclaredRange(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("nodes 3\n0 1\n2 5\n")); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("dst beyond declared: err = %v", err)
	}
	if _, err := ReadEdgeList(strings.NewReader("0 1\n7 2\nnodes 3\n")); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("late directive: err = %v", err)
	}
	g, err := ReadEdgeList(strings.NewReader("nodes 3\n0 1\n2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("in-range graph = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Without a directive the node count is still inferred from max ID.
	g, err = ReadEdgeList(strings.NewReader("0 1\n7 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Fatalf("inferred nodes = %d, want 8", g.NumNodes())
	}
	if _, err := ReadEdgeList(strings.NewReader("nodes -3\n")); err == nil ||
		!strings.Contains(err.Error(), "bad nodes directive") {
		t.Fatalf("negative directive: err = %v", err)
	}
}
