package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	bld := NewBuilder(n)
	for i := 0; i < m; i++ {
		bld.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	bld.Symmetrize()
	return bld.Build()
}

func BenchmarkBuildCSR(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := make([]Edge, 100000)
	for i := range edges {
		edges[i] = Edge{Src: NodeID(r.Intn(10000)), Dst: NodeID(r.Intn(10000)), Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(10000, edges, false)
	}
}

func BenchmarkNeighborIteration(b *testing.B) {
	g := benchGraph(b, 10000, 100000)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		n := NodeID(i % g.NumNodes())
		for _, v := range g.Neighbors(n) {
			sum += int(v)
		}
	}
	_ = sum
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(i%g.NumNodes()), NodeID((i*7)%g.NumNodes()))
	}
}

func BenchmarkReferenceComponents(b *testing.B) {
	g := benchGraph(b, 10000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceComponents(g)
	}
}
