//go:build linux

package graph

import (
	"os"
	"syscall"
)

// mmapHandle is a read-only mapping of a whole file. On Linux the
// streaming sources decode blocks straight out of the mapping — the page
// cache is the only copy of cold file bytes, and re-scans of a warm file
// do no read syscalls at all.
type mmapHandle struct {
	data []byte
}

// mmapFile maps size bytes of f read-only. Callers fall back to ReadAt
// on any error (exotic filesystems, size 0, address-space pressure).
func mmapFile(f *os.File, size int64) (*mmapHandle, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mmapHandle{data: data}, nil
}

func (h *mmapHandle) close() {
	if h.data != nil {
		_ = syscall.Munmap(h.data)
		h.data = nil
	}
}
