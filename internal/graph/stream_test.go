package graph

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// The streaming build promises bit-identical output to the in-memory
// pipeline for the same edge sequence, from every source format, at
// every worker count and block/shard size. These tests sweep that
// promise across {text, KMB1, KMB2} × {1, 4, 8} workers × {mmap,
// ReadAt} × misaligned block boundaries and comment-heavy text.

// edgeListText renders builder columns as a text edge list in insertion
// order. decorate interleaves comments, blank lines, stray whitespace,
// and CR line endings — the comment-heavy shape shard parsing must
// handle at arbitrary boundaries.
func edgeListText(b *Builder, n int, decorate bool) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# edges follow\nnodes %d\n", n)
	for i := range b.srcs {
		if decorate && i%5 == 0 {
			buf.WriteString("# interleaved comment\n\n")
		}
		if decorate && i%7 == 0 {
			buf.WriteString(" \t")
		}
		if b.weights != nil {
			fmt.Fprintf(&buf, "%d\t%d %g", b.srcs[i], b.dsts[i], b.weights[i])
		} else {
			fmt.Fprintf(&buf, "%d %d", b.srcs[i], b.dsts[i])
		}
		if decorate && i%11 == 0 {
			buf.WriteString(" \r")
		}
		buf.WriteByte('\n')
	}
	if decorate {
		buf.WriteString("% trailing comment without newline")
	}
	return buf.Bytes()
}

func writeKMB2Columns(t *testing.T, path string, n int, srcs, dsts []NodeID,
	weights []float64, blockEdges int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	kw, err := NewKMB2Writer(f, n, weights != nil, blockEdges)
	if err != nil {
		t.Fatal(err)
	}
	if err := kw.Append(srcs, dsts, weights); err != nil {
		t.Fatal(err)
	}
	if err := kw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

type sourceCloser interface {
	BlockSource
	Close() error
}

func TestStreamBuildMatchesInMemory(t *testing.T) {
	const n, m = 97, 600
	cases := []edgeCase{
		{},
		{dups: true, selfLoops: true},
		{weighted: true, dups: true},
		{weighted: true, selfLoops: true, emptyTail: true},
	}
	for _, ec := range cases {
		ref := NewBuilder(n)
		fillBuilder(ref, ec, n, m, 42)
		srcs := slices.Clone(ref.srcs)
		dsts := slices.Clone(ref.dsts)
		weights := slices.Clone(ref.weights)
		want := ref.BuildSerial()

		dir := t.TempDir()
		textPlain := filepath.Join(dir, "plain.txt")
		textDecorated := filepath.Join(dir, "decorated.txt")
		kmb1Path := filepath.Join(dir, "g.kmb1")
		kmb2Small := filepath.Join(dir, "small.kmb2")
		kmb2Default := filepath.Join(dir, "default.kmb2")
		tmp := NewBuilder(n)
		tmp.srcs, tmp.dsts, tmp.weights = srcs, dsts, weights
		if err := os.WriteFile(textPlain, edgeListText(tmp, n, false), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(textDecorated, edgeListText(tmp, n, true), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := SaveBinary(kmb1Path, want); err != nil {
			t.Fatal(err)
		}
		// blockEdges 7 forces many blocks with a partial tail; the default
		// puts everything in one block.
		writeKMB2Columns(t, kmb2Small, n, srcs, dsts, weights, 7)
		writeKMB2Columns(t, kmb2Default, n, srcs, dsts, weights, 0)

		sources := []struct {
			name string
			open func() (sourceCloser, error)
		}{
			{"text/plain/mmap", func() (sourceCloser, error) {
				return OpenTextConfig(textPlain, TextConfig{ShardBytes: 64})
			}},
			{"text/plain/readat", func() (sourceCloser, error) {
				return OpenTextConfig(textPlain, TextConfig{ShardBytes: 64, NoMmap: true})
			}},
			{"text/decorated/mmap", func() (sourceCloser, error) {
				return OpenTextConfig(textDecorated, TextConfig{ShardBytes: 17})
			}},
			{"text/decorated/oneshard", func() (sourceCloser, error) {
				return OpenText(textDecorated)
			}},
			{"kmb1/mmap", func() (sourceCloser, error) {
				return OpenKMB1Config(kmb1Path, KMB1Config{BlockEdges: 5})
			}},
			{"kmb1/readat", func() (sourceCloser, error) {
				return OpenKMB1Config(kmb1Path, KMB1Config{BlockEdges: 5, NoMmap: true})
			}},
			{"kmb1/default", func() (sourceCloser, error) {
				return OpenKMB1(kmb1Path)
			}},
			{"kmb2/small/mmap", func() (sourceCloser, error) {
				return OpenKMB2(kmb2Small)
			}},
			{"kmb2/small/readat", func() (sourceCloser, error) {
				return OpenKMB2ReadAt(kmb2Small)
			}},
			{"kmb2/default/mmap", func() (sourceCloser, error) {
				return OpenKMB2(kmb2Default)
			}},
		}
		// KMB1 streams edges in CSR order, so its reference is the
		// already-built graph rebuilt from its own edge order — which is
		// still bit-identical to want because the final adjacency sort is a
		// total order. The direct comparison below holds for all sources.
		for _, srcSpec := range sources {
			src, err := srcSpec.open()
			if err != nil {
				t.Fatalf("%s/%s: open: %v", ec.name(), srcSpec.name, err)
			}
			for _, w := range []int{1, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", ec.name(), srcSpec.name, w), func(t *testing.T) {
					got, err := NewStreamBuilder(src).SetWorkers(w).Build()
					if err != nil {
						t.Fatal(err)
					}
					requireGraphsIdentical(t, want, got)
				})
			}
			if err := src.Close(); err != nil {
				t.Fatalf("%s: close: %v", srcSpec.name, err)
			}
		}
	}
}

func TestStreamBuildEmpty(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenText(empty)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	g, err := NewStreamBuilder(ts).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty stream build = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}

	// Declared nodes, zero edges: the node count must survive streaming.
	edgeless := filepath.Join(dir, "edgeless.txt")
	if err := os.WriteFile(edgeless, []byte("nodes 5\n# nothing else\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts2, err := OpenText(edgeless)
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	g, err = NewStreamBuilder(ts2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("edgeless stream build = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}

	// Single-edge weighted KMB2 file: weightedness survives the round trip.
	wantEmpty := NewBuilder(3)
	wantEmpty.AddWeightedEdge(0, 1, 2)
	ge := wantEmpty.Build()
	kmb2 := filepath.Join(dir, "one.kmb2")
	if err := SaveKMB2(kmb2, ge, 0); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKMB2(kmb2, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsIdentical(t, ge, got)
}

func TestStreamTextMatchesReadEdgeList(t *testing.T) {
	const n, m = 53, 400
	b := NewBuilder(n)
	fillBuilder(b, edgeCase{weighted: true, dups: true}, n, m, 9)
	data := edgeListText(b, n, true)

	want, err := ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenTextConfig(path, TextConfig{ShardBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	got, err := NewStreamBuilder(ts).SetWorkers(4).Build()
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsIdentical(t, want, got)
}

func TestTextSourceErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	buildFrom := func(ts *TextSource) error {
		defer ts.Close()
		_, err := NewStreamBuilder(ts).SetWorkers(2).Build()
		return err
	}

	if _, err := OpenText(write("nodirective.txt", "0 1\n1 2\n")); err == nil ||
		!strings.Contains(err.Error(), "nodes directive") {
		t.Fatalf("missing directive: err = %v", err)
	}
	// …but an explicit count stands in for the directive.
	ts, err := OpenTextConfig(filepath.Join(dir, "nodirective.txt"), TextConfig{NumNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := buildFrom(ts); err != nil {
		t.Fatalf("explicit NumNodes: %v", err)
	}

	if _, err := OpenTextConfig(write("conflict.txt", "nodes 4\n0 1\n"),
		TextConfig{NumNodes: 9}); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("conflicting config: err = %v", err)
	}

	ts, err = OpenText(write("range.txt", "nodes 3\n0 1\n1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := buildFrom(ts); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range endpoint: err = %v", err)
	}

	ts, err = OpenText(write("mixed.txt", "nodes 3\n0 1 2.5\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := buildFrom(ts); err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Fatalf("mixed weightedness: err = %v", err)
	}

	ts, err = OpenText(write("badfield.txt", "nodes 3\n0 x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := buildFrom(ts); err == nil || !strings.Contains(err.Error(), "bad dst") {
		t.Fatalf("bad dst: err = %v", err)
	}

	ts, err = OpenText(write("extra.txt", "nodes 3\n0 1 2.5 9\n"))
	if err == nil {
		err = buildFrom(ts)
	}
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("4-field line: err = %v", err)
	}
}

func TestKMB2Errors(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder(20)
	fillBuilder(b, edgeCase{weighted: true}, 20, 100, 5)
	g := b.Build()
	path := filepath.Join(dir, "g.kmb2")
	if err := SaveKMB2(path, g, 16); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(data []byte) error {
		p := filepath.Join(dir, "mut.kmb2")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenKMB2(p)
		if err != nil {
			return err
		}
		defer s.Close()
		_, err = NewStreamBuilder(s).Build()
		return err
	}

	// Bad magic.
	mut := slices.Clone(good)
	mut[0] = 'X'
	if err := reopen(mut); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}

	// Header bit flip lands on the header CRC.
	mut = slices.Clone(good)
	mut[16] ^= 0x40
	if err := reopen(mut); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("header corruption: err = %v", err)
	}

	// Payload bit flip lands on that block's payload CRC.
	mut = slices.Clone(good)
	mut[kmb2Page+kmb2BlockHdrLen+5] ^= 0x01
	if err := reopen(mut); err == nil || !strings.Contains(err.Error(), "payload checksum") {
		t.Fatalf("payload corruption: err = %v", err)
	}

	// Truncation is caught by the exact size check before any block reads.
	if err := reopen(good[:len(good)-kmb2Page]); err == nil ||
		!strings.Contains(err.Error(), "header implies") {
		t.Fatalf("truncation: err = %v", err)
	}

	// A header claiming enormous blocks must be rejected before any
	// allocation is sized from it.
	mut = slices.Clone(good)
	hdr, _ := decodeKMB2Header(mut)
	hdr.blockEdges = maxBlockEdges + 1
	hdr.encode(mut)
	if err := reopen(mut); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized blockEdges: err = %v", err)
	}
}

func TestKMB1SourceErrors(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder(10)
	fillBuilder(b, edgeCase{}, 10, 50, 5)
	g := b.Build()
	path := filepath.Join(dir, "g.kmb1")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reopen := func(data []byte) error {
		p := filepath.Join(dir, "mut.kmb1")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenKMB1(p)
		if err != nil {
			return err
		}
		return s.Close()
	}
	if err := reopen(good[:len(good)-3]); err == nil || !strings.Contains(err.Error(), "file has") {
		t.Fatalf("truncation: err = %v", err)
	}
	mut := slices.Clone(good)
	mut[2] = 'X'
	if err := reopen(mut); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
	// Corrupt offsets (non-monotonic) are rejected at open.
	mut = slices.Clone(good)
	mut[kmb1HdrLen+8] = 0xFF
	if err := reopen(mut); err == nil || !strings.Contains(err.Error(), "offsets") {
		t.Fatalf("corrupt offsets: err = %v", err)
	}
}

// TestKMB2RoundTrip pins SaveKMB2 → {LoadKMB2, StreamBuilder} as exact
// inverses, including mmap-vs-ReadAt identity.
func TestKMB2RoundTrip(t *testing.T) {
	const n, m = 97, 600
	for _, ec := range []edgeCase{{}, {weighted: true, dups: true}} {
		b := NewBuilder(n)
		fillBuilder(b, ec, n, m, 11)
		want := b.Build()
		path := filepath.Join(t.TempDir(), "g.kmb2")
		if err := SaveKMB2(path, want, 100); err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			got, err := LoadKMB2(path, w)
			if err != nil {
				t.Fatal(err)
			}
			requireGraphsIdentical(t, want, got)
		}
		s1, err := OpenKMB2(path)
		if err != nil {
			t.Fatal(err)
		}
		defer s1.Close()
		s2, err := OpenKMB2ReadAt(path)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if s2.Mapped() {
			t.Fatal("OpenKMB2ReadAt produced a mapped source")
		}
		g1, err := NewStreamBuilder(s1).SetWorkers(4).Build()
		if err != nil {
			t.Fatal(err)
		}
		g2, err := NewStreamBuilder(s2).SetWorkers(4).Build()
		if err != nil {
			t.Fatal(err)
		}
		requireGraphsIdentical(t, want, g1)
		requireGraphsIdentical(t, g1, g2)
	}
}

// TestStreamRescan pins the BlockSource contract the two-scan build
// depends on: a second scan yields the identical edge sequence.
func TestStreamRescan(t *testing.T) {
	b := NewBuilder(10)
	fillBuilder(b, edgeCase{weighted: true}, 10, 60, 3)
	g := b.Build()
	path := filepath.Join(t.TempDir(), "g.kmb2")
	if err := SaveKMB2(path, g, 8); err != nil {
		t.Fatal(err)
	}
	s, err := OpenKMB2(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Two consecutive builds over the same source: both must succeed and
	// agree (the source is scanned four times in total).
	g1, err := NewStreamBuilder(s).SetWorkers(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewStreamBuilder(s).SetWorkers(3).Build()
	if err != nil {
		t.Fatal(err)
	}
	requireGraphsIdentical(t, g, g1)
	requireGraphsIdentical(t, g1, g2)
}
