package graph

// In-place tandem sort of adjacency columns. The old implementation
// allocated an index permutation plus two copy-out slices per node — three
// allocations and a sort.Slice closure for every node in the graph. This
// one sorts the two columns directly: quicksort with a median-of-three
// Hoare partition, recursing into the smaller side (O(log n) stack on any
// input) and finishing short runs with insertion sort. Both the serial and
// parallel builds call it, and the (dst, weight) order is total up to fully
// equal entries, so the sorted columns are unique — the root of the
// bit-identity guarantee across worker counts.

// dwLess orders adjacency entries by destination, then weight.
func dwLess(d1 NodeID, w1 float64, d2 NodeID, w2 float64) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return w1 < w2
}

// sortDstWeight sorts d and w in tandem by (dst, weight) ascending.
func sortDstWeight(d []NodeID, w []float64) {
	for len(d) > 16 {
		p := partitionDstWeight(d, w)
		if p+1 <= len(d)-(p+1) {
			sortDstWeight(d[:p+1], w[:p+1])
			d, w = d[p+1:], w[p+1:]
		} else {
			sortDstWeight(d[p+1:], w[p+1:])
			d, w = d[:p+1], w[:p+1]
		}
	}
	for i := 1; i < len(d); i++ {
		dv, wv := d[i], w[i]
		j := i - 1
		for j >= 0 && dwLess(dv, wv, d[j], w[j]) {
			d[j+1], w[j+1] = d[j], w[j]
			j--
		}
		d[j+1], w[j+1] = dv, wv
	}
}

// partitionDstWeight Hoare-partitions around a median-of-three pivot,
// returning p such that every entry of [0, p] is <= every entry of
// (p, len); both sides are non-empty for len >= 2.
func partitionDstWeight(d []NodeID, w []float64) int {
	mid, last := len(d)/2, len(d)-1
	if dwLess(d[mid], w[mid], d[0], w[0]) {
		d[0], d[mid] = d[mid], d[0]
		w[0], w[mid] = w[mid], w[0]
	}
	if dwLess(d[last], w[last], d[0], w[0]) {
		d[0], d[last] = d[last], d[0]
		w[0], w[last] = w[last], w[0]
	}
	if dwLess(d[last], w[last], d[mid], w[mid]) {
		d[mid], d[last] = d[last], d[mid]
		w[mid], w[last] = w[last], w[mid]
	}
	pd, pw := d[mid], w[mid]
	i, j := 0, last
	for {
		for dwLess(d[i], w[i], pd, pw) {
			i++
		}
		for dwLess(pd, pw, d[j], w[j]) {
			j--
		}
		if i >= j {
			return j
		}
		d[i], d[j] = d[j], d[i]
		w[i], w[j] = w[j], w[i]
		i++
		j--
	}
}
