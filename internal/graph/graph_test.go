package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mkTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.Symmetrize()
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("empty graph max degree = %d", g.MaxDegree())
	}
}

func TestBuilderBasics(t *testing.T) {
	g := mkTriangle(t)
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6 (symmetrized triangle)", g.NumEdges())
	}
	for n := NodeID(0); n < 3; n++ {
		if g.Degree(n) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", n, g.Degree(n))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("symmetrized edges missing")
	}
	if g.HasEdge(0, 0) {
		t.Error("unexpected self loop")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(0, 2)
	g := b.Build()
	want := []NodeID{1, 2, 3, 4}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
}

func TestWeightedBuild(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 2, 2.5)
	b.AddWeightedEdge(0, 1, 1.5)
	g := b.Build()
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	ns := g.Neighbors(0)
	ws := g.EdgeWeights(0)
	if ns[0] != 1 || ws[0] != 1.5 || ns[1] != 2 || ws[1] != 2.5 {
		t.Fatalf("weighted adjacency mismatch: ns=%v ws=%v", ns, ws)
	}
	if g.TotalWeight() != 4.0 {
		t.Fatalf("TotalWeight = %v, want 4", g.TotalWeight())
	}
}

func TestDedup(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.Dedup()
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges after dedup = %d, want 2", g.NumEdges())
	}
}

func TestSymmetrizeSkipsSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.Symmetrize()
	g := b.Build()
	if g.NumEdges() != 3 { // 0->0, 0->1, 1->0
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestBuildPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on out-of-range edge")
		}
	}()
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	b.Build()
}

func TestStats(t *testing.T) {
	g := mkTriangle(t)
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Edges != 6 || s.MaxDegree != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 2.0 {
		t.Fatalf("avg degree = %v, want 2", s.AvgDegree)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := mkTriangle(t)
	edges := g.Edges()
	g2 := FromEdges(g.NumNodes(), edges, false)
	if !graphsEqual(g, g2) {
		t.Fatal("FromEdges(Edges()) != original")
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for n := 0; n < a.NumNodes(); n++ {
		if !reflect.DeepEqual(a.Neighbors(NodeID(n)), b.Neighbors(NodeID(n))) {
			return false
		}
		aw, bw := a.EdgeWeights(NodeID(n)), b.EdgeWeights(NodeID(n))
		for i := range aw {
			if aw[i] != bw[i] {
				return false
			}
		}
	}
	return true
}

func randomGraph(r *rand.Rand, n, m int, weighted bool) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		s, d := NodeID(r.Intn(n)), NodeID(r.Intn(n))
		if weighted {
			b.AddWeightedEdge(s, d, float64(r.Intn(100)+1))
		} else {
			b.AddEdge(s, d)
		}
	}
	return b.Build()
}

// Property: text edge-list round-trips.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, r.Intn(50)+1, r.Intn(200), seed%2 == 0)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: binary format round-trips.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, r.Intn(100)+1, r.Intn(500), seed%2 == 1)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX1234"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadEdgeListDirectivesAndComments(t *testing.T) {
	in := "# comment\nnodes 10\n% another\n0 1\n1 2 3.5\n"
	g, err := ReadEdgeList(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10 from directive", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.Weighted() {
		t.Fatal("should be weighted due to third column")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n", "0 1 x\n", "nodes x\n", "0 1 2 3\n"} {
		if _, err := ReadEdgeList(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("input %q: expected parse error", in)
		}
	}
}

func TestSaveLoadBinaryFile(t *testing.T) {
	g := mkTriangle(t)
	path := t.TempDir() + "/g.kmb"
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("binary file round trip mismatch")
	}
}

func TestReferenceComponents(t *testing.T) {
	// Two components: {0,1,2} triangle and {3,4} edge.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.Symmetrize()
	g := b.Build()
	labels := ReferenceComponents(g)
	if NumComponents(labels) != 2 {
		t.Fatalf("NumComponents = %d, want 2", NumComponents(labels))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("triangle not in one component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("edge component wrong")
	}
	if labels[0] != 0 || labels[3] != 3 {
		t.Error("labels should be min node ID of component")
	}
}

func TestReferenceMSFWeight(t *testing.T) {
	// Square with diagonal: MST should pick 3 cheapest edges that connect.
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 2)
	b.AddWeightedEdge(2, 3, 3)
	b.AddWeightedEdge(3, 0, 4)
	b.AddWeightedEdge(0, 2, 5)
	b.Symmetrize()
	g := b.Build()
	if w := ReferenceMSFWeight(g); w != 6 {
		t.Fatalf("MSF weight = %v, want 6 (1+2+3)", w)
	}
}

func TestReferenceMSFWeightForest(t *testing.T) {
	// Two disjoint edges: forest of two trees.
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(2, 3, 7)
	b.Symmetrize()
	g := b.Build()
	if w := ReferenceMSFWeight(g); w != 9 {
		t.Fatalf("forest weight = %v, want 9", w)
	}
}

func TestModularity(t *testing.T) {
	// Two triangles joined by one edge; perfect 2-community split has
	// high modularity, all-in-one has zero-ish.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	b.AddEdge(0, 3)
	b.Symmetrize()
	g := b.Build()
	good := []NodeID{0, 0, 0, 1, 1, 1}
	all := []NodeID{0, 0, 0, 0, 0, 0}
	qg, qa := Modularity(g, good), Modularity(g, all)
	if qg <= qa {
		t.Fatalf("good split modularity %v should beat single community %v", qg, qa)
	}
	if qg < 0.3 {
		t.Fatalf("good split modularity %v suspiciously low", qg)
	}
	if qa > 1e-9 || qa < -1e-9 {
		t.Fatalf("single community modularity = %v, want ~0", qa)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	var g Graph
	if q := Modularity(&g, nil); q != 0 {
		t.Fatalf("empty modularity = %v", q)
	}
}

func TestIsValidMIS(t *testing.T) {
	g := mkTriangle(t)
	if !IsValidMIS(g, []bool{true, false, false}) {
		t.Error("single vertex of triangle is a valid MIS")
	}
	if IsValidMIS(g, []bool{true, true, false}) {
		t.Error("adjacent pair accepted as independent")
	}
	if IsValidMIS(g, []bool{false, false, false}) {
		t.Error("empty set accepted as maximal")
	}
}

func TestIsValidMISIsolatedNode(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.Symmetrize()
	g := b.Build()
	// Node 2 is isolated: must be in the set.
	if IsValidMIS(g, []bool{true, false, false}) {
		t.Error("isolated node excluded but accepted")
	}
	if !IsValidMIS(g, []bool{true, false, true}) {
		t.Error("valid MIS with isolated node rejected")
	}
}
