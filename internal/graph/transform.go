package graph

// Structural transformations used by partitioning analyses and input
// preparation: transposition, induced subgraphs, and degree histograms.

// Transpose returns the graph with every edge reversed. For symmetric
// graphs the result equals the input; for directed inputs it converts
// between push- and pull-style adjacency (the IEC policy's view).
func Transpose(g *Graph) *Graph {
	b := NewBuilder(g.NumNodes())
	weighted := g.Weighted()
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			if weighted {
				b.AddWeightedEdge(g.Dst(e), NodeID(n), g.Weight(e))
			} else {
				b.AddEdge(g.Dst(e), NodeID(n))
			}
		}
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph on the given nodes (edges with both
// endpoints in the set) and the mapping from new IDs to original IDs.
// Nodes are renumbered densely in the order given; duplicate entries are
// rejected by panicking, since they would silently alias.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(nodes))
	for i, n := range nodes {
		if _, dup := newID[n]; dup {
			panic("graph: duplicate node in InducedSubgraph")
		}
		newID[n] = NodeID(i)
	}
	b := NewBuilder(len(nodes))
	weighted := g.Weighted()
	for _, n := range nodes {
		lo, hi := g.EdgeRange(n)
		for e := lo; e < hi; e++ {
			d, ok := newID[g.Dst(e)]
			if !ok {
				continue
			}
			if weighted {
				b.AddWeightedEdge(newID[n], d, g.Weight(e))
			} else {
				b.AddEdge(newID[n], d)
			}
		}
	}
	mapping := make([]NodeID, len(nodes))
	copy(mapping, nodes)
	return b.Build(), mapping
}

// DegreeHistogram returns counts of nodes per out-degree, indexed by
// degree (length MaxDegree+1). Used to verify the power-law shape of
// generated inputs.
func DegreeHistogram(g *Graph) []int {
	hist := make([]int, g.MaxDegree()+1)
	for n := 0; n < g.NumNodes(); n++ {
		hist[g.Degree(NodeID(n))]++
	}
	return hist
}
