package graph

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"
)

// reorderTestGraphs covers the shapes the permutation logic must survive:
// a power-law-ish random graph, all-equal degrees (every key ties on
// degree, so order falls back to original IDs), isolated vertices (zero
// degree, no adjacency to scatter), a single vertex, and the empty graph.
func reorderTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	graphs := map[string]*Graph{
		"empty":  NewBuilder(0).BuildSerial(),
		"single": NewBuilder(1).BuildSerial(),
	}

	rnd := NewBuilder(120)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 700; i++ {
		// Squaring skews sources toward high IDs: distinct hub degrees.
		s := NodeID(r.Intn(120) * r.Intn(120) / 120)
		d := NodeID(r.Intn(120))
		rnd.AddWeightedEdge(s, d, float64(r.Intn(9)+1))
	}
	graphs["random-weighted"] = rnd.BuildSerial()

	ring := NewBuilder(64)
	for i := 0; i < 64; i++ {
		ring.AddEdge(NodeID(i), NodeID((i+1)%64))
		ring.AddEdge(NodeID((i+1)%64), NodeID(i))
	}
	graphs["equal-degrees"] = ring.BuildSerial()

	iso := NewBuilder(50)
	for i := 0; i < 20; i++ {
		iso.AddEdge(NodeID(i), NodeID((i+1)%20))
	}
	graphs["isolated-tail"] = iso.BuildSerial()
	return graphs
}

// TestReorderPermutationProperties checks, for every policy, graph shape,
// and worker count: Perm/Inv are mutually inverse bijections, the
// reordered graph is the relabeled original (same adjacency under the
// permutation, weights carried), and the policy's ordering contract holds
// (descending degree globally, or within each preserved block).
func TestReorderPermutationProperties(t *testing.T) {
	for gname, g := range reorderTestGraphs(t) {
		for _, pol := range ReorderPolicies {
			for _, workers := range []int{1, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", gname, pol, workers), func(t *testing.T) {
					rg, ro, err := Reorder(g, ReorderOptions{Policy: pol, Blocks: 4, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					n := g.NumNodes()
					if ro == nil || len(ro.Perm) != n || len(ro.Inv) != n {
						t.Fatalf("reordering arrays: got %+v, want length %d", ro, n)
					}
					for i := 0; i < n; i++ {
						if ro.Inv[ro.Perm[i]] != NodeID(i) {
							t.Fatalf("inverse[perm[%d]] = %d", i, ro.Inv[ro.Perm[i]])
						}
						if ro.Perm[ro.Inv[i]] != NodeID(i) {
							t.Fatalf("perm[inverse[%d]] = %d", i, ro.Perm[ro.Inv[i]])
						}
					}
					if rg.NumNodes() != n || rg.NumEdges() != g.NumEdges() {
						t.Fatalf("size changed: %d/%d nodes, %d/%d edges",
							rg.NumNodes(), n, rg.NumEdges(), g.NumEdges())
					}
					// Adjacency is relabeled, not reshaped: orig v's
					// neighbor multiset mapped through Perm must equal
					// perm[v]'s reordered adjacency (both in total order).
					for v := 0; v < n; v++ {
						type ew struct {
							d NodeID
							w float64
						}
						var want []ew
						lo, hi := g.EdgeRange(NodeID(v))
						for e := lo; e < hi; e++ {
							want = append(want, ew{ro.Perm[g.Dst(e)], g.Weight(e)})
						}
						slices.SortFunc(want, func(a, b ew) int {
							if a.d != b.d {
								return int(a.d) - int(b.d)
							}
							switch {
							case a.w < b.w:
								return -1
							case a.w > b.w:
								return 1
							}
							return 0
						})
						var got []ew
						lo, hi = rg.EdgeRange(ro.Perm[v])
						for e := lo; e < hi; e++ {
							got = append(got, ew{rg.Dst(e), rg.Weight(e)})
						}
						if !reflect.DeepEqual(want, got) {
							t.Fatalf("node %d adjacency: want %v, got %v", v, want, got)
						}
					}
					// Ordering contract: degree non-increasing, original ID
					// ascending within equal degrees — globally or per block.
					blocks := [][2]NodeID{{0, NodeID(n)}}
					if pol == ReorderBlockedDegree {
						if want := BlockBoundaries(g, 4); !reflect.DeepEqual(ro.Boundaries, want) {
							t.Fatalf("boundaries %v, BlockBoundaries %v", ro.Boundaries, want)
						}
						blocks = blocks[:0]
						for b := 0; b+1 < len(ro.Boundaries); b++ {
							blocks = append(blocks, [2]NodeID{ro.Boundaries[b], ro.Boundaries[b+1]})
						}
					}
					for _, blk := range blocks {
						for j := blk[0] + 1; j < blk[1]; j++ {
							dPrev, dCur := g.Degree(ro.Inv[j-1]), g.Degree(ro.Inv[j])
							if dPrev < dCur || (dPrev == dCur && ro.Inv[j-1] >= ro.Inv[j]) {
								t.Fatalf("order violated at %d: (%d,deg %d) before (%d,deg %d)",
									j, ro.Inv[j-1], dPrev, ro.Inv[j], dCur)
							}
							if pol == ReorderBlockedDegree {
								// Every node stays inside its block.
								if ro.Inv[j] < blk[0] || ro.Inv[j] >= blk[1] {
									t.Fatalf("node %d left block [%d,%d)", ro.Inv[j], blk[0], blk[1])
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestReorderDeterministicAcrossWorkers pins bit-identical permutations
// and CSRs at every worker count (the //kimbap:deterministic contract).
func TestReorderDeterministicAcrossWorkers(t *testing.T) {
	for gname, g := range reorderTestGraphs(t) {
		for _, pol := range ReorderPolicies {
			refG, refRo, err := Reorder(g, ReorderOptions{Policy: pol, Blocks: 3, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				rg, ro, err := Reorder(g, ReorderOptions{Policy: pol, Blocks: 3, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(refRo.Perm, ro.Perm) || !reflect.DeepEqual(refRo.Inv, ro.Inv) {
					t.Fatalf("%s/%s: permutation differs at %d workers", gname, pol, workers)
				}
				requireGraphsIdentical(t, refG, rg)
			}
		}
	}
}

func TestReorderNoneAndUnknownPolicy(t *testing.T) {
	g := reorderTestGraphs(t)["random-weighted"]
	for _, pol := range []ReorderPolicy{ReorderNone, ""} {
		rg, ro, err := Reorder(g, ReorderOptions{Policy: pol})
		if err != nil || rg != g || ro != nil {
			t.Fatalf("%q: got (%p, %v, %v), want passthrough", pol, rg, ro, err)
		}
	}
	if _, _, err := Reorder(g, ReorderOptions{Policy: "zorder"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	var nilRo *Reordering
	if nilRo.CurrentID(7) != 7 || nilRo.OriginalID(9) != 9 {
		t.Fatal("nil Reordering is not the identity")
	}
}

// TestStreamBuildReorderedMatchesPostReorder: the fused streaming stage
// must be bit-identical to reordering the built graph, at every worker
// count, for both source kinds (text re-scans, KMB2 block reads).
func TestStreamBuildReorderedMatchesPostReorder(t *testing.T) {
	const n, m = 97, 600
	for _, ec := range []edgeCase{{}, {weighted: true, dups: true, selfLoops: true}} {
		ref := NewBuilder(n)
		fillBuilder(ref, ec, n, m, 42)
		srcs := slices.Clone(ref.srcs)
		dsts := slices.Clone(ref.dsts)
		weights := slices.Clone(ref.weights)
		built := ref.BuildSerial()

		dir := t.TempDir()
		textPath := filepath.Join(dir, "g.txt")
		kmb2Path := filepath.Join(dir, "g.kmb2")
		tmp := NewBuilder(n)
		tmp.srcs, tmp.dsts, tmp.weights = srcs, dsts, weights
		if err := os.WriteFile(textPath, edgeListText(tmp, n, false), 0o644); err != nil {
			t.Fatal(err)
		}
		writeKMB2Columns(t, kmb2Path, n, srcs, dsts, weights, 7)

		sources := map[string]func() (sourceCloser, error){
			"text": func() (sourceCloser, error) {
				return OpenTextConfig(textPath, TextConfig{ShardBytes: 64})
			},
			"kmb2": func() (sourceCloser, error) { return OpenKMB2(kmb2Path) },
		}
		for sname, open := range sources {
			src, err := open()
			if err != nil {
				t.Fatal(err)
			}
			for _, pol := range ReorderPolicies {
				want, wantRo, err := Reorder(built, ReorderOptions{Policy: pol, Blocks: 4})
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{1, 4, 8} {
					t.Run(fmt.Sprintf("%s/%s/%s/workers=%d", ec.name(), sname, pol, w), func(t *testing.T) {
						got, ro, err := NewStreamBuilder(src).SetWorkers(w).BuildReordered(pol, 4)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(wantRo.Perm, ro.Perm) || !reflect.DeepEqual(wantRo.Inv, ro.Inv) {
							t.Fatal("fused permutation differs from post-build reorder")
						}
						requireGraphsIdentical(t, want, got)
					})
				}
			}
			// BuildReordered(none) must still behave like Build.
			got, ro, err := NewStreamBuilder(src).BuildReordered(ReorderNone, 4)
			if err != nil || ro != nil {
				t.Fatalf("none: (%v, %v)", ro, err)
			}
			requireGraphsIdentical(t, built, got)
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
