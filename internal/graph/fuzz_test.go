package graph

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Fuzz targets for the three ingestion decoders. The contract under
// fuzz: arbitrary bytes produce an error or a valid graph — never a
// panic, and never an allocation driven by a corrupt header rather than
// by actual input bytes. Seeds are valid corpora (weighted and not) plus
// truncation and bit-flip mutants of each.

// fuzzSeedGraphs returns small valid graphs in both weighted flavors.
func fuzzSeedGraphs() []*Graph {
	unw := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {4, 1}, {0, 4}} {
		unw.AddEdge(e[0], e[1])
	}
	w := NewBuilder(4)
	w.AddWeightedEdge(0, 1, 0.5)
	w.AddWeightedEdge(1, 3, 2)
	w.AddWeightedEdge(3, 0, -1.25)
	return []*Graph{unw.Build(), w.Build(), NewBuilder(0).Build()}
}

// addMutants seeds f with data plus truncations and single-bit flips.
func addMutants(f *testing.F, data []byte) {
	f.Add(data)
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		if cut > 0 && cut <= len(data) {
			f.Add(data[:len(data)-cut])
		}
	}
	for _, pos := range []int{0, 4, 12, 20, len(data) - 1} {
		if pos >= 0 && pos < len(data) {
			mut := bytes.Clone(data)
			mut[pos] ^= 0x80
			f.Add(mut)
		}
	}
}

// textDeclaresHuge reports whether any numeric token in data exceeds the
// fuzz harness's node bound (directives and endpoints both translate
// into CSR-sized allocations).
func textDeclaresHuge(data []byte) bool {
	for _, tok := range bytes.Fields(data) {
		if v, err := strconv.ParseUint(string(tok), 10, 64); err == nil && v > 1<<20 {
			return true
		}
	}
	return false
}

func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.NumNodes()
	if len(g.offsets) != n+1 {
		t.Fatalf("offsets length %d for %d nodes", len(g.offsets), n)
	}
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.dsts)) {
		t.Fatalf("offset bounds [%d, %d] with %d dsts", g.offsets[0], g.offsets[n], len(g.dsts))
	}
	for i := 1; i <= n; i++ {
		if g.offsets[i] < g.offsets[i-1] {
			t.Fatalf("offsets not monotonic at %d", i)
		}
	}
	for _, d := range g.dsts {
		if int(d) >= n {
			t.Fatalf("dst %d out of range for %d nodes", d, n)
		}
	}
	if g.weights != nil && len(g.weights) != len(g.dsts) {
		t.Fatalf("weights length %d, dsts %d", len(g.weights), len(g.dsts))
	}
}

func FuzzReadBinary(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		addMutants(f, buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Sized path (bytes.Reader exposes Len): header counts are checked
		// against the exact input size before any allocation.
		g1, err1 := ReadBinary(bytes.NewReader(data))
		// Unsized path: allocation tracks bytes actually read.
		g2, err2 := ReadBinary(io.LimitReader(bytes.NewReader(data), int64(len(data))))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("sized err=%v, unsized err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		checkGraphInvariants(t, g1)
		requireGraphsIdentical(t, g1, g2)
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("nodes 5\n# c\n0 1\n1 2\n4 0\n"))
	f.Add([]byte("nodes 4\n0 1 0.5\n1 3 2\n3 0 -1.25\n"))
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("nodes 3\n0 9\n"))
	f.Add([]byte("% comment only\n\n"))
	f.Add([]byte("nodes 2\n0 x\n"))
	f.Add([]byte("  1\t0  \r\nnodes 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// A text edge list legitimately allocates O(declared nodes) for the
		// CSR — that is the format, not a decoder bug — so bound the node
		// IDs and directives the engine may synthesize.
		if textDeclaresHuge(data) {
			t.Skip("node values beyond the fuzz allocation bound")
		}
		g1, err1 := ReadEdgeList(bytes.NewReader(data))
		if err1 == nil {
			checkGraphInvariants(t, g1)
		}
		// The streaming parser is stricter (leading directive, uniform
		// lines) but must agree bit for bit whenever both accept the input.
		path := filepath.Join(t.TempDir(), "fuzz.txt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ts, err := OpenTextConfig(path, TextConfig{ShardBytes: 16})
		if err != nil {
			return
		}
		defer ts.Close()
		g2, err2 := NewStreamBuilder(ts).SetWorkers(3).Build()
		if err2 != nil {
			return
		}
		checkGraphInvariants(t, g2)
		if err1 == nil {
			requireGraphsIdentical(t, g1, g2)
		}
	})
}

func FuzzReadKMB2(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		for _, be := range []int{3, DefaultBlockEdges} {
			path := filepath.Join(f.TempDir(), "seed.kmb2")
			if err := SaveKMB2(path, g, be); err != nil {
				f.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			addMutants(f, data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewKMB2Source(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// The build allocates the O(numNodes) offsets array for any valid
		// header — inherent, so bounded here rather than in the decoder.
		if s.NumNodes() > 1<<20 {
			t.Skip("node count beyond the fuzz allocation bound")
		}
		g, err := NewStreamBuilder(s).SetWorkers(2).Build()
		if err != nil {
			return
		}
		checkGraphInvariants(t, g)
	})
}
