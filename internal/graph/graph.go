// Package graph provides the in-memory graph representation used throughout
// Kimbap: a compressed sparse row (CSR) adjacency structure over 32-bit node
// IDs with optional edge weights.
//
// Graphs in Kimbap are directed at the representation level; undirected
// graphs are stored in symmetrized form (each undirected edge appears as two
// directed edges). All algorithms in the paper operate on symmetrized graphs.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in a graph. IDs are dense: a graph with n nodes
// uses IDs 0..n-1.
type NodeID uint32

// InvalidNode is a sentinel value that is never a valid node ID.
const InvalidNode = NodeID(math.MaxUint32)

// Edge is a directed edge with an optional weight. Weights default to 1 for
// unweighted graphs.
type Edge struct {
	Src, Dst NodeID
	Weight   float64
}

// Graph is an immutable directed graph in CSR form. Construct one with a
// Builder or one of the loaders; the zero value is an empty graph.
type Graph struct {
	offsets []int64   // len = NumNodes()+1; offsets[i]..offsets[i+1] index into dsts
	dsts    []NodeID  // destination of each edge, grouped by source
	weights []float64 // nil for unweighted graphs; else parallel to dsts
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of directed edges in the graph.
func (g *Graph) NumEdges() int64 {
	if len(g.offsets) == 0 {
		return 0
	}
	return g.offsets[len(g.offsets)-1]
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns the out-degree of node n.
func (g *Graph) Degree(n NodeID) int {
	return int(g.offsets[n+1] - g.offsets[n])
}

// Neighbors returns the destinations of all out-edges of node n.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	return g.dsts[g.offsets[n]:g.offsets[n+1]]
}

// EdgeWeights returns the weights of all out-edges of n, parallel to
// Neighbors(n). It returns nil for unweighted graphs.
func (g *Graph) EdgeWeights(n NodeID) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[n]:g.offsets[n+1]]
}

// EdgeRange returns the half-open range of edge indices for node n's
// out-edges. Edge indices are stable and can index Dst and Weight.
func (g *Graph) EdgeRange(n NodeID) (lo, hi int64) {
	return g.offsets[n], g.offsets[n+1]
}

// Dst returns the destination of the edge with the given index.
func (g *Graph) Dst(e int64) NodeID { return g.dsts[e] }

// Weight returns the weight of the edge with the given index
// (1 for unweighted graphs).
func (g *Graph) Weight(e int64) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[e]
}

// HasEdge reports whether a directed edge src->dst exists. Neighbor lists
// are sorted by construction, so this is a binary search.
func (g *Graph) HasEdge(src, dst NodeID) bool {
	ns := g.Neighbors(src)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= dst })
	return i < len(ns) && ns[i] == dst
}

// MaxDegree returns the largest out-degree of any node, and 0 for an
// empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for n := 0; n < g.NumNodes(); n++ {
		if d := g.Degree(NodeID(n)); d > max {
			max = d
		}
	}
	return max
}

// TotalWeight returns the sum of all edge weights (NumEdges for unweighted
// graphs).
func (g *Graph) TotalWeight() float64 {
	if g.weights == nil {
		return float64(g.NumEdges())
	}
	sum := 0.0
	for _, w := range g.weights {
		sum += w
	}
	return sum
}

// Stats summarizes a graph in the shape of the paper's Table 1.
type Stats struct {
	Nodes     int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats returns summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
	if s.Nodes > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d |E|/|V|=%.1f maxdeg=%d",
		s.Nodes, s.Edges, s.AvgDegree, s.MaxDegree)
}

// Builder accumulates edges and produces an immutable CSR Graph.
// It is not safe for concurrent use.
type Builder struct {
	numNodes int
	edges    []Edge
	weighted bool
}

// NewBuilder returns a Builder for a graph with the given number of nodes.
func NewBuilder(numNodes int) *Builder {
	return &Builder{numNodes: numNodes}
}

// AddEdge adds a directed unweighted edge (weight 1).
func (b *Builder) AddEdge(src, dst NodeID) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: 1})
}

// AddWeightedEdge adds a directed edge with the given weight and marks the
// graph as weighted.
func (b *Builder) AddWeightedEdge(src, dst NodeID, w float64) {
	b.weighted = true
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Symmetrize adds the reverse of every edge added so far, making the edge
// set symmetric. Self-loops are not duplicated. Call before Build.
func (b *Builder) Symmetrize() {
	orig := len(b.edges)
	for i := 0; i < orig; i++ {
		e := b.edges[i]
		if e.Src != e.Dst {
			b.edges = append(b.edges, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
		}
	}
}

// Dedup removes duplicate (src,dst) pairs, keeping the smallest weight.
// Taking the minimum (rather than an arbitrary survivor) keeps symmetrized
// graphs weight-symmetric: both directions of a multi-edge collapse to the
// same value. Call before Build if the edge stream may contain duplicates.
func (b *Builder) Dedup() {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].Src != b.edges[j].Src {
			return b.edges[i].Src < b.edges[j].Src
		}
		if b.edges[i].Dst != b.edges[j].Dst {
			return b.edges[i].Dst < b.edges[j].Dst
		}
		return b.edges[i].Weight < b.edges[j].Weight
	})
	out := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e.Src == out[len(out)-1].Src && e.Dst == out[len(out)-1].Dst {
			continue
		}
		out = append(out, e)
	}
	b.edges = out
}

// Build produces the CSR graph. The Builder must not be reused afterwards.
// Neighbor lists are sorted by destination.
func (b *Builder) Build() *Graph {
	g := &Graph{offsets: make([]int64, b.numNodes+1)}
	for _, e := range b.edges {
		if int(e.Src) >= b.numNodes || int(e.Dst) >= b.numNodes {
			panic(fmt.Sprintf("graph: edge %d->%d out of range for %d nodes",
				e.Src, e.Dst, b.numNodes))
		}
		g.offsets[e.Src+1]++
	}
	for i := 1; i <= b.numNodes; i++ {
		g.offsets[i] += g.offsets[i-1]
	}
	g.dsts = make([]NodeID, len(b.edges))
	if b.weighted {
		g.weights = make([]float64, len(b.edges))
	}
	cursor := make([]int64, b.numNodes)
	copy(cursor, g.offsets[:b.numNodes])
	for _, e := range b.edges {
		at := cursor[e.Src]
		cursor[e.Src]++
		g.dsts[at] = e.Dst
		if b.weighted {
			g.weights[at] = e.Weight
		}
	}
	// Sort each adjacency list by destination for deterministic iteration
	// and binary-searchable HasEdge.
	for n := 0; n < b.numNodes; n++ {
		lo, hi := g.offsets[n], g.offsets[n+1]
		if b.weighted {
			sortAdjWeighted(g.dsts[lo:hi], g.weights[lo:hi])
		} else {
			sort.Slice(g.dsts[lo:hi], func(i, j int) bool {
				return g.dsts[lo+int64(i)] < g.dsts[lo+int64(j)]
			})
		}
	}
	return g
}

func sortAdjWeighted(dsts []NodeID, ws []float64) {
	idx := make([]int, len(dsts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return dsts[idx[i]] < dsts[idx[j]] })
	nd := make([]NodeID, len(dsts))
	nw := make([]float64, len(ws))
	for i, k := range idx {
		nd[i] = dsts[k]
		nw[i] = ws[k]
	}
	copy(dsts, nd)
	copy(ws, nw)
}

// FromEdges is a convenience constructor that builds a graph directly from
// an edge slice.
func FromEdges(numNodes int, edges []Edge, weighted bool) *Graph {
	b := NewBuilder(numNodes)
	for _, e := range edges {
		if weighted {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		} else {
			b.AddEdge(e.Src, e.Dst)
		}
	}
	return b.Build()
}

// Edges returns a copy of all edges in the graph in CSR order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			out = append(out, Edge{Src: NodeID(n), Dst: g.Dst(e), Weight: g.Weight(e)})
		}
	}
	return out
}
