// Package graph provides the in-memory graph representation used throughout
// Kimbap: a compressed sparse row (CSR) adjacency structure over 32-bit node
// IDs with optional edge weights.
//
// Graphs in Kimbap are directed at the representation level; undirected
// graphs are stored in symmetrized form (each undirected edge appears as two
// directed edges). All algorithms in the paper operate on symmetrized graphs.
package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// NodeID identifies a node in a graph. IDs are dense: a graph with n nodes
// uses IDs 0..n-1.
type NodeID uint32

// InvalidNode is a sentinel value that is never a valid node ID.
const InvalidNode = NodeID(math.MaxUint32)

// Edge is a directed edge with an optional weight. Weights default to 1 for
// unweighted graphs.
type Edge struct {
	Src, Dst NodeID
	Weight   float64
}

// Graph is an immutable directed graph in CSR form. Construct one with a
// Builder or one of the loaders; the zero value is an empty graph.
//
// A Graph may additionally carry a transpose (in-edge) CSR — see
// EnsureInCSR in incsr.go — used by pull-mode execution to scan
// in-neighbors. The out-edge CSR is always the source of truth; the
// in-CSR is a derived index over the same edge multiset.
type Graph struct {
	offsets []int64   // len = NumNodes()+1; offsets[i]..offsets[i+1] index into dsts
	dsts    []NodeID  // destination of each edge, grouped by source
	weights []float64 // nil for unweighted graphs; else parallel to dsts

	// Transpose CSR, nil until EnsureInCSR or a fused stream build
	// materializes it. inOnce guards lazy construction so concurrent
	// phases can share one graph.
	inOnce    sync.Once
	inOffsets []int64   // len = NumNodes()+1; indexes into inSrcs
	inSrcs    []NodeID  // source of each in-edge, grouped by destination
	inWeights []float64 // nil for unweighted graphs; else parallel to inSrcs
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of directed edges in the graph.
func (g *Graph) NumEdges() int64 {
	if len(g.offsets) == 0 {
		return 0
	}
	return g.offsets[len(g.offsets)-1]
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns the out-degree of node n.
func (g *Graph) Degree(n NodeID) int {
	return int(g.offsets[n+1] - g.offsets[n])
}

// Neighbors returns the destinations of all out-edges of node n.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	return g.dsts[g.offsets[n]:g.offsets[n+1]]
}

// EdgeWeights returns the weights of all out-edges of n, parallel to
// Neighbors(n). It returns nil for unweighted graphs.
func (g *Graph) EdgeWeights(n NodeID) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[n]:g.offsets[n+1]]
}

// EdgeRange returns the half-open range of edge indices for node n's
// out-edges. Edge indices are stable and can index Dst and Weight.
func (g *Graph) EdgeRange(n NodeID) (lo, hi int64) {
	return g.offsets[n], g.offsets[n+1]
}

// Dst returns the destination of the edge with the given index.
func (g *Graph) Dst(e int64) NodeID { return g.dsts[e] }

// Weight returns the weight of the edge with the given index
// (1 for unweighted graphs).
func (g *Graph) Weight(e int64) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[e]
}

// HasEdge reports whether a directed edge src->dst exists. Neighbor lists
// are sorted by construction, so this is a binary search.
func (g *Graph) HasEdge(src, dst NodeID) bool {
	ns := g.Neighbors(src)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= dst })
	return i < len(ns) && ns[i] == dst
}

// MaxDegree returns the largest out-degree of any node, and 0 for an
// empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for n := 0; n < g.NumNodes(); n++ {
		if d := g.Degree(NodeID(n)); d > max {
			max = d
		}
	}
	return max
}

// TotalWeight returns the sum of all edge weights (NumEdges for unweighted
// graphs).
func (g *Graph) TotalWeight() float64 {
	if g.weights == nil {
		return float64(g.NumEdges())
	}
	sum := 0.0
	for _, w := range g.weights {
		sum += w
	}
	return sum
}

// Stats summarizes a graph in the shape of the paper's Table 1.
type Stats struct {
	Nodes     int
	Edges     int64
	AvgDegree float64
	MaxDegree int
}

// ComputeStats returns summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), MaxDegree: g.MaxDegree()}
	if s.Nodes > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d |E|/|V|=%.1f maxdeg=%d",
		s.Nodes, s.Edges, s.AvgDegree, s.MaxDegree)
}

// Builder accumulates edges and produces an immutable CSR Graph. Edges are
// held in structure-of-arrays form — separate src/dst/weight columns — so
// the parallel build pipeline (build.go) scans and scatters them with
// columnar passes and unweighted graphs never pay for a weight column.
// It is not safe for concurrent use.
type Builder struct {
	numNodes int
	srcs     []NodeID
	dsts     []NodeID
	weights  []float64 // nil until the first weighted edge
	workers  int       // 0 = par.DefaultWorkers
}

// NewBuilder returns a Builder for a graph with the given number of nodes.
func NewBuilder(numNodes int) *Builder {
	return &Builder{numNodes: numNodes}
}

// SetWorkers fixes the worker count used by Symmetrize, Dedup and Build.
// Zero (the default) means all cores; tests force specific counts to
// exercise the parallel paths regardless of machine size. Output is
// bit-identical at every setting.
func (b *Builder) SetWorkers(w int) *Builder {
	b.workers = w
	return b
}

// AddEdge adds a directed unweighted edge (weight 1).
func (b *Builder) AddEdge(src, dst NodeID) {
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	if b.weights != nil {
		b.weights = append(b.weights, 1)
	}
}

// AddWeightedEdge adds a directed edge with the given weight and marks the
// graph as weighted.
func (b *Builder) AddWeightedEdge(src, dst NodeID, w float64) {
	if b.weights == nil {
		// Edges added before the first weighted one carry the default
		// weight 1.
		b.weights = make([]float64, len(b.srcs), cap(b.srcs))
		for i := range b.weights {
			b.weights[i] = 1
		}
	}
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	b.weights = append(b.weights, w)
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.srcs) }

// SymmetrizeSerial is the retained single-threaded reference for
// Symmetrize; the equivalence tests compare the two bit for bit.
func (b *Builder) SymmetrizeSerial() {
	orig := len(b.srcs)
	for i := 0; i < orig; i++ {
		s, d := b.srcs[i], b.dsts[i]
		if s != d {
			b.srcs = append(b.srcs, d)
			b.dsts = append(b.dsts, s)
			if b.weights != nil {
				b.weights = append(b.weights, b.weights[i])
			}
		}
	}
}

// DedupSerial is the retained single-threaded reference for Dedup: a global
// (src, dst, weight) sort followed by a linear compaction keeping the first
// edge of each (src, dst) group — the minimum weight. Taking the minimum
// (rather than an arbitrary survivor) keeps symmetrized graphs
// weight-symmetric: both directions of a multi-edge collapse to the same
// value.
func (b *Builder) DedupSerial() {
	m := len(b.srcs)
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		a, c := idx[i], idx[j]
		if b.srcs[a] != b.srcs[c] {
			return b.srcs[a] < b.srcs[c]
		}
		if b.dsts[a] != b.dsts[c] {
			return b.dsts[a] < b.dsts[c]
		}
		return b.weights != nil && b.weights[a] < b.weights[c]
	})
	ns := make([]NodeID, 0, m)
	nd := make([]NodeID, 0, m)
	var nw []float64
	if b.weights != nil {
		nw = make([]float64, 0, m)
	}
	for _, k := range idx {
		if n := len(ns); n > 0 && b.srcs[k] == ns[n-1] && b.dsts[k] == nd[n-1] {
			continue
		}
		ns = append(ns, b.srcs[k])
		nd = append(nd, b.dsts[k])
		if nw != nil {
			nw = append(nw, b.weights[k])
		}
	}
	b.srcs, b.dsts, b.weights = ns, nd, nw
}

// BuildSerial is the retained single-threaded reference for Build: degree
// count, prefix sum, stable scatter in insertion order, then the same
// in-place per-node adjacency sort the parallel path uses. The Builder must
// not be reused afterwards.
func (b *Builder) BuildSerial() *Graph {
	n := b.numNodes
	g := &Graph{offsets: make([]int64, n+1)}
	for i := range b.srcs {
		s, d := b.srcs[i], b.dsts[i]
		if int(s) >= n || int(d) >= n {
			panic(fmt.Sprintf("graph: edge %d->%d out of range for %d nodes", s, d, n))
		}
		g.offsets[s+1]++
	}
	for i := 1; i <= n; i++ {
		g.offsets[i] += g.offsets[i-1]
	}
	g.dsts = make([]NodeID, len(b.srcs))
	if b.weights != nil {
		g.weights = make([]float64, len(b.srcs))
	}
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	for i := range b.srcs {
		at := cursor[b.srcs[i]]
		cursor[b.srcs[i]]++
		g.dsts[at] = b.dsts[i]
		if g.weights != nil {
			g.weights[at] = b.weights[i]
		}
	}
	// Sort each adjacency list by destination for deterministic iteration
	// and binary-searchable HasEdge.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if g.weights != nil {
			sortDstWeight(g.dsts[lo:hi], g.weights[lo:hi])
		} else {
			slices.Sort(g.dsts[lo:hi])
		}
	}
	return g
}

// FromEdges is a convenience constructor that builds a graph directly from
// an edge slice.
func FromEdges(numNodes int, edges []Edge, weighted bool) *Graph {
	b := NewBuilder(numNodes)
	for _, e := range edges {
		if weighted {
			b.AddWeightedEdge(e.Src, e.Dst, e.Weight)
		} else {
			b.AddEdge(e.Src, e.Dst)
		}
	}
	return b.Build()
}

// Edges returns a copy of all edges in the graph in CSR order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			out = append(out, Edge{Src: NodeID(n), Dst: g.Dst(e), Weight: g.Weight(e)})
		}
	}
	return out
}
