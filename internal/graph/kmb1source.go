package graph

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// KMB1Source streams a KMB1 CSR file (the WriteBinary format) as a
// BlockSource. The header and offsets array are loaded eagerly — O(n),
// already part of the CSR footprint — while the destination and weight
// columns stay on disk and are decoded block by block, with source IDs
// derived by walking the offsets. Like the other sources it mmaps when
// possible and falls back to buffered ReadAt.
//
// KMB1 has no per-block checksums or headers (that is what KMB2 adds);
// the file is validated up front by exact size against the header counts
// and by offsets monotonicity, the same checks ReadBinary performs.
type KMB1Source struct {
	f          *os.File
	mm         *mmapHandle
	size       int64
	numNodes   int
	numEdges   int64
	weighted   bool
	offsets    []int64
	blockEdges int
	dstsOff    int64 // file offset of the destination column
	weightsOff int64 // file offset of the weight column (weighted only)
}

// KMB1Config tunes OpenKMB1Config. The zero value means default block
// size with mmap when available.
type KMB1Config struct {
	// BlockEdges is the number of edges per streamed block; <= 0 means
	// DefaultBlockEdges.
	BlockEdges int
	// NoMmap forces the buffered ReadAt path, for the identity tests.
	NoMmap bool
}

// OpenKMB1 opens a KMB1 file for streaming with default config.
func OpenKMB1(path string) (*KMB1Source, error) {
	return OpenKMB1Config(path, KMB1Config{})
}

// OpenKMB1Config opens a KMB1 file for streaming: header and offsets are
// read and validated, edge columns stay on disk.
func OpenKMB1Config(path string, cfg KMB1Config) (*KMB1Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := newKMB1Source(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func newKMB1Source(f *os.File, cfg KMB1Config) (*KMB1Source, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	s := &KMB1Source{f: f, size: st.Size(), blockEdges: cfg.BlockEdges}
	if s.blockEdges <= 0 {
		s.blockEdges = DefaultBlockEdges
	}
	var hdr [kmb1HdrLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("graph: kmb1 header: %w", err)
	}
	if [4]byte(hdr[0:4]) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q", hdr[0:4])
	}
	rawNodes := binary.LittleEndian.Uint64(hdr[4:12])
	rawEdges := binary.LittleEndian.Uint64(hdr[12:20])
	wflag := hdr[20]
	if wflag > 1 {
		return nil, fmt.Errorf("graph: bad weighted flag %d", wflag)
	}
	if rawNodes > math.MaxUint32 {
		return nil, fmt.Errorf("graph: node count %d exceeds 32-bit IDs", rawNodes)
	}
	if rawEdges > math.MaxInt64/16 {
		return nil, fmt.Errorf("graph: implausible edge count %d", rawEdges)
	}
	nodes, edges := int64(rawNodes), int64(rawEdges)
	s.numNodes, s.numEdges, s.weighted = int(nodes), edges, wflag == 1
	s.dstsOff = int64(kmb1HdrLen) + (nodes+1)*8
	s.weightsOff = s.dstsOff + edges*4
	want := s.weightsOff
	if s.weighted {
		want += edges * 8
	}
	if s.size != want {
		return nil, fmt.Errorf("graph: kmb1 header claims %d bytes, file has %d", want, s.size)
	}
	if !cfg.NoMmap {
		if mm, err := mmapFile(f, s.size); err == nil {
			s.mm = mm
		}
	}
	// Load and validate the offsets array (kept resident for src derivation).
	s.offsets = make([]int64, nodes+1)
	if s.mm != nil {
		decodeInt64s(s.offsets, s.mm.data[kmb1HdrLen:s.dstsOff])
	} else {
		raw := make([]byte, (nodes+1)*8)
		if _, err := f.ReadAt(raw, kmb1HdrLen); err != nil {
			return nil, fmt.Errorf("graph: kmb1 offsets: %w", err)
		}
		decodeInt64s(s.offsets, raw)
	}
	if s.offsets[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt offsets: first=%d want 0", s.offsets[0])
	}
	for i := 1; i < len(s.offsets); i++ {
		if s.offsets[i] < s.offsets[i-1] {
			return nil, fmt.Errorf("graph: corrupt offsets: offsets[%d]=%d < offsets[%d]=%d",
				i, s.offsets[i], i-1, s.offsets[i-1])
		}
	}
	if s.offsets[nodes] != edges {
		return nil, fmt.Errorf("graph: corrupt offsets: last=%d want %d", s.offsets[nodes], edges)
	}
	return s, nil
}

// Close releases the mapping and file handle.
func (s *KMB1Source) Close() error {
	if s.mm != nil {
		s.mm.close()
		s.mm = nil
	}
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Mapped reports whether the source reads through an mmap.
func (s *KMB1Source) Mapped() bool { return s.mm != nil }

// NumNodes implements BlockSource.
func (s *KMB1Source) NumNodes() int { return s.numNodes }

// NumEdges returns the edge count from the header.
func (s *KMB1Source) NumEdges() int64 { return s.numEdges }

// Weighted implements BlockSource.
func (s *KMB1Source) Weighted() bool { return s.weighted }

// NumBlocks implements BlockSource.
func (s *KMB1Source) NumBlocks() int {
	return int((s.numEdges + int64(s.blockEdges) - 1) / int64(s.blockEdges))
}

// ReadBlock implements BlockSource: edges [i*blockEdges, …) with sources
// derived from the resident offsets. Safe for concurrent calls on
// distinct indices.
func (s *KMB1Source) ReadBlock(i int, blk *EdgeBlock) error {
	lo := int64(i) * int64(s.blockEdges)
	hi := min(lo+int64(s.blockEdges), s.numEdges)
	count := int(hi - lo)
	blk.Reset(count, s.weighted)

	if s.mm != nil {
		decodeNodeIDs(blk.Dsts, s.mm.data[s.dstsOff+lo*4:s.dstsOff+hi*4])
		if s.weighted {
			decodeFloat64s(blk.Weights, s.mm.data[s.weightsOff+lo*8:s.weightsOff+hi*8])
		}
	} else {
		raw := blk.RawBuf(count * 4)
		if _, err := s.f.ReadAt(raw, s.dstsOff+lo*4); err != nil {
			return fmt.Errorf("graph: kmb1 dsts: %w", err)
		}
		decodeNodeIDs(blk.Dsts, raw)
		if s.weighted {
			raw = blk.RawBuf(count * 8)
			if _, err := s.f.ReadAt(raw, s.weightsOff+lo*8); err != nil {
				return fmt.Errorf("graph: kmb1 weights: %w", err)
			}
			decodeFloat64s(blk.Weights, raw)
		}
	}

	// Derive sources: node v owns edge indices [offsets[v], offsets[v+1]).
	v := sort.Search(s.numNodes, func(v int) bool { return s.offsets[v+1] > lo })
	for k := 0; k < count; k++ {
		e := lo + int64(k)
		for v < s.numNodes && s.offsets[v+1] <= e {
			v++
		}
		if v >= s.numNodes {
			return io.ErrUnexpectedEOF
		}
		blk.Srcs[k] = NodeID(v)
	}
	return nil
}
