package graph

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"
)

// The in-CSR promises bit-identity with the explicit Transpose oracle —
// same offsets, same sorted source columns, same weights — from both
// construction paths (lazy EnsureInCSR over a built graph and the fused
// dual-column stream scatter), at every worker count.

// requireInCSRMatchesTranspose compares g's transpose CSR against the
// serial Transpose oracle. The weight comparison is by content: Transpose
// of a weighted zero-edge graph drops the weight column (its Builder
// never sees a weighted edge) while the in-CSR keeps an empty one.
func requireInCSRMatchesTranspose(t *testing.T, g *Graph) {
	t.Helper()
	if !g.HasInCSR() {
		t.Fatal("in-CSR not materialized")
	}
	want := Transpose(g)
	if !reflect.DeepEqual(want.offsets, g.inOffsets) {
		t.Fatalf("in-offsets differ:\nwant %v\ngot  %v", want.offsets, g.inOffsets)
	}
	if !reflect.DeepEqual(want.dsts, g.inSrcs) {
		t.Fatalf("in-srcs differ:\nwant %v\ngot  %v", want.dsts, g.inSrcs)
	}
	if len(want.weights) != 0 || len(g.inWeights) != 0 {
		if !reflect.DeepEqual(want.weights, g.inWeights) {
			t.Fatalf("in-weights differ:\nwant %v\ngot  %v", want.weights, g.inWeights)
		}
	}
	// Accessor-level spot checks so the index arithmetic is covered too.
	for v := 0; v < g.NumNodes(); v++ {
		n := NodeID(v)
		if g.InDegree(n) != want.Degree(n) {
			t.Fatalf("InDegree(%d) = %d, transpose degree %d", v, g.InDegree(n), want.Degree(n))
		}
		if !slices.Equal(g.InNeighbors(n), want.Neighbors(n)) {
			t.Fatalf("InNeighbors(%d) = %v, want %v", v, g.InNeighbors(n), want.Neighbors(n))
		}
		lo, hi := g.InEdgeRange(n)
		wlo, whi := want.EdgeRange(n)
		if lo != wlo || hi != whi {
			t.Fatalf("InEdgeRange(%d) = [%d,%d), want [%d,%d)", v, lo, hi, wlo, whi)
		}
		for e := lo; e < hi; e++ {
			if g.InSrc(e) != want.Dst(e) || g.InWeight(e) != want.Weight(e) {
				t.Fatalf("in-edge %d = (%d, %g), want (%d, %g)",
					e, g.InSrc(e), g.InWeight(e), want.Dst(e), want.Weight(e))
			}
		}
	}
}

func TestEnsureInCSRMatchesTranspose(t *testing.T) {
	const n, m = 61, 500
	for _, ec := range allEdgeCases() {
		for _, w := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", ec.name(), w), func(t *testing.T) {
				b := NewBuilder(n)
				fillBuilder(b, ec, n, m, 7)
				g := b.BuildSerial()
				g.EnsureInCSR(w)
				requireInCSRMatchesTranspose(t, g)
				if fp := g.InCSRFootprint(); fp < int64(len(g.inOffsets))*8 {
					t.Fatalf("InCSRFootprint %d too small", fp)
				}
			})
		}
	}
}

func TestEnsureInCSRDegenerate(t *testing.T) {
	// Empty graph.
	g := NewBuilder(0).Build()
	g.EnsureInCSR(4)
	requireInCSRMatchesTranspose(t, g)

	// Nodes but no edges (weighted column absent either way).
	g = NewBuilder(9).Build()
	g.EnsureInCSR(4)
	requireInCSRMatchesTranspose(t, g)

	// Self-loops and duplicate edges only.
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	b.AddEdge(1, 1)
	b.AddEdge(2, 0)
	b.AddEdge(2, 0)
	b.AddEdge(0, 0)
	g = b.Build()
	g.EnsureInCSR(2)
	requireInCSRMatchesTranspose(t, g)

	// Duplicate weighted edges with colliding weights.
	wb := NewBuilder(4)
	wb.AddWeightedEdge(0, 2, 3)
	wb.AddWeightedEdge(1, 2, 1)
	wb.AddWeightedEdge(0, 2, 1)
	wb.AddWeightedEdge(3, 3, 2)
	wb.AddWeightedEdge(0, 2, 3)
	g = wb.Build()
	g.EnsureInCSR(3)
	requireInCSRMatchesTranspose(t, g)
}

func TestEnsureInCSRIdempotent(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	g.EnsureInCSR(2)
	srcs := g.inSrcs
	g.EnsureInCSR(8) // must not rebuild
	if &g.inSrcs[0] != &srcs[0] {
		t.Fatal("EnsureInCSR rebuilt an existing in-CSR")
	}
}

// TestStreamInCSRMatchesTranspose covers the fused dual-column scatter:
// pass 1 counts both degree arrays, pass 2 scatters both columns, and the
// result must equal both the Transpose oracle and the lazy EnsureInCSR
// path bit for bit.
func TestStreamInCSRMatchesTranspose(t *testing.T) {
	const n, m = 67, 450
	cases := []edgeCase{
		{},
		{dups: true, selfLoops: true},
		{weighted: true, dups: true},
		{weighted: true, selfLoops: true, emptyTail: true},
	}
	for _, ec := range cases {
		ref := NewBuilder(n)
		fillBuilder(ref, ec, n, m, 23)
		srcs := slices.Clone(ref.srcs)
		dsts := slices.Clone(ref.dsts)
		weights := slices.Clone(ref.weights)
		want := ref.BuildSerial()
		want.EnsureInCSR(1)

		path := filepath.Join(t.TempDir(), "g.kmb2")
		writeKMB2Columns(t, path, n, srcs, dsts, weights, 7)
		src, err := OpenKMB2(path)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		for _, w := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", ec.name(), w), func(t *testing.T) {
				got, err := NewStreamBuilder(src).SetWorkers(w).WithInCSR(true).Build()
				if err != nil {
					t.Fatal(err)
				}
				requireGraphsIdentical(t, want, got)
				requireInCSRMatchesTranspose(t, got)
				if !reflect.DeepEqual(want.inOffsets, got.inOffsets) ||
					!reflect.DeepEqual(want.inSrcs, got.inSrcs) {
					t.Fatal("fused in-CSR differs from EnsureInCSR")
				}
			})
		}
	}
}

func TestStreamInCSREmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(path, []byte("nodes 6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := OpenText(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	g, err := NewStreamBuilder(ts).WithInCSR(true).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasInCSR() || g.NumNodes() != 6 {
		t.Fatalf("HasInCSR=%v nodes=%d", g.HasInCSR(), g.NumNodes())
	}
	requireInCSRMatchesTranspose(t, g)
}

// TestStreamInCSRReordered checks the permuted fused path: the in-CSR of
// a BuildReordered graph must be the transpose of the permuted graph.
func TestStreamInCSRReordered(t *testing.T) {
	const n, m = 73, 500
	for _, ec := range []edgeCase{{dups: true, selfLoops: true}, {weighted: true, dups: true}} {
		ref := NewBuilder(n)
		fillBuilder(ref, ec, n, m, 31)
		path := filepath.Join(t.TempDir(), "g.kmb2")
		writeKMB2Columns(t, path, n, slices.Clone(ref.srcs), slices.Clone(ref.dsts),
			slices.Clone(ref.weights), 11)
		src, err := OpenKMB2(path)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		for _, pol := range []ReorderPolicy{ReorderDegree, ReorderBlockedDegree} {
			for _, w := range []int{1, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", ec.name(), pol, w), func(t *testing.T) {
					got, ro, err := NewStreamBuilder(src).SetWorkers(w).WithInCSR(true).
						BuildReordered(pol, 4)
					if err != nil {
						t.Fatal(err)
					}
					if ro == nil {
						t.Fatal("no reordering returned")
					}
					requireInCSRMatchesTranspose(t, got)
				})
			}
		}
	}
}

// FuzzStreamInCSR exercises the dual-column scatter the way FuzzReadKMB2
// exercises the single-column one: arbitrary KMB2 bytes either fail or
// produce a graph whose fused transpose matches the oracle.
func FuzzStreamInCSR(f *testing.F) {
	for _, g := range fuzzSeedGraphs() {
		for _, be := range []int{3, DefaultBlockEdges} {
			path := filepath.Join(f.TempDir(), "seed.kmb2")
			if err := SaveKMB2(path, g, be); err != nil {
				f.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			addMutants(f, data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewKMB2Source(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if s.NumNodes() > 1<<20 {
			t.Skip("node count beyond the fuzz allocation bound")
		}
		g, err := NewStreamBuilder(s).SetWorkers(2).WithInCSR(true).Build()
		if err != nil {
			return
		}
		checkGraphInvariants(t, g)
		requireInCSRMatchesTranspose(t, g)
	})
}
