package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"kimbap/internal/par"
)

// Binary edge-block format "KMB2": the out-of-core counterpart to KMB1's
// CSR dump. A KMB2 file is a page-aligned sequence of fixed-stride edge
// blocks, each independently parseable, checkable, and readable in any
// order — the unit the streaming build and the parallel converter
// schedule over.
//
// Layout (all integers little-endian):
//
//	file header, one page (4096 B):
//	  [0:4)   magic "KMB2"
//	  [4:8)   flags (bit 0: weighted)
//	  [8:16)  numNodes
//	  [16:24) numEdges
//	  [24:28) blockEdges (edge capacity per block)
//	  [28:32) numBlocks
//	  [32:36) CRC-32C of bytes [0:32)
//	  [36:4096) zero padding
//	block i, at 4096 + i*blockStride (stride = align4096(32 + blockEdges*edgeBytes)):
//	  [0:4)   count (edges in this block: blockEdges, except the last)
//	  [4:8)   srcMin   (advisory: minimum src in the block)
//	  [8:12)  srcMax   (advisory: maximum src; srcMax < numNodes is checked)
//	  [12:16) CRC-32C of the payload bytes
//	  [16:32) zero padding
//	  payload: srcs [count]uint32, dsts [count]uint32,
//	           weights [count]float64-bits (weighted files only),
//	           zero padding to the stride
//
// Every block is covered by its own header and checksum, so a reader can
// verify any block without touching the rest of the file, and corruption
// is localized to one block's error instead of a silently wrong graph.

const (
	kmb2Page        = 4096
	kmb2FileHdrLen  = 36
	kmb2BlockHdrLen = 32

	// DefaultBlockEdges is the default block capacity. Small enough that
	// workers × block working set stays a rounding error next to any
	// real graph's CSR (the streaming build's ≤1.25×-CSR peak-allocation
	// gate binds on the bench analogues), large enough to amortize
	// per-block headers and read calls.
	DefaultBlockEdges = 4096

	// maxBlockEdges caps the per-block allocation a header can demand; a
	// larger claim is rejected before any buffer is sized from it.
	maxBlockEdges = 1 << 24
)

var kmb2Magic = [4]byte{'K', 'M', 'B', '2'}

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

type kmb2Header struct {
	weighted   bool
	numNodes   int
	numEdges   int64
	blockEdges int
	numBlocks  int
}

func (h kmb2Header) edgeBytes() int64 {
	if h.weighted {
		return 16
	}
	return 8
}

// blockStride returns the on-disk bytes per block: header + full payload,
// rounded up to the page size.
func (h kmb2Header) blockStride() int64 {
	raw := kmb2BlockHdrLen + int64(h.blockEdges)*h.edgeBytes()
	return (raw + kmb2Page - 1) &^ (kmb2Page - 1)
}

// blockCount returns block i's edge count: full except the last.
func (h kmb2Header) blockCount(i int) int {
	if i == h.numBlocks-1 {
		return int(h.numEdges - int64(h.numBlocks-1)*int64(h.blockEdges))
	}
	return h.blockEdges
}

func (h kmb2Header) encode(dst []byte) {
	copy(dst[0:4], kmb2Magic[:])
	var flags uint32
	if h.weighted {
		flags |= 1
	}
	binary.LittleEndian.PutUint32(dst[4:8], flags)
	binary.LittleEndian.PutUint64(dst[8:16], uint64(h.numNodes))
	binary.LittleEndian.PutUint64(dst[16:24], uint64(h.numEdges))
	binary.LittleEndian.PutUint32(dst[24:28], uint32(h.blockEdges))
	binary.LittleEndian.PutUint32(dst[28:32], uint32(h.numBlocks))
	binary.LittleEndian.PutUint32(dst[32:36], crc32.Checksum(dst[0:32], crcTable))
}

// decodeKMB2Header parses and validates the fixed header fields. The
// caller validates the file size against the implied layout before any
// block-sized allocation happens.
func decodeKMB2Header(b []byte) (kmb2Header, error) {
	var h kmb2Header
	if len(b) < kmb2FileHdrLen {
		return h, fmt.Errorf("graph: kmb2: short header (%d bytes)", len(b))
	}
	if [4]byte(b[0:4]) != kmb2Magic {
		return h, fmt.Errorf("graph: kmb2: bad magic %q", b[0:4])
	}
	if got, want := crc32.Checksum(b[0:32], crcTable), binary.LittleEndian.Uint32(b[32:36]); got != want {
		return h, fmt.Errorf("graph: kmb2: header checksum mismatch (got %08x, want %08x)", got, want)
	}
	flags := binary.LittleEndian.Uint32(b[4:8])
	if flags&^1 != 0 {
		return h, fmt.Errorf("graph: kmb2: unknown flags %#x", flags)
	}
	h.weighted = flags&1 != 0
	nodes := binary.LittleEndian.Uint64(b[8:16])
	edges := binary.LittleEndian.Uint64(b[16:24])
	if nodes > math.MaxUint32 {
		return h, fmt.Errorf("graph: kmb2: node count %d exceeds 32-bit IDs", nodes)
	}
	if edges > math.MaxInt64/16 {
		return h, fmt.Errorf("graph: kmb2: implausible edge count %d", edges)
	}
	h.numNodes = int(nodes)
	h.numEdges = int64(edges)
	h.blockEdges = int(binary.LittleEndian.Uint32(b[24:28]))
	h.numBlocks = int(binary.LittleEndian.Uint32(b[28:32]))
	if h.blockEdges < 1 || h.blockEdges > maxBlockEdges {
		return h, fmt.Errorf("graph: kmb2: block capacity %d out of range [1, %d]", h.blockEdges, maxBlockEdges)
	}
	wantBlocks := int((h.numEdges + int64(h.blockEdges) - 1) / int64(h.blockEdges))
	if h.numBlocks != wantBlocks {
		return h, fmt.Errorf("graph: kmb2: header claims %d blocks, %d edges at %d/block imply %d",
			h.numBlocks, h.numEdges, h.blockEdges, wantBlocks)
	}
	return h, nil
}

// KMB2Writer streams edges into a KMB2 file without materializing them:
// it buffers one block, flushing each full block as it goes, and patches
// the file header with the final counts on Close (the writer must
// therefore be seekable). Edges appear in the file in append order.
type KMB2Writer struct {
	w       io.WriteSeeker
	hdr     kmb2Header
	blk     *EdgeBlock
	scratch []byte
	off     int64
	closed  bool
}

// NewKMB2Writer starts a KMB2 file for a graph with numNodes nodes.
// blockEdges <= 0 selects DefaultBlockEdges.
func NewKMB2Writer(w io.WriteSeeker, numNodes int, weighted bool, blockEdges int) (*KMB2Writer, error) {
	if blockEdges <= 0 {
		blockEdges = DefaultBlockEdges
	}
	if blockEdges > maxBlockEdges {
		return nil, fmt.Errorf("graph: kmb2: block capacity %d exceeds max %d", blockEdges, maxBlockEdges)
	}
	if numNodes < 0 || int64(numNodes) > math.MaxUint32 {
		return nil, fmt.Errorf("graph: kmb2: node count %d out of range", numNodes)
	}
	kw := &KMB2Writer{
		w:   w,
		hdr: kmb2Header{weighted: weighted, numNodes: numNodes, blockEdges: blockEdges},
		blk: GetBlock(),
	}
	kw.blk.Reset(0, weighted)
	kw.scratch = make([]byte, kw.hdr.blockStride())
	// Placeholder header page; Close rewrites it with the real counts.
	if _, err := w.Write(kw.scratch[:kmb2Page]); err != nil {
		return nil, err
	}
	kw.off = kmb2Page
	return kw, nil
}

// Append adds the edges (srcs[i] -> dsts[i], weight weights[i]) to the
// file. weights must be nil exactly when the writer is unweighted.
func (kw *KMB2Writer) Append(srcs, dsts []NodeID, weights []float64) error {
	if kw.closed {
		return fmt.Errorf("graph: kmb2: append after Close")
	}
	if len(srcs) != len(dsts) || (weights != nil && len(weights) != len(srcs)) {
		return fmt.Errorf("graph: kmb2: column length mismatch")
	}
	if kw.hdr.weighted != (weights != nil) {
		return fmt.Errorf("graph: kmb2: weight column mismatch (writer weighted=%v)", kw.hdr.weighted)
	}
	for i := range srcs {
		w := 0.0
		if weights != nil {
			w = weights[i]
		}
		if err := kw.AppendEdge(srcs[i], dsts[i], w); err != nil {
			return err
		}
	}
	return nil
}

// AppendEdge adds a single edge; the weight is ignored for unweighted
// writers.
func (kw *KMB2Writer) AppendEdge(src, dst NodeID, w float64) error {
	if kw.closed {
		return fmt.Errorf("graph: kmb2: append after Close")
	}
	if int(src) >= kw.hdr.numNodes || int(dst) >= kw.hdr.numNodes {
		return fmt.Errorf("graph: kmb2: edge %d->%d out of range for %d nodes",
			src, dst, kw.hdr.numNodes)
	}
	kw.blk.Srcs = append(kw.blk.Srcs, src)
	kw.blk.Dsts = append(kw.blk.Dsts, dst)
	if kw.hdr.weighted {
		kw.blk.Weights = append(kw.blk.Weights, w)
	}
	if kw.blk.Len() == kw.hdr.blockEdges {
		return kw.flushBlock()
	}
	return nil
}

// AppendBlock adds one source block's edges (the streaming converter's
// path; blocks are repacked to the writer's capacity).
func (kw *KMB2Writer) AppendBlock(blk *EdgeBlock) error {
	return kw.Append(blk.Srcs, blk.Dsts, blk.Weights)
}

func (kw *KMB2Writer) flushBlock() error {
	count := kw.blk.Len()
	if count == 0 {
		return nil
	}
	b := kw.scratch[:kw.hdr.blockStride()]
	clear(b)
	srcMin, srcMax := kw.blk.Srcs[0], kw.blk.Srcs[0]
	at := kmb2BlockHdrLen
	for _, s := range kw.blk.Srcs {
		if s < srcMin {
			srcMin = s
		}
		if s > srcMax {
			srcMax = s
		}
		binary.LittleEndian.PutUint32(b[at:], uint32(s))
		at += 4
	}
	for _, d := range kw.blk.Dsts {
		binary.LittleEndian.PutUint32(b[at:], uint32(d))
		at += 4
	}
	if kw.hdr.weighted {
		for _, w := range kw.blk.Weights {
			binary.LittleEndian.PutUint64(b[at:], math.Float64bits(w))
			at += 8
		}
	}
	binary.LittleEndian.PutUint32(b[0:4], uint32(count))
	binary.LittleEndian.PutUint32(b[4:8], uint32(srcMin))
	binary.LittleEndian.PutUint32(b[8:12], uint32(srcMax))
	binary.LittleEndian.PutUint32(b[12:16], crc32.Checksum(b[kmb2BlockHdrLen:at], crcTable))
	if _, err := kw.w.Write(b); err != nil {
		return err
	}
	kw.off += int64(len(b))
	kw.hdr.numEdges += int64(count)
	kw.hdr.numBlocks++
	kw.blk.Srcs = kw.blk.Srcs[:0]
	kw.blk.Dsts = kw.blk.Dsts[:0]
	if kw.hdr.weighted {
		kw.blk.Weights = kw.blk.Weights[:0]
	}
	return nil
}

// Close flushes the final partial block and rewrites the header page with
// the real edge and block counts.
func (kw *KMB2Writer) Close() error {
	if kw.closed {
		return nil
	}
	kw.closed = true
	defer func() { PutBlock(kw.blk); kw.blk = nil }()
	if err := kw.flushBlock(); err != nil {
		return err
	}
	hdr := kw.scratch[:kmb2Page]
	clear(hdr)
	kw.hdr.encode(hdr)
	if _, err := kw.w.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := kw.w.Write(hdr); err != nil {
		return err
	}
	_, err := kw.w.Seek(kw.off, io.SeekStart)
	return err
}

// SaveKMB2 writes g to the named file in KMB2 format (CSR edge order).
// blockEdges <= 0 selects DefaultBlockEdges.
func SaveKMB2(path string, g *Graph, blockEdges int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	kw, err := NewKMB2Writer(f, g.NumNodes(), g.Weighted(), blockEdges)
	if err != nil {
		return err
	}
	for v := 0; v < g.NumNodes(); v++ {
		lo, hi := g.EdgeRange(NodeID(v))
		for e := lo; e < hi; e++ {
			if err := kw.AppendEdge(NodeID(v), g.Dst(e), g.Weight(e)); err != nil {
				return err
			}
		}
	}
	if err := kw.Close(); err != nil {
		return err
	}
	return f.Close()
}

// KMB2Source reads a KMB2 file as a BlockSource: random-access,
// checksum-verified, safe for concurrent ReadBlock calls. Open one with
// OpenKMB2 (mmap on Linux, buffered ReadAt elsewhere or on mmap failure)
// or NewKMB2Source over any io.ReaderAt.
type KMB2Source struct {
	r      io.ReaderAt
	data   []byte // mmap'd file contents; nil on the ReadAt path
	f      *os.File
	mm     *mmapHandle
	hdr    kmb2Header
	stride int64
}

// NewKMB2Source wraps an io.ReaderAt holding size bytes of KMB2 data.
// The header is validated against the exact file size before any
// block-sized buffer is allocated, so a corrupt header cannot drive an
// over-allocation.
func NewKMB2Source(r io.ReaderAt, size int64) (*KMB2Source, error) {
	var hb [kmb2FileHdrLen]byte
	if _, err := r.ReadAt(hb[:], 0); err != nil {
		return nil, fmt.Errorf("graph: kmb2: %w", err)
	}
	hdr, err := decodeKMB2Header(hb[:])
	if err != nil {
		return nil, err
	}
	s := &KMB2Source{r: r, hdr: hdr, stride: hdr.blockStride()}
	if want := kmb2Page + int64(hdr.numBlocks)*s.stride; size != want {
		return nil, fmt.Errorf("graph: kmb2: file is %d bytes, header implies %d", size, want)
	}
	return s, nil
}

// OpenKMB2 opens a KMB2 file for streaming reads, preferring a read-only
// mmap of the whole file (blocks are decoded straight out of the page
// cache, no read syscalls or scratch copies on the scan path) and
// falling back to buffered ReadAt when mapping is unavailable.
func OpenKMB2(path string) (*KMB2Source, error) {
	return openKMB2(path, false)
}

// OpenKMB2ReadAt opens a KMB2 file with the portable ReadAt path even
// where mmap is available — the fallback tests and benchmarks pin both
// paths to identical results.
func OpenKMB2ReadAt(path string) (*KMB2Source, error) {
	return openKMB2(path, true)
}

func openKMB2(path string, noMmap bool) (*KMB2Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := NewKMB2Source(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	if !noMmap && st.Size() > 0 {
		if mm, err := mmapFile(f, st.Size()); err == nil {
			s.mm = mm
			s.data = mm.data
		}
	}
	return s, nil
}

// Close unmaps and closes the underlying file, if this source owns one.
func (s *KMB2Source) Close() error {
	if s.mm != nil {
		s.mm.close()
		s.mm, s.data = nil, nil
	}
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

// Mapped reports whether reads go through an mmap'd view.
func (s *KMB2Source) Mapped() bool { return s.data != nil }

// NumNodes implements BlockSource.
func (s *KMB2Source) NumNodes() int { return s.hdr.numNodes }

// Weighted implements BlockSource.
func (s *KMB2Source) Weighted() bool { return s.hdr.weighted }

// NumBlocks implements BlockSource.
func (s *KMB2Source) NumBlocks() int { return s.hdr.numBlocks }

// NumEdges returns the total edge count from the header.
func (s *KMB2Source) NumEdges() int64 { return s.hdr.numEdges }

// ReadBlock implements BlockSource: verify block i's header and payload
// checksum, then decode the columns into blk.
func (s *KMB2Source) ReadBlock(i int, blk *EdgeBlock) error {
	if i < 0 || i >= s.hdr.numBlocks {
		return fmt.Errorf("graph: kmb2: block %d out of range [0, %d)", i, s.hdr.numBlocks)
	}
	count := s.hdr.blockCount(i)
	need := kmb2BlockHdrLen + int64(count)*s.hdr.edgeBytes()
	off := kmb2Page + int64(i)*s.stride
	var b []byte
	if s.data != nil {
		b = s.data[off : off+need]
	} else {
		b = blk.RawBuf(int(need))
		if _, err := s.r.ReadAt(b, off); err != nil {
			return fmt.Errorf("graph: kmb2: block %d: %w", i, err)
		}
	}
	if got := int(binary.LittleEndian.Uint32(b[0:4])); got != count {
		return fmt.Errorf("graph: kmb2: block %d header claims %d edges, layout implies %d", i, got, count)
	}
	srcMax := binary.LittleEndian.Uint32(b[8:12])
	if count > 0 && int64(srcMax) >= int64(s.hdr.numNodes) {
		return fmt.Errorf("graph: kmb2: block %d srcMax %d out of range for %d nodes", i, srcMax, s.hdr.numNodes)
	}
	payload := b[kmb2BlockHdrLen:need]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[12:16]); got != want {
		return fmt.Errorf("graph: kmb2: block %d payload checksum mismatch (got %08x, want %08x)", i, got, want)
	}
	blk.Reset(count, s.hdr.weighted)
	decodeNodeIDs(blk.Srcs, payload)
	decodeNodeIDs(blk.Dsts, payload[count*4:])
	if s.hdr.weighted {
		decodeFloat64s(blk.Weights, payload[count*8:])
	}
	return nil
}

// LoadKMB2 reads a whole KMB2 file into an in-memory CSR graph: all
// blocks are decoded into full edge columns in parallel (block stride
// gives each block's exact column offset), then built with the standard
// in-memory pipeline. This is the materialize-then-build twin the
// streaming path is benchmarked against, and a convenience loader for
// graphs that comfortably fit.
//kimbap:deterministic
func LoadKMB2(path string, workers int) (*Graph, error) {
	s, err := OpenKMB2(path)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	m := s.NumEdges()
	srcs := make([]NodeID, m)
	dsts := make([]NodeID, m)
	var ws []float64
	if s.Weighted() {
		ws = make([]float64, m)
	}
	w := par.Resolve(workers)
	if w > s.NumBlocks() {
		w = s.NumBlocks()
	}
	if w < 1 {
		w = 1
	}
	err = par.DoErr(w, func(worker int) error {
		lo, hi := par.Range(worker, w, s.NumBlocks())
		if lo == hi {
			return nil
		}
		blk := GetBlock()
		defer PutBlock(blk)
		for i := lo; i < hi; i++ {
			if err := s.ReadBlock(i, blk); err != nil {
				return err
			}
			at := int64(i) * int64(s.hdr.blockEdges)
			copy(srcs[at:], blk.Srcs)
			copy(dsts[at:], blk.Dsts)
			if ws != nil {
				copy(ws[at:], blk.Weights)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return NewBuilderFromArrays(s.NumNodes(), srcs, dsts, ws).SetWorkers(workers).Build(), nil
}
