package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"unsafe"
)

// TextSource is the streaming counterpart of ReadEdgeList: a text edge
// list exposed as a BlockSource by splitting the file at newline
// boundaries into ~4 MB shards. Each shard is parsed independently (and
// re-parsed on the second scan) with byte-level field splitting — no
// strings.Fields / strings.TrimSpace / per-line allocations on the hot
// path. The file is mmapped when possible; otherwise shards are read
// with ReadAt into pooled block scratch.
//
// Streaming needs the node count and weightedness before the first scan,
// so TextSource is stricter than ReadEdgeList in two documented ways:
//
//   - a "nodes N" directive must precede the first edge line (or the
//     count must be passed in TextConfig.NumNodes) — max-ID inference
//     would itself be a full scan;
//   - edge lines must be uniformly weighted or uniformly unweighted,
//     fixed by the first edge line.
//
// Inputs produced by WriteEdgeList satisfy both. For conforming inputs
// the resulting graph is bit-identical to ReadEdgeList's.
type TextSource struct {
	f        *os.File
	mm       *mmapHandle
	size     int64
	numNodes int
	weighted bool
	bounds   []int64 // len NumBlocks()+1; shard i is bytes [bounds[i], bounds[i+1])
}

// TextConfig tunes OpenTextConfig. The zero value means: node count from
// the file's directive, default shard size, mmap when available.
type TextConfig struct {
	// NumNodes, when > 0, supplies the node count for files without a
	// leading "nodes" directive. A directive that disagrees is an error.
	NumNodes int
	// ShardBytes is the target shard size (boundaries advance to the next
	// newline). <= 0 means DefaultShardBytes. Tests use tiny values to
	// force many shards on small inputs.
	ShardBytes int
	// NoMmap forces the buffered ReadAt path even where mmap works, for
	// the mmap-vs-fallback identity tests.
	NoMmap bool
}

// DefaultShardBytes is the target text shard size: big enough to
// amortize parse startup, small enough that workers × shard stays a
// rounding error next to the CSR.
const DefaultShardBytes = 4 << 20

// OpenText opens a text edge list for streaming with default config.
func OpenText(path string) (*TextSource, error) {
	return OpenTextConfig(path, TextConfig{})
}

// OpenTextConfig opens a text edge list for streaming. The prologue is
// probed for the nodes directive and weightedness (stopping at the first
// edge line), and shard boundaries are computed; no edge is parsed until
// the scans run.
func OpenTextConfig(path string, cfg TextConfig) (*TextSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	ts := &TextSource{f: f, size: st.Size(), numNodes: -1}
	if cfg.NumNodes > 0 {
		ts.numNodes = cfg.NumNodes
	}
	if !cfg.NoMmap {
		if mm, err := mmapFile(f, ts.size); err == nil {
			ts.mm = mm
		}
	}
	if err := ts.probe(); err != nil {
		ts.Close()
		return nil, err
	}
	if err := ts.computeBounds(cfg.ShardBytes); err != nil {
		ts.Close()
		return nil, err
	}
	return ts, nil
}

// Close releases the mapping and file handle.
func (ts *TextSource) Close() error {
	if ts.mm != nil {
		ts.mm.close()
		ts.mm = nil
	}
	if ts.f == nil {
		return nil
	}
	err := ts.f.Close()
	ts.f = nil
	return err
}

// Mapped reports whether the source reads through an mmap (false means
// the buffered ReadAt fallback).
func (ts *TextSource) Mapped() bool { return ts.mm != nil }

// NumNodes implements BlockSource.
func (ts *TextSource) NumNodes() int { return ts.numNodes }

// Weighted implements BlockSource.
func (ts *TextSource) Weighted() bool { return ts.weighted }

// NumBlocks implements BlockSource.
func (ts *TextSource) NumBlocks() int { return len(ts.bounds) - 1 }

// probe scans the prologue line by line for the nodes directive and the
// first edge line (which fixes weightedness), then stops.
func (ts *TextSource) probe() error {
	sc := bufio.NewScanner(io.NewSectionReader(ts.f, 0, ts.size))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := trimSpaceBytes(sc.Bytes())
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		f0, rest := splitField(line)
		if string(f0) == "nodes" {
			f1, rest2 := splitField(rest)
			if len(f1) > 0 && len(rest2) == 0 {
				n, err := strconv.Atoi(string(f1))
				if err != nil || n < 0 || int64(n) > 1<<32-1 {
					return fmt.Errorf("graph: bad nodes directive %q", line)
				}
				if ts.numNodes >= 0 && ts.numNodes != n {
					return fmt.Errorf("graph: nodes directive %d disagrees with configured count %d",
						n, ts.numNodes)
				}
				ts.numNodes = n
				continue
			}
		}
		// First edge line: field count fixes weightedness for the file.
		nf := 1
		for len(rest) > 0 {
			_, rest = splitField(rest)
			nf++
		}
		if nf < 2 || nf > 3 {
			return fmt.Errorf("graph: malformed edge line %q", line)
		}
		ts.weighted = nf == 3
		if ts.numNodes < 0 {
			return fmt.Errorf("graph: streaming text needs a nodes directive before the first edge (or TextConfig.NumNodes)")
		}
		return nil
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// No edges at all: an empty graph, possibly with a declared size.
	if ts.numNodes < 0 {
		ts.numNodes = 0
	}
	return nil
}

// computeBounds splits [0, size) at ~shard-sized offsets advanced to the
// next newline, so every line belongs to exactly one shard.
func (ts *TextSource) computeBounds(shard int) error {
	if shard <= 0 {
		shard = DefaultShardBytes
	}
	ts.bounds = append(ts.bounds[:0], 0)
	if ts.size == 0 {
		return nil
	}
	for off := int64(shard); off < ts.size; off += int64(shard) {
		b, err := ts.nextLineStart(off)
		if err != nil {
			return err
		}
		if b >= ts.size {
			break
		}
		if b > ts.bounds[len(ts.bounds)-1] {
			ts.bounds = append(ts.bounds, b)
		}
	}
	ts.bounds = append(ts.bounds, ts.size)
	return nil
}

// nextLineStart returns the offset of the first byte after the first
// newline at or past off.
func (ts *TextSource) nextLineStart(off int64) (int64, error) {
	if ts.mm != nil {
		if i := bytes.IndexByte(ts.mm.data[off:], '\n'); i >= 0 {
			return off + int64(i) + 1, nil
		}
		return ts.size, nil
	}
	var buf [32 << 10]byte
	for off < ts.size {
		n, err := ts.f.ReadAt(buf[:min(int64(len(buf)), ts.size-off)], off)
		if n > 0 {
			if i := bytes.IndexByte(buf[:n], '\n'); i >= 0 {
				return off + int64(i) + 1, nil
			}
			off += int64(n)
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		if n == 0 {
			break
		}
	}
	return ts.size, nil
}

// ReadBlock implements BlockSource: it parses shard i's lines into blk.
// Safe for concurrent calls on distinct indices.
func (ts *TextSource) ReadBlock(i int, blk *EdgeBlock) error {
	lo, hi := ts.bounds[i], ts.bounds[i+1]
	var data []byte
	if ts.mm != nil {
		data = ts.mm.data[lo:hi]
	} else {
		data = blk.RawBuf(int(hi - lo))
		if _, err := ts.f.ReadAt(data, lo); err != nil {
			return err
		}
	}
	blk.Srcs = blk.Srcs[:0]
	blk.Dsts = blk.Dsts[:0]
	if ts.weighted {
		blk.Weights = blk.Weights[:0]
	} else {
		blk.Weights = nil
	}
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		if err := ts.parseLine(line, blk); err != nil {
			return err
		}
	}
	return nil
}

// parseLine parses one edge (or directive/comment) line into blk with
// no allocations: byte-level trimming and splitting, a manual uint32
// parser for endpoints, and a zero-copy string view for ParseFloat so
// weights decode bit-identically to ReadEdgeList.
func (ts *TextSource) parseLine(line []byte, blk *EdgeBlock) error {
	line = trimSpaceBytes(line)
	if len(line) == 0 || line[0] == '#' || line[0] == '%' {
		return nil
	}
	f0, rest := splitField(line)
	if string(f0) == "nodes" {
		f1, rest2 := splitField(rest)
		if len(f1) > 0 && len(rest2) == 0 {
			n, err := strconv.Atoi(string(f1))
			if err != nil {
				return fmt.Errorf("graph: bad nodes directive %q: %w", line, err)
			}
			if n != ts.numNodes {
				return fmt.Errorf("graph: conflicting nodes directives (%d after %d)", n, ts.numNodes)
			}
			return nil
		}
	}
	src, ok := parseNodeField(f0)
	if !ok {
		return fmt.Errorf("graph: bad src in %q", line)
	}
	f1, rest := splitField(rest)
	if len(f1) == 0 {
		return fmt.Errorf("graph: malformed edge line %q", line)
	}
	dst, ok := parseNodeField(f1)
	if !ok {
		return fmt.Errorf("graph: bad dst in %q", line)
	}
	if src >= uint64(ts.numNodes) || dst >= uint64(ts.numNodes) {
		return fmt.Errorf("graph: edge endpoint %d out of range for declared nodes %d",
			max(src, dst), ts.numNodes)
	}
	f2, rest := splitField(rest)
	switch {
	case len(f2) == 0:
		if ts.weighted {
			return fmt.Errorf("graph: unweighted line %q in weighted stream (lines must be uniform)", line)
		}
	case len(rest) != 0:
		return fmt.Errorf("graph: malformed edge line %q", line)
	default:
		if !ts.weighted {
			return fmt.Errorf("graph: weighted line %q in unweighted stream (lines must be uniform)", line)
		}
		w, err := strconv.ParseFloat(zeroCopyString(f2), 64)
		if err != nil {
			return fmt.Errorf("graph: bad weight in %q: %v", line, err)
		}
		blk.Weights = append(blk.Weights, w)
	}
	blk.Srcs = append(blk.Srcs, NodeID(src))
	blk.Dsts = append(blk.Dsts, NodeID(dst))
	return nil
}

func isSpaceByte(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '\v', '\f':
		return true
	}
	return false
}

// trimSpaceBytes trims ASCII whitespace in place (edge lists are ASCII;
// this is the alloc-free stand-in for strings.TrimSpace).
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpaceByte(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceByte(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// splitField returns the first whitespace-delimited field and the rest of
// the line with leading whitespace consumed. An empty field means the
// line is exhausted.
func splitField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && !isSpaceByte(b[i]) {
		i++
	}
	field = b[:i]
	for i < len(b) && isSpaceByte(b[i]) {
		i++
	}
	return field, b[i:]
}

// parseNodeField parses a base-10 node ID that must fit in 32 bits, the
// same domain strconv.ParseUint(f, 10, 32) accepts.
func parseNodeField(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
		if v > 1<<32-1 {
			return 0, false
		}
	}
	return v, true
}

// zeroCopyString views b as a string for the duration of a call that
// does not retain it (strconv.ParseFloat). Avoids the per-weight copy a
// string(b) conversion would make.
func zeroCopyString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}
