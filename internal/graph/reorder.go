package graph

import (
	"fmt"
	"math"
	"slices"

	"kimbap/internal/par"
)

// Locality-aware vertex reordering (DESIGN.md §14). A reordering pass
// permutes node IDs at ingestion time so that the IDs touched most often
// by EdgeMap — the high-degree hubs a power-law graph's edges mostly point
// at — are clustered into a dense prefix of the ID space. Property arrays,
// frontier bitsets, and the base-relative wire encodings all get cheaper
// when the hot IDs are adjacent; the algorithms layer translates between
// the two ID spaces at its boundaries so results are reported in original
// IDs, bit-identical with reordering on or off.
//
// Determinism is by construction, the same argument as the counting-sort
// build: every node gets a distinct packed sort key (inverted-degree high
// bits, original ID low bits), distinct keys have a unique ascending
// order, and any correct sort — at any worker count — produces it. The
// permuted CSR is rebuilt with the existing conflict-free scatter and the
// total (dst, weight) adjacency order.

// ReorderPolicy names a vertex-reordering policy.
type ReorderPolicy string

const (
	// ReorderNone leaves the graph in its original ID order.
	ReorderNone ReorderPolicy = "none"
	// ReorderDegree sorts all nodes by descending degree, ties broken by
	// ascending original ID: hubs cluster at the low end of the ID space.
	ReorderDegree ReorderPolicy = "degree"
	// ReorderBlockedDegree sorts by descending degree *within*
	// partition-sized blocks (the same degree-balanced boundaries the
	// partitioner computes), so every node stays inside its block and the
	// partition assignment is preserved exactly.
	ReorderBlockedDegree ReorderPolicy = "blocked-degree"
)

// ReorderPolicies lists the policies that actually permute (ReorderNone is
// the absence of a policy).
var ReorderPolicies = []ReorderPolicy{ReorderDegree, ReorderBlockedDegree}

// Reordering is a node permutation and its inverse. Perm maps original IDs
// to reordered ("current") IDs; Inv maps back. For ReorderBlockedDegree,
// Boundaries carries the block bounds the permutation preserves — valid in
// both ID spaces, since each block maps onto itself — so the partitioner
// can adopt them instead of recomputing.
type Reordering struct {
	Policy     ReorderPolicy
	Perm       []NodeID // original -> current
	Inv        []NodeID // current -> original
	Boundaries []NodeID // blocked-degree only: len blocks+1, else nil
}

// CurrentID maps an original node ID into the reordered space. A nil
// receiver is the identity, so call sites need no reorder-enabled branch.
func (ro *Reordering) CurrentID(orig NodeID) NodeID {
	if ro == nil {
		return orig
	}
	return ro.Perm[orig]
}

// OriginalID maps a reordered node ID back to the original space. A nil
// receiver is the identity.
func (ro *Reordering) OriginalID(cur NodeID) NodeID {
	if ro == nil {
		return cur
	}
	return ro.Inv[cur]
}

// ReorderOptions configures a Reorder pass.
type ReorderOptions struct {
	Policy ReorderPolicy
	// Blocks is the block count for ReorderBlockedDegree — normally the
	// host count the graph will be partitioned across. Values < 1 default
	// to 1 (degenerating to a whole-graph degree sort that still records
	// boundaries).
	Blocks int
	// Workers is the par pool width (0 = all cores). The output is
	// bit-identical at every setting.
	Workers int
}

// Reorder permutes g's node IDs under the given policy and returns the
// permuted CSR plus the permutation. The input graph is not modified. For
// ReorderNone (or empty policy) it returns g unchanged with a nil
// Reordering; unknown policies are an error.
//
//kimbap:deterministic
func Reorder(g *Graph, opts ReorderOptions) (*Graph, *Reordering, error) {
	switch opts.Policy {
	case ReorderNone, "":
		return g, nil, nil
	case ReorderDegree, ReorderBlockedDegree:
	default:
		return nil, nil, fmt.Errorf("graph: unknown reorder policy %q (have %v)",
			opts.Policy, ReorderPolicies)
	}
	workers := par.Resolve(opts.Workers)
	n := g.NumNodes()
	ro := computeReordering(n, g.NumEdges(),
		func(v int) int64 { return int64(g.Degree(NodeID(v))) },
		opts.Policy, opts.Blocks, workers)
	return applyReordering(g, ro, workers), ro, nil
}

// BlockBoundaries computes the degree-balanced block bounds the
// partitioner uses for master ranges: len blocks+1, bounds[b] ≤ v <
// bounds[b+1] puts node v in block b. Exported so the blocked-degree
// reorder and the partitioner share one definition — preservation of the
// partition assignment depends on the walks being identical.
func BlockBoundaries(g *Graph, blocks int) []NodeID {
	return boundariesFromDegrees(g.NumNodes(), g.NumEdges(), blocks,
		func(v int) int64 { return int64(g.Degree(NodeID(v))) })
}

// boundariesFromDegrees is the shared walk: each node weighs degree+1 (so
// empty nodes also spread), block b ends at the first node where the
// accumulated weight reaches b/blocks of the total.
func boundariesFromDegrees(n int, totalEdges int64, blocks int, degree func(v int) int64) []NodeID {
	if blocks < 1 {
		panic("graph: block count must be >= 1")
	}
	total := totalEdges + int64(n)
	bounds := make([]NodeID, blocks+1)
	bounds[blocks] = NodeID(n)
	target := total / int64(blocks)
	h := 1
	var acc int64
	for v := 0; v < n && h < blocks; v++ {
		acc += degree(v) + 1
		if acc >= target*int64(h) {
			bounds[h] = NodeID(v + 1)
			h++
		}
	}
	for ; h < blocks; h++ {
		bounds[h] = NodeID(n)
	}
	return bounds
}

// computeReordering builds the permutation for n nodes from a degree
// oracle. Each node's sort key packs the bit-inverted (clamped) degree
// above the original ID, so ascending key order is descending degree with
// ascending-ID ties — a total order with distinct keys, hence one unique
// result at every worker count.
func computeReordering(n int, totalEdges int64, degree func(v int) int64,
	policy ReorderPolicy, blocks, workers int) *Reordering {

	ro := &Reordering{
		Policy: policy,
		Perm:   make([]NodeID, n),
		Inv:    make([]NodeID, n),
	}
	keys := make([]uint64, n)
	par.Static(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			d := degree(v)
			if d > math.MaxUint32 {
				d = math.MaxUint32
			}
			keys[v] = (math.MaxUint32-uint64(d))<<32 | uint64(v)
		}
	})
	if policy == ReorderBlockedDegree {
		if blocks < 1 {
			blocks = 1
		}
		ro.Boundaries = boundariesFromDegrees(n, totalEdges, blocks, degree)
		// Sort each block's key range independently; every node stays in
		// its block, so the boundaries hold in both ID spaces.
		par.Dynamic(workers, blocks, 1, func(lo, hi int) {
			for b := lo; b < hi; b++ {
				slices.Sort(keys[ro.Boundaries[b]:ro.Boundaries[b+1]])
			}
		})
	} else {
		parallelSortKeys(keys, workers)
	}
	par.Static(workers, n, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			ro.Inv[j] = NodeID(keys[j] & math.MaxUint32)
		}
	})
	// Inv is a permutation, so every Perm slot is written exactly once.
	//
	//kimbap:conflictfree
	par.Static(workers, n, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			ro.Perm[ro.Inv[j]] = NodeID(j)
		}
	})
	return ro
}

// parallelSortKeys sorts keys ascending: per-worker chunk sorts over the
// static par.Range split, then log₂(workers) rounds of pairwise run
// merges. Keys are distinct, so the result is the unique sorted order
// regardless of the chunking.
func parallelSortKeys(keys []uint64, workers int) {
	n := len(keys)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 4096 {
		slices.Sort(keys)
		return
	}
	bounds := make([]int, workers+1)
	for w := 0; w < workers; w++ {
		bounds[w], _ = par.Range(w, workers, n)
	}
	bounds[workers] = n
	par.Do(workers, func(w int) {
		slices.Sort(keys[bounds[w]:bounds[w+1]])
	})
	scratch := make([]uint64, n)
	src, dst := keys, scratch
	for len(bounds) > 2 {
		runs := len(bounds) - 1
		pairs := (runs + 1) / 2
		par.Dynamic(workers, pairs, 1, func(plo, phi int) {
			for p := plo; p < phi; p++ {
				lo := bounds[2*p]
				if 2*p+2 > runs {
					// Odd trailing run: carry it into the next round.
					copy(dst[lo:bounds[2*p+1]], src[lo:bounds[2*p+1]])
					continue
				}
				mid, hi := bounds[2*p+1], bounds[2*p+2]
				mergeKeyRuns(dst[lo:hi], src[lo:mid], src[mid:hi])
			}
		})
		nb := bounds[:0:0]
		for i := 0; i < len(bounds); i += 2 {
			nb = append(nb, bounds[i])
		}
		if nb[len(nb)-1] != n {
			nb = append(nb, n)
		}
		bounds = nb
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// mergeKeyRuns merges two sorted runs into dst (len(dst) = len(a)+len(b)).
func mergeKeyRuns(dst, a, b []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// applyReordering rebuilds the CSR under the permutation: new offsets from
// permuted degrees, a conflict-free scatter (each original node owns its
// new node's full adjacency range), then the shared total-order adjacency
// sort — so the result is independent of scatter order, and identical to
// what the fused streaming path (StreamBuilder.BuildReordered) produces.
func applyReordering(g *Graph, ro *Reordering, workers int) *Graph {
	n, m := g.NumNodes(), g.NumEdges()
	perm := ro.Perm
	ng := &Graph{offsets: make([]int64, n+1), dsts: make([]NodeID, m)}
	if g.weights != nil {
		ng.weights = make([]float64, m)
	}
	par.Static(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			ng.offsets[perm[v]+1] = g.offsets[v+1] - g.offsets[v]
		}
	})
	par.PrefixSum(workers, ng.offsets)
	// Scatter: node v's edges land in new node perm[v]'s reserved range —
	// ranges are disjoint, so no two workers touch the same slot.
	//
	//kimbap:conflictfree
	par.Dynamic(workers, n, 128, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			elo, ehi := g.offsets[v], g.offsets[v+1]
			at := ng.offsets[perm[v]]
			for e := elo; e < ehi; e++ {
				ng.dsts[at] = perm[g.dsts[e]]
				if ng.weights != nil {
					ng.weights[at] = g.weights[e]
				}
				at++
			}
		}
	})
	sortAdjacency(ng, workers)
	return ng
}

// mergeCountsPermuted is mergeCounts with a permutation applied to the
// offset targets: column v's sum lands at offsets[perm[v]+1] and worker
// cursors start at offsets[perm[v]], so a scatter indexed by *original*
// source IDs writes straight into the *permuted* CSR. Used by the fused
// streaming reorder stage.
func mergeCountsPermuted(workers, n int, cnt, offsets []int64, perm []NodeID) {
	par.Static(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			var s int64
			for w := 0; w < workers; w++ {
				s += cnt[w*n+v]
			}
			offsets[perm[v]+1] = s
		}
	})
	par.PrefixSum(workers, offsets)
	par.Static(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			pos := offsets[perm[v]]
			for w := 0; w < workers; w++ {
				c := cnt[w*n+v]
				cnt[w*n+v] = pos
				pos += c
			}
		}
	})
}
