package graph

import (
	"fmt"
	"slices"
	"sync"

	"kimbap/internal/par"
)

// This file is the parallel ingestion path: Build as a two-pass counting
// sort over the builder's edge columns, chunked parallel Symmetrize and
// Dedup, and the shared in-place adjacency sort. Every routine here has a
// retained serial reference in graph.go (BuildSerial, SymmetrizeSerial,
// DedupSerial) that the equivalence tests compare against bit for bit.
//
// The parallel variants are deterministic by construction: all intermediate
// state is keyed by worker index over static par.Range splits and merged in
// worker order, so the output is identical at every worker count — and
// identical to the serial reference, because the final per-node adjacency
// order is the total (dst, weight) order, independent of scatter order.

// NewBuilderFromArrays wraps pre-filled edge columns in a Builder. The
// slices are adopted, not copied — the deterministic generators fill them
// in parallel and hand them over without materializing []Edge. weights may
// be nil for an unweighted graph; if non-nil it must be parallel to
// srcs/dsts.
func NewBuilderFromArrays(numNodes int, srcs, dsts []NodeID, weights []float64) *Builder {
	if len(srcs) != len(dsts) || (weights != nil && len(weights) != len(srcs)) {
		panic("graph: NewBuilderFromArrays column length mismatch")
	}
	return &Builder{numNodes: numNodes, srcs: srcs, dsts: dsts, weights: weights}
}

// FromArrays builds a CSR graph directly from edge columns with the given
// worker count (0 = all cores). This is the partitioner's per-host path: it
// fills exact-size columns in parallel and never goes through AddEdge.
//kimbap:deterministic
func FromArrays(numNodes int, srcs, dsts []NodeID, weights []float64, workers int) *Graph {
	return NewBuilderFromArrays(numNodes, srcs, dsts, weights).SetWorkers(workers).Build()
}

// countPool recycles the (workers x numNodes) cursor matrices across Build
// and Dedup calls so the warm path stays allocation-bounded (see
// TestBuildWarmPathAllocs).
var countPool sync.Pool

func getCounts(n int) []int64 {
	if v, _ := countPool.Get().(*[]int64); v != nil && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]int64, n)
}

func putCounts(s []int64) { countPool.Put(&s) }

// buildWorkers clamps the effective worker count for an m-edge pipeline:
// beyond one worker per edge the extra workers only add empty ranges and
// cursor rows.
func (b *Builder) buildWorkers(m int) int {
	w := par.Resolve(b.workers)
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Symmetrize adds the reverse of every edge added so far, making the edge
// set symmetric. Self-loops are not duplicated. Call before Build.
//
// Each worker counts the reversible edges in its static chunk; an exclusive
// scan of the per-worker counts gives each chunk's write start, so the
// reversed edges land in exactly the order SymmetrizeSerial appends them.
//kimbap:deterministic
func (b *Builder) Symmetrize() {
	orig := len(b.srcs)
	workers := b.buildWorkers(orig)
	if orig == 0 {
		return
	}
	counts := make([]int64, workers)
	par.Do(workers, func(w int) {
		lo, hi := par.Range(w, workers, orig)
		var c int64
		for i := lo; i < hi; i++ {
			if b.srcs[i] != b.dsts[i] {
				c++
			}
		}
		counts[w] = c
	})
	var added int64
	for w := range counts {
		c := counts[w]
		counts[w] = added
		added += c
	}
	total := orig + int(added)
	b.srcs = slices.Grow(b.srcs, int(added))[:total]
	b.dsts = slices.Grow(b.dsts, int(added))[:total]
	if b.weights != nil {
		b.weights = slices.Grow(b.weights, int(added))[:total]
	}
	par.Do(workers, func(w int) {
		lo, hi := par.Range(w, workers, orig)
		at := orig + int(counts[w])
		for i := lo; i < hi; i++ {
			s, d := b.srcs[i], b.dsts[i]
			if s == d {
				continue
			}
			b.srcs[at] = d
			b.dsts[at] = s
			if b.weights != nil {
				b.weights[at] = b.weights[i]
			}
			at++
		}
	})
}

// countingSortBySrc runs the shared two-pass counting sort: per-worker
// degree counts over static edge ranges, a parallel prefix sum into offsets
// (length numNodes+1, filled here), then conversion of the count matrix
// into scatter cursors. The returned matrix has worker w's cursor row at
// [w*n, (w+1)*n); row w is owned by worker w for the caller's scatter pass
// and cell (w, v) starts at offsets[v] plus the counts of workers < w for v
// — which is what makes a chunked parallel scatter reproduce the serial
// insertion order. Callers must putCounts the matrix when done.
func (b *Builder) countingSortBySrc(workers int, offsets []int64, validateDst bool) []int64 {
	n, m := b.numNodes, len(b.srcs)
	cnt := getCounts(workers * n)
	par.Do(workers, func(w int) {
		c := cnt[w*n : (w+1)*n]
		clear(c)
		lo, hi := par.Range(w, workers, m)
		for i := lo; i < hi; i++ {
			s, d := b.srcs[i], b.dsts[i]
			if int(s) >= n || (validateDst && int(d) >= n) {
				panic(fmt.Sprintf("graph: edge %d->%d out of range for %d nodes", s, d, n))
			}
			c[s]++
		}
	})
	mergeCounts(workers, n, cnt, offsets)
	return cnt
}

// mergeCounts stitches a per-worker count matrix into CSR offsets and
// scatter cursors: column sums into offsets[1..n], a parallel prefix sum,
// then conversion of each count cell into that worker's write cursor for
// the node. Shared by the in-memory counting sort and the streaming
// two-scan build — the cursor math is what makes both scatters
// conflict-free and insertion-ordered.
func mergeCounts(workers, n int, cnt, offsets []int64) {
	par.Static(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			var s int64
			for w := 0; w < workers; w++ {
				s += cnt[w*n+v]
			}
			offsets[v+1] = s
		}
	})
	par.PrefixSum(workers, offsets)
	par.Static(workers, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			pos := offsets[v]
			for w := 0; w < workers; w++ {
				c := cnt[w*n+v]
				cnt[w*n+v] = pos
				pos += c
			}
		}
	})
}

// sortAdjacency runs the per-node adjacency sort on a scattered CSR,
// dynamically balanced: power-law hubs cost far more than the grain
// average. The (dst, weight) order is total up to fully equal entries, so
// the result is independent of scatter order — the root of the
// bit-identity guarantee shared by Build, BuildSerial, and StreamBuilder.
func sortAdjacency(g *Graph, workers int) {
	par.Dynamic(workers, g.NumNodes(), 128, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			elo, ehi := g.offsets[v], g.offsets[v+1]
			if g.weights != nil {
				sortDstWeight(g.dsts[elo:ehi], g.weights[elo:ehi])
			} else {
				slices.Sort(g.dsts[elo:ehi])
			}
		}
	})
}

// Build produces the CSR graph with a two-pass parallel counting sort. The
// Builder must not be reused afterwards. Neighbor lists are sorted by
// destination (and weight, for weighted graphs); the output is
// bit-identical to BuildSerial at every worker count.
//kimbap:deterministic
func (b *Builder) Build() *Graph {
	n, m := b.numNodes, len(b.srcs)
	workers := b.buildWorkers(m)
	g := &Graph{offsets: make([]int64, n+1), dsts: make([]NodeID, m)}
	if b.weights != nil {
		g.weights = make([]float64, m)
	}
	if m == 0 {
		return g
	}
	cnt := b.countingSortBySrc(workers, g.offsets, true)
	// Scatter: conflict-free — every write lands in a slot reserved by this
	// worker's cursor row.
	//
	//kimbap:conflictfree
	par.Do(workers, func(w int) {
		c := cnt[w*n : (w+1)*n]
		lo, hi := par.Range(w, workers, m)
		if b.weights != nil {
			for i := lo; i < hi; i++ {
				at := c[b.srcs[i]]
				c[b.srcs[i]] = at + 1
				g.dsts[at] = b.dsts[i]
				g.weights[at] = b.weights[i]
			}
		} else {
			for i := lo; i < hi; i++ {
				at := c[b.srcs[i]]
				c[b.srcs[i]] = at + 1
				g.dsts[at] = b.dsts[i]
			}
		}
	})
	putCounts(cnt)
	sortAdjacency(g, workers)
	return g
}

// Dedup removes duplicate (src,dst) pairs, keeping the smallest weight (see
// DedupSerial for why the minimum). Call before Build if the edge stream
// may contain duplicates.
//
// Pipeline: counting-sort the columns by source into scratch (the source
// column becomes implicit in the bucket boundaries), sort each source
// bucket in place by (dst, weight), then compact the first entry of each
// dst run — the minimum weight — back into the builder's columns with a
// second exclusive scan. The result is the globally (src, dst, weight)-
// sorted first-survivor edge list: exactly DedupSerial's output. Unlike
// DedupSerial, this path validates sources eagerly (it must bucket by
// them); out-of-range destinations are still caught by Build.
//kimbap:deterministic
func (b *Builder) Dedup() {
	n, m := b.numNodes, len(b.srcs)
	workers := b.buildWorkers(m)
	if m == 0 {
		return
	}
	boff := make([]int64, n+1)
	cnt := b.countingSortBySrc(workers, boff, false)
	sd := make([]NodeID, m)
	var sw []float64
	if b.weights != nil {
		sw = make([]float64, m)
	}
	//kimbap:conflictfree
	par.Do(workers, func(w int) {
		c := cnt[w*n : (w+1)*n]
		lo, hi := par.Range(w, workers, m)
		for i := lo; i < hi; i++ {
			at := c[b.srcs[i]]
			c[b.srcs[i]] = at + 1
			sd[at] = b.dsts[i]
			if sw != nil {
				sw[at] = b.weights[i]
			}
		}
	})
	putCounts(cnt)
	par.Dynamic(workers, n, 128, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			blo, bhi := boff[v], boff[v+1]
			if sw != nil {
				sortDstWeight(sd[blo:bhi], sw[blo:bhi])
			} else {
				slices.Sort(sd[blo:bhi])
			}
		}
	})
	// Survivor count and compaction use the same static node split, so the
	// exclusive scan of per-worker survivor counts gives exact write
	// positions into the original columns (reads come only from scratch).
	counts := make([]int64, workers)
	par.Static(workers, n, func(w, lo, hi int) {
		var c int64
		for v := lo; v < hi; v++ {
			blo, bhi := boff[v], boff[v+1]
			for j := blo; j < bhi; j++ {
				if j == blo || sd[j] != sd[j-1] {
					c++
				}
			}
		}
		counts[w] = c
	})
	var total int64
	for w := range counts {
		c := counts[w]
		counts[w] = total
		total += c
	}
	par.Static(workers, n, func(w, lo, hi int) {
		at := counts[w]
		for v := lo; v < hi; v++ {
			blo, bhi := boff[v], boff[v+1]
			for j := blo; j < bhi; j++ {
				if j != blo && sd[j] == sd[j-1] {
					continue
				}
				b.srcs[at] = NodeID(v)
				b.dsts[at] = sd[j]
				if sw != nil {
					b.weights[at] = sw[j]
				}
				at++
			}
		}
	})
	b.srcs = b.srcs[:total]
	b.dsts = b.dsts[:total]
	if b.weights != nil {
		b.weights = b.weights[:total]
	}
}
