package graph

import (
	"fmt"
	"sync"

	"kimbap/internal/par"
)

// This file is the out-of-core half of the ingestion pipeline: a streaming
// CSR build that runs the same two-pass counting sort as Builder.Build
// (build.go) while holding at most workers × blockSize edges in memory.
// Edge data arrives through a BlockSource — a KMB2 block file
// (blockfile.go), a KMB1 CSR file (kmb1source.go), or a sharded text edge
// list (textsource.go) — and is scanned twice: pass 1 accumulates
// per-worker degree counts, pass 2 scatters straight into the final CSR
// arrays through conflict-free cursor rows. Peak allocation is O(CSR)
// plus the fixed block working set, never O(edges) + O(CSR) like the
// materialize-then-build path.
//
// Determinism and bit-identity: blocks are assigned to workers by static
// par.Range over the block index — the same assignment in both passes —
// so the scatter reproduces a fixed insertion order (block-major), and
// the final per-node (dst, weight) sort is a total order up to fully
// equal entries. The result is bit-identical to Builder.Build fed the
// same edge sequence at every worker count and block size; the
// equivalence tests in stream_test.go enforce exactly that.

// EdgeBlock is a fixed-capacity columnar edge buffer: the unit of IO and
// parsing in the streaming path. Sources fill the three columns (Weights
// stays nil for unweighted graphs); Raw is scratch for file-backed
// sources to read encoded bytes into before decoding.
type EdgeBlock struct {
	Srcs, Dsts []NodeID
	Weights    []float64
	Raw        []byte
}

// Len returns the number of edges currently in the block.
func (b *EdgeBlock) Len() int { return len(b.Srcs) }

// Reset sizes the block for count edges, growing capacity as needed and
// attaching or dropping the weight column. Contents are unspecified after
// Reset; sources overwrite every slot they report.
func (b *EdgeBlock) Reset(count int, weighted bool) {
	b.Srcs = growCap(b.Srcs, count)
	b.Dsts = growCap(b.Dsts, count)
	if weighted {
		b.Weights = growCap(b.Weights, count)
	} else {
		b.Weights = nil
	}
}

// RawBuf returns the scratch byte buffer resized to n bytes, reusing
// capacity across blocks.
func (b *EdgeBlock) RawBuf(n int) []byte {
	b.Raw = growCap(b.Raw, n)
	return b.Raw
}

func growCap[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// blockPool recycles EdgeBlocks (columns and raw scratch) across scans
// and StreamBuilder calls, the same discipline as build.go's countPool.
// Ownership contract (machine-checked by kimbapvet's bufownership
// analyzer): a block handed to PutBlock may be reissued to another worker
// immediately — the caller must not write through or retain any of its
// slices afterwards.
var blockPool sync.Pool

// GetBlock returns a pooled EdgeBlock. Callers size it with Reset/RawBuf;
// capacity is retained from previous uses.
func GetBlock() *EdgeBlock {
	if b, _ := blockPool.Get().(*EdgeBlock); b != nil {
		return b
	}
	return &EdgeBlock{}
}

// PutBlock returns a block to the pool. The block and every slice it
// holds are reissued to later GetBlock callers; writing through or
// retaining them after the Put is a bufownership violation.
func PutBlock(b *EdgeBlock) {
	blockPool.Put(b)
}

// BlockSource yields a graph's edges as independent blocks. Sources must
// support repeated scans (the two-scan build reads every block twice) and
// concurrent ReadBlock calls on distinct block indices from different
// goroutines. The edge sequence — blocks in index order, edges in
// in-block order — must be identical across scans; StreamBuilder detects
// a source that changed between scans and fails rather than corrupting
// the CSR.
type BlockSource interface {
	// NumNodes returns the node count; every edge endpoint must be < it.
	NumNodes() int
	// Weighted reports whether blocks carry a weight column.
	Weighted() bool
	// NumBlocks returns the static block count the scans are split over.
	NumBlocks() int
	// ReadBlock fills blk with block i's edges (Reset to the right size,
	// then overwritten). blk is caller-owned scratch; implementations
	// must not retain it or its slices past the call.
	ReadBlock(i int, blk *EdgeBlock) error
}

// StreamBuilder builds a CSR graph from a BlockSource with the two-scan
// counting sort. Construct with NewStreamBuilder, optionally SetWorkers,
// then Build once.
type StreamBuilder struct {
	src     BlockSource
	workers int
	inCSR   bool
}

// NewStreamBuilder returns a StreamBuilder over src.
func NewStreamBuilder(src BlockSource) *StreamBuilder {
	return &StreamBuilder{src: src}
}

// SetWorkers fixes the worker count (0 = all cores). Output is
// bit-identical at every setting.
func (sb *StreamBuilder) SetWorkers(w int) *StreamBuilder {
	sb.workers = w
	return sb
}

// WithInCSR requests the fused transpose emission: pass 1 counts both
// degree arrays and pass 2 scatters both columns, so the built graph
// carries its in-edge CSR without a separate EnsureInCSR pass over the
// CSR. The transpose is bit-identical to Transpose of the built graph
// (and, under BuildReordered, to Transpose of the permuted graph).
func (sb *StreamBuilder) WithInCSR(on bool) *StreamBuilder {
	sb.inCSR = on
	return sb
}

// scan runs one pass over the source: each worker takes its static block
// range in index order, reading through one pooled block. fn sees every
// block exactly once, on the worker that owns it. Errors surface in
// worker order (par.DoErr), so a multi-worker failure is deterministic.
func (sb *StreamBuilder) scan(workers int, fn func(w int, blk *EdgeBlock) error) error {
	nb := sb.src.NumBlocks()
	return par.DoErr(workers, func(w int) error {
		lo, hi := par.Range(w, workers, nb)
		if lo == hi {
			return nil
		}
		blk := GetBlock()
		defer PutBlock(blk)
		for i := lo; i < hi; i++ {
			if err := sb.src.ReadBlock(i, blk); err != nil {
				return fmt.Errorf("graph: stream block %d: %w", i, err)
			}
			if err := fn(w, blk); err != nil {
				return err
			}
		}
		return nil
	})
}

// Build runs the two-scan counting-sort CSR build. The result is
// bit-identical to Builder.Build over the same edge sequence; peak
// allocation is the CSR arrays, the pooled (workers × numNodes) cursor
// matrix, and one block buffer per worker.
//kimbap:deterministic
func (sb *StreamBuilder) Build() (*Graph, error) {
	n := sb.src.NumNodes()
	if n < 0 {
		return nil, fmt.Errorf("graph: stream build: negative node count %d", n)
	}
	nb := sb.src.NumBlocks()
	workers := par.Resolve(sb.workers)
	if workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}
	weighted := sb.src.Weighted()
	g := &Graph{offsets: make([]int64, n+1)}
	if nb == 0 {
		// Match Builder.Build's empty representation bit for bit: non-nil
		// zero-length columns, weight column present iff the source is
		// weighted.
		g.dsts = []NodeID{}
		if weighted {
			g.weights = []float64{}
		}
		if sb.inCSR {
			var iw []float64
			if weighted {
				iw = []float64{}
			}
			g.adoptInCSR(make([]int64, n+1), []NodeID{}, iw)
		}
		return g, nil
	}

	// Pass 1: per-worker degree counts over static block ranges, with the
	// only full-edge validation pass (pass 2 trusts it and only re-checks
	// totals). With the fused transpose enabled the same scan counts the
	// in-degree matrix too.
	cnt := getCounts(workers * n)
	var icnt []int64
	if sb.inCSR {
		icnt = getCounts(workers * n)
	}
	pass1 := make([]int64, workers) // edges seen, for the cross-scan check
	count := func(w int, blk *EdgeBlock) error {
		c := cnt[w*n : (w+1)*n]
		for i, s := range blk.Srcs {
			if int(s) >= n || int(blk.Dsts[i]) >= n {
				return fmt.Errorf("graph: edge %d->%d out of range for %d nodes",
					s, blk.Dsts[i], n)
			}
			c[s]++
		}
		if icnt != nil {
			ic := icnt[w*n : (w+1)*n]
			for _, d := range blk.Dsts {
				ic[d]++
			}
		}
		// Empty blocks carry no weight-column information: a text shard
		// holding only comments leaves a pooled block's nil Weights slice
		// nil even for a weighted source ([:0] of nil is nil).
		if blk.Len() > 0 && weighted != (blk.Weights != nil) {
			return fmt.Errorf("graph: block weight column mismatch (source says weighted=%v)", weighted)
		}
		pass1[w] += int64(blk.Len())
		return nil
	}
	par.Do(workers, func(w int) {
		clear(cnt[w*n : (w+1)*n])
		if icnt != nil {
			clear(icnt[w*n : (w+1)*n])
		}
	})
	if err := sb.scan(workers, count); err != nil {
		putCounts(cnt)
		if icnt != nil {
			putCounts(icnt)
		}
		return nil, err
	}
	mergeCounts(workers, n, cnt, g.offsets)

	m := g.offsets[n]
	g.dsts = make([]NodeID, m)
	if weighted {
		g.weights = make([]float64, m)
	}
	if icnt != nil {
		g.inOffsets = make([]int64, n+1)
		mergeCounts(workers, n, icnt, g.inOffsets)
		g.inSrcs = make([]NodeID, m)
		if weighted {
			g.inWeights = make([]float64, m)
		}
	}

	// Pass 2: conflict-free scatter straight into the final arrays. Every
	// write lands in a slot reserved by this worker's cursor row, seeded
	// by mergeCounts with the counts of workers < w — the same invariant
	// as Builder.Build's scatter.
	pass2 := make([]int64, workers)
	scatter := func(w int, blk *EdgeBlock) error {
		c := cnt[w*n : (w+1)*n]
		seen := pass2[w] + int64(blk.Len())
		if seen > pass1[w] {
			return fmt.Errorf("graph: source changed between scans (worker %d saw %d edges, counted %d)",
				w, seen, pass1[w])
		}
		pass2[w] = seen
		// Re-check src bounds: a source mutated between scans must fail
		// with an error, not an index panic. (Equal-count content drift
		// still yields a wrong graph — nothing can rebuild trust in a file
		// changing underfoot — but never a crash or out-of-bounds write.)
		// The fused transpose indexes its cursor rows by destination, so
		// those need the same re-check.
		for i, s := range blk.Srcs {
			if int(s) >= n || (icnt != nil && int(blk.Dsts[i]) >= n) {
				return fmt.Errorf("graph: source changed between scans (edge %d->%d out of range)",
					s, blk.Dsts[i])
			}
		}
		if blk.Weights != nil {
			for i, s := range blk.Srcs {
				at := c[s]
				if at >= m {
					return fmt.Errorf("graph: source changed between scans (cursor overflow at src %d)", s)
				}
				c[s] = at + 1
				g.dsts[at] = blk.Dsts[i]
				g.weights[at] = blk.Weights[i]
			}
		} else {
			for i, s := range blk.Srcs {
				at := c[s]
				if at >= m {
					return fmt.Errorf("graph: source changed between scans (cursor overflow at src %d)", s)
				}
				c[s] = at + 1
				g.dsts[at] = blk.Dsts[i]
			}
		}
		if icnt != nil {
			ic := icnt[w*n : (w+1)*n]
			for i, d := range blk.Dsts {
				at := ic[d]
				if at >= m {
					return fmt.Errorf("graph: source changed between scans (cursor overflow at dst %d)", d)
				}
				ic[d] = at + 1
				g.inSrcs[at] = blk.Srcs[i]
				if g.inWeights != nil {
					g.inWeights[at] = blk.Weights[i]
				}
			}
		}
		return nil
	}
	//kimbap:conflictfree
	err := sb.scan(workers, scatter)
	putCounts(cnt)
	if icnt != nil {
		putCounts(icnt)
	}
	if err != nil {
		return nil, err
	}
	for w := range pass2 {
		if pass2[w] != pass1[w] {
			return nil, fmt.Errorf("graph: source changed between scans (worker %d saw %d edges, counted %d)",
				w, pass2[w], pass1[w])
		}
	}
	sortAdjacency(g, workers)
	if g.inOffsets != nil {
		sortInAdjacency(g, workers)
		g.adoptInCSR(g.inOffsets, g.inSrcs, g.inWeights)
	}
	return g, nil
}

// BuildReordered is Build with a fused locality reorder stage (DESIGN.md
// §14): pass 1's per-worker count matrix doubles as the degree oracle for
// computeReordering, mergeCountsPermuted redirects the offsets and
// cursors into the permuted ID space, and pass 2 scatters perm[dst] under
// cursors indexed by the original source — so the permuted CSR is built
// in the same two scans, without ever materializing the original-order
// graph. The extra work over Build is the key sort (O(n log n) on node
// keys, versus O(m) edge traffic) plus one permutation lookup per edge;
// the reorder_build bench record and its live gate pin that overhead.
//
// The result is bit-identical to Reorder(Build()) at every worker count
// and block size: both scatter the same permuted edge multiset and finish
// with the same total-order adjacency sort. For ReorderNone (or empty
// policy) it delegates to Build with a nil Reordering.
//
//kimbap:deterministic
func (sb *StreamBuilder) BuildReordered(policy ReorderPolicy, blocks int) (*Graph, *Reordering, error) {
	switch policy {
	case ReorderNone, "":
		g, err := sb.Build()
		return g, nil, err
	case ReorderDegree, ReorderBlockedDegree:
	default:
		return nil, nil, fmt.Errorf("graph: unknown reorder policy %q (have %v)",
			policy, ReorderPolicies)
	}
	n := sb.src.NumNodes()
	if n < 0 {
		return nil, nil, fmt.Errorf("graph: stream build: negative node count %d", n)
	}
	nb := sb.src.NumBlocks()
	workers := par.Resolve(sb.workers)
	if workers > nb {
		workers = nb
	}
	if workers < 1 {
		workers = 1
	}
	weighted := sb.src.Weighted()
	g := &Graph{offsets: make([]int64, n+1)}
	if nb == 0 {
		g.dsts = []NodeID{}
		if weighted {
			g.weights = []float64{}
		}
		if sb.inCSR {
			var iw []float64
			if weighted {
				iw = []float64{}
			}
			g.adoptInCSR(make([]int64, n+1), []NodeID{}, iw)
		}
		ro := computeReordering(n, 0, func(int) int64 { return 0 }, policy, blocks, workers)
		return g, ro, nil
	}

	// Pass 1: identical to Build's counting scan (including the fused
	// in-degree matrix, keyed by the original destination — the
	// permutation does not exist yet during pass 1).
	cnt := getCounts(workers * n)
	var icnt []int64
	if sb.inCSR {
		icnt = getCounts(workers * n)
	}
	pass1 := make([]int64, workers)
	count := func(w int, blk *EdgeBlock) error {
		c := cnt[w*n : (w+1)*n]
		for i, s := range blk.Srcs {
			if int(s) >= n || int(blk.Dsts[i]) >= n {
				return fmt.Errorf("graph: edge %d->%d out of range for %d nodes",
					s, blk.Dsts[i], n)
			}
			c[s]++
		}
		if icnt != nil {
			ic := icnt[w*n : (w+1)*n]
			for _, d := range blk.Dsts {
				ic[d]++
			}
		}
		// Empty blocks carry no weight-column information (see Build).
		if blk.Len() > 0 && weighted != (blk.Weights != nil) {
			return fmt.Errorf("graph: block weight column mismatch (source says weighted=%v)", weighted)
		}
		pass1[w] += int64(blk.Len())
		return nil
	}
	par.Do(workers, func(w int) {
		clear(cnt[w*n : (w+1)*n])
		if icnt != nil {
			clear(icnt[w*n : (w+1)*n])
		}
	})
	if err := sb.scan(workers, count); err != nil {
		putCounts(cnt)
		if icnt != nil {
			putCounts(icnt)
		}
		return nil, nil, err
	}

	// Reorder stage: the count matrix's column sums are the degrees.
	var totalEdges int64
	for _, c := range pass1 {
		totalEdges += c
	}
	degree := func(v int) int64 {
		var s int64
		for w := 0; w < workers; w++ {
			s += cnt[w*n+v]
		}
		return s
	}
	ro := computeReordering(n, totalEdges, degree, policy, blocks, workers)
	perm := ro.Perm
	mergeCountsPermuted(workers, n, cnt, g.offsets, perm)

	m := g.offsets[n]
	g.dsts = make([]NodeID, m)
	if weighted {
		g.weights = make([]float64, m)
	}
	if icnt != nil {
		// The transpose of the permuted CSR: in-degree of perm[d] is the
		// count keyed by original d, so the same permuted merge applies.
		g.inOffsets = make([]int64, n+1)
		mergeCountsPermuted(workers, n, icnt, g.inOffsets, perm)
		g.inSrcs = make([]NodeID, m)
		if weighted {
			g.inWeights = make([]float64, m)
		}
	}

	// Pass 2: the same conflict-free cursor scatter as Build, with both
	// endpoints translated — cursors are indexed by the original source
	// (the count columns are), but point into the permuted CSR.
	pass2 := make([]int64, workers)
	scatter := func(w int, blk *EdgeBlock) error {
		c := cnt[w*n : (w+1)*n]
		seen := pass2[w] + int64(blk.Len())
		if seen > pass1[w] {
			return fmt.Errorf("graph: source changed between scans (worker %d saw %d edges, counted %d)",
				w, seen, pass1[w])
		}
		pass2[w] = seen
		// Unlike Build, destinations index the permutation here, so a
		// drifted source must fail the dst re-check too.
		for i, s := range blk.Srcs {
			if int(s) >= n || int(blk.Dsts[i]) >= n {
				return fmt.Errorf("graph: source changed between scans (edge %d->%d out of range)",
					s, blk.Dsts[i])
			}
		}
		if blk.Weights != nil {
			for i, s := range blk.Srcs {
				at := c[s]
				if at >= m {
					return fmt.Errorf("graph: source changed between scans (cursor overflow at src %d)", s)
				}
				c[s] = at + 1
				g.dsts[at] = perm[blk.Dsts[i]]
				g.weights[at] = blk.Weights[i]
			}
		} else {
			for i, s := range blk.Srcs {
				at := c[s]
				if at >= m {
					return fmt.Errorf("graph: source changed between scans (cursor overflow at src %d)", s)
				}
				c[s] = at + 1
				g.dsts[at] = perm[blk.Dsts[i]]
			}
		}
		if icnt != nil {
			ic := icnt[w*n : (w+1)*n]
			for i, d := range blk.Dsts {
				at := ic[d]
				if at >= m {
					return fmt.Errorf("graph: source changed between scans (cursor overflow at dst %d)", d)
				}
				ic[d] = at + 1
				g.inSrcs[at] = perm[blk.Srcs[i]]
				if g.inWeights != nil {
					g.inWeights[at] = blk.Weights[i]
				}
			}
		}
		return nil
	}
	//kimbap:conflictfree
	err := sb.scan(workers, scatter)
	putCounts(cnt)
	if icnt != nil {
		putCounts(icnt)
	}
	if err != nil {
		return nil, nil, err
	}
	for w := range pass2 {
		if pass2[w] != pass1[w] {
			return nil, nil, fmt.Errorf("graph: source changed between scans (worker %d saw %d edges, counted %d)",
				w, pass2[w], pass1[w])
		}
	}
	sortAdjacency(g, workers)
	if g.inOffsets != nil {
		sortInAdjacency(g, workers)
		g.adoptInCSR(g.inOffsets, g.inSrcs, g.inWeights)
	}
	return g, ro, nil
}
