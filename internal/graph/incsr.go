package graph

import (
	"slices"
	"sort"

	"kimbap/internal/par"
)

// This file is the transpose (in-edge) CSR: the index pull-mode execution
// scans to read a vertex's in-neighbors. It can be materialized two ways
// with bit-identical results:
//
//   - lazily from a built graph via EnsureInCSR (a counting sort by
//     destination over the existing CSR), or
//   - fused into the streaming two-scan build (stream.go), where pass 1
//     counts both degree arrays and pass 2 scatters both columns.
//
// Both paths end with the same total (src, weight) per-node sort that the
// out-CSR uses for (dst, weight), so the in-CSR equals the CSR of
// Transpose(g) exactly — the equivalence the incsr tests pin against the
// serial oracle.

// HasInCSR reports whether the transpose CSR has been materialized.
func (g *Graph) HasInCSR() bool { return g.inOffsets != nil }

// InDegree returns the in-degree of node n. The in-CSR must be
// materialized.
func (g *Graph) InDegree(n NodeID) int {
	return int(g.inOffsets[n+1] - g.inOffsets[n])
}

// InNeighbors returns the sources of all in-edges of node n, sorted. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(n NodeID) []NodeID {
	return g.inSrcs[g.inOffsets[n]:g.inOffsets[n+1]]
}

// InEdgeWeights returns the weights of node n's in-edges, parallel to
// InNeighbors(n). It returns nil for unweighted graphs.
func (g *Graph) InEdgeWeights(n NodeID) []float64 {
	if g.inWeights == nil {
		return nil
	}
	return g.inWeights[g.inOffsets[n]:g.inOffsets[n+1]]
}

// InEdgeRange returns the half-open range of in-edge indices for node n.
// In-edge indices are stable and can index InSrc and InWeight.
func (g *Graph) InEdgeRange(n NodeID) (lo, hi int64) {
	return g.inOffsets[n], g.inOffsets[n+1]
}

// InSrc returns the source of the in-edge with the given index.
func (g *Graph) InSrc(e int64) NodeID { return g.inSrcs[e] }

// InWeight returns the weight of the in-edge with the given index
// (1 for unweighted graphs).
func (g *Graph) InWeight(e int64) float64 {
	if g.inWeights == nil {
		return 1
	}
	return g.inWeights[e]
}

// InCSRFootprint returns the heap bytes held by the transpose CSR, 0 when
// it is not materialized. Memory accounting (npm) charges this alongside
// the pull scratch so peak_alloc_bytes stays honest.
func (g *Graph) InCSRFootprint() int64 {
	return int64(cap(g.inOffsets))*8 + int64(cap(g.inSrcs))*4 + int64(cap(g.inWeights))*8
}

// EnsureInCSR materializes the transpose CSR with the given worker count
// (0 = all cores) if it is not already present. Safe to call from multiple
// phases; only the first call builds. The result is bit-identical to
// Transpose(g)'s CSR at every worker count.
//kimbap:deterministic
func (g *Graph) EnsureInCSR(workers int) {
	g.inOnce.Do(func() {
		if g.inOffsets == nil {
			g.buildInCSR(workers)
		}
	})
}

// adoptInCSR installs a transpose CSR built elsewhere (the fused stream
// build) and marks the lazy path done.
func (g *Graph) adoptInCSR(offsets []int64, srcs []NodeID, weights []float64) {
	g.inOffsets, g.inSrcs, g.inWeights = offsets, srcs, weights
	g.inOnce.Do(func() {})
}

// buildInCSR is a counting sort of the existing CSR by destination: the
// same two-pass structure as Builder.Build, with the source column implied
// by the out-edge offsets instead of stored.
func (g *Graph) buildInCSR(workers int) {
	n := g.NumNodes()
	m := int(g.NumEdges())
	w := par.Resolve(workers)
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	g.inOffsets = make([]int64, n+1)
	g.inSrcs = make([]NodeID, m)
	if g.weights != nil {
		g.inWeights = make([]float64, m)
	}
	if m == 0 {
		return
	}
	cnt := getCounts(w * n)
	par.Do(w, func(wi int) {
		c := cnt[wi*n : (wi+1)*n]
		clear(c)
		lo, hi := par.Range(wi, w, m)
		for e := lo; e < hi; e++ {
			c[g.dsts[e]]++
		}
	})
	mergeCounts(w, n, cnt, g.inOffsets)
	// Scatter: each worker re-walks its static edge range, tracking the
	// source node whose out-range covers the cursor. Conflict-free — every
	// write lands in a slot reserved by this worker's cursor row.
	//
	//kimbap:conflictfree
	par.Do(w, func(wi int) {
		c := cnt[wi*n : (wi+1)*n]
		lo, hi := par.Range(wi, w, m)
		if lo >= hi {
			return
		}
		src := sort.Search(n, func(v int) bool { return g.offsets[v+1] > int64(lo) })
		for e := lo; e < hi; e++ {
			for int64(e) >= g.offsets[src+1] {
				src++
			}
			d := g.dsts[e]
			at := c[d]
			c[d] = at + 1
			g.inSrcs[at] = NodeID(src)
			if g.inWeights != nil {
				g.inWeights[at] = g.weights[e]
			}
		}
	})
	putCounts(cnt)
	sortInAdjacency(g, w)
}

// sortInAdjacency is sortAdjacency for the transpose columns: the per-node
// (src, weight) total order that makes the in-CSR independent of scatter
// order and therefore equal across the lazy and fused build paths.
func sortInAdjacency(g *Graph, workers int) {
	par.Dynamic(workers, g.NumNodes(), 128, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			elo, ehi := g.inOffsets[v], g.inOffsets[v+1]
			if g.inWeights != nil {
				sortDstWeight(g.inSrcs[elo:ehi], g.inWeights[elo:ehi])
			} else {
				slices.Sort(g.inSrcs[elo:ehi])
			}
		}
	})
}
