package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// The parallel build pipeline (build.go) promises bit-identical output to
// the retained serial references at every worker count. These tests sweep
// the promise across the feature matrix that changes the pipeline's shape:
// weighted columns, duplicate edges, self-loops, and empty nodes (nodes
// with no incident edges, so counting-sort buckets of size zero).

type edgeCase struct {
	weighted  bool
	dups      bool
	selfLoops bool
	emptyTail bool // leave the top quarter of node IDs untouched
}

func (c edgeCase) name() string {
	return fmt.Sprintf("weighted=%v/dups=%v/selfloops=%v/empty=%v",
		c.weighted, c.dups, c.selfLoops, c.emptyTail)
}

func allEdgeCases() []edgeCase {
	var cases []edgeCase
	for _, w := range []bool{false, true} {
		for _, d := range []bool{false, true} {
			for _, s := range []bool{false, true} {
				for _, e := range []bool{false, true} {
					cases = append(cases, edgeCase{w, d, s, e})
				}
			}
		}
	}
	return cases
}

// fillBuilder streams the same pseudo-random edges into b. Weights are
// drawn from a small integer set so duplicate (src, dst) pairs frequently
// collide on weight too, exercising Dedup's full (src, dst, weight) order.
func fillBuilder(b *Builder, c edgeCase, n, m int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	span := n
	if c.emptyTail {
		span = n - n/4
		if span < 1 {
			span = 1
		}
	}
	for i := 0; i < m; i++ {
		s := NodeID(r.Intn(span))
		d := NodeID(r.Intn(span))
		if !c.selfLoops && s == d {
			d = (d + 1) % NodeID(span)
			if span == 1 {
				continue
			}
		}
		if c.weighted {
			b.AddWeightedEdge(s, d, float64(r.Intn(8)+1))
		} else {
			b.AddEdge(s, d)
		}
		if c.dups && i%3 == 0 {
			if c.weighted {
				b.AddWeightedEdge(s, d, float64(r.Intn(8)+1))
			} else {
				b.AddEdge(s, d)
			}
		}
	}
}

func requireGraphsIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if !reflect.DeepEqual(want.offsets, got.offsets) {
		t.Fatalf("offsets differ:\nwant %v\ngot  %v", want.offsets, got.offsets)
	}
	if !reflect.DeepEqual(want.dsts, got.dsts) {
		t.Fatalf("dsts differ:\nwant %v\ngot  %v", want.dsts, got.dsts)
	}
	if !reflect.DeepEqual(want.weights, got.weights) {
		t.Fatalf("weights differ:\nwant %v\ngot  %v", want.weights, got.weights)
	}
}

func requireColumnsIdentical(t *testing.T, want, got *Builder) {
	t.Helper()
	if !reflect.DeepEqual(want.srcs, got.srcs) || !reflect.DeepEqual(want.dsts, got.dsts) ||
		!reflect.DeepEqual(want.weights, got.weights) {
		t.Fatalf("builder columns differ:\nwant %v->%v (%v)\ngot  %v->%v (%v)",
			want.srcs, want.dsts, want.weights, got.srcs, got.dsts, got.weights)
	}
}

var workerCounts = []int{1, 2, 4, 8}

// pipelines pairs each serial reference chain with its parallel twin.
var pipelines = []struct {
	name     string
	serial   func(b *Builder) *Graph
	parallel func(b *Builder) *Graph
}{
	{"build", (*Builder).BuildSerial, (*Builder).Build},
	{"symmetrize+build",
		func(b *Builder) *Graph { b.SymmetrizeSerial(); return b.BuildSerial() },
		func(b *Builder) *Graph { b.Symmetrize(); return b.Build() }},
	{"dedup+build",
		func(b *Builder) *Graph { b.DedupSerial(); return b.BuildSerial() },
		func(b *Builder) *Graph { b.Dedup(); return b.Build() }},
	{"symmetrize+dedup+build",
		func(b *Builder) *Graph { b.SymmetrizeSerial(); b.DedupSerial(); return b.BuildSerial() },
		func(b *Builder) *Graph { b.Symmetrize(); b.Dedup(); return b.Build() }},
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	const n, m = 97, 600
	for _, ec := range allEdgeCases() {
		for _, pl := range pipelines {
			ref := NewBuilder(n)
			fillBuilder(ref, ec, n, m, 42)
			want := pl.serial(ref)
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", pl.name, ec.name(), w), func(t *testing.T) {
					b := NewBuilder(n).SetWorkers(w)
					fillBuilder(b, ec, n, m, 42)
					requireGraphsIdentical(t, want, pl.parallel(b))
				})
			}
		}
	}
}

// The column-level checks pin Symmetrize and Dedup on their own, before any
// Build reordering could mask a divergence.
func TestParallelColumnOpsMatchSerial(t *testing.T) {
	const n, m = 53, 400
	for _, ec := range allEdgeCases() {
		symRef := NewBuilder(n)
		fillBuilder(symRef, ec, n, m, 7)
		symRef.SymmetrizeSerial()
		dedupRef := NewBuilder(n)
		fillBuilder(dedupRef, ec, n, m, 7)
		dedupRef.DedupSerial()
		for _, w := range workerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", ec.name(), w), func(t *testing.T) {
				b := NewBuilder(n).SetWorkers(w)
				fillBuilder(b, ec, n, m, 7)
				b.Symmetrize()
				requireColumnsIdentical(t, symRef, b)

				b = NewBuilder(n).SetWorkers(w)
				fillBuilder(b, ec, n, m, 7)
				b.Dedup()
				requireColumnsIdentical(t, dedupRef, b)
			})
		}
	}
}

func TestBuildEmptyAndDegenerate(t *testing.T) {
	for _, w := range workerCounts {
		g := NewBuilder(0).SetWorkers(w).Build()
		if g.NumNodes() != 0 || g.NumEdges() != 0 {
			t.Fatalf("workers=%d: empty build = %d nodes %d edges", w, g.NumNodes(), g.NumEdges())
		}
		g = NewBuilder(5).SetWorkers(w).Build()
		if g.NumNodes() != 5 || g.NumEdges() != 0 {
			t.Fatalf("workers=%d: edgeless build = %d nodes %d edges", w, g.NumNodes(), g.NumEdges())
		}
		b := NewBuilder(3).SetWorkers(w)
		b.AddEdge(2, 0)
		b.Symmetrize()
		b.Dedup()
		g = b.Build()
		if g.NumEdges() != 2 || !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
			t.Fatalf("workers=%d: single-edge pipeline wrong: %v", w, g.Edges())
		}
	}
}

func TestParallelBuildPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("parallel Build did not panic on out-of-range edge")
		}
	}()
	b := NewBuilder(2).SetWorkers(4)
	for i := 0; i < 64; i++ {
		b.AddEdge(0, 1)
	}
	b.AddEdge(0, 5)
	b.Build()
}

// TestBuildWarmPathAllocs bounds the steady-state allocation count of the
// parallel Build: the output graph (struct + three arrays) plus the handful
// of escaping closures and the pooled count matrix round-trip. Growth here
// means a scratch buffer stopped being recycled.
func TestBuildWarmPathAllocs(t *testing.T) {
	b := NewBuilder(256).SetWorkers(4)
	fillBuilder(b, edgeCase{weighted: true, dups: true}, 256, 4096, 3)
	b.Build() // warm the count pool
	avg := testing.AllocsPerRun(20, func() { b.Build() })
	// 4 output allocations (Graph struct, offsets, dsts, weights) plus
	// bounded pipeline overhead; 24 gives headroom without hiding a
	// per-node or per-edge regression (which would add hundreds).
	if avg > 24 {
		t.Fatalf("warm Build allocates %.1f times per run, want <= 24", avg)
	}
}
