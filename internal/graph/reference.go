package graph

import "sort"

// This file holds single-threaded reference algorithms used to verify the
// distributed implementations: BFS-based connected components, Kruskal
// minimum spanning forest, and modularity scoring for community detection.

// ReferenceComponents labels every node with the smallest node ID in its
// (weakly) connected component using BFS over the symmetrized graph. The
// graph is assumed to be symmetric, as all Kimbap inputs are.
func ReferenceComponents(g *Graph) []NodeID {
	n := g.NumNodes()
	label := make([]NodeID, n)
	for i := range label {
		label[i] = InvalidNode
	}
	queue := make([]NodeID, 0, 1024)
	for start := 0; start < n; start++ {
		if label[start] != InvalidNode {
			continue
		}
		root := NodeID(start)
		label[start] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if label[v] == InvalidNode {
					label[v] = root
					queue = append(queue, v)
				}
			}
		}
	}
	return label
}

// NumComponents counts distinct labels in a component labeling.
func NumComponents(labels []NodeID) int {
	seen := make(map[NodeID]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// ReferenceMSFWeight computes the total weight of a minimum spanning forest
// with Kruskal's algorithm. For symmetrized graphs each undirected edge
// appears twice; both copies have equal weight so the result is unaffected.
func ReferenceMSFWeight(g *Graph) float64 {
	type we struct {
		w        float64
		src, dst NodeID
	}
	edges := make([]we, 0, g.NumEdges())
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			d := g.Dst(e)
			if NodeID(n) < d { // take each undirected edge once
				edges = append(edges, we{g.Weight(e), NodeID(n), d})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = NodeID(i)
	}
	var find func(x NodeID) NodeID
	find = func(x NodeID) NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := 0.0
	for _, e := range edges {
		a, b := find(e.src), find(e.dst)
		if a != b {
			parent[a] = b
			total += e.w
		}
	}
	return total
}

// Modularity computes the Newman-Girvan modularity of a community
// assignment on a symmetrized weighted graph. comm[n] is the community of
// node n. Each undirected edge is counted twice (once per direction), as is
// conventional: Q = sum_c (in_c/(2m) - (tot_c/(2m))^2) where 2m is the total
// directed edge weight.
func Modularity(g *Graph, comm []NodeID) float64 {
	twoM := g.TotalWeight()
	if twoM == 0 {
		return 0
	}
	in := make(map[NodeID]float64)  // weight of intra-community directed edges
	tot := make(map[NodeID]float64) // total degree-weight per community
	for n := 0; n < g.NumNodes(); n++ {
		c := comm[n]
		lo, hi := g.EdgeRange(NodeID(n))
		for e := lo; e < hi; e++ {
			w := g.Weight(e)
			tot[c] += w
			if comm[g.Dst(e)] == c {
				in[c] += w
			}
		}
	}
	q := 0.0
	for _, inW := range in {
		q += inW / twoM
	}
	for _, totW := range tot {
		frac := totW / twoM
		q -= frac * frac
	}
	return q
}

// IsValidMIS reports whether set is a maximal independent set of g:
// no two set members are adjacent, and every non-member has a member
// neighbor.
func IsValidMIS(g *Graph, set []bool) bool {
	for n := 0; n < g.NumNodes(); n++ {
		if set[n] {
			for _, v := range g.Neighbors(NodeID(n)) {
				if v != NodeID(n) && set[v] {
					return false // not independent
				}
			}
		} else {
			covered := false
			for _, v := range g.Neighbors(NodeID(n)) {
				if set[v] {
					covered = true
					break
				}
			}
			if !covered && g.Degree(NodeID(n)) > 0 {
				return false // not maximal
			}
			if g.Degree(NodeID(n)) == 0 {
				return false // isolated nodes must be in the set
			}
		}
	}
	return true
}
