//go:build !linux

package graph

import (
	"errors"
	"os"
)

// mmapHandle is unavailable off Linux; sources take the buffered ReadAt
// path, which is bit-identical (the equivalence tests run on both).
type mmapHandle struct {
	data []byte
}

var errNoMmap = errors.New("graph: mmap unavailable on this platform")

func mmapFile(*os.File, int64) (*mmapHandle, error) {
	return nil, errNoMmap
}

func (h *mmapHandle) close() {}
