// Package gluon reimplements the execution strategy of Gluon (Dathathri et
// al., PLDI 2018), the adjacent-vertex framework the paper compares
// against for connected components (§6.2, Figures 9c and 10c).
//
// Gluon differs from Kimbap's general node-property map in three ways:
// remote accesses are restricted to mirror proxies, which are always
// materialized (no request phases exist at all); threads reduce directly
// into the cached proxy values with atomics during compute; and
// synchronization is a fixed reduce-then-broadcast of changed values per
// round, exploiting the partition's structural and temporal invariants
// (positional dirty bitmasks over precomputed proxy exchange lists).
//
// Only label-propagation connected components is provided — the system is
// by construction unable to express trans-vertex algorithms like CC-SV,
// which is the paper's point.
package gluon

import (
	"sync/atomic"

	"kimbap/internal/comm"
	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

// Stats reports a CC-LP run.
type Stats struct {
	Rounds int
}

// CCLP computes connected components by min-label propagation on the
// given cluster configuration and returns the global labels.
func CCLP(g *graph.Graph, ccfg runtime.Config) ([]graph.NodeID, Stats, error) {
	cluster, err := runtime.NewCluster(g, ccfg)
	if err != nil {
		return nil, Stats{}, err
	}
	defer cluster.Close()
	out := make([]graph.NodeID, g.NumNodes())
	rounds := make([]int, ccfg.NumHosts)
	cluster.Run(func(h *runtime.Host) {
		rounds[h.Rank] = ccLP(h, out)
	})
	return out, Stats{Rounds: rounds[0]}, nil
}

func ccLP(h *runtime.Host, out []graph.NodeID) int {
	hp := h.HP
	local := hp.Local
	n := hp.NumLocal()

	// Proxy labels, updated in place with atomics during compute — the
	// Gluon execution model (no thread-local maps, no requests).
	label := make([]atomic.Uint32, n)
	dirty := runtime.NewBitset(n)
	for l := 0; l < n; l++ {
		label[l].Store(uint32(hp.GlobalID(graph.NodeID(l))))
	}

	atomicMin := func(l graph.NodeID, v uint32) bool {
		for {
			old := label[l].Load()
			if v >= old {
				return false
			}
			if label[l].CompareAndSwap(old, v) {
				return true
			}
		}
	}

	rounds := 0
	for {
		rounds++
		changed := false

		h.TimeCompute(func() {
			var anyChanged atomic.Bool
			h.ParForNodes(func(_ int, src graph.NodeID) {
				v := label[src].Load()
				lo, hi := local.EdgeRange(src)
				for e := lo; e < hi; e++ {
					dst := local.Dst(e)
					if atomicMin(dst, v) {
						dirty.Set(int(dst))
						anyChanged.Store(true)
					}
				}
			})
			changed = anyChanged.Load()
		})

		// Reduce: dirty mirror values go to their masters (positional
		// bitmask over the precomputed exchange lists).
		h.TimeComm(func() {
			numHosts := hp.NumHosts()
			out := make([][]byte, numHosts)
			for o := 0; o < numHosts; o++ {
				if o == h.Rank {
					continue
				}
				list := hp.MirrorsByOwner[o]
				mask := make([]byte, (len(list)+7)/8)
				var vals []byte
				for i, l := range list {
					if dirty.Test(int(l)) {
						mask[i/8] |= 1 << (uint(i) % 8)
						vals = comm.AppendUint32(vals, label[l].Load())
					}
				}
				out[o] = append(mask, vals...)
			}
			in := comm.Exchange(h.EP, comm.TagReduce, out)
			for o := 0; o < numHosts; o++ {
				if o == h.Rank {
					continue
				}
				list := hp.MasterSendTo[o]
				payload := in[o]
				maskLen := (len(list) + 7) / 8
				mask := payload[:maskLen]
				payload = payload[maskLen:]
				for i, l := range list {
					if mask[i/8]&(1<<(uint(i)%8)) != 0 {
						var v uint32
						v, payload = comm.ReadUint32(payload)
						if atomicMin(l, v) {
							dirty.Set(int(l))
							changed = true
						}
					}
				}
			}

			// Broadcast: dirty master values back to all mirrors.
			out = make([][]byte, numHosts)
			for o := 0; o < numHosts; o++ {
				if o == h.Rank {
					continue
				}
				list := hp.MasterSendTo[o]
				mask := make([]byte, (len(list)+7)/8)
				var vals []byte
				for i, l := range list {
					if dirty.Test(int(l)) {
						mask[i/8] |= 1 << (uint(i) % 8)
						vals = comm.AppendUint32(vals, label[l].Load())
					}
				}
				out[o] = append(mask, vals...)
			}
			in = comm.Exchange(h.EP, comm.TagBroadcast, out)
			for o := 0; o < numHosts; o++ {
				if o == h.Rank {
					continue
				}
				list := hp.MirrorsByOwner[o]
				payload := in[o]
				maskLen := (len(list) + 7) / 8
				mask := payload[:maskLen]
				payload = payload[maskLen:]
				for i, l := range list {
					if mask[i/8]&(1<<(uint(i)%8)) != 0 {
						var v uint32
						v, payload = comm.ReadUint32(payload)
						if atomicMin(l, v) {
							changed = true
						}
					}
				}
			}
			dirty.Clear()
		})

		if !comm.AllReduceBool(h.EP, changed) {
			break
		}
	}

	lo, hi := hp.MasterRangeGlobal()
	for g := lo; g < hi; g++ {
		l, _ := hp.LocalID(g)
		out[g] = graph.NodeID(label[l].Load())
	}
	return rounds
}
