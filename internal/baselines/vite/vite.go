// Package vite reimplements the reduction architecture of Vite (Ghosh et
// al., IPDPS 2018), the hand-optimized distributed Louvain implementation
// the paper compares against (§6.2, Figures 9a and 11).
//
// Vite differs from Kimbap in how refinement-phase reductions are handled:
// it runs an inspection pass that constructs a single host-wide community
// map behind one lock, and all threads then perform contended updates on
// that shared map — where Kimbap uses conflict-free thread-local maps. It
// also applies an algorithm-level early-termination heuristic: a node that
// stayed in its community for 4 consecutive refinement rounds is skipped
// with 75% probability.
//
// The implementation reuses the Louvain algorithm driver with the npm.Vite
// map backend (SGR over one single-lock shared map) and the heuristic
// enabled, isolating exactly the architectural difference the paper
// measures. Vite supports only edge-cut partitions, as does this driver.
package vite

import (
	"kimbap/internal/algorithms"
	"kimbap/internal/graph"
	"kimbap/internal/npm"
	"kimbap/internal/runtime"
)

// Louvain runs Vite-style distributed Louvain clustering.
func Louvain(g *graph.Graph, ccfg runtime.Config) (algorithms.CDResult, error) {
	return algorithms.Louvain(g, ccfg,
		algorithms.Config{Variant: npm.Vite},
		algorithms.CDOptions{EarlyTermination: true})
}
