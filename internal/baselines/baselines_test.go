// Package baselines_test exercises the three third-party system
// reimplementations the paper compares against.
package baselines_test

import (
	"math"
	"testing"

	"kimbap/internal/baselines/galois"
	"kimbap/internal/baselines/gluon"
	"kimbap/internal/baselines/vite"
	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/runtime"
)

func TestGluonCCLPMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(10, 10, false, 1),
		"rmat": gen.RMAT(8, 6, false, 2),
		"er":   gen.ErdosRenyi(150, 120, false, 4),
	}
	for name, g := range graphs {
		want := graph.ReferenceComponents(g)
		for _, hosts := range []int{1, 2, 4} {
			got, stats, err := gluon.CCLP(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%d hosts: node %d = %d, want %d", name, hosts, i, got[i], want[i])
				}
			}
			if stats.Rounds == 0 {
				t.Fatalf("%s: no rounds recorded", name)
			}
		}
	}
}

func TestViteLouvainQuality(t *testing.T) {
	g := gen.Communities(6, 30, 5, 1, true, 21)
	res, err := vite.Louvain(g, runtime.Config{NumHosts: 2, ThreadsPerHost: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity < 0.35 {
		t.Fatalf("Vite modularity %.3f too low", res.Modularity)
	}
}

func TestGaloisCCMatchesReference(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid(10, 10, false, 1),
		"rmat": gen.RMAT(8, 6, false, 2),
	}
	for name, g := range graphs {
		want := graph.ReferenceComponents(g)
		for _, threads := range []int{1, 4} {
			lp := galois.CCLP(g, threads)
			sv := galois.CCSV(g, threads)
			for i := range want {
				if lp[i] != want[i] {
					t.Fatalf("%s LP: node %d = %d, want %d", name, i, lp[i], want[i])
				}
				if sv[i] != want[i] {
					t.Fatalf("%s SV: node %d = %d, want %d", name, i, sv[i], want[i])
				}
			}
		}
	}
}

func TestGaloisMISValid(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Grid(9, 9, false, 1), gen.Star(40)} {
		set := galois.MIS(g, 4)
		if !graph.IsValidMIS(g, set) {
			t.Fatal("galois MIS invalid")
		}
	}
}

func TestGaloisMSFMatchesKruskal(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Grid(8, 8, true, 7), gen.RMAT(7, 5, true, 8)} {
		want := graph.ReferenceMSFWeight(g)
		for _, threads := range []int{1, 4} {
			got, labels := galois.MSF(g, threads)
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("galois MSF weight %.4f, want %.4f (threads=%d)", got, want, threads)
			}
			ref := graph.ReferenceComponents(g)
			seen := map[graph.NodeID]graph.NodeID{}
			for i := range ref {
				if w, ok := seen[labels[i]]; ok && w != ref[i] {
					t.Fatal("galois MSF labels split a component")
				}
				seen[labels[i]] = ref[i]
			}
		}
	}
}

func TestGaloisLouvainQuality(t *testing.T) {
	g := gen.Communities(6, 30, 5, 1, true, 21)
	res := galois.Louvain(g, 4)
	if res.Modularity < 0.4 {
		t.Fatalf("galois Louvain modularity %.3f", res.Modularity)
	}
	q := graph.Modularity(g, res.Assignment)
	if math.Abs(q-res.Modularity) > 1e-9 {
		t.Fatalf("reported Q mismatch: %.6f vs %.6f", res.Modularity, q)
	}
}

func TestGaloisLeidenQuality(t *testing.T) {
	g := gen.Communities(6, 30, 5, 1, true, 21)
	res := galois.Leiden(g, 4)
	if res.Modularity < 0.35 {
		t.Fatalf("galois Leiden modularity %.3f", res.Modularity)
	}
}
