package galois

import (
	"math"
	"sync/atomic"

	"kimbap/internal/graph"
)

// Shared-memory Louvain and Leiden. Community totals live in plain arrays
// updated with atomic CAS loops — the in-place reduction style Table 3
// attributes to Galois. For Louvain the contention is modest; for Leiden
// the per-round subcluster property updates contend heavily on hub nodes,
// which is why the paper's Galois Leiden times out on road-europe while
// Kimbap's conflict-free reductions do not.

// CDResult mirrors the distributed result type.
type CDResult struct {
	Assignment []graph.NodeID
	Modularity float64
	Levels     int
	Rounds     int
}

// Louvain runs shared-memory multi-level Louvain.
func Louvain(g *graph.Graph, threads int) CDResult {
	return community(g, threads, false)
}

// Leiden runs shared-memory multi-level Leiden.
func Leiden(g *graph.Graph, threads int) CDResult {
	return community(g, threads, true)
}

func community(g *graph.Graph, threads int, leiden bool) CDResult {
	var res CDResult
	proj := make([]graph.NodeID, g.NumNodes())
	for i := range proj {
		proj[i] = graph.NodeID(i)
	}
	final := make([]graph.NodeID, g.NumNodes())
	copy(final, proj)
	cur := g

	const maxLevels = 10
	for level := 0; level < maxLevels; level++ {
		comm, rounds, moved := refine(cur, threads)
		res.Rounds += rounds
		res.Levels++

		sub := comm
		if leiden {
			sub = refineSub(cur, threads, comm)
		}
		for i := range final {
			final[i] = comm[proj[i]]
		}
		if moved == 0 && level > 0 {
			break
		}
		coarse, remap := contractGraph(cur, sub)
		for i := range proj {
			proj[i] = remap[sub[proj[i]]]
		}
		if coarse.NumNodes() == cur.NumNodes() || coarse.NumNodes() <= 1 {
			break
		}
		cur = coarse
	}
	res.Assignment = final
	res.Modularity = graph.Modularity(g, final)
	return res
}

// refine is the local-moving phase: asynchronous greedy moves with
// community totals maintained by atomic add/sub, Grappolo's singleton
// swap rule for convergence.
func refine(g *graph.Graph, threads int) (comm []graph.NodeID, rounds int, lastMoved int64) {
	n := g.NumNodes()
	twoM := g.TotalWeight()
	// Communities are read by neighbors while being moved: atomics make
	// the asynchronous propagation well-defined.
	commA := make([]atomic.Uint32, n)
	wdeg := make([]float64, n)
	for i := 0; i < n; i++ {
		commA[i].Store(uint32(i))
		for _, w := range g.EdgeWeights(graph.NodeID(i)) {
			wdeg[i] += w
		}
		if !g.Weighted() {
			wdeg[i] = float64(g.Degree(graph.NodeID(i)))
		}
	}
	comm = make([]graph.NodeID, n)
	if twoM == 0 {
		for i := range comm {
			comm[i] = graph.NodeID(i)
		}
		return comm, 0, 0
	}
	ctot := make([]atomic.Uint64, n)
	csize := make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		ctot[i].Store(math.Float64bits(wdeg[i]))
		csize[i].Store(1)
	}

	const maxIters = 32
	var totalMoved int64
	for rounds = 0; rounds < maxIters; rounds++ {
		var moved atomic.Int64
		parFor(threads, n, func(i int) {
			a := graph.NodeID(commA[i].Load())
			kn := wdeg[i]
			if kn == 0 {
				return
			}
			links := map[graph.NodeID]float64{}
			lo, hi := g.EdgeRange(graph.NodeID(i))
			for e := lo; e < hi; e++ {
				d := g.Dst(e)
				if int(d) == i {
					continue
				}
				links[graph.NodeID(commA[d].Load())] += g.Weight(e)
			}
			aTot := math.Float64frombits(ctot[a].Load())
			base := links[a] - (aTot-kn)*kn/twoM
			best, bestGain := a, base
			for c, knc := range links {
				if c == a {
					continue
				}
				gain := knc - math.Float64frombits(ctot[c].Load())*kn/twoM
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < best) {
					best, bestGain = c, gain
				}
			}
			if best != a && csize[a].Load() == 1 && csize[best].Load() == 1 && best > a {
				best = a
			}
			if best != a {
				// In-place atomic updates: the contended path.
				atomicAddFloat(&ctot[a], -kn)
				atomicAddFloat(&ctot[best], kn)
				csize[a].Add(-1)
				csize[best].Add(1)
				commA[i].Store(uint32(best))
				moved.Add(1)
			}
		})
		totalMoved += moved.Load()
		lastMoved = moved.Load()
		if moved.Load() == 0 {
			rounds++
			break
		}
	}
	for i := range comm {
		comm[i] = graph.NodeID(commA[i].Load())
	}
	return comm, rounds, totalMoved
}

// refineSub is the Leiden refinement: singleton nodes merge into
// subcommunities within their community, with heavy atomic traffic on the
// shared subcluster totals.
func refineSub(g *graph.Graph, threads int, comm []graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	twoM := g.TotalWeight()
	if twoM == 0 {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}
	subA := make([]atomic.Uint32, n)
	wdeg := make([]float64, n)
	subtot := make([]atomic.Uint64, n)
	subsize := make([]atomic.Int64, n)
	ctot := make([]atomic.Uint64, n)
	for i := 0; i < n; i++ {
		subA[i].Store(uint32(i))
		for _, w := range g.EdgeWeights(graph.NodeID(i)) {
			wdeg[i] += w
		}
		if !g.Weighted() {
			wdeg[i] = float64(g.Degree(graph.NodeID(i)))
		}
		subtot[i].Store(math.Float64bits(wdeg[i]))
		subsize[i].Store(1)
		atomicAddFloat(&ctot[comm[i]], wdeg[i])
	}

	const refineRounds = 4
	for round := 0; round < refineRounds; round++ {
		var moved atomic.Int64
		parFor(threads, n, func(i int) {
			if graph.NodeID(subA[i].Load()) != graph.NodeID(i) || subsize[i].Load() != 1 {
				return
			}
			c := comm[i]
			kn := wdeg[i]
			if kn == 0 {
				return
			}
			intoC := 0.0
			links := map[graph.NodeID]float64{}
			lo, hi := g.EdgeRange(graph.NodeID(i))
			for e := lo; e < hi; e++ {
				d := g.Dst(e)
				if int(d) == i || comm[d] != c {
					continue
				}
				intoC += g.Weight(e)
				links[graph.NodeID(subA[d].Load())] += g.Weight(e)
			}
			if intoC < kn*(math.Float64frombits(ctot[c].Load())-kn)/twoM {
				return
			}
			best, bestGain := graph.NodeID(i), 0.0
			for t, knt := range links {
				if t == graph.NodeID(i) {
					continue
				}
				gain := knt - math.Float64frombits(subtot[t].Load())*kn/twoM
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && gain > 0 && t < best) {
					best, bestGain = t, gain
				}
			}
			if best != graph.NodeID(i) {
				atomicAddFloat(&subtot[graph.NodeID(i)], -kn)
				atomicAddFloat(&subtot[best], kn)
				subsize[i].Add(-1)
				subsize[best].Add(1)
				subA[i].Store(uint32(best))
				moved.Add(1)
			}
		})
		if moved.Load() == 0 {
			break
		}
	}
	sub := make([]graph.NodeID, n)
	for i := range sub {
		sub[i] = graph.NodeID(subA[i].Load())
	}
	return sub
}

func contractGraph(g *graph.Graph, assign []graph.NodeID) (*graph.Graph, map[graph.NodeID]graph.NodeID) {
	remap := make(map[graph.NodeID]graph.NodeID)
	for _, c := range assign {
		if _, ok := remap[c]; !ok {
			remap[c] = graph.NodeID(len(remap))
		}
	}
	agg := make(map[[2]graph.NodeID]float64)
	for n := 0; n < g.NumNodes(); n++ {
		cs := remap[assign[n]]
		lo, hi := g.EdgeRange(graph.NodeID(n))
		for e := lo; e < hi; e++ {
			cd := remap[assign[g.Dst(e)]]
			agg[[2]graph.NodeID{cs, cd}] += g.Weight(e)
		}
	}
	b := graph.NewBuilder(len(remap))
	for k, w := range agg {
		b.AddWeightedEdge(k[0], k[1], w)
	}
	return b.Build(), remap
}
