// Package galois reimplements the shared-memory execution strategy of
// Galois (Nguyen et al., SOSP 2013), the single-host system in the paper's
// Table 3. Everything runs in one address space: algorithms update node
// properties in place with atomic compare-and-swap loops and propagate
// asynchronously within a round, with no partitioning, proxies, or
// message passing.
//
// The paper's Table 3 findings that this package reproduces: async atomics
// make pointer-jumping algorithms (MSF, CC-SV) much faster than Kimbap's
// BSP execution on one host, while for Leiden the atomic updates to shared
// subcluster properties suffer thread conflicts that Kimbap's conflict-
// free reductions avoid.
package galois

import (
	"math"
	"sync"
	"sync/atomic"

	"kimbap/internal/graph"
)

// parFor runs fn(i) for i in [0,n) on `threads` workers.
func parFor(threads, n int, fn func(i int)) {
	if threads <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	chunk := n/(threads*8) + 1
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

func atomicMin32(a *atomic.Uint32, v uint32) bool {
	for {
		old := a.Load()
		if v >= old {
			return false
		}
		if a.CompareAndSwap(old, v) {
			return true
		}
	}
}

func atomicAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, nv) {
			return
		}
	}
}

// CCLP computes connected components with asynchronous min-label
// propagation: updates are visible immediately through atomics.
func CCLP(g *graph.Graph, threads int) []graph.NodeID {
	n := g.NumNodes()
	label := make([]atomic.Uint32, n)
	for i := range label {
		label[i].Store(uint32(i))
	}
	for {
		var changed atomic.Bool
		parFor(threads, n, func(i int) {
			v := label[i].Load()
			for _, d := range g.Neighbors(graph.NodeID(i)) {
				if atomicMin32(&label[d], v) {
					changed.Store(true)
				}
			}
		})
		if !changed.Load() {
			break
		}
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(label[i].Load())
	}
	return out
}

// CCSV computes connected components with asynchronous Shiloach-Vishkin:
// hook and shortcut phases over an atomically updated parent array.
func CCSV(g *graph.Graph, threads int) []graph.NodeID {
	n := g.NumNodes()
	parent := make([]atomic.Uint32, n)
	for i := range parent {
		parent[i].Store(uint32(i))
	}
	for {
		var changed atomic.Bool
		// Hook: min-reduce parent(parent(src)) by parent(dst).
		parFor(threads, n, func(i int) {
			p := parent[i].Load()
			for _, d := range g.Neighbors(graph.NodeID(i)) {
				dp := parent[d].Load()
				if p > dp {
					if atomicMin32(&parent[p], dp) {
						changed.Store(true)
					}
				}
			}
		})
		// Shortcut: full pointer jumping, immediately visible.
		parFor(threads, n, func(i int) {
			for {
				p := parent[i].Load()
				gp := parent[p].Load()
				if p == gp {
					break
				}
				if atomicMin32(&parent[i], gp) {
					changed.Store(true)
				}
			}
		})
		if !changed.Load() {
			break
		}
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(parent[i].Load())
	}
	return out
}

// MIS computes a maximal independent set with the same degree-based
// priority rule as the distributed implementation, applied asynchronously.
func MIS(g *graph.Graph, threads int) []bool {
	n := g.NumNodes()
	prio := make([]float64, n)
	for i := range prio {
		prio[i] = float64(g.Degree(graph.NodeID(i)))*float64(n+1) + float64(i)
	}
	const (
		undecided = 0
		out       = 1
		in        = 2
	)
	state := make([]atomic.Uint32, n)
	for {
		var remaining atomic.Int64
		parFor(threads, n, func(i int) {
			if state[i].Load() != undecided {
				return
			}
			wins := true
			for _, d := range g.Neighbors(graph.NodeID(i)) {
				if int(d) == i {
					continue
				}
				ds := state[d].Load()
				if ds == in || (ds == undecided && prio[d] < prio[i]) {
					wins = false
					break
				}
			}
			if wins {
				state[i].Store(in)
				for _, d := range g.Neighbors(graph.NodeID(i)) {
					if int(d) != i {
						state[d].CompareAndSwap(undecided, out)
					}
				}
			} else {
				remaining.Add(1)
			}
		})
		if remaining.Load() == 0 {
			break
		}
	}
	set := make([]bool, n)
	for i := range set {
		set[i] = state[i].Load() == in
	}
	return set
}

// MSF computes a minimum spanning forest with lock-free Boruvka: candidate
// edges are CAS-installed per component root, merges update an atomic
// parent array, and pointer jumping is immediate.
func MSF(g *graph.Graph, threads int) (weight float64, labels []graph.NodeID) {
	n := g.NumNodes()
	parent := make([]atomic.Uint32, n)
	for i := range parent {
		parent[i].Store(uint32(i))
	}
	find := func(x uint32) uint32 {
		for {
			p := parent[x].Load()
			if p == x {
				return x
			}
			gp := parent[p].Load()
			if p != gp {
				parent[x].CompareAndSwap(p, gp) // path compression
			}
			x = p
		}
	}

	type cand struct {
		w    float64
		a, b graph.NodeID
	}
	less := func(x, y cand) bool {
		if x.w != y.w {
			return x.w < y.w
		}
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	}
	candidates := make([]atomic.Pointer[cand], n)

	var total atomic.Uint64
	for {
		for i := range candidates {
			candidates[i].Store(nil)
		}
		// Select the minimum outgoing edge per component.
		parFor(threads, n, func(i int) {
			ri := find(uint32(i))
			lo, hi := g.EdgeRange(graph.NodeID(i))
			for e := lo; e < hi; e++ {
				d := g.Dst(e)
				rd := find(uint32(d))
				if ri == rd {
					continue
				}
				c := cand{w: g.Weight(e),
					a: min(graph.NodeID(i), d), b: max(graph.NodeID(i), d)}
				for {
					cur := candidates[ri].Load()
					if cur != nil && !less(c, *cur) {
						break
					}
					if candidates[ri].CompareAndSwap(cur, &c) {
						break
					}
				}
			}
		})
		// Merge: each root attaches to the other endpoint's root; the
		// smaller side of a mutual pick stays put. Roots are snapshotted
		// first so concurrent attaches cannot produce cycles (the
		// acyclicity argument needs all merges to reference start-of-
		// round components).
		root := make([]uint32, n)
		parFor(threads, n, func(i int) { root[i] = find(uint32(i)) })
		var merged atomic.Bool
		parFor(threads, n, func(i int) {
			r := uint32(i)
			if root[i] != r {
				return
			}
			cp := candidates[r].Load()
			if cp == nil {
				return
			}
			ra, rb := root[cp.a], root[cp.b]
			other := ra
			if ra == r {
				other = rb
			}
			if other == r {
				return
			}
			oc := candidates[other].Load()
			if oc != nil && *oc == *cp && r < other {
				return
			}
			parent[r].Store(other)
			merged.Store(true)
			atomicAddFloat(&total, cp.w)
		})
		if !merged.Load() {
			break
		}
	}

	labels = make([]graph.NodeID, n)
	for i := range labels {
		labels[i] = graph.NodeID(find(uint32(i)))
	}
	return math.Float64frombits(total.Load()), labels
}
