package algorithms

import (
	"math"
	"testing"

	"kimbap/internal/gen"
	"kimbap/internal/graph"
	"kimbap/internal/kvstore"
	"kimbap/internal/npm"
	"kimbap/internal/partition"
	"kimbap/internal/runtime"
)

// Cross-variant equivalence: the ablation variants differ only in how
// property values are stored and synchronized, so converged results must be
// bit-identical across Full, SGRCF, SGROnly, and MC — and across host
// counts. This guards the reduce-sync rewrite (range-bucketed combine,
// sectioned payloads) against silent semantic drift: a mis-bucketed or
// double-decoded entry shows up as a diverging label.

func equivalenceGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat": gen.RMAT(9, 6, false, 42),
		"grid": gen.Grid(16, 16, false, 7),
	}
}

func TestCCEquivalentAcrossVariantsAndHosts(t *testing.T) {
	for gname, g := range equivalenceGraphs() {
		var ref []graph.NodeID
		for _, hosts := range []int{1, 4, 8} {
			for _, v := range npm.Variants {
				got := runCC(t, g, hosts, partition.OEC, Config{Variant: v}, CCSV)
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s/%s/%dh: node %d labeled %d, reference %d",
							gname, v, hosts, i, got[i], ref[i])
					}
				}
			}
		}
		ref = nil
	}
}

func TestLouvainEquivalentAcrossVariants(t *testing.T) {
	for gname, g := range equivalenceGraphs() {
		for _, hosts := range []int{1, 4, 8} {
			var ref *CDResult
			var refVariant npm.Variant
			for _, v := range npm.Variants {
				cfg := Config{Variant: v}
				if v == npm.MC {
					cfg.Store = kvstore.NewCluster(hosts, hosts)
				}
				res, err := Louvain(g, runtime.Config{NumHosts: hosts, ThreadsPerHost: 3},
					cfg, CDOptions{})
				if err != nil {
					t.Fatalf("%s/%s/%dh: %v", gname, v, hosts, err)
				}
				if ref == nil {
					r := res
					ref, refVariant = &r, v
					continue
				}
				// Assignments are integers and must match exactly; the
				// modularity statistic is a float sum whose addition order
				// varies with thread scheduling, so it only agrees to
				// round-off.
				if math.Abs(res.Modularity-ref.Modularity) > 1e-9 {
					t.Fatalf("%s/%s/%dh: modularity %v != %s's %v",
						gname, v, hosts, res.Modularity, refVariant, ref.Modularity)
				}
				for i := range ref.Assignment {
					if res.Assignment[i] != ref.Assignment[i] {
						t.Fatalf("%s/%s/%dh: node %d assigned %d, %s assigned %d",
							gname, v, hosts, i, res.Assignment[i],
							refVariant, ref.Assignment[i])
					}
				}
			}
		}
	}
}
